// Copyright 2026 TGCRN Reproduction Authors
// CLI: serve forecasts from a trained checkpoint over newline-delimited
// JSON on a TCP socket. Operator guide: docs/SERVING.md.
//
// Usage:
//   tgcrn_serve [data.csv] --ckpt model.ckpt --nodes N --features D
//       --steps-per-day S [--input-steps P] [--output-steps Q]
//       [--hidden H] [--variant tgcrn|no-tagsl|no-tdl|no-pdf|direct]
//       [--graph-topk K] [--port PORT] [--threads T] [--seed S]
//       [--prof serve.prof.json]
//
// Checkpoints written by train_model carry the fitted scaler as a footer
// (docs/SERVING.md "Checkpoint format"), which is authoritative here —
// no dataset file is needed to serve them. [data.csv] is the fallback
// for pre-footer checkpoints: the scaler is re-fitted exactly as
// train_model fits it (same CSV, same --input-steps/--output-steps, same
// split fractions). When both are available the re-fit is cross-checked
// against the footer and drift is reported. The model-shape flags must
// match training; LoadParameters rejects shape drift.
#include <csignal>
#include <cstdio>
#include <string>
#include <utility>

#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "data/csv_loader.h"
#include "data/dataset.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/session.h"
#include "serve/telemetry.h"

namespace {

// SIGTERM/SIGINT ask the poll loop to stop after the current round, so a
// killed server still drains buffers and flushes its telemetry (access
// log, registry dump) through the same path a shutdown op takes.
tgcrn::serve::Server* g_server = nullptr;

void HandleStopSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestStop();  // one atomic store
}

struct Args {
  std::string data_path;
  std::string ckpt_path;
  tgcrn::data::CsvLoadOptions csv;
  int64_t input_steps = 12;
  int64_t output_steps = 12;
  int64_t hidden = 16;
  int64_t graph_topk = -1;  // -1 = TGCRN_GRAPH_TOPK env / model default
  int port = 0;             // 0 = ephemeral (printed once listening)
  int threads = 0;          // 0 = TGCRN_NUM_THREADS env or hw concurrency
  uint64_t seed = 1;
  std::string variant = "tgcrn";
  std::string prof_path;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  int i = 1;
  if (argv[1][0] != '-') args->data_path = argv[i++];
  for (; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--ckpt") args->ckpt_path = value;
    else if (flag == "--nodes") args->csv.num_nodes = std::stoll(value);
    else if (flag == "--features") args->csv.num_features = std::stoll(value);
    else if (flag == "--steps-per-day") {
      args->csv.steps_per_day = std::stoll(value);
    } else if (flag == "--input-steps") args->input_steps = std::stoll(value);
    else if (flag == "--output-steps") {
      args->output_steps = std::stoll(value);
    } else if (flag == "--hidden") args->hidden = std::stoll(value);
    else if (flag == "--graph-topk") args->graph_topk = std::stoll(value);
    else if (flag == "--port") args->port = std::stoi(value);
    else if (flag == "--threads") args->threads = std::stoi(value);
    else if (flag == "--seed") args->seed = std::stoull(value);
    else if (flag == "--variant") args->variant = value;
    else if (flag == "--prof") args->prof_path = value;
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return !args->ckpt_path.empty() && args->csv.num_nodes > 0 &&
         args->csv.num_features > 0 && args->csv.steps_per_day > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: %s [data.csv] --ckpt model.ckpt --nodes N --features D\n"
        "  --steps-per-day S [--input-steps P] [--output-steps Q]\n"
        "  [--hidden H] [--variant tgcrn|no-tagsl|no-tdl|no-pdf|direct]\n"
        "  [--graph-topk K] [--port PORT] [--threads T] [--seed S]\n"
        "  [--prof serve.prof.json]\n"
        "[data.csv] is only needed for checkpoints without a scaler\n"
        "footer (written by older train_model runs).\n"
        "protocol + operations guide: docs/SERVING.md\n",
        argv[0]);
    return 2;
  }
  if (args.threads > 0) tgcrn::common::SetNumThreads(args.threads);

  tgcrn::core::TGCRNConfig config;
  config.num_nodes = args.csv.num_nodes;
  config.input_dim = args.csv.num_features;
  config.output_dim = args.csv.num_features;
  config.horizon = args.output_steps;
  config.hidden_dim = args.hidden;
  config.steps_per_day = args.csv.steps_per_day;
  if (args.variant == "no-tagsl") {
    config.use_tagsl = false;
  } else if (args.variant == "no-tdl") {
    config.use_tdl = false;
  } else if (args.variant == "no-pdf") {
    config.use_pdf = false;
  } else if (args.variant == "direct") {
    config.use_encoder_decoder = false;
  } else if (args.variant != "tgcrn") {
    std::fprintf(stderr, "unknown variant %s\n", args.variant.c_str());
    return 2;
  }

  tgcrn::Rng rng(args.seed);
  tgcrn::core::TGCRN model(config, &rng);
  const tgcrn::Status status = model.LoadParameters(args.ckpt_path);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint load failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (args.graph_topk >= 0) model.SetGraphTopK(args.graph_topk);
  std::printf("model: %s variant, %lld parameters, checkpoint %s\n",
              args.variant.c_str(),
              static_cast<long long>(model.NumParameters()),
              args.ckpt_path.c_str());

  // Scaler: the checkpoint's footer (training-time statistics) is
  // authoritative; a CSV re-fit is the fallback for pre-footer
  // checkpoints, and a drift check when both are available.
  tgcrn::data::StandardScaler scaler;
  const tgcrn::Status footer =
      tgcrn::data::LoadScalerFooter(args.ckpt_path, &scaler);
  if (footer.ok()) {
    if (static_cast<int64_t>(scaler.means().size()) !=
        args.csv.num_features) {
      std::fprintf(
          stderr, "checkpoint scaler has %zu channels, --features is %lld\n",
          scaler.means().size(),
          static_cast<long long>(args.csv.num_features));
      return 1;
    }
    std::printf("scaler: loaded from checkpoint footer\n");
  } else if (footer.code() != tgcrn::StatusCode::kNotFound) {
    std::fprintf(stderr, "scaler footer load failed: %s\n",
                 footer.ToString().c_str());
    return 1;
  } else if (args.data_path.empty()) {
    std::fprintf(stderr,
                 "checkpoint %s has no scaler footer — pass the training "
                 "data.csv so the scaler can be re-fitted, or re-save the "
                 "checkpoint with the current train_model\n",
                 args.ckpt_path.c_str());
    return 1;
  }
  if (!args.data_path.empty()) {
    auto loaded = tgcrn::data::LoadCsv(args.data_path, args.csv);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    tgcrn::data::ForecastDataset::Options options;
    options.input_steps = args.input_steps;
    options.output_steps = args.output_steps;
    tgcrn::data::ForecastDataset dataset(std::move(loaded).ValueOrDie(),
                                         options);
    if (footer.ok()) {
      if (dataset.scaler().means() != scaler.means() ||
          dataset.scaler().stds() != scaler.stds()) {
        std::fprintf(stderr,
                     "warning: scaler re-fitted from %s differs from the "
                     "checkpoint footer; serving with the footer "
                     "(training-time) statistics\n",
                     args.data_path.c_str());
      }
    } else {
      scaler = dataset.scaler();
      std::printf("scaler: re-fitted from %s (no footer in checkpoint) — "
                  "flags must reproduce the training fit exactly\n",
                  args.data_path.c_str());
    }
  }

  if (!args.prof_path.empty()) {
    tgcrn::obs::ProfOptions prof;
    prof.enabled = true;
    prof.path = args.prof_path;
    tgcrn::obs::StartProfiling(prof);
  }

  tgcrn::serve::InferenceSession session(
      &model, std::move(scaler), tgcrn::serve::SessionConfig::FromEnv());
  tgcrn::serve::ServeTelemetry telemetry(
      tgcrn::serve::TelemetryConfig::FromEnv(), &session);
  if (telemetry.armed()) {
    std::printf("telemetry: armed (access log: %s, slow threshold: %lld us)\n",
                telemetry.config().access_log_path.empty()
                    ? "<off>"
                    : telemetry.config().access_log_path.c_str(),
                static_cast<long long>(telemetry.config().slow_us));
  }
  tgcrn::serve::Server server(&session, args.port, &telemetry);
  g_server = &server;
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("tgcrn_serve listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);
  server.Run();
  g_server = nullptr;
  // Same flush a CHECK-failure abort takes: trace + profile + metrics
  // dump + the telemetry hook (all idempotent; Run already flushed the
  // access log).
  tgcrn::obs::FlushObservability();

  if (!args.prof_path.empty()) {
    if (tgcrn::obs::WriteProfileFiles(args.prof_path)) {
      std::printf("profile written to %s (+ %s.collapsed)\n",
                  args.prof_path.c_str(), args.prof_path.c_str());
    }
  }
  std::printf("shutdown after %lld requests\n",
              static_cast<long long>(session.requests()));
  return 0;
}
