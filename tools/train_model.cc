// Copyright 2026 TGCRN Reproduction Authors
// CLI: train TGCRN (or an ablation variant) on a CSV dataset produced by
// export_dataset (or by the user's own pipeline), report test metrics, and
// optionally save a checkpoint.
//
// Usage:
//   train_model <data.csv> --nodes N --features D --steps-per-day S
//       [--input-steps P] [--output-steps Q] [--epochs E] [--hidden H]
//       [--variant tgcrn|no-tagsl|no-tdl|no-pdf|direct] [--save model.ckpt]
//       [--seed S] [--lr LR] [--graph-topk K] [--report run.jsonl]
//       [--trace run.trace.json] [--prof run.prof.json]
#include <cstdio>
#include <string>

#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "data/csv_loader.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace {

struct Args {
  std::string data_path;
  tgcrn::data::CsvLoadOptions csv;
  int64_t input_steps = 12;
  int64_t output_steps = 12;
  int64_t epochs = 10;
  int64_t hidden = 16;
  float lr = 3e-3f;
  uint64_t seed = 1;
  int threads = 0;  // 0 = TGCRN_NUM_THREADS env or hardware concurrency
  int64_t graph_topk = -1;  // -1 = TGCRN_GRAPH_TOPK env / model default
  std::string variant = "tgcrn";
  std::string save_path;
  std::string report_path;
  std::string trace_path;
  std::string prof_path;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->data_path = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--nodes") args->csv.num_nodes = std::stoll(value);
    else if (flag == "--features") args->csv.num_features = std::stoll(value);
    else if (flag == "--steps-per-day") {
      args->csv.steps_per_day = std::stoll(value);
    } else if (flag == "--input-steps") args->input_steps = std::stoll(value);
    else if (flag == "--output-steps") {
      args->output_steps = std::stoll(value);
    } else if (flag == "--epochs") args->epochs = std::stoll(value);
    else if (flag == "--hidden") args->hidden = std::stoll(value);
    else if (flag == "--lr") args->lr = std::stof(value);
    else if (flag == "--seed") args->seed = std::stoull(value);
    else if (flag == "--threads") args->threads = std::stoi(value);
    else if (flag == "--graph-topk") args->graph_topk = std::stoll(value);
    else if (flag == "--variant") args->variant = value;
    else if (flag == "--save") args->save_path = value;
    else if (flag == "--report") args->report_path = value;
    else if (flag == "--trace") args->trace_path = value;
    else if (flag == "--prof") args->prof_path = value;
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return args->csv.num_nodes > 0 && args->csv.num_features > 0 &&
         args->csv.steps_per_day > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(
        stderr,
        "usage: %s <data.csv> --nodes N --features D --steps-per-day S\n"
        "  [--input-steps P] [--output-steps Q] [--epochs E] [--hidden H]\n"
        "  [--variant tgcrn|no-tagsl|no-tdl|no-pdf|direct] [--save f.ckpt]\n"
        "  [--seed S] [--lr LR] [--threads T] [--graph-topk K]\n"
        "  [--report run.jsonl] [--trace run.trace.json]\n"
        "  [--prof run.prof.json]\n",
        argv[0]);
    return 2;
  }

  auto loaded = tgcrn::data::LoadCsv(args.data_path, args.csv);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  tgcrn::data::ForecastDataset::Options options;
  options.input_steps = args.input_steps;
  options.output_steps = args.output_steps;
  tgcrn::data::ForecastDataset dataset(std::move(loaded).ValueOrDie(),
                                       options);
  std::printf("dataset: %lld/%lld/%lld train/val/test windows\n",
              static_cast<long long>(dataset.NumTrainSamples()),
              static_cast<long long>(dataset.NumValSamples()),
              static_cast<long long>(dataset.NumTestSamples()));

  tgcrn::core::TGCRNConfig config;
  config.num_nodes = args.csv.num_nodes;
  config.input_dim = args.csv.num_features;
  config.output_dim = args.csv.num_features;
  config.horizon = args.output_steps;
  config.hidden_dim = args.hidden;
  config.steps_per_day = args.csv.steps_per_day;
  if (args.variant == "no-tagsl") {
    config.use_tagsl = false;
  } else if (args.variant == "no-tdl") {
    config.use_tdl = false;
  } else if (args.variant == "no-pdf") {
    config.use_pdf = false;
  } else if (args.variant == "direct") {
    config.use_encoder_decoder = false;
  } else if (args.variant != "tgcrn") {
    std::fprintf(stderr, "unknown variant %s\n", args.variant.c_str());
    return 2;
  }

  tgcrn::Rng rng(args.seed);
  tgcrn::core::TGCRN model(config, &rng);
  std::printf("model: %s variant, %lld parameters\n", args.variant.c_str(),
              static_cast<long long>(model.NumParameters()));

  tgcrn::core::TrainConfig train;
  train.epochs = args.epochs;
  train.lr = args.lr;
  train.seed = args.seed;
  train.num_threads = args.threads;
  // --graph-topk beats the TGCRN_GRAPH_TOPK env default already parsed
  // into TrainConfig (k > 0 = sparse top-k path, 0 = force dense).
  if (args.graph_topk >= 0) train.graph_topk = args.graph_topk;
  train.report_path = args.report_path;
  if (!args.prof_path.empty()) {
    // Overrides (rather than augments) any TGCRN_PROF env setting; the
    // trainer arms the profiler and epoch JSONL lines gain "prof" blocks.
    train.prof.enabled = true;
    train.prof.path = args.prof_path;
  }
  if (!args.trace_path.empty()) tgcrn::obs::StartTracing(args.trace_path);
  const auto result = tgcrn::core::TrainAndEvaluate(&model, dataset, train);
  if (!args.trace_path.empty()) {
    if (tgcrn::obs::StopTracingAndWrite()) {
      std::printf("trace written to %s\n", args.trace_path.c_str());
    }
  }
  if (!args.prof_path.empty()) {
    if (tgcrn::obs::WriteProfileFiles(args.prof_path)) {
      std::printf("profile written to %s (+ %s.collapsed)\n",
                  args.prof_path.c_str(), args.prof_path.c_str());
    }
  }
  if (!args.report_path.empty()) {
    std::printf("run report written to %s\n", args.report_path.c_str());
  }
  std::printf("parallel width: %d thread(s)\n", result.num_threads);

  std::printf("\nper-horizon test metrics:\n");
  for (size_t h = 0; h < result.per_horizon.size(); ++h) {
    const auto& m = result.per_horizon[h];
    std::printf("  +%2zu: MAE %8.3f  RMSE %8.3f  MAPE %6.2f%%\n", h + 1,
                m.mae, m.rmse, m.mape);
  }
  std::printf("  avg: MAE %8.3f  RMSE %8.3f  MAPE %6.2f%%\n",
              result.average.mae, result.average.rmse, result.average.mape);
  std::printf("trained %lld epochs, %.2fs/epoch\n",
              static_cast<long long>(result.epochs_run),
              result.seconds_per_epoch);

  if (!args.save_path.empty()) {
    tgcrn::Status status = model.SaveParameters(args.save_path);
    if (status.ok()) {
      // The scaler footer lets tgcrn_serve de-normalize with the exact
      // training statistics instead of trusting the operator to re-fit
      // them from the same CSV (docs/SERVING.md "Checkpoint format").
      status = tgcrn::data::AppendScalerFooter(args.save_path,
                                               dataset.scaler());
    }
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("checkpoint written to %s (parameters + scaler)\n",
                args.save_path.c_str());
  }
  return 0;
}
