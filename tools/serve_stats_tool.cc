// Copyright 2026 TGCRN Reproduction Authors
// CLI: inspect a running tgcrn_serve's request telemetry over its own
// line protocol (operator guide: docs/SERVING.md "Reading the request
// telemetry").
//
// Usage:
//   tgcrn_serve_stats <show|watch|slow> --port PORT [--host H]
//       [--interval SECONDS] [--count N]
//
//   show   one stats snapshot: top-line gauges, the per-stage latency
//          table, and entity-cache health
//   watch  `show` every --interval seconds (default 2; --count bounds
//          the number of polls, 0 = until interrupted)
//   slow   the server's slow-request exemplars (requests over
//          TGCRN_SERVE_SLOW_US), one stage-breakdown row each
//
// Each poll opens a fresh connection, sends one {"op":"stats"} line and
// renders the reply — the cost to the serving loop is one non-batched
// stats request. Stage histograms are cumulative over the server's
// lifetime. Exits non-zero if the server is unreachable or replies with
// an error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/table_printer.h"
#include "obs/json.h"
#include "serve/telemetry.h"

namespace {

struct Args {
  std::string command;
  std::string host = "127.0.0.1";
  int port = 0;
  double interval_s = 2.0;
  int count = 0;  // watch polls; 0 = until interrupted
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  if (args->command != "show" && args->command != "watch" &&
      args->command != "slow") {
    return false;
  }
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--port") args->port = std::stoi(value);
    else if (flag == "--host") args->host = value;
    else if (flag == "--interval") args->interval_s = std::stod(value);
    else if (flag == "--count") args->count = std::stoi(value);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return args->port > 0;
}

// One round trip on a fresh connection: send `request` (one line), read
// one response line. False (with *error) on any socket trouble.
bool Call(const Args& args, const std::string& request, std::string* reply,
          std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(args.port));
  if (::inet_pton(AF_INET, args.host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host " + args.host;
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = std::string("connect ") + args.host + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string line = request + "\n";
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t wrote =
        ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (wrote <= 0) {
      *error = std::string("send: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(wrote);
  }
  reply->clear();
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;
    reply->append(buf, static_cast<size_t>(got));
    const size_t newline = reply->find('\n');
    if (newline != std::string::npos) {
      reply->resize(newline);
      ::close(fd);
      return true;
    }
  }
  *error = "connection closed before a full reply";
  ::close(fd);
  return false;
}

bool FetchStats(const Args& args, bool slow_view, tgcrn::obs::Json* stats) {
  std::string request = "{\"op\":\"stats\"}";
  if (slow_view) request = "{\"op\":\"stats\",\"view\":\"slow\"}";
  std::string reply, error;
  if (!Call(args, request, &reply, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  if (!tgcrn::obs::Json::Parse(reply, stats, &error)) {
    std::fprintf(stderr, "error: unparseable stats reply: %s\n",
                 error.c_str());
    return false;
  }
  const tgcrn::obs::Json& ok = (*stats)["ok"];
  if (!ok.is_bool() || !ok.AsBool()) {
    std::fprintf(stderr, "error: server replied: %s\n", reply.c_str());
    return false;
  }
  return true;
}

void RenderStats(const tgcrn::obs::Json& stats) {
  std::printf(
      "entities %lld  requests %lld  qps %.1f  p50 %lld us  p99 %lld us  "
      "uptime %.0f s\n",
      static_cast<long long>(stats.GetInt("entities")),
      static_cast<long long>(stats.GetInt("requests")),
      stats.GetDouble("qps"), static_cast<long long>(stats.GetInt("p50_us")),
      static_cast<long long>(stats.GetInt("p99_us")),
      stats.GetDouble("uptime_s"));
  if (stats.Has("cache")) {
    const tgcrn::obs::Json& cache = stats["cache"];
    std::printf(
        "cache: hits %lld  misses %lld  evictions %lld  "
        "eviction age p50 %lld ticks\n",
        static_cast<long long>(cache.GetInt("hits")),
        static_cast<long long>(cache.GetInt("misses")),
        static_cast<long long>(cache.GetInt("evictions")),
        static_cast<long long>(cache.GetInt("eviction_age_p50_ticks")));
  }
  if (!stats.Has("stages")) {
    std::printf(
        "no stage telemetry (server not armed: set TGCRN_SERVE_ACCESS_LOG "
        "or TGCRN_SERVE_SLOW_US)\n");
    return;
  }
  const tgcrn::obs::Json& stages = stats["stages"];
  tgcrn::TablePrinter table({"stage", "count", "p50_us", "p90_us", "p99_us"});
  for (int s = 0; s < tgcrn::serve::kServeStageCount; ++s) {
    const char* name = tgcrn::serve::ServeStageName(s);
    if (!stages.Has(name)) continue;
    const tgcrn::obs::Json& stage = stages[name];
    table.AddRow({name, std::to_string(stage.GetInt("count")),
                  std::to_string(stage.GetInt("p50_us")),
                  std::to_string(stage.GetInt("p90_us")),
                  std::to_string(stage.GetInt("p99_us"))});
  }
  table.Print();
  if (stats.Has("slow_count")) {
    std::printf("slow requests kept: %lld (view with `slow`)\n",
                static_cast<long long>(stats.GetInt("slow_count")));
  }
}

int RenderSlow(const tgcrn::obs::Json& stats) {
  if (!stats.Has("slow_requests")) {
    std::fprintf(stderr,
                 "no slow-request telemetry (server not armed: set "
                 "TGCRN_SERVE_SLOW_US)\n");
    return 1;
  }
  const tgcrn::obs::Json& slow = stats["slow_requests"];
  std::printf("%zu slow request(s), oldest first:\n", slow.size());
  tgcrn::TablePrinter table({"id", "op", "status", "batch", "total_us",
                             "read", "parse", "batch_wait", "gather",
                             "kernel", "scatter", "serialize", "flush"});
  for (size_t i = 0; i < slow.size(); ++i) {
    const tgcrn::obs::Json& entry = slow.at(i);
    const tgcrn::obs::Json& us = entry["stage_us"];
    std::vector<std::string> row = {
        std::to_string(entry.GetInt("id")), entry.GetString("op"),
        entry.GetString("status"), std::to_string(entry.GetInt("batch")),
        std::to_string(entry.GetInt("total_us"))};
    for (int s = 0; s < tgcrn::serve::kServeStageCount; ++s) {
      row.push_back(
          std::to_string(us.GetInt(tgcrn::serve::ServeStageName(s))));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s <show|watch|slow> --port PORT [--host H]\n"
                 "  [--interval SECONDS] [--count N]\n"
                 "operator guide: docs/SERVING.md\n",
                 argv[0]);
    return 2;
  }
  if (args.command == "slow") {
    tgcrn::obs::Json stats;
    if (!FetchStats(args, /*slow_view=*/true, &stats)) return 1;
    return RenderSlow(stats);
  }
  int polls = 0;
  for (;;) {
    tgcrn::obs::Json stats;
    if (!FetchStats(args, /*slow_view=*/false, &stats)) return 1;
    RenderStats(stats);
    if (args.command == "show") return 0;
    ++polls;
    if (args.count > 0 && polls >= args.count) return 0;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(args.interval_s));
  }
}
