// Copyright 2026 TGCRN Reproduction Authors
// Pretty-printer and regression gate for kernel cost profiles (obs/prof.h):
//
//   tgcrn_prof show <profile>                    kernel roofline table + tree
//   tgcrn_prof stacks <profile>                  collapsed flamegraph lines
//   tgcrn_prof diff <baseline> <candidate> [--max-regress-pct=N]
//
// <profile> is either a profile JSON file (written by TGCRN_PROF=<path> or
// `train_model --prof`) or a run-report JSONL file whose epoch lines carry
// "prof" blocks — the per-epoch deltas are accumulated back into one
// whole-run profile. `diff` gates per-kernel invocation counts (and total
// instructions when both runs had perf counters) on --max-regress-pct;
// cycles/IPC are informational. See obs/diff.h for the gating rules.
//
// Exit codes: 0 ok / no regression, 1 regression, 2 usage or parse error.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "obs/diff.h"
#include "obs/json.h"
#include "obs/report.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Loads either format into one ProfReport. A profile JSON file is a single
// object with a "kernels" array; anything else is treated as run JSONL and
// must hold at least one epoch with a "prof" block.
bool LoadProfile(const std::string& path, tgcrn::obs::ProfReport* out) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "tgcrn_prof: cannot read %s\n", path.c_str());
    return false;
  }
  tgcrn::obs::Json json;
  if (tgcrn::obs::Json::Parse(content, &json) && json.Has("kernels")) {
    *out = tgcrn::obs::ProfReport::FromJson(json);
    return true;
  }
  tgcrn::obs::RunReport run;
  if (!tgcrn::obs::RunReport::FromJsonl(content, &run)) {
    std::fprintf(stderr,
                 "tgcrn_prof: %s is neither a profile JSON file nor report "
                 "JSONL\n",
                 path.c_str());
    return false;
  }
  bool any = false;
  for (const auto& epoch : run.epochs) {
    if (!epoch.has_prof) continue;
    any = true;
    out->Accumulate(epoch.prof);
  }
  if (!any) {
    std::fprintf(stderr,
                 "tgcrn_prof: %s holds no epoch \"prof\" blocks (run with "
                 "TGCRN_PROF=1 or train_model --prof)\n",
                 path.c_str());
    return false;
  }
  return true;
}

void PrintShow(const tgcrn::obs::ProfReport& report) {
  std::printf("isa: %s  threads: %lld  perf counters: %s\n",
              report.isa.empty() ? "unknown" : report.isa.c_str(),
              static_cast<long long>(report.threads),
              report.counters_available ? "yes" : "no");

  std::printf("\nkernel cost summary (exclusive = caller thread):\n");
  std::vector<std::string> columns = {"kernel",  "invocations", "excl_s",
                                      "worker_s", "gflop/s",    "flop/byte"};
  if (report.counters_available) {
    columns.push_back("ipc");
    columns.push_back("l1_miss");
    columns.push_back("llc_miss");
  }
  tgcrn::TablePrinter table(columns);
  for (const auto& k : report.kernels) {
    // Registered kernels the run never invoked (e.g. the sparse SpMM set
    // during a dense run) would render as all-zero roofline rows — noise,
    // not signal.
    if (k.invocations == 0) continue;
    std::vector<std::string> row = {
        k.name,
        tgcrn::TablePrinter::Num(static_cast<double>(k.invocations), 0),
        tgcrn::TablePrinter::Num(k.exclusive_seconds, 4),
        tgcrn::TablePrinter::Num(k.worker_seconds, 4),
        tgcrn::TablePrinter::Num(k.GFlops(), 2),
        tgcrn::TablePrinter::Num(k.ArithmeticIntensity(), 2)};
    if (report.counters_available) {
      row.push_back(tgcrn::TablePrinter::Num(k.Ipc(), 2));
      row.push_back(
          tgcrn::TablePrinter::Num(static_cast<double>(k.l1_misses), 0));
      row.push_back(
          tgcrn::TablePrinter::Num(static_cast<double>(k.llc_misses), 0));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf("\nattribution tree (inclusive / exclusive seconds):\n");
  std::vector<int> depth(report.nodes.size(), 0);
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    const int64_t parent = report.nodes[i].parent;
    if (parent >= 0) depth[i] = depth[static_cast<size_t>(parent)] + 1;
    const auto& node = report.nodes[i];
    std::printf("%*s%-*s %10lld  %9.4f  %9.4f\n", depth[i] * 2, "",
                40 - depth[i] * 2, node.name.c_str(),
                static_cast<long long>(node.count), node.inclusive_seconds,
                node.exclusive_seconds);
  }
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: tgcrn_prof show <profile>\n"
      "       tgcrn_prof stacks <profile>\n"
      "       tgcrn_prof diff <baseline> <candidate> [--max-regress-pct=N]\n"
      "  show    kernel roofline table (invocations, exclusive/worker\n"
      "          seconds, GFLOP/s, FLOP/byte; IPC and cache misses when\n"
      "          perf counters were available) plus the attribution tree\n"
      "  stacks  collapsed flamegraph lines (feed to flamegraph.pl)\n"
      "  diff    gates per-kernel invocation counts (and total\n"
      "          instructions when both runs had counters) at\n"
      "          --max-regress-pct (default 10); cycle/IPC rows are\n"
      "          informational\n"
      "<profile> is a profile JSON (TGCRN_PROF=<path>, train_model --prof,\n"
      "bench --report) or a run-report JSONL whose epoch lines carry\n"
      "\"prof\" blocks — epoch deltas are summed into one whole-run\n"
      "profile.\n"
      "exit codes: 0 ok, 1 regression, 2 usage or parse error\n"
      "docs: docs/BENCHMARKS.md (reading the roofline table), docs/API.md\n"
      "(profile JSON schema)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "show" || command == "stacks") {
    if (argc != 3) return Usage();
    tgcrn::obs::ProfReport report;
    if (!LoadProfile(argv[2], &report)) return 2;
    if (command == "show") {
      PrintShow(report);
    } else {
      std::fputs(report.ToCollapsed().c_str(), stdout);
    }
    return 0;
  }

  if (command == "diff") {
    std::string baseline_path;
    std::string candidate_path;
    tgcrn::obs::ReportDiffOptions options;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--max-regress-pct=", 0) == 0) {
        options.max_regress_pct = std::atof(arg.c_str() + arg.find('=') + 1);
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "tgcrn_prof: unknown flag %s\n", arg.c_str());
        return Usage();
      } else if (baseline_path.empty()) {
        baseline_path = arg;
      } else if (candidate_path.empty()) {
        candidate_path = arg;
      } else {
        return Usage();
      }
    }
    if (baseline_path.empty() || candidate_path.empty()) return Usage();

    tgcrn::obs::ProfReport baseline;
    tgcrn::obs::ProfReport candidate;
    if (!LoadProfile(baseline_path, &baseline) ||
        !LoadProfile(candidate_path, &candidate)) {
      return 2;
    }
    const tgcrn::obs::ReportDiffResult result =
        tgcrn::obs::DiffProfiles(baseline, candidate, options);
    tgcrn::TablePrinter table(
        {"metric", "baseline", "candidate", "delta_pct", "status"});
    for (const auto& row : result.rows) {
      const char* status = row.regressed ? "REGRESSED"
                           : row.gated   ? "ok"
                                         : "info";
      table.AddRow({row.metric, tgcrn::TablePrinter::Num(row.baseline, 4),
                    tgcrn::TablePrinter::Num(row.candidate, 4),
                    tgcrn::TablePrinter::Num(row.delta_pct, 2), status});
    }
    table.Print();
    if (!result.ok()) {
      std::fprintf(stderr,
                   "tgcrn_prof: %lld metric(s) regressed beyond %.6g%%\n",
                   static_cast<long long>(result.regressions),
                   options.max_regress_pct);
      return 1;
    }
    std::printf("tgcrn_prof: no regressions (%zu metrics compared)\n",
                result.rows.size());
    return 0;
  }

  return Usage();
}
