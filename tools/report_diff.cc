// Copyright 2026 TGCRN Reproduction Authors
// Regression gate over two run-report JSONL files (obs/report.h format):
//
//   tgcrn_report_diff baseline.jsonl candidate.jsonl \
//       [--max-regress-pct=10] [--max-time-regress-pct=<pct|-1>]
//
// Prints a metric/baseline/candidate/delta table and exits 0 when no gated
// metric regressed beyond its threshold, 1 on regression, 2 on usage or
// parse errors. --max-time-regress-pct=-1 reports timing rows without
// gating them (for machines with noisy clocks); leaving it unset gates
// timing at --max-regress-pct. See obs/diff.h for the full gating rules.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/table_printer.h"
#include "obs/diff.h"
#include "obs/report.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool LoadReport(const std::string& path, tgcrn::obs::RunReport* report) {
  std::string content;
  if (!ReadFile(path, &content)) {
    std::fprintf(stderr, "tgcrn_report_diff: cannot read %s\n", path.c_str());
    return false;
  }
  if (!tgcrn::obs::RunReport::FromJsonl(content, report)) {
    std::fprintf(stderr, "tgcrn_report_diff: %s is not valid report JSONL\n",
                 path.c_str());
    return false;
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: tgcrn_report_diff <baseline.jsonl> <candidate.jsonl>"
      " [--max-regress-pct=N] [--max-time-regress-pct=N|-1]\n"
      "  --max-regress-pct=N       allowed worsening for accuracy metrics\n"
      "                            (best val/test MAE-RMSE-MAPE), percent of\n"
      "                            the baseline value (default 10)\n"
      "  --max-time-regress-pct=N  allowed worsening for timing metrics\n"
      "                            (epoch seconds, phase.<name>_s rows);\n"
      "                            unset inherits --max-regress-pct, -1\n"
      "                            reports timing without gating it (noisy\n"
      "                            clocks / shared CI runners)\n"
      "exit codes: 0 no regression, 1 regression, 2 usage or parse error\n"
      "docs: docs/BENCHMARKS.md (regression gating), docs/API.md (report\n"
      "JSONL schema)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  tgcrn::obs::ReportDiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--max-regress-pct=", 0) == 0) {
      options.max_regress_pct = std::atof(arg.c_str() + eq + 1);
    } else if (arg.rfind("--max-time-regress-pct=", 0) == 0) {
      options.max_time_regress_pct = std::atof(arg.c_str() + eq + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "tgcrn_report_diff: unknown flag %s\n",
                   arg.c_str());
      return Usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return Usage();

  tgcrn::obs::RunReport baseline;
  tgcrn::obs::RunReport candidate;
  if (!LoadReport(baseline_path, &baseline) ||
      !LoadReport(candidate_path, &candidate)) {
    return 2;
  }
  if (candidate.epochs.empty() && !candidate.has_summary) {
    std::fprintf(stderr, "tgcrn_report_diff: %s holds no epoch or summary"
                 " lines\n", candidate_path.c_str());
    return 2;
  }

  const tgcrn::obs::ReportDiffResult result =
      tgcrn::obs::DiffReports(baseline, candidate, options);

  tgcrn::TablePrinter table(
      {"metric", "baseline", "candidate", "delta_pct", "status"});
  for (const auto& row : result.rows) {
    const char* status = row.regressed ? "REGRESSED"
                         : row.gated   ? "ok"
                                       : "info";
    table.AddRow({row.metric, tgcrn::TablePrinter::Num(row.baseline, 4),
                  tgcrn::TablePrinter::Num(row.candidate, 4),
                  tgcrn::TablePrinter::Num(row.delta_pct, 2), status});
  }
  table.Print();
  if (!result.ok()) {
    std::fprintf(stderr,
                 "tgcrn_report_diff: %lld metric(s) regressed beyond "
                 "threshold (%.6g%% accuracy / %.6g%% time)\n",
                 static_cast<long long>(result.regressions),
                 options.max_regress_pct,
                 std::isnan(options.max_time_regress_pct)
                     ? options.max_regress_pct
                     : options.max_time_regress_pct);
    return 1;
  }
  std::printf("tgcrn_report_diff: no regressions (%zu metrics compared)\n",
              result.rows.size());
  return 0;
}
