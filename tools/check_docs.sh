#!/usr/bin/env bash
# Documentation consistency checks, run in CI (see .github/workflows/ci.yml):
#
#   1. Every intra-repo link in the committed markdown files resolves to an
#      existing file (external http(s)/mailto links and pure #anchors are
#      skipped; a #fragment on a file link is stripped before the check).
#   2. The TGCRN_* environment variables read via getenv() in the sources
#      exactly match the rows of the env-var table in docs/API.md, in both
#      directions — an undocumented variable or a documented-but-gone
#      variable both fail.
#
# Usage: tools/check_docs.sh   (from anywhere; resolves the repo root itself)
set -u

cd "$(dirname "$0")/.." || exit 1
fail=0

# --- 1. intra-repo markdown links -----------------------------------------
# Matches the inline form [text](target). Reference-style links are not used
# in this repo. Targets inside code spans are rare enough that false
# positives would show up as a hard failure here, so we keep the grep simple.
mapfile -t md_files < <(git ls-files --cached --others --exclude-standard '*.md')
for f in "${md_files[@]}"; do
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"            # strip #fragment
    [ -z "$path" ] && continue
    base="$(dirname "$f")"
    if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
      echo "BROKEN LINK: $f -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. TGCRN_* env vars: source vs docs/API.md ---------------------------
src_vars="$(grep -rhoE 'getenv\("TGCRN_[A-Z0-9_]+"\)' src tools bench \
              | sed -E 's/getenv\("//; s/"\)//' | sort -u)"
doc_vars="$(grep -oE '^\| TGCRN_[A-Z0-9_]+ ' docs/API.md \
              | sed -E 's/^\| //; s/ $//' | sort -u)"

undocumented="$(comm -23 <(printf '%s\n' "$src_vars") <(printf '%s\n' "$doc_vars"))"
stale="$(comm -13 <(printf '%s\n' "$src_vars") <(printf '%s\n' "$doc_vars"))"

if [ -n "$undocumented" ]; then
  echo "ENV VARS read in source but missing from docs/API.md table:"
  printf '  %s\n' $undocumented
  fail=1
fi
if [ -n "$stale" ]; then
  echo "ENV VARS documented in docs/API.md but not read anywhere in source:"
  printf '  %s\n' $stale
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "check_docs: ${#md_files[@]} markdown files, all links resolve;"
  echo "check_docs: env-var table in docs/API.md matches the sources:"
  printf '  %s\n' $src_vars
fi
exit "$fail"
