// Copyright 2026 TGCRN Reproduction Authors
// CLI: generate one of the simulator datasets and export it as CSV (plus,
// for the metro simulator, the pairwise station distances), so external
// tooling - or this library's CSV loader - can consume it.
//
// Usage:
//   export_dataset <metro|demand|electricity> <output.csv>
//       [--nodes N] [--days D] [--seed S] [--distances dist.csv]
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table_printer.h"
#include "data/csv_loader.h"
#include "datagen/demand_sim.h"
#include "datagen/electricity_sim.h"
#include "datagen/metro_sim.h"

namespace {

struct Args {
  std::string kind;
  std::string output;
  int64_t nodes = 0;  // 0 = simulator default
  int64_t days = 0;
  uint64_t seed = 1;
  std::string distances_path;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 3) return false;
  args->kind = argv[1];
  args->output = argv[2];
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--nodes") {
      args->nodes = std::stoll(value);
    } else if (flag == "--days") {
      args->days = std::stoll(value);
    } else if (flag == "--seed") {
      args->seed = std::stoull(value);
    } else if (flag == "--distances") {
      args->distances_path = value;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

tgcrn::Status WriteDistances(const tgcrn::Tensor& distances,
                             const std::string& path) {
  const int64_t n = distances.size(0);
  std::vector<std::string> header;
  for (int64_t j = 0; j < n; ++j) {
    header.push_back("node" + std::to_string(j));
  }
  tgcrn::TablePrinter table(header);
  for (int64_t i = 0; i < n; ++i) {
    std::vector<std::string> row;
    for (int64_t j = 0; j < n; ++j) {
      row.push_back(tgcrn::TablePrinter::Num(distances.at({i, j}), 4));
    }
    table.AddRow(std::move(row));
  }
  return table.WriteCsv(path);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s <metro|demand|electricity> <output.csv> "
                 "[--nodes N] [--days D] [--seed S] [--distances out.csv]\n",
                 argv[0]);
    return 2;
  }

  tgcrn::data::SpatioTemporalData data;
  tgcrn::Tensor distances;
  if (args.kind == "metro") {
    tgcrn::datagen::MetroSimConfig config;
    if (args.nodes > 0) config.num_stations = args.nodes;
    if (args.days > 0) config.num_days = args.days;
    config.seed = args.seed;
    config.keep_od_ground_truth = false;
    auto sim = tgcrn::datagen::SimulateMetro(config);
    data = std::move(sim.data);
    distances = sim.distances;
  } else if (args.kind == "demand") {
    tgcrn::datagen::DemandSimConfig config;
    if (args.nodes > 0) config.num_zones = args.nodes;
    if (args.days > 0) config.num_days = args.days;
    config.seed = args.seed;
    auto sim = tgcrn::datagen::SimulateDemand(config);
    data = std::move(sim.data);
    distances = sim.distances;
  } else if (args.kind == "electricity") {
    tgcrn::datagen::ElectricitySimConfig config;
    if (args.nodes > 0) config.num_clients = args.nodes;
    if (args.days > 0) config.num_days = args.days;
    config.seed = args.seed;
    auto sim = tgcrn::datagen::SimulateElectricity(config);
    data = std::move(sim.data);
  } else {
    std::fprintf(stderr, "unknown dataset kind '%s'\n", args.kind.c_str());
    return 2;
  }

  tgcrn::Status status = tgcrn::data::SaveCsv(data, args.output);
  if (!status.ok()) {
    std::fprintf(stderr, "export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld steps x %lld nodes x %lld features to %s\n",
              static_cast<long long>(data.num_steps()),
              static_cast<long long>(data.num_nodes()),
              static_cast<long long>(data.num_features()),
              args.output.c_str());
  if (!args.distances_path.empty() && distances.numel() > 0) {
    status = WriteDistances(distances, args.distances_path);
    if (!status.ok()) {
      std::fprintf(stderr, "distance export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote distances to %s\n", args.distances_path.c_str());
  }
  return 0;
}
