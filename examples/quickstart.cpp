// Copyright 2026 TGCRN Reproduction Authors
// Quickstart: the minimal end-to-end use of the library.
//  1. Generate a spatially correlated metro dataset (the HZMetro stand-in).
//  2. Wrap it in a ForecastDataset (windows, scaling, splits).
//  3. Train TGCRN with the paper's joint objective.
//  4. Report per-horizon test metrics and show one forecast.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"

using namespace tgcrn;  // NOLINT: example brevity

int main() {
  // 1. Simulate a small metro system: 12 stations, 3 weeks, 15-min slots.
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 12;
  sim_config.num_days = 21;
  sim_config.seed = 7;
  sim_config.keep_od_ground_truth = false;
  std::printf("Simulating metro system (%lld stations, %lld days)...\n",
              static_cast<long long>(sim_config.num_stations),
              static_cast<long long>(sim_config.num_days));
  auto sim = datagen::SimulateMetro(sim_config);

  // 2. Windows of P=4 input steps forecasting Q=4 future steps.
  data::ForecastDataset::Options data_options;
  data_options.input_steps = 4;
  data_options.output_steps = 4;
  data::ForecastDataset dataset(std::move(sim.data), data_options);
  std::printf("Dataset: %lld train / %lld val / %lld test windows\n",
              static_cast<long long>(dataset.NumTrainSamples()),
              static_cast<long long>(dataset.NumValSamples()),
              static_cast<long long>(dataset.NumTestSamples()));

  // 3. TGCRN with a small footprint (single CPU core).
  core::TGCRNConfig model_config;
  model_config.num_nodes = sim_config.num_stations;
  model_config.input_dim = 2;   // inflow, outflow
  model_config.output_dim = 2;
  model_config.horizon = 4;
  model_config.hidden_dim = 12;
  model_config.num_layers = 2;
  model_config.node_embed_dim = 8;
  model_config.time_embed_dim = 6;
  model_config.steps_per_day = 72;
  Rng rng(1);
  core::TGCRN model(model_config, &rng);
  std::printf("TGCRN parameters: %lld\n",
              static_cast<long long>(model.NumParameters()));

  core::TrainConfig train_config;
  train_config.epochs = 3;
  train_config.batch_size = 16;
  train_config.max_batches_per_epoch = 40;
  const auto result = core::TrainAndEvaluate(&model, dataset, train_config);

  // 4. Report.
  std::printf("\nTest metrics per horizon (15-min steps):\n");
  for (size_t h = 0; h < result.per_horizon.size(); ++h) {
    const auto& m = result.per_horizon[h];
    std::printf("  %2zu min  MAE %6.2f  RMSE %6.2f  MAPE %5.1f%%\n",
                (h + 1) * 15, m.mae, m.rmse, m.mape);
  }
  std::printf("  avg     MAE %6.2f  RMSE %6.2f  MAPE %5.1f%%\n",
              result.average.mae, result.average.rmse, result.average.mape);
  std::printf("Training: %.1fs total, %.2fs/epoch\n", result.total_seconds,
              result.seconds_per_epoch);

  // Show one forecast for station 0.
  const data::Batch sample =
      dataset.MakeBatch(data::ForecastDataset::Split::kTest, {0});
  model.SetTraining(false);
  const Tensor pred =
      dataset.scaler().InverseTransform(model.Forward(sample).value());
  std::printf("\nStation 0 inflow, first test window:\n  horizon:");
  for (int64_t q = 0; q < 4; ++q) std::printf("%10lld", (long long)(q + 1));
  std::printf("\n  actual: ");
  for (int64_t q = 0; q < 4; ++q) {
    std::printf("%10.1f", sample.y.at({0, q, 0, 0}));
  }
  std::printf("\n  forecast:");
  for (int64_t q = 0; q < 4; ++q) {
    std::printf("%9.1f", pred.at({0, q, 0, 0}));
  }
  std::printf("\n");
  return 0;
}
