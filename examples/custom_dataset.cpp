// Copyright 2026 TGCRN Reproduction Authors
// Integration example: plugging YOUR OWN spatially correlated time series
// into the library. Shows the full path a downstream user follows:
//   1. fill a data::SpatioTemporalData from raw arrays (here: a toy
//      sensor network generated inline - replace with your CSV loader),
//   2. wrap it in a ForecastDataset (windowing, scaling, splits),
//   3. configure and train TGCRN,
//   4. save the trained weights, reload them into a fresh model, and
//      verify the reloaded model predicts identically.
//
// Run:  ./examples/custom_dataset
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/tgcrn.h"
#include "core/trainer.h"

using namespace tgcrn;  // NOLINT: example brevity

int main() {
  // --- 1. Your data: values[t][sensor][feature] + calendar info ----------
  const int64_t num_sensors = 6;
  const int64_t steps_per_day = 24;  // hourly
  const int64_t num_days = 30;
  const int64_t total = steps_per_day * num_days;

  data::SpatioTemporalData data;
  data.values = Tensor::Zeros({total, num_sensors, 1});
  data.steps_per_day = steps_per_day;
  Rng noise(7);
  for (int64_t t = 0; t < total; ++t) {
    data.slot_of_day.push_back(t % steps_per_day);
    data.day_of_week.push_back((t / steps_per_day) % 7);
    const double hour = static_cast<double>(t % steps_per_day);
    // Each sensor: a phase-shifted daily wave + shared random walk.
    for (int64_t s = 0; s < num_sensors; ++s) {
      const double phase = 2.0 * M_PI * (hour - 2.0 * s) / 24.0;
      const double value = 50.0 + 20.0 * std::sin(phase) +
                           5.0 * noise.NextGaussian();
      data.values.set({t, s, 0}, static_cast<float>(value));
    }
  }

  // --- 2. Windowing / scaling / splits -----------------------------------
  data::ForecastDataset::Options options;
  options.input_steps = 6;
  options.output_steps = 3;
  options.train_fraction = 0.7;
  options.val_fraction = 0.15;
  data::ForecastDataset dataset(std::move(data), options);
  std::printf("windows: %lld train / %lld val / %lld test\n",
              static_cast<long long>(dataset.NumTrainSamples()),
              static_cast<long long>(dataset.NumValSamples()),
              static_cast<long long>(dataset.NumTestSamples()));

  // --- 3. Model + training ------------------------------------------------
  core::TGCRNConfig config;
  config.num_nodes = num_sensors;
  config.input_dim = 1;
  config.output_dim = 1;
  config.horizon = options.output_steps;
  config.hidden_dim = 8;
  config.num_layers = 1;
  config.node_embed_dim = 6;
  config.time_embed_dim = 4;
  config.steps_per_day = steps_per_day;
  Rng rng(1);
  core::TGCRN model(config, &rng);

  core::TrainConfig train_config;
  train_config.epochs = 4;
  train_config.verbose = false;
  const auto result = core::TrainAndEvaluate(&model, dataset, train_config);
  std::printf("test MAE %.2f (data scale: mean 50, amplitude 20)\n",
              result.average.mae);

  // --- 4. Checkpoint round trip -------------------------------------------
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "custom_model.ckpt")
          .string();
  Status status = model.SaveParameters(ckpt);
  if (!status.ok()) {
    std::printf("save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  Rng rng2(999);  // different init on purpose
  core::TGCRN reloaded(config, &rng2);
  status = reloaded.LoadParameters(ckpt);
  if (!status.ok()) {
    std::printf("load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const data::Batch probe =
      dataset.MakeBatch(data::ForecastDataset::Split::kTest, {0, 1});
  model.SetTraining(false);
  reloaded.SetTraining(false);
  const Tensor a = model.Forward(probe).value();
  const Tensor b = reloaded.Forward(probe).value();
  std::printf("reloaded model reproduces predictions exactly: %s\n",
              a.AllClose(b, 1e-6f) ? "yes" : "NO");
  std::filesystem::remove(ckpt);
  return a.AllClose(b, 1e-6f) ? 0 : 1;
}
