// Copyright 2026 TGCRN Reproduction Authors
// Domain example: metro ridership forecasting with learned-graph analysis.
// Trains TGCRN on a simulated metro network, then inspects the learned
// time-aware structure the way an operator would:
//   * strongest learned correlations at the morning peak vs late evening,
//   * how a station pair's correlation trends through the day,
//   * weekday vs weekend graph difference.
//
// Run:  ./examples/metro_graph_analysis
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"

using namespace tgcrn;  // NOLINT: example brevity

namespace {

const char* AreaName(datagen::AreaType type) {
  switch (type) {
    case datagen::AreaType::kResidential:
      return "residential";
    case datagen::AreaType::kBusiness:
      return "business";
    case datagen::AreaType::kShopping:
      return "shopping";
    case datagen::AreaType::kMixed:
      return "mixed";
  }
  return "?";
}

// Prints the k strongest off-diagonal edges of an adjacency matrix.
void PrintTopEdges(const Tensor& adj,
                   const std::vector<datagen::AreaType>& areas, int64_t k) {
  const int64_t n = adj.size(0);
  std::vector<std::tuple<float, int64_t, int64_t>> edges;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i != j) edges.emplace_back(adj.at({i, j}), i, j);
    }
  }
  std::partial_sort(edges.begin(), edges.begin() + k, edges.end(),
                    std::greater<>());
  for (int64_t e = 0; e < k; ++e) {
    const auto& [w, i, j] = edges[e];
    std::printf("    %2lld (%-11s) -> %2lld (%-11s)  weight %.4f\n",
                static_cast<long long>(i), AreaName(areas[i]),
                static_cast<long long>(j), AreaName(areas[j]), w);
  }
}

}  // namespace

int main() {
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 14;
  sim_config.num_days = 21;
  sim_config.seed = 13;
  sim_config.keep_od_ground_truth = false;
  auto sim = datagen::SimulateMetro(sim_config);
  const auto areas = sim.area_types;
  const Tensor raw_values = sim.data.values;
  const auto slot_of_day = sim.data.slot_of_day;

  data::ForecastDataset::Options data_options;
  data_options.input_steps = 4;
  data_options.output_steps = 4;
  data::ForecastDataset dataset(std::move(sim.data), data_options);

  core::TGCRNConfig config;
  config.num_nodes = sim_config.num_stations;
  config.input_dim = 2;
  config.output_dim = 2;
  config.horizon = 4;
  config.hidden_dim = 14;
  config.node_embed_dim = 10;
  config.time_embed_dim = 8;
  config.steps_per_day = 72;
  Rng rng(3);
  core::TGCRN model(config, &rng);

  core::TrainConfig train_config;
  train_config.epochs = 10;
  train_config.lr = 6e-3f;
  train_config.lr_milestones = {6, 9};
  train_config.max_batches_per_epoch = 50;
  train_config.verbose = false;
  std::printf("Training TGCRN on %lld stations (%lld parameters)...\n",
              static_cast<long long>(sim_config.num_stations),
              static_cast<long long>(model.NumParameters()));
  const auto result = core::TrainAndEvaluate(&model, dataset, train_config);
  std::printf("Test MAE %.2f  RMSE %.2f  MAPE %.1f%% (avg over 1h)\n\n",
              result.average.mae, result.average.rmse, result.average.mape);

  // Node state from a weekday morning in the test period (day 18 = Friday)
  // and the same time on a weekend (day 20 = Sunday).
  const int64_t spd = 72;
  const int64_t slot_peak = 8;   // 08:00
  const int64_t slot_late = 62;  // 21:30
  auto state_at = [&](int64_t t) {
    return dataset.scaler()
        .Transform(raw_values.Slice(0, t, t + 1))
        .Squeeze(0);
  };

  std::printf("Strongest learned correlations, weekday 08:00:\n");
  PrintTopEdges(model.LearnedAdjacency(state_at(18 * spd + slot_peak),
                                       {slot_peak}),
                areas, 5);
  std::printf("\nStrongest learned correlations, weekday 21:30:\n");
  PrintTopEdges(model.LearnedAdjacency(state_at(18 * spd + slot_late),
                                       {slot_late}),
                areas, 5);

  // Trend of one station pair over the morning.
  std::printf("\nLearned correlation trend through the morning "
              "(edge 0 -> 1):\n");
  for (int64_t slot = 4; slot <= 20; slot += 4) {
    const Tensor adj =
        model.LearnedAdjacency(state_at(18 * spd + slot), {slot});
    std::printf("  %02lld:%02lld  %.4f\n",
                static_cast<long long>(6 + slot / 4),
                static_cast<long long>((slot % 4) * 15), adj.at({0, 1}));
  }

  // Weekday/weekend contrast at the same clock time.
  const Tensor weekday =
      model.LearnedAdjacency(state_at(18 * spd + slot_peak), {slot_peak});
  const Tensor weekend =
      model.LearnedAdjacency(state_at(20 * spd + slot_peak), {slot_peak});
  std::printf("\nMean |weekday - weekend| learned edge difference at 08:00: "
              "%.5f\n",
              weekday.Sub(weekend).Abs().MeanAll());
  (void)slot_of_day;
  return 0;
}
