// Copyright 2026 TGCRN Reproduction Authors
// Domain example: shared-mobility demand prediction (the paper's NYC-Bike /
// NYC-Taxi scenario). Long-horizon setting: 12 half-hour input steps, 12
// forecast steps, two channels (pick-up, drop-off). Compares TGCRN against
// the Historical Average baseline and reports PCC as in Table V, plus a
// per-horizon error profile.
//
// Run:  ./examples/demand_prediction
#include <cstdio>

#include "baselines/ha.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/demand_sim.h"

using namespace tgcrn;  // NOLINT: example brevity

int main() {
  datagen::DemandSimConfig sim_config;
  sim_config.num_zones = 14;
  sim_config.num_days = 28;
  sim_config.seed = 19;
  sim_config.target_mean_demand = 6.0;
  auto sim = datagen::SimulateDemand(sim_config);
  std::printf("Simulated %lld zones x %lld days of 30-min demand "
              "(communities induce the spatial correlation)\n",
              static_cast<long long>(sim_config.num_zones),
              static_cast<long long>(sim_config.num_days));

  // Keep a copy of the raw series for the HA baseline.
  data::SpatioTemporalData raw = sim.data;

  data::ForecastDataset::Options options;
  options.input_steps = 12;
  options.output_steps = 12;
  data::ForecastDataset dataset(std::move(sim.data), options);

  // Historical average reference.
  baselines::HistoricalAverage ha;
  ha.Fit(raw, static_cast<int64_t>(raw.num_steps() * 0.7));
  const auto ha_metrics =
      metrics::AverageMetrics(ha.EvaluateOnDataset(dataset, {}));

  // TGCRN.
  core::TGCRNConfig config;
  config.num_nodes = sim_config.num_zones;
  config.input_dim = 2;
  config.output_dim = 2;
  config.horizon = 12;
  config.hidden_dim = 12;
  config.node_embed_dim = 8;
  config.time_embed_dim = 6;
  config.steps_per_day = 48;
  Rng rng(5);
  core::TGCRN model(config, &rng);
  core::TrainConfig train_config;
  train_config.epochs = 10;
  train_config.lr = 6e-3f;
  train_config.lr_milestones = {6, 9};
  train_config.max_batches_per_epoch = 45;
  train_config.verbose = false;
  std::printf("Training TGCRN (%lld parameters)...\n",
              static_cast<long long>(model.NumParameters()));
  const auto result = core::TrainAndEvaluate(&model, dataset, train_config);

  std::printf("\n              MAE     RMSE    PCC\n");
  std::printf("HA          %6.3f  %6.3f  %6.3f\n", ha_metrics.mae,
              ha_metrics.rmse, ha_metrics.pcc);
  std::printf("TGCRN       %6.3f  %6.3f  %6.3f\n", result.average.mae,
              result.average.rmse, result.average.pcc);

  std::printf("\nTGCRN error by horizon:\n");
  for (size_t h = 0; h < result.per_horizon.size(); h += 2) {
    std::printf("  +%3zu min: MAE %.3f  PCC %.3f\n", (h + 1) * 30,
                result.per_horizon[h].mae, result.per_horizon[h].pcc);
  }
  return 0;
}
