# Empty compiler generated dependencies file for tgcrn.
# This may be replaced when dependencies are built.
