file(REMOVE_RECURSE
  "libtgcrn.a"
)
