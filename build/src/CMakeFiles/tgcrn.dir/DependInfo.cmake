
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/tgcrn.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/tgcrn.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/autograd/variable.cc.o.d"
  "/root/repo/src/baselines/gbdt.cc" "src/CMakeFiles/tgcrn.dir/baselines/gbdt.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/baselines/gbdt.cc.o.d"
  "/root/repo/src/baselines/ha.cc" "src/CMakeFiles/tgcrn.dir/baselines/ha.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/baselines/ha.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tgcrn.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/tgcrn.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/gcgru.cc" "src/CMakeFiles/tgcrn.dir/core/gcgru.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/core/gcgru.cc.o.d"
  "/root/repo/src/core/tagsl.cc" "src/CMakeFiles/tgcrn.dir/core/tagsl.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/core/tagsl.cc.o.d"
  "/root/repo/src/core/tgcrn.cc" "src/CMakeFiles/tgcrn.dir/core/tgcrn.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/core/tgcrn.cc.o.d"
  "/root/repo/src/core/time_discrepancy.cc" "src/CMakeFiles/tgcrn.dir/core/time_discrepancy.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/core/time_discrepancy.cc.o.d"
  "/root/repo/src/core/time_encoders.cc" "src/CMakeFiles/tgcrn.dir/core/time_encoders.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/core/time_encoders.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/tgcrn.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/core/trainer.cc.o.d"
  "/root/repo/src/data/csv_loader.cc" "src/CMakeFiles/tgcrn.dir/data/csv_loader.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/data/csv_loader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/tgcrn.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/data/dataset.cc.o.d"
  "/root/repo/src/datagen/demand_sim.cc" "src/CMakeFiles/tgcrn.dir/datagen/demand_sim.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/datagen/demand_sim.cc.o.d"
  "/root/repo/src/datagen/electricity_sim.cc" "src/CMakeFiles/tgcrn.dir/datagen/electricity_sim.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/datagen/electricity_sim.cc.o.d"
  "/root/repo/src/datagen/metro_sim.cc" "src/CMakeFiles/tgcrn.dir/datagen/metro_sim.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/datagen/metro_sim.cc.o.d"
  "/root/repo/src/graph/graph_ops.cc" "src/CMakeFiles/tgcrn.dir/graph/graph_ops.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/graph/graph_ops.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/tgcrn.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/tgcrn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/nn/module.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/tgcrn.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/viz/heatmap.cc" "src/CMakeFiles/tgcrn.dir/viz/heatmap.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/viz/heatmap.cc.o.d"
  "/root/repo/src/viz/tsne.cc" "src/CMakeFiles/tgcrn.dir/viz/tsne.cc.o" "gcc" "src/CMakeFiles/tgcrn.dir/viz/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
