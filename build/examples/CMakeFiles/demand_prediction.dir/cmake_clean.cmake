file(REMOVE_RECURSE
  "CMakeFiles/demand_prediction.dir/demand_prediction.cpp.o"
  "CMakeFiles/demand_prediction.dir/demand_prediction.cpp.o.d"
  "demand_prediction"
  "demand_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
