# Empty dependencies file for demand_prediction.
# This may be replaced when dependencies are built.
