file(REMOVE_RECURSE
  "CMakeFiles/metro_graph_analysis.dir/metro_graph_analysis.cpp.o"
  "CMakeFiles/metro_graph_analysis.dir/metro_graph_analysis.cpp.o.d"
  "metro_graph_analysis"
  "metro_graph_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metro_graph_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
