# Empty dependencies file for metro_graph_analysis.
# This may be replaced when dependencies are built.
