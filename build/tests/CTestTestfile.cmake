# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/csv_loader_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_property_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_state_test[1]_include.cmake")
