# Empty compiler generated dependencies file for dataset_property_test.
# This may be replaced when dependencies are built.
