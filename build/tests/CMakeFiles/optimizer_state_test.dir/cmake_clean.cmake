file(REMOVE_RECURSE
  "CMakeFiles/optimizer_state_test.dir/optimizer_state_test.cc.o"
  "CMakeFiles/optimizer_state_test.dir/optimizer_state_test.cc.o.d"
  "optimizer_state_test"
  "optimizer_state_test.pdb"
  "optimizer_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimizer_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
