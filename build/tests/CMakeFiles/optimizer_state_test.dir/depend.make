# Empty dependencies file for optimizer_state_test.
# This may be replaced when dependencies are built.
