# Empty compiler generated dependencies file for tensor_fuzz_test.
# This may be replaced when dependencies are built.
