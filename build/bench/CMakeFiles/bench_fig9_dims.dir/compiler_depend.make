# Empty compiler generated dependencies file for bench_fig9_dims.
# This may be replaced when dependencies are built.
