file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dims.dir/bench_fig9_dims.cc.o"
  "CMakeFiles/bench_fig9_dims.dir/bench_fig9_dims.cc.o.d"
  "bench_fig9_dims"
  "bench_fig9_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
