# Empty compiler generated dependencies file for bench_fig12_time_repr.
# This may be replaced when dependencies are built.
