file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_time_repr.dir/bench_fig12_time_repr.cc.o"
  "CMakeFiles/bench_fig12_time_repr.dir/bench_fig12_time_repr.cc.o.d"
  "bench_fig12_time_repr"
  "bench_fig12_time_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_time_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
