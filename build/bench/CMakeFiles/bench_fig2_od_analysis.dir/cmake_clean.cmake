file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_od_analysis.dir/bench_fig2_od_analysis.cc.o"
  "CMakeFiles/bench_fig2_od_analysis.dir/bench_fig2_od_analysis.cc.o.d"
  "bench_fig2_od_analysis"
  "bench_fig2_od_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_od_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
