# Empty dependencies file for bench_fig2_od_analysis.
# This may be replaced when dependencies are built.
