# Empty dependencies file for bench_fig10_lambda.
# This may be replaced when dependencies are built.
