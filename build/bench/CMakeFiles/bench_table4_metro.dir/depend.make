# Empty dependencies file for bench_table4_metro.
# This may be replaced when dependencies are built.
