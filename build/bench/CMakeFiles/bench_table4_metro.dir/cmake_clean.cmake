file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_metro.dir/bench_table4_metro.cc.o"
  "CMakeFiles/bench_table4_metro.dir/bench_table4_metro.cc.o.d"
  "bench_table4_metro"
  "bench_table4_metro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_metro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
