file(REMOVE_RECURSE
  "libtgcrn_bench_common.a"
)
