file(REMOVE_RECURSE
  "CMakeFiles/tgcrn_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tgcrn_bench_common.dir/bench_common.cc.o.d"
  "libtgcrn_bench_common.a"
  "libtgcrn_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgcrn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
