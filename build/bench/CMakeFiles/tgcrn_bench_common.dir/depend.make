# Empty dependencies file for tgcrn_bench_common.
# This may be replaced when dependencies are built.
