# Empty dependencies file for bench_table6_electricity.
# This may be replaced when dependencies are built.
