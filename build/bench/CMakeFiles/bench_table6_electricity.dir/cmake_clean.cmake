file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_electricity.dir/bench_table6_electricity.cc.o"
  "CMakeFiles/bench_table6_electricity.dir/bench_table6_electricity.cc.o.d"
  "bench_table6_electricity"
  "bench_table6_electricity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_electricity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
