file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_graphs.dir/bench_fig11_graphs.cc.o"
  "CMakeFiles/bench_fig11_graphs.dir/bench_fig11_graphs.cc.o.d"
  "bench_fig11_graphs"
  "bench_fig11_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
