# Empty compiler generated dependencies file for bench_fig11_graphs.
# This may be replaced when dependencies are built.
