file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multistep.dir/bench_fig8_multistep.cc.o"
  "CMakeFiles/bench_fig8_multistep.dir/bench_fig8_multistep.cc.o.d"
  "bench_fig8_multistep"
  "bench_fig8_multistep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multistep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
