# Empty dependencies file for bench_fig8_multistep.
# This may be replaced when dependencies are built.
