// Copyright 2026 TGCRN Reproduction Authors
// Property/fuzz tests: randomly composed expression DAGs are gradchecked
// against finite differences, and tensor kernels are checked against
// straightforward reference implementations on random shapes.
#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/thread_pool.h"
#include "gradcheck.h"

namespace tgcrn {
namespace {

using ag::Variable;
using testing::ExpectGradientsClose;

// Reference matmul: plain triple loop over explicit batch index.
Tensor ReferenceMatmul(const Tensor& a, const Tensor& b) {
  // Only handles equal batch shapes (callers arrange that).
  const int64_t rank = a.dim();
  const int64_t m = a.size(rank - 2);
  const int64_t k = a.size(rank - 1);
  const int64_t n = b.size(b.dim() - 1);
  int64_t batch = 1;
  for (int64_t d = 0; d + 2 < rank; ++d) batch *= a.size(d);
  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  out_shape.push_back(n);
  Tensor out = Tensor::Zeros(out_shape);
  for (int64_t bi = 0; bi < batch; ++bi) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += a.flat((bi * m + i) * k + kk) *
                 b.flat((bi * k + kk) * n + j);
        }
        out.set_flat((bi * m + i) * n + j, static_cast<float>(acc));
      }
    }
  }
  return out;
}

class MatmulFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MatmulFuzzTest, MatchesReference) {
  Rng rng(1000 + GetParam());
  const int64_t batch = rng.UniformInt(1, 3);
  const int64_t m = rng.UniformInt(1, 7);
  const int64_t k = rng.UniformInt(1, 7);
  const int64_t n = rng.UniformInt(1, 7);
  Tensor a = Tensor::RandUniform({batch, m, k}, -2, 2, &rng);
  Tensor b = Tensor::RandUniform({batch, k, n}, -2, 2, &rng);
  EXPECT_TRUE(a.Matmul(b).AllClose(ReferenceMatmul(a, b), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulFuzzTest, ::testing::Range(0, 12));

// Random expression DAGs over a fixed set of safe ops (no kinks, inputs
// kept in safe ranges), gradchecked end to end.
class ExpressionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpressionFuzzTest, RandomDagGradcheck) {
  const uint64_t seed = 2000 + GetParam();
  // Builds the same random DAG for any input values: the op choices are
  // driven by a dedicated RNG reseeded per call.
  auto fn = [seed](const std::vector<Variable>& inputs) {
    Rng op_rng(seed);
    std::vector<Variable> pool = inputs;
    const int64_t steps = 4 + op_rng.UniformInt(0, 3);
    for (int64_t s = 0; s < steps; ++s) {
      const int64_t which = op_rng.UniformInt(0, 6);
      const Variable& a = pool[op_rng.UniformInt(
          0, static_cast<int64_t>(pool.size()) - 1)];
      const Variable& b = pool[op_rng.UniformInt(
          0, static_cast<int64_t>(pool.size()) - 1)];
      switch (which) {
        case 0:
          pool.push_back(ag::Add(a, b));
          break;
        case 1:
          pool.push_back(ag::Sub(a, b));
          break;
        case 2:
          pool.push_back(ag::Mul(a, b));
          break;
        case 3:
          pool.push_back(ag::Tanh(a));
          break;
        case 4:
          pool.push_back(ag::Sigmoid(a));
          break;
        case 5:
          pool.push_back(ag::MulScalar(a, 0.7f));
          break;
        case 6:
          pool.push_back(ag::Softmax(a, -1));
          break;
      }
    }
    Variable sum = ag::SumAll(pool.back());
    // Mix in every intermediate so no op is dead.
    for (const auto& v : pool) {
      sum = ag::Add(sum, ag::MulScalar(ag::SumAll(ag::Mul(v, v)), 0.01f));
    }
    return sum;
  };
  Rng data_rng(3000 + GetParam());
  std::vector<Variable> inputs;
  for (int i = 0; i < 3; ++i) {
    inputs.emplace_back(Tensor::RandUniform({2, 3}, -0.8f, 0.8f, &data_rng),
                        /*requires_grad=*/true);
  }
  ExpectGradientsClose(fn, inputs, /*eps=*/1e-2f, /*rtol=*/4e-2f,
                       /*atol=*/4e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressionFuzzTest, ::testing::Range(0, 10));

// Recurrent-chain gradcheck: the same cell applied T times, which is the
// exact autograd pattern of BPTT in every model here.
TEST(RecurrentChainTest, SharedWeightGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    const Variable& x = in[0];
    const Variable& w = in[1];
    Variable h = ag::MulScalar(x, 0.0f);
    for (int t = 0; t < 4; ++t) {
      h = ag::Tanh(ag::Add(ag::Matmul(h, w), x));
    }
    return ag::SumAll(ag::Mul(h, h));
  };
  Rng rng(4000);
  Variable x(Tensor::RandUniform({2, 3}, -0.5f, 0.5f, &rng), true);
  Variable w(Tensor::RandUniform({3, 3}, -0.4f, 0.4f, &rng), true);
  ExpectGradientsClose(fn, {x, w});
}

// Gradient accumulation across separate Backward calls equals the gradient
// of the summed objective.
TEST(AccumulationTest, TwoBackwardsEqualSumBackward) {
  Rng rng(5000);
  Tensor init = Tensor::RandUniform({4}, -1, 1, &rng);
  Variable x1(init.Clone(), true);
  ag::SumAll(ag::Mul(x1, x1)).Backward();
  ag::SumAll(ag::Tanh(x1)).Backward();
  const Tensor accumulated = x1.grad().Clone();

  Variable x2(init.Clone(), true);
  Variable joint =
      ag::Add(ag::SumAll(ag::Mul(x2, x2)), ag::SumAll(ag::Tanh(x2)));
  joint.Backward();
  EXPECT_TRUE(accumulated.AllClose(x2.grad(), 1e-5f));
}

// --- Gradcheck under the multithreaded pool ---------------------------------
// The same finite-difference machinery, but with the thread pool engaged
// and shapes large enough that the parallel kernels actually chunk
// (elementwise ops split above ~1k elements, matmul above ~4k MACs). The
// backward pass must stay correct when forward ran parallel.

class ParallelGradcheckTest : public ::testing::Test {
 protected:
  void SetUp() override { common::SetNumThreads(8); }
  void TearDown() override { common::SetNumThreads(0); }
};

TEST_F(ParallelGradcheckTest, MatmulChunksAcrossRows) {
  // 48x12 x 12x24: 13.8k MACs per forward, chunked over output rows.
  auto fn = [](const std::vector<Variable>& in) {
    return ag::MeanAll(ag::Matmul(in[0], in[1]));
  };
  Rng rng(6000);
  Variable a(Tensor::RandUniform({1, 48, 12}, -0.8f, 0.8f, &rng), true);
  Variable b(Tensor::RandUniform({1, 12, 24}, -0.8f, 0.8f, &rng), true);
  ExpectGradientsClose(fn, {a, b});
}

TEST_F(ParallelGradcheckTest, BroadcastElementwiseChunks) {
  // [8, 140] with broadcast operands: 1120 output elements per op, past
  // the elementwise grain.
  auto fn = [](const std::vector<Variable>& in) {
    const Variable& x = in[0];
    const Variable& row = in[1];
    const Variable& col = in[2];
    Variable y = ag::Mul(ag::Add(x, row), col);
    return ag::MeanAll(ag::Mul(y, ag::Sigmoid(x)));
  };
  Rng rng(6001);
  Variable x(Tensor::RandUniform({8, 140}, -0.8f, 0.8f, &rng), true);
  Variable row(Tensor::RandUniform({140}, -0.8f, 0.8f, &rng), true);
  Variable col(Tensor::RandUniform({8, 1}, -0.8f, 0.8f, &rng), true);
  ExpectGradientsClose(fn, {x, row, col});
}

TEST_F(ParallelGradcheckTest, ReductionsChunk) {
  // Axis sum with many output elements plus a SumAll large enough for the
  // fixed-chunk tree reduction (> 2048 elements).
  auto fn = [](const std::vector<Variable>& in) {
    const Variable& x = in[0];
    Variable per_row = ag::Sum(x, /*axis=*/1);
    return ag::Add(ag::MulScalar(ag::SumAll(ag::Tanh(x)), 0.25f),
                   ag::MeanAll(ag::Mul(per_row, per_row)));
  };
  Rng rng(6002);
  Variable x(Tensor::RandUniform({300, 8}, -0.5f, 0.5f, &rng), true);
  ExpectGradientsClose(fn, {x});
}

TEST_F(ParallelGradcheckTest, RecurrentChainUnderPool) {
  // BPTT-shaped graph with shapes that engage chunking in every step.
  auto fn = [](const std::vector<Variable>& in) {
    const Variable& x = in[0];
    const Variable& w = in[1];
    Variable h = ag::MulScalar(x, 0.0f);
    for (int t = 0; t < 3; ++t) {
      h = ag::Tanh(ag::Add(ag::Matmul(h, w), x));
    }
    return ag::MeanAll(ag::Mul(h, h));
  };
  Rng rng(6003);
  Variable x(Tensor::RandUniform({36, 20}, -0.4f, 0.4f, &rng), true);
  Variable w(Tensor::RandUniform({20, 20}, -0.3f, 0.3f, &rng), true);
  ExpectGradientsClose(fn, {x, w});
}

// Softmax rows remain stochastic through autograd and under extreme
// logits (stability property).
TEST(StabilityTest, SoftmaxExtremeLogits) {
  Tensor logits = Tensor::FromVector({2, 3}, {1e4f, 0.0f, -1e4f,
                                              -50.0f, -50.0f, -50.0f});
  Variable v{logits};
  Tensor sm = ag::Softmax(v, -1).value();
  EXPECT_FALSE(sm.HasNonFinite());
  EXPECT_NEAR(sm.at({0, 0}), 1.0f, 1e-5f);
  EXPECT_NEAR(sm.at({1, 0}), 1.0f / 3.0f, 1e-5f);
}

}  // namespace
}  // namespace tgcrn
