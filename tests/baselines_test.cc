// Copyright 2026 TGCRN Reproduction Authors
// Tests for every baseline: shape contracts, gradient flow, learning
// sanity, and behaviour specific to each method's mechanism.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/agcrn.h"
#include "baselines/ccrnn.h"
#include "baselines/dcrnn.h"
#include "baselines/esg.h"
#include "baselines/fc_lstm.h"
#include "baselines/gbdt.h"
#include "baselines/gts.h"
#include "baselines/gwnet.h"
#include "baselines/ha.h"
#include "baselines/pvcgn.h"
#include "baselines/transformers.h"
#include "datagen/metro_sim.h"
#include "optim/optimizer.h"

namespace tgcrn {
namespace {

using ag::Variable;

// Shared tiny fixture: a simulated metro dataset small enough for fast
// per-test training probes.
class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 8;
    config.num_days = 10;
    config.seed = 11;
    config.target_mean_inflow = 60.0;
    config.keep_od_ground_truth = false;
    sim_ = new datagen::MetroSimOutput(datagen::SimulateMetro(config));
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 4;
    data::SpatioTemporalData copy = sim_->data;
    dataset_ = new data::ForecastDataset(std::move(copy), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete sim_;
    dataset_ = nullptr;
    sim_ = nullptr;
  }

  static data::Batch TrainBatch(int64_t size) {
    std::vector<int64_t> ids(size);
    for (int64_t i = 0; i < size; ++i) ids[i] = i * 3;
    return dataset_->MakeBatch(data::ForecastDataset::Split::kTrain, ids);
  }

  // Training series [N, T] (inflow channel) for graph constructions.
  static Tensor TrainSeries() {
    const int64_t fit = sim_->data.num_steps() * 7 / 10;
    Tensor inflow = sim_->data.values.Slice(2, 0, 1).Squeeze(2);  // [T, N]
    return inflow.Slice(0, 0, fit).Transpose(0, 1);
  }

  // Checks forward shape, backward gradient coverage, and that a few Adam
  // steps reduce the training loss.
  static void CheckModelLearns(core::ForecastModel* model,
                               float lr = 3e-3f) {
    const data::Batch batch = TrainBatch(6);
    Variable pred = model->Forward(batch);
    ASSERT_EQ(pred.shape(), (Shape{6, 4, 8, 2})) << model->name();
    ASSERT_FALSE(pred.value().HasNonFinite()) << model->name();

    model->ZeroGrad();
    Variable loss = ag::MaeLoss(pred, Variable(batch.y_scaled));
    loss.Backward();
    int64_t with_grad = 0;
    const auto params = model->Parameters();
    for (const auto& p : params) {
      if (p.has_grad()) ++with_grad;
    }
    EXPECT_EQ(with_grad, static_cast<int64_t>(params.size()))
        << model->name() << ": every parameter should receive gradient";

    optim::Adam adam(model->Parameters(), lr);
    float first = 0.0f, last = 0.0f;
    for (int step = 0; step < 15; ++step) {
      model->ZeroGrad();
      Variable l = ag::MaeLoss(model->Forward(batch),
                               Variable(batch.y_scaled));
      if (step == 0) first = l.value().item();
      last = l.value().item();
      l.Backward();
      adam.Step();
    }
    EXPECT_LT(last, first) << model->name() << " failed to learn";
  }

  static datagen::MetroSimOutput* sim_;
  static data::ForecastDataset* dataset_;
};

datagen::MetroSimOutput* BaselineFixture::sim_ = nullptr;
data::ForecastDataset* BaselineFixture::dataset_ = nullptr;

// --- Historical average -------------------------------------------------------

TEST_F(BaselineFixture, HistoricalAverageMatchesHandComputedMean) {
  baselines::HistoricalAverage ha;
  const int64_t fit = sim_->data.num_steps() / 2;
  ha.Fit(sim_->data, fit);
  // Hand-compute the weekday mean for slot 10, node 0, inflow.
  double sum = 0;
  int64_t count = 0;
  for (int64_t t = 0; t < fit; ++t) {
    if (sim_->data.slot_of_day[t] == 10 && sim_->data.day_of_week[t] < 5) {
      sum += sim_->data.values.at({t, 0, 0});
      ++count;
    }
  }
  ASSERT_GT(count, 0);
  EXPECT_NEAR(ha.Predict(2, 10, 0, 0), sum / count, 0.5);
  // Weekend prediction differs from weekday (periodicity captured).
  EXPECT_NE(ha.Predict(6, 10, 0, 0), ha.Predict(2, 10, 0, 0));
}

TEST_F(BaselineFixture, HistoricalAverageEvaluates) {
  baselines::HistoricalAverage ha;
  ha.Fit(sim_->data, sim_->data.num_steps() * 7 / 10);
  const auto per_horizon = ha.EvaluateOnDataset(*dataset_, {});
  ASSERT_EQ(per_horizon.size(), 4u);
  // Sanity: on periodic data HA is far better than predicting zero.
  const double data_mean = sim_->data.values.MeanAll();
  EXPECT_LT(per_horizon[0].mae, data_mean);
  EXPECT_GT(per_horizon[0].mae, 0.0);
}

// --- GBDT ----------------------------------------------------------------------

TEST(GbdtTest, TreeFitsAxisAlignedStep) {
  // y = 1 if x0 > 0.5 else 0: one split suffices.
  std::vector<float> features;
  std::vector<float> targets;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float x0 = rng.Uniform(0, 1);
    const float x1 = rng.Uniform(0, 1);
    features.push_back(x0);
    features.push_back(x1);
    targets.push_back(x0 > 0.5f ? 1.0f : 0.0f);
  }
  std::vector<int64_t> ids(200);
  std::iota(ids.begin(), ids.end(), 0);
  baselines::GbdtConfig config;
  baselines::RegressionTree tree;
  tree.Fit(features, 2, targets, ids, config);
  float row_hi[2] = {0.9f, 0.1f};
  float row_lo[2] = {0.1f, 0.9f};
  EXPECT_NEAR(tree.Predict(row_hi), 1.0f, 0.05f);
  EXPECT_NEAR(tree.Predict(row_lo), 0.0f, 0.05f);
}

TEST(GbdtTest, BoostingReducesTrainingError) {
  // Nonlinear target needs multiple trees.
  std::vector<float> features;
  std::vector<float> targets;
  Rng rng(4);
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const float x0 = rng.Uniform(-2, 2);
    const float x1 = rng.Uniform(-2, 2);
    features.push_back(x0);
    features.push_back(x1);
    targets.push_back(std::sin(x0) + 0.5f * x1 * x1);
  }
  baselines::GbdtConfig config;
  config.num_rounds = 40;
  baselines::Gbdt model(config);
  model.Fit(features, 2, targets);
  double err = 0;
  for (int i = 0; i < n; ++i) {
    const float pred = model.Predict(&features[i * 2]);
    err += std::fabs(pred - targets[i]);
  }
  err /= n;
  // Baseline: predicting the mean has error ~ mean absolute deviation.
  double mean = 0;
  for (float t : targets) mean += t;
  mean /= n;
  double mad = 0;
  for (float t : targets) mad += std::fabs(t - mean);
  mad /= n;
  EXPECT_LT(err, 0.4 * mad);
}

TEST(GbdtTest, XgboostModeRegularizesLeaves) {
  // With huge lambda, leaf values shrink toward zero.
  std::vector<float> features = {0.f, 1.f, 2.f, 3.f};
  std::vector<float> targets = {10.f, 10.f, -10.f, -10.f};
  std::vector<int64_t> ids = {0, 1, 2, 3};
  baselines::GbdtConfig config;
  config.xgboost_mode = true;
  config.reg_lambda = 1000.0f;
  config.min_samples_leaf = 1;
  baselines::RegressionTree tree;
  tree.Fit(features, 1, targets, ids, config);
  float row[1] = {0.0f};
  EXPECT_LT(std::fabs(tree.Predict(row)), 1.0f);
}

TEST_F(BaselineFixture, GbdtForecasterBeatsMeanPredictor) {
  baselines::GbdtConfig config;
  config.num_rounds = 12;
  baselines::GbdtForecaster forecaster(config);
  forecaster.Fit(*dataset_);
  const auto per = forecaster.EvaluateOnDataset(
      *dataset_, data::ForecastDataset::Split::kTest, {});
  ASSERT_EQ(per.size(), 4u);
  // The scaler mean predictor's raw MAE equals ~ the data's MAD.
  const double data_mean = sim_->data.values.MeanAll();
  EXPECT_LT(per[0].mae, data_mean);
}

// --- Neural baselines -----------------------------------------------------------

TEST_F(BaselineFixture, FcLstmLearns) {
  Rng rng(21);
  baselines::FcLstm::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 32;
  baselines::FcLstm model(config, &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, DcrnnLearns) {
  Rng rng(22);
  baselines::Dcrnn::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 10;
  baselines::Dcrnn model(config, sim_->distances, &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, AgcrnLearnsAndIsTimeInvariant) {
  Rng rng(23);
  baselines::Agcrn::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 10;
  baselines::Agcrn model(config, &rng);
  EXPECT_EQ(model.name(), "AGCRN");
  EXPECT_EQ(model.auxiliary_weight(), 0.0f);
  CheckModelLearns(&model);
  // Static graph: identical for any slot.
  Rng xrng(24);
  Tensor x = Tensor::RandUniform({8, 2}, -1, 1, &xrng);
  EXPECT_TRUE(model.LearnedAdjacency(x, {3}).AllClose(
      model.LearnedAdjacency(x, {50}), 1e-6f));
}

TEST_F(BaselineFixture, GraphWaveNetLearns) {
  Rng rng(25);
  baselines::GraphWaveNet::Config config;
  config.num_nodes = 8;
  config.channels = 12;
  config.skip_channels = 16;
  baselines::GraphWaveNet model(config, &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, PvcgnLearns) {
  Rng rng(26);
  baselines::Pvcgn::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 12;
  baselines::Pvcgn model(config, sim_->distances, TrainSeries(), &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, CcrnnLearns) {
  Rng rng(27);
  baselines::Ccrnn::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 10;
  baselines::Ccrnn model(config, TrainSeries(), &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, GtsLearnsAndGraphIsInputIndependent) {
  Rng rng(28);
  baselines::Gts::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 10;
  Tensor features = baselines::Gts::MakeProfileFeatures(
      sim_->data, sim_->data.num_steps() * 7 / 10, /*bins=*/8);
  EXPECT_EQ(features.shape(), (Shape{8, 16}));
  baselines::Gts model(config, features, &rng);
  CheckModelLearns(&model);
  // The learned graph is a function of parameters only.
  Tensor g1 = model.LearnGraph().value();
  Tensor g2 = model.LearnGraph().value();
  EXPECT_TRUE(g1.AllClose(g2, 0.0f));
}

TEST_F(BaselineFixture, EsgLearnsAndGraphEvolves) {
  Rng rng(29);
  baselines::Esg::Config config;
  config.num_nodes = 8;
  config.hidden_dim = 10;
  baselines::Esg model(config, &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, InformerLearns) {
  Rng rng(30);
  baselines::InformerLite::Config config;
  config.num_nodes = 8;
  config.input_steps = 4;
  config.d_model = 16;
  config.num_heads = 2;
  baselines::InformerLite model(config, &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, CrossformerLearns) {
  Rng rng(31);
  baselines::CrossformerLite::Config config;
  config.num_nodes = 8;
  config.input_steps = 4;
  config.d_model = 16;
  config.num_heads = 2;
  config.num_layers = 1;
  baselines::CrossformerLite model(config, &rng);
  CheckModelLearns(&model);
}

TEST_F(BaselineFixture, ParameterOrderingMatchesPaperExpectations) {
  // Table VIII shape: PVCGN is the heaviest per hidden unit among the GRU
  // family (multi-graph convolutions); DCRNN and GWNet are light.
  Rng rng(32);
  baselines::Dcrnn::Config dc;
  dc.num_nodes = 8;
  dc.hidden_dim = 16;
  baselines::Dcrnn dcrnn(dc, sim_->distances, &rng);
  baselines::Pvcgn::Config pc;
  pc.num_nodes = 8;
  pc.hidden_dim = 24;
  baselines::Pvcgn pvcgn(pc, sim_->distances, TrainSeries(), &rng);
  EXPECT_GT(pvcgn.NumParameters(), dcrnn.NumParameters());
}

}  // namespace
}  // namespace tgcrn
