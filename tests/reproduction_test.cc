// Copyright 2026 TGCRN Reproduction Authors
// Mini reproduction integration test: the paper's headline claim at toy
// scale. On a simulated metro system whose spatial correlations carry
// trends and periodicities, a briefly trained TGCRN must (a) beat the
// Historical Average baseline and (b) beat its own "w/o tagsl" ablation
// trained identically. Deliberately small so it stays in CI budget; the
// full-strength version is the bench suite.
#include <gtest/gtest.h>

#include "baselines/ha.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"

namespace tgcrn {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 10;
    config.num_days = 21;
    config.seed = 42;
    config.keep_od_ground_truth = false;
    sim_data_ = new data::SpatioTemporalData(
        datagen::SimulateMetro(config).data);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 4;
    data::SpatioTemporalData copy = *sim_data_;
    dataset_ = new data::ForecastDataset(std::move(copy), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete sim_data_;
    dataset_ = nullptr;
    sim_data_ = nullptr;
  }

  static metrics::Metrics TrainVariant(bool use_tagsl, uint64_t seed) {
    core::TGCRNConfig config;
    config.num_nodes = 10;
    config.input_dim = 2;
    config.output_dim = 2;
    config.horizon = 4;
    config.hidden_dim = 12;
    config.num_layers = 2;
    config.node_embed_dim = 8;
    config.time_embed_dim = 6;
    config.steps_per_day = 72;
    config.use_tagsl = use_tagsl;
    Rng rng(seed);
    core::TGCRN model(config, &rng);
    core::TrainConfig train;
    train.epochs = 8;
    train.lr = 6e-3f;
    train.lr_milestones = {6};
    train.max_batches_per_epoch = 40;
    train.seed = seed;
    train.verbose = false;
    return core::TrainAndEvaluate(&model, *dataset_, train).average;
  }

  static data::SpatioTemporalData* sim_data_;
  static data::ForecastDataset* dataset_;
};

data::SpatioTemporalData* ReproductionTest::sim_data_ = nullptr;
data::ForecastDataset* ReproductionTest::dataset_ = nullptr;

TEST_F(ReproductionTest, TgcrnBeatsHistoricalAverage) {
  baselines::HistoricalAverage ha;
  ha.Fit(*sim_data_, static_cast<int64_t>(sim_data_->num_steps() * 0.7));
  const auto ha_avg =
      metrics::AverageMetrics(ha.EvaluateOnDataset(*dataset_, {}));
  const auto tgcrn_avg = TrainVariant(/*use_tagsl=*/true, /*seed=*/1);
  EXPECT_LT(tgcrn_avg.mae, ha_avg.mae)
      << "TGCRN " << tgcrn_avg.mae << " vs HA " << ha_avg.mae;
  EXPECT_LT(tgcrn_avg.rmse, ha_avg.rmse);
}

TEST_F(ReproductionTest, TimeAwareGraphBeatsStaticGraph) {
  const auto with_tagsl = TrainVariant(/*use_tagsl=*/true, /*seed=*/2);
  const auto without = TrainVariant(/*use_tagsl=*/false, /*seed=*/2);
  // Identical budget and seed: time-aware structure learning must help on
  // data that has time-varying spatial correlations by construction.
  EXPECT_LT(with_tagsl.mae, without.mae)
      << "with " << with_tagsl.mae << " vs without " << without.mae;
}

}  // namespace
}  // namespace tgcrn
