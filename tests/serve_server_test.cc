// Copyright 2026 TGCRN Reproduction Authors
// Wire-level tests of the NDJSON forecast server (src/serve/server.h):
// schema of every response type, per-connection ordering, error paths,
// and clean shutdown — the same exchanges the CI serve-smoke job drives
// against the tgcrn_serve binary (protocol spec: docs/SERVING.md).
#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/tgcrn.h"
#include "datagen/metro_sim.h"
#include "obs/json.h"
#include "serve/session.h"
#include "serve/telemetry.h"

namespace tgcrn {
namespace {

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    // A wedged server should fail the test, not hang the suite.
    timeval timeout{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  obs::Json Call(const std::string& line) {
    std::string payload = line + "\n";
    EXPECT_EQ(::send(fd_, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    return ReadLine();
  }

  obs::Json ReadLine() {
    while (buffer_.find('\n') == std::string::npos) {
      char chunk[4096];
      const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer_.append(chunk, static_cast<size_t>(got));
    }
    const size_t newline = buffer_.find('\n');
    EXPECT_NE(newline, std::string::npos) << "no response line";
    const std::string line = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    obs::Json parsed;
    std::string error;
    EXPECT_TRUE(obs::Json::Parse(line, &parsed, &error)) << error;
    return parsed;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class ServeServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    BuildSession();
    StartServer();
  }

  void BuildSession() {
    datagen::MetroSimConfig sim_config;
    sim_config.num_stations = 4;
    sim_config.num_days = 7;
    sim_config.seed = 13;
    sim_config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(sim_config);
    raw_ = std::move(sim.data);
    scaler_.Fit(raw_.values, raw_.num_steps() / 2);

    core::TGCRNConfig config;
    config.num_nodes = raw_.num_nodes();
    config.input_dim = raw_.num_features();
    config.output_dim = raw_.num_features();
    config.horizon = 2;
    config.hidden_dim = 8;
    config.num_layers = 1;
    config.node_embed_dim = 4;
    config.time_embed_dim = 4;
    config.steps_per_day = raw_.steps_per_day;
    rng_ = std::make_unique<Rng>(3);
    model_ = std::make_unique<core::TGCRN>(config, rng_.get());
    session_ = std::make_unique<serve::InferenceSession>(
        model_.get(), scaler_, serve::SessionConfig());
  }

  // telemetry_ stays null in the base fixture (telemetry-free server).
  void StartServer() {
    server_ = std::make_unique<serve::Server>(session_.get(), 0,
                                              telemetry_.get());
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    thread_ = std::thread([this] { server_->Run(); });
  }

  void Shutdown() {
    if (thread_.joinable()) {
      Client quit(server_->port());
      quit.Call(R"({"op":"shutdown"})");
      thread_.join();
    }
  }

  void TearDown() override { Shutdown(); }

  std::string ObserveLine(const std::string& entity, int64_t t) const {
    const int64_t n = raw_.num_nodes();
    const int64_t d = raw_.num_features();
    std::string values = "[";
    for (int64_t node = 0; node < n; ++node) {
      values += node == 0 ? "[" : ",[";
      for (int64_t f = 0; f < d; ++f) {
        if (f > 0) values += ",";
        values += std::to_string(raw_.values.data()[(t * n + node) * d + f]);
      }
      values += "]";
    }
    values += "]";
    return R"({"op":"observe","entity":")" + entity +
           R"(","slot":)" + std::to_string(raw_.slot_of_day[t]) +
           R"(,"values":)" + values + "}";
  }

  data::SpatioTemporalData raw_;
  data::StandardScaler scaler_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<core::TGCRN> model_;
  std::unique_ptr<serve::InferenceSession> session_;
  // Declared before server_ so the borrowing server is destroyed first.
  std::unique_ptr<serve::ServeTelemetry> telemetry_;
  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

// The same server with an armed ServeTelemetry: every request traced
// into an access log, everything slow (slow_us = 1) so the exemplar
// paths are exercised too.
class ServeServerTelemetryFixture : public ServeServerFixture {
 protected:
  void SetUp() override {
    BuildSession();
    log_path_ = (std::filesystem::temp_directory_path() /
                 "tgcrn_server_test.access.jsonl")
                    .string();
    std::filesystem::remove(log_path_);
    serve::TelemetryConfig config;
    config.access_log_path = log_path_;
    config.slow_us = 1;
    telemetry_ = std::make_unique<serve::ServeTelemetry>(config,
                                                         session_.get());
    StartServer();
  }

  void TearDown() override {
    ServeServerFixture::TearDown();
    std::filesystem::remove(log_path_);
  }

  std::vector<obs::Json> ReadLogLines() {
    std::vector<obs::Json> lines;
    std::ifstream in(log_path_);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      obs::Json entry;
      std::string error;
      EXPECT_TRUE(obs::Json::Parse(line, &entry, &error))
          << line << " (" << error << ")";
      lines.push_back(std::move(entry));
    }
    return lines;
  }

  std::string log_path_;
};

TEST_F(ServeServerFixture, ObserveThenForecastSchema) {
  Client client(server_->port());
  for (int64_t t = 0; t < 3; ++t) {
    const obs::Json reply = client.Call(ObserveLine("hz", t));
    EXPECT_TRUE(reply["ok"].AsBool()) << reply.Dump();
    EXPECT_EQ(reply.GetString("op"), "observe");
    EXPECT_EQ(reply.GetString("entity"), "hz");
    EXPECT_EQ(reply.GetInt("steps"), t + 1);
  }

  const obs::Json forecast =
      client.Call(R"({"op":"forecast","entity":"hz"})");
  EXPECT_TRUE(forecast["ok"].AsBool()) << forecast.Dump();
  EXPECT_EQ(forecast.GetString("op"), "forecast");
  EXPECT_EQ(forecast.GetInt("steps"), 3);
  const obs::Json& grid = forecast["forecast"];
  ASSERT_TRUE(grid.is_array());
  ASSERT_EQ(grid.size(), 2u);  // horizon
  ASSERT_EQ(grid.at(0).size(), static_cast<size_t>(raw_.num_nodes()));
  ASSERT_EQ(grid.at(0).at(0).size(),
            static_cast<size_t>(raw_.num_features()));
  EXPECT_TRUE(grid.at(0).at(0).at(0).is_number());
}

TEST_F(ServeServerFixture, StatsEvictAndErrorSchema) {
  Client client(server_->port());
  client.Call(ObserveLine("hz", 0));

  const obs::Json stats = client.Call(R"({"op":"stats"})");
  EXPECT_TRUE(stats["ok"].AsBool());
  EXPECT_EQ(stats.GetInt("entities"), 1);
  EXPECT_GE(stats.GetInt("requests"), 1);
  EXPECT_TRUE(stats.Has("p50_us"));
  EXPECT_TRUE(stats.Has("p99_us"));
  EXPECT_TRUE(stats.Has("mean_us"));
  EXPECT_TRUE(stats.Has("qps"));
  EXPECT_TRUE(stats.Has("tensor_allocations_delta"));

  // Forecasting an entity with no observations is an error, not a crash.
  const obs::Json cold = client.Call(R"({"op":"forecast","entity":"??"})");
  EXPECT_FALSE(cold["ok"].AsBool());
  EXPECT_NE(cold.GetString("error"), "");

  const obs::Json evict = client.Call(R"({"op":"evict","entity":"hz"})");
  EXPECT_TRUE(evict["ok"].AsBool());
  EXPECT_TRUE(evict["existed"].AsBool());
  const obs::Json again = client.Call(R"({"op":"evict","entity":"hz"})");
  EXPECT_FALSE(again["existed"].AsBool());

  const obs::Json bad_op = client.Call(R"({"op":"what"})");
  EXPECT_FALSE(bad_op["ok"].AsBool());
  const obs::Json malformed = client.Call("{not json");
  EXPECT_FALSE(malformed["ok"].AsBool());
}

TEST_F(ServeServerFixture, PipelinedRequestsAnswerInOrder) {
  Client client(server_->port());
  // Two observes and a forecast written as one burst; responses must come
  // back in request order with monotonically increasing step counts.
  std::string burst = ObserveLine("a", 0) + "\n" + ObserveLine("a", 1) +
                      "\n" + R"({"op":"forecast","entity":"a"})" + "\n";
  const obs::Json first = client.Call(burst.substr(0, burst.size() - 1));
  EXPECT_EQ(first.GetInt("steps"), 1);
  const obs::Json second = client.ReadLine();
  EXPECT_EQ(second.GetString("op"), "observe");
  EXPECT_EQ(second.GetInt("steps"), 2);
  const obs::Json third = client.ReadLine();
  EXPECT_EQ(third.GetString("op"), "forecast");
  EXPECT_TRUE(third["ok"].AsBool());
  EXPECT_EQ(third.GetInt("steps"), 2);
}

TEST_F(ServeServerFixture, SlowReaderDoesNotStallOtherConnections) {
  // A client that pipelines thousands of forecasts and never reads: once
  // the kernel socket buffers fill, its responses must queue in the
  // server's per-connection output buffer (flushed on POLLOUT) instead
  // of wedging the single-threaded poll loop in a blocking send().
  const int slow = ::socket(AF_INET, SOCK_STREAM, 0);
  int rcvbuf = 4096;  // shrink the reader side so kernel space fills fast
  ::setsockopt(slow, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  timeval timeout{10, 0};
  ::setsockopt(slow, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ASSERT_EQ(::connect(slow, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)), 0)
      << std::strerror(errno);

  constexpr size_t kForecasts = 2000;
  std::string burst;
  for (int64_t t = 0; t < 3; ++t) burst += ObserveLine("hz", t) + "\n";
  for (size_t i = 0; i < kForecasts; ++i) {
    burst += R"({"op":"forecast","entity":"hz"})" "\n";
  }
  size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t wrote = ::send(slow, burst.data() + sent,
                                 burst.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(wrote, 0) << std::strerror(errno);
    sent += static_cast<size_t>(wrote);
  }

  // While the slow client sits on its responses, a second connection
  // must still be answered promptly.
  Client probe(server_->port());
  const obs::Json stats = probe.Call(R"({"op":"stats"})");
  EXPECT_TRUE(stats["ok"].AsBool()) << stats.Dump();

  // Drain the slow client: every buffered response arrives intact.
  size_t lines = 0;
  char chunk[65536];
  while (lines < 3 + kForecasts) {
    const ssize_t got = ::recv(slow, chunk, sizeof(chunk), 0);
    ASSERT_GT(got, 0) << "slow connection lost responses: "
                      << std::strerror(errno);
    for (ssize_t k = 0; k < got; ++k) lines += chunk[k] == '\n';
  }
  EXPECT_EQ(lines, 3 + kForecasts);
  ::close(slow);
}

TEST_F(ServeServerTelemetryFixture, AccessLogRecordsEveryWireRequestOnce) {
  {
    Client client(server_->port());
    // Client-supplied id must be echoed back verbatim...
    std::string tagged = ObserveLine("hz", 0);
    tagged.insert(1, R"("id":777,)");
    const obs::Json reply = client.Call(tagged);
    EXPECT_TRUE(reply["ok"].AsBool()) << reply.Dump();
    EXPECT_EQ(reply.GetInt("id"), 777);
    // ...and server-assigned ids stay out of the response schema.
    const obs::Json untagged = client.Call(ObserveLine("hz", 1));
    EXPECT_FALSE(untagged.Has("id"));

    const obs::Json forecast =
        client.Call(R"({"op":"forecast","entity":"hz"})");
    EXPECT_TRUE(forecast["ok"].AsBool());
    const obs::Json bad_op = client.Call(R"({"op":"what"})");
    EXPECT_FALSE(bad_op["ok"].AsBool());
    const obs::Json malformed = client.Call("{not json");
    EXPECT_FALSE(malformed["ok"].AsBool());
  }
  Shutdown();  // Run() flushes the telemetry before returning.

  // 5 client requests + the shutdown request itself, each exactly once.
  std::vector<obs::Json> requests;
  for (const obs::Json& entry : ReadLogLines()) {
    if (entry.GetString("type") == "request") requests.push_back(entry);
  }
  ASSERT_EQ(requests.size(), 6u);
  std::unordered_set<int64_t> ids;
  bool saw_client_id = false;
  int errors = 0;
  for (const obs::Json& entry : requests) {
    EXPECT_TRUE(ids.insert(entry.GetInt("id")).second)
        << "duplicate request id: " << entry.Dump();
    saw_client_id |= entry.GetInt("id") == 777;
    errors += entry.GetString("status") == "error";
    const obs::Json& stages = entry["stage_us"];
    ASSERT_TRUE(stages.is_object()) << entry.Dump();
    int64_t prev = 0;
    for (int s = 0; s < serve::kServeStageCount; ++s) {
      const int64_t at = stages.GetInt(serve::ServeStageName(s), -1);
      ASSERT_GE(at, prev) << "non-monotone stages: " << entry.Dump();
      prev = at;
    }
    EXPECT_EQ(entry.GetInt("total_us"), prev);
  }
  EXPECT_TRUE(saw_client_id);
  EXPECT_EQ(errors, 2);  // bad op + malformed line
}

TEST_F(ServeServerTelemetryFixture, StatsExposeStagesCacheAndSlowView) {
  Client client(server_->port());
  for (int64_t t = 0; t < 3; ++t) {
    ASSERT_TRUE(client.Call(ObserveLine("hz", t))["ok"].AsBool());
  }

  const obs::Json stats = client.Call(R"({"op":"stats"})");
  ASSERT_TRUE(stats["ok"].AsBool()) << stats.Dump();
  const obs::Json& cache = stats["cache"];
  ASSERT_TRUE(cache.is_object()) << stats.Dump();
  EXPECT_TRUE(cache.Has("hits"));
  EXPECT_TRUE(cache.Has("misses"));
  EXPECT_TRUE(cache.Has("evictions"));
  const obs::Json& stages = stats["stages"];
  ASSERT_TRUE(stages.is_object()) << stats.Dump();
  for (int s = 0; s < serve::kServeStageCount; ++s) {
    const obs::Json& stage = stages[serve::ServeStageName(s)];
    ASSERT_TRUE(stage.is_object()) << stats.Dump();
    EXPECT_TRUE(stage.Has("p50_us"));
    EXPECT_TRUE(stage.Has("p99_us"));
  }
  // slow_us = 1 marks every request slow, so the exemplar view fills up.
  EXPECT_GE(stats.GetInt("slow_count"), 3);
  const obs::Json slow = client.Call(R"({"op":"stats","view":"slow"})");
  ASSERT_TRUE(slow["ok"].AsBool());
  const obs::Json& exemplars = slow["slow_requests"];
  ASSERT_TRUE(exemplars.is_array()) << slow.Dump();
  EXPECT_GE(exemplars.size(), 3u);
  EXPECT_GT(exemplars.at(0).GetInt("total_us"), 0);
}

TEST_F(ServeServerTelemetryFixture, RequestStopFlushesCompleteAccessLog) {
  {
    Client client(server_->port());
    for (int64_t t = 0; t < 2; ++t) {
      ASSERT_TRUE(client.Call(ObserveLine("hz", t))["ok"].AsBool());
    }
  }
  // The SIGTERM path: no shutdown request on the wire, just the stop
  // flag — Run() must still drain and leave a complete, flushed log.
  server_->RequestStop();
  thread_.join();

  int requests = 0;
  bool saw_drift = false;
  for (const obs::Json& entry : ReadLogLines()) {
    requests += entry.GetString("type") == "request";
    saw_drift |= entry.GetString("type") == "drift";
  }
  EXPECT_EQ(requests, 2);
  // Observations were recorded, so the final flush emits a drift block.
  EXPECT_TRUE(saw_drift);
}

}  // namespace
}  // namespace tgcrn
