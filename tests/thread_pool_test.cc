// Copyright 2026 TGCRN Reproduction Authors
// Unit tests of the fixed-size thread pool: range coverage, chunk ordering
// on the serial path, exception propagation out of ParallelFor, nested-call
// degradation to serial execution, grain-size boundary cases, and the
// determinism of the fixed-chunk tree reduction across thread counts.
#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tgcrn {
namespace {

using common::DeterministicChunkedSum;
using common::GetNumThreads;
using common::ParallelFor;
using common::ScopedNumThreads;
using common::SetNumThreads;

// Every index in [begin, end) must be visited exactly once, for any
// combination of range size, grain, and thread count.
TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (const int threads : {1, 2, 8}) {
    ScopedNumThreads guard(threads);
    for (const int64_t n : {0, 1, 7, 64, 1000, 4097}) {
      for (const int64_t grain : {1, 3, 64, 5000}) {
        std::vector<std::atomic<int>> counts(n);
        for (auto& c : counts) c.store(0);
        ParallelFor(0, n, grain, [&](int64_t s, int64_t e) {
          ASSERT_LE(0, s);
          ASSERT_LE(s, e);
          ASSERT_LE(e, n);
          for (int64_t i = s; i < e; ++i) counts[i].fetch_add(1);
        });
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(counts[i].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ScopedNumThreads guard(4);
  std::vector<std::atomic<int>> counts(100);
  for (auto& c : counts) c.store(0);
  ParallelFor(37, 91, 5, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) counts[i].fetch_add(1);
  });
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(counts[i].load(), (i >= 37 && i < 91) ? 1 : 0) << i;
  }
}

// On the serial path (1 thread) chunks arrive in ascending order as one
// single call; with multiple threads subranges may interleave but must be
// disjoint — recorded ranges sorted by start must tile the range.
TEST(ThreadPoolTest, SerialPathRunsInOrder) {
  ScopedNumThreads guard(1);
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelFor(0, 1000, 10, [&](int64_t s, int64_t e) {
    ranges.emplace_back(s, e);
  });
  // With one thread the whole range is one in-order call.
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0);
  EXPECT_EQ(ranges[0].second, 1000);
}

TEST(ThreadPoolTest, ChunksTileTheRangeWithoutOverlap) {
  ScopedNumThreads guard(8);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelFor(0, 10001, 7, [&](int64_t s, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(s, e);
  });
  std::sort(ranges.begin(), ranges.end());
  int64_t expected_start = 0;
  for (const auto& [s, e] : ranges) {
    EXPECT_EQ(s, expected_start);
    EXPECT_LT(s, e);
    expected_start = e;
  }
  EXPECT_EQ(expected_start, 10001);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (const int threads : {1, 4}) {
    ScopedNumThreads guard(threads);
    EXPECT_THROW(
        ParallelFor(0, 10000, 16,
                    [&](int64_t s, int64_t e) {
                      // Throw from whichever chunk contains index 5000 —
                      // works on both the serial and the chunked path.
                      if (s <= 5000 && 5000 < e) {
                        throw std::runtime_error("chunk failed");
                      }
                    }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int64_t> sum{0};
    ParallelFor(0, 1000, 16, [&](int64_t s, int64_t e) {
      sum.fetch_add(e - s);
    });
    EXPECT_EQ(sum.load(), 1000);
  }
}

// A ParallelFor issued from inside a chunk must degrade to serial instead
// of re-entering the pool (a worker waiting on its own queue would
// deadlock). The nested region still covers its full range.
TEST(ThreadPoolTest, NestedCallDegradesToSerial) {
  ScopedNumThreads guard(4);
  const int64_t outer_n = 64, inner_n = 512;
  std::vector<std::atomic<int>> counts(outer_n * inner_n);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, outer_n, 1, [&](int64_t os, int64_t oe) {
    for (int64_t o = os; o < oe; ++o) {
      EXPECT_TRUE(common::InParallelRegion());
      ParallelFor(0, inner_n, 1, [&](int64_t is, int64_t ie) {
        // Serial degradation: the nested call is one full-range chunk.
        EXPECT_EQ(is, 0);
        EXPECT_EQ(ie, inner_n);
        for (int64_t i = is; i < ie; ++i) {
          counts[o * inner_n + i].fetch_add(1);
        }
      });
    }
  });
  for (const auto& c : counts) ASSERT_EQ(c.load(), 1);
  EXPECT_FALSE(common::InParallelRegion());
}

TEST(ThreadPoolTest, PoolStatsCountCallsChunksAndSerialRuns) {
  ScopedNumThreads guard(4);
  const auto before = common::GetPoolStats();
  EXPECT_EQ(before.num_threads, 4);

  // Pooled path: 1000/10 with 4 threads splits into >1 chunks.
  ParallelFor(0, 1000, 10, [](int64_t, int64_t) {});
  const auto pooled = common::GetPoolStats();
  EXPECT_EQ(pooled.parallel_for_calls, before.parallel_for_calls + 1);
  EXPECT_EQ(pooled.serial_runs, before.serial_runs);
  EXPECT_GT(pooled.chunks_executed, before.chunks_executed + 1);

  // grain >= n: the serial fallback runs no pool chunks.
  ParallelFor(0, 10, 100, [](int64_t, int64_t) {});
  const auto serial = common::GetPoolStats();
  EXPECT_EQ(serial.parallel_for_calls, pooled.parallel_for_calls + 1);
  EXPECT_EQ(serial.serial_runs, pooled.serial_runs + 1);
  EXPECT_EQ(serial.chunks_executed, pooled.chunks_executed);
}

// Nested calls degrade to serial; the counters must record them as calls +
// serial runs (not pool chunks), and keep counting accurately afterwards.
TEST(ThreadPoolTest, PoolStatsSurviveNestedSerialDegradation) {
  ScopedNumThreads guard(4);
  const auto before = common::GetPoolStats();
  const int64_t outer_n = 16;
  std::atomic<int64_t> nested_serial{0};
  ParallelFor(0, outer_n, 1, [&](int64_t os, int64_t oe) {
    for (int64_t o = os; o < oe; ++o) {
      ParallelFor(0, 256, 1, [&](int64_t is, int64_t ie) {
        if (is == 0 && ie == 256) nested_serial.fetch_add(1);
      });
    }
  });
  const auto after = common::GetPoolStats();
  EXPECT_EQ(nested_serial.load(), outer_n);  // every nested call was serial
  // outer + one nested call per outer index.
  EXPECT_EQ(after.parallel_for_calls,
            before.parallel_for_calls + 1 + outer_n);
  EXPECT_EQ(after.serial_runs, before.serial_runs + outer_n);
  // Only the outer call consumed pool chunks.
  const int64_t chunks = after.chunks_executed - before.chunks_executed;
  EXPECT_GT(chunks, 1);
  EXPECT_LE(chunks, outer_n);

  // The pool keeps counting normally after the nested episode.
  ParallelFor(0, 1000, 10, [](int64_t, int64_t) {});
  const auto final_stats = common::GetPoolStats();
  EXPECT_EQ(final_stats.parallel_for_calls, after.parallel_for_calls + 1);
  EXPECT_GT(final_stats.chunks_executed, after.chunks_executed);
}

TEST(ThreadPoolTest, SetNumThreadsIsReflected) {
  const int original = GetNumThreads();
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(GetNumThreads(), 1);
  SetNumThreads(0);  // restores the default
  EXPECT_GE(GetNumThreads(), 1);
  SetNumThreads(original);
}

TEST(ThreadPoolTest, GrainBoundaryCases) {
  ScopedNumThreads guard(4);
  // grain larger than the range: single serial call.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelFor(0, 10, 100, [&](int64_t s, int64_t e) {
    ranges.emplace_back(s, e);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<int64_t, int64_t>{0, 10}));

  // Zero/negative grain is clamped to 1 rather than dividing by zero.
  std::atomic<int64_t> visited{0};
  ParallelFor(0, 100, 0, [&](int64_t s, int64_t e) {
    visited.fetch_add(e - s);
  });
  EXPECT_EQ(visited.load(), 100);

  // Empty and reversed ranges are no-ops.
  bool called = false;
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { called = true; });
  ParallelFor(5, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

// The reduction contract: same bits at any thread count because the chunk
// layout and combine tree depend only on (n, grain).
TEST(ThreadPoolTest, DeterministicSumIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const int64_t n = 100000;
  std::vector<float> values(n);
  for (auto& v : values) v = rng.Uniform(-1.0f, 1.0f);
  auto sum_at = [&](int threads) {
    ScopedNumThreads guard(threads);
    return DeterministicChunkedSum(n, 2048, [&](int64_t b, int64_t e) {
      double s = 0.0;
      for (int64_t i = b; i < e; ++i) s += values[i];
      return s;
    });
  };
  const double at1 = sum_at(1);
  EXPECT_EQ(at1, sum_at(2));
  EXPECT_EQ(at1, sum_at(8));
}

TEST(ThreadPoolTest, DeterministicSumEdgeCases) {
  auto ident = [](int64_t b, int64_t e) {
    return static_cast<double>(e - b);
  };
  EXPECT_EQ(DeterministicChunkedSum(0, 16, ident), 0.0);
  EXPECT_EQ(DeterministicChunkedSum(1, 16, ident), 1.0);
  EXPECT_EQ(DeterministicChunkedSum(16, 16, ident), 16.0);   // exactly 1 chunk
  EXPECT_EQ(DeterministicChunkedSum(17, 16, ident), 17.0);   // ragged tail
  EXPECT_EQ(DeterministicChunkedSum(1000, 1, ident), 1000.0);  // 1000 chunks
}

}  // namespace
}  // namespace tgcrn
