// Copyright 2026 TGCRN Reproduction Authors
// Checkpoint round-trip guarantees the serving layer depends on
// (docs/SERVING.md "Checkpoint format"): SaveParameters → LoadParameters
// into a differently-initialized model reproduces forecasts bitwise, for
// the dense and sparse execution paths, and corrupted or truncated files
// are rejected instead of silently mis-loading.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/tgcrn.h"
#include "data/dataset.h"
#include "datagen/metro_sim.h"

namespace tgcrn {
namespace {

class CheckpointFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 6;
    config.num_days = 8;
    config.seed = 23;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    dataset_ = new data::ForecastDataset(std::move(sim.data), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static core::TGCRNConfig SmallConfig() {
    core::TGCRNConfig config;
    config.num_nodes = 6;
    config.input_dim = 2;
    config.output_dim = 2;
    config.horizon = 2;
    config.hidden_dim = 8;
    config.num_layers = 2;
    config.node_embed_dim = 6;
    config.time_embed_dim = 4;
    config.steps_per_day = 72;
    return config;
  }

  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  static Tensor EvalForecast(core::TGCRN* model) {
    model->SetTraining(false);
    const data::Batch batch = dataset_->MakeBatch(
        data::ForecastDataset::Split::kTest, {0});
    ag::NoGradGuard no_grad;
    return model->Forward(batch).value();
  }

  // Save from a seed-1 model, load into a seed-2 model (different random
  // init), and expect bitwise-identical eval forecasts.
  static void ExpectRoundTripIdentity(const core::TGCRNConfig& config,
                                      const std::string& path) {
    Rng rng_a(1);
    core::TGCRN saved(config, &rng_a);
    ASSERT_TRUE(saved.SaveParameters(path).ok());

    Rng rng_b(2);
    core::TGCRN loaded(config, &rng_b);
    ASSERT_TRUE(loaded.LoadParameters(path).ok());

    const Tensor expect = EvalForecast(&saved);
    const Tensor got = EvalForecast(&loaded);
    ASSERT_EQ(expect.numel(), got.numel());
    EXPECT_EQ(std::memcmp(expect.data(), got.data(),
                          static_cast<size_t>(expect.numel()) *
                              sizeof(float)),
              0)
        << "loaded checkpoint diverged from the saved model";
    std::remove(path.c_str());
  }

  static data::ForecastDataset* dataset_;
};

data::ForecastDataset* CheckpointFixture::dataset_ = nullptr;

TEST_F(CheckpointFixture, RoundTripIsBitwiseIdenticalDense) {
  ExpectRoundTripIdentity(SmallConfig(), TempPath("ckpt_dense.bin"));
}

TEST_F(CheckpointFixture, RoundTripIsBitwiseIdenticalSparseTopK) {
  core::TGCRNConfig config = SmallConfig();
  config.graph_topk = 3;
  ExpectRoundTripIdentity(config, TempPath("ckpt_sparse.bin"));
}

TEST_F(CheckpointFixture, TruncatedCheckpointIsRejected) {
  const std::string path = TempPath("ckpt_truncated.bin");
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  ASSERT_TRUE(model.SaveParameters(path).ok());

  // Chop the file roughly in half (always inside the tensor payload).
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 16u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  Rng rng_b(2);
  core::TGCRN victim(SmallConfig(), &rng_b);
  EXPECT_FALSE(victim.LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, ShapeMismatchIsRejected) {
  const std::string path = TempPath("ckpt_shape.bin");
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  ASSERT_TRUE(model.SaveParameters(path).ok());

  // A model with a different hidden width must refuse the file.
  core::TGCRNConfig other = SmallConfig();
  other.hidden_dim = 12;
  Rng rng_b(2);
  core::TGCRN victim(other, &rng_b);
  EXPECT_FALSE(victim.LoadParameters(path).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, ScalerFooterRoundTripsBitwise) {
  const std::string path = TempPath("ckpt_scaler.bin");
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  ASSERT_TRUE(model.SaveParameters(path).ok());
  ASSERT_TRUE(data::AppendScalerFooter(path, dataset_->scaler()).ok());

  // The trailing footer is invisible to the parameter loader...
  Rng rng_b(2);
  core::TGCRN loaded(SmallConfig(), &rng_b);
  ASSERT_TRUE(loaded.LoadParameters(path).ok());
  const Tensor expect = EvalForecast(&model);
  const Tensor got = EvalForecast(&loaded);
  EXPECT_EQ(std::memcmp(expect.data(), got.data(),
                        static_cast<size_t>(expect.numel()) * sizeof(float)),
            0);

  // ...and the footer itself round-trips the fitted moments bitwise.
  data::StandardScaler scaler;
  ASSERT_TRUE(data::LoadScalerFooter(path, &scaler).ok());
  EXPECT_EQ(scaler.means(), dataset_->scaler().means());
  EXPECT_EQ(scaler.stds(), dataset_->scaler().stds());
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, MissingScalerFooterIsNotFound) {
  const std::string path = TempPath("ckpt_no_footer.bin");
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  ASSERT_TRUE(model.SaveParameters(path).ok());

  data::StandardScaler scaler;
  const Status status = data::LoadScalerFooter(path, &scaler);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, CorruptScalerFooterIsRejected) {
  const std::string path = TempPath("ckpt_bad_footer.bin");
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  ASSERT_TRUE(model.SaveParameters(path).ok());
  ASSERT_TRUE(data::AppendScalerFooter(path, dataset_->scaler()).ok());

  // Flip the stored channel count to an absurd value; the magic still
  // matches, so the loader must detect the inconsistent length.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(-16, std::ios::end);
  const uint64_t bogus = 1ull << 40;
  file.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  file.close();

  data::StandardScaler scaler;
  EXPECT_FALSE(data::LoadScalerFooter(path, &scaler).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointFixture, MissingFileIsRejected) {
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  EXPECT_FALSE(
      model.LoadParameters(TempPath("ckpt_never_written.bin")).ok());
}

}  // namespace
}  // namespace tgcrn
