// Copyright 2026 TGCRN Reproduction Authors
// Contract tests of the inference session (src/serve/session.h): a warm
// entity's forecast is bitwise-identical to a direct Forward over the
// same window (the model/runtime split is exact), the steady state makes
// zero tensor heap allocations, and the entity cache warms/evicts as
// documented in docs/SERVING.md.
#include "serve/session.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "core/tgcrn.h"
#include "datagen/metro_sim.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"

namespace tgcrn {
namespace {

constexpr int64_t kInputSteps = 4;
constexpr int64_t kHorizon = 2;

class ServeSessionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 6;
    config.num_days = 8;
    config.seed = 91;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    raw_ = new data::SpatioTemporalData(std::move(sim.data));
    scaler_ = new data::StandardScaler();
    scaler_->Fit(raw_->values, raw_->num_steps() * 7 / 10);
  }
  static void TearDownTestSuite() {
    delete raw_;
    delete scaler_;
    raw_ = nullptr;
    scaler_ = nullptr;
  }

  static core::TGCRNConfig SmallConfig() {
    core::TGCRNConfig config;
    config.num_nodes = raw_->num_nodes();
    config.input_dim = raw_->num_features();
    config.output_dim = raw_->num_features();
    config.horizon = kHorizon;
    config.hidden_dim = 8;
    config.num_layers = 2;
    config.node_embed_dim = 6;
    config.time_embed_dim = 4;
    config.steps_per_day = raw_->steps_per_day;
    return config;
  }

  // Assembles the eval Batch for the raw window starting at t0, scaled
  // the same way the serving session scales observations.
  static data::Batch WindowBatch(int64_t t0) {
    const int64_t n = raw_->num_nodes();
    const int64_t d = raw_->num_features();
    Tensor x({1, kInputSteps, n, d});
    std::memcpy(x.mutable_data(), raw_->values.data() + t0 * n * d,
                static_cast<size_t>(kInputSteps * n * d) * sizeof(float));
    data::Batch batch;
    batch.x = scaler_->Transform(x);
    batch.x_slots.push_back(std::vector<int64_t>());
    for (int64_t t = 0; t < kInputSteps; ++t) {
      batch.x_slots[0].push_back(raw_->slot_of_day[t0 + t]);
    }
    // Future slots exactly as the session derives them from the last
    // observed slot.
    const int64_t last = batch.x_slots[0].back();
    batch.y_slots.push_back(std::vector<int64_t>());
    for (int64_t q = 0; q < kHorizon; ++q) {
      batch.y_slots[0].push_back((last + 1 + q) % raw_->steps_per_day);
    }
    return batch;
  }

  static serve::Observation ObservationAt(const std::string& entity,
                                          int64_t t) {
    const int64_t n = raw_->num_nodes();
    const int64_t d = raw_->num_features();
    serve::Observation ob;
    ob.entity = entity;
    ob.slot = raw_->slot_of_day[t];
    ob.values.assign(raw_->values.data() + t * n * d,
                     raw_->values.data() + (t + 1) * n * d);
    return ob;
  }

  // Runs both paths over the window at t0 and expects bitwise equality.
  static void ExpectSessionMatchesForward(core::TGCRNConfig config,
                                          int64_t t0) {
    Rng rng(17);
    core::TGCRN model(config, &rng);
    model.SetTraining(false);

    data::Batch batch = WindowBatch(t0);
    Tensor direct;
    {
      ag::NoGradGuard no_grad;
      direct = scaler_->InverseTransform(model.Forward(batch).value());
    }

    serve::SessionConfig session_config;
    serve::InferenceSession session(&model, *scaler_, session_config);
    std::vector<serve::Observation> window;
    for (int64_t t = 0; t < kInputSteps; ++t) {
      window.push_back(ObservationAt("hz", t0 + t));
    }
    const auto observed = session.Observe(window);
    EXPECT_EQ(observed.steps.back(), kInputSteps);

    Tensor served;
    std::vector<int64_t> steps;
    session.Forecast({"hz"}, &served, &steps);
    ASSERT_EQ(steps[0], kInputSteps);

    ASSERT_EQ(served.numel(), direct.numel());
    EXPECT_EQ(std::memcmp(served.data(), direct.data(),
                          static_cast<size_t>(direct.numel()) *
                              sizeof(float)),
              0)
        << "serving path diverged from direct Forward";
  }

  static data::SpatioTemporalData* raw_;
  static data::StandardScaler* scaler_;
};

data::SpatioTemporalData* ServeSessionFixture::raw_ = nullptr;
data::StandardScaler* ServeSessionFixture::scaler_ = nullptr;

TEST_F(ServeSessionFixture, ForecastMatchesDirectForwardDense) {
  ExpectSessionMatchesForward(SmallConfig(), 10);
}

TEST_F(ServeSessionFixture, ForecastMatchesDirectForwardSparseTopK) {
  core::TGCRNConfig config = SmallConfig();
  config.graph_topk = 3;
  ExpectSessionMatchesForward(config, 10);
}

TEST_F(ServeSessionFixture, ForecastMatchesDirectForwardDirectHead) {
  core::TGCRNConfig config = SmallConfig();
  config.use_encoder_decoder = false;
  ExpectSessionMatchesForward(config, 20);
}

TEST_F(ServeSessionFixture, SteadyStateMakesZeroTensorAllocations) {
  Rng rng(5);
  core::TGCRN model(SmallConfig(), &rng);
  serve::InferenceSession session(&model, *scaler_, serve::SessionConfig());

  const std::vector<std::string> names = {"a", "b", "c", "d"};
  auto round = [&](int64_t t) {
    std::vector<serve::Observation> wave;
    for (const std::string& name : names) {
      wave.push_back(ObservationAt(name, t));
    }
    session.Observe(wave);
    Tensor out;
    std::vector<int64_t> steps;
    session.Forecast(names, &out, &steps);
  };
  for (int64_t t = 0; t < 3; ++t) round(t);  // warm-up

  auto* allocations =
      obs::Registry::Global().GetCounter("tensor.allocations");
  const int64_t before = allocations->Value();
  for (int64_t t = 3; t < 8; ++t) round(t);
  EXPECT_EQ(allocations->Value() - before, 0)
      << "steady-state serving must not touch the heap for tensors";
}

TEST_F(ServeSessionFixture, SteadyStateZeroAllocationsSparseTopK) {
  core::TGCRNConfig config = SmallConfig();
  config.graph_topk = 3;
  Rng rng(5);
  core::TGCRN model(config, &rng);
  serve::InferenceSession session(&model, *scaler_, serve::SessionConfig());

  auto round = [&](int64_t t) {
    std::vector<serve::Observation> wave = {ObservationAt("a", t),
                                            ObservationAt("b", t)};
    session.Observe(wave);
    Tensor out;
    std::vector<int64_t> steps;
    session.Forecast({"a", "b"}, &out, &steps);
  };
  for (int64_t t = 0; t < 3; ++t) round(t);

  auto* allocations =
      obs::Registry::Global().GetCounter("tensor.allocations");
  const int64_t before = allocations->Value();
  for (int64_t t = 3; t < 8; ++t) round(t);
  EXPECT_EQ(allocations->Value() - before, 0);
}

TEST_F(ServeSessionFixture, RepeatedEntityInOneCallAdvancesSequentially) {
  Rng rng(6);
  core::TGCRN model(SmallConfig(), &rng);
  serve::InferenceSession session(&model, *scaler_, serve::SessionConfig());

  std::vector<serve::Observation> wave = {ObservationAt("hz", 0),
                                          ObservationAt("hz", 1),
                                          ObservationAt("sh", 0)};
  const auto result = session.Observe(wave);
  EXPECT_EQ(result.steps[0], 1);
  EXPECT_EQ(result.steps[1], 2);  // second observation saw the first
  EXPECT_EQ(result.steps[2], 1);
  EXPECT_EQ(session.StepsFor("hz"), 2);
}

TEST_F(ServeSessionFixture, LruEvictionBoundsTheEntityCache) {
  Rng rng(7);
  core::TGCRN model(SmallConfig(), &rng);
  serve::SessionConfig config;
  config.max_entities = 2;
  serve::InferenceSession session(&model, *scaler_, config);

  session.Observe({ObservationAt("old", 0)});
  session.Observe({ObservationAt("mid", 1)});
  session.Observe({ObservationAt("old", 2)});  // refresh "old"
  const auto result = session.Observe({ObservationAt("new", 3)});
  EXPECT_EQ(result.evicted, 1);
  EXPECT_EQ(session.EntityCount(), 2);
  EXPECT_EQ(session.StepsFor("mid"), -1);  // LRU victim
  EXPECT_EQ(session.StepsFor("old"), 2);
  EXPECT_EQ(session.StepsFor("new"), 1);

  EXPECT_TRUE(session.Evict("new"));
  EXPECT_FALSE(session.Evict("new"));
  EXPECT_EQ(session.StepsFor("new"), -1);
}

TEST_F(ServeSessionFixture, ObserveBatchNeverEvictsItsOwnEntities) {
  Rng rng(9);
  core::TGCRN model(SmallConfig(), &rng);
  serve::SessionConfig config;
  config.max_entities = 2;
  serve::InferenceSession session(&model, *scaler_, config);

  session.Observe({ObservationAt("a", 0)});  // "a" becomes the LRU entity
  session.Observe({ObservationAt("b", 1)});
  // One batch holding the current LRU warm entity plus a new one: the
  // admission of "c" must evict "b", never the in-batch "a" (which the
  // wave is about to step — evicting it used to throw out_of_range).
  const auto result =
      session.Observe({ObservationAt("a", 2), ObservationAt("c", 2)});
  EXPECT_EQ(result.evicted, 1);
  EXPECT_EQ(result.steps[0], 2);
  EXPECT_EQ(result.steps[1], 1);
  EXPECT_EQ(session.StepsFor("a"), 2);
  EXPECT_EQ(session.StepsFor("b"), -1);  // the only legal victim
  EXPECT_EQ(session.StepsFor("c"), 1);
}

TEST_F(ServeSessionFixture, ObserveBatchWiderThanTheCacheChunksIntoWaves) {
  Rng rng(10);
  core::TGCRN model(SmallConfig(), &rng);
  serve::SessionConfig config;
  config.max_entities = 2;
  serve::InferenceSession session(&model, *scaler_, config);

  // More distinct new entities than the cache holds, in one call: waves
  // are capped at max_entities distinct entities, so this serves all
  // three observations and evicts the overflow instead of crashing.
  const auto result = session.Observe({ObservationAt("x", 0),
                                       ObservationAt("y", 0),
                                       ObservationAt("z", 0)});
  EXPECT_EQ(result.steps, (std::vector<int64_t>{1, 1, 1}));
  EXPECT_EQ(result.evicted, 1);
  EXPECT_EQ(session.EntityCount(), 2);
  EXPECT_EQ(session.StepsFor("x"), -1);  // LRU of the first wave
  EXPECT_EQ(session.StepsFor("y"), 1);
  EXPECT_EQ(session.StepsFor("z"), 1);
}

TEST_F(ServeSessionFixture, CacheCountersTrackAdmitHitEvictAndWaveShield) {
  Rng rng(11);
  core::TGCRN model(SmallConfig(), &rng);
  serve::SessionConfig config;
  config.max_entities = 2;
  serve::InferenceSession session(&model, *scaler_, config);

  // Counters are global and cumulative, so assert deltas.
  obs::Registry& reg = obs::Registry::Global();
  auto* hits = reg.GetCounter("serve.cache_hits");
  auto* misses = reg.GetCounter("serve.cache_misses");
  auto* evictions = reg.GetCounter("serve.evictions");
  auto* age = reg.GetHistogram("serve.eviction_age_ticks");
  const int64_t hits0 = hits->Value();
  const int64_t misses0 = misses->Value();
  const int64_t evictions0 = evictions->Value();
  const int64_t ages0 = age->Snapshot().count;

  session.Observe({ObservationAt("a", 0)});  // admit = miss
  session.Observe({ObservationAt("b", 1)});  // admit = miss
  EXPECT_EQ(misses->Value() - misses0, 2);
  EXPECT_EQ(hits->Value() - hits0, 0);

  session.Observe({ObservationAt("a", 2)});  // warm entity = hit
  EXPECT_EQ(hits->Value() - hits0, 1);
  EXPECT_EQ(evictions->Value() - evictions0, 0);

  // Admitting "c" evicts the LRU ("b") and observes its age in ticks.
  session.Observe({ObservationAt("c", 3)});
  EXPECT_EQ(misses->Value() - misses0, 3);
  EXPECT_EQ(evictions->Value() - evictions0, 1);
  EXPECT_EQ(age->Snapshot().count - ages0, 1);

  // Wave shield: the LRU entity "a" rides in the same batch as a new
  // one, so the victim must be "c" — and the counters must agree with
  // the protection ("a" still counts as a hit, "d" as a miss).
  const auto result =
      session.Observe({ObservationAt("a", 4), ObservationAt("d", 4)});
  EXPECT_EQ(result.evicted, 1);
  EXPECT_EQ(hits->Value() - hits0, 2);
  EXPECT_EQ(misses->Value() - misses0, 4);
  EXPECT_EQ(evictions->Value() - evictions0, 2);
  EXPECT_EQ(age->Snapshot().count - ages0, 2);
  EXPECT_EQ(session.StepsFor("c"), -1);
  EXPECT_EQ(session.StepsFor("a"), 3);
}

TEST_F(ServeSessionFixture, WaveTimingsCoverEveryObservationInOrder) {
  Rng rng(12);
  core::TGCRN model(SmallConfig(), &rng);
  serve::SessionConfig config;
  config.batch_max = 2;
  serve::InferenceSession session(&model, *scaler_, config);

  // Three distinct entities with batch_max 2: two waves, and every
  // observation maps to the wave that actually served it.
  const auto result = session.Observe({ObservationAt("a", 0),
                                       ObservationAt("b", 0),
                                       ObservationAt("c", 0)});
  ASSERT_EQ(result.wave_index.size(), 3u);
  ASSERT_EQ(session.wave_timings().size(), 2u);
  EXPECT_EQ(result.wave_index[0], 0);
  EXPECT_EQ(result.wave_index[1], 0);
  EXPECT_EQ(result.wave_index[2], 1);
  EXPECT_EQ(session.wave_timings()[0].active, 2);
  EXPECT_EQ(session.wave_timings()[1].active, 1);
  for (const serve::WaveTiming& wave : session.wave_timings()) {
    // Stage boundaries are stamped in lifecycle order on one clock.
    EXPECT_GT(wave.start_ns, 0);
    EXPECT_LE(wave.start_ns, wave.gather_end_ns);
    EXPECT_LE(wave.gather_end_ns, wave.kernel_end_ns);
    EXPECT_LE(wave.kernel_end_ns, wave.scatter_end_ns);
  }

  // Forecast replaces the timing list; rows chunk into batch_max waves.
  Tensor out;
  std::vector<int64_t> steps;
  session.Forecast({"a", "b", "c"}, &out, &steps);
  ASSERT_EQ(session.wave_timings().size(), 2u);
  EXPECT_EQ(session.wave_timings()[0].active, 2);
  EXPECT_EQ(session.wave_timings()[1].active, 1);
}

TEST_F(ServeSessionFixture, PoolFloorIsRestoredWhenTheSessionEnds) {
  TensorBufferPool& pool = TensorBufferPool::Global();
  const int64_t before = pool.min_pooled_elements();
  {
    Rng rng(8);
    core::TGCRN model(SmallConfig(), &rng);
    serve::InferenceSession session(&model, *scaler_,
                                    serve::SessionConfig());
    EXPECT_EQ(pool.min_pooled_elements(), 1);
  }
  EXPECT_EQ(pool.min_pooled_elements(), before);
}

}  // namespace
}  // namespace tgcrn
