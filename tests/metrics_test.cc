// Copyright 2026 TGCRN Reproduction Authors
// Metric correctness: hand-computed values, identities, masking behaviour.
#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tgcrn {
namespace {

TEST(MetricsTest, HandComputedValues) {
  Tensor pred = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor target = Tensor::FromVector({4}, {2, 2, 5, 8});
  const auto m = metrics::Evaluate(pred, target);
  // errors: -1, 0, -2, -4
  EXPECT_NEAR(m.mae, (1 + 0 + 2 + 4) / 4.0, 1e-9);
  EXPECT_NEAR(m.mse, (1 + 0 + 4 + 16) / 4.0, 1e-9);
  EXPECT_NEAR(m.rmse, std::sqrt(21.0 / 4.0), 1e-9);
  // MAPE over |y| > 1: all four targets -> |e/y| = .5, 0, .4, .5
  EXPECT_NEAR(m.mape, 100.0 * (0.5 + 0.0 + 0.4 + 0.5) / 4.0, 1e-4);
  EXPECT_EQ(m.count, 4);
}

TEST(MetricsTest, PerfectPredictionIsZeroErrorUnitPcc) {
  Rng rng(1);
  Tensor t = Tensor::RandUniform({50}, 1, 10, &rng);
  const auto m = metrics::Evaluate(t, t);
  EXPECT_EQ(m.mae, 0.0);
  EXPECT_EQ(m.rmse, 0.0);
  EXPECT_NEAR(m.pcc, 1.0, 1e-9);
}

TEST(MetricsTest, PccIdentities) {
  Rng rng(2);
  Tensor y = Tensor::RandUniform({100}, 2, 10, &rng);
  // Affine transform with positive slope: PCC == 1.
  Tensor pos = y.MulScalar(3.0f).AddScalar(5.0f);
  EXPECT_NEAR(metrics::Evaluate(pos, y).pcc, 1.0, 1e-5);
  // Negative slope: PCC == -1.
  Tensor neg = y.MulScalar(-2.0f);
  EXPECT_NEAR(metrics::Evaluate(neg, y).pcc, -1.0, 1e-5);
}

TEST(MetricsTest, RmseSquaredIsMse) {
  Rng rng(3);
  Tensor pred = Tensor::RandUniform({64}, 0, 5, &rng);
  Tensor target = Tensor::RandUniform({64}, 0, 5, &rng);
  const auto m = metrics::Evaluate(pred, target);
  EXPECT_NEAR(m.rmse * m.rmse, m.mse, 1e-9);
  EXPECT_LE(m.mae, m.rmse + 1e-12);  // Jensen
}

TEST(MetricsTest, NullMaskExcludesMissingTargets) {
  Tensor pred = Tensor::FromVector({4}, {10, 20, 30, 40});
  Tensor target = Tensor::FromVector({4}, {0, 22, 0, 44});
  metrics::MetricsOptions options;
  options.null_threshold = 0.5;
  const auto m = metrics::Evaluate(pred, target, options);
  EXPECT_EQ(m.count, 2);
  EXPECT_NEAR(m.mae, (2 + 4) / 2.0, 1e-9);
}

TEST(MetricsTest, MapeThresholdExcludesTinyTargets) {
  Tensor pred = Tensor::FromVector({2}, {1.0f, 10.0f});
  Tensor target = Tensor::FromVector({2}, {0.5f, 20.0f});
  const auto m = metrics::Evaluate(pred, target);  // mape_threshold = 1
  EXPECT_NEAR(m.mape, 100.0 * 0.5, 1e-6);  // only the 20 target counts
}

TEST(MetricsTest, PerHorizonSplitsAxisOne) {
  // [B=1, Q=2, N=2]: horizon 0 perfect, horizon 1 off by 3.
  Tensor pred = Tensor::FromVector({1, 2, 2}, {1, 2, 4, 7});
  Tensor target = Tensor::FromVector({1, 2, 2}, {1, 2, 7, 4});
  const auto per = metrics::EvaluatePerHorizon(pred, target);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_NEAR(per[0].mae, 0.0, 1e-9);
  EXPECT_NEAR(per[1].mae, 3.0, 1e-9);
}

TEST(MetricsTest, AverageMetrics) {
  metrics::Metrics a, b;
  a.mae = 2.0;
  a.rmse = 4.0;
  b.mae = 4.0;
  b.rmse = 8.0;
  const auto avg = metrics::AverageMetrics({a, b});
  EXPECT_NEAR(avg.mae, 3.0, 1e-9);
  EXPECT_NEAR(avg.rmse, 6.0, 1e-9);
  EXPECT_EQ(metrics::AverageMetrics({}).mae, 0.0);
}

TEST(MetricsTest, PccInUnitRangeProperty) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Tensor pred = Tensor::RandUniform({32}, -5, 5, &rng);
    Tensor target = Tensor::RandUniform({32}, -5, 5, &rng);
    const auto m = metrics::Evaluate(pred, target);
    EXPECT_GE(m.pcc, -1.0 - 1e-9);
    EXPECT_LE(m.pcc, 1.0 + 1e-9);
  }
}

TEST(MetricsTest, PerNodeSplitsAxisTwo) {
  // [B=1, Q=2, N=2, d=1]: node 0 perfect, node 1 off by 2.
  Tensor pred = Tensor::FromVector({1, 2, 2, 1}, {1, 5, 2, 6});
  Tensor target = Tensor::FromVector({1, 2, 2, 1}, {1, 7, 2, 8});
  const auto per = metrics::EvaluatePerNode(pred, target);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_NEAR(per[0].mae, 0.0, 1e-9);
  EXPECT_NEAR(per[1].mae, 2.0, 1e-9);
}

TEST(MetricsTest, PerNodeAverageEqualsPooled) {
  // With equal element counts per node and no masking, the mean of
  // per-node MAEs equals the pooled MAE.
  Rng rng(6);
  Tensor pred = Tensor::RandUniform({3, 4, 5, 2}, 2, 9, &rng);
  Tensor target = Tensor::RandUniform({3, 4, 5, 2}, 2, 9, &rng);
  const auto per = metrics::EvaluatePerNode(pred, target);
  const auto pooled = metrics::Evaluate(pred, target);
  EXPECT_NEAR(metrics::AverageMetrics(per).mae, pooled.mae, 1e-6);
}

}  // namespace
}  // namespace tgcrn
