// Copyright 2026 TGCRN Reproduction Authors
// Optimizer tests: exact step arithmetic, convergence on convex problems,
// scheduler milestones, clipping, early stopping.
#include "optim/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace tgcrn {
namespace {

using ag::Variable;

TEST(SGDTest, SingleStepMatchesHandComputation) {
  Variable w(Tensor::FromVector({2}, {1.0f, -2.0f}), true);
  // loss = sum(w^2) -> grad = 2w
  ag::SumAll(ag::Mul(w, w)).Backward();
  optim::SGD sgd({w}, /*lr=*/0.1f);
  sgd.Step();
  EXPECT_TRUE(w.value().AllClose(Tensor::FromVector({2}, {0.8f, -1.6f}),
                                 1e-6f));
}

TEST(SGDTest, MomentumAccumulates) {
  Variable w(Tensor::FromVector({1}, {1.0f}), true);
  optim::SGD sgd({w}, 0.1f, /*momentum=*/0.9f);
  // Constant gradient of 1.0 twice: v1 = 1, v2 = 1.9.
  for (int i = 0; i < 2; ++i) {
    w.ZeroGrad();
    ag::SumAll(w).Backward();
    sgd.Step();
  }
  EXPECT_NEAR(w.value().item(), 1.0f - 0.1f * 1.0f - 0.1f * 1.9f, 1e-6f);
}

TEST(AdamTest, FirstStepHasMagnitudeLr) {
  // For any gradient, Adam's bias-corrected first step is ~lr * sign(g).
  Variable w(Tensor::FromVector({2}, {5.0f, -3.0f}), true);
  ag::SumAll(ag::Mul(w, w)).Backward();
  optim::Adam adam({w}, /*lr=*/0.01f);
  adam.Step();
  EXPECT_NEAR(w.value().flat(0), 5.0f - 0.01f, 1e-4f);
  EXPECT_NEAR(w.value().flat(1), -3.0f + 0.01f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(1);
  Variable w(Tensor::RandUniform({4}, -2, 2, &rng), true);
  Tensor target = Tensor::FromVector({4}, {1.0f, -1.0f, 0.5f, 2.0f});
  optim::Adam adam({w}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    w.ZeroGrad();
    Variable diff = ag::Sub(w, ag::Variable(target));
    ag::SumAll(ag::Mul(diff, diff)).Backward();
    adam.Step();
  }
  EXPECT_TRUE(w.value().AllClose(target, 1e-2f));
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  // With zero loss gradient, weight decay alone must shrink the weight.
  Variable w(Tensor::FromVector({1}, {2.0f}), true);
  optim::Adam adam({w}, 0.01f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 20; ++i) {
    w.ZeroGrad();
    ag::MulScalar(ag::SumAll(w), 0.0f).Backward();  // zero gradient
    adam.Step();
  }
  EXPECT_LT(w.value().item(), 2.0f);
  EXPECT_GT(w.value().item(), 0.0f);
}

TEST(AdamTest, SkipsParamsWithoutGrad) {
  Variable used(Tensor::FromVector({1}, {1.0f}), true);
  Variable unused(Tensor::FromVector({1}, {7.0f}), true);
  optim::Adam adam({used, unused}, 0.1f);
  ag::SumAll(used).Backward();
  adam.Step();
  EXPECT_EQ(unused.value().item(), 7.0f);
  EXPECT_NE(used.value().item(), 1.0f);
}

TEST(ClipGradNormTest, ScalesDownLargeGradients) {
  Variable w(Tensor::FromVector({2}, {0.0f, 0.0f}), true);
  Variable target(Tensor::FromVector({2}, {30.0f, 40.0f}));
  // grad of sum((w - t)^2)/1 = 2(w-t) = {-60, -80}, norm 100.
  ag::SumAll(ag::Mul(ag::Sub(w, target), ag::Sub(w, target))).Backward();
  const float pre_norm = optim::ClipGradNorm({w}, 5.0f);
  EXPECT_NEAR(pre_norm, 100.0f, 1e-3f);
  double norm_sq = 0;
  for (int64_t i = 0; i < 2; ++i) {
    norm_sq += w.grad().flat(i) * w.grad().flat(i);
  }
  EXPECT_NEAR(std::sqrt(norm_sq), 5.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Variable w(Tensor::FromVector({1}, {1.0f}), true);
  ag::SumAll(w).Backward();  // grad = 1
  optim::ClipGradNorm({w}, 5.0f);
  EXPECT_NEAR(w.grad().item(), 1.0f, 1e-6f);
}

TEST(MultiStepLRTest, DecaysAtMilestones) {
  Variable w(Tensor::FromVector({1}, {1.0f}), true);
  optim::SGD sgd({w}, 1.0f);
  optim::MultiStepLR sched(&sgd, {2, 4}, 0.5f);
  sched.Step(0);  // after epoch 0
  EXPECT_FLOAT_EQ(sgd.lr(), 1.0f);
  sched.Step(1);  // epoch+1 == 2 -> decay
  EXPECT_FLOAT_EQ(sgd.lr(), 0.5f);
  sched.Step(2);
  EXPECT_FLOAT_EQ(sgd.lr(), 0.5f);
  sched.Step(3);  // epoch+1 == 4 -> decay
  EXPECT_FLOAT_EQ(sgd.lr(), 0.25f);
}

TEST(EarlyStopperTest, StopsAfterPatience) {
  optim::EarlyStopper stopper(2);
  EXPECT_TRUE(stopper.Update(1.0f));
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_FALSE(stopper.Update(1.5f));
  EXPECT_FALSE(stopper.ShouldStop());
  EXPECT_FALSE(stopper.Update(1.4f));
  EXPECT_TRUE(stopper.ShouldStop());
  // An improvement resets the counter.
  optim::EarlyStopper s2(2);
  s2.Update(1.0f);
  s2.Update(2.0f);
  EXPECT_TRUE(s2.Update(0.5f));
  EXPECT_FALSE(s2.ShouldStop());
  EXPECT_FLOAT_EQ(s2.best(), 0.5f);
}

TEST(TrainingIntegrationTest, LinearRegressionRecoversWeights) {
  // y = X w* + b*; train a Linear via Adam to recover them.
  Rng rng(5);
  Tensor w_true = Tensor::FromVector({3, 1}, {0.5f, -1.0f, 2.0f});
  Tensor x = Tensor::RandUniform({64, 3}, -1, 1, &rng);
  Tensor y = x.Matmul(w_true).AddScalar(0.7f);

  Variable w(Tensor::Zeros({3, 1}), true);
  Variable b(Tensor::Zeros({1}), true);
  optim::Adam adam({w, b}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    w.ZeroGrad();
    b.ZeroGrad();
    Variable pred = ag::Add(ag::Matmul(ag::Variable(x), w), b);
    ag::MseLoss(pred, ag::Variable(y)).Backward();
    adam.Step();
  }
  EXPECT_TRUE(w.value().AllClose(w_true, 5e-2f));
  EXPECT_NEAR(b.value().item(), 0.7f, 5e-2f);
}

}  // namespace
}  // namespace tgcrn
