// Copyright 2026 TGCRN Reproduction Authors
// Adam state checkpointing: a resumed run must continue bit-for-bit where
// the original left off, and the error paths must surface as Status.
#include <filesystem>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "optim/optimizer.h"

namespace tgcrn {
namespace {

using ag::Variable;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// One quadratic training step on (w, target).
void Step(Variable* w, const Tensor& target, optim::Adam* adam) {
  w->ZeroGrad();
  Variable diff = ag::Sub(*w, Variable(target));
  ag::SumAll(ag::Mul(diff, diff)).Backward();
  adam->Step();
}

TEST(AdamStateTest, ResumeReproducesContinuedRun) {
  Rng rng(1);
  const Tensor target = Tensor::RandUniform({6}, -1, 1, &rng);
  const Tensor init = Tensor::RandUniform({6}, -1, 1, &rng);
  const std::string path = TempPath("tgcrn_adam_state.bin");

  // Continuous run: 10 steps.
  Variable w_full(init.Clone(), true);
  optim::Adam adam_full({w_full}, 0.05f);
  for (int i = 0; i < 10; ++i) Step(&w_full, target, &adam_full);

  // Split run: 5 steps, checkpoint (params + optimizer), restore, 5 more.
  Variable w_a(init.Clone(), true);
  optim::Adam adam_a({w_a}, 0.05f);
  for (int i = 0; i < 5; ++i) Step(&w_a, target, &adam_a);
  ASSERT_TRUE(adam_a.SaveState(path).ok());
  const Tensor mid_params = w_a.value().Clone();

  Variable w_b(mid_params.Clone(), true);
  optim::Adam adam_b({w_b}, 0.05f);
  ASSERT_TRUE(adam_b.LoadState(path).ok());
  EXPECT_EQ(adam_b.step_count(), 5);
  for (int i = 0; i < 5; ++i) Step(&w_b, target, &adam_b);

  EXPECT_TRUE(w_b.value().AllClose(w_full.value(), 1e-7f));

  // Without restoring the moments, the trajectory differs (fresh bias
  // correction and zero moments).
  Variable w_c(mid_params.Clone(), true);
  optim::Adam adam_c({w_c}, 0.05f);
  for (int i = 0; i < 5; ++i) Step(&w_c, target, &adam_c);
  EXPECT_FALSE(w_c.value().AllClose(w_full.value(), 1e-7f));
  std::filesystem::remove(path);
}

TEST(AdamStateTest, LoadRejectsMismatchedOptimizer) {
  Variable w(Tensor::Ones({3}), true);
  optim::Adam adam({w}, 0.01f);
  ag::SumAll(w).Backward();
  adam.Step();
  const std::string path = TempPath("tgcrn_adam_state2.bin");
  ASSERT_TRUE(adam.SaveState(path).ok());

  Variable w2(Tensor::Ones({3}), true);
  Variable w3(Tensor::Ones({2}), true);
  optim::Adam wrong_count({w2, w3}, 0.01f);
  EXPECT_FALSE(wrong_count.LoadState(path).ok());

  Variable w4(Tensor::Ones({5}), true);
  optim::Adam wrong_shape({w4}, 0.01f);
  EXPECT_FALSE(wrong_shape.LoadState(path).ok());
  std::filesystem::remove(path);
}

TEST(AdamStateTest, LoadMissingFileIsIOError) {
  Variable w(Tensor::Ones({2}), true);
  optim::Adam adam({w}, 0.01f);
  const Status status = adam.LoadState("/no/such/path.bin");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace tgcrn
