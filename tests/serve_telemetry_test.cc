// Copyright 2026 TGCRN Reproduction Authors
// Tests of the request-level serving telemetry (src/serve/telemetry.h
// and its storage layer src/obs/rpc_trace.h): trace finalization
// monotonicity, ring wrap-around, the access-log exactly-once and
// schema contracts, the slow-request exemplar buffer, drift-monitor
// residual math, and the observability flush hook that makes aborted
// servers leave a complete log.
#include "serve/telemetry.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/tgcrn.h"
#include "datagen/metro_sim.h"
#include "obs/json.h"
#include "obs/rpc_trace.h"
#include "obs/trace.h"
#include "serve/session.h"

namespace tgcrn {
namespace {

constexpr int64_t kHorizon = 2;

class ServeTelemetryFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 5;
    config.num_days = 7;
    config.seed = 23;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    raw_ = new data::SpatioTemporalData(std::move(sim.data));
    scaler_ = new data::StandardScaler();
    scaler_->Fit(raw_->values, raw_->num_steps() * 7 / 10);

    core::TGCRNConfig model_config;
    model_config.num_nodes = raw_->num_nodes();
    model_config.input_dim = raw_->num_features();
    model_config.output_dim = raw_->num_features();
    model_config.horizon = kHorizon;
    model_config.hidden_dim = 8;
    model_config.steps_per_day = raw_->steps_per_day;
    rng_ = new Rng(31);
    model_ = new core::TGCRN(model_config, rng_);
    session_ = new serve::InferenceSession(model_, *scaler_,
                                           serve::SessionConfig());
  }
  static void TearDownTestSuite() {
    delete session_;
    delete model_;
    delete rng_;
    delete scaler_;
    delete raw_;
    session_ = nullptr;
    model_ = nullptr;
    rng_ = nullptr;
    scaler_ = nullptr;
    raw_ = nullptr;
  }

  static std::string TempPath(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }

  static std::vector<obs::Json> ReadLogLines(const std::string& path) {
    std::vector<obs::Json> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      obs::Json entry;
      std::string error;
      EXPECT_TRUE(obs::Json::Parse(line, &entry, &error))
          << "unparseable log line: " << line << " (" << error << ")";
      lines.push_back(std::move(entry));
    }
    return lines;
  }

  // A plausible fully-stamped trace taking `total_us` end to end.
  static obs::RequestTrace MakeTrace(int64_t id, int64_t total_us) {
    obs::RequestTrace trace;
    trace.Reset();
    trace.id = id;
    trace.op = serve::kOpObserve;
    trace.entity_count = 1;
    trace.batch_width = 1;
    trace.start_ns = 1000;
    const int64_t step = total_us * 1000 / serve::kServeStageCount;
    for (int s = 0; s < serve::kServeStageCount; ++s) {
      trace.Stamp(s, trace.start_ns + (s + 1) * step);
    }
    return trace;
  }

  static data::SpatioTemporalData* raw_;
  static data::StandardScaler* scaler_;
  static Rng* rng_;
  static core::TGCRN* model_;
  static serve::InferenceSession* session_;
};

data::SpatioTemporalData* ServeTelemetryFixture::raw_ = nullptr;
data::StandardScaler* ServeTelemetryFixture::scaler_ = nullptr;
Rng* ServeTelemetryFixture::rng_ = nullptr;
core::TGCRN* ServeTelemetryFixture::model_ = nullptr;
serve::InferenceSession* ServeTelemetryFixture::session_ = nullptr;

// ----------------------------------------------------- RequestTrace/ring --

TEST(RequestTraceTest, FinalizeMakesOffsetsMonotoneNonDecreasing) {
  obs::RequestTrace trace;
  trace.Reset();
  trace.start_ns = 100;
  // Stamp only some stages, deliberately out of a full lifecycle:
  // read at +10us, kernel at +50us, flush at +60us.
  trace.Stamp(serve::kStageRead, 100 + 10000);
  trace.Stamp(serve::kStageKernel, 100 + 50000);
  trace.Stamp(serve::kStageFlush, 100 + 60000);
  trace.Finalize();
  int64_t prev = 0;
  for (int s = 0; s < serve::kServeStageCount; ++s) {
    EXPECT_GE(trace.stage_ns[s], prev) << "stage " << s;
    prev = trace.stage_ns[s];
  }
  // Unset stages inherit the previous offset (zero duration)...
  EXPECT_EQ(trace.stage_ns[serve::kStageParse], 10000);
  EXPECT_EQ(trace.stage_ns[serve::kStageBatchWait], 10000);
  EXPECT_EQ(trace.stage_ns[serve::kStageGather], 10000);
  EXPECT_EQ(trace.stage_ns[serve::kStageScatter], 50000);
  EXPECT_EQ(trace.stage_ns[serve::kStageSerialize], 50000);
  // ...and the total is the final stage's offset.
  EXPECT_EQ(trace.total_ns(), 60000);
}

TEST(RpcTraceRingTest, WrapsOverwritingOldestAndKeepsCounting) {
  obs::RpcTraceRing ring(3);
  for (int64_t id = 1; id <= 5; ++id) {
    obs::RequestTrace trace;
    trace.id = id;
    ring.Push(trace);
  }
  EXPECT_EQ(ring.capacity(), 3);
  EXPECT_EQ(ring.size(), 3);
  EXPECT_EQ(ring.total(), 5);
  // Oldest-first iteration over the retained window: ids 3, 4, 5.
  EXPECT_EQ(ring.At(0).id, 3);
  EXPECT_EQ(ring.At(1).id, 4);
  EXPECT_EQ(ring.At(2).id, 5);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0);
  EXPECT_EQ(ring.total(), 0);
}

// ------------------------------------------------------- ServeTelemetry --

TEST_F(ServeTelemetryFixture, AccessLogWritesEachRequestExactlyOnce) {
  const std::string path = TempPath("tgcrn_telemetry_test.access.jsonl");
  std::filesystem::remove(path);
  {
    serve::TelemetryConfig config;
    config.access_log_path = path;
    serve::ServeTelemetry telemetry(config, session_);
    ASSERT_TRUE(telemetry.armed());
    EXPECT_TRUE(obs::RpcTracingArmed());
    for (int64_t i = 0; i < 10; ++i) {
      obs::RequestTrace trace =
          MakeTrace(telemetry.NextRequestId(), /*total_us=*/100 + i);
      telemetry.RecordRequest(&trace);
    }
    EXPECT_EQ(telemetry.requests_recorded(), 10);
  }  // destructor flushes and closes
  EXPECT_FALSE(obs::RpcTracingArmed());

  const std::vector<obs::Json> lines = ReadLogLines(path);
  std::unordered_set<long long> ids;
  int64_t request_lines = 0;
  for (const obs::Json& entry : lines) {
    if (entry.GetString("type") != "request") continue;
    ++request_lines;
    EXPECT_TRUE(ids.insert(entry.GetInt("id")).second)
        << "duplicate id " << entry.GetInt("id");
    EXPECT_EQ(entry.GetString("op"), "observe");
    EXPECT_EQ(entry.GetString("status"), "ok");
    EXPECT_TRUE(entry.Has("total_us"));
    // Cumulative stage offsets are monotone non-decreasing in lifecycle
    // order — the wire-format pin of the Finalize contract.
    const obs::Json& stage_us = entry["stage_us"];
    ASSERT_TRUE(stage_us.is_object());
    int64_t prev = 0;
    for (int s = 0; s < serve::kServeStageCount; ++s) {
      const char* name = serve::ServeStageName(s);
      ASSERT_TRUE(stage_us.Has(name)) << name;
      EXPECT_GE(stage_us.GetInt(name), prev) << name;
      prev = stage_us.GetInt(name);
    }
  }
  EXPECT_EQ(request_lines, 10);
  std::filesystem::remove(path);
}

TEST_F(ServeTelemetryFixture, SlowBufferKeepsExemplarsAndDumpsOnFlush) {
  const std::string path = TempPath("tgcrn_telemetry_test.slow.jsonl");
  std::filesystem::remove(path);
  {
    serve::TelemetryConfig config;
    config.access_log_path = path;
    config.slow_us = 500;
    config.slow_capacity = 2;
    serve::ServeTelemetry telemetry(config, session_);
    // Two fast, three slow: the bounded buffer keeps the newest two.
    for (int64_t total_us : {100, 200, 600, 700, 800}) {
      obs::RequestTrace trace =
          MakeTrace(telemetry.NextRequestId(), total_us);
      telemetry.RecordRequest(&trace);
    }
    EXPECT_EQ(telemetry.slow_count(), 3);
    const obs::Json slow = telemetry.SlowRequestsJson();
    ASSERT_EQ(slow.size(), 2u);  // capacity-bounded, oldest evicted
    EXPECT_GE(slow.at(0).GetInt("total_us"), 500);
    EXPECT_GE(slow.at(1).GetInt("total_us"), slow.at(0).GetInt("total_us"));
    // Stage histograms are global/cumulative; this run added 5 samples.
    const obs::Json stages = telemetry.StageStatsJson();
    EXPECT_GE(stages["kernel"].GetInt("count"), 5);
  }
  // The flush dumped the retained exemplars as {"type":"slow"} lines.
  int64_t slow_lines = 0;
  for (const obs::Json& entry : ReadLogLines(path)) {
    if (entry.GetString("type") == "slow") ++slow_lines;
  }
  EXPECT_EQ(slow_lines, 2);
  std::filesystem::remove(path);
}

TEST_F(ServeTelemetryFixture, ObservabilityFlushHookCompletesTheLog) {
  const std::string path = TempPath("tgcrn_telemetry_test.abort.jsonl");
  std::filesystem::remove(path);
  serve::TelemetryConfig config;
  config.access_log_path = path;
  serve::ServeTelemetry telemetry(config, session_);
  obs::RequestTrace trace = MakeTrace(telemetry.NextRequestId(), 100);
  telemetry.RecordRequest(&trace);
  // The path a CHECK failure or SIGTERM takes: the registered hook must
  // flush and close the access log without touching the telemetry object
  // directly.
  obs::FlushObservability();
  const std::vector<obs::Json> lines = ReadLogLines(path);
  int64_t request_lines = 0;
  for (const obs::Json& entry : lines) {
    if (entry.GetString("type") == "request") ++request_lines;
  }
  EXPECT_EQ(request_lines, 1);
  std::filesystem::remove(path);
}

TEST_F(ServeTelemetryFixture, DisarmedConfigRecordsNothing) {
  serve::TelemetryConfig config;  // no access log, no slow threshold
  serve::ServeTelemetry telemetry(config, session_);
  EXPECT_FALSE(telemetry.armed());
  EXPECT_FALSE(obs::RpcTracingArmed());
}

// --------------------------------------------------------- DriftMonitor --

TEST_F(ServeTelemetryFixture, DriftMonitorMatchesHorizonsWithExactResiduals) {
  serve::TelemetryConfig config;
  config.drift_every = 1;
  serve::DriftMonitor drift(session_, config);

  const core::TGCRNConfig& mc = session_->model_config();
  const int64_t nd = mc.num_nodes * mc.output_dim;
  // Forecast grid: horizon 1 predicts 10.0 everywhere, horizon 2
  // predicts 20.0 everywhere.
  std::vector<float> grid(static_cast<size_t>(kHorizon * nd));
  for (int64_t j = 0; j < nd; ++j) grid[j] = 10.0f;
  for (int64_t j = 0; j < nd; ++j) grid[nd + j] = 20.0f;
  drift.RecordForecast("hz", /*steps=*/5, grid.data());

  // Observation at steps 6 = horizon 1, off by +2 everywhere;
  // at steps 7 = horizon 2, off by -3 everywhere.
  std::vector<float> ob1(static_cast<size_t>(nd), 12.0f);
  std::vector<float> ob2(static_cast<size_t>(nd), 17.0f);
  drift.RecordObservation("hz", 6, 0, ob1.data());
  drift.RecordObservation("hz", 7, 1, ob2.data());
  EXPECT_TRUE(drift.HasData());
  EXPECT_TRUE(drift.BlockDue());

  obs::Json block = drift.Block();
  EXPECT_EQ(block.GetString("type"), "drift");
  EXPECT_EQ(block.GetInt("observations"), 2);
  EXPECT_EQ(block.GetInt("matched"), 2);
  EXPECT_DOUBLE_EQ(block.GetDouble("coverage"), 1.0);
  const obs::Json& horizons = block["horizons"];
  ASSERT_EQ(horizons.size(), static_cast<size_t>(kHorizon));
  EXPECT_EQ(horizons.at(0).GetInt("h"), 1);
  EXPECT_EQ(horizons.at(0).GetInt("count"), 1);
  EXPECT_DOUBLE_EQ(horizons.at(0).GetDouble("mae"), 2.0);
  EXPECT_DOUBLE_EQ(horizons.at(0).GetDouble("rmse"), 2.0);
  EXPECT_EQ(horizons.at(1).GetInt("count"), 1);
  EXPECT_DOUBLE_EQ(horizons.at(1).GetDouble("mae"), 3.0);
  EXPECT_DOUBLE_EQ(horizons.at(1).GetDouble("rmse"), 3.0);

  // The window resets after emission; totals keep accumulating.
  obs::Json next = drift.Block();
  EXPECT_EQ(next.GetInt("observations"), 0);
  EXPECT_EQ(next.GetInt("total_matched"), 2);
  EXPECT_EQ(next.GetInt("block"), 1);
}

TEST_F(ServeTelemetryFixture, DriftMonitorStopsMatchingPastTheLastHorizon) {
  serve::TelemetryConfig config;
  serve::DriftMonitor drift(session_, config);
  const core::TGCRNConfig& mc = session_->model_config();
  const int64_t nd = mc.num_nodes * mc.output_dim;
  std::vector<float> grid(static_cast<size_t>(kHorizon * nd), 1.0f);
  std::vector<float> ob(static_cast<size_t>(nd), 1.0f);
  drift.RecordForecast("hz", 5, grid.data());
  drift.RecordObservation("hz", 6, 0, ob.data());  // horizon 1
  drift.RecordObservation("hz", 7, 1, ob.data());  // horizon 2 (last)
  drift.RecordObservation("hz", 8, 2, ob.data());  // beyond: no match
  obs::Json block = drift.Block();
  EXPECT_EQ(block.GetInt("observations"), 3);
  EXPECT_EQ(block.GetInt("matched"), 2);
}

TEST_F(ServeTelemetryFixture, DriftBlockCarriesLiveGraphHealth) {
  serve::TelemetryConfig config;
  serve::DriftMonitor drift(session_, config);
  const int64_t n = raw_->num_nodes();
  const int64_t d = raw_->num_features();
  // Two consecutive raw observations of one entity arm the graph probe.
  for (int64_t t = 0; t < 2; ++t) {
    drift.RecordObservation("probe", t + 1, raw_->slot_of_day[t],
                            raw_->values.data() + t * n * d);
  }
  obs::Json block = drift.Block();
  const obs::Json& graph = block["graph"];
  ASSERT_TRUE(graph.is_object()) << "probe armed, graph block expected";
  EXPECT_TRUE(graph.Has("row_entropy"));
  EXPECT_TRUE(graph.Has("sparsity"));

  // A single observation (probe depth 1) yields a null graph block.
  serve::DriftMonitor cold(session_, config);
  cold.RecordObservation("probe", 1, 0, raw_->values.data());
  EXPECT_TRUE(cold.Block()["graph"].is_null());
}

}  // namespace
}  // namespace tgcrn
