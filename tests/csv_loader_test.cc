// Copyright 2026 TGCRN Reproduction Authors
// CSV ingestion tests: round trips, header handling, and every failure
// path (the Status-based error surface of the public API).
#include "data/csv_loader.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/electricity_sim.h"

namespace tgcrn {
namespace {

std::filesystem::path TempCsv(const std::string& name,
                              const std::string& contents) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::ofstream out(path);
  out << contents;
  return path;
}

data::CsvLoadOptions SmallOptions() {
  data::CsvLoadOptions options;
  options.num_nodes = 2;
  options.num_features = 1;
  options.steps_per_day = 4;
  return options;
}

TEST(CsvLoaderTest, ParsesPlainFile) {
  const auto path = TempCsv("tgcrn_csv1.csv",
                            "0,0,0,1.5,2.5\n"
                            "1,1,0,3.5,4.5\n"
                            "2,2,0,5.5,6.5\n");
  auto result = data::LoadCsv(path.string(), SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& data = result.ValueOrDie();
  EXPECT_EQ(data.num_steps(), 3);
  EXPECT_EQ(data.num_nodes(), 2);
  EXPECT_EQ(data.values.at({1, 0, 0}), 3.5f);
  EXPECT_EQ(data.values.at({2, 1, 0}), 6.5f);
  EXPECT_EQ(data.slot_of_day[2], 2);
  std::filesystem::remove(path);
}

TEST(CsvLoaderTest, SkipsHeaderLine) {
  const auto path = TempCsv("tgcrn_csv2.csv",
                            "t,slot_of_day,day_of_week,node0_f0,node1_f0\n"
                            "0,0,1,1,2\n"
                            "1,1,1,3,4\n");
  auto result = data::LoadCsv(path.string(), SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().num_steps(), 2);
  EXPECT_EQ(result.ValueOrDie().day_of_week[0], 1);
  std::filesystem::remove(path);
}

TEST(CsvLoaderTest, RejectsMissingFile) {
  auto result =
      data::LoadCsv("/nonexistent/definitely/not/here.csv", SmallOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(CsvLoaderTest, RejectsBadOptions) {
  auto result = data::LoadCsv("whatever.csv", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvLoaderTest, RejectsWrongColumnCount) {
  const auto path = TempCsv("tgcrn_csv3.csv", "0,0,0,1.5\n");
  auto result = data::LoadCsv(path.string(), SmallOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":1:"), std::string::npos)
      << "error should name the line";
  std::filesystem::remove(path);
}

TEST(CsvLoaderTest, RejectsOutOfRangeCalendar) {
  const auto slot_path = TempCsv("tgcrn_csv4.csv", "0,9,0,1,2\n");
  auto slot_result = data::LoadCsv(slot_path.string(), SmallOptions());
  ASSERT_FALSE(slot_result.ok());
  EXPECT_EQ(slot_result.status().code(), StatusCode::kOutOfRange);
  std::filesystem::remove(slot_path);

  const auto day_path = TempCsv("tgcrn_csv5.csv", "0,0,7,1,2\n");
  auto day_result = data::LoadCsv(day_path.string(), SmallOptions());
  ASSERT_FALSE(day_result.ok());
  EXPECT_EQ(day_result.status().code(), StatusCode::kOutOfRange);
  std::filesystem::remove(day_path);
}

TEST(CsvLoaderTest, RejectsNonNumericValue) {
  const auto path = TempCsv("tgcrn_csv6.csv", "0,0,0,1.5,oops\n");
  auto result = data::LoadCsv(path.string(), SmallOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("oops"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvLoaderTest, RejectsEmptyFile) {
  const auto path = TempCsv("tgcrn_csv7.csv", "header,only,line,a,b\n");
  auto result = data::LoadCsv(path.string(), SmallOptions());
  ASSERT_FALSE(result.ok());
  std::filesystem::remove(path);
}

TEST(CsvLoaderTest, SimulatorRoundTrip) {
  // Export a simulated dataset and read it back unchanged.
  datagen::ElectricitySimConfig config;
  config.num_clients = 3;
  config.num_days = 8;
  config.seed = 5;
  const auto sim = datagen::SimulateElectricity(config);
  const auto path =
      std::filesystem::temp_directory_path() / "tgcrn_roundtrip.csv";
  ASSERT_TRUE(data::SaveCsv(sim.data, path.string()).ok());

  data::CsvLoadOptions options;
  options.num_nodes = 3;
  options.num_features = 1;
  options.steps_per_day = 24;
  auto result = data::LoadCsv(path.string(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& loaded = result.ValueOrDie();
  EXPECT_EQ(loaded.num_steps(), sim.data.num_steps());
  EXPECT_TRUE(loaded.values.AllClose(sim.data.values, 1e-3f));
  EXPECT_EQ(loaded.slot_of_day, sim.data.slot_of_day);
  EXPECT_EQ(loaded.day_of_week, sim.data.day_of_week);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tgcrn
