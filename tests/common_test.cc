// Copyright 2026 TGCRN Reproduction Authors
// Tests for the common substrate: Status/Result error propagation,
// check-macro aborts, deterministic RNG statistics, leveled logging,
// table/CSV output.
#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace tgcrn {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad shape");
  EXPECT_EQ(err.message(), "bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIOError, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> ParsePositive(int value) {
  if (value <= 0) return Status::InvalidArgument("not positive");
  return value * 2;
}

Status UseParsed(int value, int* out) {
  TGCRN_ASSIGN_OR_RETURN(int doubled, ParsePositive(value));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.ValueOrDie(), 42);

  Result<int> bad = ParsePositive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseParsed(-5, &out).ok());
  EXPECT_EQ(out, 10);  // untouched on failure
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ TGCRN_CHECK(1 == 2) << "impossible"; }, "impossible");
  EXPECT_DEATH({ TGCRN_CHECK_EQ(3, 4); }, "lhs=3 rhs=4");
  EXPECT_DEATH({ TGCRN_CHECK_LT(5, 5); }, "CHECK FAILED");
}

TEST(LoggingTest, SetMinLogLevelOverridesEnvLatch) {
  const LogLevel original = GetMinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(LoggingTest, ShouldLogEveryNGatesPerCallSite) {
  int hits = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal::ShouldLogEveryN("logging_test_site.cc", 1, 4)) ++hits;
  }
  EXPECT_EQ(hits, 3);  // calls 1, 5, 9
  // A different call site keeps an independent counter.
  EXPECT_TRUE(internal::ShouldLogEveryN("logging_test_site.cc", 2, 4));
  // n <= 1 means every call emits.
  EXPECT_TRUE(internal::ShouldLogEveryN("logging_test_site.cc", 3, 1));
  EXPECT_TRUE(internal::ShouldLogEveryN("logging_test_site.cc", 3, 1));
}

TEST(LoggingTest, LogEveryNMacroIsDanglingElseSafe) {
  const LogLevel original = GetMinLogLevel();
  SetMinLogLevel(LogLevel::kError);  // keep test output quiet
  int streamed = 0;
  for (int i = 0; i < 6; ++i)
    if (i >= 0)
      TGCRN_LOG_EVERY_N(Info, 3) << "tick " << ++streamed;
    else
      FAIL() << "dangling else bound to the wrong if";
  // The stream expression runs only on emitting iterations (0 and 3).
  EXPECT_EQ(streamed, 2);
  SetMinLogLevel(original);
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  EXPECT_NE(a.NextUint64(), c.NextUint64());
  a.Seed(123);
  b.Seed(123);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, UniformBoundsAndMean) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const float v = rng.Uniform(2.0f, 6.0f);
    ASSERT_GE(v, 2.0f);
    ASSERT_LT(v, 6.0f);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 4.0, 0.05);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, PoissonMoments) {
  Rng rng(9);
  for (double rate : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      const double v = static_cast<double>(rng.Poisson(rate));
      sum += v;
      sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, rate, 0.05 * rate + 0.1) << "rate " << rate;
    EXPECT_NEAR(var, rate, 0.15 * rate + 0.3) << "rate " << rate;
  }
}

TEST(RngTest, PoissonZeroRate) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(TablePrinterTest, AlignmentAndContent) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| name  | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Num(std::nan(""), 2), "-");
}

TEST(TablePrinterTest, CsvRoundTripWithEscaping) {
  const auto path =
      std::filesystem::temp_directory_path() / "tgcrn_table_test.csv";
  TablePrinter table({"a", "b"});
  table.AddRow({"plain", "with,comma"});
  table.AddRow({"quote\"inside", "line"});
  ASSERT_TRUE(table.WriteCsv(path.string()).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"quote\"\"inside\",line");
  std::filesystem::remove(path);
}

TEST(TablePrinterTest, CsvCreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "tgcrn_csv_nested" / "deeper";
  const auto path = dir / "out.csv";
  std::filesystem::remove_all(dir.parent_path());
  TablePrinter table({"x"});
  table.AddRow({"1"});
  EXPECT_TRUE(table.WriteCsv(path.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir.parent_path());
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only one"}), "CHECK FAILED");
}

}  // namespace
}  // namespace tgcrn
