// Copyright 2026 TGCRN Reproduction Authors
// Numerical gradient checking for autograd tests: compares the analytic
// gradient of a scalar-valued function against central finite differences.
#ifndef TGCRN_TESTS_GRADCHECK_H_
#define TGCRN_TESTS_GRADCHECK_H_

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"

namespace tgcrn {
namespace testing {

// Checks d(fn)/d(inputs[i]) for every input against central differences.
// `fn` must return a scalar (rank-0 or single-element) Variable and must be
// deterministic. Tolerances are loose-ish because the library is float32
// while differences are taken in float32 arithmetic.
inline void ExpectGradientsClose(
    const std::function<ag::Variable(const std::vector<ag::Variable>&)>& fn,
    std::vector<ag::Variable> inputs, float eps = 1e-2f, float rtol = 2e-2f,
    float atol = 2e-2f) {
  // Analytic gradients.
  ag::Variable loss = fn(inputs);
  ASSERT_EQ(loss.numel(), 1);
  loss.Backward();

  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].requires_grad()) continue;
    ASSERT_TRUE(inputs[i].has_grad()) << "input " << i << " got no gradient";
    const Tensor analytic = inputs[i].grad().Clone();
    Tensor& value = const_cast<Tensor&>(inputs[i].value());
    for (int64_t j = 0; j < value.numel(); ++j) {
      const float original = value.flat(j);
      value.set_flat(j, original + eps);
      const float plus = fn(inputs).value().item();
      value.set_flat(j, original - eps);
      const float minus = fn(inputs).value().item();
      value.set_flat(j, original);
      const float numeric = (plus - minus) / (2.0f * eps);
      const float got = analytic.flat(j);
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "input " << i << " element " << j;
    }
  }
}

}  // namespace testing
}  // namespace tgcrn

#endif  // TGCRN_TESTS_GRADCHECK_H_
