// Copyright 2026 TGCRN Reproduction Authors
// Tests for the visualization substrate: t-SNE embedding quality on known
// structures and the order-consistency statistics used by Fig 12.
#include "viz/tsne.h"

#include "viz/heatmap.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tgcrn {
namespace {

TEST(SpearmanTest, PerfectAndInverseOrder) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {10, 20, 30, 40, 50};
  EXPECT_NEAR(viz::SpearmanRank(a, b), 1.0, 1e-9);
  std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(viz::SpearmanRank(a, c), -1.0, 1e-9);
}

TEST(SpearmanTest, MonotoneNonlinearIsStillOne) {
  std::vector<double> a, b;
  for (int i = 1; i <= 20; ++i) {
    a.push_back(i);
    b.push_back(std::exp(0.3 * i));  // monotone, wildly nonlinear
  }
  EXPECT_NEAR(viz::SpearmanRank(a, b), 1.0, 1e-9);
}

TEST(OrderConsistencyTest, RulerEmbeddingScoresOne) {
  // Points on a straight line in order.
  Tensor ruler(Shape{20, 3});
  for (int64_t i = 0; i < 20; ++i) {
    ruler.set({i, 0}, static_cast<float>(i) * 0.7f);
    ruler.set({i, 1}, static_cast<float>(i) * -0.2f);
    ruler.set({i, 2}, 1.0f);
  }
  EXPECT_NEAR(viz::OrderConsistency(ruler), 1.0, 1e-6);
  EXPECT_NEAR(viz::DistanceProportionality(ruler), 1.0, 1e-5);
}

TEST(OrderConsistencyTest, ShuffledEmbeddingScoresLow) {
  Rng rng(4);
  Tensor random = Tensor::RandUniform({40, 4}, -1, 1, &rng);
  EXPECT_LT(viz::OrderConsistency(random), 0.6);
  EXPECT_LT(std::fabs(viz::DistanceProportionality(random)), 0.4);
}

TEST(TsneTest, SeparatesTwoClusters) {
  // Two well-separated Gaussian blobs in 10-D must stay separated in 2-D.
  Rng rng(5);
  const int64_t per_cluster = 15;
  Tensor points(Shape{2 * per_cluster, 10});
  for (int64_t i = 0; i < 2 * per_cluster; ++i) {
    const float center = i < per_cluster ? 0.0f : 8.0f;
    for (int64_t d = 0; d < 10; ++d) {
      points.set({i, d},
                 center + static_cast<float>(rng.Gaussian(0.0, 0.3)));
    }
  }
  viz::TsneOptions options;
  options.iterations = 250;
  options.seed = 6;
  const Tensor embedding = viz::Tsne(points, options);
  ASSERT_EQ(embedding.shape(), (Shape{2 * per_cluster, 2}));
  // Mean intra-cluster distance << mean inter-cluster distance.
  auto dist = [&](int64_t a, int64_t b) {
    const float dx = embedding.at({a, 0}) - embedding.at({b, 0});
    const float dy = embedding.at({a, 1}) - embedding.at({b, 1});
    return std::sqrt(dx * dx + dy * dy);
  };
  double intra = 0, inter = 0;
  int64_t n_intra = 0, n_inter = 0;
  for (int64_t i = 0; i < 2 * per_cluster; ++i) {
    for (int64_t j = i + 1; j < 2 * per_cluster; ++j) {
      if ((i < per_cluster) == (j < per_cluster)) {
        intra += dist(i, j);
        ++n_intra;
      } else {
        inter += dist(i, j);
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / n_intra, 0.5 * (inter / n_inter));
}

TEST(TsneTest, PreservesLineOrdering) {
  // A 1-D manifold (line in 8-D) should embed with high order consistency.
  Rng rng(7);
  Tensor line(Shape{30, 8});
  for (int64_t i = 0; i < 30; ++i) {
    for (int64_t d = 0; d < 8; ++d) {
      line.set({i, d}, 0.5f * static_cast<float>(i) * (d % 3 == 0 ? 1.f :
                       0.3f) + static_cast<float>(rng.Gaussian(0, 0.05)));
    }
  }
  viz::TsneOptions options;
  options.iterations = 300;
  const Tensor embedding = viz::Tsne(line, options);
  EXPECT_GT(viz::OrderConsistency(embedding), 0.9);
}

TEST(TsneTest, DeterministicPerSeed) {
  Rng rng(8);
  Tensor points = Tensor::RandUniform({12, 5}, -1, 1, &rng);
  viz::TsneOptions options;
  options.iterations = 50;
  const Tensor a = viz::Tsne(points, options);
  const Tensor b = viz::Tsne(points, options);
  EXPECT_TRUE(a.AllClose(b, 0.0f));
}


// --- Heatmap rendering ---------------------------------------------------

TEST(HeatmapTest, GlyphIntensityOrdering) {
  Tensor m = Tensor::FromVector({2, 2}, {0, 10, 1, 0});
  viz::HeatmapOptions options;
  options.mask_diagonal = true;
  const std::string rendered = viz::RenderHeatmap(m, options);
  // Strongest cell uses the densest glyph; diagonal masked as '/'.
  EXPECT_NE(rendered.find('@'), std::string::npos);
  EXPECT_NE(rendered.find('/'), std::string::npos);
}

TEST(HeatmapTest, RowLayoutDimensions) {
  Tensor a = Tensor::FromVector({3, 3}, {0, 1, 2, 3, 0, 4, 5, 6, 0});
  Tensor b = a.MulScalar(2.0f);
  const std::string rendered =
      viz::RenderHeatmapRow({a, b}, {"left", "right"});
  // Title line + 3 matrix rows.
  int64_t lines = 0;
  for (char ch : rendered) {
    if (ch == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(rendered.find("left"), std::string::npos);
  EXPECT_NE(rendered.find("right"), std::string::npos);
}

TEST(HeatmapTest, SharedScaleMakesWeakMatrixFainter) {
  Tensor strong = Tensor::Full({2, 2}, 10.0f);
  Tensor weak = Tensor::Full({2, 2}, 0.5f);
  viz::HeatmapOptions options;
  options.mask_diagonal = false;
  options.per_matrix_scale = false;
  const std::string shared =
      viz::RenderHeatmapRow({strong, weak}, {"s", "w"}, options);
  // Under a shared scale the weak matrix must not use the densest glyph.
  const size_t second_panel = shared.find("|", shared.find("|  ") + 1);
  EXPECT_NE(second_panel, std::string::npos);
  // Per-matrix scale makes both maximally dense.
  options.per_matrix_scale = true;
  const std::string per =
      viz::RenderHeatmapRow({strong, weak}, {"s", "w"}, options);
  size_t dense_shared = 0, dense_per = 0;
  for (char ch : shared) dense_shared += ch == '@';
  for (char ch : per) dense_per += ch == '@';
  EXPECT_GT(dense_per, dense_shared);
}

TEST(CircularMetricsTest, CircularDistanceProportionality) {
  // Points on a circle, in index order: circular proportionality is high,
  // linear proportionality is lower (the wrap-around pairs disagree).
  const int64_t n = 24;
  Tensor ring(Shape{n, 2});
  for (int64_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    ring.set({i, 0}, static_cast<float>(std::cos(angle)));
    ring.set({i, 1}, static_cast<float>(std::sin(angle)));
  }
  const double circ = viz::DistanceProportionality(ring, n);
  const double lin = viz::DistanceProportionality(ring, 0);
  EXPECT_GT(circ, 0.95);
  EXPECT_GT(circ, lin);
}

TEST(CircularMetricsTest, NeighborOrderPreservation) {
  const int64_t n = 20;
  Tensor ring(Shape{n, 2});
  for (int64_t i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n;
    ring.set({i, 0}, static_cast<float>(std::cos(angle)));
    ring.set({i, 1}, static_cast<float>(std::sin(angle)));
  }
  EXPECT_NEAR(viz::NeighborOrderPreservation(ring, n), 1.0, 1e-9);
  // A shuffled embedding preserves almost nothing.
  Rng rng(33);
  Tensor random = Tensor::RandUniform({40, 2}, -1, 1, &rng);
  EXPECT_LT(viz::NeighborOrderPreservation(random, 40), 0.35);
}

}  // namespace
}  // namespace tgcrn
