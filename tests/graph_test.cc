// Copyright 2026 TGCRN Reproduction Authors
// Graph utility tests: normalization invariants (property-swept over random
// matrices), diffusion supports, graph constructions.
#include "graph/graph_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tgcrn {
namespace {

TEST(GraphOpsTest, RandomWalkNormalizeRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 3, 0, 0});
  Tensor p = graph::RandomWalkNormalize(a);
  EXPECT_NEAR(p.at({0, 0}), 0.25f, 1e-6f);
  EXPECT_NEAR(p.at({0, 1}), 0.75f, 1e-6f);
  // All-zero row stays zero.
  EXPECT_EQ(p.at({1, 0}), 0.0f);
  EXPECT_TRUE(graph::IsRowStochastic(p));
}

// Property sweep: random nonnegative matrices normalize to row-stochastic.
class RandomGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphTest, NormalizationsAreWellFormed) {
  Rng rng(GetParam());
  const int64_t n = 4 + GetParam() % 5;
  Tensor a = Tensor::RandUniform({n, n}, 0.0f, 2.0f, &rng);
  EXPECT_TRUE(graph::IsRowStochastic(graph::RandomWalkNormalize(a)));
  // Symmetric normalization of a symmetric matrix stays symmetric.
  Tensor sym = a.Add(a.Transpose(0, 1));
  Tensor norm = graph::SymmetricNormalize(sym);
  EXPECT_TRUE(norm.AllClose(norm.Transpose(0, 1), 1e-5f));
  // Eigen-bound sanity: entries finite, nonnegative.
  EXPECT_FALSE(norm.HasNonFinite());
  EXPECT_GE(norm.MinAll(), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GraphOpsTest, DiffusionSupportsStructure) {
  Rng rng(9);
  Tensor a = Tensor::RandUniform({5, 5}, 0.0f, 1.0f, &rng);
  const auto supports =
      graph::DiffusionSupports(a, /*max_step=*/2, /*bidirectional=*/true);
  // I + 2 forward powers + 2 backward powers.
  ASSERT_EQ(supports.size(), 5u);
  EXPECT_TRUE(supports[0].AllClose(Tensor::Eye(5)));
  // P^2 == P @ P.
  EXPECT_TRUE(supports[2].AllClose(supports[1].Matmul(supports[1]), 1e-5f));
  // Every support is row-stochastic (powers of a stochastic matrix).
  for (size_t i = 1; i < supports.size(); ++i) {
    EXPECT_TRUE(graph::IsRowStochastic(supports[i])) << "support " << i;
  }
}

TEST(GraphOpsTest, GaussianKernelGraphThresholdAndRange) {
  Tensor d = Tensor::FromVector({2, 2}, {0, 3, 3, 0});
  // sigma^2 = var(d) = 2.25, so w(3) = exp(-9/2.25) = exp(-4) ~ 0.018.
  Tensor g = graph::GaussianKernelGraph(d, /*threshold=*/0.01f);
  EXPECT_NEAR(g.at({0, 0}), 1.0f, 1e-6f);  // zero distance
  EXPECT_GT(g.at({0, 1}), 0.0f);
  EXPECT_LT(g.at({0, 1}), 1.0f);
  // A very high threshold zeroes off-diagonal weights.
  Tensor strict = graph::GaussianKernelGraph(d, 0.999f);
  EXPECT_EQ(strict.at({0, 1}), 0.0f);
}

TEST(GraphOpsTest, CorrelationGraphFindsCorrelatedRows) {
  // Rows 0 and 1 identical (r=1), row 2 is the negation (r=-1),
  // row 3 independent noise.
  Rng rng(10);
  Tensor series(Shape{4, 40});
  for (int64_t t = 0; t < 40; ++t) {
    const float v = static_cast<float>(rng.Gaussian(0, 1));
    series.set({0, t}, v);
    series.set({1, t}, v);
    series.set({2, t}, -v);
    series.set({3, t}, static_cast<float>(rng.Gaussian(0, 1)));
  }
  Tensor g = graph::CorrelationGraph(series, /*threshold=*/0.8f);
  EXPECT_NEAR(g.at({0, 1}), 1.0f, 1e-4f);
  EXPECT_NEAR(g.at({0, 2}), -1.0f, 1e-4f);
  EXPECT_EQ(g.at({0, 3}), 0.0f);  // below threshold
  EXPECT_EQ(g.at({0, 0}), 0.0f);  // no self loops
  // Symmetry.
  EXPECT_TRUE(g.AllClose(g.Transpose(0, 1), 1e-6f));
}

TEST(GraphOpsTest, KnnSparsifyKeepsTopK) {
  Tensor a = Tensor::FromVector({3, 3}, {0, 5, 1,
                                         2, 0, 9,
                                         4, 3, 0});
  Tensor k1 = graph::KnnSparsify(a, 1);
  EXPECT_EQ(k1.at({0, 1}), 5.0f);
  EXPECT_EQ(k1.at({0, 2}), 0.0f);
  EXPECT_EQ(k1.at({1, 2}), 9.0f);
  EXPECT_EQ(k1.at({2, 0}), 4.0f);
  // k >= n keeps everything.
  EXPECT_TRUE(graph::KnnSparsify(a, 5).AllClose(a));
}

}  // namespace
}  // namespace tgcrn
