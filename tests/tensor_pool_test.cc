// Copyright 2026 TGCRN Reproduction Authors
// Unit tests for the size-bucketed tensor buffer pool: reuse after release,
// full re-initialization of recycled storage, shared-storage lifetime
// safety, the TGCRN_TENSOR_POOL opt-out, and the headline effect — the real
// heap-allocation count collapsing on the second iteration of a
// training-step-shaped workload.
#include "tensor/buffer_pool.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

// Big enough to land in a pool bucket (the pool bypasses < 256 elements).
constexpr int64_t kPooledNumel = 4096;

class TensorPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TensorBufferPool::Global().SetEnabled(true);
    TensorBufferPool::Global().Clear();
  }
  void TearDown() override {
    // Leave the global pool the way the environment configures it.
    TensorBufferPool::Global().ReloadEnabledFromEnv();
    TensorBufferPool::Global().Clear();
  }
};

TEST_F(TensorPoolTest, ReleaseThenAcquireReusesBuffer) {
  auto& pool = TensorBufferPool::Global();
  const auto before = pool.GetStats();
  {
    Tensor t = Tensor::Zeros({kPooledNumel});
    EXPECT_EQ(pool.GetStats().cached_buffers, before.cached_buffers);
  }
  // Destruction parked the buffer in the pool.
  const auto parked = pool.GetStats();
  EXPECT_EQ(parked.cached_buffers, before.cached_buffers + 1);

  Tensor again = Tensor::Zeros({kPooledNumel});
  const auto after = pool.GetStats();
  EXPECT_EQ(after.hits, parked.hits + 1);
  EXPECT_EQ(after.cached_buffers, before.cached_buffers);
  EXPECT_GE(after.bytes_reused,
            parked.bytes_reused +
                kPooledNumel * static_cast<int64_t>(sizeof(float)));
}

TEST_F(TensorPoolTest, RecycledBufferIsFullyReinitialized) {
  {
    Tensor dirty = Tensor::Full({kPooledNumel}, 123.456f);
    ASSERT_EQ(dirty.flat(kPooledNumel - 1), 123.456f);
  }
  // Same bucket: this acquire recycles the dirty buffer and must zero it.
  Tensor clean = Tensor::Zeros({kPooledNumel});
  for (int64_t i = 0; i < clean.numel(); i += 97) {
    ASSERT_EQ(clean.flat(i), 0.0f) << "stale data at " << i;
  }
  // A smaller request from the same bucket must also see exactly its own
  // numel, not the rounded-up capacity.
  {
    Tensor dirty = Tensor::Full({kPooledNumel}, -7.0f);
  }
  Tensor smaller = Tensor::Zeros({kPooledNumel / 2 + 3});
  EXPECT_EQ(smaller.numel(), kPooledNumel / 2 + 3);
  EXPECT_EQ(smaller.flat(smaller.numel() - 1), 0.0f);
}

TEST_F(TensorPoolTest, SharedStorageIsNotRecycledWhileAlive) {
  auto& pool = TensorBufferPool::Global();
  const auto before = pool.GetStats();
  Tensor a = Tensor::Full({kPooledNumel}, 3.0f);
  {
    Tensor b = a;  // shares storage
    EXPECT_EQ(b.data(), a.data());
  }
  // b's destruction must not recycle the buffer a still owns.
  EXPECT_EQ(pool.GetStats().cached_buffers, before.cached_buffers);
  EXPECT_EQ(a.flat(0), 3.0f);
  EXPECT_EQ(a.flat(kPooledNumel - 1), 3.0f);
}

TEST_F(TensorPoolTest, SmallAllocationsBypassThePool) {
  auto& pool = TensorBufferPool::Global();
  const auto before = pool.GetStats();
  {
    Tensor tiny = Tensor::Zeros({8});
    Tensor small = Tensor::Zeros({100});
  }
  const auto after = pool.GetStats();
  EXPECT_EQ(after.cached_buffers, before.cached_buffers);
  EXPECT_EQ(after.hits, before.hits);
}

TEST_F(TensorPoolTest, SetEnabledFalseDisablesRecycling) {
  auto& pool = TensorBufferPool::Global();
  pool.SetEnabled(false);
  EXPECT_FALSE(pool.enabled());
  const auto before = pool.GetStats();
  {
    Tensor t = Tensor::Zeros({kPooledNumel});
  }
  const auto after = pool.GetStats();
  EXPECT_EQ(after.cached_buffers, 0);
  EXPECT_EQ(after.hits, before.hits);

  // Re-enabling starts caching again.
  pool.SetEnabled(true);
  {
    Tensor t = Tensor::Zeros({kPooledNumel});
  }
  EXPECT_EQ(pool.GetStats().cached_buffers, 1);
}

TEST_F(TensorPoolTest, EnvOptOutIsRespected) {
  auto& pool = TensorBufferPool::Global();
  ASSERT_EQ(setenv("TGCRN_TENSOR_POOL", "0", /*overwrite=*/1), 0);
  pool.ReloadEnabledFromEnv();
  EXPECT_FALSE(pool.enabled());

  ASSERT_EQ(setenv("TGCRN_TENSOR_POOL", "1", /*overwrite=*/1), 0);
  pool.ReloadEnabledFromEnv();
  EXPECT_TRUE(pool.enabled());

  ASSERT_EQ(unsetenv("TGCRN_TENSOR_POOL"), 0);
  pool.ReloadEnabledFromEnv();
  EXPECT_TRUE(pool.enabled());  // default is on
}

// A training-step-shaped workload: the same op sequence repeated. The first
// iteration faults buffers in from the heap; the second runs mostly out of
// the pool, so the number of REAL heap allocations (tensor.allocations)
// must drop by at least half.
TEST_F(TensorPoolTest, AllocCountDropsOnSecondIteration) {
  obs::Counter* allocs =
      obs::Registry::Global().GetCounter("tensor.allocations");

  auto step = [] {
    Rng rng(77);
    Tensor x = Tensor::RandUniform({16, 64}, -1, 1, &rng);
    Tensor w = Tensor::RandUniform({64, 64}, -1, 1, &rng);
    Tensor h = x;
    for (int i = 0; i < 6; ++i) {
      h = h.Matmul(w).Tanh().Add(x).Sigmoid();
    }
    return h.SumAll();
  };

  const float first_value = step();  // faults pool buffers in
  const int64_t after_first = allocs->Value();
  const float second_value = step();
  const int64_t second_iter_allocs = allocs->Value() - after_first;

  // Re-run once more with the pool disabled to get the no-pool alloc count
  // of one iteration.
  TensorBufferPool::Global().SetEnabled(false);
  const int64_t before_unpooled = allocs->Value();
  const float third_value = step();
  const int64_t unpooled_allocs = allocs->Value() - before_unpooled;

  EXPECT_EQ(first_value, second_value);
  EXPECT_EQ(first_value, third_value);
  ASSERT_GT(unpooled_allocs, 0);
  EXPECT_LE(second_iter_allocs, unpooled_allocs / 2)
      << "pooled step still did " << second_iter_allocs << " of "
      << unpooled_allocs << " heap allocations";
}

TEST_F(TensorPoolTest, PoolCountersAreRegistered) {
  auto& reg = obs::Registry::Global();
  // GetCounter creates on first use; the pool has already touched these.
  EXPECT_GE(reg.GetCounter("tensor.pool_hit")->Value(), 0);
  EXPECT_GE(reg.GetCounter("tensor.pool_miss")->Value(), 0);
  EXPECT_GE(reg.GetCounter("tensor.pool_bytes_reused")->Value(), 0);
}

}  // namespace
}  // namespace tgcrn
