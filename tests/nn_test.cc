// Copyright 2026 TGCRN Reproduction Authors
// Tests for the NN module layer: parameter registry, layers' shape
// contracts, and gradient flow through each layer.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "nn/attention.h"
#include "nn/causal_conv1d.h"
#include "nn/embedding.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/rnn_cells.h"

namespace tgcrn {
namespace {

using ag::Variable;
using testing::ExpectGradientsClose;

TEST(ModuleTest, ParameterRegistryAndCounts) {
  Rng rng(1);
  nn::Linear linear(3, 4, &rng);
  EXPECT_EQ(linear.NumParameters(), 3 * 4 + 4);
  EXPECT_EQ(linear.Parameters().size(), 2u);
  const auto named = linear.NamedParameters();
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
}

TEST(ModuleTest, NestedModulesCollectRecursively) {
  Rng rng(2);
  nn::GRUCell cell(3, 5, &rng);
  // gates: (3+5)x10 + 10 ; candidate: (3+5)x5 + 5
  EXPECT_EQ(cell.NumParameters(), 8 * 10 + 10 + 8 * 5 + 5);
  const auto named = cell.NamedParameters();
  bool found = false;
  for (const auto& [name, p] : named) {
    if (name == "gates.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModuleTest, TrainEvalModePropagates) {
  Rng rng(3);
  nn::GRUCell cell(2, 2, &rng);
  EXPECT_TRUE(cell.training());
  cell.SetTraining(false);
  EXPECT_FALSE(cell.training());
}

TEST(ModuleTest, SaveLoadRoundTrip) {
  Rng rng(4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tgcrn_nn_test.ckpt")
          .string();
  nn::Linear a(3, 2, &rng);
  nn::Linear b(3, 2, &rng);
  ASSERT_FALSE(
      a.Parameters()[0].value().AllClose(b.Parameters()[0].value(), 1e-7f));
  ASSERT_TRUE(a.SaveParameters(path).ok());
  ASSERT_TRUE(b.LoadParameters(path).ok());
  EXPECT_TRUE(
      a.Parameters()[0].value().AllClose(b.Parameters()[0].value(), 0.0f));
  std::filesystem::remove(path);
}

TEST(ModuleTest, LoadRejectsMismatchedModel) {
  Rng rng(5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tgcrn_nn_test2.ckpt")
          .string();
  nn::Linear a(3, 2, &rng);
  ASSERT_TRUE(a.SaveParameters(path).ok());
  nn::Linear wrong(4, 2, &rng);
  const Status st = wrong.LoadParameters(path);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(ModuleTest, CopyParametersFrom) {
  Rng rng(6);
  nn::Linear a(3, 2, &rng);
  nn::Linear b(3, 2, &rng);
  b.CopyParametersFrom(a);
  EXPECT_TRUE(
      a.Parameters()[1].value().AllClose(b.Parameters()[1].value(), 0.0f));
}

TEST(LinearTest, ShapesAndBatchRanks) {
  Rng rng(7);
  nn::Linear linear(4, 3, &rng);
  Variable x2(Tensor::Ones({5, 4}));
  EXPECT_EQ(linear.Forward(x2).shape(), (Shape{5, 3}));
  Variable x3(Tensor::Ones({2, 5, 4}));
  EXPECT_EQ(linear.Forward(x3).shape(), (Shape{2, 5, 3}));
  Variable x1(Tensor::Ones({4}));
  EXPECT_EQ(linear.Forward(x1).shape(), (Shape{3}));
}

TEST(LinearTest, GradcheckThroughLayer) {
  Rng rng(8);
  nn::Linear linear(3, 2, &rng);
  auto params = linear.Parameters();
  auto fn = [&linear](const std::vector<Variable>& in) {
    Variable out = linear.Forward(in[0]);
    return ag::SumAll(ag::Mul(out, out));
  };
  Rng drng(9);
  Variable x(Tensor::RandUniform({4, 3}, -1, 1, &drng), true);
  ExpectGradientsClose(fn, {x});
  // Parameters also receive gradients.
  linear.ZeroGrad();
  ag::SumAll(linear.Forward(x)).Backward();
  for (const auto& p : params) EXPECT_TRUE(p.has_grad());
}

TEST(EmbeddingTest, LookupShapesAndGrad) {
  Rng rng(10);
  nn::Embedding emb(6, 3, &rng);
  Variable rows = emb.Forward({1, 4, 1});
  EXPECT_EQ(rows.shape(), (Shape{3, 3}));
  ag::SumAll(rows).Backward();
  const Tensor& g = emb.weight().grad();
  EXPECT_EQ(g.at({1, 0}), 2.0f);  // id 1 appears twice
  EXPECT_EQ(g.at({4, 0}), 1.0f);
  EXPECT_EQ(g.at({0, 0}), 0.0f);
}

TEST(GRUCellTest, StateShapePreservedAndBounded) {
  Rng rng(11);
  nn::GRUCell cell(3, 5, &rng);
  Variable x(Tensor::RandUniform({2, 3}, -1, 1, &rng));
  Variable h(Tensor::Zeros({2, 5}));
  Variable h1 = cell.Forward(x, h);
  EXPECT_EQ(h1.shape(), (Shape{2, 5}));
  // GRU output is a convex combination of h (=0) and tanh candidate.
  EXPECT_LE(h1.value().MaxAll(), 1.0f);
  EXPECT_GE(h1.value().MinAll(), -1.0f);
}

TEST(GRUCellTest, GradFlowsThroughTime) {
  Rng rng(12);
  nn::GRUCell cell(2, 3, &rng);
  Variable x0(Tensor::RandUniform({1, 2}, -1, 1, &rng), true);
  Variable h(Tensor::Zeros({1, 3}));
  Variable h1 = cell.Forward(x0, h);
  Variable h2 = cell.Forward(ag::MulScalar(x0, 0.5f), h1);
  ag::SumAll(h2).Backward();
  EXPECT_TRUE(x0.has_grad());
  EXPECT_GT(x0.grad().Abs().SumAll(), 0.0f);
}

TEST(LSTMCellTest, StateAndGradFlow) {
  Rng rng(13);
  nn::LSTMCell cell(2, 4, &rng);
  auto state = cell.InitialState({3});
  Variable x(Tensor::RandUniform({3, 2}, -1, 1, &rng), true);
  auto next = cell.Forward(x, state);
  EXPECT_EQ(next.h.shape(), (Shape{3, 4}));
  EXPECT_EQ(next.c.shape(), (Shape{3, 4}));
  ag::SumAll(next.h).Backward();
  EXPECT_TRUE(x.has_grad());
}

TEST(LayerNormTest, NormalizesLastAxis) {
  Rng rng(14);
  nn::LayerNorm ln(6);
  Variable x(Tensor::RandUniform({4, 6}, -3, 7, &rng));
  Variable y = ln.Forward(x);
  // With default gamma=1, beta=0 every row has ~zero mean, ~unit variance.
  Tensor row_mean = y.value().Mean(1);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(row_mean.flat(i), 0.0f, 1e-4f);
  }
  Tensor sq = y.value().Mul(y.value()).Mean(1);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sq.flat(i), 1.0f, 1e-2f);
  }
}

TEST(LayerNormTest, Gradcheck) {
  nn::LayerNorm ln(4);
  auto fn = [&ln](const std::vector<Variable>& in) {
    Variable y = ln.Forward(in[0]);
    Variable w(Tensor::Arange(12).Reshape({3, 4}));
    return ag::SumAll(ag::Mul(y, w));
  };
  Rng rng(15);
  Variable x(Tensor::RandUniform({3, 4}, -2, 2, &rng), true);
  ExpectGradientsClose(fn, {x}, /*eps=*/5e-3f, /*rtol=*/5e-2f,
                       /*atol=*/5e-2f);
}

TEST(AttentionTest, ShapesSelfAttention) {
  Rng rng(16);
  nn::MultiHeadAttention mha(8, 2, &rng);
  Variable x(Tensor::RandUniform({2, 5, 8}, -1, 1, &rng));
  Variable y = mha.Forward(x, x, x);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 8}));
}

TEST(AttentionTest, CausalMaskBlocksFuture) {
  Rng rng(17);
  nn::MultiHeadAttention mha(4, 1, &rng);
  // Two inputs identical up to position 2, different afterwards: causal
  // outputs at positions 0..2 must match.
  Tensor a = Tensor::RandUniform({1, 5, 4}, -1, 1, &rng);
  Tensor b = a.Clone();
  for (int64_t t = 3; t < 5; ++t) {
    for (int64_t c = 0; c < 4; ++c) b.set({0, t, c}, 9.0f);
  }
  Variable ya = mha.Forward(Variable(a), Variable(a), Variable(a),
                            /*causal=*/true);
  Variable yb = mha.Forward(Variable(b), Variable(b), Variable(b),
                            /*causal=*/true);
  EXPECT_TRUE(ya.value().Slice(1, 0, 3).AllClose(
      yb.value().Slice(1, 0, 3), 1e-5f));
  EXPECT_FALSE(ya.value().Slice(1, 3, 5).AllClose(
      yb.value().Slice(1, 3, 5), 1e-3f));
}

TEST(AttentionTest, CrossAttentionShapes) {
  Rng rng(18);
  nn::MultiHeadAttention mha(8, 4, &rng);
  Variable q(Tensor::RandUniform({2, 3, 8}, -1, 1, &rng));
  Variable kv(Tensor::RandUniform({2, 7, 8}, -1, 1, &rng));
  EXPECT_EQ(mha.Forward(q, kv, kv).shape(), (Shape{2, 3, 8}));
}

TEST(CausalConv1dTest, CausalityHolds) {
  Rng rng(19);
  nn::CausalConv1d conv(3, 2, /*kernel_size=*/2, /*dilation=*/2, &rng);
  Tensor a = Tensor::RandUniform({1, 6, 3}, -1, 1, &rng);
  Tensor b = a.Clone();
  // Perturb the last time step only; outputs before it must not change.
  for (int64_t c = 0; c < 3; ++c) b.set({0, 5, c}, 7.0f);
  Variable ya = conv.Forward(Variable(a));
  Variable yb = conv.Forward(Variable(b));
  EXPECT_TRUE(ya.value().Slice(1, 0, 5).AllClose(
      yb.value().Slice(1, 0, 5), 1e-6f));
}

TEST(CausalConv1dTest, ReceptiveFieldAndShapes) {
  Rng rng(20);
  nn::CausalConv1d conv(4, 6, 2, 4, &rng);
  EXPECT_EQ(conv.receptive_field(), 5);
  Variable x(Tensor::RandUniform({2, 8, 4}, -1, 1, &rng));
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{2, 8, 6}));
  // Works on [B, N, T, C] too (time is axis -2).
  Variable x4(Tensor::RandUniform({2, 3, 8, 4}, -1, 1, &rng));
  EXPECT_EQ(conv.Forward(x4).shape(), (Shape{2, 3, 8, 6}));
}

TEST(CausalConv1dTest, MatchesHandConvolution) {
  Rng rng(21);
  nn::CausalConv1d conv(1, 1, 2, 1, &rng);
  // y_t = x_t * w0 + x_{t-1} * w1 + b
  Variable x(Tensor::FromVector({1, 3, 1}, {1, 2, 3}));
  const auto params = conv.NamedParameters();
  float w0 = 0, w1 = 0, bias = 0;
  for (const auto& [name, p] : params) {
    if (name == "tap0") w0 = p.value().flat(0);
    if (name == "tap1") w1 = p.value().flat(0);
    if (name == "bias") bias = p.value().flat(0);
  }
  Tensor y = conv.Forward(x).value();
  EXPECT_NEAR(y.flat(0), 1 * w0 + 0 * w1 + bias, 1e-5f);
  EXPECT_NEAR(y.flat(1), 2 * w0 + 1 * w1 + bias, 1e-5f);
  EXPECT_NEAR(y.flat(2), 3 * w0 + 2 * w1 + bias, 1e-5f);
}

}  // namespace
}  // namespace tgcrn
