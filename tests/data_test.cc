// Copyright 2026 TGCRN Reproduction Authors
// Data pipeline tests: scaler round trips, split hygiene (no leakage),
// window assembly, batching invariants.
#include "data/dataset.h"

#include <set>

#include <gtest/gtest.h>

namespace tgcrn {
namespace {

data::SpatioTemporalData MakeToyData(int64_t total, int64_t n, int64_t d,
                                     int64_t spd) {
  data::SpatioTemporalData data;
  data.values = Tensor::Zeros({total, n, d});
  // values[t, i, c] = t * 100 + i * 10 + c: uniquely identifies position.
  for (int64_t t = 0; t < total; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < d; ++c) {
        data.values.set({t, i, c},
                        static_cast<float>(t * 100 + i * 10 + c));
      }
    }
  }
  data.steps_per_day = spd;
  for (int64_t t = 0; t < total; ++t) {
    data.slot_of_day.push_back(t % spd);
    data.day_of_week.push_back((t / spd) % 7);
  }
  return data;
}

TEST(StandardScalerTest, TransformInverseRoundTrip) {
  Rng rng(1);
  Tensor values = Tensor::RandUniform({50, 4, 2}, 5.0f, 25.0f, &rng);
  data::StandardScaler scaler;
  scaler.Fit(values, 40);
  Tensor scaled = scaler.Transform(values);
  Tensor restored = scaler.InverseTransform(scaled);
  EXPECT_TRUE(restored.AllClose(values, 1e-3f));
}

TEST(StandardScalerTest, FitProducesZeroMeanUnitStd) {
  Rng rng(2);
  Tensor values = Tensor::RandNormal({200, 3, 2}, 7.0f, 3.0f, &rng);
  data::StandardScaler scaler;
  scaler.Fit(values, 200);
  Tensor scaled = scaler.Transform(values);
  EXPECT_NEAR(scaled.MeanAll(), 0.0f, 1e-3f);
  const float var = scaled.Mul(scaled).MeanAll();
  EXPECT_NEAR(var, 1.0f, 1e-2f);
}

TEST(StandardScalerTest, PerChannelStatistics) {
  // Channel 0 constant 10, channel 1 constant 20 with variance.
  Tensor values = Tensor::Zeros({4, 1, 2});
  const float c0[] = {10, 10, 10, 10};
  const float c1[] = {18, 22, 18, 22};
  for (int64_t t = 0; t < 4; ++t) {
    values.set({t, 0, 0}, c0[t]);
    values.set({t, 0, 1}, c1[t]);
  }
  data::StandardScaler scaler;
  scaler.Fit(values, 4);
  EXPECT_NEAR(scaler.means()[0], 10.0f, 1e-5f);
  EXPECT_NEAR(scaler.means()[1], 20.0f, 1e-5f);
  EXPECT_NEAR(scaler.stds()[1], 2.0f, 1e-5f);
}

TEST(ForecastDatasetTest, WindowContentsAreCorrect) {
  auto data = MakeToyData(/*total=*/100, /*n=*/3, /*d=*/2, /*spd=*/10);
  data::ForecastDataset::Options options;
  options.input_steps = 4;
  options.output_steps = 2;
  data::ForecastDataset dataset(std::move(data), options);

  // First training sample starts at t=0: x covers t=0..3, y covers t=4..5.
  const auto batch =
      dataset.MakeBatch(data::ForecastDataset::Split::kTrain, {0});
  EXPECT_EQ(batch.x.shape(), (Shape{1, 4, 3, 2}));
  EXPECT_EQ(batch.y.shape(), (Shape{1, 2, 3, 2}));
  // Raw targets identify their position: y[0,0,1,1] = t=4,node=1,c=1.
  EXPECT_EQ(batch.y.at({0, 0, 1, 1}), 4 * 100 + 1 * 10 + 1);
  EXPECT_EQ(batch.y.at({0, 1, 2, 0}), 5 * 100 + 2 * 10 + 0);
  // Slot features line up with time indices.
  EXPECT_EQ(batch.x_slots[0], (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(batch.y_slots[0], (std::vector<int64_t>{4, 5}));
  // Scaled inputs invert back to the raw values.
  Tensor x_raw = dataset.scaler().InverseTransform(batch.x);
  EXPECT_NEAR(x_raw.at({0, 2, 1, 0}), 2 * 100 + 1 * 10 + 0, 0.5f);
}

TEST(ForecastDatasetTest, SplitsAreChronologicalAndDisjoint) {
  auto data = MakeToyData(200, 2, 1, 10);
  data::ForecastDataset::Options options;
  options.input_steps = 4;
  options.output_steps = 4;
  options.train_fraction = 0.6;
  options.val_fraction = 0.2;
  data::ForecastDataset dataset(std::move(data), options);

  // All windows are used exactly once across splits.
  const int64_t window = 8;
  const int64_t num_windows = 200 - window + 1;
  EXPECT_EQ(dataset.NumTrainSamples() + dataset.NumValSamples() +
                dataset.NumTestSamples(),
            num_windows);

  // The last target step of every training window precedes the first
  // target step of every validation window (leakage check): compare via
  // the y tensor's encoded time index.
  auto last_y_time = [&](data::ForecastDataset::Split split, int64_t id) {
    const auto b = dataset.MakeBatch(split, {id});
    return static_cast<int64_t>(
        b.y.at({0, options.output_steps - 1, 0, 0}) / 100);
  };
  const int64_t train_max = last_y_time(
      data::ForecastDataset::Split::kTrain, dataset.NumTrainSamples() - 1);
  const int64_t val_min =
      last_y_time(data::ForecastDataset::Split::kVal, 0);
  const int64_t test_min =
      last_y_time(data::ForecastDataset::Split::kTest, 0);
  EXPECT_LT(train_max, 200 * 0.6);
  EXPECT_LT(train_max, val_min);
  EXPECT_LT(val_min, test_min);
}

TEST(ForecastDatasetTest, EpochBatchesCoverSplitOnce) {
  auto data = MakeToyData(150, 2, 1, 10);
  data::ForecastDataset::Options options;
  data::ForecastDataset dataset(std::move(data), options);
  Rng rng(3);
  const auto batches = dataset.EpochBatches(
      data::ForecastDataset::Split::kTrain, 16, &rng);
  std::set<int64_t> seen;
  for (const auto& ids : batches) {
    EXPECT_LE(static_cast<int64_t>(ids.size()), 16);
    for (int64_t id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate sample " << id;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), dataset.NumTrainSamples());
}

TEST(ForecastDatasetTest, ShufflingIsSeedDeterministic) {
  auto data = MakeToyData(150, 2, 1, 10);
  data::ForecastDataset dataset(std::move(data), {});
  Rng rng1(7), rng2(7), rng3(8);
  const auto a =
      dataset.EpochBatches(data::ForecastDataset::Split::kTrain, 8, &rng1);
  const auto b =
      dataset.EpochBatches(data::ForecastDataset::Split::kTrain, 8, &rng2);
  const auto c =
      dataset.EpochBatches(data::ForecastDataset::Split::kTrain, 8, &rng3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace tgcrn
