// Copyright 2026 TGCRN Reproduction Authors
// Tensor kernel fuzzing: every shape-manipulation and broadcast kernel is
// checked against a straightforward reference implementation on random
// shapes, plus fast-path vs generic-path consistency checks.
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace tgcrn {
namespace {

Shape RandomShape(Rng* rng, int64_t max_rank = 4, int64_t max_dim = 5) {
  const int64_t rank = rng->UniformInt(1, max_rank);
  Shape shape(rank);
  for (auto& d : shape) d = rng->UniformInt(1, max_dim);
  return shape;
}

// Reference elementwise-with-broadcast by explicit materialization.
Tensor ReferenceAdd(const Tensor& a, const Tensor& b) {
  const Shape out = BroadcastShapes(a.shape(), b.shape());
  return a.BroadcastTo(out).Add(b.BroadcastTo(out));
}

class BroadcastFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastFuzzTest, BinaryOpsMatchMaterialized) {
  Rng rng(7000 + GetParam());
  // Build two broadcast-compatible shapes by degrading a base shape.
  Shape base = RandomShape(&rng);
  Shape sa = base, sb = base;
  for (size_t d = 0; d < base.size(); ++d) {
    if (rng.NextDouble() < 0.4) sa[d] = 1;
    if (rng.NextDouble() < 0.4) sb[d] = 1;
  }
  // Randomly strip leading dims from one side.
  if (rng.NextDouble() < 0.5 && sa.size() > 1) {
    sa.erase(sa.begin(), sa.begin() + rng.UniformInt(0, 1));
  }
  Tensor a = Tensor::RandUniform(sa, -2, 2, &rng);
  Tensor b = Tensor::RandUniform(sb, -2, 2, &rng);
  EXPECT_TRUE(a.Add(b).AllClose(ReferenceAdd(a, b), 1e-6f))
      << ShapeToString(sa) << " + " << ShapeToString(sb);
  // Sub/Mul through the same machinery (sanity on one op suffices for the
  // iterator; Mul exercises a different combiner).
  const Shape out = BroadcastShapes(a.shape(), b.shape());
  EXPECT_TRUE(a.Mul(b).AllClose(
      a.BroadcastTo(out).Mul(b.BroadcastTo(out)), 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastFuzzTest, ::testing::Range(0, 16));

class PermuteFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PermuteFuzzTest, PermuteThenInverseIsIdentity) {
  Rng rng(8000 + GetParam());
  const Shape shape = RandomShape(&rng, 4, 5);
  Tensor x = Tensor::RandUniform(shape, -1, 1, &rng);
  std::vector<int64_t> perm(shape.size());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  Tensor permuted = x.Permute(perm);
  // Element-level spot checks against index arithmetic.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> idx(shape.size());
    for (size_t d = 0; d < shape.size(); ++d) {
      idx[d] = rng.UniformInt(0, shape[d] - 1);
    }
    std::vector<int64_t> pidx(shape.size());
    for (size_t d = 0; d < shape.size(); ++d) pidx[d] = idx[perm[d]];
    EXPECT_EQ(permuted.at(pidx), x.at(idx));
  }
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  EXPECT_TRUE(permuted.Permute(inverse).AllClose(x, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermuteFuzzTest, ::testing::Range(0, 12));

class SliceFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SliceFuzzTest, SliceMatchesElementIndexing) {
  Rng rng(9000 + GetParam());
  const Shape shape = RandomShape(&rng, 3, 6);
  Tensor x = Tensor::RandUniform(shape, -1, 1, &rng);
  const int64_t axis = rng.UniformInt(0, x.dim() - 1);
  const int64_t start = rng.UniformInt(0, shape[axis] - 1);
  const int64_t end = rng.UniformInt(start + 1, shape[axis]);
  Tensor sliced = x.Slice(axis, start, end);
  EXPECT_EQ(sliced.size(axis), end - start);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> idx(shape.size());
    for (int64_t d = 0; d < x.dim(); ++d) {
      idx[d] = rng.UniformInt(0, sliced.size(d) - 1);
    }
    std::vector<int64_t> src = idx;
    src[axis] += start;
    EXPECT_EQ(sliced.at(idx), x.at(src));
  }
  // Concat of complementary slices restores the original.
  if (start > 0 || end < shape[axis]) {
    std::vector<Tensor> parts;
    if (start > 0) parts.push_back(x.Slice(axis, 0, start));
    parts.push_back(sliced);
    if (end < shape[axis]) parts.push_back(x.Slice(axis, end, shape[axis]));
    EXPECT_TRUE(Tensor::Concat(parts, axis).AllClose(x, 0.0f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceFuzzTest, ::testing::Range(0, 12));

TEST(SoftmaxPathTest, FastLastAxisMatchesGenericPath) {
  Rng rng(9500);
  // [B, N, N] softmax over the last axis (fast path) vs an equivalent
  // computation routed through the generic axis path via transpose.
  Tensor x = Tensor::RandUniform({3, 5, 5}, -8, 8, &rng);
  Tensor fast = x.Softmax(-1);
  Tensor generic = x.Transpose(1, 2).Softmax(1).Transpose(1, 2);
  EXPECT_TRUE(fast.AllClose(generic, 1e-5f));
}

TEST(ReduceFuzzTest, SumOverEveryAxisMatchesManual) {
  Rng rng(9600);
  Tensor x = Tensor::RandUniform({3, 4, 2}, -2, 2, &rng);
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor reduced = x.Sum(axis);
    // Manual: iterate all elements, accumulate.
    Shape out_shape = x.shape();
    out_shape.erase(out_shape.begin() + axis);
    Tensor manual = Tensor::Zeros(out_shape);
    for (int64_t i = 0; i < x.size(0); ++i) {
      for (int64_t j = 0; j < x.size(1); ++j) {
        for (int64_t k = 0; k < x.size(2); ++k) {
          std::vector<int64_t> idx = {i, j, k};
          std::vector<int64_t> out_idx;
          for (int64_t d = 0; d < 3; ++d) {
            if (d != axis) out_idx.push_back(idx[d]);
          }
          manual.set(out_idx, manual.at(out_idx) + x.at(idx));
        }
      }
    }
    EXPECT_TRUE(reduced.AllClose(manual, 1e-5f)) << "axis " << axis;
  }
}

TEST(EdgeCaseTest, SingleElementAndDegenerateShapes) {
  Tensor scalar = Tensor::Scalar(3.0f);
  EXPECT_EQ(scalar.Add(scalar).item(), 6.0f);
  Tensor one = Tensor::Ones({1, 1, 1});
  EXPECT_EQ(one.Sum(1).shape(), (Shape{1, 1}));
  EXPECT_EQ(one.Softmax(-1).item(), 1.0f);
  // Length-1 axis slice round trip.
  Tensor row = Tensor::Arange(4).Reshape({1, 4});
  EXPECT_TRUE(row.Slice(0, 0, 1).AllClose(row));
}

}  // namespace
}  // namespace tgcrn
