// Copyright 2026 TGCRN Reproduction Authors
// Tensor kernel fuzzing: every shape-manipulation and broadcast kernel is
// checked against a straightforward reference implementation on random
// shapes, plus fast-path vs generic-path consistency checks, and the
// scalar-vs-AVX2 differential harness for the SIMD GEMM/vmath kernels.
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

Shape RandomShape(Rng* rng, int64_t max_rank = 4, int64_t max_dim = 5) {
  const int64_t rank = rng->UniformInt(1, max_rank);
  Shape shape(rank);
  for (auto& d : shape) d = rng->UniformInt(1, max_dim);
  return shape;
}

// Reference elementwise-with-broadcast by explicit materialization.
Tensor ReferenceAdd(const Tensor& a, const Tensor& b) {
  const Shape out = BroadcastShapes(a.shape(), b.shape());
  return a.BroadcastTo(out).Add(b.BroadcastTo(out));
}

class BroadcastFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastFuzzTest, BinaryOpsMatchMaterialized) {
  Rng rng(7000 + GetParam());
  // Build two broadcast-compatible shapes by degrading a base shape.
  Shape base = RandomShape(&rng);
  Shape sa = base, sb = base;
  for (size_t d = 0; d < base.size(); ++d) {
    if (rng.NextDouble() < 0.4) sa[d] = 1;
    if (rng.NextDouble() < 0.4) sb[d] = 1;
  }
  // Randomly strip leading dims from one side.
  if (rng.NextDouble() < 0.5 && sa.size() > 1) {
    sa.erase(sa.begin(), sa.begin() + rng.UniformInt(0, 1));
  }
  Tensor a = Tensor::RandUniform(sa, -2, 2, &rng);
  Tensor b = Tensor::RandUniform(sb, -2, 2, &rng);
  EXPECT_TRUE(a.Add(b).AllClose(ReferenceAdd(a, b), 1e-6f))
      << ShapeToString(sa) << " + " << ShapeToString(sb);
  // Sub/Mul through the same machinery (sanity on one op suffices for the
  // iterator; Mul exercises a different combiner).
  const Shape out = BroadcastShapes(a.shape(), b.shape());
  EXPECT_TRUE(a.Mul(b).AllClose(
      a.BroadcastTo(out).Mul(b.BroadcastTo(out)), 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BroadcastFuzzTest, ::testing::Range(0, 16));

class PermuteFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PermuteFuzzTest, PermuteThenInverseIsIdentity) {
  Rng rng(8000 + GetParam());
  const Shape shape = RandomShape(&rng, 4, 5);
  Tensor x = Tensor::RandUniform(shape, -1, 1, &rng);
  std::vector<int64_t> perm(shape.size());
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(&perm);
  Tensor permuted = x.Permute(perm);
  // Element-level spot checks against index arithmetic.
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> idx(shape.size());
    for (size_t d = 0; d < shape.size(); ++d) {
      idx[d] = rng.UniformInt(0, shape[d] - 1);
    }
    std::vector<int64_t> pidx(shape.size());
    for (size_t d = 0; d < shape.size(); ++d) pidx[d] = idx[perm[d]];
    EXPECT_EQ(permuted.at(pidx), x.at(idx));
  }
  std::vector<int64_t> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  EXPECT_TRUE(permuted.Permute(inverse).AllClose(x, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermuteFuzzTest, ::testing::Range(0, 12));

class SliceFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SliceFuzzTest, SliceMatchesElementIndexing) {
  Rng rng(9000 + GetParam());
  const Shape shape = RandomShape(&rng, 3, 6);
  Tensor x = Tensor::RandUniform(shape, -1, 1, &rng);
  const int64_t axis = rng.UniformInt(0, x.dim() - 1);
  const int64_t start = rng.UniformInt(0, shape[axis] - 1);
  const int64_t end = rng.UniformInt(start + 1, shape[axis]);
  Tensor sliced = x.Slice(axis, start, end);
  EXPECT_EQ(sliced.size(axis), end - start);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> idx(shape.size());
    for (int64_t d = 0; d < x.dim(); ++d) {
      idx[d] = rng.UniformInt(0, sliced.size(d) - 1);
    }
    std::vector<int64_t> src = idx;
    src[axis] += start;
    EXPECT_EQ(sliced.at(idx), x.at(src));
  }
  // Concat of complementary slices restores the original.
  if (start > 0 || end < shape[axis]) {
    std::vector<Tensor> parts;
    if (start > 0) parts.push_back(x.Slice(axis, 0, start));
    parts.push_back(sliced);
    if (end < shape[axis]) parts.push_back(x.Slice(axis, end, shape[axis]));
    EXPECT_TRUE(Tensor::Concat(parts, axis).AllClose(x, 0.0f));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceFuzzTest, ::testing::Range(0, 12));

TEST(SoftmaxPathTest, FastLastAxisMatchesGenericPath) {
  Rng rng(9500);
  // [B, N, N] softmax over the last axis (fast path) vs an equivalent
  // computation routed through the generic axis path via transpose.
  Tensor x = Tensor::RandUniform({3, 5, 5}, -8, 8, &rng);
  Tensor fast = x.Softmax(-1);
  Tensor generic = x.Transpose(1, 2).Softmax(1).Transpose(1, 2);
  EXPECT_TRUE(fast.AllClose(generic, 1e-5f));
}

TEST(ReduceFuzzTest, SumOverEveryAxisMatchesManual) {
  Rng rng(9600);
  Tensor x = Tensor::RandUniform({3, 4, 2}, -2, 2, &rng);
  for (int64_t axis = 0; axis < 3; ++axis) {
    Tensor reduced = x.Sum(axis);
    // Manual: iterate all elements, accumulate.
    Shape out_shape = x.shape();
    out_shape.erase(out_shape.begin() + axis);
    Tensor manual = Tensor::Zeros(out_shape);
    for (int64_t i = 0; i < x.size(0); ++i) {
      for (int64_t j = 0; j < x.size(1); ++j) {
        for (int64_t k = 0; k < x.size(2); ++k) {
          std::vector<int64_t> idx = {i, j, k};
          std::vector<int64_t> out_idx;
          for (int64_t d = 0; d < 3; ++d) {
            if (d != axis) out_idx.push_back(idx[d]);
          }
          manual.set(out_idx, manual.at(out_idx) + x.at(idx));
        }
      }
    }
    EXPECT_TRUE(reduced.AllClose(manual, 1e-5f)) << "axis " << axis;
  }
}

// ---- SIMD differential fuzzing ---------------------------------------------
// The scalar and AVX2 kernel tables must agree within FMA-contraction
// rounding. Tolerance is ulp-scaled per element: the |A|·|B| product
// bounds every partial sum, and each of the ~k+8 flops can contribute
// half an ulp of that bound. At a fixed ISA, results must be bitwise
// repeatable — and the scalar table bit-exactly matches libm/serial
// arithmetic, which the repeatability memcmp pins.

bool Avx2Available() {
  return common::Avx2CompiledIn() && common::CpuSupportsAvx2();
}

Tensor RunMatmul(const Tensor& a, const Tensor& b, int kind) {
  if (kind == 0) return a.Matmul(b);
  if (kind == 1) return a.MatmulTransposeA(b);
  return a.MatmulTransposeB(b);
}

bool BitwiseEqual(const Tensor& x, const Tensor& y) {
  return x.shape() == y.shape() &&
         std::memcmp(x.data(), y.data(),
                     static_cast<size_t>(x.numel()) * sizeof(float)) == 0;
}

void ExpectWithinScaledUlps(const Tensor& s, const Tensor& v,
                            const Tensor& bound, int64_t k,
                            const std::string& label) {
  ASSERT_EQ(s.shape(), v.shape()) << label;
  ASSERT_EQ(s.shape(), bound.shape()) << label;
  constexpr float kEps = 1.19209290e-7f;  // 2^-23
  const float scale = kEps * static_cast<float>(k + 8);
  const float* ps = s.data();
  const float* pv = v.data();
  const float* pb = bound.data();
  for (int64_t i = 0; i < s.numel(); ++i) {
    ASSERT_LE(std::fabs(ps[i] - pv[i]), scale * pb[i] + 1e-30f)
        << label << " at flat index " << i << ": scalar " << ps[i]
        << " vs avx2 " << pv[i];
  }
}

class SimdMatmulDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdMatmulDifferentialTest, ScalarAndAvx2AgreeWithinUlps) {
  if (!Avx2Available()) GTEST_SKIP() << "AVX2 not available on this build";
  Rng rng(11000 + GetParam());
  // Boundary-rich dims: ragged panel tails (< kNr = 16), partial register
  // tiles (< kMr = 6), the packing cutover at m = 8, and exact tiles.
  const std::vector<int64_t> dims = {1, 2, 3, 5, 6, 7, 8, 9, 15, 16, 17, 33};
  auto pick = [&] { return dims[rng.UniformInt(0, 11)]; };
  for (int kind = 0; kind < 3; ++kind) {
    const int64_t m = pick(), k = pick(), n = pick();
    Shape sa = kind == 1 ? Shape{k, m} : Shape{m, k};
    Shape sb = kind == 2 ? Shape{n, k} : Shape{k, n};
    // Mix in batched and broadcast-batched variants.
    const int batching = rng.UniformInt(0, 2);
    if (batching == 1) {
      sa.insert(sa.begin(), rng.UniformInt(2, 4));
    } else if (batching == 2) {
      sa.insert(sa.begin(), {2, 1});
      sb.insert(sb.begin(), 3);
    }
    Tensor a = Tensor::RandUniform(sa, -2, 2, &rng);
    Tensor b = Tensor::RandUniform(sb, -2, 2, &rng);
    const std::string label = "kind " + std::to_string(kind) + ": " +
                              ShapeToString(sa) + " x " + ShapeToString(sb);

    Tensor s, v, bound;
    {
      common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
      s = RunMatmul(a, b, kind);
      // Fixed-ISA exactness: a second run must be bit-identical.
      EXPECT_TRUE(BitwiseEqual(s, RunMatmul(a, b, kind))) << label;
      bound = RunMatmul(a.Abs(), b.Abs(), kind);
    }
    {
      common::ScopedSimdIsa pin(common::SimdIsa::kAvx2);
      v = RunMatmul(a, b, kind);
      EXPECT_TRUE(BitwiseEqual(v, RunMatmul(a, b, kind))) << label;
    }
    ExpectWithinScaledUlps(s, v, bound, k, label);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdMatmulDifferentialTest,
                         ::testing::Range(0, 20));

TEST(SimdMatmulDifferentialTest, ReduceDimCrossesCacheBlock) {
  if (!Avx2Available()) GTEST_SKIP() << "AVX2 not available on this build";
  Rng rng(11500);
  // k spanning the kKc = 256 cache block: the AVX2 packed kernel
  // accumulates later k-chunks into C from memory, which must not change
  // agreement (or fixed-ISA bits).
  for (const int64_t k : {255, 256, 257, 300}) {
    for (int kind = 0; kind < 3; ++kind) {
      const int64_t m = 9, n = 17;
      const Shape sa = kind == 1 ? Shape{k, m} : Shape{m, k};
      const Shape sb = kind == 2 ? Shape{n, k} : Shape{k, n};
      Tensor a = Tensor::RandUniform(sa, -1, 1, &rng);
      Tensor b = Tensor::RandUniform(sb, -1, 1, &rng);
      const std::string label =
          "kind " + std::to_string(kind) + " k=" + std::to_string(k);
      Tensor s, v, bound;
      {
        common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
        s = RunMatmul(a, b, kind);
        bound = RunMatmul(a.Abs(), b.Abs(), kind);
      }
      {
        common::ScopedSimdIsa pin(common::SimdIsa::kAvx2);
        v = RunMatmul(a, b, kind);
        EXPECT_TRUE(BitwiseEqual(v, RunMatmul(a, b, kind))) << label;
      }
      ExpectWithinScaledUlps(s, v, bound, k, label);
    }
  }
}

TEST(SimdMatmulDifferentialTest, SlicedOperandsMatch) {
  if (!Avx2Available()) GTEST_SKIP() << "AVX2 not available on this build";
  Rng rng(11600);
  // Operands carved out of larger tensors (materialized strided views).
  Tensor big_a = Tensor::RandUniform({12, 40}, -2, 2, &rng);
  Tensor big_b = Tensor::RandUniform({40, 25}, -2, 2, &rng);
  Tensor a = big_a.Slice(0, 3, 10).Slice(1, 5, 24);   // (7, 19)
  Tensor b = big_b.Slice(0, 5, 24).Slice(1, 2, 23);   // (19, 21)
  Tensor s, v, bound;
  {
    common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
    s = a.Matmul(b);
    bound = a.Abs().Matmul(b.Abs());
  }
  {
    common::ScopedSimdIsa pin(common::SimdIsa::kAvx2);
    v = a.Matmul(b);
  }
  ExpectWithinScaledUlps(s, v, bound, 19, "sliced operands");
}

TEST(SimdVmathDifferentialTest, TranscendentalsMatchLibmWithinTolerance) {
  if (!Avx2Available()) GTEST_SKIP() << "AVX2 not available on this build";
  Rng rng(11700);
  // Lengths 1..17 cover every sub-vector tail (lanes = 8) plus both
  // full-vector sides of it; 1000 exercises chunked parallel ranges.
  for (int64_t len = 1; len <= 17; ++len) {
    SCOPED_TRACE(len);
    Tensor x = Tensor::RandUniform({len}, -9, 9, &rng);
    Tensor es, ev, ss, sv, ts, tv;
    {
      common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
      es = x.Exp();
      ss = x.Sigmoid();
      ts = x.Tanh();
      // Scalar path is libm exactly.
      for (int64_t i = 0; i < len; ++i) {
        EXPECT_EQ(es.flat(i), std::exp(x.flat(i)));
        EXPECT_EQ(ts.flat(i), std::tanh(x.flat(i)));
      }
    }
    {
      common::ScopedSimdIsa pin(common::SimdIsa::kAvx2);
      ev = x.Exp();
      sv = x.Sigmoid();
      tv = x.Tanh();
      EXPECT_TRUE(BitwiseEqual(ev, x.Exp()));
    }
    for (int64_t i = 0; i < len; ++i) {
      // Minimax-polynomial error is a few ulp relative for exp, and
      // absolute (outputs in [-1, 1]) for sigmoid/tanh.
      EXPECT_LE(std::fabs(es.flat(i) - ev.flat(i)),
                2e-6f * std::fabs(es.flat(i)) + 1e-30f);
      EXPECT_LE(std::fabs(ss.flat(i) - sv.flat(i)), 2e-6f);
      EXPECT_LE(std::fabs(ts.flat(i) - tv.flat(i)), 2e-6f);
    }
  }
  // Long input: chunk boundaries at any thread count must not change the
  // AVX2 bits (lanewise kernels are position-independent).
  Tensor x = Tensor::RandUniform({1000}, -9, 9, &rng);
  common::ScopedSimdIsa pin(common::SimdIsa::kAvx2);
  Tensor y = x.Sigmoid();
  EXPECT_TRUE(BitwiseEqual(y, x.Sigmoid()));
}

TEST(EdgeCaseTest, SingleElementAndDegenerateShapes) {
  Tensor scalar = Tensor::Scalar(3.0f);
  EXPECT_EQ(scalar.Add(scalar).item(), 6.0f);
  Tensor one = Tensor::Ones({1, 1, 1});
  EXPECT_EQ(one.Sum(1).shape(), (Shape{1, 1}));
  EXPECT_EQ(one.Softmax(-1).item(), 1.0f);
  // Length-1 axis slice round trip.
  Tensor row = Tensor::Arange(4).Reshape({1, 4});
  EXPECT_TRUE(row.Slice(0, 0, 1).AllClose(row));
}

}  // namespace
}  // namespace tgcrn
