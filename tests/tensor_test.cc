// Copyright 2026 TGCRN Reproduction Authors
// Unit and property tests for the tensor substrate.
#include "tensor/tensor.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/rng.h"

namespace tgcrn {
namespace {

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({0, 5}), 0);
  EXPECT_EQ(ShapeToString({2, 3}), "[2, 3]");
}

TEST(ShapeTest, BroadcastShapes) {
  EXPECT_EQ(BroadcastShapes({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(BroadcastShapes({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(BroadcastShapes({}, {5}), (Shape{5}));
  EXPECT_EQ(BroadcastShapes({1}, {7, 1}), (Shape{7, 1}));
}

TEST(TensorTest, FactoriesProduceExpectedValues) {
  Tensor z = Tensor::Zeros({2, 2});
  EXPECT_EQ(z.SumAll(), 0.0f);
  Tensor o = Tensor::Ones({3});
  EXPECT_EQ(o.SumAll(), 3.0f);
  Tensor f = Tensor::Full({2, 2}, 2.5f);
  EXPECT_EQ(f.MeanAll(), 2.5f);
  Tensor a = Tensor::Arange(5);
  EXPECT_EQ(a.flat(3), 3.0f);
  Tensor eye = Tensor::Eye(3);
  EXPECT_EQ(eye.at({1, 1}), 1.0f);
  EXPECT_EQ(eye.at({1, 2}), 0.0f);
  EXPECT_EQ(eye.SumAll(), 3.0f);
  Tensor s = Tensor::Scalar(4.0f);
  EXPECT_EQ(s.dim(), 0);
  EXPECT_EQ(s.item(), 4.0f);
}

TEST(TensorTest, RandomFactoriesAreDeterministicPerSeed) {
  Rng rng1(42), rng2(42), rng3(43);
  Tensor a = Tensor::RandUniform({4, 4}, -1.0f, 1.0f, &rng1);
  Tensor b = Tensor::RandUniform({4, 4}, -1.0f, 1.0f, &rng2);
  Tensor c = Tensor::RandUniform({4, 4}, -1.0f, 1.0f, &rng3);
  EXPECT_TRUE(a.AllClose(b, 0.0f));
  EXPECT_FALSE(a.AllClose(c, 1e-6f));
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(a.flat(i), -1.0f);
    EXPECT_LT(a.flat(i), 1.0f);
  }
}

TEST(TensorTest, RandNormalMoments) {
  Rng rng(7);
  Tensor a = Tensor::RandNormal({10000}, 2.0f, 3.0f, &rng);
  EXPECT_NEAR(a.MeanAll(), 2.0f, 0.15f);
  const Tensor centered = a.AddScalar(-a.MeanAll());
  const float var = centered.Mul(centered).MeanAll();
  EXPECT_NEAR(std::sqrt(var), 3.0f, 0.2f);
}

TEST(TensorTest, ElementwiseSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  EXPECT_TRUE(a.Add(b).AllClose(Tensor::FromVector({2, 2}, {6, 8, 10, 12})));
  EXPECT_TRUE(b.Sub(a).AllClose(Tensor::FromVector({2, 2}, {4, 4, 4, 4})));
  EXPECT_TRUE(a.Mul(b).AllClose(Tensor::FromVector({2, 2}, {5, 12, 21, 32})));
  EXPECT_TRUE(
      b.Div(a).AllClose(Tensor::FromVector({2, 2}, {5, 3, 7.f / 3, 2})));
  EXPECT_TRUE(a.Maximum(b).AllClose(b));
  EXPECT_TRUE(a.Minimum(b).AllClose(a));
}

TEST(TensorTest, BroadcastAddRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromVector({3}, {10, 20, 30});
  Tensor sum = a.Add(row);
  EXPECT_TRUE(
      sum.AllClose(Tensor::FromVector({2, 3}, {11, 22, 33, 14, 25, 36})));
}

TEST(TensorTest, BroadcastMulColumnVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromVector({2, 1}, {2, 3});
  Tensor prod = a.Mul(col);
  EXPECT_TRUE(
      prod.AllClose(Tensor::FromVector({2, 3}, {2, 4, 6, 12, 15, 18})));
}

// Property sweep: broadcasting matches explicit materialization across a
// lattice of shape pairs.
class BroadcastShapePairTest
    : public ::testing::TestWithParam<std::tuple<Shape, Shape>> {};

TEST_P(BroadcastShapePairTest, MatchesMaterializedBroadcast) {
  const auto& [sa, sb] = GetParam();
  Rng rng(123);
  Tensor a = Tensor::RandUniform(sa, -2.0f, 2.0f, &rng);
  Tensor b = Tensor::RandUniform(sb, -2.0f, 2.0f, &rng);
  const Shape out = BroadcastShapes(sa, sb);
  Tensor am = a.BroadcastTo(out);
  Tensor bm = b.BroadcastTo(out);
  EXPECT_TRUE(a.Add(b).AllClose(am.Add(bm), 1e-6f));
  EXPECT_TRUE(a.Mul(b).AllClose(am.Mul(bm), 1e-6f));
  EXPECT_TRUE(a.Sub(b).AllClose(am.Sub(bm), 1e-6f));
}

INSTANTIATE_TEST_SUITE_P(
    Lattice, BroadcastShapePairTest,
    ::testing::Values(
        std::make_tuple(Shape{3}, Shape{3}),
        std::make_tuple(Shape{2, 3}, Shape{3}),
        std::make_tuple(Shape{2, 3}, Shape{1, 3}),
        std::make_tuple(Shape{2, 1}, Shape{1, 3}),
        std::make_tuple(Shape{4, 1, 3}, Shape{2, 3}),
        std::make_tuple(Shape{1}, Shape{2, 3, 4}),
        std::make_tuple(Shape{5, 1, 1}, Shape{1, 4, 3}),
        std::make_tuple(Shape{}, Shape{2, 2}),
        std::make_tuple(Shape{2, 2, 2, 2}, Shape{2, 1, 2})));

TEST(TensorTest, MapAndUnaryOps) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5, 0.5, 2});
  EXPECT_TRUE(a.Abs().AllClose(Tensor::FromVector({4}, {2, 0.5, 0.5, 2})));
  EXPECT_TRUE(a.Relu().AllClose(Tensor::FromVector({4}, {0, 0, 0.5, 2})));
  EXPECT_NEAR(a.Tanh().flat(0), std::tanh(-2.0f), 1e-6f);
  EXPECT_NEAR(a.Sigmoid().flat(3), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  EXPECT_NEAR(a.Exp().flat(2), std::exp(0.5f), 1e-6f);
  Tensor b = Tensor::FromVector({2}, {1, 4});
  EXPECT_TRUE(b.Sqrt().AllClose(Tensor::FromVector({2}, {1, 2})));
  EXPECT_NEAR(b.Log().flat(1), std::log(4.0f), 1e-6f);
  EXPECT_TRUE(b.Pow(2.0f).AllClose(Tensor::FromVector({2}, {1, 16})));
}

TEST(TensorTest, Matmul2D) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = a.Matmul(b);
  EXPECT_TRUE(c.AllClose(Tensor::FromVector({2, 2}, {58, 64, 139, 154})));
}

TEST(TensorTest, MatmulBatched) {
  // Two batch matrices times a shared matrix (broadcast on rhs).
  Tensor a = Tensor::FromVector({2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor b = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor c = a.Matmul(b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  EXPECT_TRUE(c.Slice(0, 0, 1).Squeeze(0).AllClose(b));
  EXPECT_TRUE(c.Slice(0, 1, 2).Squeeze(0).AllClose(b.MulScalar(2.0f)));
}

TEST(TensorTest, MatmulBatchedBothSides) {
  Rng rng(9);
  Tensor a = Tensor::RandUniform({3, 4, 5}, -1, 1, &rng);
  Tensor b = Tensor::RandUniform({3, 5, 2}, -1, 1, &rng);
  Tensor c = a.Matmul(b);
  EXPECT_EQ(c.shape(), (Shape{3, 4, 2}));
  // Verify one element by hand.
  float expect = 0.0f;
  for (int64_t k = 0; k < 5; ++k) {
    expect += a.at({2, 1, k}) * b.at({2, k, 1});
  }
  EXPECT_NEAR(c.at({2, 1, 1}), expect, 1e-5f);
}

TEST(TensorTest, ReshapeAndInfer) {
  Tensor a = Tensor::Arange(12);
  Tensor b = a.Reshape({3, 4});
  EXPECT_EQ(b.at({2, 3}), 11.0f);
  Tensor c = b.Reshape({2, -1});
  EXPECT_EQ(c.shape(), (Shape{2, 6}));
  EXPECT_EQ(c.at({1, 0}), 6.0f);
}

TEST(TensorTest, TransposeAndPermute) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = a.Transpose(0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({0, 1}), 4.0f);
  EXPECT_EQ(t.at({2, 0}), 3.0f);

  Rng rng(5);
  Tensor x = Tensor::RandUniform({2, 3, 4}, -1, 1, &rng);
  Tensor p = x.Permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(p.at({3, 1, 2}), x.at({1, 2, 3}));
  // Permuting back is the identity.
  EXPECT_TRUE(p.Permute({1, 2, 0}).AllClose(x));
}

TEST(TensorTest, SliceConcatRoundTrip) {
  Rng rng(11);
  Tensor x = Tensor::RandUniform({4, 6, 2}, -1, 1, &rng);
  for (int64_t axis = 0; axis < 3; ++axis) {
    const int64_t len = x.size(axis);
    Tensor left = x.Slice(axis, 0, len / 2);
    Tensor right = x.Slice(axis, len / 2, len);
    Tensor joined = Tensor::Concat({left, right}, axis);
    EXPECT_TRUE(joined.AllClose(x)) << "axis " << axis;
  }
}

TEST(TensorTest, StackAddsAxis) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 4});
  Tensor s0 = Tensor::Stack({a, b}, 0);
  EXPECT_EQ(s0.shape(), (Shape{2, 2}));
  EXPECT_EQ(s0.at({1, 0}), 3.0f);
  Tensor s1 = Tensor::Stack({a, b}, 1);
  EXPECT_EQ(s1.shape(), (Shape{2, 2}));
  EXPECT_EQ(s1.at({0, 1}), 3.0f);
}

TEST(TensorTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(a.SumAll(), 21.0f);
  EXPECT_EQ(a.MeanAll(), 3.5f);
  EXPECT_EQ(a.MaxAll(), 6.0f);
  EXPECT_EQ(a.MinAll(), 1.0f);
  EXPECT_TRUE(a.Sum(0).AllClose(Tensor::FromVector({3}, {5, 7, 9})));
  EXPECT_TRUE(a.Sum(1).AllClose(Tensor::FromVector({2}, {6, 15})));
  EXPECT_TRUE(a.Mean(1).AllClose(Tensor::FromVector({2}, {2, 5})));
  EXPECT_TRUE(a.Max(0).AllClose(Tensor::FromVector({3}, {4, 5, 6})));
  Tensor kd = a.Sum(1, /*keepdim=*/true);
  EXPECT_EQ(kd.shape(), (Shape{2, 1}));
}

TEST(TensorTest, ReduceToSumsBroadcastDims) {
  Rng rng(3);
  Tensor g = Tensor::RandUniform({4, 2, 3}, -1, 1, &rng);
  Tensor r = g.ReduceTo({2, 3});
  EXPECT_TRUE(r.AllClose(g.Sum(0)));
  Tensor r2 = g.ReduceTo({4, 1, 3});
  EXPECT_TRUE(r2.AllClose(g.Sum(1, /*keepdim=*/true)));
  Tensor r3 = g.ReduceTo({4, 2, 3});
  EXPECT_TRUE(r3.AllClose(g));
}

TEST(TensorTest, SoftmaxRowsAreStochastic) {
  Rng rng(17);
  Tensor a = Tensor::RandUniform({5, 7}, -30.0f, 30.0f, &rng);
  Tensor sm = a.Softmax(1);
  Tensor row_sums = sm.Sum(1);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(row_sums.flat(i), 1.0f, 1e-5f);
  }
  EXPECT_GE(sm.MinAll(), 0.0f);
  EXPECT_FALSE(sm.HasNonFinite());
}

TEST(TensorTest, SoftmaxMatchesHandComputation) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor sm = a.Softmax(1);
  const float z = std::exp(1.f) + std::exp(2.f) + std::exp(3.f);
  EXPECT_NEAR(sm.flat(0), std::exp(1.f) / z, 1e-6f);
  EXPECT_NEAR(sm.flat(2), std::exp(3.f) / z, 1e-6f);
}

TEST(TensorTest, IndexSelectAndIndexAdd) {
  Tensor w = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor picked = w.IndexSelect0({2, 0, 2});
  EXPECT_TRUE(
      picked.AllClose(Tensor::FromVector({3, 2}, {5, 6, 1, 2, 5, 6})));

  Tensor grad = Tensor::Zeros({3, 2});
  grad.IndexAdd0Inplace({2, 0, 2},
                        Tensor::FromVector({3, 2}, {1, 1, 1, 1, 1, 1}));
  EXPECT_TRUE(grad.AllClose(Tensor::FromVector({3, 2}, {1, 1, 0, 0, 2, 2})));
}

TEST(TensorTest, AddSliceInplace) {
  Tensor x = Tensor::Zeros({2, 4});
  Tensor patch = Tensor::Ones({2, 2});
  x.AddSliceInplace(1, 1, patch);
  EXPECT_TRUE(
      x.AllClose(Tensor::FromVector({2, 4}, {0, 1, 1, 0, 0, 1, 1, 0})));
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Tensor::Ones({2});
  Tensor b = a.Clone();
  b.set_flat(0, 5.0f);
  EXPECT_EQ(a.flat(0), 1.0f);
}

TEST(TensorTest, HasNonFinite) {
  Tensor a = Tensor::Ones({2});
  EXPECT_FALSE(a.HasNonFinite());
  a.set_flat(1, std::numeric_limits<float>::infinity());
  EXPECT_TRUE(a.HasNonFinite());
  Tensor b = Tensor::Zeros({1});
  b.set_flat(0, std::nanf(""));
  EXPECT_TRUE(b.HasNonFinite());
}

TEST(TensorTest, MaxAbsDiffAndAllClose) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 2.0f});
  Tensor b = Tensor::FromVector({2}, {1.0f, 2.5f});
  EXPECT_NEAR(Tensor::MaxAbsDiff(a, b), 0.5f, 1e-6f);
  EXPECT_TRUE(a.AllClose(b, 0.6f));
  EXPECT_FALSE(a.AllClose(b, 0.4f));
  EXPECT_FALSE(a.AllClose(Tensor::Ones({3})));
}

TEST(TensorTest, UnsqueezeSqueeze) {
  Tensor a = Tensor::Arange(6).Reshape({2, 3});
  EXPECT_EQ(a.Unsqueeze(0).shape(), (Shape{1, 2, 3}));
  EXPECT_EQ(a.Unsqueeze(-1).shape(), (Shape{2, 3, 1}));
  EXPECT_EQ(a.Unsqueeze(1).Squeeze(1).shape(), (Shape{2, 3}));
}

TEST(TensorTest, BroadcastToMaterializes) {
  Tensor a = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor b = a.BroadcastTo({2, 3});
  EXPECT_TRUE(
      b.AllClose(Tensor::FromVector({2, 3}, {1, 2, 3, 1, 2, 3})));
}

TEST(TensorTest, MatmulTransposeAMatchesExplicitTranspose) {
  Rng rng(41);
  // Rank-2, batched, and broadcast-batch cases.
  struct Case {
    Shape a, b;
  };
  for (const auto& c : {Case{{7, 5}, {7, 9}},
                        Case{{3, 7, 5}, {3, 7, 9}},
                        Case{{2, 1, 7, 5}, {1, 4, 7, 9}}}) {
    Tensor a = Tensor::RandUniform(c.a, -2, 2, &rng);
    Tensor b = Tensor::RandUniform(c.b, -2, 2, &rng);
    Tensor fast = a.MatmulTransposeA(b);
    Tensor ref = a.Transpose(a.dim() - 2, a.dim() - 1).Matmul(b);
    ASSERT_EQ(fast.shape(), ref.shape());
    EXPECT_EQ(Tensor::MaxAbsDiff(fast, ref), 0.0f)
        << ShapeToString(c.a) << " x " << ShapeToString(c.b);
  }
}

TEST(TensorTest, MatmulTransposeBMatchesExplicitTranspose) {
  Rng rng(42);
  struct Case {
    Shape a, b;
  };
  for (const auto& c : {Case{{7, 5}, {9, 5}},
                        Case{{3, 7, 5}, {3, 9, 5}},
                        Case{{2, 1, 7, 5}, {1, 4, 9, 5}}}) {
    Tensor a = Tensor::RandUniform(c.a, -2, 2, &rng);
    Tensor b = Tensor::RandUniform(c.b, -2, 2, &rng);
    Tensor bt = b.Transpose(b.dim() - 2, b.dim() - 1);
    {
      // Scalar kernels accumulate in the same order on both sides, so
      // the transposed mode is bit-exact against a materialized
      // transpose.
      common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
      Tensor fast = a.MatmulTransposeB(b);
      Tensor ref = a.Matmul(bt);
      ASSERT_EQ(fast.shape(), ref.shape());
      EXPECT_EQ(Tensor::MaxAbsDiff(fast, ref), 0.0f)
          << ShapeToString(c.a) << " x " << ShapeToString(c.b);
    }
    // The AVX2 dot kernel splits the reduction across lanes, so the two
    // strategies may differ in the last bits; values here are O(10), so
    // a k-scaled ulp bound is ~2e-5.
    Tensor fast = a.MatmulTransposeB(b);
    Tensor ref = a.Matmul(bt);
    ASSERT_EQ(fast.shape(), ref.shape());
    EXPECT_LE(Tensor::MaxAbsDiff(fast, ref), 1e-4f)
        << ShapeToString(c.a) << " x " << ShapeToString(c.b);
  }
}

TEST(TensorTest, AddScaledInplaceIsAxpy) {
  Tensor acc = Tensor::FromVector({4}, {1, 2, 3, 4});
  Tensor inc = Tensor::FromVector({4}, {10, 20, 30, 40});
  acc.AddScaledInplace(inc, -0.5f);
  EXPECT_TRUE(acc.AllClose(Tensor::FromVector({4}, {-4, -8, -12, -16})));
}

TEST(TensorTest, AddProductInplaceIsFma) {
  Tensor acc = Tensor::FromVector({4}, {1, 1, 1, 1});
  Tensor a = Tensor::FromVector({4}, {2, 3, 4, 5});
  Tensor b = Tensor::FromVector({4}, {10, 10, 10, 10});
  acc.AddProductInplace(a, b);
  EXPECT_TRUE(acc.AllClose(Tensor::FromVector({4}, {21, 31, 41, 51})));
}

TEST(TensorTest, FusedGradKernelsMatchOpChains) {
  Rng rng(43);
  Tensor x = Tensor::RandUniform({6, 37}, -3, 3, &rng);
  Tensor g = Tensor::RandUniform({6, 37}, -2, 2, &rng);

  Tensor y = x.Sigmoid();
  Tensor sig_chain = g.Mul(y).Mul(y.Neg().AddScalar(1.0f));
  EXPECT_EQ(Tensor::MaxAbsDiff(SigmoidGradKernel(y, g), sig_chain), 0.0f);

  Tensor t = x.Tanh();
  Tensor tanh_chain = g.Mul(t.Mul(t).Neg().AddScalar(1.0f));
  EXPECT_EQ(Tensor::MaxAbsDiff(TanhGradKernel(t, g), tanh_chain), 0.0f);

  Tensor relu_chain =
      g.Mul(x.Map([](float v) { return v > 0.0f ? 1.0f : 0.0f; }));
  // Values match exactly; only the sign of zeros may differ, which
  // MaxAbsDiff treats as equal.
  EXPECT_EQ(Tensor::MaxAbsDiff(ReluGradKernel(x, g), relu_chain), 0.0f);

  Tensor b = x.Abs().AddScalar(1.0f);
  Tensor div_chain = g.Mul(x).Div(b.Mul(b)).Neg();
  EXPECT_EQ(Tensor::MaxAbsDiff(DivGradRhsKernel(g, x, b), div_chain), 0.0f);
}

TEST(TensorTest, SoftmaxGradKernelMatchesChain) {
  Rng rng(44);
  Tensor x = Tensor::RandUniform({5, 9, 13}, -4, 4, &rng);
  Tensor g = Tensor::RandUniform({5, 9, 13}, -2, 2, &rng);
  Tensor y = x.Softmax(-1);
  // Chain form: y * (g - sum(g * y, last, keepdim)).
  Tensor dot = g.Mul(y).Sum(/*axis=*/2, /*keepdim=*/true);
  Tensor chain = y.Mul(g.Sub(dot));
  Tensor fused = SoftmaxGradKernel(y, g);
  ASSERT_EQ(fused.shape(), chain.shape());
  EXPECT_EQ(Tensor::MaxAbsDiff(fused, chain), 0.0f);
}

TEST(TensorTest, MapTMatchesMap) {
  Rng rng(45);
  Tensor x = Tensor::RandUniform({2049}, -3, 3, &rng);
  Tensor a = x.MapT([](float v) { return v * v + 1.0f; });
  Tensor b = x.Map([](float v) { return v * v + 1.0f; });
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
}

}  // namespace
}  // namespace tgcrn
