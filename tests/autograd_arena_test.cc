// Copyright 2026 TGCRN Reproduction Authors
// Steady-state memory plan tests: the common::Arena allocator, the
// autograd step arena (nodes bump-allocated per step, flat teardown,
// nothing live after the scope — run under ASan in CI), and persistent
// gradient buffers (ZeroGrad retains storage; a steady-state training step
// performs zero tensor allocations with the pool and arena on).
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/arena.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "optim/optimizer.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

using ag::Variable;

int64_t CounterValue(const char* name) {
  return obs::Registry::Global().GetCounter(name)->Value();
}

Variable Leaf(Shape shape, uint64_t seed, bool requires_grad = true) {
  Rng rng(seed);
  return Variable(Tensor::RandUniform(std::move(shape), -1.0f, 1.0f, &rng),
                  requires_grad);
}

// --- common::Arena --------------------------------------------------------

TEST(ArenaTest, BumpAllocatesAlignedAndTracksUsage) {
  common::Arena arena(/*block_bytes=*/1024);
  void* a = arena.Allocate(10, 8);
  void* b = arena.Allocate(24, 16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 16, 0u);
  EXPECT_NE(a, b);
  const auto stats = arena.stats();
  EXPECT_GE(stats.bytes_used, 34u);
  EXPECT_GE(stats.bytes_reserved, stats.bytes_used);
  EXPECT_EQ(stats.num_blocks, 1u);
}

TEST(ArenaTest, ResetReusesTheSameStorage) {
  common::Arena arena(/*block_bytes=*/1024);
  void* first = arena.Allocate(64, 8);
  arena.Reset();
  void* again = arena.Allocate(64, 8);
  // O(1) rewind: the first allocation after Reset lands on the same bytes.
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.stats().high_water_bytes, 64u);
  EXPECT_EQ(arena.stats().num_blocks, 1u);
}

TEST(ArenaTest, GrowsByBlocksAndServesOversizedRequests) {
  common::Arena arena(/*block_bytes=*/256);
  for (int i = 0; i < 8; ++i) arena.Allocate(100, 8);
  EXPECT_GT(arena.stats().num_blocks, 1u);
  // A request larger than the block size gets a dedicated block.
  void* big = arena.Allocate(5000, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 5000);  // the full extent must be writable
  const size_t blocks_before = arena.stats().num_blocks;
  arena.Reset();
  EXPECT_EQ(arena.stats().num_blocks, blocks_before);  // capacity retained
  EXPECT_EQ(arena.stats().bytes_used, 0u);
  arena.ReleaseBlocks();
  EXPECT_EQ(arena.stats().num_blocks, 0u);
  EXPECT_EQ(arena.stats().bytes_reserved, 0u);
}

// --- Step arena -----------------------------------------------------------

TEST(StepArenaTest, InteriorNodesGoThroughArenaAndAllDieAtScopeEnd) {
  ASSERT_TRUE(ag::AutogradArenaEnabled()) << "arena should default to on";
  const auto before = ag::internal::ThreadGraphArenaStats();
  const int64_t arena_nodes_before = CounterValue("arena.nodes_allocated");
  {
    ag::StepArenaScope step;
    Variable w = Leaf({8, 8}, 1);  // leaves stay heap-allocated
    Variable x = Leaf({8, 8}, 2, /*requires_grad=*/false);
    Variable y = ag::Sigmoid(ag::Matmul(x, w));
    ag::SumAll(y).Backward();
    ASSERT_TRUE(w.has_grad());

    const auto during = ag::internal::ThreadGraphArenaStats();
    EXPECT_TRUE(during.in_step);
    // Matmul + Sigmoid + SumAll = three interior nodes in the arena.
    EXPECT_EQ(during.live_nodes, 3);
    EXPECT_GT(during.bytes_used, 0u);
    EXPECT_EQ(during.nodes_allocated_total,
              before.nodes_allocated_total + 3);
  }
  const auto after = ag::internal::ThreadGraphArenaStats();
  EXPECT_FALSE(after.in_step);
  EXPECT_EQ(after.live_nodes, 0);  // flat teardown destroyed every node
  EXPECT_EQ(after.bytes_used, 0u);
  EXPECT_EQ(CounterValue("arena.nodes_allocated"), arena_nodes_before + 3);
}

TEST(StepArenaTest, HeapPathOutsideScopeStillWorks) {
  const auto before = ag::internal::ThreadGraphArenaStats();
  Variable w = Leaf({4, 4}, 3);
  Variable y = ag::SumAll(ag::Tanh(w));
  y.Backward();
  EXPECT_TRUE(w.has_grad());
  const auto after = ag::internal::ThreadGraphArenaStats();
  EXPECT_EQ(after.nodes_allocated_total, before.nodes_allocated_total);
}

TEST(StepArenaTest, ScopesNestAndResetOnlyAtOutermostExit) {
  ag::StepArenaScope outer;
  Variable w = Leaf({4, 4}, 4);
  Variable a = ag::Relu(w);
  {
    ag::StepArenaScope inner;
    Variable b = ag::SumAll(a);
    EXPECT_GE(ag::internal::ThreadGraphArenaStats().live_nodes, 2);
  }
  // Inner scope exit must not have torn down the graph: `a` is alive and
  // differentiable.
  EXPECT_TRUE(ag::internal::ThreadGraphArenaStats().in_step);
  ag::SumAll(a).Backward();
  EXPECT_TRUE(w.has_grad());
}

TEST(StepArenaTest, DisabledArenaFallsBackToHeapNodes) {
  ag::SetAutogradArenaEnabled(false);
  const auto before = ag::internal::ThreadGraphArenaStats();
  {
    ag::StepArenaScope step;
    Variable w = Leaf({4, 4}, 5);
    ag::SumAll(ag::Sigmoid(w)).Backward();
    EXPECT_TRUE(w.has_grad());
    EXPECT_FALSE(ag::internal::ThreadGraphArenaStats().in_step);
  }
  EXPECT_EQ(ag::internal::ThreadGraphArenaStats().nodes_allocated_total,
            before.nodes_allocated_total);
  ag::SetAutogradArenaEnabled(true);
}

TEST(StepArenaTest, NoGradGuardInsideScopeBuildsNoArenaNodes) {
  ag::StepArenaScope step;
  const auto before = ag::internal::ThreadGraphArenaStats();
  {
    ag::NoGradGuard guard;
    Variable w = Leaf({4, 4}, 6);
    Variable y = ag::Matmul(w, w);
    EXPECT_FALSE(y.needs_grad());
  }
  EXPECT_EQ(ag::internal::ThreadGraphArenaStats().nodes_allocated_total,
            before.nodes_allocated_total);
}

TEST(StepArenaTest, DetachedValueSurvivesScopeEnd) {
  Variable kept;
  {
    ag::StepArenaScope step;
    Variable w = Leaf({4, 4}, 7);
    kept = ag::Sigmoid(ag::Matmul(w, w)).Detach();
  }
  // The arena node is gone but the detached heap leaf shares the value
  // storage, so this read is valid (ASan would flag a use-after-free).
  EXPECT_EQ(kept.numel(), 16);
  EXPECT_GT(kept.value().SumAll(), 0.0f);
}

TEST(StepArenaTest, GradientsBitwiseIdenticalArenaOnOff) {
  auto run = [](bool arena_on) {
    ag::SetAutogradArenaEnabled(arena_on);
    ag::StepArenaScope step;
    Variable w = Leaf({16, 16}, 8);
    Variable x = Leaf({16, 16}, 9, /*requires_grad=*/false);
    Variable y = ag::MeanAll(ag::Tanh(ag::Matmul(x, w)));
    y.Backward();
    return w.grad().Clone();
  };
  const Tensor with_arena = run(true);
  const Tensor without_arena = run(false);
  ag::SetAutogradArenaEnabled(true);
  ASSERT_EQ(with_arena.shape(), without_arena.shape());
  EXPECT_EQ(std::memcmp(with_arena.data(), without_arena.data(),
                        static_cast<size_t>(with_arena.numel()) *
                            sizeof(float)),
            0);
}

TEST(StepArenaTest, ManyParentConcatSpillsAndTearsDownCleanly) {
  ag::StepArenaScope step;
  Variable w = Leaf({4, 8}, 10);
  std::vector<Variable> parts;
  for (int i = 0; i < 9; ++i) parts.push_back(ag::MulScalar(w, float(i)));
  Variable y = ag::SumAll(ag::Concat(parts, 0));  // 9 parents > inline cap
  y.Backward();
  ASSERT_TRUE(w.has_grad());
  // d/dw sum(concat_i(i * w)) = sum_i(i) = 36 everywhere.
  EXPECT_TRUE(w.grad().AllClose(Tensor::Full({4, 8}, 36.0f)));
}

// --- Persistent gradient buffers ------------------------------------------

TEST(GradRetentionTest, ZeroGradRetainsStorageAcrossSteps) {
  Variable w = Leaf({32, 32}, 11);  // 1024 elements
  Variable x = Leaf({32, 32}, 12, /*requires_grad=*/false);
  auto step = [&]() {
    w.ZeroGrad();
    ag::StepArenaScope scope;
    ag::SumAll(ag::Matmul(x, w)).Backward();
  };

  step();
  ASSERT_TRUE(w.has_grad());
  const float* grad_ptr = w.grad().data();
  const Tensor first = w.grad().Clone();

  const int64_t reuse_before = CounterValue("tensor.grad_buffer_reuse");
  for (int i = 0; i < 4; ++i) {
    step();
    ASSERT_TRUE(w.has_grad());
    // Same buffer, memset-reused: the data pointer never changes and the
    // values match the first step bitwise (same inputs each step).
    EXPECT_EQ(w.grad().data(), grad_ptr) << "grad buffer reallocated";
    EXPECT_EQ(std::memcmp(w.grad().data(), first.data(),
                          static_cast<size_t>(first.numel()) * sizeof(float)),
              0);
  }
  EXPECT_GE(CounterValue("tensor.grad_buffer_reuse"), reuse_before + 4);
}

TEST(GradRetentionTest, ZeroGradClearsFlagButKeepsBuffer) {
  Variable w = Leaf({16, 16}, 13);
  ag::SumAll(w).Backward();
  ASSERT_TRUE(w.has_grad());
  const float* ptr = w.grad().data();
  w.ZeroGrad();
  EXPECT_FALSE(w.has_grad());
  ag::SumAll(w).Backward();
  ASSERT_TRUE(w.has_grad());
  EXPECT_EQ(w.grad().data(), ptr);
  EXPECT_TRUE(w.grad().AllClose(Tensor::Ones({16, 16})));
}

// The headline guarantee: with the buffer pool and the arena on, a
// steady-state training step allocates no tensor storage at all — graph
// nodes come from the arena, activations and interior grads from the pool,
// and leaf grads from the retained buffers.
TEST(GradRetentionTest, SteadyStateStepMakesZeroTensorAllocations) {
  TensorBufferPool::Global().SetEnabled(true);
  ASSERT_TRUE(ag::AutogradArenaEnabled());

  Variable w1 = Leaf({64, 64}, 14);
  Variable w2 = Leaf({64, 64}, 15);
  Variable x = Leaf({16, 64}, 16, /*requires_grad=*/false);
  // Explicit output gradient: avoids the sub-pool-threshold scalar a
  // SumAll loss would allocate each step. Every tensor in the step is
  // >= 1024 elements, comfortably pool-served.
  const Tensor grad_out = Tensor::Ones({16, 64});

  auto step = [&]() {
    w1.ZeroGrad();
    w2.ZeroGrad();
    ag::StepArenaScope scope;
    Variable h = ag::Sigmoid(ag::Matmul(x, w1));
    Variable y = ag::Tanh(ag::Matmul(h, w2));
    y.Backward(grad_out);
  };

  for (int i = 0; i < 3; ++i) step();  // warm the pool and the arena

  const int64_t allocs_before = CounterValue("tensor.allocations");
  const int64_t reuse_before = CounterValue("tensor.grad_buffer_reuse");
  for (int i = 0; i < 5; ++i) step();
  EXPECT_EQ(CounterValue("tensor.allocations"), allocs_before)
      << "steady-state step allocated tensor storage";
  EXPECT_EQ(CounterValue("tensor.grad_buffer_reuse"), reuse_before + 10)
      << "expected both leaf grads reused every step";

  TensorBufferPool::Global().ReloadEnabledFromEnv();
}

// --- In-place Adam over the stable buffers --------------------------------

TEST(AdamInPlaceTest, ParameterStorageIsStableAcrossSteps) {
  Variable w = Leaf({32, 32}, 17);
  const float* value_ptr = w.value().data();
  optim::Adam adam({w}, /*lr=*/1e-2f);
  for (int i = 0; i < 3; ++i) {
    w.ZeroGrad();
    ag::StepArenaScope scope;
    ag::MeanAll(ag::Mul(w, w)).Backward();
    adam.Step();
  }
  EXPECT_EQ(w.value().data(), value_ptr) << "Adam reallocated the weights";
  EXPECT_EQ(adam.step_count(), 3);
}

TEST(AdamInPlaceTest, FoldedWeightDecayMatchesMaterializedFormula) {
  // Reference: the pre-fold computation g' = g + wd * w via explicit
  // temporaries, then the textbook Adam update. Must match bitwise.
  const float lr = 1e-3f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f,
              wd = 1e-4f;
  Rng rng(18);
  const Tensor w0 = Tensor::RandUniform({40}, -1.0f, 1.0f, &rng);
  const Tensor g = Tensor::RandUniform({40}, -1.0f, 1.0f, &rng);

  Variable p(w0.Clone(), /*requires_grad=*/true);
  ag::SumAll(ag::Mul(p, Variable(g))).Backward();  // dL/dp == g
  optim::Adam adam({p}, lr, beta1, beta2, eps, wd);
  adam.Step();

  const Tensor gp = g.Add(w0.MulScalar(wd));
  std::vector<float> expected(40);
  const float bias1 = 1.0f - beta1;  // step 1
  const float bias2 = 1.0f - beta2;
  for (int j = 0; j < 40; ++j) {
    const float m = (1.0f - beta1) * gp.data()[j];
    const float v = (1.0f - beta2) * gp.data()[j] * gp.data()[j];
    const float m_hat = m / bias1;
    const float v_hat = v / bias2;
    expected[j] = w0.data()[j] - lr * m_hat / (std::sqrt(v_hat) + eps);
  }
  EXPECT_EQ(std::memcmp(p.value().data(), expected.data(),
                        40 * sizeof(float)),
            0)
      << "folded weight decay changed the update bitwise";
}

}  // namespace
}  // namespace tgcrn
