// Copyright 2026 TGCRN Reproduction Authors
// Property sweeps over the dataset pipeline: for a grid of (P, Q, split
// fractions) the windowing/split/scaling invariants must hold on arbitrary
// data - chronology, coverage, shape contracts, calendar alignment.
#include <tuple>

#include <gtest/gtest.h>

#include "data/dataset.h"

namespace tgcrn {
namespace {

data::SpatioTemporalData TimeCodedData(int64_t total, int64_t n, int64_t d,
                                       int64_t spd) {
  data::SpatioTemporalData data;
  data.values = Tensor::Zeros({total, n, d});
  for (int64_t t = 0; t < total; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t c = 0; c < d; ++c) {
        // Encode the time step in the value so windows self-identify.
        data.values.set({t, i, c}, static_cast<float>(t) + 0.001f * i);
      }
    }
  }
  data.steps_per_day = spd;
  for (int64_t t = 0; t < total; ++t) {
    data.slot_of_day.push_back(t % spd);
    data.day_of_week.push_back((t / spd) % 7);
  }
  return data;
}

using Param = std::tuple<int64_t, int64_t, double, double>;  // P, Q, tf, vf

class DatasetGridTest : public ::testing::TestWithParam<Param> {};

TEST_P(DatasetGridTest, WindowInvariantsHold) {
  const auto& [p, q, train_frac, val_frac] = GetParam();
  const int64_t total = 300, n = 3, d = 2, spd = 24;
  data::ForecastDataset::Options options;
  options.input_steps = p;
  options.output_steps = q;
  options.train_fraction = train_frac;
  options.val_fraction = val_frac;
  data::ForecastDataset dataset(TimeCodedData(total, n, d, spd), options);

  // Coverage: every window lands in exactly one split.
  EXPECT_EQ(dataset.NumTrainSamples() + dataset.NumValSamples() +
                dataset.NumTestSamples(),
            total - (p + q) + 1);

  // Shape contracts and calendar alignment for a probe batch per split.
  for (auto split : {data::ForecastDataset::Split::kTrain,
                     data::ForecastDataset::Split::kVal,
                     data::ForecastDataset::Split::kTest}) {
    const auto batch = dataset.MakeBatch(split, {0});
    ASSERT_EQ(batch.x.shape(), (Shape{1, p, n, d}));
    ASSERT_EQ(batch.y.shape(), (Shape{1, q, n, d}));
    // The y tensor's encoded time must be contiguous with x's and the
    // slot features must match the encoded time.
    const auto t0 = static_cast<int64_t>(batch.y.at({0, 0, 0, 0}));
    for (int64_t h = 0; h < q; ++h) {
      const auto th = static_cast<int64_t>(batch.y.at({0, h, 0, 0}));
      EXPECT_EQ(th, t0 + h);
      EXPECT_EQ(batch.y_slots[0][h], th % spd);
      EXPECT_EQ(batch.y_days[0][h], (th / spd) % 7);
    }
  }

  // Chronology across splits: last train target < first val target <
  // first test target.
  auto first_target = [&](data::ForecastDataset::Split split) {
    return static_cast<int64_t>(
        dataset.MakeBatch(split, {0}).y.at({0, 0, 0, 0}));
  };
  auto last_target = [&](data::ForecastDataset::Split split, int64_t count) {
    const auto b = dataset.MakeBatch(split, {count - 1});
    return static_cast<int64_t>(b.y.at({0, q - 1, 0, 0}));
  };
  EXPECT_LT(last_target(data::ForecastDataset::Split::kTrain,
                        dataset.NumTrainSamples()),
            first_target(data::ForecastDataset::Split::kVal) + q);
  EXPECT_LT(first_target(data::ForecastDataset::Split::kVal),
            first_target(data::ForecastDataset::Split::kTest));

  // Scaling round trip on the probe batch.
  const auto batch =
      dataset.MakeBatch(data::ForecastDataset::Split::kTrain, {0});
  EXPECT_TRUE(dataset.scaler()
                  .InverseTransform(batch.y_scaled)
                  .AllClose(batch.y, 0.5f));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DatasetGridTest,
    ::testing::Values(Param{4, 4, 0.7, 0.1}, Param{12, 12, 0.7, 0.1},
                      Param{4, 1, 0.6, 0.2}, Param{1, 4, 0.8, 0.1},
                      Param{6, 3, 0.5, 0.25}, Param{12, 4, 0.7, 0.15}));

TEST(DatasetEdgeCaseTest, MinimalWindowCounts) {
  // Just enough data for one window per split.
  data::ForecastDataset::Options options;
  options.input_steps = 2;
  options.output_steps = 2;
  options.train_fraction = 0.6;
  options.val_fraction = 0.2;
  data::ForecastDataset dataset(TimeCodedData(20, 2, 1, 4), options);
  EXPECT_GT(dataset.NumTrainSamples(), 0);
  EXPECT_GT(dataset.NumValSamples(), 0);
  EXPECT_GT(dataset.NumTestSamples(), 0);
}

}  // namespace
}  // namespace tgcrn
