// Copyright 2026 TGCRN Reproduction Authors
// Integration tests of the training harness: end-to-end improvement over
// epochs, early stopping, best-weight restoration, and evaluation parity.
#include "core/trainer.h"

#include <chrono>

#include <gtest/gtest.h>

#include "core/tgcrn.h"
#include "datagen/metro_sim.h"
#include "obs/metrics.h"

namespace tgcrn {
namespace {

class TrainerFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 6;
    config.num_days = 10;
    config.seed = 77;
    config.target_mean_inflow = 50.0;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    dataset_ = new data::ForecastDataset(std::move(sim.data), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static core::TGCRNConfig SmallConfig() {
    core::TGCRNConfig config;
    config.num_nodes = 6;
    config.input_dim = 2;
    config.output_dim = 2;
    config.horizon = 2;
    config.hidden_dim = 8;
    config.num_layers = 1;
    config.node_embed_dim = 6;
    config.time_embed_dim = 4;
    config.steps_per_day = 72;
    return config;
  }

  static data::ForecastDataset* dataset_;
};

data::ForecastDataset* TrainerFixture::dataset_ = nullptr;

TEST_F(TrainerFixture, TrainingImprovesOverUntrained) {
  Rng rng(1);
  core::TGCRN model(SmallConfig(), &rng);
  const auto untrained = metrics::AverageMetrics(core::EvaluateModel(
      &model, *dataset_, data::ForecastDataset::Split::kTest, {}));
  core::TrainConfig config;
  config.epochs = 4;
  config.lr = 6e-3f;
  config.max_batches_per_epoch = 30;
  config.verbose = false;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);
  EXPECT_LT(result.average.mae, untrained.mae);
  EXPECT_EQ(result.epochs_run, 4);
  EXPECT_EQ(result.val_mae_history.size(), 4u);
  EXPECT_EQ(result.num_parameters, model.NumParameters());
  EXPECT_GT(result.seconds_per_epoch, 0.0);
}

TEST_F(TrainerFixture, ValidationMaeTrendsDownward) {
  Rng rng(2);
  core::TGCRN model(SmallConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 5;
  config.lr = 6e-3f;
  config.max_batches_per_epoch = 30;
  config.verbose = false;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);
  EXPECT_LT(result.val_mae_history.back(), result.val_mae_history.front());
  EXPECT_LT(result.train_loss_history.back(),
            result.train_loss_history.front());
}

TEST_F(TrainerFixture, EarlyStoppingHaltsTraining) {
  Rng rng(3);
  core::TGCRN model(SmallConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 50;
  config.patience = 1;  // stop at the first non-improvement
  config.lr = 0.5f;     // absurd LR forces val to bounce
  config.max_batches_per_epoch = 10;
  config.verbose = false;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);
  EXPECT_LT(result.epochs_run, 50);
}

TEST_F(TrainerFixture, BestWeightsAreRestored) {
  // With an oscillating (too-large) LR the best validation epoch is
  // usually not the last. After TrainAndEvaluate returns, the model must
  // hold the weights of the best epoch: re-evaluating the validation split
  // must reproduce min(val_mae_history) exactly.
  Rng rng(4);
  core::TGCRN model(SmallConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 5;
  config.lr = 0.3f;  // deliberately unstable
  config.max_batches_per_epoch = 20;
  config.verbose = false;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);
  double best = result.val_mae_history[0];
  for (double v : result.val_mae_history) best = std::min(best, v);
  const auto val_now = metrics::AverageMetrics(core::EvaluateModel(
      &model, *dataset_, data::ForecastDataset::Split::kVal, {}));
  // EvaluateModel averages per-horizon MAEs while the trainer computes one
  // pooled MAE; with equal-sized horizons these agree to rounding.
  EXPECT_NEAR(val_now.mae, best, 0.05 * best);
}

TEST_F(TrainerFixture, EvaluateModelMatchesTrainResult) {
  Rng rng(5);
  core::TGCRN model(SmallConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 2;
  config.max_batches_per_epoch = 15;
  config.verbose = false;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);
  const auto evaluated = core::EvaluateModel(
      &model, *dataset_, data::ForecastDataset::Split::kTest, {});
  ASSERT_EQ(evaluated.size(), result.per_horizon.size());
  for (size_t h = 0; h < evaluated.size(); ++h) {
    EXPECT_NEAR(evaluated[h].mae, result.per_horizon[h].mae, 1e-9);
  }
}

TEST_F(TrainerFixture, MaxBatchesCapsEpochWork) {
  Rng rng(6);
  core::TGCRN model(SmallConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 2;
  config.verbose = false;
  const auto t0 = std::chrono::steady_clock::now();
  core::TrainAndEvaluate(&model, *dataset_, config);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 10.0);  // 2 batches + eval must be quick
}

TEST_F(TrainerFixture, EvaluationRunsInInferenceMode) {
  // EvaluateModel wraps the forward passes in ag::NoGradGuard, so a full
  // eval epoch must not record a single autograd op.
  Rng rng(7);
  core::TGCRN model(SmallConfig(), &rng);
  obs::Counter* fwd =
      obs::Registry::Global().GetCounter("autograd.forward_ops");
  const int64_t before = fwd->Value();
  const auto evaluated = core::EvaluateModel(
      &model, *dataset_, data::ForecastDataset::Split::kVal, {});
  EXPECT_EQ(fwd->Value(), before) << "eval built autograd graph nodes";
  EXPECT_FALSE(evaluated.empty());
  // Training afterwards records ops again.
  core::TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 2;
  config.verbose = false;
  core::TrainAndEvaluate(&model, *dataset_, config);
  EXPECT_GT(fwd->Value(), before);
}

}  // namespace
}  // namespace tgcrn
