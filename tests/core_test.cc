// Copyright 2026 TGCRN Reproduction Authors
// Tests for the paper's core machinery: TagSL graph construction (Eq 6-9),
// time-distance sampling (Algorithm 1) and the discrepancy loss (Eq 3),
// GCGRU recurrence (Eq 13-16), and the full TGCRN encoder-decoder.
#include <cmath>

#include <gtest/gtest.h>

#include "core/gcgru.h"
#include "core/tagsl.h"
#include "core/tgcrn.h"
#include "core/time_discrepancy.h"
#include "core/time_encoders.h"
#include "graph/graph_ops.h"
#include "optim/optimizer.h"

namespace tgcrn {
namespace {

using ag::Variable;

// --- Time encoders -----------------------------------------------------------

TEST(TimeEncodersTest, DiscreteEmbeddingShapesAndGrad) {
  Rng rng(1);
  core::DiscreteTimeEmbedding enc(72, 8, &rng);
  Variable e = enc.Encode({0, 5, 71});
  EXPECT_EQ(e.shape(), (Shape{3, 8}));
  ag::SumAll(e).Backward();
  EXPECT_TRUE(enc.weight().has_grad());
  EXPECT_EQ(enc.num_slots(), 72);
}

TEST(TimeEncodersTest, Time2vecPeriodicChannels) {
  Rng rng(2);
  core::Time2vecEncoder enc(6, 72, &rng);
  Variable a = enc.Encode({10});
  EXPECT_EQ(a.shape(), (Shape{1, 6}));
  // Periodic channels are bounded by [-1, 1].
  for (int64_t c = 1; c < 6; ++c) {
    EXPECT_LE(std::fabs(a.value().at({0, c})), 1.0f);
  }
  // Gradients reach the frequency parameters.
  ag::SumAll(ag::Mul(a, a)).Backward();
  for (const auto& p : enc.Parameters()) EXPECT_TRUE(p.has_grad());
}

TEST(TimeEncodersTest, ContinuousEncoderNormAndDeterminism) {
  Rng rng(3);
  core::ContinuousTimeEncoder enc(8, 72, &rng);
  Variable a = enc.Encode({7});
  Variable b = enc.Encode({7});
  EXPECT_TRUE(a.value().AllClose(b.value(), 0.0f));
  // cos^2 + sin^2 structure: squared norm = half * (1/half) = 1.
  EXPECT_NEAR(a.value().Mul(a.value()).SumAll(), 1.0f, 1e-4f);
}

// --- TagSL -------------------------------------------------------------------

core::TagSL::Options TagslOptions(int64_t n, bool use_time, bool use_pdf) {
  core::TagSL::Options options;
  options.num_nodes = n;
  options.node_dim = 6;
  options.alpha = 0.3f;
  options.use_time = use_time;
  options.use_pdf = use_pdf;
  return options;
}

TEST(TagSLTest, GraphIsRowStochastic) {
  Rng rng(4);
  core::DiscreteTimeEmbedding enc(72, 4, &rng);
  core::TagSL tagsl(TagslOptions(5, true, true), &enc, &rng);
  Variable x(Tensor::RandUniform({3, 5, 2}, -1, 1, &rng));
  Variable adj = tagsl.BuildGraph(x, {1, 2, 3}, {0, 1, 2});
  EXPECT_EQ(adj.shape(), (Shape{3, 5, 5}));
  for (int64_t b = 0; b < 3; ++b) {
    EXPECT_TRUE(graph::IsRowStochastic(adj.value().Slice(0, b, b + 1)
                                           .Squeeze(0)))
        << "batch " << b;
  }
}

TEST(TagSLTest, TimeAwarenessChangesGraphOverTime) {
  // With identical node states, different time slots must still produce
  // different adjacencies (the time-aware property) ...
  Rng rng(5);
  core::DiscreteTimeEmbedding enc(72, 4, &rng);
  core::TagSL tagsl(TagslOptions(4, true, true), &enc, &rng);
  Variable x(Tensor::RandUniform({1, 4, 2}, -1, 1, &rng));
  Tensor a1 = tagsl.BuildRawGraph(x, {10}, {9}).value();
  Tensor a2 = tagsl.BuildRawGraph(x, {40}, {39}).value();
  EXPECT_GT(Tensor::MaxAbsDiff(a1, a2), 1e-6f);
}

TEST(TagSLTest, StaticVariantIgnoresTime) {
  // ... while the self-learning ablation (w/o tagsl) must not.
  Rng rng(6);
  core::TagSL tagsl(TagslOptions(4, false, false), nullptr, &rng);
  Variable x(Tensor::RandUniform({1, 4, 2}, -1, 1, &rng));
  Tensor a1 = tagsl.BuildRawGraph(x, {10}, {9}).value();
  Tensor a2 = tagsl.BuildRawGraph(x, {40}, {39}).value();
  EXPECT_NEAR(Tensor::MaxAbsDiff(a1, a2), 0.0f, 1e-7f);
}

TEST(TagSLTest, PdfReactsToNodeState) {
  // With the periodic discriminant, different node states (weekday vs
  // weekend patterns) modulate the same structural graph.
  Rng rng(7);
  core::DiscreteTimeEmbedding enc(72, 4, &rng);
  core::TagSL with_pdf(TagslOptions(4, true, true), &enc, &rng);
  Variable xa(Tensor::RandUniform({1, 4, 2}, -1, 1, &rng));
  Variable xb(Tensor::RandUniform({1, 4, 2}, -1, 1, &rng));
  Tensor a = with_pdf.BuildRawGraph(xa, {10}, {9}).value();
  Tensor b = with_pdf.BuildRawGraph(xb, {10}, {9}).value();
  EXPECT_GT(Tensor::MaxAbsDiff(a, b), 1e-6f);

  core::TagSL no_pdf(TagslOptions(4, true, false), &enc, &rng);
  Tensor c = no_pdf.BuildRawGraph(xa, {10}, {9}).value();
  Tensor d = no_pdf.BuildRawGraph(xb, {10}, {9}).value();
  EXPECT_NEAR(Tensor::MaxAbsDiff(c, d), 0.0f, 1e-7f);
}

TEST(TagSLTest, GradientsReachEmbeddings) {
  Rng rng(8);
  core::DiscreteTimeEmbedding enc(72, 4, &rng);
  core::TagSL tagsl(TagslOptions(4, true, true), &enc, &rng);
  Variable x(Tensor::RandUniform({2, 4, 2}, -1, 1, &rng));
  Variable adj = tagsl.BuildGraph(x, {3, 4}, {2, 3});
  ag::SumAll(ag::Mul(adj, adj)).Backward();
  EXPECT_TRUE(tagsl.node_embedding().has_grad());
  EXPECT_TRUE(enc.weight().has_grad());
}

// --- Time discrepancy learning ----------------------------------------------

TEST(TimeDiscrepancyTest, CircularDistance) {
  EXPECT_EQ(core::CircularSlotDistance(0, 71, 72), 1);
  EXPECT_EQ(core::CircularSlotDistance(0, 36, 72), 36);
  EXPECT_EQ(core::CircularSlotDistance(10, 10, 72), 0);
  EXPECT_EQ(core::CircularSlotDistance(70, 2, 72), 4);
}

std::vector<std::vector<int64_t>> MakeSlotRows(int64_t rows, int64_t len,
                                               int64_t spd, Rng* rng) {
  std::vector<std::vector<int64_t>> out;
  for (int64_t r = 0; r < rows; ++r) {
    const int64_t start = rng->UniformInt(0, spd - 1);
    std::vector<int64_t> row;
    for (int64_t i = 0; i < len; ++i) row.push_back((start + i) % spd);
    out.push_back(std::move(row));
  }
  return out;
}

// Property sweep over seeds: Algorithm 1's invariants hold.
class SamplingPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SamplingPropertyTest, AlgorithmOneInvariants) {
  Rng rng(GetParam());
  const int64_t spd = 72, len = 8, gamma = 2;
  const auto rows = MakeSlotRows(6, len, spd, &rng);
  const auto s = core::SampleTimeDistances(rows, gamma, &rng);
  ASSERT_EQ(s.anchor.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    // Every sample is a valid slot id.
    for (int64_t v : {s.anchor[i], s.adjacent[i], s.mid[i], s.distant[i]}) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, spd);
    }
    // Anchor and adjacent come from row i and are within gamma slots
    // (circularly, because windows wrap midnight).
    EXPECT_LE(core::CircularSlotDistance(s.anchor[i], s.adjacent[i], spd),
              gamma);
    // Mid-distance lies beyond the adjacent range but within the window.
    EXPECT_GT(core::CircularSlotDistance(s.anchor[i], s.mid[i], spd), gamma);
    EXPECT_LT(core::CircularSlotDistance(s.anchor[i], s.mid[i], spd), len);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplingPropertyTest,
                         ::testing::Range(1, 13));

TEST(TimeDiscrepancyTest, LossIsZeroForPerfectlyProportionalEmbedding) {
  // Build a 1-D "ruler" embedding where distance(slot_a, slot_b) in
  // embedding space is exactly proportional to |a - b|: ratios all equal,
  // loss ~ 0. Use a short non-wrapping window so circular == linear.
  Rng rng(20);
  core::DiscreteTimeEmbedding enc(72, 1, &rng);
  Tensor ruler(Shape{72, 1});
  for (int64_t i = 0; i < 72; ++i) {
    ruler.set_flat(i, 0.5f * static_cast<float>(i));
  }
  enc.Parameters()[0].SetValue(ruler);
  std::vector<std::vector<int64_t>> rows = {{10, 11, 12, 13, 14, 15, 16, 17},
                                            {20, 21, 22, 23, 24, 25, 26, 27}};
  Rng srng(21);
  Variable loss =
      core::TimeDiscrepancyLossFromRows(enc, rows, 2, 72, &srng);
  EXPECT_NEAR(loss.value().item(), 0.0f, 2e-2f);
}

TEST(TimeDiscrepancyTest, LossPenalizesNonProportionalEmbedding) {
  Rng rng(22);
  core::DiscreteTimeEmbedding enc(72, 4, &rng);  // random table
  std::vector<std::vector<int64_t>> rows = {{10, 11, 12, 13, 14, 15, 16, 17},
                                            {30, 31, 32, 33, 34, 35, 36, 37}};
  Rng srng(23);
  Variable loss =
      core::TimeDiscrepancyLossFromRows(enc, rows, 2, 72, &srng);
  EXPECT_GT(loss.value().item(), 1e-3f);
  loss.Backward();
  EXPECT_TRUE(enc.weight().has_grad());
}

TEST(TimeDiscrepancyTest, TrainingTableReducesLoss) {
  // A few gradient steps on L_time alone must reduce it.
  Rng rng(24);
  core::DiscreteTimeEmbedding enc(24, 4, &rng);
  optim::SGD sgd(enc.Parameters(), 0.05f);
  Rng srng(25);
  auto eval_loss = [&]() {
    Rng fixed(42);
    const auto rows = MakeSlotRows(8, 8, 24, &fixed);
    Rng sample_rng(43);
    return core::TimeDiscrepancyLossFromRows(enc, rows, 2, 24, &sample_rng)
        .value()
        .item();
  };
  const float before = eval_loss();
  for (int step = 0; step < 60; ++step) {
    enc.ZeroGrad();
    const auto rows = MakeSlotRows(8, 8, 24, &srng);
    Variable loss =
        core::TimeDiscrepancyLossFromRows(enc, rows, 2, 24, &srng);
    loss.Backward();
    sgd.Step();
  }
  EXPECT_LT(eval_loss(), before);
}

// --- GCGRU -------------------------------------------------------------------

TEST(GCGRUTest, ShapeContractAndBounds) {
  Rng rng(30);
  core::GCGRUCell cell(2, 8, 6, 4, &rng);
  Variable x(Tensor::RandUniform({3, 5, 2}, -1, 1, &rng));
  Variable h(Tensor::Zeros({3, 5, 8}));
  Variable adj(Tensor::Full({3, 5, 5}, 0.2f));  // uniform row-stochastic
  Variable node_embed(Tensor::RandUniform({5, 6}, -1, 1, &rng));
  Variable time_embed(Tensor::RandUniform({3, 4}, -1, 1, &rng));
  Variable h1 = cell.Forward(x, h, adj, node_embed, time_embed);
  EXPECT_EQ(h1.shape(), (Shape{3, 5, 8}));
  EXPECT_LE(h1.value().MaxAll(), 1.0f);
  EXPECT_GE(h1.value().MinAll(), -1.0f);
}

TEST(GCGRUTest, FactorizedWeightsMatchConcatenatedFormulation) {
  // The split pools must reproduce the paper's concatenated E_hat @ W_pool
  // exactly: out = s (E_nu Wp_nu) + s (E_tau Wp_tau) == s ([E_nu;E_tau]
  // [Wp_nu;Wp_tau]). Verify the linear part numerically via the full cell:
  // a cell with zeroed time pools must equal a cell built without time.
  Rng rng(301);
  core::GCGRUCell with_time(1, 4, 3, 2, &rng);
  // Zero the time pools.
  for (auto& [name, p] : with_time.NamedParameters()) {
    if (name.find("time") != std::string::npos) {
      p.SetValue(Tensor::Zeros(p.value().shape()));
    }
  }
  Rng rng2(301);  // same seed -> identical node pools (created first)
  core::GCGRUCell no_time(1, 4, 3, 0, &rng2);
  no_time.CopyParametersFrom(no_time);  // no-op; keeps API exercised
  // Copy node-pool values from with_time so both cells share weights.
  auto src = with_time.NamedParameters();
  for (auto& [name, p] : no_time.NamedParameters()) {
    for (auto& [sname, sp] : src) {
      if (sname == name) p.SetValue(sp.value().Clone());
    }
  }
  Variable x(Tensor::RandUniform({2, 3, 1}, -1, 1, &rng));
  Variable h(Tensor::RandUniform({2, 3, 4}, -0.5, 0.5, &rng));
  Variable adj(Tensor::Full({2, 3, 3}, 1.0f / 3.0f));
  Variable node_embed(Tensor::RandUniform({3, 3}, -1, 1, &rng));
  Variable time_embed(Tensor::RandUniform({2, 2}, -1, 1, &rng));
  Tensor a = with_time.Forward(x, h, adj, node_embed, time_embed).value();
  Tensor b = no_time.Forward(x, h, adj, node_embed, {}).value();
  EXPECT_TRUE(a.AllClose(b, 1e-5f));
}

TEST(GCGRUTest, GraphActuallyMixesNodes) {
  // With the identity graph node 0's state ignores node 1; with a mixing
  // graph it must not.
  Rng rng(31);
  core::GCGRUCell cell(1, 4, 3, 0, &rng);
  Tensor xa = Tensor::Zeros({1, 2, 1});
  Tensor xb = Tensor::Zeros({1, 2, 1});
  xb.set({0, 1, 0}, 5.0f);  // perturb node 1 only
  Variable h(Tensor::Zeros({1, 2, 4}));
  Variable node_embed(Tensor::RandUniform({2, 3}, -1, 1, &rng));

  Variable eye(Tensor::Eye(2).Unsqueeze(0));
  Tensor ha_eye =
      cell.Forward(Variable(xa), h, eye, node_embed, {}).value();
  Tensor hb_eye =
      cell.Forward(Variable(xb), h, eye, node_embed, {}).value();
  // Node 0 rows identical under identity adjacency.
  EXPECT_TRUE(ha_eye.Slice(1, 0, 1).AllClose(hb_eye.Slice(1, 0, 1), 1e-6f));

  Variable mix(Tensor::Full({1, 2, 2}, 0.5f));
  Tensor ha_mix =
      cell.Forward(Variable(xa), h, mix, node_embed, {}).value();
  Tensor hb_mix =
      cell.Forward(Variable(xb), h, mix, node_embed, {}).value();
  EXPECT_FALSE(ha_mix.Slice(1, 0, 1).AllClose(hb_mix.Slice(1, 0, 1), 1e-4f));
}

TEST(GCGRUTest, NodeAdaptiveWeightsDiffer) {
  // Different node-embedding rows => different responses for identical
  // inputs (the node-specific patterns of Eq 13-16).
  Rng rng(32);
  core::GCGRUCell cell(1, 4, 3, 0, &rng);
  Variable x(Tensor::Ones({1, 2, 1}));
  Variable h(Tensor::Zeros({1, 2, 4}));
  Variable adj(Tensor::Eye(2).Unsqueeze(0));
  Tensor node_embed(Shape{2, 3});
  for (int64_t c = 0; c < 3; ++c) {
    node_embed.set({0, c}, 1.0f);
    node_embed.set({1, c}, -1.0f);
  }
  Tensor out = cell.Forward(x, h, adj, Variable(node_embed), {}).value();
  EXPECT_FALSE(out.Slice(1, 0, 1).AllClose(out.Slice(1, 1, 2), 1e-4f));
}

TEST(GCGRUTest, TimeEmbeddingChangesDynamics) {
  // Different time representations at the same state => different hidden
  // updates (the time-aware weights of Eq 12).
  Rng rng(34);
  core::GCGRUCell cell(1, 4, 3, 2, &rng);
  Variable x(Tensor::Ones({1, 2, 1}));
  Variable h(Tensor::Zeros({1, 2, 4}));
  Variable adj(Tensor::Full({1, 2, 2}, 0.5f));
  Variable node_embed(Tensor::RandUniform({2, 3}, -1, 1, &rng));
  Variable t1(Tensor::RandUniform({1, 2}, -1, 1, &rng));
  Variable t2(Tensor::RandUniform({1, 2}, -1, 1, &rng));
  Tensor a = cell.Forward(x, h, adj, node_embed, t1).value();
  Tensor b = cell.Forward(x, h, adj, node_embed, t2).value();
  EXPECT_GT(Tensor::MaxAbsDiff(a, b), 1e-6f);
}

TEST(GCGRUTest, BpttGradientsFlow) {
  Rng rng(33);
  core::GCGRUCell cell(2, 4, 3, 2, &rng);
  Variable x(Tensor::RandUniform({1, 3, 2}, -1, 1, &rng), true);
  Variable h(Tensor::Zeros({1, 3, 4}));
  Variable adj(Tensor::Full({1, 3, 3}, 1.0f / 3.0f));
  Variable node_embed(Tensor::RandUniform({3, 3}, -1, 1, &rng), true);
  Variable time_embed(Tensor::RandUniform({1, 2}, -1, 1, &rng), true);
  // Three steps feeding the same x.
  Variable state = h;
  for (int i = 0; i < 3; ++i) {
    state = cell.Forward(x, state, adj, node_embed, time_embed);
  }
  ag::SumAll(state).Backward();
  EXPECT_TRUE(x.has_grad());
  EXPECT_GT(x.grad().Abs().SumAll(), 0.0f);
  EXPECT_TRUE(node_embed.has_grad());
  EXPECT_TRUE(time_embed.has_grad());
  for (const auto& p : cell.Parameters()) EXPECT_TRUE(p.has_grad());
}

// --- TGCRN end to end ---------------------------------------------------------

core::TGCRNConfig SmallConfig(int64_t n = 4) {
  core::TGCRNConfig config;
  config.num_nodes = n;
  config.input_dim = 2;
  config.output_dim = 2;
  config.horizon = 3;
  config.hidden_dim = 6;
  config.num_layers = 2;
  config.node_embed_dim = 5;
  config.time_embed_dim = 4;
  config.steps_per_day = 24;
  return config;
}

data::Batch MakeFakeBatch(int64_t b, int64_t p, int64_t q, int64_t n,
                          int64_t d, int64_t spd, uint64_t seed) {
  Rng rng(seed);
  data::Batch batch;
  batch.x = Tensor::RandUniform({b, p, n, d}, -1, 1, &rng);
  batch.y = Tensor::RandUniform({b, q, n, d}, -1, 1, &rng);
  batch.y_scaled = batch.y.Clone();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t start = rng.UniformInt(0, spd - 1);
    std::vector<int64_t> xs, ys, xd, yd;
    for (int64_t t = 0; t < p; ++t) xs.push_back((start + t) % spd);
    for (int64_t t = 0; t < q; ++t) ys.push_back((start + p + t) % spd);
    xd.assign(p, 0);
    yd.assign(q, 0);
    batch.x_slots.push_back(xs);
    batch.y_slots.push_back(ys);
    batch.x_days.push_back(xd);
    batch.y_days.push_back(yd);
  }
  return batch;
}

TEST(TGCRNTest, ForwardShapes) {
  Rng rng(40);
  core::TGCRN model(SmallConfig(), &rng);
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 41);
  Variable pred = model.Forward(batch);
  EXPECT_EQ(pred.shape(), (Shape{2, 3, 4, 2}));
  EXPECT_FALSE(pred.value().HasNonFinite());
}

TEST(TGCRNTest, DirectHeadVariantShapes) {
  auto config = SmallConfig();
  config.use_encoder_decoder = false;
  Rng rng(42);
  core::TGCRN model(config, &rng);
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 43);
  EXPECT_EQ(model.Forward(batch).shape(), (Shape{2, 3, 4, 2}));
}

TEST(TGCRNTest, AblationVariantsConstructAndRun) {
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 44);
  for (int variant = 0; variant < 5; ++variant) {
    auto config = SmallConfig();
    switch (variant) {
      case 0:
        config.use_tagsl = false;
        break;
      case 1:
        config.use_tdl = false;
        break;
      case 2:
        config.use_pdf = false;
        break;
      case 3:
        config.time_encoder = core::TGCRNConfig::TimeEncoderKind::kTime2vec;
        config.use_tdl = false;
        break;
      case 4:
        config.time_encoder =
            core::TGCRNConfig::TimeEncoderKind::kContinuous;
        config.use_tdl = false;
        break;
    }
    Rng rng(50 + variant);
    core::TGCRN model(config, &rng);
    Variable pred = model.Forward(batch);
    EXPECT_EQ(pred.shape(), (Shape{2, 3, 4, 2})) << "variant " << variant;
    EXPECT_FALSE(pred.value().HasNonFinite()) << "variant " << variant;
  }
}

TEST(TGCRNTest, AuxiliaryLossOnlyForDiscreteTdl) {
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 60);
  Rng rng(61);
  core::TGCRN with(SmallConfig(), &rng);
  EXPECT_GT(with.auxiliary_weight(), 0.0f);
  Rng aux_rng(62);
  EXPECT_TRUE(with.AuxiliaryLoss(batch, &aux_rng).defined());

  auto config = SmallConfig();
  config.use_tdl = false;
  Rng rng2(63);
  core::TGCRN without(config, &rng2);
  EXPECT_EQ(without.auxiliary_weight(), 0.0f);
  EXPECT_FALSE(without.AuxiliaryLoss(batch, &aux_rng).defined());
}

TEST(TGCRNTest, BackwardPopulatesAllParameters) {
  Rng rng(70);
  core::TGCRN model(SmallConfig(), &rng);
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 71);
  Variable pred = model.Forward(batch);
  Variable loss = ag::MaeLoss(pred, Variable(batch.y_scaled));
  Rng aux_rng(72);
  loss = ag::Add(loss, ag::MulScalar(model.AuxiliaryLoss(batch, &aux_rng),
                                     0.1f));
  loss.Backward();
  int64_t with_grad = 0, total = 0;
  for (const auto& [name, p] : model.NamedParameters()) {
    ++total;
    if (p.has_grad()) ++with_grad;
  }
  // Every parameter participates in this architecture.
  EXPECT_EQ(with_grad, total);
}

TEST(TGCRNTest, FewStepsReduceTrainingLoss) {
  Rng rng(80);
  auto config = SmallConfig();
  config.num_layers = 1;
  core::TGCRN model(config, &rng);
  auto batch = MakeFakeBatch(4, 4, 3, 4, 2, 24, 81);
  optim::Adam adam(model.Parameters(), 5e-3f);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 25; ++step) {
    model.ZeroGrad();
    Variable loss =
        ag::MaeLoss(model.Forward(batch), Variable(batch.y_scaled));
    if (step == 0) first = loss.value().item();
    last = loss.value().item();
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(last, first);
}

TEST(TGCRNTest, ScheduledSamplingChangesTrainingForwardOnly) {
  auto config = SmallConfig();
  config.sampling_seed = 7;
  Rng rng(100);
  core::TGCRN model(config, &rng);
  auto batch = MakeFakeBatch(4, 4, 3, 4, 2, 24, 101);
  // Eval mode: teacher forcing must have no effect.
  model.SetTraining(false);
  model.SetTeacherForcingProbability(1.0f);
  Tensor eval_a = model.Forward(batch).value();
  Tensor eval_b = model.Forward(batch).value();
  EXPECT_TRUE(eval_a.AllClose(eval_b, 0.0f));
  // Train mode with certain teacher forcing: step q>0 sees ground truth,
  // so the outputs differ from free-running decoding.
  model.SetTraining(true);
  Tensor forced = model.Forward(batch).value();
  model.SetTeacherForcingProbability(0.0f);
  Tensor free_run = model.Forward(batch).value();
  EXPECT_GT(Tensor::MaxAbsDiff(forced, free_run), 1e-6f);
  // The first decoder step is unaffected by the feeding policy.
  EXPECT_TRUE(forced.Slice(1, 0, 1).AllClose(free_run.Slice(1, 0, 1),
                                             1e-6f));
}

TEST(TGCRNTest, InterLayerDropoutOnlyActsInTraining) {
  auto config = SmallConfig();
  config.inter_layer_dropout = 0.5f;
  Rng rng(110);
  core::TGCRN model(config, &rng);
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 111);
  model.SetTraining(false);
  Tensor a = model.Forward(batch).value();
  Tensor b = model.Forward(batch).value();
  EXPECT_TRUE(a.AllClose(b, 0.0f)) << "eval must be deterministic";
  model.SetTraining(true);
  Tensor c = model.Forward(batch).value();
  Tensor d = model.Forward(batch).value();
  EXPECT_GT(Tensor::MaxAbsDiff(c, d), 1e-6f) << "dropout must be active";
}

TEST(TGCRNTest, GraphRefreshIntervalTradesFidelity) {
  auto config = SmallConfig();
  Rng rng(120);
  core::TGCRN every_step(config, &rng);
  config.graph_refresh_interval = 4;
  Rng rng2(120);
  core::TGCRN lazy(config, &rng2);
  lazy.CopyParametersFrom(every_step);
  auto batch = MakeFakeBatch(2, 4, 3, 4, 2, 24, 121);
  every_step.SetTraining(false);
  lazy.SetTraining(false);
  Tensor a = every_step.Forward(batch).value();
  Tensor b = lazy.Forward(batch).value();
  // Same weights, different graph cadence: outputs differ but stay finite
  // and in range.
  EXPECT_GT(Tensor::MaxAbsDiff(a, b), 1e-7f);
  EXPECT_FALSE(b.HasNonFinite());
}

TEST(TGCRNTest, LearnedAdjacencyAccessors) {
  Rng rng(90);
  core::TGCRN model(SmallConfig(), &rng);
  Tensor x = Tensor::RandUniform({4, 2}, -1, 1, &rng);
  Tensor adj = model.LearnedAdjacency(x, {5});
  EXPECT_EQ(adj.shape(), (Shape{4, 4}));
  EXPECT_TRUE(graph::IsRowStochastic(adj));
  Tensor raw = model.LearnedRawAdjacency(x, {5});
  EXPECT_EQ(raw.shape(), (Shape{4, 4}));
  Tensor table = model.TimeEmbeddingTable();
  EXPECT_EQ(table.shape(), (Shape{24, 4}));
}

TEST(TGCRNTest, ParameterCountScalesWithEmbeddingDims) {
  Rng rng(91);
  auto small = SmallConfig();
  core::TGCRN a(small, &rng);
  auto big = SmallConfig();
  big.node_embed_dim = 10;
  big.time_embed_dim = 8;
  core::TGCRN b(big, &rng);
  EXPECT_GT(b.NumParameters(), a.NumParameters());
}

}  // namespace
}  // namespace tgcrn
