// Copyright 2026 TGCRN Reproduction Authors
// Bitwise-determinism tests for every parallelized tensor kernel: the same
// computation at 1, 2 and 8 threads must produce byte-identical results on
// randomized shapes (including sizes not divisible by the chunk grain,
// empty tensors, and batch=1), and a full Trainer epoch must produce
// identical losses at 1 vs N threads — at each fixed SIMD ISA level, with
// the buffer pool and autograd arena toggled both ways. A regression test
// pins that the TGCRN_ISA env override actually routes dispatch (via the
// simd.* counters in the metric registry).
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "autograd/variable.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"
#include "obs/metrics.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

using common::ScopedNumThreads;

// The fixed ISA levels the determinism contract is stated at: scalar
// always, AVX2 when the build and the CPU have it.
std::vector<common::SimdIsa> AvailableIsas() {
  std::vector<common::SimdIsa> isas = {common::SimdIsa::kScalar};
  if (common::Avx2CompiledIn() && common::CpuSupportsAvx2()) {
    isas.push_back(common::SimdIsa::kAvx2);
  }
  return isas;
}

// Runs `make` at 1, 2, 4 and 8 threads and asserts the outputs are
// byte-identical. `make` must build its own inputs (deterministically) so
// each thread count sees a fresh computation.
void ExpectBitwiseIdenticalAcrossThreads(
    const std::function<Tensor()>& make, const std::string& label) {
  Tensor reference;
  {
    ScopedNumThreads guard(1);
    reference = make();
  }
  for (const int threads : {2, 4, 8}) {
    ScopedNumThreads guard(threads);
    const Tensor got = make();
    ASSERT_EQ(got.shape(), reference.shape()) << label;
    ASSERT_EQ(std::memcmp(got.data(), reference.data(),
                          static_cast<size_t>(got.numel()) * sizeof(float)),
              0)
        << label << " differs at " << threads << " threads";
  }
}

// Shapes chosen to straddle the parallel grain (~1k elements for
// elementwise kernels): several chunks, ragged tails, plus degenerate
// cases that must take the serial path.
std::vector<Shape> ElementwiseShapes() {
  return {
      {3, 47, 33},   // ~4.6k elements, not divisible by any grain
      {1, 5000},     // batch=1, splits into several chunks
      {1025},        // one element past the grain
      {7, 11},       // far below the grain: serial at any thread count
      {0},           // empty
      {4, 0, 9},     // empty via a zero dim
      {},            // rank-0 scalar
  };
}

TEST(ParallelDeterminismTest, ElementwiseBinarySameShape) {
  for (const Shape& shape : ElementwiseShapes()) {
    const int64_t id = ShapeNumel(shape);
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(100 + id);
          Tensor a = Tensor::RandUniform(shape, -2, 2, &rng);
          Tensor b = Tensor::RandUniform(shape, -2, 2, &rng);
          return a.Mul(b).Add(a.Div(b.AddScalar(3.0f))).Sub(a.Maximum(b));
        },
        "elementwise " + ShapeToString(shape));
  }
}

TEST(ParallelDeterminismTest, ElementwiseBroadcast) {
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(7);
        Tensor a = Tensor::RandUniform({5, 37, 29}, -2, 2, &rng);
        Tensor row = Tensor::RandUniform({29}, -2, 2, &rng);
        Tensor col = Tensor::RandUniform({37, 1}, -2, 2, &rng);
        return a.Add(row).Mul(col).Minimum(a);
      },
      "broadcast binary");
  // Broadcast from a scalar tensor across a large output.
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(8);
        Tensor a = Tensor::RandUniform({4, 1999}, -2, 2, &rng);
        return a.Mul(Tensor::Scalar(0.37f));
      },
      "broadcast scalar");
}

TEST(ParallelDeterminismTest, UnaryMaps) {
  for (const Shape& shape : ElementwiseShapes()) {
    const int64_t id = ShapeNumel(shape);
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(200 + id);
          Tensor a = Tensor::RandUniform(shape, -3, 3, &rng);
          return a.Tanh().Add(a.Sigmoid()).Add(a.Relu()).Add(
              a.Abs().AddScalar(0.1f).Log());
        },
        "unary " + ShapeToString(shape));
  }
}

TEST(ParallelDeterminismTest, MatmulRandomizedShapes) {
  Rng shape_rng(31);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t batch = shape_rng.UniformInt(1, 4);
    const int64_t m = shape_rng.UniformInt(1, 70);
    const int64_t k = shape_rng.UniformInt(1, 20);
    const int64_t n = shape_rng.UniformInt(1, 30);
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(300 + trial);
          Tensor a = Tensor::RandUniform({batch, m, k}, -2, 2, &rng);
          Tensor b = Tensor::RandUniform({batch, k, n}, -2, 2, &rng);
          return a.Matmul(b);
        },
        "matmul trial " + std::to_string(trial));
  }
}

TEST(ParallelDeterminismTest, MatmulEdgeCases) {
  // batch=1 with rows straddling the chunk grain.
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(1);
        Tensor a = Tensor::RandUniform({1, 130, 17}, -1, 1, &rng);
        Tensor b = Tensor::RandUniform({1, 17, 23}, -1, 1, &rng);
        return a.Matmul(b);
      },
      "matmul batch=1");
  // Broadcast batch dims: [B, 1, m, k] x [1, C, k, n].
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(2);
        Tensor a = Tensor::RandUniform({3, 1, 19, 7}, -1, 1, &rng);
        Tensor b = Tensor::RandUniform({1, 5, 7, 11}, -1, 1, &rng);
        return a.Matmul(b);
      },
      "matmul broadcast batch");
  // Rank-2 (no batch) and empty m.
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(3);
        Tensor a = Tensor::RandUniform({200, 13}, -1, 1, &rng);
        Tensor b = Tensor::RandUniform({13, 29}, -1, 1, &rng);
        return a.Matmul(b);
      },
      "matmul rank-2");
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Tensor a = Tensor::Zeros({2, 0, 5});
        Tensor b = Tensor::Zeros({2, 5, 3});
        return a.Matmul(b);
      },
      "matmul empty rows");
}

TEST(ParallelDeterminismTest, TransposedMatmuls) {
  // The backward-pass fast paths: g . B^T and A^T . g read the transposed
  // operand through strides. Same randomized-shape regime as Matmul.
  Rng shape_rng(57);
  for (int trial = 0; trial < 6; ++trial) {
    const int64_t batch = shape_rng.UniformInt(1, 4);
    const int64_t m = shape_rng.UniformInt(1, 70);
    const int64_t k = shape_rng.UniformInt(1, 20);
    const int64_t n = shape_rng.UniformInt(1, 30);
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(600 + trial);
          Tensor a = Tensor::RandUniform({batch, k, m}, -2, 2, &rng);
          Tensor b = Tensor::RandUniform({batch, k, n}, -2, 2, &rng);
          return a.MatmulTransposeA(b);
        },
        "matmul_ta trial " + std::to_string(trial));
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(700 + trial);
          Tensor a = Tensor::RandUniform({batch, m, k}, -2, 2, &rng);
          Tensor b = Tensor::RandUniform({batch, n, k}, -2, 2, &rng);
          return a.MatmulTransposeB(b);
        },
        "matmul_tb trial " + std::to_string(trial));
  }
  // Broadcast batch dims and rank-2 edge cases.
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(20);
        Tensor a = Tensor::RandUniform({3, 1, 7, 19}, -1, 1, &rng);
        Tensor b = Tensor::RandUniform({1, 5, 7, 11}, -1, 1, &rng);
        return a.MatmulTransposeA(b);
      },
      "matmul_ta broadcast batch");
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(21);
        Tensor a = Tensor::RandUniform({200, 13}, -1, 1, &rng);
        Tensor b = Tensor::RandUniform({29, 13}, -1, 1, &rng);
        return a.MatmulTransposeB(b);
      },
      "matmul_tb rank-2");
}

TEST(ParallelDeterminismTest, FusedGradientKernels) {
  for (const Shape& shape : ElementwiseShapes()) {
    const int64_t id = ShapeNumel(shape);
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(800 + id);
          Tensor x = Tensor::RandUniform(shape, -3, 3, &rng);
          Tensor g = Tensor::RandUniform(shape, -2, 2, &rng);
          Tensor y = x.Sigmoid();
          Tensor t = x.Tanh();
          return SigmoidGradKernel(y, g)
              .Add(TanhGradKernel(t, g))
              .Add(ReluGradKernel(x, g))
              .Add(DivGradRhsKernel(g, x, x.Abs().AddScalar(1.0f)));
        },
        "fused grad " + ShapeToString(shape));
  }
  // Softmax backward rows straddle the per-row grain.
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(30);
        Tensor x = Tensor::RandUniform({16, 33, 33}, -5, 5, &rng);
        Tensor g = Tensor::RandUniform({16, 33, 33}, -2, 2, &rng);
        return SoftmaxGradKernel(x.Softmax(-1), g);
      },
      "softmax grad");
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(31);
        Tensor acc = Tensor::RandUniform({9, 501}, -1, 1, &rng);
        Tensor u = Tensor::RandUniform({9, 501}, -1, 1, &rng);
        Tensor v = Tensor::RandUniform({9, 501}, -1, 1, &rng);
        acc.AddScaledInplace(u, -0.37f);
        acc.AddProductInplace(u, v);
        return acc;
      },
      "AddScaledInplace + AddProductInplace");
}

TEST(ParallelDeterminismTest, Reductions) {
  // SumAll via a single-element tensor so the helper can memcmp it. Sizes
  // straddle the fixed reduction chunk (2048): below, exactly at, ragged.
  for (const int64_t n : {0, 1, 2000, 2048, 2049, 50001}) {
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(400 + n);
          Tensor a = n > 0 ? Tensor::RandUniform({n}, -1, 1, &rng)
                           : Tensor::Zeros({0});
          return Tensor::Scalar(a.SumAll());
        },
        "SumAll n=" + std::to_string(n));
  }
  // Axis reductions: every output element keeps serial arithmetic.
  for (const int64_t axis : {0, 1, 2}) {
    ExpectBitwiseIdenticalAcrossThreads(
        [&] {
          Rng rng(500 + axis);
          Tensor a = Tensor::RandUniform({13, 37, 11}, -2, 2, &rng);
          return a.Sum(axis).Add(a.Mean(axis)).Add(a.Max(axis));
        },
        "axis reduction axis=" + std::to_string(axis));
  }
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(6);
        Tensor a = Tensor::RandUniform({2300, 3}, -2, 2, &rng);
        return a.Mean(1).Add(Tensor::Scalar(a.MeanAll()));
      },
      "MeanAll + outer-heavy reduction");
}

TEST(ParallelDeterminismTest, SoftmaxRows) {
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(9);
        Tensor a = Tensor::RandUniform({16, 33, 33}, -5, 5, &rng);
        return a.Softmax(-1);
      },
      "softmax last axis");
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(10);
        Tensor a = Tensor::RandUniform({16, 33, 33}, -5, 5, &rng);
        return a.Softmax(1);  // general path: broadcast kernels
      },
      "softmax middle axis");
}

TEST(ParallelDeterminismTest, PermuteAndBroadcastTo) {
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(11);
        Tensor a = Tensor::RandUniform({6, 29, 31}, -1, 1, &rng);
        return a.Permute({2, 0, 1});
      },
      "permute");
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(12);
        Tensor a = Tensor::RandUniform({1, 41, 1}, -1, 1, &rng);
        return a.BroadcastTo({7, 41, 19});
      },
      "broadcast_to");
}

TEST(ParallelDeterminismTest, InplaceAccumulation) {
  ExpectBitwiseIdenticalAcrossThreads(
      [] {
        Rng rng(13);
        Tensor acc = Tensor::RandUniform({9, 501}, -1, 1, &rng);
        Tensor inc = Tensor::RandUniform({9, 501}, -1, 1, &rng);
        acc.AddInplace(inc);
        acc.ScaleInplace(0.5f);
        return acc;
      },
      "AddInplace + ScaleInplace");
}

// End-to-end: one Trainer epoch on a small metro-sim dataset. Everything
// downstream of the kernels (losses, validation MAE, updated weights) must
// match exactly between a 1-thread and an 8-thread run.
TEST(ParallelDeterminismTest, TrainerEpochIdenticalAcrossThreadCounts) {
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 6;
  sim_config.num_days = 8;
  sim_config.seed = 123;
  sim_config.keep_od_ground_truth = false;

  auto run_epoch = [&](int threads) {
    auto sim = datagen::SimulateMetro(sim_config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    data::ForecastDataset dataset(std::move(sim.data), options);

    core::TGCRNConfig model_config;
    model_config.num_nodes = 6;
    model_config.input_dim = 2;
    model_config.output_dim = 2;
    model_config.horizon = 2;
    model_config.hidden_dim = 8;
    model_config.num_layers = 1;
    model_config.node_embed_dim = 6;
    model_config.time_embed_dim = 4;
    model_config.steps_per_day = 72;
    Rng rng(55);
    core::TGCRN model(model_config, &rng);

    core::TrainConfig train_config;
    train_config.epochs = 1;
    train_config.max_batches_per_epoch = 12;
    train_config.num_threads = threads;
    train_config.verbose = false;
    return core::TrainAndEvaluate(&model, dataset, train_config);
  };

  const auto serial = run_epoch(1);
  const auto parallel = run_epoch(8);
  common::SetNumThreads(1);

  ASSERT_EQ(serial.train_loss_history.size(),
            parallel.train_loss_history.size());
  for (size_t i = 0; i < serial.train_loss_history.size(); ++i) {
    EXPECT_EQ(serial.train_loss_history[i], parallel.train_loss_history[i])
        << "train loss diverged at epoch " << i;
  }
  ASSERT_EQ(serial.val_mae_history.size(), parallel.val_mae_history.size());
  for (size_t i = 0; i < serial.val_mae_history.size(); ++i) {
    EXPECT_EQ(serial.val_mae_history[i], parallel.val_mae_history[i])
        << "val MAE diverged at epoch " << i;
  }
  ASSERT_EQ(serial.per_horizon.size(), parallel.per_horizon.size());
  for (size_t h = 0; h < serial.per_horizon.size(); ++h) {
    EXPECT_EQ(serial.per_horizon[h].mae, parallel.per_horizon[h].mae);
    EXPECT_EQ(serial.per_horizon[h].rmse, parallel.per_horizon[h].rmse);
  }
  EXPECT_EQ(parallel.num_threads, 8);
}

// The buffer pool recycles storage but never changes values: a full train
// epoch with the pool on must produce bitwise-identical losses to one with
// the pool off.
TEST(ParallelDeterminismTest, TrainerEpochIdenticalPoolOnOff) {
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 6;
  sim_config.num_days = 8;
  sim_config.seed = 321;
  sim_config.keep_od_ground_truth = false;

  auto run_epoch = [&](bool pool_enabled) {
    TensorBufferPool::Global().SetEnabled(pool_enabled);
    auto sim = datagen::SimulateMetro(sim_config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    data::ForecastDataset dataset(std::move(sim.data), options);

    core::TGCRNConfig model_config;
    model_config.num_nodes = 6;
    model_config.input_dim = 2;
    model_config.output_dim = 2;
    model_config.horizon = 2;
    model_config.hidden_dim = 8;
    model_config.num_layers = 1;
    model_config.node_embed_dim = 6;
    model_config.time_embed_dim = 4;
    model_config.steps_per_day = 72;
    Rng rng(55);
    core::TGCRN model(model_config, &rng);

    core::TrainConfig train_config;
    train_config.epochs = 1;
    train_config.max_batches_per_epoch = 12;
    train_config.num_threads = 2;
    train_config.verbose = false;
    return core::TrainAndEvaluate(&model, dataset, train_config);
  };

  const auto with_pool = run_epoch(true);
  const auto without_pool = run_epoch(false);
  TensorBufferPool::Global().ReloadEnabledFromEnv();
  common::SetNumThreads(1);

  ASSERT_EQ(with_pool.train_loss_history.size(),
            without_pool.train_loss_history.size());
  for (size_t i = 0; i < with_pool.train_loss_history.size(); ++i) {
    EXPECT_EQ(with_pool.train_loss_history[i],
              without_pool.train_loss_history[i])
        << "train loss diverged at epoch " << i;
  }
  ASSERT_EQ(with_pool.val_mae_history.size(),
            without_pool.val_mae_history.size());
  for (size_t i = 0; i < with_pool.val_mae_history.size(); ++i) {
    EXPECT_EQ(with_pool.val_mae_history[i], without_pool.val_mae_history[i]);
  }
}

// The autograd step arena changes where graph nodes live, never what they
// compute: a train epoch must produce bitwise-identical losses with
// TGCRN_AUTOGRAD_ARENA on or off, at every thread count in {1, 2, 4, 8}.
TEST(ParallelDeterminismTest, TrainerEpochIdenticalArenaOnOffAcrossThreads) {
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 6;
  sim_config.num_days = 8;
  sim_config.seed = 213;
  sim_config.keep_od_ground_truth = false;

  auto run_epoch = [&](bool arena_enabled, int threads) {
    ag::SetAutogradArenaEnabled(arena_enabled);
    auto sim = datagen::SimulateMetro(sim_config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    data::ForecastDataset dataset(std::move(sim.data), options);

    core::TGCRNConfig model_config;
    model_config.num_nodes = 6;
    model_config.input_dim = 2;
    model_config.output_dim = 2;
    model_config.horizon = 2;
    model_config.hidden_dim = 8;
    model_config.num_layers = 1;
    model_config.node_embed_dim = 6;
    model_config.time_embed_dim = 4;
    model_config.steps_per_day = 72;
    Rng rng(55);
    core::TGCRN model(model_config, &rng);

    core::TrainConfig train_config;
    train_config.epochs = 1;
    train_config.max_batches_per_epoch = 12;
    train_config.num_threads = threads;
    train_config.verbose = false;
    return core::TrainAndEvaluate(&model, dataset, train_config);
  };

  const auto reference = run_epoch(/*arena_enabled=*/true, /*threads=*/1);
  for (const bool arena_enabled : {true, false}) {
    for (const int threads : {1, 2, 4, 8}) {
      if (arena_enabled && threads == 1) continue;  // the reference run
      const auto got = run_epoch(arena_enabled, threads);
      ASSERT_EQ(got.train_loss_history.size(),
                reference.train_loss_history.size());
      for (size_t i = 0; i < reference.train_loss_history.size(); ++i) {
        EXPECT_EQ(got.train_loss_history[i], reference.train_loss_history[i])
            << "train loss diverged (arena=" << arena_enabled
            << ", threads=" << threads << ")";
      }
      ASSERT_EQ(got.val_mae_history.size(), reference.val_mae_history.size());
      for (size_t i = 0; i < reference.val_mae_history.size(); ++i) {
        EXPECT_EQ(got.val_mae_history[i], reference.val_mae_history[i])
            << "val MAE diverged (arena=" << arena_enabled
            << ", threads=" << threads << ")";
      }
    }
  }
  ag::SetAutogradArenaEnabled(true);
  common::SetNumThreads(1);
}

// Kernel-level sweep at each fixed ISA: thread-count invariance must hold
// with the scalar kernels pinned and (when available) with the AVX2
// kernels pinned — not just at whatever level auto-dispatch picked.
TEST(ParallelDeterminismTest, MatmulAndVmathPerIsa) {
  for (const common::SimdIsa isa : AvailableIsas()) {
    common::ScopedSimdIsa pin(isa);
    const std::string tag = std::string(common::SimdIsaName(isa));
    ExpectBitwiseIdenticalAcrossThreads(
        [] {
          Rng rng(40);
          Tensor a = Tensor::RandUniform({2, 130, 270}, -1, 1, &rng);
          Tensor b = Tensor::RandUniform({2, 270, 23}, -1, 1, &rng);
          return a.Matmul(b);
        },
        "matmul (packed path) isa=" + tag);
    ExpectBitwiseIdenticalAcrossThreads(
        [] {
          Rng rng(41);
          Tensor a = Tensor::RandUniform({6, 1, 17}, -1, 1, &rng);
          Tensor b = Tensor::RandUniform({6, 17, 16}, -1, 1, &rng);
          return a.Matmul(b);
        },
        "matmul (m=1 batch path) isa=" + tag);
    ExpectBitwiseIdenticalAcrossThreads(
        [] {
          Rng rng(42);
          Tensor a = Tensor::RandUniform({3, 19, 130}, -1, 1, &rng);
          Tensor b = Tensor::RandUniform({3, 19, 11}, -1, 1, &rng);
          return a.MatmulTransposeA(b);
        },
        "matmul_ta isa=" + tag);
    ExpectBitwiseIdenticalAcrossThreads(
        [] {
          Rng rng(43);
          Tensor a = Tensor::RandUniform({130, 21}, -1, 1, &rng);
          Tensor b = Tensor::RandUniform({29, 21}, -1, 1, &rng);
          return a.MatmulTransposeB(b);
        },
        "matmul_tb isa=" + tag);
    ExpectBitwiseIdenticalAcrossThreads(
        [] {
          Rng rng(44);
          Tensor x = Tensor::RandUniform({3, 47, 33}, -3, 3, &rng);
          return x.Sigmoid().Add(x.Tanh()).Add(x.Exp().AddScalar(1.0f).Log());
        },
        "vmath isa=" + tag);
  }
}

// Sparse-path matrix entry: top-k selection, CSR SpMM forward and both
// backward kernels must be thread-count invariant at each fixed ISA (the
// 1/2/4/8-thread x scalar/avx2 grid). Forward output and the gradients to
// the dense logits and the features are packed into one tensor so a single
// memcmp covers the whole sparse pipeline.
TEST(ParallelDeterminismTest, SparseTopKAndSpmmPerIsa) {
  for (const common::SimdIsa isa : AvailableIsas()) {
    common::ScopedSimdIsa pin(isa);
    ExpectBitwiseIdenticalAcrossThreads(
        [] {
          Rng rng(77);
          ag::Variable dense(
              ag::Softmax(
                  ag::Variable(
                      Tensor::RandUniform({3, 41, 41}, -2.0f, 2.0f, &rng)),
                  -1)
                  .value(),
              /*requires_grad=*/true);
          ag::Variable x(Tensor::RandUniform({3, 41, 9}, -1.0f, 1.0f, &rng),
                         /*requires_grad=*/true);
          ag::SparseGraph sg = ag::SparsifyTopK(dense, 7);
          ag::Variable out = ag::SpmmCsr(sg, x);
          ag::SumAll(ag::Mul(out, out)).Backward();
          const Tensor& fwd = out.value();
          const Tensor& gd = dense.grad();
          const Tensor& gx = x.grad();
          Tensor packed =
              Tensor::ForOverwrite({fwd.numel() + gd.numel() + gx.numel()});
          int64_t at = 0;
          for (int64_t i = 0; i < fwd.numel(); ++i) {
            packed.set_flat(at++, fwd.flat(i));
          }
          for (int64_t i = 0; i < gd.numel(); ++i) {
            packed.set_flat(at++, gd.flat(i));
          }
          for (int64_t i = 0; i < gx.numel(); ++i) {
            packed.set_flat(at++, gx.flat(i));
          }
          return packed;
        },
        std::string("sparse topk+spmm fwd/bwd isa=") +
            common::SimdIsaName(isa));
  }
}

// End-to-end matrix at each fixed ISA: a Trainer epoch must produce
// bitwise-identical losses across 1/2/4/8 threads x pool on/off x arena
// on/off. The reference run per ISA is (1 thread, pool on, arena on).
TEST(ParallelDeterminismTest, TrainerEpochIdenticalThreadsPoolArenaPerIsa) {
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 6;
  sim_config.num_days = 8;
  sim_config.seed = 132;
  sim_config.keep_od_ground_truth = false;

  auto run_epoch = [&](int threads, bool pool_enabled, bool arena_enabled) {
    TensorBufferPool::Global().SetEnabled(pool_enabled);
    ag::SetAutogradArenaEnabled(arena_enabled);
    auto sim = datagen::SimulateMetro(sim_config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    data::ForecastDataset dataset(std::move(sim.data), options);

    core::TGCRNConfig model_config;
    model_config.num_nodes = 6;
    model_config.input_dim = 2;
    model_config.output_dim = 2;
    model_config.horizon = 2;
    model_config.hidden_dim = 8;
    model_config.num_layers = 1;
    model_config.node_embed_dim = 6;
    model_config.time_embed_dim = 4;
    model_config.steps_per_day = 72;
    Rng rng(55);
    core::TGCRN model(model_config, &rng);

    core::TrainConfig train_config;
    train_config.epochs = 1;
    train_config.max_batches_per_epoch = 8;
    train_config.num_threads = threads;
    train_config.verbose = false;
    return core::TrainAndEvaluate(&model, dataset, train_config);
  };

  for (const common::SimdIsa isa : AvailableIsas()) {
    common::ScopedSimdIsa pin(isa);
    const std::string tag = std::string(common::SimdIsaName(isa));
    const auto reference =
        run_epoch(/*threads=*/1, /*pool_enabled=*/true, /*arena_enabled=*/true);
    for (const int threads : {1, 2, 4, 8}) {
      for (const bool pool : {true, false}) {
        for (const bool arena : {true, false}) {
          if (threads == 1 && pool && arena) continue;  // the reference run
          const auto got = run_epoch(threads, pool, arena);
          const std::string combo = "isa=" + tag +
                                    " threads=" + std::to_string(threads) +
                                    " pool=" + std::to_string(pool) +
                                    " arena=" + std::to_string(arena);
          ASSERT_EQ(got.train_loss_history.size(),
                    reference.train_loss_history.size())
              << combo;
          for (size_t i = 0; i < reference.train_loss_history.size(); ++i) {
            EXPECT_EQ(got.train_loss_history[i],
                      reference.train_loss_history[i])
                << "train loss diverged (" << combo << ")";
          }
          ASSERT_EQ(got.val_mae_history.size(),
                    reference.val_mae_history.size())
              << combo;
          for (size_t i = 0; i < reference.val_mae_history.size(); ++i) {
            EXPECT_EQ(got.val_mae_history[i], reference.val_mae_history[i])
                << "val MAE diverged (" << combo << ")";
          }
        }
      }
    }
  }
  TensorBufferPool::Global().ReloadEnabledFromEnv();
  ag::SetAutogradArenaEnabled(true);
  common::SetNumThreads(1);
}

// TGCRN_ISA must actually route dispatch: with the env var set to
// "scalar", every GEMM and vmath call lands on the scalar kernels (the
// simd.* counters in the metric registry are the observable), and with
// "avx2" (when available) on the AVX2 kernels.
TEST(ParallelDeterminismTest, TgcrnIsaEnvOverrideIsHonored) {
  // Remember the ambient override (CI pins TGCRN_ISA per job) so the
  // test can restore it for the rest of the binary.
  const char* ambient = getenv("TGCRN_ISA");
  const std::string saved = ambient != nullptr ? ambient : "";

  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* gemm_scalar = registry.GetCounter("simd.gemm_scalar_calls");
  obs::Counter* gemm_avx2 = registry.GetCounter("simd.gemm_avx2_calls");
  obs::Counter* vmath_scalar = registry.GetCounter("simd.vmath_scalar_calls");
  obs::Counter* vmath_avx2 = registry.GetCounter("simd.vmath_avx2_calls");

  Rng rng(77);
  Tensor a = Tensor::RandUniform({9, 17}, -1, 1, &rng);
  Tensor b = Tensor::RandUniform({17, 12}, -1, 1, &rng);

  ASSERT_EQ(setenv("TGCRN_ISA", "scalar", /*overwrite=*/1), 0);
  common::ResetSimdIsaFromEnv();
  EXPECT_EQ(common::ActiveSimdIsa(), common::SimdIsa::kScalar);
  {
    const int64_t s0 = gemm_scalar->Value(), v0 = gemm_avx2->Value();
    const int64_t ms0 = vmath_scalar->Value(), mv0 = vmath_avx2->Value();
    (void)a.Matmul(b);
    (void)a.Sigmoid();
    EXPECT_EQ(gemm_scalar->Value(), s0 + 1);
    EXPECT_EQ(gemm_avx2->Value(), v0);
    EXPECT_EQ(vmath_scalar->Value(), ms0 + 1);
    EXPECT_EQ(vmath_avx2->Value(), mv0);
  }

  if (common::Avx2CompiledIn() && common::CpuSupportsAvx2()) {
    ASSERT_EQ(setenv("TGCRN_ISA", "avx2", /*overwrite=*/1), 0);
    common::ResetSimdIsaFromEnv();
    EXPECT_EQ(common::ActiveSimdIsa(), common::SimdIsa::kAvx2);
    const int64_t s0 = gemm_scalar->Value(), v0 = gemm_avx2->Value();
    const int64_t ms0 = vmath_scalar->Value(), mv0 = vmath_avx2->Value();
    (void)a.Matmul(b);
    (void)a.Sigmoid();
    EXPECT_EQ(gemm_scalar->Value(), s0);
    EXPECT_EQ(gemm_avx2->Value(), v0 + 1);
    EXPECT_EQ(vmath_scalar->Value(), ms0);
    EXPECT_EQ(vmath_avx2->Value(), mv0 + 1);
  }

  if (ambient != nullptr) {
    ASSERT_EQ(setenv("TGCRN_ISA", saved.c_str(), /*overwrite=*/1), 0);
  } else {
    ASSERT_EQ(unsetenv("TGCRN_ISA"), 0);
  }
  common::ResetSimdIsaFromEnv();
}

}  // namespace
}  // namespace tgcrn
