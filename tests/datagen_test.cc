// Copyright 2026 TGCRN Reproduction Authors
// Simulator tests: the synthetic datasets must actually exhibit the
// statistical structure the paper studies - daily trends, weekday/weekend
// periodicity, and spatially correlated dynamics - since the whole
// reproduction argument rests on that.
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/demand_sim.h"
#include "datagen/electricity_sim.h"
#include "datagen/metro_sim.h"
#include "metrics/metrics.h"

namespace tgcrn {
namespace {

datagen::MetroSimConfig SmallMetroConfig() {
  datagen::MetroSimConfig config;
  config.num_stations = 10;
  config.num_days = 14;
  config.steps_per_day = 72;
  config.seed = 3;
  config.target_mean_inflow = 80.0;
  return config;
}

TEST(MetroSimTest, ShapesAndDeterminism) {
  const auto config = SmallMetroConfig();
  const auto a = datagen::SimulateMetro(config);
  const auto b = datagen::SimulateMetro(config);
  EXPECT_EQ(a.data.values.shape(), (Shape{14 * 72, 10, 2}));
  EXPECT_TRUE(a.data.values.AllClose(b.data.values, 0.0f));
  EXPECT_EQ(a.od_ground_truth.size(), 14u * 72u);
  EXPECT_EQ(a.area_types.size(), 10u);
  auto c_config = config;
  c_config.seed = 4;
  const auto c = datagen::SimulateMetro(c_config);
  EXPECT_FALSE(a.data.values.AllClose(c.data.values, 1e-3f));
}

TEST(MetroSimTest, NeighborLimitedModeShapesAndDeterminism) {
  auto config = SmallMetroConfig();
  config.keep_od_ground_truth = false;
  config.max_od_pairs_per_station = 4;
  const auto a = datagen::SimulateMetro(config);
  const auto b = datagen::SimulateMetro(config);
  EXPECT_EQ(a.data.values.shape(), (Shape{14 * 72, 10, 2}));
  EXPECT_TRUE(a.data.values.AllClose(b.data.values, 0.0f));
  EXPECT_TRUE(a.od_ground_truth.empty());
  ASSERT_EQ(a.od_neighbors.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) {
    const auto& nbrs = a.od_neighbors[i];
    ASSERT_LE(nbrs.size(), 4u);
    ASSERT_FALSE(nbrs.empty());
    for (size_t s = 0; s < nbrs.size(); ++s) {
      EXPECT_NE(nbrs[s], i);  // self-loops excluded
      EXPECT_GE(nbrs[s], 0);
      EXPECT_LT(nbrs[s], 10);
      if (s > 0) {
        EXPECT_LT(nbrs[s - 1], nbrs[s]);  // ascending station ids
      }
    }
  }
  // Layout draws are shared with the dense path: same seed, same stations.
  const auto dense = datagen::SimulateMetro(SmallMetroConfig());
  EXPECT_EQ(a.area_types, dense.area_types);
}

TEST(MetroSimTest, NeighborLimitedModeIsCalibratedAndConserves) {
  auto config = SmallMetroConfig();
  config.keep_od_ground_truth = false;
  config.max_od_pairs_per_station = 4;
  const auto out = datagen::SimulateMetro(config);
  Tensor inflow = out.data.values.Slice(2, 0, 1);
  EXPECT_NEAR(inflow.MeanAll(), 80.0f, 12.0f);
  const float total_in = out.data.values.Slice(2, 0, 1).SumAll();
  const float total_out = out.data.values.Slice(2, 1, 2).SumAll();
  EXPECT_LE(total_out, total_in);
  EXPECT_GT(total_out, 0.97f * total_in);
}

TEST(MetroSimTest, CalibratedMeanInflow) {
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  // Mean inflow (channel 0) should be near the calibration target.
  Tensor inflow = out.data.values.Slice(2, 0, 1);
  EXPECT_NEAR(inflow.MeanAll(), 80.0f, 12.0f);
}

TEST(MetroSimTest, FlowConservation) {
  // Every sampled trip taps in exactly once and taps out at most once
  // (trips near the end of the horizon may not arrive): total outflow is
  // close to but not more than total inflow.
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  const float total_in = out.data.values.Slice(2, 0, 1).SumAll();
  const float total_out = out.data.values.Slice(2, 1, 2).SumAll();
  EXPECT_LE(total_out, total_in);
  EXPECT_GT(total_out, 0.97f * total_in);
}

TEST(MetroSimTest, MorningPeakExistsOnWeekdays) {
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  const int64_t n = 10, spd = 72;
  // Slot for 08:00 (day starts 06:00, 15-min slots): slot 8.
  // Slot for 22:30: slot 66.
  double peak = 0.0, late = 0.0;
  int64_t days = 0;
  for (int64_t day = 0; day < 14; ++day) {
    if (day % 7 >= 5) continue;  // weekdays only
    ++days;
    for (int64_t i = 0; i < n; ++i) {
      peak += out.data.values.at({day * spd + 8, i, 0});
      late += out.data.values.at({day * spd + 66, i, 0});
    }
  }
  ASSERT_GT(days, 0);
  EXPECT_GT(peak, 2.0 * late) << "morning rush must dominate late night";
}

TEST(MetroSimTest, WeekdayWeekendPeriodicity) {
  // The paper's Fig 2 evidence: the OD matrix at 08:00 is similar across
  // weekdays, similar across weekend days, and different between the two.
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  const int64_t spd = 72;
  auto od_at = [&](int64_t day) { return out.od_ground_truth[day * spd + 8]; };
  auto cosine = [](const Tensor& a, const Tensor& b) {
    double dot = 0, na = 0, nb = 0;
    for (int64_t i = 0; i < a.numel(); ++i) {
      dot += a.flat(i) * b.flat(i);
      na += a.flat(i) * a.flat(i);
      nb += b.flat(i) * b.flat(i);
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
  };
  const double mon_tue = cosine(od_at(0), od_at(1));    // two weekdays
  const double mon_mon = cosine(od_at(0), od_at(7));    // same weekday
  const double sat_sun = cosine(od_at(5), od_at(6));    // two weekend days
  const double mon_sat = cosine(od_at(0), od_at(5));    // across period types
  EXPECT_GT(mon_tue, mon_sat);
  EXPECT_GT(mon_mon, mon_sat);
  EXPECT_GT(sat_sun, mon_sat);
}

TEST(MetroSimTest, IntraDayTrendIsSmooth) {
  // Fig 2's trend: consecutive OD matrices are more similar than matrices
  // hours apart.
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  const int64_t spd = 72;
  auto l1 = [](const Tensor& a, const Tensor& b) {
    return Tensor::MaxAbsDiff(a, b);
  };
  // 08:00 vs 08:15 vs 12:00 on day 1 (a weekday).
  const Tensor& t0 = out.od_ground_truth[1 * spd + 8];
  const Tensor& t1 = out.od_ground_truth[1 * spd + 9];
  const Tensor& t2 = out.od_ground_truth[1 * spd + 24];
  EXPECT_LT(l1(t0, t1), l1(t0, t2));
}

TEST(MetroSimTest, ProfilesDifferByAreaType) {
  // Residential origins peak in the morning; business origins in the
  // evening (workers leaving), on weekdays.
  using datagen::AreaType;
  const double res_m =
      datagen::MetroOriginProfile(AreaType::kResidential, 8.0, false);
  const double res_e =
      datagen::MetroOriginProfile(AreaType::kResidential, 18.0, false);
  EXPECT_GT(res_m, res_e);
  const double biz_m =
      datagen::MetroOriginProfile(AreaType::kBusiness, 8.0, false);
  const double biz_e =
      datagen::MetroOriginProfile(AreaType::kBusiness, 18.0, false);
  EXPECT_GT(biz_e, biz_m);
  // Attraction mirrors: business attracts in the morning.
  EXPECT_GT(datagen::MetroAttractionProfile(AreaType::kBusiness, 8.25, false),
            datagen::MetroAttractionProfile(AreaType::kBusiness, 18.0,
                                            false));
  // Weekends suppress the commute pattern.
  EXPECT_LT(datagen::MetroOriginProfile(AreaType::kResidential, 8.0, true),
            res_m);
}

TEST(MetroSimTest, FailureInjectionZeroesClosedStations) {
  auto config = SmallMetroConfig();
  config.expected_closures = 6.0;
  const auto out = datagen::SimulateMetro(config);
  ASSERT_FALSE(out.closures.empty());
  for (const auto& closure : out.closures) {
    EXPECT_GE(closure.station, 0);
    EXPECT_LT(closure.station, config.num_stations);
    EXPECT_GE(closure.first_step, 0);
    EXPECT_LT(closure.last_step, out.data.num_steps());
    // 2-8 hours of 15-min slots.
    const int64_t duration = closure.last_step - closure.first_step;
    EXPECT_GE(duration, 8);
    EXPECT_LE(duration, 32);
    for (int64_t t = closure.first_step; t <= closure.last_step; ++t) {
      EXPECT_EQ(out.data.values.at({t, closure.station, 0}), 0.0f);
      EXPECT_EQ(out.data.values.at({t, closure.station, 1}), 0.0f);
    }
  }
}

TEST(MetroSimTest, FailureInjectionOffByDefault) {
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  EXPECT_TRUE(out.closures.empty());
}

TEST(MetroSimTest, MaskedMetricsIgnoreClosures) {
  // With null-aware metrics, a perfect forecast of the *uncorrupted* data
  // scores zero error even though closures zeroed some targets.
  auto config = SmallMetroConfig();
  const auto clean = datagen::SimulateMetro(config);
  config.expected_closures = 8.0;
  const auto corrupted = datagen::SimulateMetro(config);
  // Same seed => identical streams except the closure zeroing at the end.
  metrics::MetricsOptions options;
  options.null_threshold = 0.0;  // exclude exact zeros
  const auto m = metrics::Evaluate(clean.data.values,
                                   corrupted.data.values, options);
  EXPECT_NEAR(m.mae, 0.0, 1e-9);
  metrics::MetricsOptions unmasked;
  const auto m2 = metrics::Evaluate(clean.data.values,
                                    corrupted.data.values, unmasked);
  EXPECT_GT(m2.mae, 0.0);
}

TEST(DemandSimTest, ShapesDeterminismAndScale) {
  datagen::DemandSimConfig config;
  config.num_zones = 12;
  config.num_days = 14;
  config.seed = 5;
  config.target_mean_demand = 6.0;
  const auto a = datagen::SimulateDemand(config);
  const auto b = datagen::SimulateDemand(config);
  EXPECT_EQ(a.data.values.shape(), (Shape{14 * 48, 12, 2}));
  EXPECT_TRUE(a.data.values.AllClose(b.data.values, 0.0f));
  EXPECT_NEAR(a.data.values.Slice(2, 0, 1).MeanAll(), 6.0f, 1.5f);
  EXPECT_GE(a.data.values.MinAll(), 0.0f);
}

TEST(DemandSimTest, CommunityCorrelationExists) {
  datagen::DemandSimConfig config;
  config.num_zones = 16;
  config.num_days = 28;
  config.seed = 6;
  const auto out = datagen::SimulateDemand(config);
  // Average pairwise correlation of pickups within a community should beat
  // the across-community average.
  const int64_t total = out.data.num_steps();
  const int64_t n = 16;
  auto series = [&](int64_t zone) {
    std::vector<double> v(total);
    for (int64_t t = 0; t < total; ++t) {
      v[t] = out.data.values.at({t, zone, 0});
    }
    return v;
  };
  auto corr = [&](const std::vector<double>& a,
                  const std::vector<double>& b) {
    double ma = 0, mb = 0;
    for (int64_t t = 0; t < total; ++t) {
      ma += a[t];
      mb += b[t];
    }
    ma /= total;
    mb /= total;
    double cov = 0, va = 0, vb = 0;
    for (int64_t t = 0; t < total; ++t) {
      cov += (a[t] - ma) * (b[t] - mb);
      va += (a[t] - ma) * (a[t] - ma);
      vb += (b[t] - mb) * (b[t] - mb);
    }
    return cov / (std::sqrt(va * vb) + 1e-12);
  };
  double within = 0, across = 0;
  int64_t within_n = 0, across_n = 0;
  std::vector<std::vector<double>> all;
  for (int64_t i = 0; i < n; ++i) all.push_back(series(i));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double c = corr(all[i], all[j]);
      if (out.communities[i] == out.communities[j]) {
        within += c;
        ++within_n;
      } else {
        across += c;
        ++across_n;
      }
    }
  }
  ASSERT_GT(within_n, 0);
  ASSERT_GT(across_n, 0);
  EXPECT_GT(within / within_n, across / across_n);
}

TEST(ElectricitySimTest, ShapesPositivityWeeklyPattern) {
  datagen::ElectricitySimConfig config;
  config.num_clients = 8;
  config.num_days = 28;
  config.seed = 8;
  const auto out = datagen::SimulateElectricity(config);
  EXPECT_EQ(out.data.values.shape(), (Shape{28 * 24, 8, 1}));
  EXPECT_GT(out.data.values.MinAll(), 0.0f);

  // Office clients: weekday consumption beats weekend consumption.
  double weekday = 0, weekend = 0;
  int64_t nd_weekday = 0, nd_weekend = 0;
  for (int64_t t = 0; t < out.data.num_steps(); ++t) {
    for (int64_t i = 0; i < 8; ++i) {
      if (out.classes[i] != datagen::ClientClass::kOffice) continue;
      if (out.data.day_of_week[t] >= 5) {
        weekend += out.data.values.at({t, i, 0});
        ++nd_weekend;
      } else {
        weekday += out.data.values.at({t, i, 0});
        ++nd_weekday;
      }
    }
  }
  if (nd_weekday > 0 && nd_weekend > 0) {
    EXPECT_GT(weekday / nd_weekday, 1.2 * (weekend / nd_weekend));
  }
}

TEST(ElectricitySimTest, WeatherInducesCrossClientCorrelation) {
  datagen::ElectricitySimConfig config;
  config.num_clients = 6;
  config.num_days = 60;
  config.seed = 9;
  config.weather_sigma = 0.2;
  const auto out = datagen::SimulateElectricity(config);
  // Daily totals of different clients should be positively correlated
  // through the shared weather process.
  const int64_t days = 60;
  auto daily = [&](int64_t client) {
    std::vector<double> v(days, 0.0);
    for (int64_t t = 0; t < out.data.num_steps(); ++t) {
      v[t / 24] += out.data.values.at({t, client, 0});
    }
    return v;
  };
  const auto a = daily(0);
  const auto b = daily(1);
  double ma = 0, mb = 0;
  for (int64_t i = 0; i < days; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= days;
  mb /= days;
  double cov = 0, va = 0, vb = 0;
  for (int64_t i = 0; i < days; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  EXPECT_GT(cov / std::sqrt(va * vb), 0.3);
}

TEST(SimCalendarTest, SlotAndDayFeaturesConsistent) {
  const auto out = datagen::SimulateMetro(SmallMetroConfig());
  for (int64_t t = 0; t < out.data.num_steps(); ++t) {
    EXPECT_EQ(out.data.slot_of_day[t], t % 72);
    EXPECT_EQ(out.data.day_of_week[t], (t / 72) % 7);
  }
}

}  // namespace
}  // namespace tgcrn
