// Copyright 2026 TGCRN Reproduction Authors
// Gradient correctness tests for the autograd engine: every op is verified
// against central finite differences, plus composite expressions that mirror
// real model structures (gates, attention-style softmax chains).
#include "autograd/ops.h"

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "gradcheck.h"
#include "obs/metrics.h"

namespace tgcrn {
namespace {

using ag::Variable;
using testing::ExpectGradientsClose;

Variable Leaf(Shape shape, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  Rng rng(seed);
  return Variable(Tensor::RandUniform(std::move(shape), lo, hi, &rng),
                  /*requires_grad=*/true);
}

TEST(AutogradTest, LeafBasics) {
  Variable v(Tensor::Ones({2, 2}), /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  Variable undefined;
  EXPECT_FALSE(undefined.defined());
}

TEST(AutogradTest, BackwardOnScalarAccumulatesOnes) {
  Variable v(Tensor::FromVector({3}, {1, 2, 3}), true);
  Variable s = ag::SumAll(v);
  s.Backward();
  EXPECT_TRUE(v.grad().AllClose(Tensor::Ones({3})));
  // Second backward accumulates.
  ag::SumAll(v).Backward();
  EXPECT_TRUE(v.grad().AllClose(Tensor::Full({3}, 2.0f)));
  v.ZeroGrad();
  EXPECT_FALSE(v.has_grad());
}

TEST(AutogradTest, DetachBlocksGradient) {
  Variable v(Tensor::Ones({2}), true);
  Variable d = v.Detach();
  EXPECT_FALSE(d.needs_grad());
  Variable out = ag::SumAll(ag::Mul(d, d));
  EXPECT_FALSE(out.needs_grad());
}

TEST(AutogradTest, GradSharedSubexpression) {
  // loss = sum(x*x + x) -> dx = 2x + 1
  Variable x(Tensor::FromVector({3}, {1, -2, 0.5}), true);
  Variable loss = ag::SumAll(ag::Add(ag::Mul(x, x), x));
  loss.Backward();
  EXPECT_TRUE(x.grad().AllClose(Tensor::FromVector({3}, {3, -3, 2}), 1e-5f));
}

TEST(AutogradTest, AddSubMulDivGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable s = ag::Div(ag::Mul(in[0], in[1]),
                         ag::AddScalar(ag::Mul(in[1], in[1]), 2.0f));
    return ag::SumAll(ag::Sub(s, in[0]));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 1), Leaf({2, 3}, 2)});
}

TEST(AutogradTest, BroadcastAddGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    return ag::SumAll(ag::Mul(ag::Add(in[0], in[1]), ag::Add(in[0], in[1])));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 3), Leaf({3}, 4)});
  ExpectGradientsClose(fn, {Leaf({4, 1, 3}, 5), Leaf({2, 3}, 6)});
}

TEST(AutogradTest, MatmulGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    return ag::SumAll(ag::Matmul(in[0], in[1]));
  };
  ExpectGradientsClose(fn, {Leaf({3, 4}, 7), Leaf({4, 2}, 8)});
}

TEST(AutogradTest, BatchedMatmulBroadcastGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable prod = ag::Matmul(in[0], in[1]);
    return ag::SumAll(ag::Mul(prod, prod));
  };
  // Batched lhs, shared rhs: the exact pattern of graph convolution.
  ExpectGradientsClose(fn, {Leaf({2, 3, 4}, 9), Leaf({4, 2}, 10)});
  // Both batched.
  ExpectGradientsClose(fn, {Leaf({2, 3, 4}, 11), Leaf({2, 4, 2}, 12)});
  // Shared lhs, batched rhs.
  ExpectGradientsClose(fn, {Leaf({3, 4}, 13), Leaf({2, 4, 2}, 14)});
}

// Parameterized sweep of unary ops.
struct UnaryCase {
  const char* name;
  Variable (*fn)(const Variable&);
  float lo;
  float hi;
};

class UnaryGradTest : public ::testing::TestWithParam<UnaryCase> {};

TEST_P(UnaryGradTest, Gradcheck) {
  const auto& param = GetParam();
  auto fn = [&param](const std::vector<Variable>& in) {
    Variable y = param.fn(in[0]);
    return ag::SumAll(ag::Mul(y, y));
  };
  ExpectGradientsClose(fn, {Leaf({3, 3}, 21, param.lo, param.hi)});
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryGradTest,
    ::testing::Values(
        UnaryCase{"sigmoid", [](const Variable& v) { return ag::Sigmoid(v); },
                  -2.0f, 2.0f},
        UnaryCase{"tanh", [](const Variable& v) { return ag::Tanh(v); },
                  -2.0f, 2.0f},
        UnaryCase{"exp", [](const Variable& v) { return ag::Exp(v); }, -1.0f,
                  1.0f},
        UnaryCase{"log", [](const Variable& v) { return ag::Log(v); }, 0.5f,
                  3.0f},
        UnaryCase{"sqrt", [](const Variable& v) { return ag::Sqrt(v); }, 0.5f,
                  3.0f},
        UnaryCase{"neg", [](const Variable& v) { return ag::Neg(v); }, -2.0f,
                  2.0f},
        UnaryCase{"pow3",
                  [](const Variable& v) { return ag::Pow(v, 3.0f); }, 0.3f,
                  1.5f}),
    [](const ::testing::TestParamInfo<UnaryCase>& info) {
      return info.param.name;
    });

// ISA levels the vmath/fused-kernel gradchecks run at: scalar always,
// AVX2 when the build and CPU support it.
std::vector<common::SimdIsa> GradcheckIsas() {
  std::vector<common::SimdIsa> isas = {common::SimdIsa::kScalar};
  if (common::Avx2CompiledIn() && common::CpuSupportsAvx2()) {
    isas.push_back(common::SimdIsa::kAvx2);
  }
  return isas;
}

// Sigmoid/Tanh/Exp route through the SIMD vmath fast paths; the sub-vector
// tail (length % 8) takes a separate code path in the AVX2 kernels, so
// gradcheck at every length 1..16 (two full AVX2 vectors) per fixed ISA.
TEST(AutogradTest, VmathFastPathGradcheckAtTailLengths) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable mix = ag::Mul(ag::Sigmoid(in[0]), ag::Tanh(in[0]));
    return ag::SumAll(ag::Add(mix, ag::Exp(in[0])));
  };
  for (const common::SimdIsa isa : GradcheckIsas()) {
    common::ScopedSimdIsa pin(isa);
    for (int64_t len = 1; len <= 16; ++len) {
      SCOPED_TRACE(std::string(common::SimdIsaName(isa)) + " len=" +
                   std::to_string(len));
      ExpectGradientsClose(fn, {Leaf({len}, 60 + len, -1.5f, 1.5f)});
    }
  }
}

// The fused gradient kernels (SigmoidGradKernel & co.) are what Backward
// actually calls; their output must match the explicit chain-rule tensor
// expression at each fixed ISA.
TEST(AutogradTest, FusedGradientKernelsMatchChainRulePerIsa) {
  for (const common::SimdIsa isa : GradcheckIsas()) {
    common::ScopedSimdIsa pin(isa);
    SCOPED_TRACE(common::SimdIsaName(isa));
    Rng rng(91);
    Tensor x0 = Tensor::RandUniform({3, 13}, -2, 2, &rng);

    Variable xs(x0.Clone(), /*requires_grad=*/true);
    ag::SumAll(ag::Sigmoid(xs)).Backward();
    Tensor y = x0.Sigmoid();
    // d(sigmoid)/dx = y * (1 - y), written out with unfused tensor ops.
    Tensor expected = y.Mul(Tensor::Ones(y.shape()).Sub(y));
    EXPECT_TRUE(xs.grad().AllClose(expected, 1e-6f));

    Variable xt(x0.Clone(), /*requires_grad=*/true);
    ag::SumAll(ag::Tanh(xt)).Backward();
    Tensor t = x0.Tanh();
    expected = Tensor::Ones(t.shape()).Sub(t.Mul(t));
    EXPECT_TRUE(xt.grad().AllClose(expected, 1e-6f));

    Variable xe(x0.Clone(), /*requires_grad=*/true);
    ag::SumAll(ag::Exp(xe)).Backward();
    EXPECT_TRUE(xe.grad().AllClose(x0.Exp(), 1e-6f));
  }
}

TEST(AutogradTest, ReluGradcheckAwayFromKink) {
  // Keep inputs away from 0 where the derivative is undefined.
  Rng rng(22);
  Tensor t = Tensor::RandUniform({4, 4}, 0.2f, 2.0f, &rng);
  Tensor signs = Tensor::RandUniform({4, 4}, -1.0f, 1.0f, &rng)
                     .Map([](float v) { return v > 0 ? 1.0f : -1.0f; });
  Variable x(t.Mul(signs), true);
  auto fn = [](const std::vector<Variable>& in) {
    return ag::SumAll(ag::Relu(in[0]));
  };
  ExpectGradientsClose(fn, {x}, /*eps=*/1e-2f);
}

TEST(AutogradTest, AbsGradcheckAwayFromKink) {
  Rng rng(23);
  Tensor t = Tensor::RandUniform({4, 4}, 0.3f, 2.0f, &rng);
  Variable x(t, true);
  auto fn = [](const std::vector<Variable>& in) {
    return ag::SumAll(ag::Abs(in[0]));
  };
  ExpectGradientsClose(fn, {x});
}

TEST(AutogradTest, SoftmaxGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable sm = ag::Softmax(in[0], 1);
    // Weighted sum so the gradient is non-trivial.
    Variable w(Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0.5, 2}));
    return ag::SumAll(ag::Mul(sm, w));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 31)});
}

TEST(AutogradTest, SoftmaxLastAxisGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable sm = ag::Softmax(in[0], -1);
    return ag::SumAll(ag::Mul(sm, sm));
  };
  ExpectGradientsClose(fn, {Leaf({2, 2, 4}, 32)});
}

TEST(AutogradTest, ReductionGradchecks) {
  auto sum_fn = [](const std::vector<Variable>& in) {
    Variable s = ag::Sum(in[0], 1);
    return ag::SumAll(ag::Mul(s, s));
  };
  ExpectGradientsClose(sum_fn, {Leaf({3, 4}, 33)});
  auto mean_fn = [](const std::vector<Variable>& in) {
    Variable m = ag::Mean(in[0], 0, /*keepdim=*/true);
    return ag::SumAll(ag::Mul(m, m));
  };
  ExpectGradientsClose(mean_fn, {Leaf({3, 4}, 34)});
  auto mean_all_fn = [](const std::vector<Variable>& in) {
    Variable m = ag::MeanAll(in[0]);
    return ag::Mul(m, m);
  };
  ExpectGradientsClose(mean_all_fn, {Leaf({2, 5}, 35)});
}

TEST(AutogradTest, ShapeOpGradchecks) {
  auto reshape_fn = [](const std::vector<Variable>& in) {
    Variable r = ag::Reshape(in[0], {4, 3});
    return ag::SumAll(ag::Mul(r, r));
  };
  ExpectGradientsClose(reshape_fn, {Leaf({3, 4}, 36)});

  auto transpose_fn = [](const std::vector<Variable>& in) {
    Variable t = ag::Transpose(in[0], 0, 1);
    Variable w(Tensor::Arange(12).Reshape({4, 3}));
    return ag::SumAll(ag::Mul(t, w));
  };
  ExpectGradientsClose(transpose_fn, {Leaf({3, 4}, 37)});

  auto permute_fn = [](const std::vector<Variable>& in) {
    Variable p = ag::Permute(in[0], {2, 0, 1});
    return ag::SumAll(ag::Mul(p, p));
  };
  ExpectGradientsClose(permute_fn, {Leaf({2, 3, 4}, 38)});

  auto slice_fn = [](const std::vector<Variable>& in) {
    Variable s = ag::Slice(in[0], 1, 1, 3);
    return ag::SumAll(ag::Mul(s, s));
  };
  ExpectGradientsClose(slice_fn, {Leaf({2, 4}, 39)});
}

TEST(AutogradTest, SliceGradientZeroOutsideRange) {
  Variable x(Tensor::Arange(8).Reshape({2, 4}), true);
  Variable s = ag::Slice(x, 1, 1, 3);
  ag::SumAll(s).Backward();
  EXPECT_TRUE(x.grad().AllClose(
      Tensor::FromVector({2, 4}, {0, 1, 1, 0, 0, 1, 1, 0})));
}

TEST(AutogradTest, ConcatGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable c = ag::Concat({in[0], in[1]}, 1);
    return ag::SumAll(ag::Mul(c, c));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 40), Leaf({2, 2}, 41)});
}

TEST(AutogradTest, StackGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable s = ag::Stack({in[0], in[1]}, 0);
    return ag::SumAll(ag::Mul(s, s));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 42), Leaf({2, 3}, 43)});
}

TEST(AutogradTest, EmbeddingLookupGradScatter) {
  Variable w(Tensor::Arange(6).Reshape({3, 2}), true);
  Variable picked = ag::EmbeddingLookup(w, {1, 1, 2});
  ag::SumAll(picked).Backward();
  EXPECT_TRUE(w.grad().AllClose(
      Tensor::FromVector({3, 2}, {0, 0, 2, 2, 1, 1})));
}

TEST(AutogradTest, EmbeddingLookupGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable e = ag::EmbeddingLookup(in[0], {0, 2, 2, 1});
    return ag::SumAll(ag::Mul(e, e));
  };
  ExpectGradientsClose(fn, {Leaf({3, 4}, 44)});
}

TEST(AutogradTest, BroadcastToGradcheck) {
  auto fn = [](const std::vector<Variable>& in) {
    Variable b = ag::BroadcastTo(in[0], {4, 2, 3});
    return ag::SumAll(ag::Mul(b, b));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 45)});
}

TEST(AutogradTest, DropoutTrainEvalSemantics) {
  Rng rng(46);
  Variable x(Tensor::Ones({1000}), true);
  Variable eval_out = ag::Dropout(x, 0.4f, /*training=*/false, &rng);
  EXPECT_TRUE(eval_out.value().AllClose(x.value()));
  Variable train_out = ag::Dropout(x, 0.4f, /*training=*/true, &rng);
  // Mean preserved in expectation by inverted scaling.
  EXPECT_NEAR(train_out.value().MeanAll(), 1.0f, 0.1f);
  // Gradient equals the mask.
  ag::SumAll(train_out).Backward();
  EXPECT_TRUE(x.grad().AllClose(
      train_out.value()));  // since x is all-ones, out == mask
}

TEST(AutogradTest, GateCompositeGradcheck) {
  // A GRU-style gate: z = sigmoid(x W + h U); out = z*h + (1-z)*tanh(x).
  auto fn = [](const std::vector<Variable>& in) {
    const Variable& x = in[0];
    const Variable& h = in[1];
    const Variable& w = in[2];
    const Variable& u = in[3];
    Variable z = ag::Sigmoid(ag::Add(ag::Matmul(x, w), ag::Matmul(h, u)));
    Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    Variable out = ag::Add(ag::Mul(z, h), ag::Mul(one_minus_z, ag::Tanh(x)));
    return ag::SumAll(ag::Mul(out, out));
  };
  ExpectGradientsClose(fn, {Leaf({2, 3}, 47), Leaf({2, 3}, 48),
                            Leaf({3, 3}, 49), Leaf({3, 3}, 50)});
}

TEST(AutogradTest, AttentionCompositeGradcheck) {
  // softmax(QK^T) V: the self-learning-graph pattern of Eq (6).
  auto fn = [](const std::vector<Variable>& in) {
    Variable scores = ag::Matmul(in[0], ag::Transpose(in[1], 0, 1));
    Variable attn = ag::Softmax(scores, 1);
    Variable out = ag::Matmul(attn, in[2]);
    return ag::SumAll(ag::Mul(out, out));
  };
  ExpectGradientsClose(fn, {Leaf({3, 2}, 51), Leaf({3, 2}, 52),
                            Leaf({3, 2}, 53)});
}

TEST(AutogradTest, LossGradchecks) {
  auto mae_fn = [](const std::vector<Variable>& in) {
    Variable target(Tensor::FromVector({2, 2}, {5, -3, 2, 7}));
    return ag::MaeLoss(in[0], target);
  };
  ExpectGradientsClose(mae_fn, {Leaf({2, 2}, 54)});

  auto mse_fn = [](const std::vector<Variable>& in) {
    Variable target(Tensor::FromVector({2, 2}, {5, -3, 2, 7}));
    return ag::MseLoss(in[0], target);
  };
  ExpectGradientsClose(mse_fn, {Leaf({2, 2}, 55)});
}

TEST(AutogradTest, MaskedMaeIgnoresNullTargets) {
  Variable pred(Tensor::FromVector({4}, {1, 2, 3, 4}), true);
  Variable target(Tensor::FromVector({4}, {0, 0, 5, 8}));
  Variable loss = ag::MaskedMaeLoss(pred, target, /*null_threshold=*/1e-3f);
  // Only elements 2 and 3 count: (|3-5| + |4-8|) / 2 = 3.
  EXPECT_NEAR(loss.value().item(), 3.0f, 1e-5f);
  loss.Backward();
  EXPECT_EQ(pred.grad().flat(0), 0.0f);
  EXPECT_EQ(pred.grad().flat(1), 0.0f);
  EXPECT_NE(pred.grad().flat(2), 0.0f);
}

TEST(AutogradTest, MaskedMaeAllNullIsZero) {
  Variable pred(Tensor::FromVector({2}, {1, 2}), true);
  Variable target(Tensor::Zeros({2}));
  Variable loss = ag::MaskedMaeLoss(pred, target, 1e-3f);
  EXPECT_EQ(loss.value().item(), 0.0f);
  loss.Backward();
  EXPECT_TRUE(pred.grad().AllClose(Tensor::Zeros({2})));
}

TEST(AutogradTest, InferenceGraphDropsHistory) {
  // With no trainable leaves, interior nodes must not retain parents.
  Variable a(Tensor::Ones({2, 2}));
  Variable b(Tensor::Ones({2, 2}));
  Variable c = ag::Matmul(a, b);
  EXPECT_FALSE(c.needs_grad());
  EXPECT_TRUE(c.node()->parents.empty());
}

TEST(AutogradTest, SameShapeFastPathGradcheck) {
  // The non-broadcast closures take the fused ReduceTo-skipping paths
  // (axpy for Sub/MulScalar, multiply-accumulate for Mul/Exp, fused
  // kernel for Div rhs); verify them against finite differences.
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable q = ag::Div(ag::Mul(v[0], v[1]), ag::AddScalar(v[1], 2.5f));
        Variable r = ag::Sub(ag::MulScalar(v[0], -1.7f), q);
        return ag::SumAll(ag::Add(r, ag::Exp(v[0])));
      },
      {Leaf({3, 5}, 91), Leaf({3, 5}, 92, 0.5f, 1.5f)});
}

TEST(AutogradTest, FusedActivationGradcheckComposite) {
  // Sigmoid/Tanh/Relu/Softmax backward all route through the fused
  // kernels; chain them the way a GRU gate does.
  ExpectGradientsClose(
      [](const std::vector<Variable>& v) {
        Variable z = ag::Sigmoid(v[0]);
        Variable r = ag::Tanh(v[1]);
        Variable h = ag::Relu(ag::Mul(z, r));
        return ag::SumAll(ag::Mul(ag::Softmax(h, -1), z));
      },
      {Leaf({4, 6}, 93), Leaf({4, 6}, 94)});
}

TEST(AutogradTest, NoGradGuardSkipsGraphConstruction) {
  Variable w(Tensor::Ones({3, 3}), /*requires_grad=*/true);
  Variable x(Tensor::Ones({3, 3}));
  {
    ag::NoGradGuard guard;
    EXPECT_FALSE(ag::GradEnabled());
    Variable y = ag::Matmul(x, w);
    // The result is a plain leaf: no parents, no gradient flow, even
    // though w requires grad.
    EXPECT_FALSE(y.needs_grad());
    EXPECT_TRUE(y.node()->parents.empty());
    EXPECT_FALSE(static_cast<bool>(y.node()->backward_fn));
    // Values are still computed normally.
    EXPECT_TRUE(y.value().AllClose(Tensor::Full({3, 3}, 3.0f)));
  }
  EXPECT_TRUE(ag::GradEnabled());
  // Guards nest and restore the outer state.
  {
    ag::NoGradGuard outer;
    {
      ag::NoGradGuard inner;
      EXPECT_FALSE(ag::GradEnabled());
    }
    EXPECT_FALSE(ag::GradEnabled());
  }
  EXPECT_TRUE(ag::GradEnabled());
}

TEST(AutogradTest, NoGradGuardLeavesParamsUntouched) {
  Variable w = Leaf({4, 4}, 95);
  const Tensor w_before = w.value().Clone();
  {
    ag::NoGradGuard guard;
    Variable y = ag::Sigmoid(ag::Matmul(Leaf({4, 4}, 96), w));
    (void)y;
  }
  EXPECT_FALSE(w.has_grad());
  EXPECT_EQ(Tensor::MaxAbsDiff(w.value(), w_before), 0.0f);
  // Gradient flow works again once the guard is gone.
  ag::SumAll(ag::Mul(w, w)).Backward();
  EXPECT_TRUE(w.has_grad());
}

TEST(AutogradTest, NoGradGuardKeepsForwardOpsFlat) {
  obs::Counter* fwd =
      obs::Registry::Global().GetCounter("autograd.forward_ops");
  Variable w = Leaf({4, 4}, 97);
  const int64_t before = fwd->Value();
  {
    ag::NoGradGuard guard;
    Variable y = ag::Tanh(ag::Matmul(Leaf({4, 4}, 98), w));
    (void)y;
  }
  EXPECT_EQ(fwd->Value(), before);
  Variable y = ag::Tanh(ag::Matmul(Leaf({4, 4}, 99), w));
  EXPECT_GT(fwd->Value(), before);
}

TEST(AutogradTest, DeepChainBackwardDoesNotOverflow) {
  // Simulates long BPTT chains (encoder-decoder over many steps).
  Variable x(Tensor::Full({4}, 1.0001f), true);
  Variable y = x;
  for (int i = 0; i < 3000; ++i) {
    y = ag::MulScalar(y, 1.0f);
  }
  ag::SumAll(y).Backward();
  EXPECT_TRUE(x.grad().AllClose(Tensor::Ones({4}), 1e-4f));
}

}  // namespace
}  // namespace tgcrn
