// Copyright 2026 TGCRN Reproduction Authors
// Tests of the kernel cost profiler (obs/prof.h): attribution-tree shape on
// hand-built nested scopes, the determinism contract (invocation/flop
// counts bitwise identical across thread counts and ISA levels), the
// perf_event fallback path, report arithmetic (delta/accumulate/collapsed),
// the DiffProfiles gating rules, the per-epoch "prof" JSONL round trip —
// and the guarantee that the profiler never changes what training computes
// (bitwise losses, zero-alloc steady state when off).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"
#include "obs/diff.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

using common::ScopedNumThreads;
using common::ScopedSimdIsa;
using common::SimdIsa;

// Arms the profiler for one test body and guarantees it is disarmed (and
// the accumulators cleared) on every exit path, so tests cannot leak an
// armed profiler into each other.
class ScopedProfiler {
 public:
  explicit ScopedProfiler(bool counters = false) {
    obs::ProfOptions options;
    options.enabled = true;
    options.counters = counters;
    obs::StartProfiling(options);
  }
  ~ScopedProfiler() {
    obs::StopProfiling();
    obs::ResetProfile();
  }
};

const obs::ProfNodeReport* FindNode(const obs::ProfReport& report,
                                    const std::string& name) {
  for (const auto& node : report.nodes) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

const obs::ProfKernelReport* FindKernel(const obs::ProfReport& report,
                                        const std::string& name) {
  for (const auto& kernel : report.kernels) {
    if (kernel.name == name) return &kernel;
  }
  return nullptr;
}

// ------------------------------------------------------------ Options --

TEST(ProfOptionsTest, FromEnvParsesOffOnAndPath) {
  unsetenv("TGCRN_PROF");
  unsetenv("TGCRN_PROF_COUNTERS");
  obs::ProfOptions off = obs::ProfOptions::FromEnv();
  EXPECT_FALSE(off.enabled);
  EXPECT_TRUE(off.counters);
  EXPECT_TRUE(off.path.empty());

  setenv("TGCRN_PROF", "0", 1);
  EXPECT_FALSE(obs::ProfOptions::FromEnv().enabled);

  setenv("TGCRN_PROF", "1", 1);
  obs::ProfOptions on = obs::ProfOptions::FromEnv();
  EXPECT_TRUE(on.enabled);
  EXPECT_TRUE(on.path.empty());

  setenv("TGCRN_PROF", "/tmp/run.prof.json", 1);
  setenv("TGCRN_PROF_COUNTERS", "0", 1);
  obs::ProfOptions with_path = obs::ProfOptions::FromEnv();
  EXPECT_TRUE(with_path.enabled);
  EXPECT_EQ(with_path.path, "/tmp/run.prof.json");
  EXPECT_FALSE(with_path.counters);

  unsetenv("TGCRN_PROF");
  unsetenv("TGCRN_PROF_COUNTERS");
}

// ----------------------------------------------------- Tree structure --

void LeafScope() {
  TGCRN_TRACE_SCOPE("test.leaf");
  obs::RecordKernelCost("test.leaf", 100.0, 40.0);
}

void MiddleScope(int leaf_calls) {
  TGCRN_TRACE_SCOPE("test.middle");
  for (int i = 0; i < leaf_calls; ++i) LeafScope();
}

TEST(ProfTreeTest, NestedScopesBuildAttributionTree) {
  ScopedProfiler profiler;
  {
    TGCRN_TRACE_SCOPE("test.outer");
    MiddleScope(3);
    MiddleScope(2);
    LeafScope();  // same leaf under a different parent
  }
  const obs::ProfReport report = obs::CollectProfReport();

  ASSERT_FALSE(report.nodes.empty());
  EXPECT_EQ(report.nodes[0].name, "root");
  EXPECT_EQ(report.nodes[0].parent, -1);

  const obs::ProfNodeReport* outer = FindNode(report, "test.outer");
  const obs::ProfNodeReport* middle = FindNode(report, "test.middle");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  EXPECT_EQ(outer->parent, 0);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(middle->count, 2);
  EXPECT_EQ(report.nodes[static_cast<size_t>(middle->parent)].name,
            "test.outer");

  // "test.leaf" appears twice: under middle and directly under outer. The
  // path, not the name, is a node's identity.
  int leaf_nodes = 0;
  int64_t leaf_count_total = 0;
  for (const auto& node : report.nodes) {
    if (node.name != "test.leaf") continue;
    ++leaf_nodes;
    leaf_count_total += node.count;
    const auto& parent = report.nodes[static_cast<size_t>(node.parent)];
    EXPECT_TRUE(parent.name == "test.middle" || parent.name == "test.outer");
  }
  EXPECT_EQ(leaf_nodes, 2);
  EXPECT_EQ(leaf_count_total, 6);

  // Inclusive >= exclusive >= 0 everywhere; parents precede children
  // (preorder).
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    const auto& node = report.nodes[i];
    EXPECT_GE(node.inclusive_seconds, node.exclusive_seconds) << node.name;
    EXPECT_GE(node.exclusive_seconds, 0.0) << node.name;
    if (node.parent >= 0) EXPECT_LT(node.parent, static_cast<int64_t>(i));
  }

  // The kernel summary aggregated both leaf paths.
  const obs::ProfKernelReport* leaf = FindKernel(report, "test.leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->invocations, 6);
  EXPECT_DOUBLE_EQ(leaf->flops, 600.0);
  EXPECT_DOUBLE_EQ(leaf->bytes, 240.0);
}

TEST(ProfTreeTest, CurrentProfLeafNameTracksInnermostScope) {
  EXPECT_EQ(obs::CurrentProfLeafName(), nullptr);  // profiler off
  ScopedProfiler profiler;
  EXPECT_EQ(obs::CurrentProfLeafName(), nullptr);  // no scope open
  {
    TGCRN_TRACE_SCOPE("test.outer");
    EXPECT_STREQ(obs::CurrentProfLeafName(), "test.outer");
    {
      TGCRN_TRACE_SCOPE("test.inner");
      EXPECT_STREQ(obs::CurrentProfLeafName(), "test.inner");
    }
    EXPECT_STREQ(obs::CurrentProfLeafName(), "test.outer");
  }
}

TEST(ProfTreeTest, WorkerAttributionScopeBuildsWorkerFrame) {
  ScopedProfiler profiler;
  {
    obs::WorkerAttributionScope attribution("test.kernel");
    obs::RecordKernelCost("test.kernel", 10.0, 4.0);
  }
  { obs::WorkerAttributionScope no_op(nullptr); }
  const obs::ProfReport report = obs::CollectProfReport();

  const obs::ProfNodeReport* worker = FindNode(report, "worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->parent, 0);
  const obs::ProfNodeReport* kernel = FindNode(report, "test.kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(report.nodes[static_cast<size_t>(kernel->parent)].name, "worker");

  // Helper-side analytic costs count invocations but land as worker time,
  // not caller-exclusive time.
  const obs::ProfKernelReport* summary = FindKernel(report, "test.kernel");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->invocations, 1);
  EXPECT_GE(summary->worker_seconds, 0.0);
}

TEST(ProfTreeTest, ResetProfileClearsAccumulatorsKeepsCollection) {
  ScopedProfiler profiler;
  LeafScope();
  obs::ResetProfile();
  const obs::ProfReport cleared = obs::CollectProfReport();
  const obs::ProfKernelReport* leaf = FindKernel(cleared, "test.leaf");
  if (leaf != nullptr) EXPECT_EQ(leaf->invocations, 0);

  LeafScope();  // collection is still armed
  const obs::ProfReport after = obs::CollectProfReport();
  leaf = FindKernel(after, "test.leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->invocations, 1);
}

TEST(ProfTreeTest, RecordKernelCostOffIsANoOp) {
  ASSERT_FALSE(obs::ProfilingEnabled());
  obs::RecordKernelCost("test.never", 1e9, 1e9);
  ScopedProfiler profiler;
  EXPECT_EQ(FindKernel(obs::CollectProfReport(), "test.never"), nullptr);
}

// -------------------------------------------------------- Determinism --

// One fixed workload touching GEMM, vmath, softmax, and reduction kernels.
void RunWorkload() {
  Rng rng(1234);
  const Tensor a = Tensor::RandUniform({64, 96}, -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::RandUniform({96, 48}, -1.0f, 1.0f, &rng);
  const Tensor c = a.Matmul(b);
  const Tensor s = c.Sigmoid().Tanh();
  const Tensor soft = s.Softmax(-1);
  (void)soft.SumAll();
}

// Kernel invocation counts and analytic flop/byte totals come from shapes
// only: bitwise identical at 1/2/4/8 threads and for scalar vs AVX2.
TEST(ProfDeterminismTest, KernelCountsInvariantAcrossThreadsAndIsa) {
  struct KernelCost {
    int64_t invocations;
    double flops;
    double bytes;
  };
  std::vector<SimdIsa> isas = {SimdIsa::kScalar};
  if (common::CpuSupportsAvx2() && common::Avx2CompiledIn()) {
    isas.push_back(SimdIsa::kAvx2);
  }

  std::map<std::string, KernelCost> reference;
  bool have_reference = false;
  for (const SimdIsa isa : isas) {
    ScopedSimdIsa isa_guard(isa);
    for (const int threads : {1, 2, 4, 8}) {
      ScopedNumThreads thread_guard(threads);
      ScopedProfiler profiler;
      RunWorkload();
      const obs::ProfReport report = obs::CollectProfReport();

      std::map<std::string, KernelCost> got;
      for (const auto& kernel : report.kernels) {
        got[kernel.name] = {kernel.invocations, kernel.flops, kernel.bytes};
      }
      ASSERT_FALSE(got.empty());
      EXPECT_EQ(got.count("tensor.Matmul"), 1u);
      EXPECT_EQ(got.count("tensor.Softmax"), 1u);
      if (!have_reference) {
        reference = got;
        have_reference = true;
        continue;
      }
      ASSERT_EQ(got.size(), reference.size())
          << "kernel set changed at " << threads << " threads, "
          << common::SimdIsaName(isa);
      for (const auto& [name, cost] : reference) {
        ASSERT_EQ(got.count(name), 1u) << name;
        EXPECT_EQ(got[name].invocations, cost.invocations) << name;
        EXPECT_EQ(got[name].flops, cost.flops) << name;  // bitwise
        EXPECT_EQ(got[name].bytes, cost.bytes) << name;
      }
    }
  }
}

TEST(ProfDeterminismTest, MatmulFlopModelMatchesShape) {
  ScopedProfiler profiler;
  Rng rng(7);
  const Tensor a = Tensor::RandUniform({32, 80}, -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::RandUniform({80, 24}, -1.0f, 1.0f, &rng);
  (void)a.Matmul(b);
  const obs::ProfKernelReport* kernel =
      FindKernel(obs::CollectProfReport(), "tensor.Matmul");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->invocations, 1);
  EXPECT_DOUBLE_EQ(kernel->flops, 2.0 * 32 * 24 * 80);
  EXPECT_DOUBLE_EQ(kernel->bytes,
                   4.0 * (32 * 80 + 80 * 24 + 32 * 24));
  EXPECT_GT(kernel->ArithmeticIntensity(), 0.0);
}

// ------------------------------------------------- perf_event fallback --

TEST(ProfPerfTest, ForcedUnavailableFallsBackCleanly) {
  obs::SetPerfForceUnavailableForTesting(true);
  const obs::PerfCounterSample sample = obs::SampleThreadPerfCounters();
  EXPECT_FALSE(sample.available);
  EXPECT_EQ(sample.cycles, 0);
  EXPECT_EQ(sample.instructions, 0);
  EXPECT_FALSE(obs::PerfCountersAvailable());

  // Profiling still works end to end without counters.
  {
    ScopedProfiler profiler(/*counters=*/true);
    LeafScope();
    const obs::ProfReport report = obs::CollectProfReport();
    EXPECT_FALSE(report.counters_available);
    const obs::ProfKernelReport* leaf = FindKernel(report, "test.leaf");
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->invocations, 1);
    EXPECT_EQ(leaf->instructions, 0);
    EXPECT_EQ(leaf->cycles, 0);
    EXPECT_EQ(leaf->Ipc(), 0.0);
  }
  obs::SetPerfForceUnavailableForTesting(false);
}

// -------------------------------------------------- Report arithmetic --

obs::ProfReport MakeReport(int64_t invocations, double flops,
                           double seconds) {
  obs::ProfReport report;
  report.isa = "scalar";
  report.threads = 1;
  obs::ProfNodeReport root;
  root.name = "root";
  root.parent = -1;
  root.inclusive_seconds = seconds;
  obs::ProfNodeReport kernel_node;
  kernel_node.name = "tensor.Matmul";
  kernel_node.parent = 0;
  kernel_node.count = invocations;
  kernel_node.inclusive_seconds = seconds;
  kernel_node.exclusive_seconds = seconds;
  kernel_node.flops = flops;
  report.nodes = {root, kernel_node};
  obs::ProfKernelReport kernel;
  kernel.name = "tensor.Matmul";
  kernel.invocations = invocations;
  kernel.exclusive_seconds = seconds;
  kernel.flops = flops;
  kernel.bytes = flops / 2.0;
  report.kernels = {kernel};
  return report;
}

TEST(ProfReportTest, DeltaFromSubtractsByPathAndName) {
  const obs::ProfReport prev = MakeReport(10, 1000.0, 1.0);
  const obs::ProfReport now = MakeReport(35, 3500.0, 4.5);
  const obs::ProfReport delta = now.DeltaFrom(prev);
  const obs::ProfKernelReport* kernel = FindKernel(delta, "tensor.Matmul");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->invocations, 25);
  EXPECT_DOUBLE_EQ(kernel->flops, 2500.0);
  EXPECT_DOUBLE_EQ(kernel->exclusive_seconds, 3.5);
  const obs::ProfNodeReport* node = FindNode(delta, "tensor.Matmul");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 25);
}

TEST(ProfReportTest, AccumulateIsDeltaInverse) {
  obs::ProfReport total = MakeReport(10, 1000.0, 1.0);
  total.Accumulate(MakeReport(25, 2500.0, 3.5));
  const obs::ProfKernelReport* kernel = FindKernel(total, "tensor.Matmul");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->invocations, 35);
  EXPECT_DOUBLE_EQ(kernel->flops, 3500.0);
  EXPECT_DOUBLE_EQ(kernel->exclusive_seconds, 4.5);
  // Node tree merged by path too.
  const obs::ProfNodeReport* node = FindNode(total, "tensor.Matmul");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->count, 35);
  EXPECT_EQ(total.nodes.size(), 2u);  // no duplicate paths
}

TEST(ProfReportTest, JsonRoundTripPreservesEverything) {
  obs::ProfReport report = MakeReport(10, 1000.0, 1.0);
  report.counters_available = true;
  report.kernels[0].instructions = 4000;
  report.kernels[0].cycles = 2000;
  report.kernels[0].l1_misses = 7;
  const obs::ProfReport loaded =
      obs::ProfReport::FromJson(report.ToJson());
  EXPECT_TRUE(loaded.counters_available);
  EXPECT_EQ(loaded.isa, "scalar");
  EXPECT_EQ(loaded.threads, 1);
  ASSERT_EQ(loaded.nodes.size(), report.nodes.size());
  EXPECT_EQ(loaded.nodes[1].parent, 0);
  EXPECT_EQ(loaded.nodes[1].count, 10);
  ASSERT_EQ(loaded.kernels.size(), 1u);
  EXPECT_EQ(loaded.kernels[0].invocations, 10);
  EXPECT_DOUBLE_EQ(loaded.kernels[0].flops, 1000.0);
  EXPECT_EQ(loaded.kernels[0].instructions, 4000);
  EXPECT_EQ(loaded.kernels[0].cycles, 2000);
  EXPECT_EQ(loaded.kernels[0].l1_misses, 7);
  EXPECT_DOUBLE_EQ(loaded.kernels[0].Ipc(), 2.0);
}

TEST(ProfReportTest, CollapsedStacksUsePathsAndExclusiveNanos) {
  obs::ProfReport report = MakeReport(10, 1000.0, 1.0);
  const std::string collapsed = report.ToCollapsed();
  // "root;tensor.Matmul 1000000000" — semicolon-joined path, exclusive ns.
  EXPECT_NE(collapsed.find("root;tensor.Matmul 1000000000"),
            std::string::npos)
      << collapsed;
}

// ------------------------------------------------------- Diff gating --

TEST(DiffProfilesTest, SelfDiffPassesAtZeroThreshold) {
  const obs::ProfReport report = MakeReport(10, 1000.0, 1.0);
  obs::ReportDiffOptions options;
  options.max_regress_pct = 0.0;
  const obs::ReportDiffResult result =
      obs::DiffProfiles(report, report, options);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.rows.empty());
}

TEST(DiffProfilesTest, InvocationIncreaseGatesAndCyclesAreInfo) {
  obs::ProfReport baseline = MakeReport(100, 1000.0, 1.0);
  obs::ProfReport candidate = MakeReport(120, 1200.0, 1.2);
  obs::ReportDiffOptions options;
  options.max_regress_pct = 10.0;

  // Without counters, only invocations are compared: +20% regresses.
  obs::ReportDiffResult result =
      obs::DiffProfiles(baseline, candidate, options);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].metric, "prof.tensor.Matmul.invocations");
  EXPECT_TRUE(result.rows[0].regressed);

  // With counters on both sides: instructions gate, cycles/ipc never do.
  baseline.counters_available = true;
  candidate.counters_available = true;
  baseline.kernels[0].instructions = 1000;
  baseline.kernels[0].cycles = 500;
  candidate.kernels[0].instructions = 5000;  // way past 10%
  candidate.kernels[0].cycles = 50000;       // huge, but info-only
  result = obs::DiffProfiles(baseline, candidate, options);
  bool instructions_regressed = false;
  for (const auto& row : result.rows) {
    if (row.metric == "prof.instructions") {
      EXPECT_TRUE(row.gated);
      instructions_regressed = row.regressed;
    }
    if (row.metric == "prof.cycles" || row.metric == "prof.ipc") {
      EXPECT_FALSE(row.gated);
      EXPECT_FALSE(row.regressed);
    }
  }
  EXPECT_TRUE(instructions_regressed);

  // Counters on one side only: the hardware rows disappear entirely.
  candidate.counters_available = false;
  result = obs::DiffProfiles(baseline, candidate, options);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.metric.find("prof.instructions"), std::string::npos);
  }
}

// -------------------------------------------- Trainer integration ------

class ProfTrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 6;
    config.num_days = 10;
    config.seed = 77;
    config.target_mean_inflow = 50.0;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    dataset_ = new data::ForecastDataset(std::move(sim.data), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static core::TGCRNConfig SmallModelConfig() {
    core::TGCRNConfig config;
    config.num_nodes = 6;
    config.input_dim = 2;
    config.output_dim = 2;
    config.horizon = 2;
    config.hidden_dim = 8;
    config.num_layers = 1;
    config.node_embed_dim = 6;
    config.time_embed_dim = 4;
    config.steps_per_day = 72;
    return config;
  }

  static data::ForecastDataset* dataset_;
};

data::ForecastDataset* ProfTrainFixture::dataset_ = nullptr;

TEST_F(ProfTrainFixture, EpochJsonlCarriesProfDeltas) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tgcrn_prof_test_run.jsonl")
          .string();
  std::filesystem::remove(path);

  Rng rng(41);
  core::TGCRN model(SmallModelConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 2;
  config.max_batches_per_epoch = 6;
  config.verbose = false;
  config.report_path = path;
  config.health.enabled = false;
  config.prof.enabled = true;
  config.prof.counters = false;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);
  obs::StopProfiling();
  obs::ResetProfile();

  ASSERT_EQ(result.report.epochs.size(), 2u);
  for (const auto& epoch : result.report.epochs) {
    ASSERT_TRUE(epoch.has_prof);
    EXPECT_FALSE(epoch.prof.kernels.empty());
    EXPECT_FALSE(epoch.prof.nodes.empty());
    EXPECT_FALSE(epoch.prof.isa.empty());
    EXPECT_GT(epoch.prof.threads, 0);
    // The prof phase was timed like any other phase.
    EXPECT_GT(epoch.phase_seconds.count(obs::kPhaseProf), 0u);
    const obs::ProfKernelReport* matmul =
        FindKernel(epoch.prof, "tensor.Matmul");
    ASSERT_NE(matmul, nullptr);
    EXPECT_GT(matmul->invocations, 0);
    EXPECT_GT(matmul->flops, 0.0);
  }
  // Same batch count per epoch => identical per-epoch kernel invocations:
  // the deltas are exact, not smeared across epoch boundaries.
  const obs::ProfKernelReport* first =
      FindKernel(result.report.epochs[0].prof, "tensor.Matmul");
  const obs::ProfKernelReport* second =
      FindKernel(result.report.epochs[1].prof, "tensor.Matmul");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->invocations, second->invocations);

  // JSONL round trip preserves the prof blocks.
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  obs::RunReport loaded;
  ASSERT_TRUE(obs::RunReport::FromJsonl(buffer.str(), &loaded));
  ASSERT_EQ(loaded.epochs.size(), 2u);
  for (size_t i = 0; i < loaded.epochs.size(); ++i) {
    ASSERT_TRUE(loaded.epochs[i].has_prof);
    const obs::ProfReport& got = loaded.epochs[i].prof;
    const obs::ProfReport& want = result.report.epochs[i].prof;
    ASSERT_EQ(got.kernels.size(), want.kernels.size());
    for (size_t k = 0; k < got.kernels.size(); ++k) {
      EXPECT_EQ(got.kernels[k].name, want.kernels[k].name);
      EXPECT_EQ(got.kernels[k].invocations, want.kernels[k].invocations);
      EXPECT_DOUBLE_EQ(got.kernels[k].flops, want.kernels[k].flops);
    }
    ASSERT_EQ(got.nodes.size(), want.nodes.size());
  }
  std::filesystem::remove(path);
}

TEST_F(ProfTrainFixture, ProfilerDoesNotPerturbTraining) {
  core::TrainConfig config;
  config.epochs = 2;
  config.max_batches_per_epoch = 6;
  config.verbose = false;
  config.health.enabled = false;
  config.prof.enabled = false;

  Rng rng_off(55);
  core::TGCRN model_off(SmallModelConfig(), &rng_off);
  const auto result_off =
      core::TrainAndEvaluate(&model_off, *dataset_, config);

  config.prof.enabled = true;
  config.prof.counters = false;
  Rng rng_on(55);
  core::TGCRN model_on(SmallModelConfig(), &rng_on);
  const auto result_on = core::TrainAndEvaluate(&model_on, *dataset_, config);
  obs::StopProfiling();
  obs::ResetProfile();

  // The profiler observes; it must never change what the model computes.
  ASSERT_EQ(result_on.train_loss_history.size(),
            result_off.train_loss_history.size());
  for (size_t i = 0; i < result_on.train_loss_history.size(); ++i) {
    EXPECT_EQ(result_on.train_loss_history[i],
              result_off.train_loss_history[i]);  // bitwise
  }
  EXPECT_EQ(result_on.average.mae, result_off.average.mae);
}

// With the profiler off, instrumented kernels keep the zero-alloc
// steady-state contract: one relaxed load per scope, no bookkeeping.
TEST(ProfZeroAllocTest, ProfilerOffSteadyStateAllocatesNothing) {
  ASSERT_FALSE(obs::ProfilingEnabled());
  obs::Counter* allocs =
      obs::Registry::Global().GetCounter("tensor.allocations");

  Rng rng(9);
  const Tensor a = Tensor::RandUniform({32, 64}, -1.0f, 1.0f, &rng);
  const Tensor b = Tensor::RandUniform({64, 32}, -1.0f, 1.0f, &rng);
  auto step = [&] { (void)a.Matmul(b).Sigmoid().Softmax(-1).SumAll(); };
  for (int i = 0; i < 3; ++i) step();  // warm the buffer pool

  const int64_t before = allocs->Value();
  for (int i = 0; i < 5; ++i) step();
  EXPECT_EQ(allocs->Value(), before)
      << "profiler-off steady-state step allocated tensor storage";
}

// ----------------------------------------------------------- Files -----

TEST(ProfFilesTest, WriteProfileFilesEmitsJsonAndCollapsed) {
  const auto base =
      (std::filesystem::temp_directory_path() / "tgcrn_prof_test_profile")
          .string();
  const std::string json_path = base + ".json";
  std::filesystem::remove(json_path);
  std::filesystem::remove(json_path + ".collapsed");

  {
    ScopedProfiler profiler;
    {
      TGCRN_TRACE_SCOPE("test.outer");
      LeafScope();
    }
    ASSERT_TRUE(obs::WriteProfileFiles(json_path));
  }

  std::ifstream json_in(json_path);
  ASSERT_TRUE(json_in.good());
  std::ostringstream json_buffer;
  json_buffer << json_in.rdbuf();
  obs::Json json;
  ASSERT_TRUE(obs::Json::Parse(json_buffer.str(), &json));
  ASSERT_TRUE(json.Has("kernels"));
  const obs::ProfReport loaded = obs::ProfReport::FromJson(json);
  EXPECT_NE(FindKernel(loaded, "test.leaf"), nullptr);

  std::ifstream collapsed_in(json_path + ".collapsed");
  ASSERT_TRUE(collapsed_in.good());
  std::ostringstream collapsed_buffer;
  collapsed_buffer << collapsed_in.rdbuf();
  EXPECT_NE(collapsed_buffer.str().find("root;test.outer;test.leaf"),
            std::string::npos);

  std::filesystem::remove(json_path);
  std::filesystem::remove(json_path + ".collapsed");
}

}  // namespace
}  // namespace tgcrn
