// Copyright 2026 TGCRN Reproduction Authors
// Tests of the training-health monitor: deterministic tensor statistics,
// env-var option parsing, the non-finite sentinel (fatal and logging
// modes), activation taps, learned-graph diagnostics, and the health block
// a real 2-epoch train embeds in its JSONL report — plus the guarantee
// that an enabled monitor never changes the training result.
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/variable.h"
#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"
#include "obs/health.h"
#include "obs/report.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

using common::ScopedNumThreads;

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ------------------------------------------------------- Tensor stats --

TEST(TensorStatsTest, KnownValuesWithNonFinites) {
  const Tensor t = Tensor::FromVector(
      {8}, {1.0f, -2.0f, 0.0f, kNaN, kInf, 3.0f, 0.0f, -kInf});
  const obs::TensorStatsReport stats = obs::ComputeTensorStats(t);
  EXPECT_EQ(stats.count, 8);
  EXPECT_EQ(stats.nan_count, 1);
  EXPECT_EQ(stats.inf_count, 2);
  EXPECT_TRUE(stats.HasNonFinite());
  // Finite elements: {1, -2, 0, 3, 0}.
  EXPECT_DOUBLE_EQ(stats.mean, 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.rms, std::sqrt(14.0 / 5.0));
  EXPECT_DOUBLE_EQ(stats.min, -2.0);
  EXPECT_DOUBLE_EQ(stats.max, 3.0);
  EXPECT_DOUBLE_EQ(stats.zero_fraction, 2.0 / 8.0);
}

TEST(TensorStatsTest, EmptyAndAllNonFinite) {
  EXPECT_EQ(obs::ComputeTensorStats(Tensor::Zeros({0})).count, 0);
  const Tensor t = Tensor::FromVector({2}, {kNaN, kInf});
  const obs::TensorStatsReport stats = obs::ComputeTensorStats(t);
  EXPECT_EQ(stats.count, 2);
  EXPECT_EQ(stats.nan_count, 1);
  EXPECT_EQ(stats.inf_count, 1);
  // No finite elements: the moments stay at their zero defaults instead of
  // going NaN, so the report prints cleanly.
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_DOUBLE_EQ(stats.rms, 0.0);
}

TEST(TensorStatsTest, BitwiseDeterministicAcrossThreadCounts) {
  Rng rng(321);
  // Large enough for many reduction chunks and several pool threads.
  const Tensor t = Tensor::RandNormal({37, 1031}, 0.0f, 3.0f, &rng);
  obs::TensorStatsReport serial, parallel;
  {
    ScopedNumThreads guard(1);
    serial = obs::ComputeTensorStats(t);
  }
  {
    ScopedNumThreads guard(8);
    parallel = obs::ComputeTensorStats(t);
  }
  // Bitwise equality, not tolerance: the chunked reduction contract.
  EXPECT_EQ(serial.mean, parallel.mean);
  EXPECT_EQ(serial.rms, parallel.rms);
  EXPECT_EQ(serial.min, parallel.min);
  EXPECT_EQ(serial.max, parallel.max);
  EXPECT_EQ(serial.zero_fraction, parallel.zero_fraction);
}

TEST(TensorStatsTest, DescribeMentionsEveryField) {
  obs::TensorStatsReport stats;
  stats.count = 4;
  stats.nan_count = 3;
  const std::string text = obs::DescribeTensorStats(stats);
  EXPECT_NE(text.find("count=4"), std::string::npos);
  EXPECT_NE(text.find("nan=3"), std::string::npos);
  EXPECT_NE(text.find("rms="), std::string::npos);
  EXPECT_NE(text.find("zero_fraction="), std::string::npos);
}

// ------------------------------------------------------------ Options --

TEST(HealthOptionsTest, FromEnvParsesAllKnobs) {
  unsetenv("TGCRN_HEALTH");
  unsetenv("TGCRN_HEALTH_EVERY");
  unsetenv("TGCRN_HEALTH_FATAL");
  obs::HealthOptions off = obs::HealthOptions::FromEnv();
  EXPECT_FALSE(off.enabled);
  EXPECT_FALSE(off.fatal);
  EXPECT_EQ(off.every, 1);

  setenv("TGCRN_HEALTH", "1", 1);
  setenv("TGCRN_HEALTH_EVERY", "5", 1);
  setenv("TGCRN_HEALTH_FATAL", "1", 1);
  obs::HealthOptions on = obs::HealthOptions::FromEnv();
  EXPECT_TRUE(on.enabled);
  EXPECT_TRUE(on.fatal);
  EXPECT_EQ(on.every, 5);

  setenv("TGCRN_HEALTH", "0", 1);
  setenv("TGCRN_HEALTH_EVERY", "0", 1);  // clamped to 1
  setenv("TGCRN_HEALTH_FATAL", "0", 1);
  obs::HealthOptions zeros = obs::HealthOptions::FromEnv();
  EXPECT_FALSE(zeros.enabled);
  EXPECT_FALSE(zeros.fatal);
  EXPECT_EQ(zeros.every, 1);

  unsetenv("TGCRN_HEALTH");
  unsetenv("TGCRN_HEALTH_EVERY");
  unsetenv("TGCRN_HEALTH_FATAL");
}

TEST(HealthMonitorTest, ShouldSampleHonorsCadence) {
  obs::HealthOptions options;
  options.enabled = true;
  options.every = 3;
  obs::HealthMonitor monitor(options);
  EXPECT_TRUE(monitor.ShouldSample(0));
  EXPECT_FALSE(monitor.ShouldSample(1));
  EXPECT_FALSE(monitor.ShouldSample(2));
  EXPECT_TRUE(monitor.ShouldSample(3));

  obs::HealthMonitor disabled((obs::HealthOptions()));
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.ShouldSample(0));
  // A disabled monitor never opens a sampling window.
  disabled.BeginActivationSampling(0);
  EXPECT_FALSE(obs::HealthSamplingActive());
}

// ----------------------------------------------------- Train fixture --

class HealthTrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 6;
    config.num_days = 10;
    config.seed = 77;
    config.target_mean_inflow = 50.0;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    dataset_ = new data::ForecastDataset(std::move(sim.data), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static core::TGCRNConfig SmallModelConfig() {
    core::TGCRNConfig config;
    config.num_nodes = 6;
    config.input_dim = 2;
    config.output_dim = 2;
    config.horizon = 2;
    config.hidden_dim = 8;
    config.num_layers = 1;
    config.node_embed_dim = 6;
    config.time_embed_dim = 4;
    config.steps_per_day = 72;
    return config;
  }

  static data::ForecastDataset* dataset_;
};

data::ForecastDataset* HealthTrainFixture::dataset_ = nullptr;

// ----------------------------------------------------------- Sentinel --

TEST_F(HealthTrainFixture, FatalSentinelNamesModuleAndStep) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  obs::HealthOptions options;
  options.enabled = true;
  options.fatal = true;
  EXPECT_DEATH(
      {
        Rng rng(21);
        core::TGCRN model(SmallModelConfig(), &rng);
        obs::HealthMonitor monitor(options);
        monitor.Attach(model);
        auto params = model.NamedParameters();
        params.front().second.node()->AccumulateGrad(
            Tensor::Full(params.front().second.shape(), kNaN));
        monitor.HandleNonFiniteGradients(7);
      },
      "non-finite gradient in module '.*' at step 7");
}

TEST_F(HealthTrainFixture, FatalCollectAbortsOnNonFiniteParameter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  obs::HealthOptions options;
  options.enabled = true;
  options.fatal = true;
  EXPECT_DEATH(
      {
        Rng rng(22);
        core::TGCRN model(SmallModelConfig(), &rng);
        obs::HealthMonitor monitor(options);
        monitor.Attach(model);
        auto params = model.NamedParameters();
        params.front().second.mutable_value().mutable_data()[0] = kNaN;
        obs::HealthReport report;
        monitor.CollectInto(3, &report);
      },
      "non-finite parameter in module");
}

TEST_F(HealthTrainFixture, NonFatalSentinelCountsAndReports) {
  Rng rng(23);
  core::TGCRN model(SmallModelConfig(), &rng);
  obs::HealthOptions options;
  options.enabled = true;
  obs::HealthMonitor monitor(options);
  monitor.Attach(model);
  auto params = model.NamedParameters();
  params.front().second.node()->AccumulateGrad(
      Tensor::Full(params.front().second.shape(), kNaN));
  monitor.HandleNonFiniteGradients(1);
  monitor.HandleNonFiniteGradients(2);
  EXPECT_EQ(monitor.non_finite_steps(), 2);

  obs::HealthReport report;
  monitor.CollectInto(2, &report);
  EXPECT_EQ(report.non_finite_steps, 2);
  ASSERT_EQ(report.modules.size(), params.size());
  // The poisoned gradient shows up in the per-module stats.
  int64_t nan_grads = 0;
  for (const auto& module : report.modules) {
    nan_grads += module.grad.nan_count;
  }
  EXPECT_GT(nan_grads, 0);
  // CollectInto resets the interval counters.
  EXPECT_EQ(monitor.non_finite_steps(), 0);
}

// ---------------------------------------------------- Activation taps --

TEST_F(HealthTrainFixture, ActivationTapsObserveOnlyInsideWindow) {
  obs::HealthOptions options;
  options.enabled = true;
  obs::HealthMonitor monitor(options);

  const Tensor t = Tensor::FromVector({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  ASSERT_FALSE(obs::HealthSamplingActive());
  TGCRN_HEALTH_TAP("test.tap", t);  // no window: dropped

  monitor.BeginActivationSampling(11);
  ASSERT_TRUE(obs::HealthSamplingActive());
  TGCRN_HEALTH_TAP("test.tap", t);
  TGCRN_HEALTH_TAP("test.tap", t);
  monitor.EndActivationSampling();
  EXPECT_FALSE(obs::HealthSamplingActive());
  TGCRN_HEALTH_TAP("test.tap", t);  // window closed again

  obs::HealthReport report;
  monitor.CollectInto(11, &report);
  ASSERT_EQ(report.activations.size(), 1u);
  EXPECT_EQ(report.activations[0].name, "test.tap");
  EXPECT_EQ(report.activations[0].samples, 2);
  EXPECT_EQ(report.activations[0].stats.count, 8);
  EXPECT_DOUBLE_EQ(report.activations[0].stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(report.activations[0].stats.max, 4.0);
  // Accumulators were consumed by the collection.
  obs::HealthReport second;
  monitor.CollectInto(12, &second);
  EXPECT_TRUE(second.activations.empty());
}

// ------------------------------------------------- Graph diagnostics --

TEST_F(HealthTrainFixture, GraphHealthBoundsAndStability) {
  Rng rng(31);
  core::TGCRN model(SmallModelConfig(), &rng);
  const auto batches =
      dataset_->EpochBatches(data::ForecastDataset::Split::kTrain, 4, &rng);
  ASSERT_FALSE(batches.empty());
  const data::Batch batch =
      dataset_->MakeBatch(data::ForecastDataset::Split::kTrain, batches[0]);

  obs::GraphHealthReport first;
  ASSERT_TRUE(model.CollectGraphHealth(batch, &first));
  EXPECT_GE(first.row_entropy, 0.0);
  EXPECT_LE(first.row_entropy, 1.0);
  EXPECT_GT(first.sparsity, 0.0);
  EXPECT_LE(first.sparsity, 1.0);
  EXPECT_GE(first.temporal_drift, 0.0);
  EXPECT_GT(first.topk, 0);
  // No previous top-k snapshot yet.
  EXPECT_TRUE(std::isnan(first.topk_stability));

  // Same weights, same batch: the second collection sees an identical
  // graph, so every neighborhood is stable.
  obs::GraphHealthReport second;
  ASSERT_TRUE(model.CollectGraphHealth(batch, &second));
  EXPECT_DOUBLE_EQ(second.topk_stability, 1.0);
  EXPECT_EQ(second.row_entropy, first.row_entropy);
  EXPECT_EQ(second.temporal_drift, first.temporal_drift);
}

// -------------------------------------------- Trainer integration ------

TEST_F(HealthTrainFixture, TrainEmbedsHealthBlocksInJsonlReport) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tgcrn_health_test_run.jsonl")
          .string();
  std::filesystem::remove(path);

  Rng rng(41);
  core::TGCRN model(SmallModelConfig(), &rng);
  core::TrainConfig config;
  config.epochs = 2;
  config.max_batches_per_epoch = 10;
  config.verbose = false;
  config.report_path = path;
  config.health.enabled = true;
  config.health.every = 1;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);

  ASSERT_EQ(result.report.epochs.size(), 2u);
  const size_t num_params = model.NamedParameters().size();
  for (const auto& epoch : result.report.epochs) {
    ASSERT_TRUE(epoch.has_health);
    const obs::HealthReport& health = epoch.health;
    EXPECT_EQ(health.non_finite_steps, 0);
    ASSERT_EQ(health.modules.size(), num_params);
    for (const auto& module : health.modules) {
      EXPECT_FALSE(module.name.empty());
      EXPECT_GT(module.param.count, 0);
      EXPECT_FALSE(module.param.HasNonFinite()) << module.name;
      // Every parameter received a gradient during the epoch.
      EXPECT_GT(module.grad.count, 0) << module.name;
      EXPECT_GT(module.grad.rms, 0.0) << module.name;
    }
    // The first batch's forward pass hit all three shipped taps.
    ASSERT_FALSE(health.activations.empty());
    bool saw_adjacency = false, saw_prediction = false, saw_linear = false;
    for (const auto& activation : health.activations) {
      EXPECT_GT(activation.samples, 0);
      EXPECT_GT(activation.stats.count, 0);
      saw_adjacency |= activation.name == "tagsl.adjacency";
      saw_prediction |= activation.name == "tgcrn.prediction";
      saw_linear |= activation.name == "nn.linear.out";
    }
    EXPECT_TRUE(saw_adjacency);
    EXPECT_TRUE(saw_prediction);
    EXPECT_TRUE(saw_linear);
    // Learned-graph diagnostics ride along with valid ranges.
    ASSERT_TRUE(health.has_graph);
    EXPECT_GE(health.graph.row_entropy, 0.0);
    EXPECT_LE(health.graph.row_entropy, 1.0);
    EXPECT_GT(health.graph.sparsity, 0.0);
    EXPECT_LE(health.graph.sparsity, 1.0);
    EXPECT_GE(health.graph.temporal_drift, 0.0);
    // The health phase was timed.
    EXPECT_GT(epoch.phase_seconds.count(obs::kPhaseHealth), 0u);
  }
  // Epoch 0 has no previous top-k snapshot; epoch 1 does.
  EXPECT_TRUE(std::isnan(result.report.epochs[0].health.graph.topk_stability));
  const double stability =
      result.report.epochs[1].health.graph.topk_stability;
  EXPECT_GE(stability, 0.0);
  EXPECT_LE(stability, 1.0);

  // Health is embedded in the epoch lines: still 2 epochs + 1 summary.
  const std::string content = ReadFile(path);
  ASSERT_FALSE(content.empty());
  std::istringstream lines(content);
  std::string line;
  int line_count = 0;
  while (std::getline(lines, line)) ++line_count;
  EXPECT_EQ(line_count, 3);

  // The JSONL round trip preserves the health blocks.
  obs::RunReport loaded;
  ASSERT_TRUE(obs::RunReport::FromJsonl(content, &loaded));
  ASSERT_EQ(loaded.epochs.size(), 2u);
  for (size_t i = 0; i < loaded.epochs.size(); ++i) {
    ASSERT_TRUE(loaded.epochs[i].has_health);
    const obs::HealthReport& got = loaded.epochs[i].health;
    const obs::HealthReport& want = result.report.epochs[i].health;
    ASSERT_EQ(got.modules.size(), want.modules.size());
    EXPECT_EQ(got.modules[0].name, want.modules[0].name);
    EXPECT_DOUBLE_EQ(got.modules[0].param.rms, want.modules[0].param.rms);
    EXPECT_DOUBLE_EQ(got.modules[0].grad.rms, want.modules[0].grad.rms);
    ASSERT_EQ(got.activations.size(), want.activations.size());
    EXPECT_TRUE(got.has_graph);
    EXPECT_DOUBLE_EQ(got.graph.row_entropy, want.graph.row_entropy);
  }
  EXPECT_TRUE(std::isnan(loaded.epochs[0].health.graph.topk_stability));
  std::filesystem::remove(path);
}

TEST_F(HealthTrainFixture, MonitorDoesNotPerturbTraining) {
  core::TrainConfig config;
  config.epochs = 2;
  config.max_batches_per_epoch = 6;
  config.verbose = false;
  config.health.enabled = false;

  Rng rng_off(55);
  core::TGCRN model_off(SmallModelConfig(), &rng_off);
  const auto result_off = core::TrainAndEvaluate(&model_off, *dataset_, config);

  config.health.enabled = true;
  config.health.every = 1;
  Rng rng_on(55);
  core::TGCRN model_on(SmallModelConfig(), &rng_on);
  const auto result_on = core::TrainAndEvaluate(&model_on, *dataset_, config);

  // The monitor observes; it must never change what the model computes.
  ASSERT_EQ(result_on.train_loss_history.size(),
            result_off.train_loss_history.size());
  for (size_t i = 0; i < result_on.train_loss_history.size(); ++i) {
    EXPECT_EQ(result_on.train_loss_history[i],
              result_off.train_loss_history[i]);
  }
  EXPECT_EQ(result_on.average.mae, result_off.average.mae);
}

}  // namespace
}  // namespace tgcrn
