// Copyright 2026 TGCRN Reproduction Authors
// Tests of the observability layer: JSON round-trips, histogram bucket
// math, stripe-merge correctness under the thread pool, Chrome trace
// output validity, and the structured run report produced by a real
// 2-epoch smoke train.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "datagen/metro_sim.h"
#include "obs/diff.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tgcrn {
namespace {

using common::ParallelFor;
using common::ScopedNumThreads;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------- JSON --

TEST(JsonTest, DumpParseRoundTrip) {
  obs::Json obj = obs::Json::Object();
  obj.Set("name", obs::Json::Str("hello \"quoted\" \\ world"));
  obj.Set("count", obs::Json::Int(42));
  obj.Set("pi", obs::Json::Number(3.25));
  obj.Set("flag", obs::Json::Bool(true));
  obj.Set("nothing", obs::Json::Null());
  obs::Json arr = obs::Json::Array();
  arr.Append(obs::Json::Int(1));
  arr.Append(obs::Json::Str("two"));
  obj.Set("list", std::move(arr));

  const std::string text = obj.Dump();
  obs::Json parsed;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.GetString("name"), "hello \"quoted\" \\ world");
  EXPECT_EQ(parsed.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(parsed.GetDouble("pi"), 3.25);
  EXPECT_TRUE(parsed["flag"].AsBool());
  EXPECT_TRUE(parsed["nothing"].is_null());
  ASSERT_EQ(parsed["list"].size(), 2u);
  EXPECT_EQ(parsed["list"].at(1).AsString(), "two");
  // Dump is deterministic: a second round trip emits identical bytes.
  EXPECT_EQ(parsed.Dump(), text);
}

TEST(JsonTest, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(obs::Json::Int(7).Dump(), "7");
  EXPECT_EQ(obs::Json::Int(-12345).Dump(), "-12345");
  EXPECT_EQ(obs::Json::Number(2.5).Dump(), "2.5");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  obs::Json out;
  EXPECT_FALSE(obs::Json::Parse("{", &out));
  EXPECT_FALSE(obs::Json::Parse("{\"a\":1,}", &out));
  EXPECT_FALSE(obs::Json::Parse("[1, 2] trailing", &out));
  EXPECT_FALSE(obs::Json::Parse("", &out));
  EXPECT_TRUE(obs::Json::Parse("  [1, 2, {\"k\": null}]  ", &out));
}

// ----------------------------------------------------------- Histogram --

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds non-positive values.
  EXPECT_EQ(obs::HistogramBucketIndex(0), 0);
  EXPECT_EQ(obs::HistogramBucketIndex(-17), 0);
  // Bucket i covers [2^(i-1), 2^i).
  EXPECT_EQ(obs::HistogramBucketIndex(1), 1);
  EXPECT_EQ(obs::HistogramBucketIndex(2), 2);
  EXPECT_EQ(obs::HistogramBucketIndex(3), 2);
  EXPECT_EQ(obs::HistogramBucketIndex(4), 3);
  EXPECT_EQ(obs::HistogramBucketIndex(1023), 10);
  EXPECT_EQ(obs::HistogramBucketIndex(1024), 11);
  // Every interior bucket's bounds map back to that bucket.
  for (int i = 1; i < obs::kHistogramBuckets - 1; ++i) {
    const int64_t lo = obs::HistogramBucketLowerBound(i);
    EXPECT_EQ(obs::HistogramBucketIndex(lo), i) << "bucket " << i;
    EXPECT_EQ(obs::HistogramBucketIndex(2 * lo - 1), i) << "bucket " << i;
  }
  // Values at and beyond the last lower bound land in the overflow bucket.
  const int64_t overflow_lo =
      obs::HistogramBucketLowerBound(obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::HistogramBucketIndex(overflow_lo),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::HistogramBucketIndex(INT64_MAX),
            obs::kHistogramBuckets - 1);
}

TEST(HistogramTest, SnapshotMergesStripes) {
  obs::Histogram* h =
      obs::Registry::Global().GetHistogram("test.merge_histogram_ns");
  h->Reset();
  // Observe from 8 pool threads so multiple stripes receive writes.
  ScopedNumThreads guard(8);
  const int64_t n = 10000;
  ParallelFor(0, n, 1, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) h->Observe(i % 100);
  });
  const obs::HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, n);
  int64_t expected_sum = 0;
  for (int64_t i = 0; i < n; ++i) expected_sum += i % 100;
  EXPECT_EQ(snap.sum, expected_sum);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, n);
  EXPECT_DOUBLE_EQ(snap.Mean(),
                   static_cast<double>(expected_sum) / static_cast<double>(n));
  // Values cap at 99, so every quantile's bucket bound stays below 128.
  EXPECT_LE(snap.ApproxQuantile(0.5), 128);
  EXPECT_LE(snap.ApproxQuantile(0.99), 128);
  EXPECT_GE(snap.ApproxQuantile(0.99), snap.ApproxQuantile(0.5));
}

TEST(HistogramTest, ApproxQuantileOnKnownDistribution) {
  obs::Histogram* h =
      obs::Registry::Global().GetHistogram("test.quantile_histogram_ns");
  h->Reset();
  // 90 observations of 2, 10 of 1000.
  for (int i = 0; i < 90; ++i) h->Observe(2);
  for (int i = 0; i < 10; ++i) h->Observe(1000);
  const auto snap = h->Snapshot();
  EXPECT_EQ(snap.count, 100);
  // p50 resolves within the [2,4) bucket; p99 within [1024,2048)'s bound.
  EXPECT_LE(snap.ApproxQuantile(0.5), 4);
  EXPECT_GE(snap.ApproxQuantile(0.99), 1000);
}

TEST(HistogramTest, QuantileErrorBoundsAgainstExactValues) {
  obs::Histogram* h =
      obs::Registry::Global().GetHistogram("test.quantile_bounds_ns");
  h->Reset();
  // A deterministic long-tailed sample: 1..1000 plus a sparse far tail
  // (the shape serving latencies take).
  std::vector<int64_t> values;
  for (int64_t v = 1; v <= 1000; ++v) values.push_back(v);
  for (int64_t i = 0; i < 20; ++i) values.push_back(5000 + i * 100);
  for (int64_t v : values) h->Observe(v);
  std::sort(values.begin(), values.end());
  const obs::HistogramSnapshot snap = h->Snapshot();
  ASSERT_EQ(snap.count, static_cast<int64_t>(values.size()));
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    // Exact quantile under the same rank convention ApproxQuantile uses
    // (the observation at rank floor(q * (count - 1)) + 1).
    const int64_t exact =
        values[static_cast<size_t>(q * static_cast<double>(values.size() - 1))];
    const int64_t approx = snap.ApproxQuantile(q);
    // The 40-bucket log2 scheme reports the containing bucket's upper
    // bound: for values >= 1 it never undershoots the exact quantile and
    // overshoots by strictly less than 2x.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(approx, 2 * exact) << "q=" << q;
  }
}

// ----------------------------------------------- Counter / Gauge merge --

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  obs::Counter* c =
      obs::Registry::Global().GetCounter("test.concurrent_counter");
  c->Reset();
  ScopedNumThreads guard(8);
  const int64_t n = 200000;
  ParallelFor(0, n, 64, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) c->Add(1);
  });
  EXPECT_EQ(c->Value(), n);
  // Deltas accumulate too.
  c->Add(5);
  c->Add(-2);
  EXPECT_EQ(c->Value(), n + 3);
}

TEST(GaugeTest, LastWriteWins) {
  obs::Gauge* g = obs::Registry::Global().GetGauge("test.gauge");
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.5);
  g->Set(-42.25);
  EXPECT_DOUBLE_EQ(g->Value(), -42.25);
}

TEST(RegistryTest, CollectExposesTextAndJson) {
  obs::Registry::Global().GetCounter("test.exposed_counter")->Add(3);
  obs::Registry::Global().GetGauge("test.exposed_gauge")->Set(2.5);
  obs::Registry::Global().GetHistogram("test.exposed_ns")->Observe(7);
  const obs::RegistrySnapshot snap = obs::Registry::Global().Collect();
  ASSERT_FALSE(snap.samples.empty());
  // Samples are sorted by name.
  for (size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LE(snap.samples[i - 1].name, snap.samples[i].name);
  }
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("test.exposed_counter"), std::string::npos);
  EXPECT_NE(text.find("test.exposed_gauge"), std::string::npos);
  const obs::Json json = snap.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_TRUE(json.Has("test.exposed_counter"));
  EXPECT_TRUE(json.Has("test.exposed_ns"));
  // The whole exposition itself must be valid JSON.
  obs::Json reparsed;
  EXPECT_TRUE(obs::Json::Parse(json.Dump(), &reparsed));
}

TEST(RegistryTest, HistogramExpositionCarriesTailQuantiles) {
  obs::Histogram* h =
      obs::Registry::Global().GetHistogram("test.tail_quantiles_ns");
  h->Reset();
  for (int i = 0; i < 100; ++i) h->Observe(10);
  const obs::RegistrySnapshot snap = obs::Registry::Global().Collect();
  // Serving tails live past p99, so the exposition carries p90 and p999
  // alongside the original p50/p99 in both text and JSON forms.
  const std::string text = snap.ToText();
  for (const char* line :
       {"test.tail_quantiles_ns.p50", "test.tail_quantiles_ns.p90",
        "test.tail_quantiles_ns.p99", "test.tail_quantiles_ns.p999"}) {
    EXPECT_NE(text.find(line), std::string::npos) << line;
  }
  const obs::Json json = snap.ToJson();
  ASSERT_TRUE(json.Has("test.tail_quantiles_ns"));
  for (const char* key : {"p50", "p90", "p99", "p999"}) {
    EXPECT_TRUE(json["test.tail_quantiles_ns"].Has(key)) << key;
  }
}

// --------------------------------------------------------------- Trace --

TEST(TraceTest, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  const int64_t before = obs::BufferedTraceEventCount();
  { TGCRN_TRACE_SCOPE("test.should_not_record"); }
  EXPECT_EQ(obs::BufferedTraceEventCount(), before);
}

TEST(TraceTest, WritesValidBalancedChromeTraceJson) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tgcrn_obs_test.trace.json")
          .string();
  std::filesystem::remove(path);

  obs::StartTracing(path);
  ASSERT_TRUE(obs::TracingEnabled());
  {
    TGCRN_TRACE_SCOPE("test.outer");
    ScopedNumThreads guard(8);
    ParallelFor(0, 5000, 1, [](int64_t s, int64_t e) {
      volatile int64_t sink = 0;
      for (int64_t i = s; i < e; ++i) sink += i;
    });
  }
  EXPECT_GT(obs::BufferedTraceEventCount(), 0);
  ASSERT_TRUE(obs::StopTracingAndWrite());
  EXPECT_FALSE(obs::TracingEnabled());
  // Second stop without a start is a no-op.
  EXPECT_FALSE(obs::StopTracingAndWrite());

  const std::string content = ReadFile(path);
  ASSERT_FALSE(content.empty());
  obs::Json trace;
  std::string error;
  ASSERT_TRUE(obs::Json::Parse(content, &trace, &error)) << error;
  ASSERT_TRUE(trace.Has("traceEvents"));
  const obs::Json& events = trace["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  bool saw_outer = false, saw_worker = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::Json& ev = events.at(i);
    // "X" complete events are balanced by construction: every span carries
    // its own duration, so no begin/end pairing can be left open.
    EXPECT_EQ(ev.GetString("ph"), "X");
    EXPECT_TRUE(ev.Has("name"));
    EXPECT_TRUE(ev.Has("ts"));
    EXPECT_GE(ev.GetDouble("dur"), 0.0);
    EXPECT_GE(ev.GetInt("tid"), 0);
    saw_outer = saw_outer || ev.GetString("name") == "test.outer";
    saw_worker = saw_worker || ev.GetString("name") == "ParallelFor.worker";
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_worker);
  std::filesystem::remove(path);
}

// -------------------------------------------------------------- Report --

TEST(ReportTest, EpochReportJsonRoundTrip) {
  obs::EpochReport epoch;
  epoch.epoch = 3;
  epoch.train_loss = 0.5;
  epoch.val_mae = 1.25;
  epoch.lr = 1e-3;
  epoch.grad_norm_mean = 2.0;
  epoch.grad_norm_last = 1.5;
  epoch.seconds = 0.75;
  epoch.phase_seconds[obs::kPhaseForward] = 0.4;
  epoch.phase_seconds[obs::kPhaseBackward] = 0.3;

  const obs::Json json = epoch.ToJson();
  EXPECT_EQ(json.GetString("type"), "epoch");
  const obs::EpochReport back = obs::EpochReport::FromJson(json);
  EXPECT_EQ(back.epoch, 3);
  EXPECT_DOUBLE_EQ(back.train_loss, 0.5);
  EXPECT_DOUBLE_EQ(back.val_mae, 1.25);
  EXPECT_DOUBLE_EQ(back.lr, 1e-3);
  EXPECT_DOUBLE_EQ(back.grad_norm_mean, 2.0);
  EXPECT_DOUBLE_EQ(back.grad_norm_last, 1.5);
  EXPECT_DOUBLE_EQ(back.seconds, 0.75);
  ASSERT_EQ(back.phase_seconds.size(), 2u);
  EXPECT_DOUBLE_EQ(back.phase_seconds.at(obs::kPhaseForward), 0.4);
}

TEST(JsonTest, GetDoubleTreatsNullAsNaNAndAbsentAsFallback) {
  obs::Json obj = obs::Json::Object();
  obj.Set("present", obs::Json::Number(2.5));
  obj.Set("missing_value", obs::Json::Null());
  EXPECT_DOUBLE_EQ(obj.GetDouble("present", -1.0), 2.5);
  // Present-but-null means "the producer had a non-finite number" (Dump
  // writes NaN/Inf as null), so it reads back as NaN, not the fallback.
  EXPECT_TRUE(std::isnan(obj.GetDouble("missing_value", -1.0)));
  // Absent keys still take the fallback.
  EXPECT_DOUBLE_EQ(obj.GetDouble("absent", -1.0), -1.0);
}

TEST(ReportTest, NonFiniteGradNormRoundTripsThroughNull) {
  obs::EpochReport epoch;
  epoch.epoch = 0;
  epoch.train_loss = 0.5;
  epoch.grad_norm_last = std::numeric_limits<double>::quiet_NaN();
  epoch.grad_norm_mean = std::numeric_limits<double>::infinity();

  const std::string text = epoch.ToJson().Dump();
  // JSON has no NaN/Inf literals; both serialize as null and the line must
  // stay parseable by any standard JSON consumer.
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  obs::Json parsed;
  ASSERT_TRUE(obs::Json::Parse(text, &parsed));
  const obs::EpochReport back = obs::EpochReport::FromJson(parsed);
  EXPECT_TRUE(std::isnan(back.grad_norm_last));
  EXPECT_TRUE(std::isnan(back.grad_norm_mean));
  EXPECT_DOUBLE_EQ(back.train_loss, 0.5);
}

TEST(ReportTest, FromJsonlToleratesTruncatedFinalLine) {
  obs::EpochReport epoch;
  epoch.epoch = 0;
  epoch.train_loss = 1.5;
  // A run killed mid-write leaves a partial line with no trailing newline.
  const std::string content =
      epoch.ToJson().Dump() + "\n{\"type\":\"epoch\",\"epo";
  obs::RunReport loaded;
  ASSERT_TRUE(obs::RunReport::FromJsonl(content, &loaded));
  ASSERT_EQ(loaded.epochs.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.epochs[0].train_loss, 1.5);
  EXPECT_FALSE(loaded.has_summary);
}

TEST(ReportTest, FromJsonlRejectsMalformedInteriorLine) {
  obs::EpochReport epoch;
  epoch.epoch = 0;
  // A broken line followed by a newline is corruption, not a live tail.
  const std::string content =
      "{\"type\":\"epoch\",\"epo\n" + epoch.ToJson().Dump() + "\n";
  obs::RunReport loaded;
  EXPECT_FALSE(obs::RunReport::FromJsonl(content, &loaded));
  obs::RunReport loaded2;
  EXPECT_FALSE(obs::RunReport::FromJsonl("not json at all\n", &loaded2));
}

TEST(ReportTest, FromJsonlSkipsUnknownTypesAndToleratesWrongTypes) {
  obs::EpochReport epoch;
  epoch.epoch = 1;
  epoch.train_loss = 2.0;
  const std::string content =
      "{\"type\":\"comment\",\"text\":\"from a future writer\"}\n" +
      epoch.ToJson().Dump() +
      "\n{\"type\":\"epoch\",\"epoch\":\"oops\",\"train_loss\":\"bad\"}\n";
  obs::RunReport loaded;
  ASSERT_TRUE(obs::RunReport::FromJsonl(content, &loaded));
  // The unknown line is skipped; the wrong-typed epoch line degrades to
  // field defaults instead of aborting.
  ASSERT_EQ(loaded.epochs.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.epochs[0].train_loss, 2.0);
  EXPECT_EQ(loaded.epochs[1].epoch, 0);
}

// ---------------------------------------------------------------- Diff --

// A minimal two-epoch report with a summary, for diff tests.
obs::RunReport MakeDiffReport() {
  obs::RunReport report;
  report.model = "test";
  report.epochs_run = 2;
  report.total_seconds = 10.0;
  report.has_summary = true;
  for (int i = 0; i < 2; ++i) {
    obs::EpochReport epoch;
    epoch.epoch = i;
    epoch.train_loss = 2.0 - i;
    epoch.val_mae = 3.0 - i;
    epoch.seconds = 5.0;
    epoch.phase_seconds[obs::kPhaseForward] = 2.0;
    epoch.phase_seconds[obs::kPhaseBackward] = 1.5;
    report.epochs.push_back(epoch);
  }
  obs::HorizonMetricsReport avg;
  avg.mae = 1.0;
  avg.rmse = 2.0;
  avg.mape = 10.0;
  report.test_average = avg;
  report.test_per_horizon = {avg, avg};
  return report;
}

TEST(DiffTest, SelfDiffPassesEvenAtZeroThreshold) {
  const obs::RunReport report = MakeDiffReport();
  obs::ReportDiffOptions options;
  options.max_regress_pct = 0.0;
  const obs::ReportDiffResult result =
      obs::DiffReports(report, report, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.regressions, 0);
  ASSERT_FALSE(result.rows.empty());
  for (const auto& row : result.rows) {
    EXPECT_DOUBLE_EQ(row.delta_pct, 0.0) << row.metric;
  }
}

TEST(DiffTest, AccuracyRegressionBeyondThresholdGates) {
  const obs::RunReport baseline = MakeDiffReport();
  obs::RunReport candidate = MakeDiffReport();
  candidate.epochs.back().val_mae *= 1.2;  // +20% on a 10% threshold
  obs::ReportDiffOptions options;
  options.max_regress_pct = 10.0;
  const obs::ReportDiffResult result =
      obs::DiffReports(baseline, candidate, options);
  EXPECT_FALSE(result.ok());
  bool found = false;
  for (const auto& row : result.rows) {
    if (row.metric == "val_mae.final") {
      found = true;
      EXPECT_TRUE(row.gated);
      EXPECT_TRUE(row.regressed);
      EXPECT_NEAR(row.delta_pct, 20.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiffTest, NegativeTimeThresholdReportsWithoutGating) {
  const obs::RunReport baseline = MakeDiffReport();
  obs::RunReport candidate = MakeDiffReport();
  // Wildly slower run; should still pass when timing rows aren't gated.
  for (auto& epoch : candidate.epochs) {
    epoch.phase_seconds[obs::kPhaseForward] *= 10.0;
  }
  candidate.total_seconds *= 10.0;
  obs::ReportDiffOptions options;
  options.max_regress_pct = 10.0;
  options.max_time_regress_pct = -1.0;
  const obs::ReportDiffResult result =
      obs::DiffReports(baseline, candidate, options);
  EXPECT_TRUE(result.ok());
  bool found = false;
  for (const auto& row : result.rows) {
    if (row.metric == std::string("phase.") + obs::kPhaseForward + "_s") {
      found = true;
      EXPECT_FALSE(row.gated);
      EXPECT_FALSE(row.regressed);
    }
  }
  EXPECT_TRUE(found);
  // With the threshold inherited (NaN), the same slowdown fails.
  obs::ReportDiffOptions inherit;
  inherit.max_regress_pct = 10.0;
  EXPECT_FALSE(obs::DiffReports(baseline, candidate, inherit).ok());
}

TEST(DiffTest, NanCandidateOnGatedMetricIsRegression) {
  const obs::RunReport baseline = MakeDiffReport();
  obs::RunReport candidate = MakeDiffReport();
  candidate.epochs.back().train_loss =
      std::numeric_limits<double>::quiet_NaN();
  obs::ReportDiffOptions options;
  options.max_regress_pct = 1e9;  // even an absurdly lax threshold fails
  const obs::ReportDiffResult result =
      obs::DiffReports(baseline, candidate, options);
  EXPECT_FALSE(result.ok());
}

TEST(DiffTest, HealthCountersGateOnAnyIncrease) {
  const obs::RunReport baseline = MakeDiffReport();  // no health blocks
  obs::RunReport candidate = MakeDiffReport();
  candidate.epochs.back().has_health = true;
  obs::ModuleHealthReport module;
  module.name = "w";
  module.grad.count = 8;
  module.grad.nan_count = 1;
  candidate.epochs.back().health.modules.push_back(module);
  obs::ReportDiffOptions options;
  options.max_regress_pct = 1e9;
  const obs::ReportDiffResult result =
      obs::DiffReports(baseline, candidate, options);
  EXPECT_FALSE(result.ok());
  bool found = false;
  for (const auto& row : result.rows) {
    if (row.metric == "health.nan_elements") {
      found = true;
      EXPECT_TRUE(row.regressed);
      EXPECT_DOUBLE_EQ(row.baseline, 0.0);
      EXPECT_DOUBLE_EQ(row.candidate, 1.0);
    }
  }
  EXPECT_TRUE(found);
  // A clean candidate with health blocks passes against the same baseline.
  obs::RunReport clean = MakeDiffReport();
  clean.epochs.back().has_health = true;
  EXPECT_TRUE(obs::DiffReports(baseline, clean, options).ok());
}

// -------------------------------------------------------- Metrics dump --

TEST(MetricsDumpTest, WritesRegistrySnapshotToFile) {
  obs::Registry::Global().GetCounter("test.dump_counter")->Add(9);
  const auto path =
      (std::filesystem::temp_directory_path() / "tgcrn_obs_test_dump.txt")
          .string();
  std::filesystem::remove(path);
  ASSERT_TRUE(obs::DumpMetricsRegistry(path));
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find("test.dump_counter"), std::string::npos);
  // "stderr" is the other accepted target; it must not create a file.
  EXPECT_TRUE(obs::DumpMetricsRegistry("stderr"));
  std::filesystem::remove(path);
}

// TGCRN_CHECK failures abort, which skips atexit handlers — the abort hook
// must still flush the metrics dump so post-mortem state survives.
TEST(MetricsDumpTest, CheckFailureFlushesMetricsDumpBeforeAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto path = (std::filesystem::temp_directory_path() /
                     "tgcrn_obs_test_abort_dump.txt")
                        .string();
  std::filesystem::remove(path);
  setenv("TGCRN_METRICS_DUMP", path.c_str(), 1);
  EXPECT_DEATH(
      {
        obs::Registry::Global().GetCounter("test.abort_counter")->Add(1);
        TGCRN_CHECK(false) << "boom";
      },
      "boom");
  unsetenv("TGCRN_METRICS_DUMP");
  const std::string content = ReadFile(path);
  EXPECT_NE(content.find("test.abort_counter"), std::string::npos);
  std::filesystem::remove(path);
}

class ObsTrainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::MetroSimConfig config;
    config.num_stations = 6;
    config.num_days = 10;
    config.seed = 77;
    config.target_mean_inflow = 50.0;
    config.keep_od_ground_truth = false;
    auto sim = datagen::SimulateMetro(config);
    data::ForecastDataset::Options options;
    options.input_steps = 4;
    options.output_steps = 2;
    dataset_ = new data::ForecastDataset(std::move(sim.data), options);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::ForecastDataset* dataset_;
};

data::ForecastDataset* ObsTrainFixture::dataset_ = nullptr;

TEST_F(ObsTrainFixture, RunReportJsonlRoundTripFromSmokeTrain) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tgcrn_obs_test_run.jsonl")
          .string();
  std::filesystem::remove(path);

  core::TGCRNConfig model_config;
  model_config.num_nodes = 6;
  model_config.input_dim = 2;
  model_config.output_dim = 2;
  model_config.horizon = 2;
  model_config.hidden_dim = 8;
  model_config.num_layers = 1;
  model_config.node_embed_dim = 6;
  model_config.time_embed_dim = 4;
  model_config.steps_per_day = 72;
  Rng rng(12);
  core::TGCRN model(model_config, &rng);

  core::TrainConfig config;
  config.epochs = 2;
  config.max_batches_per_epoch = 10;
  config.verbose = false;
  config.report_path = path;
  const auto result = core::TrainAndEvaluate(&model, *dataset_, config);

  // In-memory report mirrors the run.
  ASSERT_EQ(result.report.epochs.size(), 2u);
  EXPECT_EQ(result.report.model, model.name());
  EXPECT_EQ(result.report.num_parameters, result.num_parameters);
  EXPECT_EQ(result.report.epochs_run, 2);
  for (const auto& epoch : result.report.epochs) {
    EXPECT_GT(epoch.seconds, 0.0);
    EXPECT_GT(epoch.grad_norm_last, 0.0);
    EXPECT_GT(epoch.lr, 0.0);
    EXPECT_GT(epoch.phase_seconds.count(obs::kPhaseForward), 0u);
    EXPECT_GT(epoch.phase_seconds.count(obs::kPhaseBackward), 0u);
    EXPECT_GT(epoch.phase_seconds.count(obs::kPhaseAdam), 0u);
    EXPECT_GT(epoch.phase_seconds.count(obs::kPhaseEval), 0u);
  }
  ASSERT_EQ(result.report.test_per_horizon.size(),
            result.per_horizon.size());
  EXPECT_DOUBLE_EQ(result.report.test_average.mae, result.average.mae);

  // The JSONL file: one valid JSON object per line, 2 epochs + 1 summary.
  const std::string content = ReadFile(path);
  ASSERT_FALSE(content.empty());
  std::istringstream lines(content);
  std::string line;
  int line_count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    obs::Json parsed;
    std::string error;
    ASSERT_TRUE(obs::Json::Parse(line, &parsed, &error))
        << "line " << line_count << ": " << error;
    ++line_count;
  }
  EXPECT_EQ(line_count, 3);

  // Round trip through the parser reproduces the in-memory report.
  obs::RunReport loaded;
  ASSERT_TRUE(obs::RunReport::FromJsonl(content, &loaded));
  ASSERT_EQ(loaded.epochs.size(), 2u);
  EXPECT_EQ(loaded.model, result.report.model);
  EXPECT_EQ(loaded.num_parameters, result.report.num_parameters);
  EXPECT_EQ(loaded.epochs_run, 2);
  for (size_t i = 0; i < loaded.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.epochs[i].train_loss,
                     result.report.epochs[i].train_loss);
    EXPECT_DOUBLE_EQ(loaded.epochs[i].val_mae,
                     result.report.epochs[i].val_mae);
    EXPECT_DOUBLE_EQ(loaded.epochs[i].grad_norm_mean,
                     result.report.epochs[i].grad_norm_mean);
    EXPECT_EQ(loaded.epochs[i].phase_seconds.size(),
              result.report.epochs[i].phase_seconds.size());
  }
  ASSERT_EQ(loaded.test_per_horizon.size(),
            result.report.test_per_horizon.size());
  EXPECT_DOUBLE_EQ(loaded.test_average.mae, result.report.test_average.mae);
  // Phase totals accumulate across epochs.
  const auto totals = loaded.PhaseTotals();
  EXPECT_GT(totals.at(obs::kPhaseForward), 0.0);
  EXPECT_GT(totals.at(obs::kPhaseBackward), 0.0);
  std::filesystem::remove(path);
}

// Hot-path metrics wired through the substrate layers actually move when a
// model trains.
TEST_F(ObsTrainFixture, SubsystemCountersAdvanceDuringTraining) {
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter* fwd = registry.GetCounter("autograd.forward_ops");
  obs::Counter* bwd = registry.GetCounter("autograd.backward_ops");
  obs::Counter* allocs = registry.GetCounter("tensor.allocations");
  obs::Counter* bytes = registry.GetCounter("tensor.allocated_bytes");
  obs::Counter* batches = registry.GetCounter("data.batches_assembled");
  const int64_t fwd0 = fwd->Value(), bwd0 = bwd->Value();
  const int64_t alloc0 = allocs->Value(), bytes0 = bytes->Value();
  const int64_t batches0 = batches->Value();

  core::TGCRNConfig model_config;
  model_config.num_nodes = 6;
  model_config.input_dim = 2;
  model_config.output_dim = 2;
  model_config.horizon = 2;
  model_config.hidden_dim = 8;
  model_config.num_layers = 1;
  model_config.node_embed_dim = 6;
  model_config.time_embed_dim = 4;
  model_config.steps_per_day = 72;
  Rng rng(13);
  core::TGCRN model(model_config, &rng);
  core::TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 3;
  config.verbose = false;
  core::TrainAndEvaluate(&model, *dataset_, config);

  EXPECT_GT(fwd->Value(), fwd0);
  EXPECT_GT(bwd->Value(), bwd0);
  EXPECT_GT(allocs->Value(), alloc0);
  EXPECT_GT(bytes->Value(), bytes0);
  EXPECT_GT(batches->Value(), batches0);
}

}  // namespace
}  // namespace tgcrn
