// Copyright 2026 TGCRN Reproduction Authors
// The sparse learned-graph execution path end to end: CSR round-trips and
// top-k tie-break determinism (graph/csr.h), SpMM-vs-masked-dense
// differential fuzz and gradchecks (tensor/kernels/spmm.h,
// autograd/sparse_ops.h), TagSL's sparse builder against the dense
// reference, and dense-vs-sparse training parity at small N with a
// generous k (the TGCRN_GRAPH_TOPK acceptance bar).
#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "core/tagsl.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "core/time_encoders.h"
#include "datagen/metro_sim.h"
#include "graph/csr.h"
#include "gradcheck.h"

namespace tgcrn {
namespace {

using ag::Variable;
using common::ScopedNumThreads;
using testing::ExpectGradientsClose;

std::vector<common::SimdIsa> AvailableIsas() {
  std::vector<common::SimdIsa> isas = {common::SimdIsa::kScalar};
  if (common::Avx2CompiledIn() && common::CpuSupportsAvx2()) {
    isas.push_back(common::SimdIsa::kAvx2);
  }
  return isas;
}

// Random batch of row-stochastic matrices (softmax of uniform logits).
Tensor RandomAdjacency(int64_t batch, int64_t n, uint64_t seed) {
  Rng rng(seed);
  Variable logits(Tensor::RandUniform({batch, n, n}, -2.0f, 2.0f, &rng));
  return ag::Softmax(logits, -1).value();
}

// --- CSR structure ----------------------------------------------------------

TEST(TopKRowTest, TieBreaksOnLowerIndex) {
  const std::vector<float> row = {1.0f, 3.0f, 3.0f, 0.0f, 3.0f};
  std::vector<int64_t> scratch(row.size());
  std::vector<int64_t> out(4);
  graph::TopKRow(row.data(), 5, 2, out.data(), scratch.data());
  EXPECT_EQ(out[0], 1);  // the tied 3.0s keep the lowest column ids
  EXPECT_EQ(out[1], 2);
  graph::TopKRow(row.data(), 5, 4, out.data(), scratch.data());
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1, 2, 4}));

  const std::vector<float> flat(6, 0.5f);  // fully tied row
  std::vector<int64_t> scratch2(6), out2(3);
  graph::TopKRow(flat.data(), 6, 3, out2.data(), scratch2.data());
  EXPECT_EQ(out2, (std::vector<int64_t>{0, 1, 2}));
}

TEST(SparsifyTopKTest, RoundTripKeepsRenormalizedTopK) {
  const int64_t batch = 3, n = 7, k = 3;
  const Tensor dense = RandomAdjacency(batch, n, 11);
  graph::CsrBatch csr = graph::SparsifyTopK(dense, k);
  csr.index->Validate();
  EXPECT_EQ(csr.index->nnz(), n * k);
  EXPECT_EQ(csr.values.shape(), (Shape{batch, n * k}));

  const Tensor back = graph::CsrToDense(csr);
  const float* src = dense.data();
  const float* got = back.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t r = 0; r < n; ++r) {
      // Reference: renormalize the k largest entries of the row.
      std::vector<int64_t> ids(k), scratch(n);
      const float* row = src + (b * n + r) * n;
      graph::TopKRow(row, n, k, ids.data(), scratch.data());
      float sum = 0.0f;
      for (int64_t s = 0; s < k; ++s) sum += row[ids[s]];
      float row_sum = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        const float v = got[(b * n + r) * n + j];
        const bool kept =
            std::find(ids.begin(), ids.end(), j) != ids.end();
        if (!kept) {
          EXPECT_EQ(v, 0.0f);
          continue;
        }
        EXPECT_NEAR(v, row[j] / sum, 1e-6f);
        row_sum += v;
      }
      EXPECT_NEAR(row_sum, 1.0f, 1e-5f);  // rows stay stochastic
    }
  }
}

TEST(SparsifyTopKTest, TransposeListsAreConsistent) {
  const Tensor dense = RandomAdjacency(2, 9, 5);
  graph::CsrBatch csr = graph::SparsifyTopK(dense, 4);
  graph::CsrIndex& index = *csr.index;
  index.BuildTranspose();
  ASSERT_TRUE(index.has_transpose());
  const int64_t nnz = index.nnz();
  for (int64_t b = 0; b < index.batch; ++b) {
    const int64_t* offs = index.t_offsets.data() + b * (index.cols + 1);
    const int64_t* slots = index.t_slots.data() + b * nnz;
    EXPECT_EQ(offs[index.cols], nnz);  // every slot appears exactly once
    for (int64_t c = 0; c < index.cols; ++c) {
      for (int64_t i = offs[c]; i < offs[c + 1]; ++i) {
        const int64_t s = slots[i];
        EXPECT_EQ(index.col_ids[b * nnz + s], c);
        if (i > offs[c]) {
          EXPECT_LT(slots[i - 1], s);  // slot-ascending
        }
      }
    }
  }
}

TEST(SparsifyTopKTest, BitwiseIdenticalAcrossThreads) {
  auto make = [] {
    graph::CsrBatch csr = graph::SparsifyTopK(RandomAdjacency(4, 33, 17), 5);
    return graph::CsrToDense(csr);
  };
  ScopedNumThreads guard1(1);
  const Tensor reference = make();
  for (const int threads : {2, 4, 8}) {
    ScopedNumThreads guard(threads);
    const Tensor got = make();
    ASSERT_EQ(std::memcmp(got.data(), reference.data(),
                          static_cast<size_t>(got.numel()) * sizeof(float)),
              0)
        << "SparsifyTopK differs at " << threads << " threads";
  }
}

// --- SpMM vs masked dense ---------------------------------------------------

TEST(SpmmCsrTest, MatchesMaskedDenseReference) {
  for (const auto isa : AvailableIsas()) {
    common::ScopedSimdIsa pin(isa);
    uint64_t seed = 100;
    for (const auto& dims : std::vector<std::vector<int64_t>>{
             {1, 5, 3, 2}, {2, 16, 8, 4}, {3, 33, 17, 9}, {2, 64, 7, 32}}) {
      const int64_t batch = dims[0], n = dims[1], c = dims[2], k = dims[3];
      graph::CsrBatch csr =
          graph::SparsifyTopK(RandomAdjacency(batch, n, seed), k);
      Rng rng(seed + 1);
      Variable x(Tensor::RandUniform({batch, n, c}, -1.0f, 1.0f, &rng));
      ag::SparseGraph sg;
      sg.index = csr.index;
      sg.values = Variable(csr.values.Clone());
      const Tensor sparse_out = ag::SpmmCsr(sg, x).value();
      // Masked-dense reference: the densified CSR through batched matmul.
      const Tensor dense_out =
          ag::Matmul(Variable(graph::CsrToDense(csr)), x).value();
      // Ulp-scaled bound: each output element accumulates k products of
      // row-stochastic weights against |x| <= 1, so the reference scale
      // is O(1); FMA contraction and accumulation-order differences stay
      // within a few ulps of that scale per term.
      const float tol =
          16.0f * static_cast<float>(k) *
          std::numeric_limits<float>::epsilon();
      ASSERT_EQ(sparse_out.shape(), dense_out.shape());
      for (int64_t i = 0; i < sparse_out.numel(); ++i) {
        ASSERT_NEAR(sparse_out.flat(i), dense_out.flat(i), tol)
            << "isa=" << common::SimdIsaName(isa) << " dims b=" << batch
            << " n=" << n << " c=" << c << " k=" << k << " elem " << i;
      }
      seed += 7;
    }
  }
}

TEST(SpmmCsrTest, GradcheckValuesAndFeatures) {
  const int64_t batch = 2, n = 5, c = 3, k = 2;
  graph::CsrBatch csr = graph::SparsifyTopK(RandomAdjacency(batch, n, 3), k);
  auto index = csr.index;
  Rng rng(4);
  const Tensor weight =
      Tensor::RandUniform({batch, n, c}, -1.0f, 1.0f, &rng);
  auto fn = [&](const std::vector<Variable>& in) {
    ag::SparseGraph sg;
    sg.index = index;
    sg.values = in[0];
    return ag::SumAll(ag::Mul(ag::SpmmCsr(sg, in[1]), Variable(weight)));
  };
  Variable values(csr.values.Clone(), /*requires_grad=*/true);
  Rng rng2(5);
  Variable x(Tensor::RandUniform({batch, n, c}, -1.0f, 1.0f, &rng2),
             /*requires_grad=*/true);
  ExpectGradientsClose(fn, {values, x});
}

// --- SparsifyTopK as an autograd op ----------------------------------------

TEST(SparsifyTopKOpTest, GradcheckOnKeptEntries) {
  // Well-separated entries so finite-difference probes never flip the
  // selection.
  const Tensor dense = Tensor::FromVector(
      {1, 3, 3}, {0.9f, 0.2f, 0.5f, 0.1f, 0.7f, 0.4f, 0.6f, 0.3f, 0.8f});
  Rng rng(6);
  const Tensor weight = Tensor::RandUniform({1, 6}, -1.0f, 1.0f, &rng);
  auto fn = [&](const std::vector<Variable>& in) {
    return ag::SumAll(
        ag::Mul(ag::SparsifyTopK(in[0], 2).values, Variable(weight)));
  };
  Variable leaf(dense.Clone(), /*requires_grad=*/true);
  ExpectGradientsClose(fn, {leaf}, /*eps=*/1e-3f, /*rtol=*/5e-2f,
                       /*atol=*/5e-2f);
}

TEST(SparsifyTopKOpTest, DroppedEntriesGetExactlyZeroGradient) {
  const int64_t batch = 2, n = 6, k = 2;
  Variable dense(RandomAdjacency(batch, n, 21), /*requires_grad=*/true);
  ag::SparseGraph sg = ag::SparsifyTopK(dense, k);
  ag::SumAll(ag::Mul(sg.values, sg.values)).Backward();
  ASSERT_TRUE(dense.has_grad());
  const Tensor grad = dense.grad();
  const int64_t nnz = sg.index->nnz();
  int64_t nonzero = 0;
  for (int64_t b = 0; b < batch; ++b) {
    std::vector<bool> kept(n * n, false);
    for (int64_t s = 0; s < nnz; ++s) {
      kept[sg.index->slot_rows[s] * n + sg.index->col_ids[b * nnz + s]] =
          true;
    }
    for (int64_t i = 0; i < n * n; ++i) {
      const float g = grad.flat(b * n * n + i);
      if (!kept[i]) {
        // The sparse-training contract: bitwise zero, not merely small.
        ASSERT_EQ(g, 0.0f) << "dropped entry " << i << " got gradient";
      } else if (g != 0.0f) {
        ++nonzero;
      }
    }
  }
  EXPECT_GT(nonzero, 0);  // kept entries do train
}

// --- TagSL sparse builder vs dense reference --------------------------------

TEST(TagSLSparseTest, MatchesDenseTopKSelectionAndValues) {
  // Scalar ISA: the blocked selection scan and the dense batched path
  // compute bit-identical scores, so the kept sets must match exactly.
  common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
  const int64_t batch = 3, n = 10, c = 4, k = 4, spd = 24, d_tau = 6;
  Rng rng(31);
  core::DiscreteTimeEmbedding encoder(spd, d_tau, &rng);
  core::TagSL::Options options;
  options.num_nodes = n;
  options.node_dim = 5;
  core::TagSL tagsl(options, &encoder, &rng);

  Rng data_rng(32);
  Variable x(Tensor::RandUniform({batch, n, c}, -1.0f, 1.0f, &data_rng));
  const std::vector<int64_t> slots = {3, 11, 19};
  const std::vector<int64_t> prev = {2, 10, 18};

  const Tensor dense = tagsl.BuildGraph(x, slots, prev).value();
  graph::CsrBatch reference = graph::SparsifyTopK(dense, k);
  ag::SparseGraph sparse = tagsl.BuildSparseGraph(x, slots, prev, k);

  ASSERT_EQ(sparse.index->col_ids, reference.index->col_ids);
  const Tensor got = sparse.values.value();
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got.flat(i), reference.values.flat(i), 1e-5f)
        << "kept-edge value " << i;
  }
}

TEST(TagSLSparseTest, GradientsReachEmbeddingsAndEncoder) {
  const int64_t batch = 2, n = 6, c = 3, k = 3, spd = 12, d_tau = 4;
  Rng rng(41);
  core::DiscreteTimeEmbedding encoder(spd, d_tau, &rng);
  core::TagSL::Options options;
  options.num_nodes = n;
  options.node_dim = 4;
  core::TagSL tagsl(options, &encoder, &rng);
  Rng data_rng(42);
  Variable x(Tensor::RandUniform({batch, n, c}, -1.0f, 1.0f, &data_rng));
  ag::SparseGraph sg =
      tagsl.BuildSparseGraph(x, {1, 5}, {0, 4}, k);
  ag::SumAll(ag::Mul(sg.values, sg.values)).Backward();
  EXPECT_TRUE(tagsl.node_embedding().has_grad());
  EXPECT_TRUE(encoder.weight().has_grad());
}

// --- Model-level parity -----------------------------------------------------

TEST(SparseModelTest, DenseVsSparseMaeParityAtGenerousK) {
  common::ScopedSimdIsa pin(common::SimdIsa::kScalar);
  datagen::MetroSimConfig sim_config;
  sim_config.num_stations = 16;
  sim_config.num_days = 8;
  sim_config.seed = 91;
  sim_config.target_mean_inflow = 50.0;
  sim_config.keep_od_ground_truth = false;
  auto sim = datagen::SimulateMetro(sim_config);
  data::ForecastDataset::Options data_options;
  data_options.input_steps = 4;
  data_options.output_steps = 2;
  data::ForecastDataset dataset(std::move(sim.data), data_options);

  core::TGCRNConfig config;
  config.num_nodes = 16;
  config.horizon = 2;
  config.hidden_dim = 8;
  config.num_layers = 1;
  config.node_embed_dim = 6;
  config.time_embed_dim = 4;
  config.steps_per_day = 72;

  auto run = [&](int64_t topk) {
    Rng rng(7);
    core::TGCRN model(config, &rng);
    core::TrainConfig train;
    train.epochs = 2;
    train.batch_size = 8;
    train.max_batches_per_epoch = 10;
    train.seed = 7;
    train.num_threads = 1;
    train.verbose = false;
    train.graph_topk = topk;
    return core::TrainAndEvaluate(&model, dataset, train);
  };
  const auto dense = run(0);
  // k == N keeps every edge: the sparse path is the same model routed
  // through CSR SpMM and the gather-recompute softmax.
  const auto sparse = run(16);
  const double rel = std::abs(sparse.average.mae - dense.average.mae) /
                     std::max(dense.average.mae, 1e-9);
  EXPECT_LT(rel, 0.01) << "dense mae=" << dense.average.mae
                       << " sparse mae=" << sparse.average.mae;
}

}  // namespace
}  // namespace tgcrn
