// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Table VIII: computational cost - parameter counts and
// training time per epoch of the graph-based models on the HZMetro
// stand-in, including the two TGCRN embedding configurations the paper
// reports (d_nu = d_tau = 16 vs d_nu = 64, d_tau = 32; scaled here to the
// reproduction's dimensions in the same 1:1 and 4:2 ratios).
#include <cstdio>

#include <limits>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "bench_common.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "paper_refs.h"

namespace tgcrn {
namespace bench {
namespace {

core::TrainResult TimeOneEpoch(core::ForecastModel* model,
                               const DatasetBundle& bundle,
                               const Scale& scale, int num_threads = 0) {
  core::TrainConfig config;
  config.epochs = 1;
  config.batch_size = scale.batch_size;
  config.max_batches_per_epoch = scale.max_batches_per_epoch;
  config.verbose = false;
  config.num_threads = num_threads;
  return core::TrainAndEvaluate(model, *bundle.dataset, config);
}

// Seconds spent in one trainer phase, summed over the run's epochs.
double PhaseSeconds(const core::TrainResult& result, const char* key) {
  const auto totals = result.report.PhaseTotals();
  const auto it = totals.find(key);
  return it != totals.end() ? it->second : 0.0;
}

// Profiler delta over one timed run (obs/prof.h): the armed profiler keeps
// accumulating across models, so each row subtracts the snapshot taken
// before its epoch. GFLOP/s sums the analytic kernel flops over kernel
// caller-exclusive seconds; IPC is NaN (rendered "-") where perf_event is
// unavailable.
struct KernelRates {
  double gflops = 0.0;
  double ipc = std::numeric_limits<double>::quiet_NaN();
};

KernelRates RatesFromDelta(const obs::ProfReport& delta) {
  KernelRates rates;
  double flops = 0.0, seconds = 0.0;
  int64_t instructions = 0, cycles = 0;
  for (const auto& kernel : delta.kernels) {
    flops += kernel.flops;
    seconds += kernel.exclusive_seconds;
    instructions += kernel.instructions;
    cycles += kernel.cycles;
  }
  if (seconds > 0.0) rates.gflops = flops / seconds / 1e9;
  if (delta.counters_available && cycles > 0) {
    rates.ipc = static_cast<double>(instructions) /
                static_cast<double>(cycles);
  }
  return rates;
}

// The per-model row: params, epoch time, the phase breakdown measured by
// the trainer's observability report (fwd/bwd are the network passes;
// "optim" folds clipping into the Adam step; "data" is batch assembly),
// and the kernel roofline rates from the profiler delta.
std::vector<std::string> CostRow(const std::string& label,
                                 const core::TrainResult& result,
                                 double params_ref, double seconds_ref,
                                 const KernelRates& rates) {
  return {label,
          Cell(static_cast<double>(result.num_parameters), params_ref, 0),
          Cell(result.seconds_per_epoch, seconds_ref, 3),
          Cell(PhaseSeconds(result, obs::kPhaseForward), -1.0, 3),
          Cell(PhaseSeconds(result, obs::kPhaseBackward), -1.0, 3),
          Cell(PhaseSeconds(result, obs::kPhaseClip) +
                   PhaseSeconds(result, obs::kPhaseAdam),
               -1.0, 3),
          Cell(PhaseSeconds(result, obs::kPhaseData), -1.0, 3),
          Cell(rates.gflops, -1.0, 2),
          Cell(rates.ipc, -1.0, 2)};
}

void Run() {
  const Scale scale = GetScale();
  const int max_threads = common::GetNumThreads();
  std::printf("Table VIII bench (cost), scale=%s, threads=%d\n",
              scale.name.c_str(), max_threads);
  const DatasetBundle bundle = MakeHzSim(scale);

  // Kernel-cost attribution for the GFLOP/s and IPC columns: armed once
  // here, snapshotted around every timed epoch below.
  obs::ProfOptions prof_options;
  prof_options.enabled = true;
  obs::StartProfiling(prof_options);
  obs::ProfReport prof_prev = obs::CollectProfReport();
  auto take_delta = [&prof_prev] {
    obs::ProfReport snapshot = obs::CollectProfReport();
    const obs::ProfReport delta = snapshot.DeltaFrom(prof_prev);
    prof_prev = std::move(snapshot);
    return RatesFromDelta(delta);
  };

  TablePrinter table({"Model", "#Params (paper)", "s/epoch (paper)",
                      "fwd s", "bwd s", "optim s", "data s", "GFLOP/s",
                      "IPC"});
  const std::vector<std::string> methods = {"DCRNN", "AGCRN", "GraphWaveNet",
                                            "PVCGN", "ESG"};
  for (const auto& method : methods) {
    std::printf("  timing %s...\n", method.c_str());
    std::fflush(stdout);
    auto model = MakeModel(method, bundle, scale, 5000);
    prof_prev = obs::CollectProfReport();
    const auto result = TimeOneEpoch(model.get(), bundle, scale);
    const CostRef& ref = CostRefs().at(method);
    table.AddRow(CostRow(method, result, ref.params, ref.seconds_per_epoch,
                         take_delta()));
    AppendCostHistory("table8_cost", method, scale, result);
  }
  // TGCRN small embeddings (paper: d_nu = d_tau = 16).
  {
    std::printf("  timing TGCRN (small embeddings)...\n");
    std::fflush(stdout);
    core::TGCRNConfig config;
    config.num_nodes = bundle.num_nodes;
    config.input_dim = bundle.num_features;
    config.output_dim = bundle.num_features;
    config.horizon = bundle.dataset->options().output_steps;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim / 2;
    config.time_embed_dim = scale.node_embed_dim / 2;
    config.steps_per_day = bundle.steps_per_day;
    Rng rng(5001);
    core::TGCRN model(config, &rng);
    prof_prev = obs::CollectProfReport();
    const auto result = TimeOneEpoch(&model, bundle, scale);
    const CostRef& ref = CostRefs().at("TGCRN (16,16)");
    table.AddRow(CostRow("TGCRN (small emb)", result, ref.params,
                         ref.seconds_per_epoch, take_delta()));
    AppendCostHistory("table8_cost", "TGCRN-small-emb", scale, result);
  }
  // TGCRN large embeddings (paper: d_nu = 64, d_tau = 32 -> 2x ratio).
  {
    std::printf("  timing TGCRN (large embeddings)...\n");
    std::fflush(stdout);
    core::TGCRNConfig config;
    config.num_nodes = bundle.num_nodes;
    config.input_dim = bundle.num_features;
    config.output_dim = bundle.num_features;
    config.horizon = bundle.dataset->options().output_steps;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = 2 * scale.node_embed_dim;
    config.time_embed_dim = scale.node_embed_dim;
    config.steps_per_day = bundle.steps_per_day;
    Rng rng(5002);
    core::TGCRN model(config, &rng);
    prof_prev = obs::CollectProfReport();
    const auto result = TimeOneEpoch(&model, bundle, scale);
    const CostRef& ref = CostRefs().at("TGCRN (64,32)");
    table.AddRow(CostRow("TGCRN (large emb)", result, ref.params,
                         ref.seconds_per_epoch, take_delta()));
    AppendCostHistory("table8_cost", "TGCRN-large-emb", scale, result);
  }
  std::printf("\n=== Table VIII (cost): measured (paper) ===\n");
  std::printf("(absolute values differ - paper trains hidden=64 models on "
              "N=80 with GPUs;\n the reproduction checks the *ordering*: "
              "PVCGN heaviest, dynamic-graph models\n costlier than static, "
              "TGCRN params grow with embedding dims)\n");
  EmitTable("table8_cost", table);

  // Thread-scaling addendum: the same TGCRN epoch at 1 thread vs the
  // current pool width. Losses are bitwise identical across the two runs;
  // only wall-clock changes.
  {
    std::printf("\n=== thread scaling (TGCRN small emb, 1 epoch) ===\n");
    core::TGCRNConfig config;
    config.num_nodes = bundle.num_nodes;
    config.input_dim = bundle.num_features;
    config.output_dim = bundle.num_features;
    config.horizon = bundle.dataset->options().output_steps;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim / 2;
    config.time_embed_dim = scale.node_embed_dim / 2;
    config.steps_per_day = bundle.steps_per_day;
    TablePrinter threads_table({"Threads", "s/epoch", "speedup"});
    double single_thread_secs = 0.0;
    for (const int t : {1, max_threads}) {
      Rng rng(5003);
      core::TGCRN model(config, &rng);
      const auto result = TimeOneEpoch(&model, bundle, scale, t);
      if (t == 1) single_thread_secs = result.seconds_per_epoch;
      const double speedup =
          result.seconds_per_epoch > 0.0
              ? single_thread_secs / result.seconds_per_epoch
              : 0.0;
      threads_table.AddRow({std::to_string(t),
                            Cell(result.seconds_per_epoch, -1.0, 3),
                            Cell(speedup, -1.0, 2)});
      if (max_threads == 1) break;  // nothing more to compare
    }
    EmitTable("table8_cost_threads", threads_table);
    common::SetNumThreads(max_threads);  // restore for any later use
  }

  // Allocator addendum: the same TGCRN epoch with the autograd step arena
  // + retained grad buffers on vs off. Losses are bitwise identical; the
  // columns show the per-epoch wall-clock and how many real tensor heap
  // allocations the epoch performed (steady-state steps allocate none with
  // the arena on — remaining allocations happen in the first batches while
  // the buffer pool and grad buffers warm up, and in eval).
  {
    std::printf("\n=== autograd arena (TGCRN small emb, 1 epoch) ===\n");
    core::TGCRNConfig config;
    config.num_nodes = bundle.num_nodes;
    config.input_dim = bundle.num_features;
    config.output_dim = bundle.num_features;
    config.horizon = bundle.dataset->options().output_steps;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim / 2;
    config.time_embed_dim = scale.node_embed_dim / 2;
    config.steps_per_day = bundle.steps_per_day;
    obs::Counter* allocs =
        obs::Registry::Global().GetCounter("tensor.allocations");
    TablePrinter arena_table(
        {"Arena", "s/epoch", "tensor allocs", "grad reuse", "arena nodes"});
    for (const bool arena_on : {true, false}) {
      ag::SetAutogradArenaEnabled(arena_on);
      Rng rng(5004);
      core::TGCRN model(config, &rng);
      const int64_t allocs_before = allocs->Value();
      const int64_t reuse_before =
          obs::Registry::Global()
              .GetCounter("tensor.grad_buffer_reuse")
              ->Value();
      const int64_t nodes_before =
          ag::internal::ThreadGraphArenaStats().nodes_allocated_total;
      const auto result = TimeOneEpoch(&model, bundle, scale);
      arena_table.AddRow(
          {arena_on ? "on" : "off",
           Cell(result.seconds_per_epoch, -1.0, 3),
           std::to_string(allocs->Value() - allocs_before),
           std::to_string(obs::Registry::Global()
                              .GetCounter("tensor.grad_buffer_reuse")
                              ->Value() -
                          reuse_before),
           std::to_string(
               ag::internal::ThreadGraphArenaStats().nodes_allocated_total -
               nodes_before)});
    }
    ag::SetAutogradArenaEnabled(true);
    EmitTable("table8_cost_arena", arena_table);
  }

  // Sparse scale-out addendum (TGCRN_GRAPH_TOPK): one TGCRN epoch on a
  // neighbor-limited metro_sim at city-scale N, dense path vs top-k CSR
  // path. The "s/epoch / (N*k)" column is the linearity check: roughly
  // flat for the sparse path (all autograd compute is O(N*k); the
  // remaining growth is the low-constant O(N^2) no-grad selection scan),
  // quadrupling per N-doubling for the dense path. The dense leg stops
  // where [B, N, N] adjacency temporaries stop fitting a sane budget.
  // Every row also lands in bench_results/history/ (ISA-stamped) so the
  // regression gate can diff the sparse path across commits.
  {
    const int64_t k = 16;
    std::vector<int64_t> sweep_ns;
    int64_t dense_max_n;
    if (scale.name == "quick") {
      sweep_ns = {128, 256};
      dense_max_n = 256;
    } else if (scale.name == "full") {
      sweep_ns = {1024, 2048, 4096, 8192};
      dense_max_n = 1024;
    } else {
      sweep_ns = {512, 1024, 2048, 4096};
      dense_max_n = 1024;
    }
    std::printf("\n=== sparse scale-out (TGCRN, 1 epoch, top-k=%lld) ===\n",
                static_cast<long long>(k));
    // "select s" splits out the exact-top-k selection scan
    // (tagsl.SelectTopK inclusive time): it is the only O(N^2) piece of
    // the sparse path, and it carries no autograd state. The last column
    // is the linearity check on everything else — the learned O(N*k)
    // compute — and should stay roughly flat down the sparse rows.
    TablePrinter sparse_table({"N", "mode", "s/epoch", "select s",
                               "us/epoch per N*k (excl select)"});
    auto select_seconds = [](const obs::ProfReport& delta) {
      double seconds = 0.0;
      for (const auto& node : delta.nodes) {
        if (node.name == "tagsl.SelectTopK") {
          seconds += node.inclusive_seconds;
        }
      }
      return seconds;
    };
    for (const int64_t n : sweep_ns) {
      std::printf("  timing N=%lld...\n", static_cast<long long>(n));
      std::fflush(stdout);
      datagen::MetroSimConfig sim_config;
      sim_config.num_stations = n;
      // One week (the simulator's minimum) at hourly slots: enough windows
      // to train on while keeping the untimed eval tail a small fraction
      // of the epoch at city-scale N.
      sim_config.num_days = 7;
      sim_config.steps_per_day = 18;
      sim_config.seed = 6001;
      sim_config.target_mean_inflow = 40.0;
      sim_config.keep_od_ground_truth = false;
      sim_config.max_od_pairs_per_station = 8;  // O(T*N*m) generation
      auto sim = datagen::SimulateMetro(sim_config);
      data::ForecastDataset::Options data_options;
      data_options.input_steps = 4;
      data_options.output_steps = 2;
      data::ForecastDataset dataset(std::move(sim.data), data_options);
      for (const bool sparse : {false, true}) {
        if (!sparse && n > dense_max_n) continue;
        core::TGCRNConfig config;
        config.num_nodes = n;
        config.horizon = 2;
        config.hidden_dim = 8;
        config.num_layers = 1;
        config.node_embed_dim = 8;
        config.time_embed_dim = 4;
        config.steps_per_day = sim_config.steps_per_day;
        Rng rng(6002);
        core::TGCRN model(config, &rng);
        core::TrainConfig train_config;
        train_config.epochs = 1;
        train_config.batch_size = 4;
        train_config.max_batches_per_epoch = 4;
        train_config.verbose = false;
        // Explicit per-leg override: beats any TGCRN_GRAPH_TOPK env value.
        train_config.graph_topk = sparse ? k : 0;
        // Per-epoch prof blocks share the exact boundary of
        // seconds_per_epoch (snapshot taken inside the epoch, after val
        // eval) — a whole-call delta would also count the untimed test
        // eval's selection scans and overshoot.
        train_config.prof.enabled = true;
        const auto result =
            core::TrainAndEvaluate(&model, dataset, train_config);
        double select_s = 0.0;
        for (const auto& epoch : result.report.epochs) {
          if (epoch.has_prof) select_s += select_seconds(epoch.prof);
        }
        if (result.epochs_run > 0) select_s /= result.epochs_run;
        const double per_nk =
            (result.seconds_per_epoch - select_s) /
            (static_cast<double>(n) * k) * 1e6;
        sparse_table.AddRow(
            {std::to_string(n), sparse ? "topk" : "dense",
             Cell(result.seconds_per_epoch, -1.0, 3),
             Cell(select_s, -1.0, 3), Cell(per_nk, -1.0, 3)});
        AppendCostHistory(
            "table8_cost",
            std::string(sparse ? "nsweep-sparse-N" : "nsweep-dense-N") +
                std::to_string(n),
            scale, result);
      }
    }
    EmitTable("table8_cost_sparse", sparse_table);
  }
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
