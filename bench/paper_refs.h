// Copyright 2026 TGCRN Reproduction Authors
// The paper's reported numbers, transcribed from its evaluation section, so
// every bench can print "measured (paper)" side by side. Absolute values
// are not expected to match (the data here is simulated and the scale is
// reduced); the *shape* - which method wins, by roughly what factor - is
// the reproduction target recorded in EXPERIMENTS.md.
#ifndef TGCRN_BENCH_PAPER_REFS_H_
#define TGCRN_BENCH_PAPER_REFS_H_

#include <map>
#include <string>
#include <vector>

namespace tgcrn {
namespace bench {

// Table IV: one entry per method; 4 horizons x (MAE, RMSE, MAPE%).
struct MetroRef {
  double mae[4];
  double rmse[4];
  double mape[4];
};

inline const std::map<std::string, MetroRef>& HzMetroRefs() {
  static const std::map<std::string, MetroRef> refs = {
      {"HA", {{51.43, 51.38, 51.11, 50.62},
              {111.86, 111.80, 111.64, 111.30},
              {25.31, 25.30, 25.36, 25.50}}},
      {"GBDT", {{36.31, 39.17, 42.78, 47.35},
                {57.49, 58.76, 60.27, 64.14},
                {19.51, 20.50, 20.84, 22.05}}},
      {"FC-LSTM", {{26.85, 27.45, 28.14, 30.34},
                   {48.27, 49.59, 51.49, 53.68},
                   {18.90, 19.35, 20.17, 21.30}}},
      {"Informer", {{31.97, 31.98, 34.45, 38.35},
                    {59.22, 59.55, 63.65, 70.53},
                    {34.34, 31.14, 34.25, 40.54}}},
      {"Crossformer", {{28.34, 31.68, 34.65, 38.53},
                       {51.39, 57.43, 62.71, 69.69},
                       {36.14, 39.43, 42.31, 44.97}}},
      {"DCRNN", {{23.93, 24.86, 25.64, 26.78},
                 {40.78, 42.24, 43.45, 45.42},
                 {14.79, 15.43, 16.40, 17.70}}},
      {"GraphWaveNet", {{25.38, 26.61, 27.47, 29.87},
                        {43.15, 45.24, 48.92, 51.74},
                        {17.44, 16.87, 18.62, 22.52}}},
      {"AGCRN", {{24.02, 25.21, 26.48, 27.53},
                 {42.19, 44.46, 47.06, 48.48},
                 {14.73, 15.50, 16.79, 19.74}}},
      {"PVCGN", {{23.96, 25.18, 25.41, 27.17},
                 {40.72, 42.97, 44.91, 47.18},
                 {14.77, 15.37, 16.30, 17.68}}},
      {"ESG", {{23.86, 24.72, 25.81, 27.38},
               {41.00, 42.36, 44.45, 47.05},
               {14.75, 15.58, 15.78, 17.93}}},
      {"TGCRN", {{21.73, 22.33, 23.13, 23.85},
                 {35.91, 36.88, 38.40, 39.92},
                 {13.65, 13.96, 14.69, 15.87}}},
  };
  return refs;
}

inline const std::map<std::string, MetroRef>& ShMetroRefs() {
  static const std::map<std::string, MetroRef> refs = {
      {"HA", {{48.26, 47.88, 47.26, 46.40},
              {136.97, 136.81, 136.45, 135.72},
              {31.55, 31.49, 31.27, 30.80}}},
      {"GBDT", {{32.72, 39.50, 49.14, 57.31},
                {62.59, 82.32, 113.95, 137.50},
                {23.40, 28.17, 40.76, 52.60}}},
      {"FC-LSTM", {{26.68, 27.25, 28.08, 28.94},
                   {55.53, 57.37, 60.45, 63.41},
                   {18.76, 19.04, 19.61, 20.59}}},
      {"Informer", {{31.44, 32.02, 33.81, 37.19},
                    {62.01, 63.36, 67.08, 71.64},
                    {33.26, 32.96, 35.55, 40.54}}},
      {"Crossformer", {{32.93, 33.84, 38.61, 40.36},
                       {63.54, 68.49, 79.09, 84.99},
                       {47.08, 44.28, 51.98, 49.30}}},
      {"DCRNN", {{24.04, 25.23, 26.76, 28.01},
                 {46.02, 49.90, 54.92, 58.83},
                 {17.82, 18.35, 19.30, 20.44}}},
      {"GraphWaveNet", {{24.91, 26.53, 28.78, 30.90},
                        {46.98, 51.64, 58.50, 65.08},
                        {20.05, 20.38, 21.99, 24.36}}},
      {"AGCRN", {{24.50, 25.28, 26.62, 27.50},
                 {50.01, 52.38, 56.74, 60.45},
                 {18.37, 19.96, 20.71, 22.46}}},
      {"PVCGN", {{23.29, 24.16, 25.33, 26.29},
                 {44.97, 47.83, 52.02, 55.27},
                 {16.83, 17.23, 17.92, 18.69}}},
      {"ESG", {{25.74, 26.68, 27.67, 28.70},
               {49.24, 52.23, 55.72, 58.71},
               {19.44, 19.83, 21.45, 22.99}}},
      {"TGCRN", {{21.81, 22.51, 23.04, 23.34},
                 {43.20, 45.54, 47.56, 48.89},
                 {15.87, 16.17, 16.60, 17.06}}},
  };
  return refs;
}

// Table V: NYC-Bike / NYC-Taxi (MAE, RMSE, PCC averaged over horizons).
struct DemandRef {
  double mae;
  double rmse;
  double pcc;  // < 0 when the paper did not report it
};

inline const std::map<std::string, DemandRef>& BikeRefs() {
  static const std::map<std::string, DemandRef> refs = {
      {"HA", {3.4617, 5.2003, 0.1669}},
      {"XGBoost", {2.4689, 4.0494, 0.4107}},
      {"FC-LSTM", {2.3026, 3.8139, 0.4861}},
      {"Informer", {1.7650, 2.8341, -1}},
      {"Crossformer", {2.0908, 3.2898, -1}},
      {"DCRNN", {1.8954, 3.2094, 0.7227}},
      {"GraphWaveNet", {1.9911, 3.2943, 0.7003}},
      {"CCRNN", {1.7404, 2.8382, 0.7934}},
      {"GTS", {1.7798, 2.9258, -1}},
      {"ESG", {1.6129, 2.6727, -1}},
      {"TGCRN", {1.5889, 2.6106, 0.8319}},
  };
  return refs;
}

inline const std::map<std::string, DemandRef>& TaxiRefs() {
  static const std::map<std::string, DemandRef> refs = {
      {"HA", {16.1509, 29.7806, 0.6339}},
      {"XGBoost", {11.6806, 21.1994, 0.8077}},
      {"FC-LSTM", {10.2200, 18.0708, 0.8645}},
      {"Informer", {5.7888, 18.0708, -1}},
      {"Crossformer", {5.9777, 10.5976, -1}},
      {"DCRNN", {8.4274, 14.7926, 0.9122}},
      {"GraphWaveNet", {8.1037, 13.0729, 0.9322}},
      {"CCRNN", {5.4979, 9.5631, 0.9648}},
      {"GTS", {7.2095, 12.7511, -1}},
      {"ESG", {5.0344, 8.9759, -1}},
      {"TGCRN", {4.7244, 8.4074, 0.9725}},
  };
  return refs;
}

// Table VI: Electricity (MSE, MAE) on normalized data.
struct ElectricityRef {
  double mse;
  double mae;
};

inline const std::map<std::string, ElectricityRef>& ElectricityRefs() {
  static const std::map<std::string, ElectricityRef> refs = {
      {"GraphWaveNet", {0.2313, 0.3226}},
      {"AGCRN", {0.1725, 0.2756}},
      {"Informer", {0.2330, 0.3453}},
      {"Crossformer", {0.1453, 0.2620}},
      {"ESG", {0.1563, 0.2651}},
      {"TGCRN", {0.1440, 0.2517}},
  };
  return refs;
}

// Table VII: ablation (MAE, RMSE, MAPE% averaged over horizons).
struct AblationRef {
  double hz[3];
  double sh[3];
};

inline const std::map<std::string, AblationRef>& AblationRefs() {
  static const std::map<std::string, AblationRef> refs = {
      {"TGCRN", {{22.71, 37.76, 14.54}, {22.68, 46.30, 16.43}}},
      {"w/o tagsl", {{25.40, 44.52, 15.85}, {26.99, 57.10, 20.07}}},
      {"w/ TE", {{22.90, 38.05, 14.74}, {23.36, 46.83, 17.43}}},
      {"w/o TDL", {{22.84, 38.02, 14.89}, {22.85, 46.32, 16.76}}},
      {"w/o PDF", {{22.78, 37.69, 14.70}, {23.26, 46.74, 17.33}}},
      {"Time2vec", {{25.95, 47.94, 15.77}, {25.14, 61.90, 17.57}}},
      {"CTR", {{23.16, 39.51, 14.73}, {23.81, 49.36, 16.96}}},
      {"w/o enc-dec", {{22.91, 38.23, 14.59}, {24.35, 51.47, 18.22}}},
  };
  return refs;
}

// Table VIII: parameter counts and seconds/epoch on HZMetro.
struct CostRef {
  double params;
  double seconds_per_epoch;
};

inline const std::map<std::string, CostRef>& CostRefs() {
  static const std::map<std::string, CostRef> refs = {
      {"DCRNN", {373378, 2.1}},
      {"AGCRN", {750120, 1.43}},
      {"GraphWaveNet", {367396, 1.3965}},
      {"PVCGN", {37598785, 48.79}},
      {"ESG", {3936334, 7.2461}},
      {"TGCRN (16,16)", {5557331, 8.62}},
      {"TGCRN (64,32)", {16675299, 10.14}},
  };
  return refs;
}

}  // namespace bench
}  // namespace tgcrn

#endif  // TGCRN_BENCH_PAPER_REFS_H_
