// Copyright 2026 TGCRN Reproduction Authors
// Shared infrastructure for the benchmark harness. Each bench binary
// regenerates one table or figure of the paper: it builds the synthetic
// stand-in dataset, trains the models involved, and prints the measured
// numbers next to the paper's reported numbers so the *shape* of the result
// (ranking, rough factors, crossovers) can be checked at a glance. Every
// bench also writes its rows to bench_results/<name>.csv.
//
// Scale control: TGCRN_BENCH_SCALE = quick | default | full. "quick" is a
// smoke-test scale (~seconds per model), "default" finishes the whole suite
// in tens of minutes on one CPU core, "full" trains longer for tighter
// numbers.
#ifndef TGCRN_BENCH_BENCH_COMMON_H_
#define TGCRN_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "common/table_printer.h"
#include "core/forecast_model.h"
#include "core/tgcrn.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "datagen/demand_sim.h"
#include "datagen/electricity_sim.h"
#include "datagen/metro_sim.h"
#include "metrics/metrics.h"

namespace tgcrn {
namespace bench {

struct Scale {
  // Metro (Table IV / VII / VIII / Figs 8-12).
  int64_t hz_nodes = 20;
  int64_t sh_nodes = 28;
  int64_t metro_days = 28;
  // Demand (Table V).
  int64_t bike_zones = 20;
  int64_t taxi_zones = 24;
  int64_t demand_days = 42;
  // Electricity (Table VI).
  int64_t elec_clients = 24;
  int64_t elec_days = 90;
  // Training. The paper trains ~100 epochs at LR 1e-3 with decay 0.3 at
  // {5,20,40,70,90}; the reduced scales keep total-step x LR roughly
  // constant by raising the LR and shrinking the milestone schedule
  // proportionally ("full" restores the paper recipe).
  int64_t epochs = 14;
  int64_t max_batches_per_epoch = 45;
  int64_t batch_size = 16;
  float lr = 6e-3f;
  std::vector<int64_t> lr_milestones = {9, 12};
  // Model sizes.
  int64_t hidden_dim = 16;
  int64_t node_embed_dim = 12;
  int64_t time_embed_dim = 8;
  std::string name = "default";
};

// Reads TGCRN_BENCH_SCALE from the environment.
Scale GetScale();

// A ready-to-train dataset with the side information baselines need.
struct DatasetBundle {
  std::string name;
  std::unique_ptr<data::ForecastDataset> dataset;
  Tensor distances;     // [N, N]; zero tensor when not meaningful
  Tensor train_series;  // [N, T_train] channel-0 training series
  int64_t num_nodes = 0;
  int64_t num_features = 0;
  int64_t steps_per_day = 0;
  int64_t minutes_per_step = 0;
  // Retained simulator ground truth (metro only; empty otherwise).
  std::vector<Tensor> od_ground_truth;
  std::vector<datagen::AreaType> area_types;
  std::vector<int64_t> slot_of_day;  // full timeline calendar
  std::vector<int64_t> day_of_week;
  Tensor raw_values;  // [T, N, d] unscaled, full timeline
};

// Builders for the five dataset stand-ins.
DatasetBundle MakeHzSim(const Scale& scale, bool keep_od = false);
DatasetBundle MakeShSim(const Scale& scale);
DatasetBundle MakeBikeSim(const Scale& scale);
DatasetBundle MakeTaxiSim(const Scale& scale);
DatasetBundle MakeElectricitySim(const Scale& scale);

// Model construction by table row name. Supported names: TGCRN, FC-LSTM,
// DCRNN, GraphWaveNet, AGCRN, PVCGN, CCRNN, GTS, ESG, Informer,
// Crossformer.
std::unique_ptr<core::ForecastModel> MakeModel(const std::string& name,
                                               const DatasetBundle& bundle,
                                               const Scale& scale,
                                               uint64_t seed);

// Per-model learning-rate multiplier relative to scale.lr. The original
// codebases train with very different LRs (transformers at 1e-4-5e-4, the
// recurrent graph family at 1e-3-1e-2); keeping their ratios preserves the
// comparison's faithfulness when the global schedule is compressed.
float LrMultiplier(const std::string& model_name);

// Trains and evaluates one neural model on a bundle with the shared recipe
// (scale.lr scaled by LrMultiplier(model->name())). When the
// TGCRN_BENCH_REPORT_DIR environment variable names a directory, the run's
// structured report (obs/report.h) is streamed there as
// <model>-<dataset>.jsonl.
core::TrainResult RunNeural(core::ForecastModel* model,
                            const DatasetBundle& bundle, const Scale& scale,
                            uint64_t seed = 99);

// Formats "measured (paper ref)" cells; ref < 0 renders as measured only.
std::string Cell(double measured, double paper_ref, int precision = 2);

// Writes the table and announces the CSV path.
void EmitTable(const std::string& bench_name, const TablePrinter& table);

// Appends one timing line for `label` to
// bench_results/history/<bench_name>_history.csv (header written on
// create): UTC timestamp, scale, threads, s/epoch, and the trainer's phase
// seconds. The growing file is the perf trajectory the regression gate
// (tgcrn_report_diff, docs/BENCHMARKS.md) diffs across commits.
void AppendCostHistory(const std::string& bench_name,
                       const std::string& label, const Scale& scale,
                       const core::TrainResult& result);

}  // namespace bench
}  // namespace tgcrn

#endif  // TGCRN_BENCH_BENCH_COMMON_H_
