// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Fig 10: sensitivity of TGCRN to the joint-loss weight lambda
// (Eq 17) on the HZMetro stand-in. The paper finds a shallow optimum
// around lambda = 0.1: some time-discrepancy regularization helps, a large
// weight lets the auxiliary task dominate and hurts.
#include <cstdio>

#include "bench_common.h"

namespace tgcrn {
namespace bench {
namespace {

void Run() {
  Scale scale = GetScale();
  if (scale.name != "full") {
    scale.epochs = std::max<int64_t>(6, scale.epochs / 2);
  }
  std::printf("Fig 10 bench (lambda sensitivity), scale=%s\n",
              scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale);

  TablePrinter table({"lambda", "MAE", "RMSE", "MAPE%"});
  for (float lambda : {0.0f, 0.01f, 0.1f, 0.5f, 1.0f}) {
    std::printf("  lambda=%.2f...\n", lambda);
    std::fflush(stdout);
    core::TGCRNConfig config;
    config.num_nodes = bundle.num_nodes;
    config.input_dim = bundle.num_features;
    config.output_dim = bundle.num_features;
    config.horizon = bundle.dataset->options().output_steps;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim;
    config.time_embed_dim = scale.time_embed_dim;
    config.steps_per_day = bundle.steps_per_day;
    config.lambda = lambda;
    config.use_tdl = lambda > 0.0f;
    Rng rng(8000);
    core::TGCRN model(config, &rng);
    const auto result = RunNeural(&model, bundle, scale, 8000);
    table.AddRow({TablePrinter::Num(lambda, 2),
                  TablePrinter::Num(result.average.mae, 2),
                  TablePrinter::Num(result.average.rmse, 2),
                  TablePrinter::Num(result.average.mape, 2)});
  }
  std::printf("\n=== Fig 10 (joint-loss weight; paper: optimum near 0.1) "
              "===\n");
  EmitTable("fig10_lambda", table);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
