// Copyright 2026 TGCRN Reproduction Authors
// Extension bench (not a paper table): the paper's future-work proposal
// from Section IV-C3 - "the changes in correlations between time steps are
// often small, making it unnecessary to calculate them so frequently. In
// future work, we will consider how to infer spatial correlations only
// when crucial changes occur." This harness implements the lazy-refresh
// variant (rebuild the time-aware graph every k steps) and measures the
// accuracy/time trade-off it buys.
#include <cstdio>

#include "bench_common.h"

namespace tgcrn {
namespace bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  std::printf("Graph-refresh ablation bench (paper future work), "
              "scale=%s\n",
              scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale);

  TablePrinter table({"refresh interval", "MAE", "RMSE", "s/epoch",
                      "speedup"});
  double base_seconds = 0.0;
  for (int64_t interval : {1, 2, 4}) {
    std::printf("  interval=%lld...\n", static_cast<long long>(interval));
    std::fflush(stdout);
    core::TGCRNConfig config;
    config.num_nodes = bundle.num_nodes;
    config.input_dim = bundle.num_features;
    config.output_dim = bundle.num_features;
    config.horizon = bundle.dataset->options().output_steps;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim;
    config.time_embed_dim = scale.time_embed_dim;
    config.steps_per_day = bundle.steps_per_day;
    config.graph_refresh_interval = interval;
    Rng rng(12000);
    core::TGCRN model(config, &rng);
    const auto result = RunNeural(&model, bundle, scale, 12000);
    if (interval == 1) base_seconds = result.seconds_per_epoch;
    table.AddRow({std::to_string(interval),
                  TablePrinter::Num(result.average.mae, 2),
                  TablePrinter::Num(result.average.rmse, 2),
                  TablePrinter::Num(result.seconds_per_epoch, 2),
                  TablePrinter::Num(
                      base_seconds / result.seconds_per_epoch, 2) + "x"});
  }
  std::printf("\n=== Graph-refresh trade-off (interval 1 = the paper's "
              "TGCRN) ===\n");
  EmitTable("ablation_refresh", table);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
