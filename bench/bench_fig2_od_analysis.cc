// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Fig 2: evidence that spatial correlations (OD transfer)
// exhibit weekday/weekend periodicity and smooth intra-day trends. The
// paper draws these from Hangzhou AFC records; here the analysis runs on
// the metro simulator's ground-truth OD intensities - the same three
// panels, quantified:
//  (a) station inflows at 08:00-09:00, weekdays vs weekends;
//  (b) cosine similarity of the 08:00 OD matrix across the 7 days of a
//      week (the paper's heat-map row: SAT~SUN, MON..FRI similar);
//  (c) similarity of the OD matrix over consecutive 15-min spans on one
//      weekday (the paper's smooth trend row).
#include <cstdio>

#include "bench_common.h"

namespace tgcrn {
namespace bench {
namespace {

double Cosine(const Tensor& a, const Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    dot += a.flat(i) * b.flat(i);
    na += a.flat(i) * a.flat(i);
    nb += b.flat(i) * b.flat(i);
  }
  return dot / (std::sqrt(na * nb) + 1e-12);
}

void Run() {
  Scale scale = GetScale();
  std::printf("Fig 2 bench (OD analysis), scale=%s\n", scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale, /*keep_od=*/true);
  const int64_t spd = bundle.steps_per_day;
  const int64_t slot_8am = 8;  // day starts 06:00, 15-min slots

  // (a) Inflows 08:00-09:00 weekday vs weekend, first four stations.
  TablePrinter flows({"Station", "area", "weekday 08-09 inflow",
                      "weekend 08-09 inflow", "ratio"});
  const char* kAreaNames[] = {"residential", "business", "shopping",
                              "mixed"};
  for (int64_t station = 0; station < std::min<int64_t>(6, bundle.num_nodes);
       ++station) {
    double weekday = 0, weekend = 0;
    int64_t nd_weekday = 0, nd_weekend = 0;
    const int64_t days =
        static_cast<int64_t>(bundle.day_of_week.size()) / spd;
    for (int64_t day = 0; day < days; ++day) {
      for (int64_t s = slot_8am; s < slot_8am + 4; ++s) {
        const int64_t t = day * spd + s;
        const double inflow = bundle.raw_values.at({t, station, 0});
        if (bundle.day_of_week[t] >= 5) {
          weekend += inflow;
          ++nd_weekend;
        } else {
          weekday += inflow;
          ++nd_weekday;
        }
      }
    }
    weekday /= nd_weekday;
    weekend /= nd_weekend;
    flows.AddRow({"station " + std::to_string(station),
                  kAreaNames[static_cast<int>(bundle.area_types[station])],
                  TablePrinter::Num(weekday, 1),
                  TablePrinter::Num(weekend, 1),
                  TablePrinter::Num(weekday / std::max(weekend, 1.0), 2)});
  }
  std::printf("\n--- Fig 2(a): morning-peak inflow, weekday vs weekend ---\n");
  EmitTable("fig2a_flows", flows);

  // (b) OD similarity across the days of week 2 (a full Mon..Sun week).
  const char* kDayNames[] = {"MON", "TUE", "WED", "THU", "FRI", "SAT",
                             "SUN"};
  std::vector<Tensor> od_by_day;
  for (int64_t day = 7; day < 14; ++day) {
    od_by_day.push_back(bundle.od_ground_truth[day * spd + slot_8am]);
  }
  std::vector<std::string> header = {"cosine"};
  for (int i = 0; i < 7; ++i) header.push_back(kDayNames[i]);
  TablePrinter sim(header);
  for (int i = 0; i < 7; ++i) {
    std::vector<std::string> row = {kDayNames[i]};
    for (int j = 0; j < 7; ++j) {
      row.push_back(TablePrinter::Num(Cosine(od_by_day[i], od_by_day[j]),
                                      3));
    }
    sim.AddRow(std::move(row));
  }
  std::printf("\n--- Fig 2(b): cosine similarity of 08:00 OD matrices over "
              "one week ---\n(expect a weekday block and a weekend block)\n");
  EmitTable("fig2b_weekly_similarity", sim);

  // Aggregate check the paper makes visually.
  double within_weekday = 0, within_weekend = 0, across = 0;
  int64_t n_wd = 0, n_we = 0, n_ac = 0;
  for (int i = 0; i < 7; ++i) {
    for (int j = i + 1; j < 7; ++j) {
      const double c = Cosine(od_by_day[i], od_by_day[j]);
      const bool wi = i >= 5, wj = j >= 5;
      if (!wi && !wj) {
        within_weekday += c;
        ++n_wd;
      } else if (wi && wj) {
        within_weekend += c;
        ++n_we;
      } else {
        across += c;
        ++n_ac;
      }
    }
  }
  std::printf("mean cosine: weekday-weekday %.3f, weekend-weekend %.3f, "
              "across %.3f  (periodicity holds: %s)\n",
              within_weekday / n_wd, within_weekend / n_we, across / n_ac,
              (within_weekday / n_wd > across / n_ac &&
               within_weekend / n_we > across / n_ac)
                  ? "YES"
                  : "NO");

  // (c) Trend: similarity of OD over consecutive spans 08:00-09:00 on one
  // weekday (day 10, a Thursday).
  TablePrinter trend({"span", "cosine to 08:00", "cosine to previous"});
  const int64_t base_t = 10 * spd + slot_8am;
  for (int64_t k = 0; k < 4; ++k) {
    const Tensor& od = bundle.od_ground_truth[base_t + k];
    const double to_first = Cosine(od, bundle.od_ground_truth[base_t]);
    const double to_prev =
        k == 0 ? 1.0 : Cosine(od, bundle.od_ground_truth[base_t + k - 1]);
    char label[32];
    std::snprintf(label, sizeof(label), "08:%02lld-08:%02lld",
                  static_cast<long long>(k * 15),
                  static_cast<long long>(k * 15 + 15));
    trend.AddRow({label, TablePrinter::Num(to_first, 4),
                  TablePrinter::Num(to_prev, 4)});
  }
  std::printf("\n--- Fig 2(c): OD drift over consecutive 15-min spans ---\n"
              "(expect cosine-to-previous > cosine-to-08:00, decaying "
              "smoothly)\n");
  EmitTable("fig2c_trend", trend);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
