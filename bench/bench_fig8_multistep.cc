// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Fig 8: multi-step forecasting comparison against the FC-LSTM
// benchmark. For each method and horizon the paper plots the MAE relative
// to FC-LSTM at that horizon; TGCRN's advantage should widen with the
// horizon. Run on the HZMetro stand-in (the paper shows four datasets; the
// metro panel is the representative one - the others' harnesses are
// bench_table5/bench_table6).
#include <cstdio>

#include "bench_common.h"

namespace tgcrn {
namespace bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  std::printf("Fig 8 bench (multi-step vs FC-LSTM), scale=%s\n",
              scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale);
  const std::vector<std::string> methods = {"FC-LSTM", "DCRNN",
                                            "GraphWaveNet", "AGCRN", "ESG",
                                            "TGCRN"};
  std::vector<std::vector<metrics::Metrics>> per_method;
  for (const auto& method : methods) {
    std::printf("  training %s...\n", method.c_str());
    std::fflush(stdout);
    auto model = MakeModel(method, bundle, scale, 6000);
    per_method.push_back(
        RunNeural(model.get(), bundle, scale, 6000).per_horizon);
  }
  const auto& lstm = per_method[0];

  TablePrinter table({"Method", "15min MAE ratio", "30min MAE ratio",
                      "45min MAE ratio", "60min MAE ratio"});
  for (size_t m = 0; m < methods.size(); ++m) {
    std::vector<std::string> row = {methods[m]};
    for (int h = 0; h < 4; ++h) {
      row.push_back(
          TablePrinter::Num(per_method[m][h].mae / lstm[h].mae, 3));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n=== Fig 8 (MAE relative to FC-LSTM; < 1 is better; paper: "
              "TGCRN's ratio drops further as the horizon grows) ===\n");
  EmitTable("fig8_multistep", table);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
