// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Fig 9: sensitivity of TGCRN to the node-embedding
// dimensionality d_nu and time-embedding dimensionality d_tau on the
// HZMetro stand-in. The paper sweeps each and finds performance improves
// with dimensionality up to a point, then flattens/overfits; parameters
// grow throughout (the cost trade-off discussed in Section IV-C3).
#include <cstdio>

#include "bench_common.h"

namespace tgcrn {
namespace bench {
namespace {

core::TrainResult RunDims(const DatasetBundle& bundle, const Scale& scale,
                          int64_t d_nu, int64_t d_tau) {
  core::TGCRNConfig config;
  config.num_nodes = bundle.num_nodes;
  config.input_dim = bundle.num_features;
  config.output_dim = bundle.num_features;
  config.horizon = bundle.dataset->options().output_steps;
  config.hidden_dim = scale.hidden_dim;
  config.node_embed_dim = d_nu;
  config.time_embed_dim = d_tau;
  config.steps_per_day = bundle.steps_per_day;
  Rng rng(7000);
  core::TGCRN model(config, &rng);
  return RunNeural(&model, bundle, scale, 7000);
}

void Run() {
  Scale scale = GetScale();
  // Ten full trainings; halve the epoch budget per point (the sensitivity
  // ordering stabilizes early).
  if (scale.name != "full") {
    scale.epochs = std::max<int64_t>(6, scale.epochs / 2);
  }
  std::printf("Fig 9 bench (embedding-dim sensitivity), scale=%s\n",
              scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale);

  TablePrinter nu_table({"d_nu (d_tau=8)", "MAE", "RMSE", "#params"});
  for (int64_t d_nu : {2, 6, 12, 20}) {
    std::printf("  d_nu=%lld...\n", static_cast<long long>(d_nu));
    std::fflush(stdout);
    const auto result = RunDims(bundle, scale, d_nu, 8);
    nu_table.AddRow({std::to_string(d_nu),
                     TablePrinter::Num(result.average.mae, 2),
                     TablePrinter::Num(result.average.rmse, 2),
                     std::to_string(result.num_parameters)});
  }
  std::printf("\n=== Fig 9 (left): node-embedding dimensionality ===\n");
  EmitTable("fig9_node_dim", nu_table);

  TablePrinter tau_table({"d_tau (d_nu=12)", "MAE", "RMSE", "#params"});
  for (int64_t d_tau : {2, 6, 12, 20}) {
    std::printf("  d_tau=%lld...\n", static_cast<long long>(d_tau));
    std::fflush(stdout);
    const auto result = RunDims(bundle, scale, 12, d_tau);
    tau_table.AddRow({std::to_string(d_tau),
                      TablePrinter::Num(result.average.mae, 2),
                      TablePrinter::Num(result.average.rmse, 2),
                      std::to_string(result.num_parameters)});
  }
  std::printf("\n=== Fig 9 (right): time-embedding dimensionality ===\n");
  EmitTable("fig9_time_dim", tau_table);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
