// Copyright 2026 TGCRN Reproduction Authors
// Closed-loop load generator for the serving path (docs/SERVING.md):
// E entities with Poisson think-times drive an in-process
// InferenceSession — each round serves every due request (observations,
// with a forecast every F-th request per entity), the round's wall time
// advances the virtual clock, and served entities re-arm their next
// arrival with an exponential gap. After a warm-up phase (every entity
// observed, shapes stabilized) the measured phase pins the zero-alloc
// steady state via the tensor.allocations counter and reports
// p50/p99/mean latency and QPS from the serve.request_us histogram.
//
// With --report, the run is written as RunReport JSONL whose epoch line
// carries phase_seconds {serve_p50, serve_p99, serve_mean} — the rows
// tgcrn_report_diff gates against bench_results/baselines/serve_smoke.jsonl
// in CI, exactly how training-phase timings are gated. With
// --require-zero-alloc 1 the bench exits non-zero on any steady-state
// tensor heap allocation.
//
// With --access-log, the measured phase is additionally recorded through
// the real ServeTelemetry sink (a synthesized RequestTrace per request,
// stamped from the session's wave timings): the per-stage histograms
// feed stage_* rows into the report, and after the run the access log is
// read back and validated — every request id appears exactly once and
// every line's stage offsets are monotone non-decreasing. Violations
// exit non-zero, making the bench a telemetry integration check too.
//
// Usage:
//   bench_serve [--entities E] [--warm-steps W] [--requests R]
//       [--forecast-every F] [--rate QPS] [--nodes N] [--hidden H]
//       [--horizon Q] [--steps-per-day S] [--topk K] [--batch-max B]
//       [--seed S] [--threads T] [--report serve.jsonl]
//       [--access-log access.jsonl] [--require-zero-alloc 0|1]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/tgcrn.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "obs/rpc_trace.h"
#include "obs/trace.h"
#include "serve/session.h"
#include "serve/telemetry.h"

namespace {

struct Args {
  int64_t entities = 12;
  int64_t warm_steps = 3;
  int64_t requests = 240;
  int64_t forecast_every = 4;
  double rate = 200.0;  // fleet-wide virtual arrivals per second
  int64_t nodes = 12;
  int64_t hidden = 16;
  int64_t horizon = 4;
  int64_t steps_per_day = 72;
  int64_t topk = 0;
  int64_t batch_max = 32;
  uint64_t seed = 7;
  int threads = 0;
  std::string report_path;
  std::string access_log_path;
  bool require_zero_alloc = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--entities") args->entities = std::stoll(value);
    else if (flag == "--warm-steps") args->warm_steps = std::stoll(value);
    else if (flag == "--requests") args->requests = std::stoll(value);
    else if (flag == "--forecast-every") {
      args->forecast_every = std::stoll(value);
    } else if (flag == "--rate") args->rate = std::stod(value);
    else if (flag == "--nodes") args->nodes = std::stoll(value);
    else if (flag == "--hidden") args->hidden = std::stoll(value);
    else if (flag == "--horizon") args->horizon = std::stoll(value);
    else if (flag == "--steps-per-day") {
      args->steps_per_day = std::stoll(value);
    } else if (flag == "--topk") args->topk = std::stoll(value);
    else if (flag == "--batch-max") args->batch_max = std::stoll(value);
    else if (flag == "--seed") args->seed = std::stoull(value);
    else if (flag == "--threads") args->threads = std::stoi(value);
    else if (flag == "--report") args->report_path = value;
    else if (flag == "--access-log") args->access_log_path = value;
    else if (flag == "--require-zero-alloc") {
      args->require_zero_alloc = value != "0";
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return args->entities > 0 && args->requests > 0 &&
         args->forecast_every > 1 && args->rate > 0.0;
}

struct Client {
  std::string name;
  double next_due = 0.0;  // virtual seconds
  int64_t slot = 0;
  int64_t sent = 0;
};

// Builds the trace a server would have stamped for one in-process
// request: read/parse collapse to the round start (no socket), the wave
// timings provide batch_wait/gather/kernel/scatter, and serialize/flush
// collapse to the wave end (no response encoding in the bench loop).
tgcrn::obs::RequestTrace SynthesizeTrace(
    int64_t id, int16_t op, int64_t round_start_ns,
    const tgcrn::serve::WaveTiming& wave) {
  tgcrn::obs::RequestTrace trace;
  trace.Reset();
  trace.id = id;
  trace.op = op;
  trace.status = 0;
  trace.entity_count = 1;
  trace.batch_width = static_cast<int32_t>(wave.active);
  trace.start_ns = round_start_ns;
  trace.Stamp(tgcrn::serve::kStageRead, round_start_ns);
  trace.Stamp(tgcrn::serve::kStageParse, round_start_ns);
  trace.Stamp(tgcrn::serve::kStageBatchWait, wave.start_ns);
  trace.Stamp(tgcrn::serve::kStageGather, wave.gather_end_ns);
  trace.Stamp(tgcrn::serve::kStageKernel, wave.kernel_end_ns);
  trace.Stamp(tgcrn::serve::kStageScatter, wave.scatter_end_ns);
  trace.Stamp(tgcrn::serve::kStageSerialize, wave.scatter_end_ns);
  trace.Stamp(tgcrn::serve::kStageFlush, wave.scatter_end_ns);
  return trace;
}

// Reads the access log back and checks the exactly-once and monotonicity
// contracts: every expected request id appears once, every request
// line's cumulative stage offsets never decrease in lifecycle order, and
// every line parses with the documented schema. Returns the number of
// violations (0 = clean), printing each one.
int ValidateAccessLog(const std::string& path, int64_t expected_requests) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "access log %s: cannot open\n", path.c_str());
    return 1;
  }
  int violations = 0;
  int64_t request_lines = 0;
  std::unordered_set<long long> seen_ids;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    tgcrn::obs::Json entry;
    std::string error;
    if (!tgcrn::obs::Json::Parse(line, &entry, &error)) {
      std::fprintf(stderr, "access log line %d: unparseable: %s\n", lineno,
                   error.c_str());
      ++violations;
      continue;
    }
    const std::string type = entry.GetString("type");
    if (type != "request") continue;  // drift/slow blocks have own shapes
    ++request_lines;
    const long long id = entry.GetInt("id", -1);
    if (id <= 0) {
      std::fprintf(stderr, "access log line %d: missing/invalid id\n",
                   lineno);
      ++violations;
    } else if (!seen_ids.insert(id).second) {
      std::fprintf(stderr, "access log line %d: duplicate id %lld\n", lineno,
                   id);
      ++violations;
    }
    if (!entry.Has("op") || !entry.Has("status") || !entry.Has("total_us") ||
        !entry.Has("batch") || !entry.Has("entities")) {
      std::fprintf(stderr, "access log line %d: missing schema keys\n",
                   lineno);
      ++violations;
    }
    const tgcrn::obs::Json& stage_us = entry["stage_us"];
    if (!stage_us.is_object()) {
      std::fprintf(stderr, "access log line %d: missing stage_us\n", lineno);
      ++violations;
      continue;
    }
    int64_t prev = 0;
    for (int s = 0; s < tgcrn::serve::kServeStageCount; ++s) {
      const char* name = tgcrn::serve::ServeStageName(s);
      if (!stage_us.Has(name)) {
        std::fprintf(stderr, "access log line %d: stage_us lacks %s\n",
                     lineno, name);
        ++violations;
        break;
      }
      const int64_t offset = stage_us.GetInt(name, -1);
      if (offset < prev) {
        std::fprintf(stderr,
                     "access log line %d: stage %s offset %lld < previous "
                     "%lld (non-monotone)\n",
                     lineno, name, static_cast<long long>(offset),
                     static_cast<long long>(prev));
        ++violations;
        break;
      }
      prev = offset;
    }
  }
  if (request_lines != expected_requests) {
    std::fprintf(stderr,
                 "access log: %lld request lines, expected %lld (each "
                 "request must appear exactly once)\n",
                 static_cast<long long>(request_lines),
                 static_cast<long long>(expected_requests));
    ++violations;
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: bench_serve [--entities E] [--warm-steps W]\n"
                 "  [--requests R] [--forecast-every F] [--rate QPS]\n"
                 "  [--nodes N] [--hidden H] [--horizon Q]\n"
                 "  [--steps-per-day S] [--topk K] [--batch-max B]\n"
                 "  [--seed S] [--threads T] [--report serve.jsonl]\n"
                 "  [--access-log access.jsonl] [--require-zero-alloc 0|1]\n"
                 "docs: docs/SERVING.md, docs/BENCHMARKS.md\n");
    return 2;
  }
  if (args.threads > 0) tgcrn::common::SetNumThreads(args.threads);

  tgcrn::core::TGCRNConfig config;
  config.num_nodes = args.nodes;
  config.input_dim = 2;
  config.output_dim = 2;
  config.horizon = args.horizon;
  config.hidden_dim = args.hidden;
  config.steps_per_day = args.steps_per_day;
  config.graph_topk = args.topk;
  tgcrn::Rng rng(args.seed);
  tgcrn::core::TGCRN model(config, &rng);

  // Latency doesn't depend on the weights being trained; a scaler fitted
  // on the same synthetic distribution the clients draw from keeps the
  // numerics in the trained-model regime.
  tgcrn::Tensor history({64, args.nodes, config.input_dim});
  for (int64_t i = 0; i < history.numel(); ++i) {
    history.mutable_data()[i] =
        static_cast<float>(40.0 + 20.0 * rng.NextDouble());
  }
  tgcrn::data::StandardScaler scaler;
  scaler.Fit(history, history.size(0));

  tgcrn::serve::SessionConfig session_config;
  session_config.batch_max = args.batch_max;
  tgcrn::serve::InferenceSession session(&model, scaler, session_config);

  // --access-log routes the measured phase through the real telemetry
  // sink (synthesized traces; see the header comment).
  std::unique_ptr<tgcrn::serve::ServeTelemetry> telemetry;
  if (!args.access_log_path.empty()) {
    tgcrn::serve::TelemetryConfig tconfig;
    tconfig.access_log_path = args.access_log_path;
    telemetry.reset(new tgcrn::serve::ServeTelemetry(tconfig, &session));
  }

  tgcrn::Rng load_rng(args.seed + 1);
  const double per_entity_rate = args.rate / static_cast<double>(args.entities);
  auto exp_gap = [&]() {
    return -std::log(1.0 - load_rng.NextDouble()) / per_entity_rate;
  };
  auto fill_values = [&](std::vector<float>* values) {
    values->resize(static_cast<size_t>(args.nodes * config.input_dim));
    for (float& v : *values) {
      v = static_cast<float>(40.0 + 20.0 * load_rng.NextDouble());
    }
  };

  std::vector<Client> clients(static_cast<size_t>(args.entities));
  for (int64_t i = 0; i < args.entities; ++i) {
    clients[i].name = "entity-" + std::to_string(i);
    clients[i].next_due = exp_gap();
  }

  // Warm-up: every entity observed warm_steps times in full-fleet waves,
  // then one observe + forecast at every batch width 1..E. The Poisson
  // rounds of the measured phase can only produce those compositions, so
  // after the sweep no first-time tensor shape (and hence no pool miss)
  // is left for the steady state.
  for (int64_t w = 0; w < args.warm_steps; ++w) {
    std::vector<tgcrn::serve::Observation> wave;
    for (Client& client : clients) {
      tgcrn::serve::Observation ob;
      ob.entity = client.name;
      ob.slot = client.slot++ % args.steps_per_day;
      fill_values(&ob.values);
      wave.push_back(std::move(ob));
    }
    session.Observe(wave);
  }
  for (int64_t width = 1; width <= args.entities; ++width) {
    std::vector<tgcrn::serve::Observation> wave;
    std::vector<std::string> names;
    for (int64_t i = 0; i < width; ++i) {
      Client& client = clients[i];
      tgcrn::serve::Observation ob;
      ob.entity = client.name;
      ob.slot = client.slot++ % args.steps_per_day;
      fill_values(&ob.values);
      wave.push_back(std::move(ob));
      names.push_back(client.name);
    }
    session.Observe(wave);
    tgcrn::Tensor out;
    std::vector<int64_t> steps;
    session.Forecast(names, &out, &steps);
  }

  // Measured phase.
  auto* alloc_counter =
      tgcrn::obs::Registry::Global().GetCounter("tensor.allocations");
  auto* latency =
      tgcrn::obs::Registry::Global().GetHistogram("serve.request_us");
  latency->Reset();
  if (telemetry) {
    // Stage histograms are cumulative; reset so the reported stage p50s
    // cover only the measured phase (mirroring the latency reset above).
    for (int s = 0; s < tgcrn::serve::kServeStageCount; ++s) {
      tgcrn::obs::Registry::Global()
          .GetHistogram(std::string("serve.stage_") +
                        tgcrn::serve::ServeStageName(s) + "_us")
          ->Reset();
    }
  }
  const int64_t allocs_before = alloc_counter->Value();
  const auto wall_start = std::chrono::steady_clock::now();

  double now = 0.0;
  int64_t served = 0;
  while (served < args.requests) {
    std::vector<size_t> due;
    double soonest = clients[0].next_due;
    for (size_t i = 0; i < clients.size(); ++i) {
      if (clients[i].next_due <= now) due.push_back(i);
      soonest = std::min(soonest, clients[i].next_due);
    }
    if (due.empty()) {
      now = soonest;
      continue;
    }
    std::vector<tgcrn::serve::Observation> observes;
    std::vector<std::string> forecasts;
    for (size_t index : due) {
      Client& client = clients[index];
      if ((client.sent + 1) % args.forecast_every == 0) {
        forecasts.push_back(client.name);
      } else {
        tgcrn::serve::Observation ob;
        ob.entity = client.name;
        ob.slot = client.slot++ % args.steps_per_day;
        fill_values(&ob.values);
        observes.push_back(std::move(ob));
      }
      ++client.sent;
    }
    const auto round_start = std::chrono::steady_clock::now();
    const int64_t round_start_ns = tgcrn::obs::internal::TraceNowNs();
    if (!observes.empty()) {
      const tgcrn::serve::InferenceSession::ObserveResult result =
          session.Observe(observes);
      if (telemetry) {
        for (size_t k = 0; k < observes.size(); ++k) {
          tgcrn::obs::RequestTrace trace = SynthesizeTrace(
              telemetry->NextRequestId(), tgcrn::serve::kOpObserve,
              round_start_ns,
              session.wave_timings()[result.wave_index[k]]);
          telemetry->RecordRequest(&trace);
        }
      }
    }
    if (!forecasts.empty()) {
      tgcrn::Tensor out;
      std::vector<int64_t> steps;
      session.Forecast(forecasts, &out, &steps);
      if (telemetry) {
        for (size_t k = 0; k < forecasts.size(); ++k) {
          // Forecast waves are contiguous chunks of batch_max rows.
          const size_t ordinal = k / static_cast<size_t>(args.batch_max);
          tgcrn::obs::RequestTrace trace = SynthesizeTrace(
              telemetry->NextRequestId(), tgcrn::serve::kOpForecast,
              round_start_ns, session.wave_timings()[ordinal]);
          telemetry->RecordRequest(&trace);
        }
      }
    }
    const double round_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    // Closed loop: the service time just spent is when the responses got
    // back, so re-arm the served entities relative to that instant.
    now += round_s;
    for (size_t index : due) clients[index].next_due = now + exp_gap();
    served += static_cast<int64_t>(due.size());
  }

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const int64_t alloc_delta = alloc_counter->Value() - allocs_before;
  const tgcrn::obs::HistogramSnapshot lat = latency->Snapshot();
  const double p50_s = static_cast<double>(lat.ApproxQuantile(0.5)) / 1e6;
  const double p99_s = static_cast<double>(lat.ApproxQuantile(0.99)) / 1e6;
  const double mean_s = lat.Mean() / 1e6;
  const double qps = wall > 0.0 ? static_cast<double>(served) / wall : 0.0;

  std::printf("bench_serve: %lld requests over %lld entities (topk=%lld)\n",
              static_cast<long long>(served),
              static_cast<long long>(args.entities),
              static_cast<long long>(args.topk));
  std::printf("  latency p50 %8.1f us   p99 %8.1f us   mean %8.1f us\n",
              p50_s * 1e6, p99_s * 1e6, mean_s * 1e6);
  std::printf("  throughput %.1f req/s, steady-state tensor allocations: "
              "%lld\n",
              qps, static_cast<long long>(alloc_delta));
  if (telemetry) {
    std::printf("  stage p50/p99 us:");
    for (int s = 0; s < tgcrn::serve::kServeStageCount; ++s) {
      const char* name = tgcrn::serve::ServeStageName(s);
      const tgcrn::obs::HistogramSnapshot snap =
          tgcrn::obs::Registry::Global()
              .GetHistogram(std::string("serve.stage_") + name + "_us")
              ->Snapshot();
      std::printf("  %s %lld/%lld", name,
                  static_cast<long long>(snap.ApproxQuantile(0.5)),
                  static_cast<long long>(snap.ApproxQuantile(0.99)));
    }
    std::printf("\n");
  }

  if (!args.report_path.empty()) {
    tgcrn::obs::EpochReport epoch;
    epoch.epoch = 0;
    epoch.seconds = wall;
    epoch.phase_seconds["serve_p50"] = p50_s;
    epoch.phase_seconds["serve_p99"] = p99_s;
    epoch.phase_seconds["serve_mean"] = mean_s;
    if (telemetry) {
      // Per-stage p50 columns (seconds, like every phase row) for the
      // kernel-adjacent stages — report_diff gates them in CI the same
      // way it gates serve_p50.
      for (const char* name : {"gather", "kernel", "scatter"}) {
        const tgcrn::obs::HistogramSnapshot snap =
            tgcrn::obs::Registry::Global()
                .GetHistogram(std::string("serve.stage_") + name + "_us")
                ->Snapshot();
        epoch.phase_seconds[std::string("stage_") + name + "_p50"] =
            static_cast<double>(snap.ApproxQuantile(0.5)) / 1e6;
      }
    }
    if (tgcrn::obs::ProfilingEnabled()) {
      epoch.has_prof = true;
      epoch.prof = tgcrn::obs::CollectProfReport();
    }
    tgcrn::obs::RunReport report;
    report.model = "tgcrn-serve";
    report.num_parameters = model.NumParameters();
    report.num_threads = tgcrn::common::GetNumThreads();
    report.epochs_run = 1;
    report.total_seconds = wall;
    report.epochs.push_back(epoch);
    bool ok = tgcrn::obs::RunReport::AppendJsonLine(args.report_path,
                                                    epoch.ToJson());
    ok = tgcrn::obs::RunReport::AppendJsonLine(args.report_path,
                                               report.SummaryJson()) &&
         ok;
    if (!ok) {
      std::fprintf(stderr, "report write failed: %s\n",
                   args.report_path.c_str());
      return 1;
    }
    std::printf("  report written to %s\n", args.report_path.c_str());
  }

  if (telemetry) {
    telemetry.reset();  // flushes and closes the access log
    const int violations = ValidateAccessLog(args.access_log_path, served);
    if (violations > 0) {
      std::fprintf(stderr, "FAIL: %d access-log violation(s)\n", violations);
      return 1;
    }
    std::printf(
        "  access log %s validated: %lld requests exactly once, monotone "
        "stage offsets\n",
        args.access_log_path.c_str(), static_cast<long long>(served));
  }

  if (args.require_zero_alloc && alloc_delta != 0) {
    std::fprintf(stderr,
                 "FAIL: %lld tensor heap allocations in steady state "
                 "(expected 0)\n",
                 static_cast<long long>(alloc_delta));
    return 1;
  }
  return 0;
}
