// Copyright 2026 TGCRN Reproduction Authors
// Micro-benchmarks of the substrate (google-benchmark): tensor kernels,
// autograd overhead, and the paper's core building blocks (TagSL graph
// construction, one GCGRU step). Not a paper table - this is the
// engineering baseline for the wall-clock numbers in bench_table8_cost.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "core/gcgru.h"
#include "core/tagsl.h"
#include "core/time_encoders.h"
#include "graph/csr.h"
#include "obs/prof.h"
#include "tensor/buffer_pool.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace {

// Labels the row with the resolved SIMD ISA (every kernel row is
// attributable to the kernel set that produced it) and, when given a
// per-iteration flop count, attaches an analytic flops rate next to
// google-benchmark's wall clock.
void StampIsa(benchmark::State& state, double flops_per_iter = 0.0) {
  state.SetLabel(common::SimdIsaName(common::ActiveSimdIsa()));
  if (flops_per_iter > 0.0) {
    state.counters["flops"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * flops_per_iter,
        benchmark::Counter::kIsRate);
  }
}

// Samples the calling thread's perf_event group around the timed loop and
// attaches an "ipc" counter. Silently absent where the kernel denies
// perf_event_open (most containers) — obs/prof.h handles the fallback.
class IpcProbe {
 public:
  IpcProbe() : start_(obs::SampleThreadPerfCounters()) {}
  void Attach(benchmark::State& state) {
    const obs::PerfCounterSample end = obs::SampleThreadPerfCounters();
    if (!start_.available || !end.available) return;
    const int64_t cycles = end.cycles - start_.cycles;
    if (cycles <= 0) return;
    state.counters["ipc"] = benchmark::Counter(
        static_cast<double>(end.instructions - start_.instructions) /
        static_cast<double>(cycles));
  }

 private:
  obs::PerfCounterSample start_;
};

void BM_MatmulSquare(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandUniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::RandUniform({n, n}, -1, 1, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Matmul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  StampIsa(state, 2.0 * static_cast<double>(n) * n * n);
  probe.Attach(state);
}
BENCHMARK(BM_MatmulSquare)->Arg(16)->Arg(64)->Arg(128);

void BM_BatchedMatmul(benchmark::State& state) {
  // The GCGRU inner shape: [B, N, 1, C] x [B, N, C, H].
  const int64_t b = 16, n = 20, c = 18, h = 16;
  Rng rng(2);
  Tensor lhs = Tensor::RandUniform({b, n, 1, c}, -1, 1, &rng);
  Tensor rhs = Tensor::RandUniform({b, n, c, h}, -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lhs.Matmul(rhs));
  }
}
BENCHMARK(BM_BatchedMatmul);

void BM_BroadcastAdd(benchmark::State& state) {
  Rng rng(3);
  Tensor a = Tensor::RandUniform({16, 20, 64}, -1, 1, &rng);
  Tensor b = Tensor::RandUniform({64}, -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Add(b));
  }
}
BENCHMARK(BM_BroadcastAdd);

void BM_SoftmaxRows(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  Tensor a = Tensor::RandUniform({16, n, n}, -1, 1, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Softmax(-1));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(20)->Arg(64);

// --- Thread-count sweeps ----------------------------------------------------
// The same kernels at 1/2/4 threads. Results are bitwise identical across
// the sweep (see tests/parallel_determinism_test.cc); only wall-clock
// changes. Arg is the thread count.

void BM_BatchedMatmulThreads(benchmark::State& state) {
  common::ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const int64_t b = 16, n = 64, c = 32, h = 32;
  Rng rng(20);
  Tensor lhs = Tensor::RandUniform({b, n, c}, -1, 1, &rng);
  Tensor rhs = Tensor::RandUniform({b, c, h}, -1, 1, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lhs.Matmul(rhs));
  }
  state.SetItemsProcessed(state.iterations() * 2 * b * n * c * h);
  StampIsa(state, 2.0 * static_cast<double>(b) * n * c * h);
  probe.Attach(state);
}
BENCHMARK(BM_BatchedMatmulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_ElementwiseMulThreads(benchmark::State& state) {
  common::ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(21);
  Tensor a = Tensor::RandUniform({64, 64, 64}, -1, 1, &rng);
  Tensor b = Tensor::RandUniform({64, 64, 64}, -1, 1, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Mul(b));
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
  StampIsa(state, static_cast<double>(a.numel()));
  probe.Attach(state);
}
BENCHMARK(BM_ElementwiseMulThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SumAllThreads(benchmark::State& state) {
  common::ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(22);
  Tensor a = Tensor::RandUniform({64, 64, 64}, -1, 1, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.SumAll());
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
  StampIsa(state, static_cast<double>(a.numel()));
  probe.Attach(state);
}
BENCHMARK(BM_SumAllThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SigmoidThreads(benchmark::State& state) {
  common::ScopedNumThreads threads(static_cast<int>(state.range(0)));
  Rng rng(23);
  Tensor a = Tensor::RandUniform({64, 64, 64}, -4, 4, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Sigmoid());
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
  // 10 flops/element, the analytic model RecordKernelCost uses.
  StampIsa(state, 10.0 * static_cast<double>(a.numel()));
  probe.Attach(state);
}
BENCHMARK(BM_SigmoidThreads)->Arg(1)->Arg(2)->Arg(4);

// --- ISA sweeps -------------------------------------------------------------
// The same kernels with the SIMD level pinned (arg: 0 = scalar table,
// 1 = AVX2 table), single-threaded, so the speedup column in
// docs/BENCHMARKS.md is reproducible via --benchmark_filter=Isa. Note the
// "scalar" table is still auto-vectorized by the compiler's baseline SSE2,
// so this ratio understates the gain over the pre-microkernel seed code.

bool PinIsaOrSkip(benchmark::State& state, int64_t arg) {
  if (arg == 1 &&
      !(common::Avx2CompiledIn() && common::CpuSupportsAvx2())) {
    state.SkipWithError("AVX2 not available in this build/CPU");
    return false;
  }
  return true;
}

void BM_MatmulSquareIsa(benchmark::State& state) {
  if (!PinIsaOrSkip(state, state.range(0))) return;
  common::ScopedSimdIsa pin(state.range(0) == 1 ? common::SimdIsa::kAvx2
                                                : common::SimdIsa::kScalar);
  common::ScopedNumThreads threads(1);
  const int64_t n = 128;
  Rng rng(25);
  Tensor a = Tensor::RandUniform({n, n}, -1, 1, &rng);
  Tensor b = Tensor::RandUniform({n, n}, -1, 1, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Matmul(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  StampIsa(state, 2.0 * static_cast<double>(n) * n * n);
  probe.Attach(state);
}
BENCHMARK(BM_MatmulSquareIsa)->Arg(0)->Arg(1);

void BM_BatchedMatmulIsa(benchmark::State& state) {
  // The m=1 GCGRU inner shape, the per-step hot spot.
  if (!PinIsaOrSkip(state, state.range(0))) return;
  common::ScopedSimdIsa pin(state.range(0) == 1 ? common::SimdIsa::kAvx2
                                                : common::SimdIsa::kScalar);
  common::ScopedNumThreads threads(1);
  const int64_t b = 16, n = 20, c = 18, h = 16;
  Rng rng(26);
  Tensor lhs = Tensor::RandUniform({b, n, 1, c}, -1, 1, &rng);
  Tensor rhs = Tensor::RandUniform({b, n, c, h}, -1, 1, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lhs.Matmul(rhs));
  }
  StampIsa(state, 2.0 * static_cast<double>(b) * n * c * h);
  probe.Attach(state);
}
BENCHMARK(BM_BatchedMatmulIsa)->Arg(0)->Arg(1);

void BM_SigmoidIsa(benchmark::State& state) {
  if (!PinIsaOrSkip(state, state.range(0))) return;
  common::ScopedSimdIsa pin(state.range(0) == 1 ? common::SimdIsa::kAvx2
                                                : common::SimdIsa::kScalar);
  common::ScopedNumThreads threads(1);
  Rng rng(27);
  Tensor a = Tensor::RandUniform({64, 64, 64}, -4, 4, &rng);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Sigmoid());
  }
  state.SetItemsProcessed(state.iterations() * a.numel());
  StampIsa(state, 10.0 * static_cast<double>(a.numel()));
  probe.Attach(state);
}
BENCHMARK(BM_SigmoidIsa)->Arg(0)->Arg(1);

// --- Backward-pass fast-path kernels ---------------------------------------
// The transposed-matmul and fused gradient kernels vs the op chains they
// replaced. Shapes mirror the GCGRU/TagSL backward hot spots.

void BM_MatmulTransposeBVsExplicit(benchmark::State& state) {
  // g . B^T as the matmul backward computes it. Arg 0 = fused, 1 = chain;
  // arg 1 selects the shape: 0 = square rows, 1 = the GCGRU backward shape
  // [B, N, 1, H] x [B, N, C, H] where m=1 makes the explicit transpose
  // copy dominate.
  const bool chain = state.range(0) != 0;
  const bool gcgru_shape = state.range(1) != 0;
  Rng rng(30);
  Tensor g = gcgru_shape ? Tensor::RandUniform({16, 20, 1, 16}, -1, 1, &rng)
                         : Tensor::RandUniform({16, 64, 32}, -1, 1, &rng);
  Tensor b = gcgru_shape ? Tensor::RandUniform({16, 20, 18, 16}, -1, 1, &rng)
                         : Tensor::RandUniform({16, 32, 32}, -1, 1, &rng);
  const int64_t d = b.dim();
  for (auto _ : state) {
    if (chain) {
      benchmark::DoNotOptimize(g.Matmul(b.Transpose(d - 2, d - 1)));
    } else {
      benchmark::DoNotOptimize(g.MatmulTransposeB(b));
    }
  }
}
BENCHMARK(BM_MatmulTransposeBVsExplicit)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

void BM_MatmulTransposeAVsExplicit(benchmark::State& state) {
  // A^T . g as the matmul backward computes it. Arg 0 = fused, 1 = chain.
  const bool chain = state.range(0) != 0;
  Rng rng(31);
  Tensor a = Tensor::RandUniform({16, 64, 32}, -1, 1, &rng);
  Tensor g = Tensor::RandUniform({16, 64, 32}, -1, 1, &rng);
  for (auto _ : state) {
    if (chain) {
      benchmark::DoNotOptimize(a.Transpose(1, 2).Matmul(g));
    } else {
      benchmark::DoNotOptimize(a.MatmulTransposeA(g));
    }
  }
}
BENCHMARK(BM_MatmulTransposeAVsExplicit)->Arg(0)->Arg(1);

void BM_SigmoidBackwardFusedVsChain(benchmark::State& state) {
  const bool chain = state.range(0) != 0;
  Rng rng(32);
  Tensor x = Tensor::RandUniform({64, 64, 64}, -4, 4, &rng);
  Tensor y = x.Sigmoid();
  Tensor g = Tensor::RandUniform({64, 64, 64}, -1, 1, &rng);
  for (auto _ : state) {
    if (chain) {
      benchmark::DoNotOptimize(g.Mul(y).Mul(y.Neg().AddScalar(1.0f)));
    } else {
      benchmark::DoNotOptimize(SigmoidGradKernel(y, g));
    }
  }
  state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_SigmoidBackwardFusedVsChain)->Arg(0)->Arg(1);

void BM_TanhBackwardFusedVsChain(benchmark::State& state) {
  const bool chain = state.range(0) != 0;
  Rng rng(33);
  Tensor x = Tensor::RandUniform({64, 64, 64}, -4, 4, &rng);
  Tensor y = x.Tanh();
  Tensor g = Tensor::RandUniform({64, 64, 64}, -1, 1, &rng);
  for (auto _ : state) {
    if (chain) {
      benchmark::DoNotOptimize(g.Mul(y.Mul(y).Neg().AddScalar(1.0f)));
    } else {
      benchmark::DoNotOptimize(TanhGradKernel(y, g));
    }
  }
  state.SetItemsProcessed(state.iterations() * y.numel());
}
BENCHMARK(BM_TanhBackwardFusedVsChain)->Arg(0)->Arg(1);

// Buffer-pool behavior on a training-step-shaped allocation sequence.
// Arg 1 = pool enabled, 0 = disabled; the steady-state hit rate shows up
// as the wall-clock gap.
void BM_TensorPoolStepAllocations(benchmark::State& state) {
  auto& pool = TensorBufferPool::Global();
  const bool enabled = state.range(0) != 0;
  pool.SetEnabled(enabled);
  Rng rng(34);
  Tensor x = Tensor::RandUniform({16, 512}, -1, 1, &rng);
  Tensor w = Tensor::RandUniform({512, 512}, -1, 1, &rng);
  for (auto _ : state) {
    Tensor h = x;
    for (int i = 0; i < 4; ++i) {
      h = h.Matmul(w).Tanh();
    }
    benchmark::DoNotOptimize(h);
  }
  const auto stats = pool.GetStats();
  state.counters["pool_hits"] =
      benchmark::Counter(static_cast<double>(stats.hits));
  state.counters["pool_misses"] =
      benchmark::Counter(static_cast<double>(stats.misses));
  pool.ReloadEnabledFromEnv();
}
BENCHMARK(BM_TensorPoolStepAllocations)->Arg(0)->Arg(1);

void BM_AutogradMatmulForwardBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  ag::Variable a(Tensor::RandUniform({n, n}, -1, 1, &rng), true);
  ag::Variable b(Tensor::RandUniform({n, n}, -1, 1, &rng), true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    ag::Variable loss = ag::SumAll(ag::Matmul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad());
  }
}
BENCHMARK(BM_AutogradMatmulForwardBackward)->Arg(16)->Arg(64);

// Full step lifecycle for a training-step-shaped op chain: graph build,
// backward, teardown. Arg 1 = step arena enabled (bump-allocated nodes,
// flat list teardown, O(1) reset), 0 = heap-refcounted nodes torn down by
// the handle-release cascade. Grad buffers are retained either way, so the
// wall-clock gap isolates node allocation + teardown cost. Counters expose
// the arena's node traffic and the retained-buffer reuse rate.
void BM_AutogradStepArena(benchmark::State& state) {
  const bool arena_on = state.range(0) != 0;
  ag::SetAutogradArenaEnabled(arena_on);
  Rng rng(7);
  ag::Variable w1(Tensor::RandUniform({64, 64}, -1, 1, &rng), true);
  ag::Variable w2(Tensor::RandUniform({64, 64}, -1, 1, &rng), true);
  ag::Variable x(Tensor::RandUniform({16, 64}, -1, 1, &rng));
  const Tensor grad_out = Tensor::Ones({16, 64});
  const int64_t nodes_before =
      ag::internal::ThreadGraphArenaStats().nodes_allocated_total;
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    ag::StepArenaScope step;
    ag::Variable h = x;
    for (int i = 0; i < 8; ++i) {
      h = ag::Tanh(ag::Matmul(h, (i % 2 == 0) ? w1 : w2));
    }
    h.Backward(grad_out);
    benchmark::DoNotOptimize(w1.grad());
  }
  const auto stats = ag::internal::ThreadGraphArenaStats();
  state.counters["arena_nodes"] = benchmark::Counter(
      static_cast<double>(stats.nodes_allocated_total - nodes_before));
  state.counters["arena_high_water_bytes"] =
      benchmark::Counter(static_cast<double>(stats.high_water_bytes));
  ag::SetAutogradArenaEnabled(true);
}
BENCHMARK(BM_AutogradStepArena)->Arg(0)->Arg(1);

// --- Sparse graph kernels ---------------------------------------------------
// The TGCRN_GRAPH_TOPK path: dense -> top-k -> CSR sparsify, and the CSR
// SpMM aggregation it feeds. Selection is a scalar compare kernel (thread
// sweep only); SpMM has scalar and AVX2 tables (ISA + thread sweeps).

// Batch of row-stochastic matrices, the sparsify/SpMM input shape.
Tensor DenseAdjacency(int64_t b, int64_t n, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandUniform({b, n, n}, 0.0f, 1.0f, &rng).Softmax(-1);
}

void BM_SparsifyTopK(benchmark::State& state) {
  const int64_t n = state.range(0), k = state.range(1);
  const Tensor dense = DenseAdjacency(8, n, 50);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::SparsifyTopK(dense, k));
  }
  state.SetItemsProcessed(state.iterations() * dense.numel());
  StampIsa(state);
  probe.Attach(state);
}
BENCHMARK(BM_SparsifyTopK)->Args({256, 16})->Args({1024, 16});

void BM_SparsifyTopKThreads(benchmark::State& state) {
  common::ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const Tensor dense = DenseAdjacency(8, 1024, 51);
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::SparsifyTopK(dense, 16));
  }
  state.SetItemsProcessed(state.iterations() * dense.numel());
  StampIsa(state);
  probe.Attach(state);
}
BENCHMARK(BM_SparsifyTopKThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_SpmmIsa(benchmark::State& state) {
  if (!PinIsaOrSkip(state, state.range(0))) return;
  common::ScopedSimdIsa pin(state.range(0) == 1 ? common::SimdIsa::kAvx2
                                                : common::SimdIsa::kScalar);
  common::ScopedNumThreads threads(1);
  const int64_t b = 8, n = 512, c = 32, k = 16;
  graph::CsrBatch csr = graph::SparsifyTopK(DenseAdjacency(b, n, 52), k);
  ag::SparseGraph sg;
  sg.index = csr.index;
  sg.values = ag::Variable(csr.values);
  Rng rng(53);
  ag::Variable x(Tensor::RandUniform({b, n, c}, -1, 1, &rng));
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::SpmmCsr(sg, x));
  }
  const double flops = 2.0 * static_cast<double>(b) * n * k * c;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(flops));
  StampIsa(state, flops);
  probe.Attach(state);
}
BENCHMARK(BM_SpmmIsa)->Arg(0)->Arg(1);

void BM_SpmmThreads(benchmark::State& state) {
  common::ScopedNumThreads threads(static_cast<int>(state.range(0)));
  const int64_t b = 8, n = 512, c = 32, k = 16;
  graph::CsrBatch csr = graph::SparsifyTopK(DenseAdjacency(b, n, 54), k);
  ag::SparseGraph sg;
  sg.index = csr.index;
  sg.values = ag::Variable(csr.values);
  Rng rng(55);
  ag::Variable x(Tensor::RandUniform({b, n, c}, -1, 1, &rng));
  IpcProbe probe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ag::SpmmCsr(sg, x));
  }
  const double flops = 2.0 * static_cast<double>(b) * n * k * c;
  StampIsa(state, flops);
  probe.Attach(state);
}
BENCHMARK(BM_SpmmThreads)->Arg(1)->Arg(2)->Arg(4);

// Sparse vs dense aggregation at growing N, fixed k = 16: the N*k-vs-N^2
// crossover that motivates TGCRN_GRAPH_TOPK. Args: (N, 0 = dense batched
// matmul, 1 = CSR SpMM). Dense stops at 2048 (the [4, N, N] operand alone
// is 64 MB there).
void BM_AggregationNSweep(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool sparse = state.range(1) != 0;
  const int64_t b = 4, c = 16, k = 16;
  const Tensor dense = DenseAdjacency(b, n, 56);
  Rng rng(57);
  ag::Variable x(Tensor::RandUniform({b, n, c}, -1, 1, &rng));
  const double flops = sparse ? 2.0 * static_cast<double>(b) * n * k * c
                              : 2.0 * static_cast<double>(b) * n * n * c;
  if (sparse) {
    graph::CsrBatch csr = graph::SparsifyTopK(dense, k);
    ag::SparseGraph sg;
    sg.index = csr.index;
    sg.values = ag::Variable(csr.values);
    for (auto _ : state) {
      benchmark::DoNotOptimize(ag::SpmmCsr(sg, x));
    }
  } else {
    ag::Variable adj(dense);
    for (auto _ : state) {
      benchmark::DoNotOptimize(ag::Matmul(adj, x));
    }
  }
  StampIsa(state, flops);
}
BENCHMARK(BM_AggregationNSweep)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({2048, 0})
    ->Args({2048, 1})
    ->Args({4096, 1});

void BM_TagslBuildGraph(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  core::DiscreteTimeEmbedding encoder(72, 8, &rng);
  core::TagSL::Options options;
  options.num_nodes = n;
  options.node_dim = 12;
  core::TagSL tagsl(options, &encoder, &rng);
  ag::Variable x(Tensor::RandUniform({16, n, 2}, -1, 1, &rng));
  std::vector<int64_t> slots(16, 10), prev(16, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tagsl.BuildGraph(x, slots, prev));
  }
}
BENCHMARK(BM_TagslBuildGraph)->Arg(20)->Arg(64);

void BM_GcgruStep(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  core::GCGRUCell cell(2, 16, 12, 8, &rng);
  ag::Variable x(Tensor::RandUniform({16, n, 2}, -1, 1, &rng));
  ag::Variable h(Tensor::Zeros({16, n, 16}));
  ag::Variable adj(Tensor::Full({16, n, n},
                                1.0f / static_cast<float>(n)));
  ag::Variable node_embed(Tensor::RandUniform({n, 12}, -1, 1, &rng));
  ag::Variable time_embed(Tensor::RandUniform({16, 8}, -1, 1, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cell.Forward(x, h, adj, node_embed, time_embed));
  }
}
BENCHMARK(BM_GcgruStep)->Arg(20)->Arg(64);

}  // namespace
}  // namespace tgcrn

BENCHMARK_MAIN();
