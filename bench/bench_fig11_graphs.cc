// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Fig 11: do the learned time-aware adjacency matrices follow
// the periodicities and trends of the true spatial correlations? The paper
// compares heat maps of learned A^t against OD passenger transfer. Because
// the simulator exposes the ground-truth OD intensity Lambda(t), this bench
// can quantify what the paper shows visually:
//  (a) weekday/weekend periodicity: the learned graphs of the two period
//      types should mirror the block structure of the true OD similarity;
//  (b) intra-day trend: learned graphs at consecutive spans should drift
//      smoothly, like the true OD does;
//  (c) pointwise alignment: correlation between learned A^t and Lambda(t)
//      across the test period, compared against a static self-learned
//      graph (AGCRN) which by construction cannot track the dynamics.
#include <cstdio>

#include "baselines/agcrn.h"
#include "bench_common.h"
#include "viz/heatmap.h"

namespace tgcrn {
namespace bench {
namespace {

double Pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size();
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom > 1e-12 ? cov / denom : 0.0;
}

double Cosine(const Tensor& a, const Tensor& b) {
  double dot = 0, na = 0, nb = 0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    dot += a.flat(i) * b.flat(i);
    na += a.flat(i) * a.flat(i);
    nb += b.flat(i) * b.flat(i);
  }
  return dot / (std::sqrt(na * nb) + 1e-12);
}

// Off-diagonal entries flattened.
std::vector<double> OffDiagonal(const Tensor& m) {
  const int64_t n = m.size(0);
  std::vector<double> out;
  out.reserve(n * (n - 1));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i != j) out.push_back(m.at({i, j}));
    }
  }
  return out;
}

void Run() {
  const Scale scale = GetScale();
  std::printf("Fig 11 bench (learned graphs vs OD), scale=%s\n",
              scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale, /*keep_od=*/true);
  const int64_t spd = bundle.steps_per_day;
  const int64_t slot_8am = 8;

  std::printf("  training TGCRN...\n");
  std::fflush(stdout);
  auto model_ptr = MakeModel("TGCRN", bundle, scale, 9000);
  auto* tgcrn = dynamic_cast<core::TGCRN*>(model_ptr.get());
  RunNeural(tgcrn, bundle, scale, 9000);

  std::printf("  training AGCRN (static-graph reference)...\n");
  std::fflush(stdout);
  auto agcrn_ptr = MakeModel("AGCRN", bundle, scale, 9000);
  auto* agcrn = dynamic_cast<baselines::Agcrn*>(agcrn_ptr.get());
  RunNeural(agcrn, bundle, scale, 9000);

  // Helper: the learned raw graph at absolute step t, conditioned on the
  // true node state at t (as the model would see it at inference).
  data::StandardScaler scaler = bundle.dataset->scaler();
  auto learned_at = [&](const core::TGCRN& model, int64_t t) {
    Tensor x = scaler.Transform(
        bundle.raw_values.Slice(0, t, t + 1)).Squeeze(0);  // [N, d]
    return model.LearnedRawAdjacency(x, {bundle.slot_of_day[t]});
  };

  // (a) Periodicity: one week of 08:00 graphs.
  const char* kDayNames[] = {"MON", "TUE", "WED", "THU", "FRI", "SAT",
                             "SUN"};
  std::vector<Tensor> learned_by_day, od_by_day;
  const int64_t week_start_day = 21;  // inside the test period
  for (int64_t d = 0; d < 7; ++d) {
    const int64_t t = (week_start_day + d) * spd + slot_8am;
    learned_by_day.push_back(learned_at(*tgcrn, t));
    od_by_day.push_back(bundle.od_ground_truth[t]);
  }
  TablePrinter weekly({"pair", "learned cosine", "true OD cosine"});
  double learned_within = 0, learned_across = 0;
  int64_t n_within = 0, n_across = 0;
  for (int i = 0; i < 7; ++i) {
    for (int j = i + 1; j < 7; ++j) {
      const double lc = Cosine(learned_by_day[i], learned_by_day[j]);
      const double oc = Cosine(od_by_day[i], od_by_day[j]);
      weekly.AddRow({std::string(kDayNames[i]) + "-" + kDayNames[j],
                     TablePrinter::Num(lc, 4), TablePrinter::Num(oc, 4)});
      const bool same_period = (i >= 5) == (j >= 5);
      if (same_period) {
        learned_within += lc;
        ++n_within;
      } else {
        learned_across += lc;
        ++n_across;
      }
    }
  }
  std::printf("\n--- Fig 11(a): 08:00 graph similarity across one week ---\n");
  EmitTable("fig11a_weekly", weekly);

  // The paper's heat-map panels: learned adjacency (top) and true OD
  // (bottom) for a weekday and a weekend day, restricted to the first 8
  // stations so the panels stay readable.
  const int64_t k = std::min<int64_t>(8, bundle.num_nodes);
  auto corner = [&](const Tensor& m) {
    return m.Slice(0, 0, k).Slice(1, 0, k);
  };
  viz::HeatmapOptions hm;
  hm.per_matrix_scale = true;
  std::printf("\nlearned A^t at 08:00 (first %lld stations):\n%s",
              static_cast<long long>(k),
              viz::RenderHeatmapRow(
                  {corner(learned_by_day[3]), corner(learned_by_day[5])},
                  {"THU", "SAT"}, hm)
                  .c_str());
  std::printf("true OD at 08:00:\n%s",
              viz::RenderHeatmapRow(
                  {corner(od_by_day[3]), corner(od_by_day[5])},
                  {"THU", "SAT"}, hm)
                  .c_str());
  std::printf("learned graphs: same-period mean cosine %.4f vs "
              "across-period %.4f (periodicity captured: %s)\n",
              learned_within / n_within, learned_across / n_across,
              learned_within / n_within > learned_across / n_across ? "YES"
                                                                    : "NO");

  // (b) Trend: consecutive spans 08:00-09:00 on a weekday.
  TablePrinter trend({"span", "learned cos-to-prev", "true OD cos-to-prev"});
  const int64_t day_t = (week_start_day + 3) * spd + slot_8am;  // Thursday
  Tensor prev_learned = learned_at(*tgcrn, day_t);
  Tensor prev_od = bundle.od_ground_truth[day_t];
  Tensor first_learned = prev_learned.Clone();
  double drift_close = 0, drift_far = 0;
  for (int64_t k = 1; k < 4; ++k) {
    Tensor cur_learned = learned_at(*tgcrn, day_t + k);
    const Tensor& cur_od = bundle.od_ground_truth[day_t + k];
    char label[32];
    std::snprintf(label, sizeof(label), "+%lld min",
                  static_cast<long long>(k * 15));
    trend.AddRow({label,
                  TablePrinter::Num(Cosine(cur_learned, prev_learned), 5),
                  TablePrinter::Num(Cosine(cur_od, prev_od), 5)});
    if (k == 1) drift_close = Cosine(cur_learned, first_learned);
    if (k == 3) drift_far = Cosine(cur_learned, first_learned);
    prev_learned = cur_learned;
    prev_od = cur_od.Clone();
  }
  std::printf("\n--- Fig 11(b): smooth drift over consecutive spans ---\n");
  EmitTable("fig11b_trend", trend);
  std::printf("learned graph drifts monotonically: cos(+15min)=%.5f > "
              "cos(+45min)=%.5f : %s\n",
              drift_close, drift_far,
              drift_close > drift_far ? "YES" : "NO");

  // (c) Do the learned edges *track* the OD dynamics over time? For every
  // node pair (i,j) correlate the time series A_ij(t) with Lambda_ij(t)
  // across the test period and average over pairs. This isolates the
  // temporal claim of Fig 11: absolute edge magnitudes are an aggregation
  // operator's business, but their *variation in time* should follow the
  // true correlation dynamics. A static graph cannot score above 0 here
  // by construction (its edges never move).
  const int64_t total = static_cast<int64_t>(bundle.slot_of_day.size());
  const int64_t test_start = static_cast<int64_t>(total * 0.8);
  const int64_t n = bundle.num_nodes;
  std::vector<std::vector<double>> learned_series(n * n),
      static_series(n * n), od_series(n * n);
  for (int64_t t = test_start; t < total; t += 3) {
    Tensor learned = learned_at(*tgcrn, t);
    Tensor x = scaler.Transform(
        bundle.raw_values.Slice(0, t, t + 1)).Squeeze(0);
    Tensor static_graph =
        agcrn->LearnedRawAdjacency(x, {bundle.slot_of_day[t]});
    const Tensor& od = bundle.od_ground_truth[t];
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        learned_series[i * n + j].push_back(learned.at({i, j}));
        static_series[i * n + j].push_back(static_graph.at({i, j}));
        od_series[i * n + j].push_back(od.at({i, j}));
      }
    }
  }
  auto mean_edge_correlation =
      [&](const std::vector<std::vector<double>>& graph_series) {
        double sum = 0.0;
        int64_t count = 0;
        for (int64_t k = 0; k < n * n; ++k) {
          if (od_series[k].empty()) continue;
          const double r = Pearson(graph_series[k], od_series[k]);
          if (std::isfinite(r)) {
            sum += r;
            ++count;
          }
        }
        return count > 0 ? sum / count : 0.0;
      };
  const double corr_tgcrn = mean_edge_correlation(learned_series);
  const double corr_static = mean_edge_correlation(static_series);
  TablePrinter align({"graph", "mean per-edge temporal corr with OD"});
  align.AddRow({"TGCRN (time-aware)", TablePrinter::Num(corr_tgcrn, 4)});
  align.AddRow({"AGCRN (static)", TablePrinter::Num(corr_static, 4)});
  std::printf("\n--- Fig 11(c): do learned edges track the OD dynamics "
              "over the test period? ---\n");
  EmitTable("fig11c_alignment", align);
  std::printf("time-aware graph tracks OD dynamics better than static: %s\n",
              corr_tgcrn > corr_static ? "YES" : "NO");
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
