// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Table IV: overall forecasting performance on the HZMetro and
// SHMetro stand-ins, all methods, horizons 15/30/45/60 minutes, metrics
// MAE / RMSE / MAPE. Cells read "measured (paper)".
#include <cstdio>

#include "baselines/gbdt.h"
#include "baselines/ha.h"
#include "bench_common.h"
#include "paper_refs.h"

namespace tgcrn {
namespace bench {
namespace {

std::vector<metrics::Metrics> RunMethod(const std::string& name,
                                        const DatasetBundle& bundle,
                                        const Scale& scale,
                                        uint64_t seed) {
  if (name == "HA") {
    baselines::HistoricalAverage ha;
    data::SpatioTemporalData data;
    data.values = bundle.raw_values;
    data.slot_of_day = bundle.slot_of_day;
    data.day_of_week = bundle.day_of_week;
    data.steps_per_day = bundle.steps_per_day;
    ha.Fit(data, static_cast<int64_t>(data.num_steps() * 0.7));
    return ha.EvaluateOnDataset(*bundle.dataset, {});
  }
  if (name == "GBDT") {
    baselines::GbdtConfig config;
    config.num_rounds = scale.name == "quick" ? 8 : 60;
    config.max_depth = scale.name == "quick" ? 3 : 5;
    config.learning_rate = 0.12f;
    baselines::GbdtForecaster forecaster(config);
    forecaster.Fit(*bundle.dataset);
    return forecaster.EvaluateOnDataset(
        *bundle.dataset, data::ForecastDataset::Split::kTest, {});
  }
  auto model = MakeModel(name, bundle, scale, seed);
  return RunNeural(model.get(), bundle, scale, seed).per_horizon;
}

void RunDataset(const DatasetBundle& bundle,
                const std::map<std::string, MetroRef>& refs,
                const std::string& csv_name) {
  const Scale scale = GetScale();
  const std::vector<std::string> methods = {
      "HA",    "GBDT",          "FC-LSTM", "Informer", "Crossformer",
      "DCRNN", "GraphWaveNet",  "AGCRN",   "PVCGN",    "ESG",
      "TGCRN"};

  std::vector<std::string> header = {"Method"};
  for (int h = 1; h <= 4; ++h) {
    const std::string min = std::to_string(h * 15) + "min";
    header.push_back(min + " MAE");
    header.push_back(min + " RMSE");
    header.push_back(min + " MAPE%");
  }
  TablePrinter table(header);

  for (const auto& method : methods) {
    std::printf("  training %s on %s...\n", method.c_str(),
                bundle.name.c_str());
    std::fflush(stdout);
    const auto per_horizon = RunMethod(method, bundle, scale, 1000);
    const MetroRef& ref = refs.at(method);
    std::vector<std::string> row = {method};
    for (int h = 0; h < 4; ++h) {
      row.push_back(Cell(per_horizon[h].mae, ref.mae[h]));
      row.push_back(Cell(per_horizon[h].rmse, ref.rmse[h]));
      row.push_back(Cell(per_horizon[h].mape, ref.mape[h]));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n=== Table IV (%s): measured (paper) ===\n",
              bundle.name.c_str());
  EmitTable(csv_name, table);
}

void Run() {
  const Scale scale = GetScale();
  std::printf("Table IV bench, scale=%s\n", scale.name.c_str());
  {
    const DatasetBundle hz = MakeHzSim(scale);
    RunDataset(hz, HzMetroRefs(), "table4_hzmetro");
  }
  {
    const DatasetBundle sh = MakeShSim(scale);
    RunDataset(sh, ShMetroRefs(), "table4_shmetro");
  }
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
