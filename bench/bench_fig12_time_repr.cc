// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Fig 12: t-SNE visualization of the learned time embeddings
// with and without Time Discrepancy Learning. The paper shows that with
// TDL the slot embeddings form an ordered ribbon in 2-D; without it they
// scatter. The bench trains both variants, embeds both tables with the
// same t-SNE, writes the 2-D coordinates to CSV (for plotting), and
// quantifies the visual claim with two statistics:
//  * distance proportionality - Pearson between pairwise embedding
//    distances and *circular* slot distances (Eq 3's training target; the
//    slot table wraps at midnight, so an ideally trained embedding is a
//    closed ribbon);
//  * neighbour order preservation - fraction of slots whose nearest
//    embedding neighbour is an adjacent slot (1 = perfect ribbon, random
//    ~ 2/(n-1) ~ 0.03).
#include <cstdio>

#include "bench_common.h"
#include "viz/tsne.h"

namespace tgcrn {
namespace bench {
namespace {

Tensor TrainAndGetTable(const DatasetBundle& bundle, const Scale& scale,
                        bool use_tdl) {
  core::TGCRNConfig config;
  config.num_nodes = bundle.num_nodes;
  config.input_dim = bundle.num_features;
  config.output_dim = bundle.num_features;
  config.horizon = bundle.dataset->options().output_steps;
  config.hidden_dim = scale.hidden_dim;
  config.node_embed_dim = scale.node_embed_dim;
  config.time_embed_dim = scale.time_embed_dim;
  config.steps_per_day = bundle.steps_per_day;
  config.use_tdl = use_tdl;
  Rng rng(11000);
  core::TGCRN model(config, &rng);
  RunNeural(&model, bundle, scale, 11000);
  return model.TimeEmbeddingTable();
}

void Run() {
  Scale scale = GetScale();
  // Two runs only; afford a longer schedule so the TDL regularizer has
  // time to organize all steps_per_day slots.
  if (scale.name == "default") {
    scale.epochs = 24;
    scale.lr_milestones = {14, 20};
  }
  std::printf("Fig 12 bench (time representations), scale=%s\n",
              scale.name.c_str());
  const DatasetBundle bundle = MakeHzSim(scale);

  std::printf("  training TGCRN with TDL...\n");
  std::fflush(stdout);
  const Tensor with_tdl = TrainAndGetTable(bundle, scale, true);
  std::printf("  training TGCRN without TDL...\n");
  std::fflush(stdout);
  const Tensor without_tdl = TrainAndGetTable(bundle, scale, false);

  viz::TsneOptions tsne_options;
  tsne_options.perplexity = 10.0;
  const Tensor tsne_with = viz::Tsne(with_tdl, tsne_options);
  const Tensor tsne_without = viz::Tsne(without_tdl, tsne_options);

  // CSV with the 2-D coordinates, one row per slot, for plotting.
  TablePrinter coords({"slot", "with_tdl_x", "with_tdl_y", "without_tdl_x",
                       "without_tdl_y"});
  for (int64_t s = 0; s < with_tdl.size(0); ++s) {
    coords.AddRow({std::to_string(s),
                   TablePrinter::Num(tsne_with.at({s, 0}), 4),
                   TablePrinter::Num(tsne_with.at({s, 1}), 4),
                   TablePrinter::Num(tsne_without.at({s, 0}), 4),
                   TablePrinter::Num(tsne_without.at({s, 1}), 4)});
  }
  const Status status = coords.WriteCsv("bench_results/fig12_tsne.csv");
  std::printf("[t-SNE coordinates -> bench_results/fig12_tsne.csv: %s]\n",
              status.ToString().c_str());

  const int64_t period = bundle.steps_per_day;
  TablePrinter stats(
      {"variant", "circ. distance proportionality (raw)",
       "neighbour preservation (raw)", "neighbour preservation (tsne)"});
  stats.AddRow(
      {"with TDL",
       TablePrinter::Num(viz::DistanceProportionality(with_tdl, period), 4),
       TablePrinter::Num(viz::NeighborOrderPreservation(with_tdl, period),
                         4),
       TablePrinter::Num(viz::NeighborOrderPreservation(tsne_with, period),
                         4)});
  stats.AddRow(
      {"without TDL",
       TablePrinter::Num(viz::DistanceProportionality(without_tdl, period),
                         4),
       TablePrinter::Num(
           viz::NeighborOrderPreservation(without_tdl, period), 4),
       TablePrinter::Num(
           viz::NeighborOrderPreservation(tsne_without, period), 4)});
  std::printf("\n=== Fig 12 (paper: with TDL the slots form an ordered "
              "ribbon; without, a confusing scatter) ===\n");
  EmitTable("fig12_time_repr", stats);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
