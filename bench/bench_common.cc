// Copyright 2026 TGCRN Reproduction Authors
#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baselines/agcrn.h"
#include "common/cpu_features.h"
#include "baselines/ccrnn.h"
#include "baselines/dcrnn.h"
#include "baselines/esg.h"
#include "baselines/fc_lstm.h"
#include "baselines/gts.h"
#include "baselines/gwnet.h"
#include "baselines/pvcgn.h"
#include "baselines/transformers.h"

namespace tgcrn {
namespace bench {

Scale GetScale() {
  Scale scale;
  const char* env = std::getenv("TGCRN_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "quick") == 0) {
    scale.name = "quick";
    scale.hz_nodes = 10;
    scale.sh_nodes = 12;
    scale.metro_days = 14;
    scale.bike_zones = 10;
    scale.taxi_zones = 12;
    scale.demand_days = 21;
    scale.elec_clients = 12;
    scale.elec_days = 42;
    scale.epochs = 3;
    scale.max_batches_per_epoch = 25;
    scale.hidden_dim = 12;
    scale.node_embed_dim = 8;
    scale.time_embed_dim = 6;
  } else if (env != nullptr && std::strcmp(env, "full") == 0) {
    scale.name = "full";
    scale.epochs = 40;
    scale.max_batches_per_epoch = 0;
    scale.lr = 1e-3f;
    scale.lr_milestones = {5, 20, 40, 70, 90};  // paper recipe
    scale.hidden_dim = 24;
    scale.node_embed_dim = 16;
    scale.time_embed_dim = 12;
  }
  return scale;
}

namespace {

// Extracts the channel-0 training series [N, T_train].
Tensor TrainSeries(const data::SpatioTemporalData& data,
                   double train_fraction) {
  const int64_t fit =
      static_cast<int64_t>(data.num_steps() * train_fraction);
  return data.values.Slice(2, 0, 1).Squeeze(2).Slice(0, 0, fit)
      .Transpose(0, 1);
}

DatasetBundle MakeMetro(const std::string& name, int64_t nodes,
                        const Scale& scale, uint64_t seed, bool keep_od) {
  datagen::MetroSimConfig config;
  config.num_stations = nodes;
  config.num_days = scale.metro_days;
  config.seed = seed;
  config.keep_od_ground_truth = keep_od;
  auto sim = datagen::SimulateMetro(config);

  DatasetBundle bundle;
  bundle.name = name;
  bundle.distances = sim.distances;
  bundle.train_series = TrainSeries(sim.data, 0.7);
  bundle.num_nodes = nodes;
  bundle.num_features = 2;
  bundle.steps_per_day = config.steps_per_day;
  bundle.minutes_per_step = 15;
  bundle.od_ground_truth = std::move(sim.od_ground_truth);
  bundle.area_types = std::move(sim.area_types);
  bundle.slot_of_day = sim.data.slot_of_day;
  bundle.day_of_week = sim.data.day_of_week;
  bundle.raw_values = sim.data.values;

  data::ForecastDataset::Options options;
  options.input_steps = 4;
  options.output_steps = 4;
  bundle.dataset = std::make_unique<data::ForecastDataset>(
      std::move(sim.data), options);
  return bundle;
}

}  // namespace

DatasetBundle MakeHzSim(const Scale& scale, bool keep_od) {
  return MakeMetro("HZMetro-sim", scale.hz_nodes, scale, /*seed=*/101,
                   keep_od);
}

DatasetBundle MakeShSim(const Scale& scale) {
  return MakeMetro("SHMetro-sim", scale.sh_nodes, scale, /*seed=*/202,
                   /*keep_od=*/false);
}

namespace {

DatasetBundle MakeDemand(const std::string& name, int64_t zones,
                         double mean_demand, const Scale& scale,
                         uint64_t seed) {
  datagen::DemandSimConfig config;
  config.num_zones = zones;
  config.num_days = scale.demand_days;
  config.seed = seed;
  config.target_mean_demand = mean_demand;
  auto sim = datagen::SimulateDemand(config);

  DatasetBundle bundle;
  bundle.name = name;
  bundle.distances = sim.distances;
  bundle.train_series = TrainSeries(sim.data, 0.7);
  bundle.num_nodes = zones;
  bundle.num_features = 2;
  bundle.steps_per_day = config.steps_per_day;
  bundle.minutes_per_step = 30;
  bundle.slot_of_day = sim.data.slot_of_day;
  bundle.day_of_week = sim.data.day_of_week;
  bundle.raw_values = sim.data.values;

  data::ForecastDataset::Options options;
  options.input_steps = 12;
  options.output_steps = 12;
  bundle.dataset = std::make_unique<data::ForecastDataset>(
      std::move(sim.data), options);
  return bundle;
}

}  // namespace

DatasetBundle MakeBikeSim(const Scale& scale) {
  return MakeDemand("NYC-Bike-sim", scale.bike_zones, 6.0, scale, 303);
}

DatasetBundle MakeTaxiSim(const Scale& scale) {
  return MakeDemand("NYC-Taxi-sim", scale.taxi_zones, 20.0, scale, 404);
}

DatasetBundle MakeElectricitySim(const Scale& scale) {
  datagen::ElectricitySimConfig config;
  config.num_clients = scale.elec_clients;
  config.num_days = scale.elec_days;
  config.seed = 505;
  auto sim = datagen::SimulateElectricity(config);

  DatasetBundle bundle;
  bundle.name = "Electricity-sim";
  bundle.distances = Tensor::Zeros({config.num_clients, config.num_clients});
  bundle.train_series = TrainSeries(sim.data, 0.7);
  bundle.num_nodes = config.num_clients;
  bundle.num_features = 1;
  bundle.steps_per_day = config.steps_per_day;
  bundle.minutes_per_step = 60;
  bundle.slot_of_day = sim.data.slot_of_day;
  bundle.day_of_week = sim.data.day_of_week;
  bundle.raw_values = sim.data.values;

  data::ForecastDataset::Options options;
  options.input_steps = 12;
  options.output_steps = 12;
  bundle.dataset = std::make_unique<data::ForecastDataset>(
      std::move(sim.data), options);
  return bundle;
}

std::unique_ptr<core::ForecastModel> MakeModel(const std::string& name,
                                               const DatasetBundle& bundle,
                                               const Scale& scale,
                                               uint64_t seed) {
  Rng rng(seed);
  const int64_t n = bundle.num_nodes;
  const int64_t d = bundle.num_features;
  const int64_t p = bundle.dataset->options().input_steps;
  const int64_t q = bundle.dataset->options().output_steps;

  if (name == "TGCRN") {
    core::TGCRNConfig config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim;
    config.time_embed_dim = scale.time_embed_dim;
    config.steps_per_day = bundle.steps_per_day;
    return std::make_unique<core::TGCRN>(config, &rng);
  }
  if (name == "FC-LSTM") {
    baselines::FcLstm::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = 4 * scale.hidden_dim;
    return std::make_unique<baselines::FcLstm>(config, &rng);
  }
  if (name == "DCRNN") {
    baselines::Dcrnn::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = scale.hidden_dim;
    return std::make_unique<baselines::Dcrnn>(config, bundle.distances,
                                              &rng);
  }
  if (name == "GraphWaveNet") {
    baselines::GraphWaveNet::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.channels = scale.hidden_dim;
    config.skip_channels = 2 * scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim;
    return std::make_unique<baselines::GraphWaveNet>(config, &rng);
  }
  if (name == "AGCRN") {
    baselines::Agcrn::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = scale.hidden_dim;
    config.node_embed_dim = scale.node_embed_dim;
    return std::make_unique<baselines::Agcrn>(config, &rng);
  }
  if (name == "PVCGN") {
    baselines::Pvcgn::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = scale.hidden_dim + scale.hidden_dim / 2;
    return std::make_unique<baselines::Pvcgn>(config, bundle.distances,
                                              bundle.train_series, &rng);
  }
  if (name == "CCRNN") {
    baselines::Ccrnn::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = scale.hidden_dim;
    return std::make_unique<baselines::Ccrnn>(config, bundle.train_series,
                                              &rng);
  }
  if (name == "GTS") {
    baselines::Gts::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.hidden_dim = scale.hidden_dim;
    // Recompute profile features from the stored raw timeline.
    data::SpatioTemporalData data;
    data.values = bundle.raw_values;
    data.slot_of_day = bundle.slot_of_day;
    data.day_of_week = bundle.day_of_week;
    data.steps_per_day = bundle.steps_per_day;
    const int64_t fit = static_cast<int64_t>(data.num_steps() * 0.7);
    Tensor features =
        baselines::Gts::MakeProfileFeatures(data, fit, /*bins=*/8);
    return std::make_unique<baselines::Gts>(config, features, &rng);
  }
  if (name == "ESG") {
    baselines::Esg::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    // ESG is the second-largest model in the paper's Table VIII; keep
    // that ordering at reproduction scale.
    config.hidden_dim = scale.hidden_dim + scale.hidden_dim / 2;
    config.graph_embed_dim = scale.node_embed_dim;
    return std::make_unique<baselines::Esg>(config, &rng);
  }
  if (name == "Informer") {
    baselines::InformerLite::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.input_steps = p;
    config.d_model = 2 * scale.hidden_dim;
    return std::make_unique<baselines::InformerLite>(config, &rng);
  }
  if (name == "Crossformer") {
    baselines::CrossformerLite::Config config;
    config.num_nodes = n;
    config.input_dim = d;
    config.output_dim = d;
    config.horizon = q;
    config.input_steps = p;
    config.d_model = scale.hidden_dim + scale.hidden_dim / 2;
    config.num_heads = 2;
    return std::make_unique<baselines::CrossformerLite>(config, &rng);
  }
  TGCRN_CHECK(false) << "unknown model name: " << name;
  return nullptr;
}

float LrMultiplier(const std::string& model_name) {
  // Official-code LRs, relative to the 1e-3 most of the GRU-family uses:
  // Informer 1e-4, Crossformer ~5e-4, DCRNN 1e-2.
  if (model_name == "Informer") return 0.15f;
  if (model_name == "Crossformer") return 0.15f;
  if (model_name == "DCRNN") return 1.5f;
  return 1.0f;
}

core::TrainResult RunNeural(core::ForecastModel* model,
                            const DatasetBundle& bundle, const Scale& scale,
                            uint64_t seed) {
  core::TrainConfig config;
  config.epochs = scale.epochs;
  config.batch_size = scale.batch_size;
  config.max_batches_per_epoch = scale.max_batches_per_epoch;
  config.lr = scale.lr * LrMultiplier(model->name());
  config.lr_milestones = scale.lr_milestones;
  config.seed = seed;
  config.verbose = false;
  // TGCRN_BENCH_REPORT_DIR=<dir> streams one JSONL run report per trained
  // model into <dir>/<model>-<dataset>.jsonl (appending across runs).
  const char* report_dir = std::getenv("TGCRN_BENCH_REPORT_DIR");
  if (report_dir != nullptr && report_dir[0] != '\0') {
    config.report_path = std::string(report_dir) + "/" + model->name() + "-" +
                         bundle.name + ".jsonl";
  }
  return core::TrainAndEvaluate(model, *bundle.dataset, config);
}

std::string Cell(double measured, double paper_ref, int precision) {
  if (paper_ref < 0) return TablePrinter::Num(measured, precision);
  return TablePrinter::Num(measured, precision) + " (" +
         TablePrinter::Num(paper_ref, precision) + ")";
}

namespace {

const char kHistoryHeader[] =
    "timestamp_utc,scale,model,threads,s_per_epoch,data_s,forward_s,"
    "backward_s,clip_s,adam_s,eval_s,isa";

// History files written before the isa column existed end their header at
// "eval_s". Rewrite them in place once: new header, ",unknown" backfilled
// onto every data row (the producing ISA was not recorded). Returns false
// on I/O failure (the caller then skips the append rather than corrupting
// the file).
bool MigrateHistoryHeader(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header)) return false;
  if (header == kHistoryHeader) return true;
  if (header.find(",isa") != std::string::npos) return true;  // future schema
  std::ostringstream migrated;
  migrated << kHistoryHeader << "\n";
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) migrated << line << ",unknown\n";
  }
  in.close();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << migrated.str();
  return out.good();
}

}  // namespace

void AppendCostHistory(const std::string& bench_name,
                       const std::string& label, const Scale& scale,
                       const core::TrainResult& result) {
  const std::string dir = "bench_results/history";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + bench_name + "_history.csv";
  const bool exists = std::filesystem::exists(path, ec);
  if (exists && !MigrateHistoryHeader(path)) {
    std::printf("[history append failed: cannot migrate %s]\n", path.c_str());
    return;
  }
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::printf("[history append failed: cannot open %s]\n", path.c_str());
    return;
  }
  if (!exists) {
    std::fputs(kHistoryHeader, out);
    std::fputc('\n', out);
  }
  char timestamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  const auto phases = result.report.PhaseTotals();
  auto phase = [&phases](const char* key) {
    const auto it = phases.find(key);
    return it != phases.end() ? it->second : 0.0;
  };
  std::fprintf(out, "%s,%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%s\n",
               timestamp, scale.name.c_str(), label.c_str(),
               result.num_threads, result.seconds_per_epoch,
               phase(obs::kPhaseData), phase(obs::kPhaseForward),
               phase(obs::kPhaseBackward), phase(obs::kPhaseClip),
               phase(obs::kPhaseAdam), phase(obs::kPhaseEval),
               common::SimdIsaName(common::ActiveSimdIsa()));
  std::fclose(out);
}

void EmitTable(const std::string& bench_name, const TablePrinter& table) {
  table.Print();
  // Exported rows are stamped with the resolved SIMD ISA so historical
  // CSVs stay attributable to the kernel set that produced them; the
  // console table mirrors the paper's layout and omits the stamp.
  TablePrinter stamped = table;
  stamped.AddColumn("isa", common::SimdIsaName(common::ActiveSimdIsa()));
  const std::string path = "bench_results/" + bench_name + ".csv";
  const Status status = stamped.WriteCsv(path);
  if (status.ok()) {
    std::printf("[csv written to %s]\n", path.c_str());
  } else {
    std::printf("[csv write failed: %s]\n", status.ToString().c_str());
  }
}

}  // namespace bench
}  // namespace tgcrn
