// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Table VII: the ablation study on the HZMetro and SHMetro
// stand-ins. Variants:
//   w/o tagsl  - AGCRN-style static self-learned graph instead of TagSL
//   w/ TE      - time embedding only (no TDL loss, no PDF)
//   w/o TDL    - removes the time-discrepancy loss
//   w/o PDF    - removes the periodic discriminant function
//   Time2vec   - replaces the time representation with Time2vec [10]
//   CTR        - replaces it with the continuous-time representation [29]
//   w/o enc-dec- direct FC multi-step head instead of recursive decoding
// Metrics are MAE/RMSE/MAPE averaged over the 4 horizons.
#include <cstdio>

#include "bench_common.h"
#include "paper_refs.h"

namespace tgcrn {
namespace bench {
namespace {

core::TGCRNConfig VariantConfig(const std::string& variant,
                                const DatasetBundle& bundle,
                                const Scale& scale) {
  core::TGCRNConfig config;
  config.num_nodes = bundle.num_nodes;
  config.input_dim = bundle.num_features;
  config.output_dim = bundle.num_features;
  config.horizon = bundle.dataset->options().output_steps;
  config.hidden_dim = scale.hidden_dim;
  config.node_embed_dim = scale.node_embed_dim;
  config.time_embed_dim = scale.time_embed_dim;
  config.steps_per_day = bundle.steps_per_day;
  if (variant == "TGCRN") return config;
  if (variant == "w/o tagsl") {
    config.use_tagsl = false;
    return config;
  }
  if (variant == "w/ TE") {
    config.use_tdl = false;
    config.use_pdf = false;
    return config;
  }
  if (variant == "w/o TDL") {
    config.use_tdl = false;
    return config;
  }
  if (variant == "w/o PDF") {
    config.use_pdf = false;
    return config;
  }
  if (variant == "Time2vec") {
    config.time_encoder = core::TGCRNConfig::TimeEncoderKind::kTime2vec;
    config.use_tdl = false;
    return config;
  }
  if (variant == "CTR") {
    config.time_encoder = core::TGCRNConfig::TimeEncoderKind::kContinuous;
    config.use_tdl = false;
    return config;
  }
  if (variant == "w/o enc-dec") {
    config.use_encoder_decoder = false;
    return config;
  }
  TGCRN_CHECK(false) << "unknown variant " << variant;
  return config;
}

void Run() {
  Scale scale = GetScale();
  // 8 variants x 2 datasets: trim the per-variant budget. The directional
  // comparisons (full model vs w/o tagsl vs Time2vec) separate early.
  if (scale.name != "full") {
    scale.epochs = std::max<int64_t>(8, scale.epochs * 2 / 3);
    scale.max_batches_per_epoch = 40;
  }
  std::printf("Table VII bench (ablation), scale=%s\n", scale.name.c_str());
  const std::vector<std::string> variants = {
      "TGCRN",    "w/o tagsl", "w/ TE", "w/o TDL",
      "w/o PDF",  "Time2vec",  "CTR",   "w/o enc-dec"};

  DatasetBundle bundles[2] = {MakeHzSim(scale), MakeShSim(scale)};
  // Measured averages per variant per dataset.
  std::vector<std::array<metrics::Metrics, 2>> results(variants.size());
  for (int ds = 0; ds < 2; ++ds) {
    for (size_t v = 0; v < variants.size(); ++v) {
      std::printf("  training %s on %s...\n", variants[v].c_str(),
                  bundles[ds].name.c_str());
      std::fflush(stdout);
      Rng rng(4000 + v);
      core::TGCRN model(VariantConfig(variants[v], bundles[ds], scale),
                        &rng);
      results[v][ds] =
          RunNeural(&model, bundles[ds], scale, 4000 + v).average;
    }
  }

  TablePrinter table({"Variant", "HZ MAE", "HZ RMSE", "HZ MAPE%", "SH MAE",
                      "SH RMSE", "SH MAPE%"});
  for (size_t v = 0; v < variants.size(); ++v) {
    const AblationRef& ref = AblationRefs().at(variants[v]);
    table.AddRow({variants[v],
                  Cell(results[v][0].mae, ref.hz[0]),
                  Cell(results[v][0].rmse, ref.hz[1]),
                  Cell(results[v][0].mape, ref.hz[2]),
                  Cell(results[v][1].mae, ref.sh[0]),
                  Cell(results[v][1].rmse, ref.sh[1]),
                  Cell(results[v][1].mape, ref.sh[2])});
  }
  std::printf("\n=== Table VII (ablation): measured (paper) ===\n");
  EmitTable("table7_ablation", table);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
