// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Table V: traffic-demand forecasting on the NYC-Bike and
// NYC-Taxi stand-ins (P = Q = 12 half-hour steps). Metrics are MAE, RMSE
// and PCC averaged over all 12 horizons, as in the paper. Cells read
// "measured (paper)"; "-" where the paper did not report a value.
#include <cstdio>

#include "baselines/gbdt.h"
#include "baselines/ha.h"
#include "bench_common.h"
#include "paper_refs.h"

namespace tgcrn {
namespace bench {
namespace {

metrics::Metrics RunMethod(const std::string& name,
                           const DatasetBundle& bundle, const Scale& scale,
                           uint64_t seed) {
  if (name == "HA") {
    baselines::HistoricalAverage ha;
    data::SpatioTemporalData data;
    data.values = bundle.raw_values;
    data.slot_of_day = bundle.slot_of_day;
    data.day_of_week = bundle.day_of_week;
    data.steps_per_day = bundle.steps_per_day;
    ha.Fit(data, static_cast<int64_t>(data.num_steps() * 0.7));
    return metrics::AverageMetrics(ha.EvaluateOnDataset(*bundle.dataset, {}));
  }
  if (name == "XGBoost") {
    baselines::GbdtConfig config;
    config.xgboost_mode = true;
    config.num_rounds = scale.name == "quick" ? 8 : 25;
    config.max_depth = 4;
    baselines::GbdtForecaster forecaster(config);
    forecaster.Fit(*bundle.dataset);
    return metrics::AverageMetrics(forecaster.EvaluateOnDataset(
        *bundle.dataset, data::ForecastDataset::Split::kTest, {}));
  }
  auto model = MakeModel(name, bundle, scale, seed);
  return RunNeural(model.get(), bundle, scale, seed).average;
}

void RunDataset(const DatasetBundle& bundle, const Scale& scale,
                const std::map<std::string, DemandRef>& refs,
                const std::string& csv_name) {
  const std::vector<std::string> methods = {
      "HA",    "XGBoost",      "FC-LSTM", "Informer", "Crossformer",
      "DCRNN", "GraphWaveNet", "CCRNN",   "GTS",      "ESG",
      "TGCRN"};
  TablePrinter table({"Method", "MAE", "RMSE", "PCC"});
  for (const auto& method : methods) {
    std::printf("  training %s on %s...\n", method.c_str(),
                bundle.name.c_str());
    std::fflush(stdout);
    const auto m = RunMethod(method, bundle, scale, 2000);
    const DemandRef& ref = refs.at(method);
    table.AddRow({method, Cell(m.mae, ref.mae, 4), Cell(m.rmse, ref.rmse, 4),
                  Cell(m.pcc, ref.pcc, 4)});
  }
  std::printf("\n=== Table V (%s): measured (paper) ===\n",
              bundle.name.c_str());
  EmitTable(csv_name, table);
}

void Run() {
  Scale scale = GetScale();
  // P = Q = 12 makes each step ~3x the metro cost; trim the epoch budget.
  if (scale.name != "full") {
    scale.epochs = std::max<int64_t>(6, scale.epochs * 2 / 3);
    scale.max_batches_per_epoch = 40;
  }
  std::printf("Table V bench, scale=%s\n", scale.name.c_str());
  {
    const DatasetBundle bike = MakeBikeSim(scale);
    RunDataset(bike, scale, BikeRefs(), "table5_nyc_bike");
  }
  {
    const DatasetBundle taxi = MakeTaxiSim(scale);
    RunDataset(taxi, scale, TaxiRefs(), "table5_nyc_taxi");
  }
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
