// Copyright 2026 TGCRN Reproduction Authors
// Regenerates Table VI: forecasting on the Electricity stand-in
// (P = Q = 12 hourly steps). As in the paper's long-horizon literature,
// MSE/MAE are reported on *normalized* (z-scored) data, so this bench
// evaluates in scaled space rather than inverse-transforming.
#include <cstdio>

#include "bench_common.h"
#include "paper_refs.h"

namespace tgcrn {
namespace bench {
namespace {

// Test metrics in scaled space.
metrics::Metrics ScaledTestMetrics(core::ForecastModel* model,
                                   const DatasetBundle& bundle) {
  model->SetTraining(false);
  std::vector<Tensor> preds, targets;
  const auto batches = bundle.dataset->EpochBatches(
      data::ForecastDataset::Split::kTest, 16, nullptr);
  for (const auto& ids : batches) {
    const data::Batch batch =
        bundle.dataset->MakeBatch(data::ForecastDataset::Split::kTest, ids);
    preds.push_back(model->Forward(batch).value());
    targets.push_back(batch.y_scaled);
  }
  metrics::MetricsOptions options;
  options.mape_threshold = 1e9;  // MAPE meaningless on z-scores
  return metrics::Evaluate(Tensor::Concat(preds, 0),
                           Tensor::Concat(targets, 0), options);
}

void Run() {
  Scale scale = GetScale();
  // P = Q = 12 hourly steps; trim the per-model budget like Table V.
  if (scale.name != "full") {
    scale.epochs = std::max<int64_t>(6, scale.epochs * 2 / 3);
    scale.max_batches_per_epoch = 40;
  }
  std::printf("Table VI bench, scale=%s\n", scale.name.c_str());
  const DatasetBundle bundle = MakeElectricitySim(scale);
  const std::vector<std::string> methods = {
      "GraphWaveNet", "AGCRN", "Informer", "Crossformer", "ESG", "TGCRN"};
  TablePrinter table({"Method", "MSE", "MAE"});
  for (const auto& method : methods) {
    std::printf("  training %s on %s...\n", method.c_str(),
                bundle.name.c_str());
    std::fflush(stdout);
    auto model = MakeModel(method, bundle, scale, 3000);
    RunNeural(model.get(), bundle, scale, 3000);
    const auto m = ScaledTestMetrics(model.get(), bundle);
    const ElectricityRef& ref = ElectricityRefs().at(method);
    table.AddRow(
        {method, Cell(m.mse, ref.mse, 4), Cell(m.mae, ref.mae, 4)});
  }
  std::printf("\n=== Table VI (%s): measured (paper) ===\n",
              bundle.name.c_str());
  EmitTable("table6_electricity", table);
}

}  // namespace
}  // namespace bench
}  // namespace tgcrn

int main() {
  tgcrn::bench::Run();
  return 0;
}
