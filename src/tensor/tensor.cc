// Copyright 2026 TGCRN Reproduction Authors
#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"

namespace tgcrn {
namespace {

// Counts storage that enters a tensor from outside the buffer pool
// (FromVector's adopted vector). Pool-served storage is counted inside
// TensorBufferPool (misses only), so tensor.allocations tracks real heap
// allocations; shared-storage copies are free and not counted.
void CountExternalAllocation(int64_t numel) {
  static obs::Counter* allocs =
      obs::Registry::Global().GetCounter("tensor.allocations");
  static obs::Counter* bytes =
      obs::Registry::Global().GetCounter("tensor.allocated_bytes");
  allocs->Add(1);
  bytes->Add(numel * static_cast<int64_t>(sizeof(float)));
}

// Minimum multiply-accumulate operations per matmul chunk.
constexpr int64_t kMatmulGrainFlops = 4096;
// Fixed chunk length of DeterministicChunkedSum reductions. Part of the
// numeric contract: changing it changes the bits of SumAll on tensors
// larger than one chunk (but never the cross-thread-count determinism).
constexpr int64_t kReductionChunk = 2048;

// Row-major strides for a shape.
std::vector<int64_t> StridesFor(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

// Strides of operand `shape` viewed through broadcast target `out_shape`:
// 0 where the operand dimension is absent or broadcast.
std::vector<int64_t> EffectiveStrides(const Shape& out_shape,
                                      const Shape& shape) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const auto full = StridesFor(shape);
  std::vector<int64_t> strides(rank, 0);
  const int64_t off = rank - static_cast<int64_t>(shape.size());
  for (int64_t d = 0; d < rank; ++d) {
    if (d >= off && shape[d - off] != 1) strides[d] = full[d - off];
  }
  return strides;
}

// Iterates flat output positions [begin, end) of the cartesian product of
// `out_shape`, tracking offsets into two broadcast operands via their
// effective strides, and calls fn(out_flat, a_off, b_off). Restricted to a
// subrange so broadcast kernels can be chunked across threads: each chunk
// reconstructs its starting multi-index by div/mod, then walks
// incrementally.
template <typename Fn>
void BroadcastIterateRange(const Shape& out_shape,
                           const std::vector<int64_t>& a_strides,
                           const std::vector<int64_t>& b_strides,
                           int64_t begin, int64_t end, Fn fn) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> index(rank, 0);
  int64_t a_off = 0, b_off = 0;
  int64_t rem = begin;
  for (int64_t d = rank - 1; d >= 0; --d) {
    index[d] = rem % out_shape[d];
    rem /= out_shape[d];
    a_off += index[d] * a_strides[d];
    b_off += index[d] * b_strides[d];
  }
  for (int64_t flat = begin; flat < end; ++flat) {
    fn(flat, a_off, b_off);
    // Increment the multi-index from the last axis, updating offsets.
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++index[d];
      a_off += a_strides[d];
      b_off += b_strides[d];
      if (index[d] < out_shape[d]) break;
      index[d] = 0;
      a_off -= a_strides[d] * out_shape[d];
      b_off -= b_strides[d] * out_shape[d];
    }
  }
}

// Parallel broadcast iteration over the whole output. Chunk boundaries
// cannot change any output element, so results are bitwise identical at
// every thread count.
template <typename Fn>
void BroadcastIterate(const Shape& out_shape, const Shape& a_shape,
                      const Shape& b_shape, Fn fn) {
  const int64_t n = ShapeNumel(out_shape);
  if (n == 0) return;
  const auto a_strides = EffectiveStrides(out_shape, a_shape);
  const auto b_strides = EffectiveStrides(out_shape, b_shape);
  common::ParallelFor(0, n, kElemwiseGrain, [&](int64_t s, int64_t e) {
    BroadcastIterateRange(out_shape, a_strides, b_strides, s, e, fn);
  });
}

}  // namespace

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TGCRN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    TGCRN_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << ShapeToString(a) << " vs "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

// Shared immutable zero-length storage backing every empty tensor. Default
// construction happens on hot paths that must not touch the allocator in
// steady state — e.g. Backward() releasing interior grads via
// `grad = Tensor()` once per op node per step — and an empty vector can
// never be written through (numel == 0), so one instance serves them all.
// Leaked so tensors alive during static destruction stay valid.
const std::shared_ptr<std::vector<float>>& EmptyStorage() {
  static const auto* storage = new std::shared_ptr<std::vector<float>>(
      std::make_shared<std::vector<float>>());
  return *storage;
}

}  // namespace

Tensor::Tensor() : shape_{0}, data_(EmptyStorage()) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const int64_t numel = ShapeNumel(shape_);
  data_ = numel == 0 ? EmptyStorage()
                     : TensorBufferPool::Global().AcquireZeroed(numel);
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.FillInplace(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  (*t.data_).assign(1, value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  TGCRN_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  // Adopts the caller's storage (not pool-recyclable; make_shared embeds
  // the vector in the control block, so the deleter is the default one).
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  CountExternalAllocation(t.numel());
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  std::vector<float> values(n);
  std::iota(values.begin(), values.end(), 0.0f);
  return FromVector({n}, std::move(values));
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.set_flat(i * n + i, 1.0f);
  return t;
}

Tensor Tensor::RandUniform(Shape shape, float lo, float hi, Rng* rng) {
  TGCRN_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) v = rng->Uniform(lo, hi);
  return t;
}

Tensor Tensor::RandNormal(Shape shape, float mean, float stddev, Rng* rng) {
  TGCRN_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) {
    v = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

int64_t Tensor::size(int64_t axis) const {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, dim());
  return shape_[axis];
}

int64_t Tensor::FlatIndex(const std::vector<int64_t>& index) const {
  TGCRN_CHECK_EQ(static_cast<int64_t>(index.size()), dim());
  int64_t flat = 0;
  for (int64_t d = 0; d < dim(); ++d) {
    TGCRN_CHECK_GE(index[d], 0);
    TGCRN_CHECK_LT(index[d], shape_[d]);
    flat = flat * shape_[d] + index[d];
  }
  return flat;
}

float Tensor::at(const std::vector<int64_t>& index) const {
  return (*data_)[FlatIndex(index)];
}

void Tensor::set(const std::vector<int64_t>& index, float value) {
  (*data_)[FlatIndex(index)] = value;
}

float Tensor::item() const {
  TGCRN_CHECK_EQ(numel(), 1);
  return (*data_)[0];
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = TensorBufferPool::Global().AcquireCopy(data(), numel());
  return t;
}

namespace {

template <typename Fn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fn fn) {
  // Fast path: identical shapes.
  if (a.SameShape(b)) {
    Tensor out(a.shape());
    float* o = out.mutable_data();
    const float* pa = a.data();
    const float* pb = b.data();
    common::ParallelFor(0, a.numel(), kElemwiseGrain,
                        [&](int64_t s, int64_t e) {
                          for (int64_t i = s; i < e; ++i) {
                            o[i] = fn(pa[i], pb[i]);
                          }
                        });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out(out_shape);
  float* o = out.mutable_data();
  const float* pa = a.data();
  const float* pb = b.data();
  BroadcastIterate(out_shape, a.shape(), b.shape(),
                   [&](int64_t of, int64_t ia, int64_t ib) {
                     o[of] = fn(pa[ia], pb[ib]);
                   });
  return out;
}

}  // namespace

Tensor Tensor::Add(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x + y; });
}
Tensor Tensor::Sub(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x - y; });
}
Tensor Tensor::Mul(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x * y; });
}
Tensor Tensor::Div(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x / y; });
}
Tensor Tensor::Maximum(const Tensor& other) const {
  return BinaryOp(*this, other,
                  [](float x, float y) { return std::max(x, y); });
}
Tensor Tensor::Minimum(const Tensor& other) const {
  return BinaryOp(*this, other,
                  [](float x, float y) { return std::min(x, y); });
}

// The named unary ops all go through MapT so the functor is inlined into
// the kernel loop; Map keeps the type-erased std::function path for
// callers that need it (cold code, caller-supplied functions).
Tensor Tensor::AddScalar(float value) const {
  return MapT([value](float x) { return x + value; });
}
Tensor Tensor::MulScalar(float value) const {
  return MapT([value](float x) { return x * value; });
}

Tensor Tensor::Map(const std::function<float(float)>& fn) const {
  return MapT([&fn](float x) { return fn(x); });
}

Tensor Tensor::Exp() const {
  return MapT([](float x) { return std::exp(x); });
}
Tensor Tensor::Log() const {
  return MapT([](float x) { return std::log(x); });
}
Tensor Tensor::Sqrt() const {
  return MapT([](float x) { return std::sqrt(x); });
}
Tensor Tensor::Abs() const {
  return MapT([](float x) { return std::fabs(x); });
}
Tensor Tensor::Tanh() const {
  return MapT([](float x) { return std::tanh(x); });
}
Tensor Tensor::Sigmoid() const {
  return MapT([](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Tensor::Relu() const {
  return MapT([](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Tensor::Pow(float exponent) const {
  return MapT([exponent](float x) { return std::pow(x, exponent); });
}

void Tensor::AddInplace(const Tensor& other) {
  TGCRN_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  float* p = mutable_data();
  const float* q = other.data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] += q[i];
  });
}

void Tensor::AddScaledInplace(const Tensor& other, float alpha) {
  TGCRN_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  float* p = mutable_data();
  const float* q = other.data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] += alpha * q[i];
  });
}

void Tensor::AddProductInplace(const Tensor& a, const Tensor& b) {
  TGCRN_CHECK(SameShape(a) && SameShape(b))
      << ShapeToString(shape_) << " vs " << ShapeToString(a.shape())
      << " vs " << ShapeToString(b.shape());
  float* p = mutable_data();
  const float* pa = a.data();
  const float* pb = b.data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] += pa[i] * pb[i];
  });
}

void Tensor::AddSliceInplace(int64_t axis, int64_t start,
                             const Tensor& other) {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_EQ(other.dim(), dim());
  for (int64_t d = 0; d < dim(); ++d) {
    if (d != axis) TGCRN_CHECK_EQ(other.shape()[d], shape_[d]);
  }
  const int64_t span = other.shape()[axis];
  TGCRN_CHECK_GE(start, 0);
  TGCRN_CHECK_LE(start + span, shape_[axis]);
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape_[d];
  for (int64_t d = axis + 1; d < dim(); ++d) inner *= shape_[d];
  const int64_t axis_len = shape_[axis];
  float* p = mutable_data();
  const float* q = other.data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    float* dst = p + (ou * axis_len + start) * inner;
    const float* src = q + ou * span * inner;
    for (int64_t i = 0; i < span * inner; ++i) dst[i] += src[i];
  }
}

void Tensor::IndexAdd0Inplace(const std::vector<int64_t>& indices,
                              const Tensor& other) {
  TGCRN_CHECK_GE(dim(), 1);
  TGCRN_CHECK_EQ(other.dim(), dim());
  TGCRN_CHECK_EQ(other.shape()[0], static_cast<int64_t>(indices.size()));
  int64_t inner = 1;
  for (int64_t d = 1; d < dim(); ++d) {
    TGCRN_CHECK_EQ(other.shape()[d], shape_[d]);
    inner *= shape_[d];
  }
  float* p = mutable_data();
  const float* q = other.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    TGCRN_CHECK_GE(row, 0);
    TGCRN_CHECK_LT(row, shape_[0]);
    float* dst = p + row * inner;
    const float* src = q + i * inner;
    for (int64_t j = 0; j < inner; ++j) dst[j] += src[j];
  }
}

void Tensor::ScaleInplace(float value) {
  float* p = mutable_data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] *= value;
  });
}

void Tensor::FillInplace(float value) {
  std::fill(data_->begin(), data_->end(), value);
}

namespace {

// Which operand the batched matmul driver reads transposed. The transposed
// side is read through strides; no transpose copy is materialized.
enum class MatmulMode { kNN, kTransposeA, kTransposeB };

// Shared batched-matmul driver. Per mode (reduce dim `red`):
//   kNN:         A (..., m, red) x B (..., red, n) -> (..., m, n)
//   kTransposeA: A (..., red, m) x B (..., red, n) -> A^T B = (..., m, n)
//   kTransposeB: A (..., m, red) x B (..., n, red) -> A B^T = (..., m, n)
// Batch dims broadcast NumPy-style in all modes. Every output row keeps
// the exact serial accumulation order (sum over `red` in increasing
// order), so results are bitwise identical at every thread count and the
// transposed modes match their materialized-transpose equivalents bit for
// bit.
Tensor BatchedMatmulImpl(const Tensor& a, const Tensor& b, MatmulMode mode) {
  TGCRN_CHECK_GE(a.dim(), 2);
  TGCRN_CHECK_GE(b.dim(), 2);
  const Shape& a_shape = a.shape();
  const Shape& b_shape = b.shape();
  const int64_t a_rows = a_shape[a.dim() - 2];
  const int64_t a_cols = a_shape[a.dim() - 1];
  const int64_t b_rows = b_shape[b.dim() - 2];
  const int64_t b_cols = b_shape[b.dim() - 1];
  const int64_t m = mode == MatmulMode::kTransposeA ? a_cols : a_rows;
  const int64_t red = mode == MatmulMode::kTransposeA ? a_rows : a_cols;
  const int64_t n = mode == MatmulMode::kTransposeB ? b_rows : b_cols;
  const int64_t b_red = mode == MatmulMode::kTransposeB ? b_cols : b_rows;
  TGCRN_CHECK_EQ(red, b_red)
      << "matmul inner-dim mismatch: " << ShapeToString(a_shape) << " x "
      << ShapeToString(b_shape);
  // Broadcast the batch dims.
  Shape a_batch(a_shape.begin(), a_shape.end() - 2);
  Shape b_batch(b_shape.begin(), b_shape.end() - 2);
  Shape batch = BroadcastShapes(a_batch, b_batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out(out_shape);

  const int64_t batch_n = ShapeNumel(batch);
  // Effective batch strides in units of matrices.
  const int64_t rank = static_cast<int64_t>(batch.size());
  const auto a_strides = EffectiveStrides(batch, a_batch);
  const auto b_strides = EffectiveStrides(batch, b_batch);

  // Walk the broadcast batch index once up front, recording which operand
  // matrix each output matrix reads; the row loop below is then free to run
  // in any order across threads.
  std::vector<int64_t> a_mats(batch_n), b_mats(batch_n);
  std::vector<int64_t> index(rank, 0);
  int64_t a_mat = 0, b_mat = 0;
  for (int64_t bi = 0; bi < batch_n; ++bi) {
    a_mats[bi] = a_mat;
    b_mats[bi] = b_mat;
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++index[d];
      a_mat += a_strides[d];
      b_mat += b_strides[d];
      if (index[d] < batch[d]) break;
      index[d] = 0;
      a_mat -= a_strides[d] * batch[d];
      b_mat -= b_strides[d] * batch[d];
    }
  }

  const int64_t a_mat_elems = a_rows * a_cols;
  const int64_t b_mat_elems = b_rows * b_cols;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  // Parallel over the flattened batch x row dimension: each output row is
  // computed independently with the exact serial arithmetic, so results
  // are bitwise identical at every thread count.
  const int64_t grain_rows = std::max<int64_t>(
      1, kMatmulGrainFlops / std::max<int64_t>(1, red * n));
  common::ParallelFor(
      0, batch_n * m, grain_rows, [&](int64_t row_begin, int64_t row_end) {
        for (int64_t r = row_begin; r < row_end; ++r) {
          const int64_t bi = r / m;
          const int64_t i = r % m;
          const float* A = pa + a_mats[bi] * a_mat_elems;
          const float* B = pb + b_mats[bi] * b_mat_elems;
          float* crow = po + r * n;
          switch (mode) {
            case MatmulMode::kNN: {
              std::fill(crow, crow + n, 0.0f);
              const float* arow = A + i * red;
              // i-k-j loop order: streams B and C rows, good cache
              // behaviour.
              for (int64_t kk = 0; kk < red; ++kk) {
                const float a_val = arow[kk];
                if (a_val == 0.0f) continue;
                const float* brow = B + kk * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += a_val * brow[j];
              }
              break;
            }
            case MatmulMode::kTransposeA: {
              // A column i read at stride m; otherwise the kNN loop.
              std::fill(crow, crow + n, 0.0f);
              for (int64_t kk = 0; kk < red; ++kk) {
                const float a_val = A[kk * m + i];
                if (a_val == 0.0f) continue;
                const float* brow = B + kk * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += a_val * brow[j];
              }
              break;
            }
            case MatmulMode::kTransposeB: {
              // Both operand rows are contiguous: out[j] = arow . brow_j.
              const float* arow = A + i * red;
              for (int64_t j = 0; j < n; ++j) {
                const float* brow = B + j * red;
                float sum = 0.0f;
                for (int64_t kk = 0; kk < red; ++kk) {
                  sum += arow[kk] * brow[kk];
                }
                crow[j] = sum;
              }
              break;
            }
          }
        }
      });
  return out;
}

}  // namespace

Tensor Tensor::Matmul(const Tensor& other) const {
  TGCRN_TRACE_SCOPE("tensor.Matmul");
  return BatchedMatmulImpl(*this, other, MatmulMode::kNN);
}

Tensor Tensor::MatmulTransposeA(const Tensor& other) const {
  TGCRN_TRACE_SCOPE("tensor.MatmulTransposeA");
  return BatchedMatmulImpl(*this, other, MatmulMode::kTransposeA);
}

Tensor Tensor::MatmulTransposeB(const Tensor& other) const {
  TGCRN_TRACE_SCOPE("tensor.MatmulTransposeB");
  // The strided kernel computes each output as a serial dot product, which
  // cannot use SIMD lanes; with many output rows the vectorized kNN kernel
  // wins even after paying for an explicit transpose copy. With few rows
  // (the m=1 GCGRU backward shape) the copy dominates and the strided
  // kernel is several times faster. The cutover depends only on the
  // shapes, so results stay deterministic — and both strategies accumulate
  // over k in the same order, so they agree bitwise anyway.
  const int64_t m = dim() >= 2 ? shape_[dim() - 2] : 1;
  if (other.dim() >= 2 && m >= 8) {
    return BatchedMatmulImpl(
        *this, other.Transpose(other.dim() - 2, other.dim() - 1),
        MatmulMode::kNN);
  }
  return BatchedMatmulImpl(*this, other, MatmulMode::kTransposeB);
}

Tensor Tensor::Reshape(Shape new_shape) const {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TGCRN_CHECK_EQ(infer, -1) << "at most one -1 dim";
      infer = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    TGCRN_CHECK(known != 0 && numel() % known == 0)
        << "cannot infer dim for reshape " << ShapeToString(shape_) << " -> "
        << ShapeToString(new_shape);
    new_shape[infer] = numel() / known;
  }
  TGCRN_CHECK_EQ(ShapeNumel(new_shape), numel())
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;  // storage shared; reshape is a view of contiguous data
  return out;
}

Tensor Tensor::Transpose(int64_t axis0, int64_t axis1) const {
  if (axis0 < 0) axis0 += dim();
  if (axis1 < 0) axis1 += dim();
  std::vector<int64_t> perm(dim());
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[axis0], perm[axis1]);
  return Permute(perm);
}

Tensor Tensor::Permute(const std::vector<int64_t>& perm) const {
  TGCRN_CHECK_EQ(static_cast<int64_t>(perm.size()), dim());
  Shape out_shape(dim());
  for (int64_t d = 0; d < dim(); ++d) out_shape[d] = shape_[perm[d]];
  Tensor out(out_shape);
  if (numel() == 0) return out;
  const auto in_strides = StridesFor(shape_);
  std::vector<int64_t> permuted_strides(dim());
  for (int64_t d = 0; d < dim(); ++d) {
    permuted_strides[d] = in_strides[perm[d]];
  }
  const float* p = data();
  float* o = out.mutable_data();
  const int64_t rank = dim();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    // Reconstruct the multi-index at the chunk start, then walk.
    std::vector<int64_t> index(rank, 0);
    int64_t in_off = 0;
    int64_t rem = s;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_shape[d];
      rem /= out_shape[d];
      in_off += index[d] * permuted_strides[d];
    }
    for (int64_t flat = s; flat < e; ++flat) {
      o[flat] = p[in_off];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        in_off += permuted_strides[d];
        if (index[d] < out_shape[d]) break;
        index[d] = 0;
        in_off -= permuted_strides[d] * out_shape[d];
      }
    }
  });
  return out;
}

Tensor Tensor::Unsqueeze(int64_t axis) const {
  if (axis < 0) axis += dim() + 1;
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LE(axis, dim());
  Shape s = shape_;
  s.insert(s.begin() + axis, 1);
  return Reshape(std::move(s));
}

Tensor Tensor::Squeeze(int64_t axis) const {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_EQ(shape_[axis], 1);
  Shape s = shape_;
  s.erase(s.begin() + axis);
  return Reshape(std::move(s));
}

Tensor Tensor::Slice(int64_t axis, int64_t start, int64_t end) const {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, dim());
  TGCRN_CHECK_GE(start, 0);
  TGCRN_CHECK_LE(end, shape_[axis]);
  TGCRN_CHECK_LE(start, end);
  Shape out_shape = shape_;
  out_shape[axis] = end - start;
  Tensor out(out_shape);
  // View the tensor as [outer, axis_len, inner].
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape_[d];
  for (int64_t d = axis + 1; d < dim(); ++d) inner *= shape_[d];
  const int64_t axis_len = shape_[axis];
  const int64_t span = end - start;
  const float* p = data();
  float* o = out.mutable_data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    const float* src = p + (ou * axis_len + start) * inner;
    float* dst = o + ou * span * inner;
    std::copy(src, src + span * inner, dst);
  }
  return out;
}

Tensor Tensor::BroadcastTo(const Shape& target) const {
  const Shape check = BroadcastShapes(shape_, target);
  TGCRN_CHECK(check == target)
      << "cannot broadcast " << ShapeToString(shape_) << " to "
      << ShapeToString(target);
  Tensor out(target);
  float* o = out.mutable_data();
  const float* p = data();
  BroadcastIterate(target, shape_, Shape{},  // second operand unused
                   [&](int64_t of, int64_t ia, int64_t) { o[of] = p[ia]; });
  return out;
}

Tensor Tensor::IndexSelect0(const std::vector<int64_t>& indices) const {
  TGCRN_CHECK_GE(dim(), 1);
  int64_t inner = 1;
  for (int64_t d = 1; d < dim(); ++d) inner *= shape_[d];
  Shape out_shape = shape_;
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  const float* p = data();
  float* o = out.mutable_data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    TGCRN_CHECK_GE(row, 0);
    TGCRN_CHECK_LT(row, shape_[0]);
    std::copy(p + row * inner, p + (row + 1) * inner, o + i * inner);
  }
  return out;
}

Tensor Tensor::Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  TGCRN_CHECK(!tensors.empty());
  int64_t rank = tensors[0].dim();
  if (axis < 0) axis += rank;
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, rank);
  Shape out_shape = tensors[0].shape();
  int64_t total = 0;
  for (const auto& t : tensors) {
    TGCRN_CHECK_EQ(t.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) {
        TGCRN_CHECK_EQ(t.shape()[d], out_shape[d])
            << "concat shape mismatch on axis " << d;
      }
    }
    total += t.shape()[axis];
  }
  out_shape[axis] = total;
  Tensor out(out_shape);
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[d];
  for (int64_t d = axis + 1; d < rank; ++d) inner *= out_shape[d];
  float* o = out.mutable_data();
  int64_t written = 0;
  for (const auto& t : tensors) {
    const int64_t span = t.shape()[axis];
    const float* p = t.data();
    for (int64_t ou = 0; ou < outer; ++ou) {
      std::copy(p + ou * span * inner, p + (ou + 1) * span * inner,
                o + (ou * total + written) * inner);
    }
    written += span;
  }
  return out;
}

Tensor Tensor::Stack(const std::vector<Tensor>& tensors, int64_t axis) {
  TGCRN_CHECK(!tensors.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const auto& t : tensors) expanded.push_back(t.Unsqueeze(axis));
  return Concat(expanded, axis);
}

float Tensor::SumAll() const {
  // Deterministic chunked reduction: fixed chunking + fixed combine order
  // make the result bitwise identical at every thread count. Tensors of at
  // most one chunk reduce exactly like the legacy serial loop.
  const float* p = data();
  return static_cast<float>(common::DeterministicChunkedSum(
      numel(), kReductionChunk, [p](int64_t begin, int64_t end) {
        double sum = 0.0;
        for (int64_t i = begin; i < end; ++i) sum += p[i];
        return sum;
      }));
}

float Tensor::MeanAll() const {
  TGCRN_CHECK_GT(numel(), 0);
  return SumAll() / static_cast<float>(numel());
}

float Tensor::MaxAll() const {
  TGCRN_CHECK_GT(numel(), 0);
  return *std::max_element(data_->begin(), data_->end());
}

float Tensor::MinAll() const {
  TGCRN_CHECK_GT(numel(), 0);
  return *std::min_element(data_->begin(), data_->end());
}

namespace {

// Reduces `t` along `axis` with init/accumulate/finalize functors.
template <typename Acc, typename Fin>
Tensor ReduceAxis(const Tensor& t, int64_t axis, bool keepdim, float init,
                  Acc acc, Fin fin) {
  int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, rank);
  Shape out_shape = t.shape();
  out_shape[axis] = 1;
  Tensor out(out_shape);
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.shape()[d];
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.shape()[d];
  const int64_t span = t.shape()[axis];
  const float* p = t.data();
  float* o = out.mutable_data();
  // Parallel over output elements; each one runs the exact serial
  // accumulation over its span, so chunking never changes the result.
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, span));
  common::ParallelFor(
      0, outer * inner, grain, [&](int64_t begin, int64_t end) {
        for (int64_t oi = begin; oi < end; ++oi) {
          const int64_t ou = oi / inner;
          const int64_t in = oi % inner;
          float a = init;
          for (int64_t s = 0; s < span; ++s) {
            a = acc(a, p[(ou * span + s) * inner + in]);
          }
          o[oi] = fin(a, span);
        }
      });
  if (!keepdim) return out.Squeeze(axis);
  return out;
}

}  // namespace

Tensor Tensor::Sum(int64_t axis, bool keepdim) const {
  return ReduceAxis(
      *this, axis, keepdim, 0.0f, [](float a, float v) { return a + v; },
      [](float a, int64_t) { return a; });
}

Tensor Tensor::Mean(int64_t axis, bool keepdim) const {
  return ReduceAxis(
      *this, axis, keepdim, 0.0f, [](float a, float v) { return a + v; },
      [](float a, int64_t n) { return a / static_cast<float>(n); });
}

Tensor Tensor::Max(int64_t axis, bool keepdim) const {
  return ReduceAxis(
      *this, axis, keepdim, -std::numeric_limits<float>::infinity(),
      [](float a, float v) { return std::max(a, v); },
      [](float a, int64_t) { return a; });
}

Tensor Tensor::ReduceTo(const Shape& target) const {
  if (shape_ == target) return *this;
  Tensor result = *this;
  // Sum away extra leading dims.
  while (result.dim() > static_cast<int64_t>(target.size())) {
    result = result.Sum(0, /*keepdim=*/false);
  }
  // Sum over broadcast (size-1) dims.
  for (int64_t d = 0; d < result.dim(); ++d) {
    if (target[d] == 1 && result.shape()[d] != 1) {
      result = result.Sum(d, /*keepdim=*/true);
    } else {
      TGCRN_CHECK_EQ(target[d], result.shape()[d])
          << "ReduceTo mismatch " << ShapeToString(shape_) << " -> "
          << ShapeToString(target);
    }
  }
  return result;
}

Tensor Tensor::Softmax(int64_t axis) const {
  TGCRN_TRACE_SCOPE("tensor.Softmax");
  int64_t rank = dim();
  if (axis < 0) axis += rank;
  // Fast path for the last axis (the overwhelmingly common case: row
  // softmax of adjacency matrices and attention scores): single pass per
  // contiguous row instead of three broadcast kernels.
  if (axis == rank - 1 && rank >= 1) {
    const int64_t span = shape_[axis];
    const int64_t rows = span > 0 ? numel() / span : 0;
    Tensor out(shape_);
    const float* p = data();
    float* o = out.mutable_data();
    const int64_t grain =
        std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, span));
    common::ParallelFor(0, rows, grain, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const float* src = p + r * span;
        float* dst = o + r * span;
        float max_val = src[0];
        for (int64_t j = 1; j < span; ++j) {
          max_val = std::max(max_val, src[j]);
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < span; ++j) {
          dst[j] = std::exp(src[j] - max_val);
          sum += dst[j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = 0; j < span; ++j) dst[j] *= inv;
      }
    });
    return out;
  }
  Tensor shifted = Sub(Max(axis, /*keepdim=*/true));
  Tensor exps = shifted.Exp();
  return exps.Div(exps.Sum(axis, /*keepdim=*/true));
}

namespace {

// Shape check shared by the fused gradient kernels: the fused path is the
// exact-shape (non-broadcast) case by contract.
void CheckSameShapes(const Tensor& a, const Tensor& b, const char* kernel) {
  TGCRN_CHECK(a.SameShape(b))
      << kernel << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

// Two-input fused elementwise kernel with the functor inlined.
template <typename Fn>
Tensor FusedBinary(const Tensor& x, const Tensor& y, Fn fn) {
  Tensor out(x.shape());
  float* o = out.mutable_data();
  const float* px = x.data();
  const float* py = y.data();
  common::ParallelFor(0, x.numel(), kElemwiseGrain,
                      [&](int64_t s, int64_t e) {
                        for (int64_t i = s; i < e; ++i) {
                          o[i] = fn(px[i], py[i]);
                        }
                      });
  return out;
}

}  // namespace

Tensor SigmoidGradKernel(const Tensor& y, const Tensor& g) {
  CheckSameShapes(y, g, "SigmoidGradKernel");
  // (g*y)*(1-y) in the unfused chain's association order.
  return FusedBinary(y, g, [](float yv, float gv) {
    return (gv * yv) * (-yv + 1.0f);
  });
}

Tensor TanhGradKernel(const Tensor& y, const Tensor& g) {
  CheckSameShapes(y, g, "TanhGradKernel");
  return FusedBinary(y, g, [](float yv, float gv) {
    return gv * (-(yv * yv) + 1.0f);
  });
}

Tensor ReluGradKernel(const Tensor& x, const Tensor& g) {
  CheckSameShapes(x, g, "ReluGradKernel");
  return FusedBinary(x, g, [](float xv, float gv) {
    return xv > 0.0f ? gv : 0.0f;
  });
}

Tensor SoftmaxGradKernel(const Tensor& y, const Tensor& g) {
  CheckSameShapes(y, g, "SoftmaxGradKernel");
  TGCRN_CHECK_GE(y.dim(), 1);
  const int64_t span = y.shape()[y.dim() - 1];
  const int64_t rows = span > 0 ? y.numel() / span : 0;
  Tensor out(y.shape());
  const float* py = y.data();
  const float* pg = g.data();
  float* o = out.mutable_data();
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, span));
  // One pass per contiguous row; the row sum keeps the serial accumulation
  // order, so chunking across rows never changes any output bit.
  common::ParallelFor(0, rows, grain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* yrow = py + r * span;
      const float* grow = pg + r * span;
      float* orow = o + r * span;
      float sum = 0.0f;
      for (int64_t j = 0; j < span; ++j) sum += grow[j] * yrow[j];
      for (int64_t j = 0; j < span; ++j) {
        orow[j] = yrow[j] * (grow[j] - sum);
      }
    }
  });
  return out;
}

Tensor DivGradRhsKernel(const Tensor& g, const Tensor& a, const Tensor& b) {
  CheckSameShapes(g, a, "DivGradRhsKernel");
  CheckSameShapes(g, b, "DivGradRhsKernel");
  Tensor out(g.shape());
  float* o = out.mutable_data();
  const float* pg = g.data();
  const float* pa = a.data();
  const float* pb = b.data();
  common::ParallelFor(0, g.numel(), kElemwiseGrain,
                      [&](int64_t s, int64_t e) {
                        for (int64_t i = s; i < e; ++i) {
                          o[i] = ((pg[i] * pa[i]) / (pb[i] * pb[i])) * -1.0f;
                        }
                      });
  return out;
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  TGCRN_CHECK(a.SameShape(b))
      << ShapeToString(a.shape_) << " vs " << ShapeToString(b.shape_);
  float max_diff = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (!SameShape(other)) return false;
  return MaxAbsDiff(*this, other) <= atol;
}

bool Tensor::HasNonFinite() const {
  for (float v : *data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << (*data_)[i];
  }
  if (n < numel()) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace tgcrn
