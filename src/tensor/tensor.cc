// Copyright 2026 TGCRN Reproduction Authors
#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "tensor/buffer_pool.h"
#include "tensor/kernels/gemm.h"
#include "tensor/kernels/vmath.h"

namespace tgcrn {
namespace {

// Counts storage that enters a tensor from outside the buffer pool
// (FromVector's adopted vector). Pool-served storage is counted inside
// TensorBufferPool (misses only), so tensor.allocations tracks real heap
// allocations; shared-storage copies are free and not counted.
void CountExternalAllocation(int64_t numel) {
  static obs::Counter* allocs =
      obs::Registry::Global().GetCounter("tensor.allocations");
  static obs::Counter* bytes =
      obs::Registry::Global().GetCounter("tensor.allocated_bytes");
  allocs->Add(1);
  bytes->Add(numel * static_cast<int64_t>(sizeof(float)));
}

// Counts GEMM / vmath kernel dispatches per ISA level (simd.* counters
// in the metric registry) so tests can assert TGCRN_ISA is honored.
void CountGemmDispatch(common::SimdIsa isa) {
  static obs::Counter* scalar_calls =
      obs::Registry::Global().GetCounter("simd.gemm_scalar_calls");
  static obs::Counter* avx2_calls =
      obs::Registry::Global().GetCounter("simd.gemm_avx2_calls");
  (isa == common::SimdIsa::kAvx2 ? avx2_calls : scalar_calls)->Add(1);
}

void CountVmathDispatch(common::SimdIsa isa) {
  static obs::Counter* scalar_calls =
      obs::Registry::Global().GetCounter("simd.vmath_scalar_calls");
  static obs::Counter* avx2_calls =
      obs::Registry::Global().GetCounter("simd.vmath_avx2_calls");
  (isa == common::SimdIsa::kAvx2 ? avx2_calls : scalar_calls)->Add(1);
}

// Chunk-parallel elementwise map through a dispatching vmath kernel
// (tensor/kernels/vmath.h). The kernels are lanewise — each element's
// bits depend only on that element — so chunk boundaries and sub-vector
// tails never change results.
Tensor MapVmath(const Tensor& t,
                void (*fn)(const float*, float*, int64_t)) {
  Tensor out(t.shape());
  const float* p = t.data();
  float* o = out.mutable_data();
  common::ParallelFor(0, t.numel(), kElemwiseGrain,
                      [&](int64_t s, int64_t e) { fn(p + s, o + s, e - s); });
  return out;
}

// Minimum multiply-accumulate operations per matmul chunk.
constexpr int64_t kMatmulGrainFlops = 4096;
// Fixed chunk length of DeterministicChunkedSum reductions. Part of the
// numeric contract: changing it changes the bits of SumAll on tensors
// larger than one chunk (but never the cross-thread-count determinism).
constexpr int64_t kReductionChunk = 2048;

// Row-major strides for a shape.
std::vector<int64_t> StridesFor(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

// Strides of operand `shape` viewed through broadcast target `out_shape`:
// 0 where the operand dimension is absent or broadcast.
std::vector<int64_t> EffectiveStrides(const Shape& out_shape,
                                      const Shape& shape) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const auto full = StridesFor(shape);
  std::vector<int64_t> strides(rank, 0);
  const int64_t off = rank - static_cast<int64_t>(shape.size());
  for (int64_t d = 0; d < rank; ++d) {
    if (d >= off && shape[d - off] != 1) strides[d] = full[d - off];
  }
  return strides;
}

// Iterates flat output positions [begin, end) of the cartesian product of
// `out_shape`, tracking offsets into two broadcast operands via their
// effective strides, and calls fn(out_flat, a_off, b_off). Restricted to a
// subrange so broadcast kernels can be chunked across threads: each chunk
// reconstructs its starting multi-index by div/mod, then walks
// incrementally.
template <typename Fn>
void BroadcastIterateRange(const Shape& out_shape,
                           const std::vector<int64_t>& a_strides,
                           const std::vector<int64_t>& b_strides,
                           int64_t begin, int64_t end, Fn fn) {
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> index(rank, 0);
  int64_t a_off = 0, b_off = 0;
  int64_t rem = begin;
  for (int64_t d = rank - 1; d >= 0; --d) {
    index[d] = rem % out_shape[d];
    rem /= out_shape[d];
    a_off += index[d] * a_strides[d];
    b_off += index[d] * b_strides[d];
  }
  for (int64_t flat = begin; flat < end; ++flat) {
    fn(flat, a_off, b_off);
    // Increment the multi-index from the last axis, updating offsets.
    for (int64_t d = rank - 1; d >= 0; --d) {
      ++index[d];
      a_off += a_strides[d];
      b_off += b_strides[d];
      if (index[d] < out_shape[d]) break;
      index[d] = 0;
      a_off -= a_strides[d] * out_shape[d];
      b_off -= b_strides[d] * out_shape[d];
    }
  }
}

// Parallel broadcast iteration over the whole output. Chunk boundaries
// cannot change any output element, so results are bitwise identical at
// every thread count.
template <typename Fn>
void BroadcastIterate(const Shape& out_shape, const Shape& a_shape,
                      const Shape& b_shape, Fn fn) {
  const int64_t n = ShapeNumel(out_shape);
  if (n == 0) return;
  const auto a_strides = EffectiveStrides(out_shape, a_shape);
  const auto b_strides = EffectiveStrides(out_shape, b_shape);
  common::ParallelFor(0, n, kElemwiseGrain, [&](int64_t s, int64_t e) {
    BroadcastIterateRange(out_shape, a_strides, b_strides, s, e, fn);
  });
}

}  // namespace

std::string ShapeToString(const Shape& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TGCRN_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    TGCRN_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast: " << ShapeToString(a) << " vs "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

namespace {

// Shared immutable zero-length storage backing every empty tensor. Default
// construction happens on hot paths that must not touch the allocator in
// steady state — e.g. Backward() releasing interior grads via
// `grad = Tensor()` once per op node per step — and an empty vector can
// never be written through (numel == 0), so one instance serves them all.
// Leaked so tensors alive during static destruction stay valid.
const std::shared_ptr<std::vector<float>>& EmptyStorage() {
  static const auto* storage = new std::shared_ptr<std::vector<float>>(
      std::make_shared<std::vector<float>>());
  return *storage;
}

}  // namespace

Tensor::Tensor() : shape_{0}, data_(EmptyStorage()) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  const int64_t numel = ShapeNumel(shape_);
  data_ = numel == 0 ? EmptyStorage()
                     : TensorBufferPool::Global().AcquireZeroed(numel);
}

Tensor Tensor::ForOverwrite(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  const int64_t numel = ShapeNumel(t.shape_);
  t.data_ = numel == 0
                ? EmptyStorage()
                : TensorBufferPool::Global().AcquireForOverwrite(numel);
  return t;
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.FillInplace(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  (*t.data_).assign(1, value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  TGCRN_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()));
  Tensor t;
  t.shape_ = std::move(shape);
  // Adopts the caller's storage (not pool-recyclable; make_shared embeds
  // the vector in the control block, so the deleter is the default one).
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  CountExternalAllocation(t.numel());
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  std::vector<float> values(n);
  std::iota(values.begin(), values.end(), 0.0f);
  return FromVector({n}, std::move(values));
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.set_flat(i * n + i, 1.0f);
  return t;
}

Tensor Tensor::RandUniform(Shape shape, float lo, float hi, Rng* rng) {
  TGCRN_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) v = rng->Uniform(lo, hi);
  return t;
}

Tensor Tensor::RandNormal(Shape shape, float mean, float stddev, Rng* rng) {
  TGCRN_CHECK(rng != nullptr);
  Tensor t(std::move(shape));
  for (auto& v : *t.data_) {
    v = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

int64_t Tensor::size(int64_t axis) const {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, dim());
  return shape_[axis];
}

int64_t Tensor::FlatIndex(const std::vector<int64_t>& index) const {
  TGCRN_CHECK_EQ(static_cast<int64_t>(index.size()), dim());
  int64_t flat = 0;
  for (int64_t d = 0; d < dim(); ++d) {
    TGCRN_CHECK_GE(index[d], 0);
    TGCRN_CHECK_LT(index[d], shape_[d]);
    flat = flat * shape_[d] + index[d];
  }
  return flat;
}

float Tensor::at(const std::vector<int64_t>& index) const {
  return (*data_)[FlatIndex(index)];
}

void Tensor::set(const std::vector<int64_t>& index, float value) {
  (*data_)[FlatIndex(index)] = value;
}

float Tensor::item() const {
  TGCRN_CHECK_EQ(numel(), 1);
  return (*data_)[0];
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = TensorBufferPool::Global().AcquireCopy(data(), numel());
  return t;
}

namespace {

template <typename Fn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fn fn) {
  // Fast path: identical shapes.
  if (a.SameShape(b)) {
    Tensor out(a.shape());
    float* o = out.mutable_data();
    const float* pa = a.data();
    const float* pb = b.data();
    common::ParallelFor(0, a.numel(), kElemwiseGrain,
                        [&](int64_t s, int64_t e) {
                          for (int64_t i = s; i < e; ++i) {
                            o[i] = fn(pa[i], pb[i]);
                          }
                        });
    return out;
  }
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out(out_shape);
  float* o = out.mutable_data();
  const float* pa = a.data();
  const float* pb = b.data();
  BroadcastIterate(out_shape, a.shape(), b.shape(),
                   [&](int64_t of, int64_t ia, int64_t ib) {
                     o[of] = fn(pa[ia], pb[ib]);
                   });
  return out;
}

}  // namespace

Tensor Tensor::Add(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x + y; });
}
Tensor Tensor::Sub(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x - y; });
}
Tensor Tensor::Mul(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x * y; });
}
Tensor Tensor::Div(const Tensor& other) const {
  return BinaryOp(*this, other, [](float x, float y) { return x / y; });
}
Tensor Tensor::Maximum(const Tensor& other) const {
  return BinaryOp(*this, other,
                  [](float x, float y) { return std::max(x, y); });
}
Tensor Tensor::Minimum(const Tensor& other) const {
  return BinaryOp(*this, other,
                  [](float x, float y) { return std::min(x, y); });
}

// The named unary ops all go through MapT so the functor is inlined into
// the kernel loop; Map keeps the type-erased std::function path for
// callers that need it (cold code, caller-supplied functions).
Tensor Tensor::AddScalar(float value) const {
  return MapT([value](float x) { return x + value; });
}
Tensor Tensor::MulScalar(float value) const {
  return MapT([value](float x) { return x * value; });
}

Tensor Tensor::Map(const std::function<float(float)>& fn) const {
  return MapT([&fn](float x) { return fn(x); });
}

// Exp/Tanh/Sigmoid route through the ISA-dispatched vmath kernels
// (AVX2 minimax polynomials, or libm on the scalar path — bit-identical
// to the old MapT lambdas). The remaining unary ops stay on MapT.
// The vmath flop models are nominal per-element polynomial costs (the
// scalar libm path spends more, the AVX2 minimax path about this much);
// traffic is one read + one write per element. Shape-only, so profiles
// carry the same counts for every ISA and thread count.
Tensor Tensor::Exp() const {
  TGCRN_TRACE_SCOPE("tensor.Exp");
  CountVmathDispatch(common::ActiveSimdIsa());
  obs::RecordKernelCost("tensor.Exp", 8.0 * static_cast<double>(numel()),
                        8.0 * static_cast<double>(numel()));
  return MapVmath(*this, vmath::ExpN);
}
Tensor Tensor::Log() const {
  return MapT([](float x) { return std::log(x); });
}
Tensor Tensor::Sqrt() const {
  return MapT([](float x) { return std::sqrt(x); });
}
Tensor Tensor::Abs() const {
  return MapT([](float x) { return std::fabs(x); });
}
Tensor Tensor::Tanh() const {
  TGCRN_TRACE_SCOPE("tensor.Tanh");
  CountVmathDispatch(common::ActiveSimdIsa());
  obs::RecordKernelCost("tensor.Tanh", 12.0 * static_cast<double>(numel()),
                        8.0 * static_cast<double>(numel()));
  return MapVmath(*this, vmath::TanhN);
}
Tensor Tensor::Sigmoid() const {
  TGCRN_TRACE_SCOPE("tensor.Sigmoid");
  CountVmathDispatch(common::ActiveSimdIsa());
  obs::RecordKernelCost("tensor.Sigmoid", 10.0 * static_cast<double>(numel()),
                        8.0 * static_cast<double>(numel()));
  return MapVmath(*this, vmath::SigmoidN);
}
Tensor Tensor::Relu() const {
  return MapT([](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Tensor::Pow(float exponent) const {
  return MapT([exponent](float x) { return std::pow(x, exponent); });
}

void Tensor::AddInplace(const Tensor& other) {
  TGCRN_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  float* p = mutable_data();
  const float* q = other.data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] += q[i];
  });
}

void Tensor::AddScaledInplace(const Tensor& other, float alpha) {
  TGCRN_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  float* p = mutable_data();
  const float* q = other.data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] += alpha * q[i];
  });
}

void Tensor::AddProductInplace(const Tensor& a, const Tensor& b) {
  TGCRN_CHECK(SameShape(a) && SameShape(b))
      << ShapeToString(shape_) << " vs " << ShapeToString(a.shape())
      << " vs " << ShapeToString(b.shape());
  float* p = mutable_data();
  const float* pa = a.data();
  const float* pb = b.data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] += pa[i] * pb[i];
  });
}

void Tensor::AddSliceInplace(int64_t axis, int64_t start,
                             const Tensor& other) {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_EQ(other.dim(), dim());
  for (int64_t d = 0; d < dim(); ++d) {
    if (d != axis) TGCRN_CHECK_EQ(other.shape()[d], shape_[d]);
  }
  const int64_t span = other.shape()[axis];
  TGCRN_CHECK_GE(start, 0);
  TGCRN_CHECK_LE(start + span, shape_[axis]);
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape_[d];
  for (int64_t d = axis + 1; d < dim(); ++d) inner *= shape_[d];
  const int64_t axis_len = shape_[axis];
  float* p = mutable_data();
  const float* q = other.data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    float* dst = p + (ou * axis_len + start) * inner;
    const float* src = q + ou * span * inner;
    for (int64_t i = 0; i < span * inner; ++i) dst[i] += src[i];
  }
}

void Tensor::IndexAdd0Inplace(const std::vector<int64_t>& indices,
                              const Tensor& other) {
  TGCRN_CHECK_GE(dim(), 1);
  TGCRN_CHECK_EQ(other.dim(), dim());
  TGCRN_CHECK_EQ(other.shape()[0], static_cast<int64_t>(indices.size()));
  int64_t inner = 1;
  for (int64_t d = 1; d < dim(); ++d) {
    TGCRN_CHECK_EQ(other.shape()[d], shape_[d]);
    inner *= shape_[d];
  }
  float* p = mutable_data();
  const float* q = other.data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    TGCRN_CHECK_GE(row, 0);
    TGCRN_CHECK_LT(row, shape_[0]);
    float* dst = p + row * inner;
    const float* src = q + i * inner;
    for (int64_t j = 0; j < inner; ++j) dst[j] += src[j];
  }
}

void Tensor::ScaleInplace(float value) {
  float* p = mutable_data();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    for (int64_t i = s; i < e; ++i) p[i] *= value;
  });
}

void Tensor::FillInplace(float value) {
  std::fill(data_->begin(), data_->end(), value);
}

namespace {

// Which operand the batched matmul driver reads transposed. The transposed
// side is read through strides; no transpose copy is materialized.
enum class MatmulMode { kNN, kTransposeA, kTransposeB };

// Shared batched-matmul driver. Per mode (reduce dim `red`):
//   kNN:         A (..., m, red) x B (..., red, n) -> (..., m, n)
//   kTransposeA: A (..., red, m) x B (..., red, n) -> A^T B = (..., m, n)
//   kTransposeB: A (..., m, red) x B (..., n, red) -> A B^T = (..., m, n)
// Batch dims broadcast NumPy-style in all modes.
//
// The arithmetic lives in the ISA-dispatched GEMM kernel tables
// (tensor/kernels/gemm.h). The driver packs each unique B matrix into
// kNr-wide panels once (skipped for tall-skinny outputs where packing
// traffic would rival the multiply), then parallelizes over the
// flattened batch x row dimension. Per output element every kernel
// accumulates over `red` in ascending order with a structure fixed by
// the shapes, so results are bitwise identical at every thread count
// and pool/arena toggle at a fixed ISA level; TGCRN_ISA=scalar
// reproduces the legacy serial loops bit for bit.
Tensor BatchedMatmulImpl(const Tensor& a, const Tensor& b, MatmulMode mode) {
  TGCRN_CHECK_GE(a.dim(), 2);
  TGCRN_CHECK_GE(b.dim(), 2);
  const Shape& a_shape = a.shape();
  const Shape& b_shape = b.shape();
  const int64_t a_rows = a_shape[a.dim() - 2];
  const int64_t a_cols = a_shape[a.dim() - 1];
  const int64_t b_rows = b_shape[b.dim() - 2];
  const int64_t b_cols = b_shape[b.dim() - 1];
  const int64_t m = mode == MatmulMode::kTransposeA ? a_cols : a_rows;
  const int64_t red = mode == MatmulMode::kTransposeA ? a_rows : a_cols;
  const int64_t n = mode == MatmulMode::kTransposeB ? b_rows : b_cols;
  const int64_t b_red = mode == MatmulMode::kTransposeB ? b_cols : b_rows;
  TGCRN_CHECK_EQ(red, b_red)
      << "matmul inner-dim mismatch: " << ShapeToString(a_shape) << " x "
      << ShapeToString(b_shape);
  // Broadcast the batch dims.
  Shape a_batch(a_shape.begin(), a_shape.end() - 2);
  Shape b_batch(b_shape.begin(), b_shape.end() - 2);
  Shape batch = BroadcastShapes(a_batch, b_batch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  // Every kernel path below overwrites every output element, so the
  // zero-fill of a normal construction would be pure overhead.
  Tensor out = Tensor::ForOverwrite(out_shape);

  const int64_t batch_n = ShapeNumel(batch);

  // Analytic cost (shape-only, so identical for every ISA and thread
  // count): 2 flops per multiply-accumulate; logical traffic reads each
  // operand once and writes the output (fp32). The kernel name matches
  // the entry point's span so the cost lands on the open scope.
  obs::RecordKernelCost(
      mode == MatmulMode::kTransposeA   ? "tensor.MatmulTransposeA"
      : mode == MatmulMode::kTransposeB ? "tensor.MatmulTransposeB"
                                        : "tensor.Matmul",
      2.0 * static_cast<double>(batch_n) * static_cast<double>(m) *
          static_cast<double>(n) * static_cast<double>(red),
      4.0 * (static_cast<double>(a.numel()) + static_cast<double>(b.numel()) +
             static_cast<double>(batch_n) * static_cast<double>(m) *
                 static_cast<double>(n)));

  // Walk the broadcast batch index once up front, recording which operand
  // matrix each output matrix reads; the row loop below is then free to
  // run in any order across threads. When neither operand broadcasts the
  // map is the identity (a null map below) and the walk is skipped — the
  // per-step m=1 GCGRU shapes hit this path thousands of times.
  const bool dense_batch = a_batch == batch && b_batch == batch;
  std::vector<int64_t> a_mats, b_mats;
  if (!dense_batch) {
    const int64_t rank = static_cast<int64_t>(batch.size());
    const auto a_strides = EffectiveStrides(batch, a_batch);
    const auto b_strides = EffectiveStrides(batch, b_batch);
    a_mats.resize(batch_n);
    b_mats.resize(batch_n);
    std::vector<int64_t> index(rank, 0);
    int64_t a_mat = 0, b_mat = 0;
    for (int64_t bi = 0; bi < batch_n; ++bi) {
      a_mats[bi] = a_mat;
      b_mats[bi] = b_mat;
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        a_mat += a_strides[d];
        b_mat += b_strides[d];
        if (index[d] < batch[d]) break;
        index[d] = 0;
        a_mat -= a_strides[d] * batch[d];
        b_mat -= b_strides[d] * batch[d];
      }
    }
  }
  // Null means identity (matrix bi reads operand matrix bi).
  const int64_t* a_map = dense_batch ? nullptr : a_mats.data();
  const int64_t* b_map = dense_batch ? nullptr : b_mats.data();

  const int64_t a_mat_elems = a_rows * a_cols;
  const int64_t b_mat_elems = b_rows * b_cols;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.mutable_data();
  if (batch_n * m * n == 0) return out;

  const common::SimdIsa isa = common::ActiveSimdIsa();
  const gemm::Kernels& kern = gemm::GetKernels(isa);
  CountGemmDispatch(isa);

  // A is addressed as the logical (m x red) left operand via strides;
  // the transpose-A mode reads its (red x m) buffer in place.
  const int64_t ars = mode == MatmulMode::kTransposeA ? 1 : red;
  const int64_t acs = mode == MatmulMode::kTransposeA ? m : 1;
  const int64_t grain_rows = std::max<int64_t>(
      1, kMatmulGrainFlops / std::max<int64_t>(1, red * n));

  if (m == 1 && mode != MatmulMode::kTransposeB) {
    // Batch of row vectors times a batch of matrices (the GCGRU
    // per-node shape): the matrix loop lives inside the kernel, one
    // indirect call per chunk. With m == 1 the transpose-A operand is a
    // (red x 1) column, contiguous like the kNN row, so both modes
    // share this path.
    common::ParallelFor(
        0, batch_n, grain_rows, [&](int64_t mat_b, int64_t mat_e) {
          kern.m1_batch(pa, a_map, a_mat_elems, pb, b_map, b_mat_elems, mat_b,
                        mat_e, red, n, po);
        });
    return out;
  }

  if (m < gemm::kSmallMCutover) {
    // Tall-skinny outputs (the m=1 GCGRU shapes): no packing, B is read
    // in place.
    common::ParallelFor(
        0, batch_n * m, grain_rows, [&](int64_t row_begin, int64_t row_end) {
          int64_t r = row_begin;
          while (r < row_end) {
            const int64_t bi = r / m;
            const int64_t i = r - bi * m;
            const int64_t run = std::min(row_end - r, m - i);
            const float* A = pa + (a_map ? a_map[bi] : bi) * a_mat_elems;
            const float* B = pb + (b_map ? b_map[bi] : bi) * b_mat_elems;
            float* C = po + bi * m * n;
            if (mode == MatmulMode::kTransposeB) {
              kern.dot_rows(A, B, i, i + run, red, n, C);
            } else {
              kern.gemm_rows_direct(A, ars, acs, B, i, i + run, red, n, C);
            }
            r += run;
          }
        });
    return out;
  }

  // Packed path: repack each unique B matrix into panels once (parallel
  // over matrices; ParallelFor is a barrier, so the row pass below never
  // races the packing). Pack scratch comes from the buffer pool, rounded
  // up to the pool's minimum bucket so steady-state training stays
  // allocation-free.
  const int64_t b_unique = ShapeNumel(b_batch);
  const int64_t per_matrix = gemm::PackedBCount(red, n);
  std::shared_ptr<std::vector<float>> pack_storage;
  const float* packed = nullptr;
  if (per_matrix > 0) {
    pack_storage = TensorBufferPool::Global().AcquireForOverwrite(
        std::max<int64_t>(b_unique * per_matrix, 256));
    float* pack = pack_storage->data();
    common::ParallelFor(0, b_unique, 1, [&](int64_t mat_b, int64_t mat_e) {
      for (int64_t mi = mat_b; mi < mat_e; ++mi) {
        kern.pack_b(pb + mi * b_mat_elems, red, n,
                    mode == MatmulMode::kTransposeB, pack + mi * per_matrix);
      }
    });
    packed = pack;
  }
  common::ParallelFor(
      0, batch_n * m, grain_rows, [&](int64_t row_begin, int64_t row_end) {
        int64_t r = row_begin;
        while (r < row_end) {
          const int64_t bi = r / m;
          const int64_t i = r - bi * m;
          const int64_t run = std::min(row_end - r, m - i);
          const float* A = pa + (a_map ? a_map[bi] : bi) * a_mat_elems;
          float* C = po + bi * m * n;
          kern.gemm_rows(A, ars, acs,
                         packed + (b_map ? b_map[bi] : bi) * per_matrix, i,
                         i + run, red, n, C);
          r += run;
        }
      });
  return out;
}

}  // namespace

Tensor Tensor::Matmul(const Tensor& other) const {
  TGCRN_TRACE_SCOPE("tensor.Matmul");
  return BatchedMatmulImpl(*this, other, MatmulMode::kNN);
}

Tensor Tensor::MatmulTransposeA(const Tensor& other) const {
  TGCRN_TRACE_SCOPE("tensor.MatmulTransposeA");
  return BatchedMatmulImpl(*this, other, MatmulMode::kTransposeA);
}

Tensor Tensor::MatmulTransposeB(const Tensor& other) const {
  TGCRN_TRACE_SCOPE("tensor.MatmulTransposeB");
  // The GEMM core absorbs the transpose at packing time (B is packed
  // column-major into the same panel layout), so no transpose copy is
  // ever materialized; tall-skinny outputs take the SIMD dot-row kernel
  // instead of packing. The old materialized-transpose cutover is gone.
  return BatchedMatmulImpl(*this, other, MatmulMode::kTransposeB);
}

Tensor Tensor::Reshape(Shape new_shape) const {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int64_t infer = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      TGCRN_CHECK_EQ(infer, -1) << "at most one -1 dim";
      infer = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    TGCRN_CHECK(known != 0 && numel() % known == 0)
        << "cannot infer dim for reshape " << ShapeToString(shape_) << " -> "
        << ShapeToString(new_shape);
    new_shape[infer] = numel() / known;
  }
  TGCRN_CHECK_EQ(ShapeNumel(new_shape), numel())
      << "reshape " << ShapeToString(shape_) << " -> "
      << ShapeToString(new_shape);
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;  // storage shared; reshape is a view of contiguous data
  return out;
}

Tensor Tensor::Transpose(int64_t axis0, int64_t axis1) const {
  if (axis0 < 0) axis0 += dim();
  if (axis1 < 0) axis1 += dim();
  std::vector<int64_t> perm(dim());
  std::iota(perm.begin(), perm.end(), 0);
  std::swap(perm[axis0], perm[axis1]);
  return Permute(perm);
}

Tensor Tensor::Permute(const std::vector<int64_t>& perm) const {
  TGCRN_CHECK_EQ(static_cast<int64_t>(perm.size()), dim());
  Shape out_shape(dim());
  for (int64_t d = 0; d < dim(); ++d) out_shape[d] = shape_[perm[d]];
  Tensor out(out_shape);
  if (numel() == 0) return out;
  const auto in_strides = StridesFor(shape_);
  std::vector<int64_t> permuted_strides(dim());
  for (int64_t d = 0; d < dim(); ++d) {
    permuted_strides[d] = in_strides[perm[d]];
  }
  const float* p = data();
  float* o = out.mutable_data();
  const int64_t rank = dim();
  common::ParallelFor(0, numel(), kElemwiseGrain, [&](int64_t s, int64_t e) {
    // Reconstruct the multi-index at the chunk start, then walk.
    std::vector<int64_t> index(rank, 0);
    int64_t in_off = 0;
    int64_t rem = s;
    for (int64_t d = rank - 1; d >= 0; --d) {
      index[d] = rem % out_shape[d];
      rem /= out_shape[d];
      in_off += index[d] * permuted_strides[d];
    }
    for (int64_t flat = s; flat < e; ++flat) {
      o[flat] = p[in_off];
      for (int64_t d = rank - 1; d >= 0; --d) {
        ++index[d];
        in_off += permuted_strides[d];
        if (index[d] < out_shape[d]) break;
        index[d] = 0;
        in_off -= permuted_strides[d] * out_shape[d];
      }
    }
  });
  return out;
}

Tensor Tensor::Unsqueeze(int64_t axis) const {
  if (axis < 0) axis += dim() + 1;
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LE(axis, dim());
  Shape s = shape_;
  s.insert(s.begin() + axis, 1);
  return Reshape(std::move(s));
}

Tensor Tensor::Squeeze(int64_t axis) const {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_EQ(shape_[axis], 1);
  Shape s = shape_;
  s.erase(s.begin() + axis);
  return Reshape(std::move(s));
}

Tensor Tensor::Slice(int64_t axis, int64_t start, int64_t end) const {
  if (axis < 0) axis += dim();
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, dim());
  TGCRN_CHECK_GE(start, 0);
  TGCRN_CHECK_LE(end, shape_[axis]);
  TGCRN_CHECK_LE(start, end);
  Shape out_shape = shape_;
  out_shape[axis] = end - start;
  Tensor out(out_shape);
  // View the tensor as [outer, axis_len, inner].
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= shape_[d];
  for (int64_t d = axis + 1; d < dim(); ++d) inner *= shape_[d];
  const int64_t axis_len = shape_[axis];
  const int64_t span = end - start;
  const float* p = data();
  float* o = out.mutable_data();
  for (int64_t ou = 0; ou < outer; ++ou) {
    const float* src = p + (ou * axis_len + start) * inner;
    float* dst = o + ou * span * inner;
    std::copy(src, src + span * inner, dst);
  }
  return out;
}

Tensor Tensor::BroadcastTo(const Shape& target) const {
  const Shape check = BroadcastShapes(shape_, target);
  TGCRN_CHECK(check == target)
      << "cannot broadcast " << ShapeToString(shape_) << " to "
      << ShapeToString(target);
  Tensor out(target);
  float* o = out.mutable_data();
  const float* p = data();
  BroadcastIterate(target, shape_, Shape{},  // second operand unused
                   [&](int64_t of, int64_t ia, int64_t) { o[of] = p[ia]; });
  return out;
}

Tensor Tensor::IndexSelect0(const std::vector<int64_t>& indices) const {
  TGCRN_CHECK_GE(dim(), 1);
  int64_t inner = 1;
  for (int64_t d = 1; d < dim(); ++d) inner *= shape_[d];
  Shape out_shape = shape_;
  out_shape[0] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);
  const float* p = data();
  float* o = out.mutable_data();
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    TGCRN_CHECK_GE(row, 0);
    TGCRN_CHECK_LT(row, shape_[0]);
    std::copy(p + row * inner, p + (row + 1) * inner, o + i * inner);
  }
  return out;
}

Tensor Tensor::Concat(const std::vector<Tensor>& tensors, int64_t axis) {
  TGCRN_CHECK(!tensors.empty());
  int64_t rank = tensors[0].dim();
  if (axis < 0) axis += rank;
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, rank);
  Shape out_shape = tensors[0].shape();
  int64_t total = 0;
  for (const auto& t : tensors) {
    TGCRN_CHECK_EQ(t.dim(), rank);
    for (int64_t d = 0; d < rank; ++d) {
      if (d != axis) {
        TGCRN_CHECK_EQ(t.shape()[d], out_shape[d])
            << "concat shape mismatch on axis " << d;
      }
    }
    total += t.shape()[axis];
  }
  out_shape[axis] = total;
  Tensor out(out_shape);
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= out_shape[d];
  for (int64_t d = axis + 1; d < rank; ++d) inner *= out_shape[d];
  float* o = out.mutable_data();
  int64_t written = 0;
  for (const auto& t : tensors) {
    const int64_t span = t.shape()[axis];
    const float* p = t.data();
    for (int64_t ou = 0; ou < outer; ++ou) {
      std::copy(p + ou * span * inner, p + (ou + 1) * span * inner,
                o + (ou * total + written) * inner);
    }
    written += span;
  }
  return out;
}

Tensor Tensor::Stack(const std::vector<Tensor>& tensors, int64_t axis) {
  TGCRN_CHECK(!tensors.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const auto& t : tensors) expanded.push_back(t.Unsqueeze(axis));
  return Concat(expanded, axis);
}

float Tensor::SumAll() const {
  // Deterministic chunked reduction: fixed chunking + fixed combine order
  // make the result bitwise identical at every thread count. Tensors of at
  // most one chunk reduce exactly like the legacy serial loop.
  TGCRN_TRACE_SCOPE("tensor.SumAll");
  obs::RecordKernelCost("tensor.SumAll", static_cast<double>(numel()),
                        4.0 * static_cast<double>(numel()));
  const float* p = data();
  return static_cast<float>(common::DeterministicChunkedSum(
      numel(), kReductionChunk, [p](int64_t begin, int64_t end) {
        double sum = 0.0;
        for (int64_t i = begin; i < end; ++i) sum += p[i];
        return sum;
      }));
}

float Tensor::MeanAll() const {
  TGCRN_CHECK_GT(numel(), 0);
  return SumAll() / static_cast<float>(numel());
}

float Tensor::MaxAll() const {
  TGCRN_CHECK_GT(numel(), 0);
  return *std::max_element(data_->begin(), data_->end());
}

float Tensor::MinAll() const {
  TGCRN_CHECK_GT(numel(), 0);
  return *std::min_element(data_->begin(), data_->end());
}

namespace {

// Reduces `t` along `axis` with init/accumulate/finalize functors.
template <typename Acc, typename Fin>
Tensor ReduceAxis(const Tensor& t, int64_t axis, bool keepdim, float init,
                  Acc acc, Fin fin) {
  int64_t rank = t.dim();
  if (axis < 0) axis += rank;
  TGCRN_CHECK_GE(axis, 0);
  TGCRN_CHECK_LT(axis, rank);
  Shape out_shape = t.shape();
  out_shape[axis] = 1;
  Tensor out(out_shape);
  int64_t outer = 1, inner = 1;
  for (int64_t d = 0; d < axis; ++d) outer *= t.shape()[d];
  for (int64_t d = axis + 1; d < rank; ++d) inner *= t.shape()[d];
  const int64_t span = t.shape()[axis];
  const float* p = t.data();
  float* o = out.mutable_data();
  // Parallel over output elements; each one runs the exact serial
  // accumulation over its span, so chunking never changes the result.
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, span));
  common::ParallelFor(
      0, outer * inner, grain, [&](int64_t begin, int64_t end) {
        for (int64_t oi = begin; oi < end; ++oi) {
          const int64_t ou = oi / inner;
          const int64_t in = oi % inner;
          float a = init;
          for (int64_t s = 0; s < span; ++s) {
            a = acc(a, p[(ou * span + s) * inner + in]);
          }
          o[oi] = fin(a, span);
        }
      });
  if (!keepdim) return out.Squeeze(axis);
  return out;
}

}  // namespace

Tensor Tensor::Sum(int64_t axis, bool keepdim) const {
  return ReduceAxis(
      *this, axis, keepdim, 0.0f, [](float a, float v) { return a + v; },
      [](float a, int64_t) { return a; });
}

Tensor Tensor::Mean(int64_t axis, bool keepdim) const {
  return ReduceAxis(
      *this, axis, keepdim, 0.0f, [](float a, float v) { return a + v; },
      [](float a, int64_t n) { return a / static_cast<float>(n); });
}

Tensor Tensor::Max(int64_t axis, bool keepdim) const {
  return ReduceAxis(
      *this, axis, keepdim, -std::numeric_limits<float>::infinity(),
      [](float a, float v) { return std::max(a, v); },
      [](float a, int64_t) { return a; });
}

Tensor Tensor::ReduceTo(const Shape& target) const {
  if (shape_ == target) return *this;
  Tensor result = *this;
  // Sum away extra leading dims.
  while (result.dim() > static_cast<int64_t>(target.size())) {
    result = result.Sum(0, /*keepdim=*/false);
  }
  // Sum over broadcast (size-1) dims.
  for (int64_t d = 0; d < result.dim(); ++d) {
    if (target[d] == 1 && result.shape()[d] != 1) {
      result = result.Sum(d, /*keepdim=*/true);
    } else {
      TGCRN_CHECK_EQ(target[d], result.shape()[d])
          << "ReduceTo mismatch " << ShapeToString(shape_) << " -> "
          << ShapeToString(target);
    }
  }
  return result;
}

Tensor Tensor::Softmax(int64_t axis) const {
  TGCRN_TRACE_SCOPE("tensor.Softmax");
  int64_t rank = dim();
  if (axis < 0) axis += rank;
  // Fast path for the last axis (the overwhelmingly common case: row
  // softmax of adjacency matrices and attention scores): single pass per
  // contiguous row instead of three broadcast kernels.
  if (axis == rank - 1 && rank >= 1) {
    const int64_t span = shape_[axis];
    const int64_t rows = span > 0 ? numel() / span : 0;
    // Nominal per-element cost of the single fused pass (max scan + exp +
    // sum + scale); the slow path below self-reports through Sub/Exp/Div.
    obs::RecordKernelCost("tensor.Softmax",
                          12.0 * static_cast<double>(rows) *
                              static_cast<double>(span),
                          8.0 * static_cast<double>(rows) *
                              static_cast<double>(span));
    Tensor out(shape_);
    const float* p = data();
    float* o = out.mutable_data();
    const int64_t grain =
        std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, span));
    common::ParallelFor(0, rows, grain, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const float* src = p + r * span;
        float* dst = o + r * span;
        float max_val = src[0];
        for (int64_t j = 1; j < span; ++j) {
          max_val = std::max(max_val, src[j]);
        }
        float sum = 0.0f;
        for (int64_t j = 0; j < span; ++j) {
          dst[j] = std::exp(src[j] - max_val);
          sum += dst[j];
        }
        const float inv = 1.0f / sum;
        for (int64_t j = 0; j < span; ++j) dst[j] *= inv;
      }
    });
    return out;
  }
  Tensor shifted = Sub(Max(axis, /*keepdim=*/true));
  Tensor exps = shifted.Exp();
  return exps.Div(exps.Sum(axis, /*keepdim=*/true));
}

namespace {

// Shape check shared by the fused gradient kernels: the fused path is the
// exact-shape (non-broadcast) case by contract.
void CheckSameShapes(const Tensor& a, const Tensor& b, const char* kernel) {
  TGCRN_CHECK(a.SameShape(b))
      << kernel << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

// Two-input fused elementwise kernel with the functor inlined.
template <typename Fn>
Tensor FusedBinary(const Tensor& x, const Tensor& y, Fn fn) {
  Tensor out(x.shape());
  float* o = out.mutable_data();
  const float* px = x.data();
  const float* py = y.data();
  common::ParallelFor(0, x.numel(), kElemwiseGrain,
                      [&](int64_t s, int64_t e) {
                        for (int64_t i = s; i < e; ++i) {
                          o[i] = fn(px[i], py[i]);
                        }
                      });
  return out;
}

}  // namespace

Tensor SigmoidGradKernel(const Tensor& y, const Tensor& g) {
  TGCRN_TRACE_SCOPE("tensor.SigmoidGrad");
  CheckSameShapes(y, g, "SigmoidGradKernel");
  obs::RecordKernelCost("tensor.SigmoidGrad",
                        3.0 * static_cast<double>(y.numel()),
                        12.0 * static_cast<double>(y.numel()));
  // (g*y)*(1-y) in the unfused chain's association order.
  return FusedBinary(y, g, [](float yv, float gv) {
    return (gv * yv) * (-yv + 1.0f);
  });
}

Tensor TanhGradKernel(const Tensor& y, const Tensor& g) {
  TGCRN_TRACE_SCOPE("tensor.TanhGrad");
  CheckSameShapes(y, g, "TanhGradKernel");
  obs::RecordKernelCost("tensor.TanhGrad",
                        3.0 * static_cast<double>(y.numel()),
                        12.0 * static_cast<double>(y.numel()));
  return FusedBinary(y, g, [](float yv, float gv) {
    return gv * (-(yv * yv) + 1.0f);
  });
}

Tensor ReluGradKernel(const Tensor& x, const Tensor& g) {
  TGCRN_TRACE_SCOPE("tensor.ReluGrad");
  CheckSameShapes(x, g, "ReluGradKernel");
  obs::RecordKernelCost("tensor.ReluGrad", static_cast<double>(x.numel()),
                        12.0 * static_cast<double>(x.numel()));
  return FusedBinary(x, g, [](float xv, float gv) {
    return xv > 0.0f ? gv : 0.0f;
  });
}

Tensor SoftmaxGradKernel(const Tensor& y, const Tensor& g) {
  TGCRN_TRACE_SCOPE("tensor.SoftmaxGrad");
  CheckSameShapes(y, g, "SoftmaxGradKernel");
  obs::RecordKernelCost("tensor.SoftmaxGrad",
                        4.0 * static_cast<double>(y.numel()),
                        12.0 * static_cast<double>(y.numel()));
  TGCRN_CHECK_GE(y.dim(), 1);
  const int64_t span = y.shape()[y.dim() - 1];
  const int64_t rows = span > 0 ? y.numel() / span : 0;
  Tensor out(y.shape());
  const float* py = y.data();
  const float* pg = g.data();
  float* o = out.mutable_data();
  const int64_t grain =
      std::max<int64_t>(1, kElemwiseGrain / std::max<int64_t>(1, span));
  // One pass per contiguous row; the row sum keeps the serial accumulation
  // order, so chunking across rows never changes any output bit.
  common::ParallelFor(0, rows, grain, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const float* yrow = py + r * span;
      const float* grow = pg + r * span;
      float* orow = o + r * span;
      float sum = 0.0f;
      for (int64_t j = 0; j < span; ++j) sum += grow[j] * yrow[j];
      for (int64_t j = 0; j < span; ++j) {
        orow[j] = yrow[j] * (grow[j] - sum);
      }
    }
  });
  return out;
}

Tensor DivGradRhsKernel(const Tensor& g, const Tensor& a, const Tensor& b) {
  TGCRN_TRACE_SCOPE("tensor.DivGradRhs");
  CheckSameShapes(g, a, "DivGradRhsKernel");
  CheckSameShapes(g, b, "DivGradRhsKernel");
  obs::RecordKernelCost("tensor.DivGradRhs",
                        4.0 * static_cast<double>(g.numel()),
                        16.0 * static_cast<double>(g.numel()));
  Tensor out(g.shape());
  float* o = out.mutable_data();
  const float* pg = g.data();
  const float* pa = a.data();
  const float* pb = b.data();
  common::ParallelFor(0, g.numel(), kElemwiseGrain,
                      [&](int64_t s, int64_t e) {
                        for (int64_t i = s; i < e; ++i) {
                          o[i] = ((pg[i] * pa[i]) / (pb[i] * pb[i])) * -1.0f;
                        }
                      });
  return out;
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  TGCRN_CHECK(a.SameShape(b))
      << ShapeToString(a.shape_) << " vs " << ShapeToString(b.shape_);
  float max_diff = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(pa[i] - pb[i]));
  }
  return max_diff;
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (!SameShape(other)) return false;
  return MaxAbsDiff(*this, other) <= atol;
}

bool Tensor::HasNonFinite() const {
  for (float v : *data_) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::string Tensor::ToString(int64_t max_elements) const {
  std::ostringstream out;
  out << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << (*data_)[i];
  }
  if (n < numel()) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace tgcrn
