// Copyright 2026 TGCRN Reproduction Authors
// Size-bucketed free-list of tensor storage buffers. Training builds and
// tears down the same computation graph every step, so the allocator sees
// the same sequence of sizes over and over; recycling buffers turns the
// per-step malloc/free churn (hundreds of heap round-trips per batch) into
// lock-protected free-list pops.
//
// Design:
//  * Buffers are std::vector<float> heap objects bucketed by capacity
//    rounded up to a power of two. Requests below the pooled minimum
//    (default 256 elements) bypass the pool — for training workloads the
//    malloc fast path already wins there. Latency-critical inference
//    (src/serve) lowers the floor with SetMinPooledElements so that even
//    the sub-256-element temporaries of a forecast step (per-sample trend
//    factors, small batch rows) are recycled and the steady state makes
//    zero heap allocations per request.
//  * Acquire returns storage as shared_ptr whose deleter routes the buffer
//    back to the pool instead of freeing it, so Tensor's storage-sharing
//    semantics are unchanged.
//  * Every handed-out buffer is fully (re)initialized (zero-fill or copy)
//    before it escapes, so pooled and fresh storage are bit-identical and
//    the bitwise-determinism contract in tensor.h is unaffected.
//  * Retained bytes are capped (TGCRN_TENSOR_POOL_MAX_MB, default 512);
//    releases beyond the cap free the buffer instead of caching it.
//  * TGCRN_TENSOR_POOL=0 disables recycling entirely (every Acquire
//    allocates, every release frees); SetEnabled flips it at runtime.
//
// Observability: tensor.pool_hit / tensor.pool_miss / tensor.pool_bytes_reused
// counters in the global metric registry, plus GetStats() for tests.
// tensor.allocations / tensor.allocated_bytes count only real heap
// allocations (pool misses and bypasses), which is what makes the pool's
// effect visible as an alloc-count drop per training step.
#ifndef TGCRN_TENSOR_BUFFER_POOL_H_
#define TGCRN_TENSOR_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace tgcrn {

class TensorBufferPool {
 public:
  // Process-global pool (leaked, like the metric registry, so storage
  // deleters that fire during static destruction stay safe).
  static TensorBufferPool& Global();

  // Zero-filled storage of exactly `numel` elements.
  std::shared_ptr<std::vector<float>> AcquireZeroed(int64_t numel);
  // Storage holding a copy of src[0, numel).
  std::shared_ptr<std::vector<float>> AcquireCopy(const float* src,
                                                  int64_t numel);
  // Storage of `numel` elements with UNSPECIFIED contents, for callers
  // that provably write every element before the buffer escapes (the
  // GEMM driver: every kernel fully overwrites its output rows). Skips
  // the zero-fill AcquireZeroed pays — free on recycled buffers, which
  // is what makes small-matmul-heavy steps measurably faster. The
  // determinism contract still holds because the caller's writes, not
  // the buffer's history, define every bit that escapes.
  std::shared_ptr<std::vector<float>> AcquireForOverwrite(int64_t numel);

  // Runtime switch (initialized from TGCRN_TENSOR_POOL; "0" disables).
  // Disabling drops every cached buffer.
  void SetEnabled(bool enabled);
  bool enabled() const;

  // Smallest request (in elements) served from the pool; anything below
  // bypasses it and heap-allocates. Rounded up to a power of two and
  // clamped to [1, 2^30]. Default 256 — training keeps the malloc fast
  // path for tiny scalars; the serve session lowers the floor to 1 so
  // every per-request temporary is pool-served (the zero-alloc steady
  // state contract, docs/SERVING.md). Raising the floor frees cached
  // buffers that fall below it.
  void SetMinPooledElements(int64_t numel);
  int64_t min_pooled_elements() const;
  // Re-reads TGCRN_TENSOR_POOL from the environment (test hook for the
  // opt-out path; the env var is otherwise read once at startup).
  void ReloadEnabledFromEnv();

  // Frees every cached buffer (retained bytes drop to zero).
  void Clear();

  struct Stats {
    int64_t hits = 0;            // acquires served from the free lists
    int64_t misses = 0;          // acquires that hit the heap
    int64_t bytes_reused = 0;    // bytes served from the free lists
    int64_t cached_buffers = 0;  // buffers currently parked in the pool
    int64_t cached_bytes = 0;    // their total capacity in bytes
  };
  Stats GetStats() const;

  TensorBufferPool(const TensorBufferPool&) = delete;
  TensorBufferPool& operator=(const TensorBufferPool&) = delete;

 private:
  TensorBufferPool();
  ~TensorBufferPool() = default;

  // shared_ptr deleter: recycles into the global pool (or frees).
  static void ReleaseToGlobal(std::vector<float>* buf);
  // Wraps a ready buffer in a pool-returning handle.
  static std::shared_ptr<std::vector<float>> WrapHandle(
      std::vector<float>* buf);
  // Pops a cached buffer able to hold `numel` elements, or nullptr.
  std::vector<float>* TryPop(int64_t numel);
  // Heap-allocates a buffer with bucket-rounded capacity.
  std::vector<float>* AllocateFresh(int64_t numel);
  void Release(std::vector<float>* buf);

  struct Impl;
  Impl* impl_;
};

}  // namespace tgcrn

#endif  // TGCRN_TENSOR_BUFFER_POOL_H_
