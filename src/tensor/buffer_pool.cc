// Copyright 2026 TGCRN Reproduction Authors
#include "tensor/buffer_pool.h"

#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace tgcrn {
namespace {

// Default smallest pooled request: 2^8 = 256 elements (1 KiB). Requests
// below the floor bypass the pool — the malloc fast path already wins
// there for training. SetMinPooledElements lowers the floor for serving,
// where every per-request temporary must be recycled.
constexpr int kDefaultMinPooledLog2 = 8;
// Largest bucket: 2^30 elements (4 GiB). Larger requests bypass the pool.
constexpr int kMaxBucketLog2 = 30;
// Bucket index i holds buffers of capacity 2^i; the full range [2^0, 2^30]
// is always addressable, the runtime floor just rules out the low buckets.
constexpr int kNumBuckets = kMaxBucketLog2 + 1;

constexpr int64_t kDefaultMaxRetainedBytes = 512ll * 1024 * 1024;

// Bucket index for a request of `numel` elements (smallest power of two
// >= numel); -1 when the request is outside the pooled range.
int BucketForNumel(int64_t numel, int min_log2) {
  if (numel < (1ll << min_log2) || numel > (1ll << kMaxBucketLog2)) {
    return -1;
  }
  int log2 = min_log2;
  while ((1ll << log2) < numel) ++log2;
  return log2;
}

// Bucket a released buffer of `capacity` elements belongs to: the largest
// bucket whose size fits inside the capacity (the buffer can then serve
// any request up to that size); -1 if below the pooled minimum.
int BucketForCapacity(int64_t capacity, int min_log2) {
  if (capacity < (1ll << min_log2)) return -1;
  int log2 = min_log2;
  while (log2 < kMaxBucketLog2 && (1ll << (log2 + 1)) <= capacity) ++log2;
  return log2;
}

struct PoolCounters {
  obs::Counter* hit;
  obs::Counter* miss;
  obs::Counter* bytes_reused;
  obs::Counter* allocations;
  obs::Counter* allocated_bytes;
};

PoolCounters& Counters() {
  static PoolCounters counters{
      obs::Registry::Global().GetCounter("tensor.pool_hit"),
      obs::Registry::Global().GetCounter("tensor.pool_miss"),
      obs::Registry::Global().GetCounter("tensor.pool_bytes_reused"),
      obs::Registry::Global().GetCounter("tensor.allocations"),
      obs::Registry::Global().GetCounter("tensor.allocated_bytes"),
  };
  return counters;
}

bool EnabledFromEnv() {
  const char* env = std::getenv("TGCRN_TENSOR_POOL");
  return env == nullptr || std::string(env) != "0";
}

int64_t MaxRetainedBytesFromEnv() {
  const char* env = std::getenv("TGCRN_TENSOR_POOL_MAX_MB");
  if (env == nullptr) return kDefaultMaxRetainedBytes;
  const long long mb = std::atoll(env);
  return mb > 0 ? mb * 1024ll * 1024ll : kDefaultMaxRetainedBytes;
}

}  // namespace

struct TensorBufferPool::Impl {
  mutable std::mutex mu;
  std::vector<std::vector<float>*> free_lists[kNumBuckets];
  // Runtime pooled-size floor as a bucket log2, read on the allocation
  // fast path (relaxed: the floor is a coarse policy knob, not a
  // synchronization point; callers flip it at session setup, not
  // mid-request).
  std::atomic<int> min_pooled_log2{kDefaultMinPooledLog2};
  bool enabled = true;
  int64_t max_retained_bytes = kDefaultMaxRetainedBytes;
  int64_t retained_bytes = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t bytes_reused = 0;
};

TensorBufferPool::TensorBufferPool() : impl_(new Impl) {
  impl_->enabled = EnabledFromEnv();
  impl_->max_retained_bytes = MaxRetainedBytesFromEnv();
}

TensorBufferPool& TensorBufferPool::Global() {
  // Leaked: storage deleters may fire after static destructors run.
  static TensorBufferPool* pool = new TensorBufferPool();
  return *pool;
}

std::vector<float>* TensorBufferPool::TryPop(int64_t numel) {
  const int bucket = BucketForNumel(
      numel, impl_->min_pooled_log2.load(std::memory_order_relaxed));
  if (bucket < 0) return nullptr;
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->enabled) return nullptr;
  // Exact bucket first, then one size up (a 2x-oversized buffer still
  // beats a heap round-trip; beyond that the waste dominates).
  for (int b = bucket; b < kNumBuckets && b <= bucket + 1; ++b) {
    if (impl_->free_lists[b].empty()) continue;
    std::vector<float>* buf = impl_->free_lists[b].back();
    impl_->free_lists[b].pop_back();
    impl_->retained_bytes -=
        static_cast<int64_t>(buf->capacity()) * sizeof(float);
    ++impl_->hits;
    impl_->bytes_reused += numel * static_cast<int64_t>(sizeof(float));
    return buf;
  }
  return nullptr;
}

std::vector<float>* TensorBufferPool::AllocateFresh(int64_t numel) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ++impl_->misses;
  }
  PoolCounters& counters = Counters();
  counters.miss->Add(1);
  counters.allocations->Add(1);
  counters.allocated_bytes->Add(numel * static_cast<int64_t>(sizeof(float)));
  auto* buf = new std::vector<float>();
  const int bucket = BucketForNumel(
      numel, impl_->min_pooled_log2.load(std::memory_order_relaxed));
  // Round the capacity up to the bucket size so the buffer can serve any
  // future request in its bucket.
  if (bucket >= 0) buf->reserve(1ull << bucket);
  return buf;
}

void TensorBufferPool::Release(std::vector<float>* buf) {
  const int bucket = BucketForCapacity(
      static_cast<int64_t>(buf->capacity()),
      impl_->min_pooled_log2.load(std::memory_order_relaxed));
  const int64_t bytes =
      static_cast<int64_t>(buf->capacity()) * sizeof(float);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->enabled && bucket >= 0 &&
        impl_->retained_bytes + bytes <= impl_->max_retained_bytes) {
      impl_->free_lists[bucket].push_back(buf);
      impl_->retained_bytes += bytes;
      return;
    }
  }
  delete buf;
}

void TensorBufferPool::ReleaseToGlobal(std::vector<float>* buf) {
  Global().Release(buf);
}

std::shared_ptr<std::vector<float>> TensorBufferPool::WrapHandle(
    std::vector<float>* buf) {
  return std::shared_ptr<std::vector<float>>(buf, &ReleaseToGlobal);
}

std::shared_ptr<std::vector<float>> TensorBufferPool::AcquireZeroed(
    int64_t numel) {
  if (std::vector<float>* buf = TryPop(numel)) {
    PoolCounters& counters = Counters();
    counters.hit->Add(1);
    counters.bytes_reused->Add(numel * static_cast<int64_t>(sizeof(float)));
    buf->assign(static_cast<size_t>(numel), 0.0f);
    return WrapHandle(buf);
  }
  std::vector<float>* buf = AllocateFresh(numel);
  buf->assign(static_cast<size_t>(numel), 0.0f);
  return WrapHandle(buf);
}

std::shared_ptr<std::vector<float>> TensorBufferPool::AcquireForOverwrite(
    int64_t numel) {
  if (std::vector<float>* buf = TryPop(numel)) {
    PoolCounters& counters = Counters();
    counters.hit->Add(1);
    counters.bytes_reused->Add(numel * static_cast<int64_t>(sizeof(float)));
    // Shrinking is free and leaves old contents; growing zero-fills only
    // the delta. Either way the caller overwrites everything.
    buf->resize(static_cast<size_t>(numel));
    return WrapHandle(buf);
  }
  std::vector<float>* buf = AllocateFresh(numel);
  buf->resize(static_cast<size_t>(numel));
  return WrapHandle(buf);
}

std::shared_ptr<std::vector<float>> TensorBufferPool::AcquireCopy(
    const float* src, int64_t numel) {
  if (std::vector<float>* buf = TryPop(numel)) {
    PoolCounters& counters = Counters();
    counters.hit->Add(1);
    counters.bytes_reused->Add(numel * static_cast<int64_t>(sizeof(float)));
    buf->assign(src, src + numel);
    return WrapHandle(buf);
  }
  std::vector<float>* buf = AllocateFresh(numel);
  buf->assign(src, src + numel);
  return WrapHandle(buf);
}

void TensorBufferPool::SetEnabled(bool enabled) {
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    drop = impl_->enabled && !enabled;
    impl_->enabled = enabled;
  }
  if (drop) Clear();
}

bool TensorBufferPool::enabled() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->enabled;
}

void TensorBufferPool::ReloadEnabledFromEnv() { SetEnabled(EnabledFromEnv()); }

void TensorBufferPool::SetMinPooledElements(int64_t numel) {
  int log2 = 0;
  while (log2 < kMaxBucketLog2 && (1ll << log2) < numel) ++log2;
  impl_->min_pooled_log2.store(log2, std::memory_order_relaxed);
  // Cached buffers below the new floor can never be popped again (their
  // buckets are unreachable); free them instead of stranding the bytes.
  std::vector<std::vector<float>*> doomed;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (int b = 0; b < log2 && b < kNumBuckets; ++b) {
      for (std::vector<float>* buf : impl_->free_lists[b]) {
        impl_->retained_bytes -=
            static_cast<int64_t>(buf->capacity()) * sizeof(float);
        doomed.push_back(buf);
      }
      impl_->free_lists[b].clear();
    }
  }
  for (std::vector<float>* buf : doomed) delete buf;
}

int64_t TensorBufferPool::min_pooled_elements() const {
  return 1ll << impl_->min_pooled_log2.load(std::memory_order_relaxed);
}

void TensorBufferPool::Clear() {
  std::vector<std::vector<float>*> doomed;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (auto& list : impl_->free_lists) {
      doomed.insert(doomed.end(), list.begin(), list.end());
      list.clear();
    }
    impl_->retained_bytes = 0;
  }
  for (std::vector<float>* buf : doomed) delete buf;
}

TensorBufferPool::Stats TensorBufferPool::GetStats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Stats stats;
  stats.hits = impl_->hits;
  stats.misses = impl_->misses;
  stats.bytes_reused = impl_->bytes_reused;
  stats.cached_bytes = impl_->retained_bytes;
  for (const auto& list : impl_->free_lists) {
    stats.cached_buffers += static_cast<int64_t>(list.size());
  }
  return stats;
}

}  // namespace tgcrn
