// Copyright 2026 TGCRN Reproduction Authors
// A contiguous, row-major float32 N-dimensional array with NumPy-style
// broadcasting, batched matrix multiplication, reductions and shape
// manipulation. This is the storage substrate for the autograd engine in
// src/autograd; all deep-learning math in the repository bottoms out here.
//
// Design notes:
//  * Storage is shared (copy is O(1)); mutating ops are explicit (`*Inplace`
//    suffix) and require unique use sites — the autograd layer never aliases
//    a tensor it mutates.
//  * Shape errors are programmer errors and abort via TGCRN_CHECK.
//  * Hot kernels (matmul, elementwise, reductions, softmax, permute) run on
//    the fixed-size pool in common/thread_pool.h, width controlled by
//    TGCRN_NUM_THREADS / common::SetNumThreads (1 = serial).
//  * Matmul and Exp/Sigmoid/Tanh dispatch to ISA-specific SIMD kernels
//    (tensor/kernels/, selected by TGCRN_ISA / CPUID — see
//    common/cpu_features.h). The determinism contract: outputs are
//    bitwise identical at every thread count and pool/arena toggle *at a
//    fixed ISA level* — per-element accumulation structure depends only
//    on the shapes, and full reductions use a fixed-chunk tree. ISA
//    levels may differ from each other in the last bits (FMA
//    contraction); TGCRN_ISA=scalar reproduces the legacy serial
//    arithmetic exactly.
//  * Storage is recycled through the size-bucketed buffer pool in
//    tensor/buffer_pool.h (TGCRN_TENSOR_POOL=0 opts out). Pooled buffers
//    are fully re-initialized before reuse, so the determinism contract
//    holds with the pool on or off.
#ifndef TGCRN_TENSOR_TENSOR_H_
#define TGCRN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace tgcrn {

using Shape = std::vector<int64_t>;

// Minimum elements per ParallelFor chunk for elementwise kernels; below
// this the dispatch overhead outweighs the work. Grain only affects chunk
// boundaries, never results.
inline constexpr int64_t kElemwiseGrain = 1024;

// Returns a human-readable form like "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

// Returns the number of elements implied by `shape` (1 for rank-0).
int64_t ShapeNumel(const Shape& shape);

// Computes the NumPy broadcast of two shapes; aborts if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

class Tensor {
 public:
  // Default-constructed tensor is empty (rank 1, zero elements).
  Tensor();

  // Uninitialized-content tensor of the given shape (values are zero).
  explicit Tensor(Shape shape);

  // --- Factories -----------------------------------------------------------
  // Tensor whose contents are UNSPECIFIED (recycled-buffer leftovers).
  // Strictly for kernels that overwrite every element before the tensor
  // escapes (the matmul driver); skips the zero-fill Zeros pays.
  static Tensor ForOverwrite(Shape shape);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);  // rank-0 tensor
  // Takes ownership of `values`; numel must match the shape.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  // [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor Arange(int64_t n);
  // Identity matrix of size n x n.
  static Tensor Eye(int64_t n);
  // Uniform in [lo, hi).
  static Tensor RandUniform(Shape shape, float lo, float hi, Rng* rng);
  // Normal(mean, stddev).
  static Tensor RandNormal(Shape shape, float mean, float stddev, Rng* rng);

  // --- Introspection -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_->size()); }
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // Raw contiguous storage (row-major).
  const float* data() const { return data_->data(); }
  float* mutable_data() { return data_->data(); }

  // Element access by flat index.
  float flat(int64_t index) const {
    TGCRN_CHECK_GE(index, 0);
    TGCRN_CHECK_LT(index, numel());
    return (*data_)[index];
  }
  void set_flat(int64_t index, float value) {
    TGCRN_CHECK_GE(index, 0);
    TGCRN_CHECK_LT(index, numel());
    (*data_)[index] = value;
  }

  // Element access by multi-index.
  float at(const std::vector<int64_t>& index) const;
  void set(const std::vector<int64_t>& index, float value);

  // Value of a rank-0 or single-element tensor.
  float item() const;

  // Deep copy (fresh storage).
  Tensor Clone() const;

  // --- Elementwise (broadcasting) ------------------------------------------
  Tensor Add(const Tensor& other) const;
  Tensor Sub(const Tensor& other) const;
  Tensor Mul(const Tensor& other) const;
  Tensor Div(const Tensor& other) const;
  Tensor AddScalar(float value) const;
  Tensor MulScalar(float value) const;
  Tensor Neg() const { return MulScalar(-1.0f); }
  Tensor Maximum(const Tensor& other) const;
  Tensor Minimum(const Tensor& other) const;

  // Applies `fn` to every element through a type-erased std::function
  // (one virtual-ish dispatch per element). Prefer MapT in hot code.
  Tensor Map(const std::function<float(float)>& fn) const;

  // Templated elementwise map: the functor is inlined into the parallel
  // kernel loop, so there is no per-element dispatch. All named unary ops
  // (Exp, Sigmoid, ...) route through this.
  template <typename F>
  Tensor MapT(F fn) const {
    Tensor out(shape_);
    float* o = out.mutable_data();
    const float* p = data();
    common::ParallelFor(0, numel(), kElemwiseGrain,
                        [&](int64_t s, int64_t e) {
                          for (int64_t i = s; i < e; ++i) o[i] = fn(p[i]);
                        });
    return out;
  }

  Tensor Exp() const;
  Tensor Log() const;  // natural log; inputs must be > 0
  Tensor Sqrt() const;
  Tensor Abs() const;
  Tensor Tanh() const;
  Tensor Sigmoid() const;
  Tensor Relu() const;
  Tensor Pow(float exponent) const;

  // In-place accumulation: this += other (shapes must match exactly).
  void AddInplace(const Tensor& other);
  // Axpy: this += alpha * other (shapes must match exactly). Single pass,
  // no temporary.
  void AddScaledInplace(const Tensor& other, float alpha);
  // Fused multiply-accumulate: this += a * b elementwise (all shapes must
  // match exactly). Single pass, no temporary.
  void AddProductInplace(const Tensor& a, const Tensor& b);
  // Adds `other` into the sub-range [start, start+other.size(axis)) along
  // `axis`; the other dims must match. Used by slice/concat backward.
  void AddSliceInplace(int64_t axis, int64_t start, const Tensor& other);
  // Row scatter-add: this[indices[i]] += other[i]. Used by embedding
  // backward. `other` must have shape [indices.size(), ...rest of this].
  void IndexAdd0Inplace(const std::vector<int64_t>& indices,
                        const Tensor& other);
  // In-place scale: this *= value.
  void ScaleInplace(float value);
  // In-place fill.
  void FillInplace(float value);

  // --- Linear algebra ------------------------------------------------------
  // Batched matmul: (..., m, k) x (..., k, n) -> (..., m, n), with NumPy
  // broadcasting over the leading batch dimensions. Rank of both operands
  // must be >= 2.
  Tensor Matmul(const Tensor& other) const;

  // Transposed-operand matmuls for the backward pass: the transposed side
  // is read through strides, so no transpose copy is ever materialized.
  // this^T x other: (..., r, m) x (..., r, n) -> (..., m, n).
  Tensor MatmulTransposeA(const Tensor& other) const;
  // this x other^T: (..., m, k) x (..., n, k) -> (..., m, n).
  Tensor MatmulTransposeB(const Tensor& other) const;

  // --- Shape manipulation --------------------------------------------------
  // Reshape to a compatible shape (same numel). One dim may be -1.
  Tensor Reshape(Shape new_shape) const;
  // Swap two axes (copies into a fresh contiguous tensor).
  Tensor Transpose(int64_t axis0, int64_t axis1) const;
  // General permutation of axes.
  Tensor Permute(const std::vector<int64_t>& perm) const;
  // Insert a length-1 axis at `axis`.
  Tensor Unsqueeze(int64_t axis) const;
  // Remove a length-1 axis at `axis`.
  Tensor Squeeze(int64_t axis) const;
  // Sub-range along `axis`: [start, end).
  Tensor Slice(int64_t axis, int64_t start, int64_t end) const;
  // Broadcast this tensor to a larger shape (materializes a copy).
  Tensor BroadcastTo(const Shape& target) const;
  // Select rows of the first axis by integer indices (embedding gather).
  Tensor IndexSelect0(const std::vector<int64_t>& indices) const;

  // Concatenate along `axis`; all inputs must agree on the other dims.
  static Tensor Concat(const std::vector<Tensor>& tensors, int64_t axis);
  // Stack along a new leading axis at `axis`.
  static Tensor Stack(const std::vector<Tensor>& tensors, int64_t axis);

  // --- Reductions ----------------------------------------------------------
  float SumAll() const;
  float MeanAll() const;
  float MaxAll() const;
  float MinAll() const;
  // Sum over one axis; keeps the axis as size 1 when keepdim.
  Tensor Sum(int64_t axis, bool keepdim = false) const;
  Tensor Mean(int64_t axis, bool keepdim = false) const;
  Tensor Max(int64_t axis, bool keepdim = false) const;
  // Reduces this tensor (a gradient) to `target` shape by summing over
  // broadcast dimensions. Used by autograd for broadcast backward.
  Tensor ReduceTo(const Shape& target) const;

  // Softmax along `axis` (numerically stabilized).
  Tensor Softmax(int64_t axis) const;

  // --- Utilities -----------------------------------------------------------
  // Max |a - b| over all elements; shapes must match.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;
  // True if any element is NaN or Inf.
  bool HasNonFinite() const;
  std::string ToString(int64_t max_elements = 64) const;

 private:
  int64_t FlatIndex(const std::vector<int64_t>& index) const;

  Shape shape_;
  std::shared_ptr<std::vector<float>> data_;
};

// --- Fused gradient kernels ------------------------------------------------
// Single-pass backward kernels for the autograd layer: each computes in one
// ParallelFor sweep what the naive closure builds out of 3-4 allocating
// elementwise temporaries. All inputs must share one shape (the fused path
// is the non-broadcast case; broadcasting callers fall back to the op
// chain). Per-element arithmetic keeps the unfused chains' association
// order, so values match the chains exactly (ReluGradKernel may differ
// from the mask-multiply chain only in the sign of zeros).

// g * y * (1 - y), where y = sigmoid(x).
Tensor SigmoidGradKernel(const Tensor& y, const Tensor& g);
// g * (1 - y^2), where y = tanh(x).
Tensor TanhGradKernel(const Tensor& y, const Tensor& g);
// g where x > 0, else 0.
Tensor ReluGradKernel(const Tensor& x, const Tensor& g);
// Per-row softmax backward along the LAST axis: y * (g - sum(g * y, -1)).
// The row sum is accumulated serially per row, so results are bitwise
// identical at every thread count.
Tensor SoftmaxGradKernel(const Tensor& y, const Tensor& g);
// -g * a / b^2 (the d(a/b)/db closure).
Tensor DivGradRhsKernel(const Tensor& g, const Tensor& a, const Tensor& b);

}  // namespace tgcrn

#endif  // TGCRN_TENSOR_TENSOR_H_
