// Copyright 2026 TGCRN Reproduction Authors
// The GEMM microkernel core under BatchedMatmulImpl (tensor/tensor.cc).
// One kernel table per ISA level (common/cpu_features.h); the batched
// driver stays ISA-agnostic: it picks a table once per call, packs the
// B operand into panels, and parallelizes over output rows exactly as
// before, so the thread-pool chunking, the transposed-operand modes and
// the fused gradient layers all sit on top unchanged.
//
// Layouts and blocking:
//  * Packed B: the logical (k x n) right operand is repacked into
//    ceil(n / kNr) panels of kNr columns; panel p stores elements in
//    [kk][j] order (packed[p * k * kNr + kk * kNr + j]), zero-padded to
//    kNr in the ragged last panel. Pads are never read back into valid
//    outputs. Packing reads B row-major (transpose_b=false) or
//    column-major from a (n x k) buffer (transpose_b=true), so the
//    transposed modes never materialize a transpose copy.
//  * gemm_rows: computes output rows [i0, i1) of one matrix against a
//    packed B. Internally blocks rows by kMr and the reduce dim by kKc
//    (packing an A sliver on the stack); the AVX2 version keeps a
//    kMr x kNr accumulator tile in registers.
//  * gemm_rows_direct / dot_rows: no-packing paths for tall-skinny
//    outputs (m < kSmallMCutover), where packing traffic would rival
//    the whole multiply: direct reads B (k x n) row-major in place;
//    dot computes c[i][j] = <a_row_i, b_row_j> from two row-major
//    operands (the m=1 GCGRU backward shape).
//
// Determinism: per output element, every kernel accumulates over the
// reduce dim in ascending k order with a structure that depends only on
// the shapes — never on thread count, chunk boundaries or row-block
// phase — so results are bitwise identical across thread counts at a
// fixed ISA. The scalar kernels use separate multiply and add (no FMA)
// and reproduce the legacy serial loops bit for bit; the AVX2 kernels
// contract to FMA and may differ from scalar in the last bits.
#ifndef TGCRN_TENSOR_KERNELS_GEMM_H_
#define TGCRN_TENSOR_KERNELS_GEMM_H_

#include <cstdint>

#include "common/cpu_features.h"

namespace tgcrn {
namespace gemm {

// Packed-panel width (columns per panel). Also the AVX2 register-tile
// width: two 8-lane ymm accumulators per row.
inline constexpr int64_t kNr = 16;
// Register-tile height: rows computed together in the microkernel.
inline constexpr int64_t kMr = 6;
// Reduce-dim cache block: the A sliver packed on the stack is
// kMr * kKc floats (~6 KiB), and a kKc x kNr B panel slice is 16 KiB.
inline constexpr int64_t kKc = 256;
// Outputs with fewer rows than this skip packing entirely (the packing
// traffic would be comparable to the whole multiply).
inline constexpr int64_t kSmallMCutover = 8;

// Elements needed for a packed copy of a logical (k x n) B operand.
inline int64_t PackedBCount(int64_t k, int64_t n) {
  const int64_t panels = (n + kNr - 1) / kNr;
  return panels * k * kNr;
}

// Kernel table for one ISA level. A is addressed as the *logical*
// (m x k) left operand: element (i, kk) lives at
// a[i * a_row_stride + kk * a_col_stride] — (k, 1) for a row-major A,
// (1, m) for the transpose-A mode reading a (k x m) buffer in place.
struct Kernels {
  // Packs logical (k x n) B into panels as described above.
  // transpose_b: the source buffer is (n x k) row-major.
  void (*pack_b)(const float* b, int64_t k, int64_t n, bool transpose_b,
                 float* out);
  // C rows [i0, i1): c[i * n + j] = sum_kk A(i, kk) * B_packed(kk, j).
  void (*gemm_rows)(const float* a, int64_t a_row_stride,
                    int64_t a_col_stride, const float* packed_b, int64_t i0,
                    int64_t i1, int64_t k, int64_t n, float* c);
  // Same contract, but B is read in place as a (k x n) row-major buffer.
  void (*gemm_rows_direct)(const float* a, int64_t a_row_stride,
                           int64_t a_col_stride, const float* b, int64_t i0,
                           int64_t i1, int64_t k, int64_t n, float* c);
  // C rows [i0, i1) of A (m x k, row-major) times B^T (B is n x k,
  // row-major): c[i * n + j] = <a_row_i, b_row_j>.
  void (*dot_rows)(const float* a, const float* b, int64_t i0, int64_t i1,
                   int64_t k, int64_t n, float* c);
  // Batched m=1 path (the GCGRU per-node shape: a batch of row vectors
  // times a batch of (k x n) matrices). Computes output matrices
  // [mat0, mat1), one n-wide row each:
  //   c[mi * n + j] = sum_kk a[a_mats[mi] * a_elems + kk]
  //                        * b[b_mats[mi] * b_elems + kk * n + j]
  // A null a_mats/b_mats means the identity map (matrix mi reads operand
  // matrix mi — the no-broadcast case). The matrix loop lives inside the
  // kernel so the driver pays one indirect call per chunk instead of one
  // per output row. Arithmetic per element is identical to
  // gemm_rows_direct.
  void (*m1_batch)(const float* a, const int64_t* a_mats, int64_t a_elems,
                   const float* b, const int64_t* b_mats, int64_t b_elems,
                   int64_t mat0, int64_t mat1, int64_t k, int64_t n, float* c);
};

// Table for `isa`; silently degrades to the scalar table when the AVX2
// kernels are compiled out (ActiveSimdIsa() never asks for more than
// the build supports, so this is belt and braces).
const Kernels& GetKernels(common::SimdIsa isa);

namespace internal {
// Panel packing is a pure copy, shared by both tables (gemm_scalar.cc).
void PackBPortable(const float* b, int64_t k, int64_t n, bool transpose_b,
                   float* out);
// Defined in gemm_avx2.cc: the AVX2 table, or nullptr when compiled out.
const Kernels* Avx2KernelsOrNull();
}  // namespace internal

}  // namespace gemm
}  // namespace tgcrn

#endif  // TGCRN_TENSOR_KERNELS_GEMM_H_
