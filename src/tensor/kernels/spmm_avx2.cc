// Copyright 2026 TGCRN Reproduction Authors
// AVX2/FMA SpMM kernels. Compiled with -mavx2 -mfma only when the build
// enables them (src/CMakeLists.txt); otherwise this translation unit
// degrades to a stub table so the dispatch symbol always links.
//
// Each kernel vectorizes over the feature dimension c with 8-lane FMA
// chains; slots are consumed in ascending order exactly like the scalar
// anchor, so at a fixed ISA the results are bitwise identical across
// thread counts (the lanes never interact until the horizontal sum in
// the value-gradient kernel, which reduces a fixed-width register in a
// fixed order). FMA contraction may change the last bits relative to
// TGCRN_ISA=scalar — the repository-wide ISA contract.
#include "tensor/kernels/spmm.h"

#if !defined(TGCRN_DISABLE_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace tgcrn {
namespace spmm {
namespace {

// Masks for a <8-lane tail: kMaskTable + 8 - w gives w leading -1 lanes.
alignas(32) constexpr int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                               0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i TailMask(int64_t w) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - w));
}

// out[j] += v * in[j] over one feature row, 8 lanes at a time.
inline void AxpyRow(float v, const float* in, int64_t c, float* out) {
  const __m256 vv = _mm256_set1_ps(v);
  int64_t j = 0;
  for (; j + 8 <= c; j += 8) {
    const __m256 acc = _mm256_loadu_ps(out + j);
    _mm256_storeu_ps(out + j,
                     _mm256_fmadd_ps(vv, _mm256_loadu_ps(in + j), acc));
  }
  if (j < c) {
    const __m256i mask = TailMask(c - j);
    const __m256 acc = _mm256_maskload_ps(out + j, mask);
    _mm256_maskstore_ps(
        out + j, mask,
        _mm256_fmadd_ps(vv, _mm256_maskload_ps(in + j, mask), acc));
  }
}

inline void ZeroRow(float* out, int64_t c) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t j = 0;
  for (; j + 8 <= c; j += 8) _mm256_storeu_ps(out + j, zero);
  for (; j < c; ++j) out[j] = 0.0f;
}

void SpmmRowsAvx2(const int64_t* row_offsets, const int64_t* col_ids,
                  const float* values, const float* x, int64_t r0, int64_t r1,
                  int64_t c, float* out) {
  for (int64_t r = r0; r < r1; ++r) {
    float* orow = out + r * c;
    ZeroRow(orow, c);
    for (int64_t s = row_offsets[r]; s < row_offsets[r + 1]; ++s) {
      AxpyRow(values[s], x + col_ids[s] * c, c, orow);
    }
  }
}

void SpmmTColsAvx2(const int64_t* t_offsets, const int64_t* t_slots,
                   const int64_t* slot_rows, const float* values,
                   const float* g, int64_t c0, int64_t c1, int64_t c,
                   float* gx) {
  for (int64_t col = c0; col < c1; ++col) {
    float* orow = gx + col * c;
    ZeroRow(orow, c);
    for (int64_t i = t_offsets[col]; i < t_offsets[col + 1]; ++i) {
      const int64_t s = t_slots[i];
      AxpyRow(values[s], g + slot_rows[s] * c, c, orow);
    }
  }
}

// Horizontal sum of one ymm in a fixed lane order.
inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

void SpmmGradValuesAvx2(const int64_t* slot_rows, const int64_t* col_ids,
                        const float* g, const float* x, int64_t s0, int64_t s1,
                        int64_t c, float* gv) {
  for (int64_t s = s0; s < s1; ++s) {
    const float* grow = g + slot_rows[s] * c;
    const float* xrow = x + col_ids[s] * c;
    __m256 acc = _mm256_setzero_ps();
    int64_t j = 0;
    for (; j + 8 <= c; j += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(grow + j),
                            _mm256_loadu_ps(xrow + j), acc);
    }
    if (j < c) {
      const __m256i mask = TailMask(c - j);
      acc = _mm256_fmadd_ps(_mm256_maskload_ps(grow + j, mask),
                            _mm256_maskload_ps(xrow + j, mask), acc);
    }
    gv[s] = HSum(acc);
  }
}

constexpr Kernels kAvx2Kernels = {
    SpmmRowsAvx2,
    SpmmTColsAvx2,
    SpmmGradValuesAvx2,
};

}  // namespace

namespace internal {
const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace spmm
}  // namespace tgcrn

#else  // AVX2 compiled out

namespace tgcrn {
namespace spmm {
namespace internal {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace internal
}  // namespace spmm
}  // namespace tgcrn

#endif
