// Copyright 2026 TGCRN Reproduction Authors
// AVX2/FMA GEMM microkernels. Compiled with -mavx2 -mfma only when the
// build enables them (src/CMakeLists.txt); otherwise this translation
// unit degrades to a stub table so the dispatch symbol always links.
//
// The packed path keeps a kMr x kNr accumulator tile in registers
// (6 rows x two 8-lane ymms = 12 accumulators) and streams one packed B
// panel against a stack-packed A sliver. Per output element the FMA
// chain runs over k in ascending order and every lane's arithmetic is
// independent of its neighbours, so results are bitwise identical across
// thread counts, row-block phase and ragged-panel handling — the
// fixed-ISA determinism contract (common/cpu_features.h).
#include "tensor/kernels/gemm.h"

#if !defined(TGCRN_DISABLE_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace tgcrn {
namespace gemm {
namespace {

// Masks for a <8-lane tail: kMaskTable + 8 - w gives w leading -1 lanes.
alignas(32) constexpr int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                               0,  0,  0,  0,  0,  0,  0,  0};

inline __m256i TailMask(int64_t w) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - w));
}

// One kMr x kNr register tile against one packed panel slice of kc
// steps. `apack` is the stack-packed A sliver in [kk][MR] order. When
// `first` the accumulators start at zero; later k-chunks reload the
// partial sums from C (store/load of a float is exact, so chunking does
// not change bits).
template <int MR>
inline void MicroPanel(const float* apack, const float* bp, int64_t kc,
                       float* c, int64_t ldc, bool first) {
  __m256 acc0[MR];
  __m256 acc1[MR];
  if (first) {
    for (int r = 0; r < MR; ++r) {
      acc0[r] = _mm256_setzero_ps();
      acc1[r] = _mm256_setzero_ps();
    }
  } else {
    for (int r = 0; r < MR; ++r) {
      acc0[r] = _mm256_loadu_ps(c + r * ldc);
      acc1[r] = _mm256_loadu_ps(c + r * ldc + 8);
    }
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNr + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(apack + kk * MR + r);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc0[r]);
    _mm256_storeu_ps(c + r * ldc + 8, acc1[r]);
  }
}

// MR rows starting at row i: pack the A sliver per k-chunk, run full
// panels straight into C and the ragged last panel into a local
// kNr-wide tile that is copied out once all k-chunks accumulated.
template <int MR>
void RowBlock(const float* a, int64_t a_row_stride, int64_t a_col_stride,
              const float* packed_b, int64_t i, int64_t k, int64_t n,
              float* c) {
  const int64_t full_panels = n / kNr;
  const int64_t rem = n - full_panels * kNr;
  alignas(32) float tail_tile[kMr * kNr];
  alignas(32) float apack[kMr * kKc];
  for (int64_t k0 = 0; k0 < k; k0 += kKc) {
    const int64_t kc = std::min(kKc, k - k0);
    for (int64_t kk = 0; kk < kc; ++kk) {
      for (int r = 0; r < MR; ++r) {
        apack[kk * MR + r] =
            a[(i + r) * a_row_stride + (k0 + kk) * a_col_stride];
      }
    }
    const bool first = k0 == 0;
    for (int64_t p = 0; p < full_panels; ++p) {
      const float* bp = packed_b + p * k * kNr + k0 * kNr;
      MicroPanel<MR>(apack, bp, kc, c + i * n + p * kNr, n, first);
    }
    if (rem > 0) {
      const float* bp = packed_b + full_panels * k * kNr + k0 * kNr;
      MicroPanel<MR>(apack, bp, kc, tail_tile, kNr, first);
    }
  }
  if (rem > 0) {
    for (int r = 0; r < MR; ++r) {
      std::copy(tail_tile + r * kNr, tail_tile + r * kNr + rem,
                c + (i + r) * n + full_panels * kNr);
    }
  }
}

void GemmRowsAvx2(const float* a, int64_t a_row_stride, int64_t a_col_stride,
                  const float* packed_b, int64_t i0, int64_t i1, int64_t k,
                  int64_t n, float* c) {
  if (n == 0) return;
  if (k == 0) {
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
    return;
  }
  int64_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    RowBlock<6>(a, a_row_stride, a_col_stride, packed_b, i, k, n, c);
  }
  switch (i1 - i) {
    case 1: RowBlock<1>(a, a_row_stride, a_col_stride, packed_b, i, k, n, c); break;
    case 2: RowBlock<2>(a, a_row_stride, a_col_stride, packed_b, i, k, n, c); break;
    case 3: RowBlock<3>(a, a_row_stride, a_col_stride, packed_b, i, k, n, c); break;
    case 4: RowBlock<4>(a, a_row_stride, a_col_stride, packed_b, i, k, n, c); break;
    case 5: RowBlock<5>(a, a_row_stride, a_col_stride, packed_b, i, k, n, c); break;
    default: break;
  }
}

void GemmRowsDirectAvx2(const float* a, int64_t a_row_stride,
                        int64_t a_col_stride, const float* b, int64_t i0,
                        int64_t i1, int64_t k, int64_t n, float* c) {
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    if (k == 0 || n == 0) {
      std::fill(crow, crow + n, 0.0f);
      continue;
    }
    const float* arow = a + i * a_row_stride;
    int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 av = _mm256_broadcast_ss(arow + kk * a_col_stride);
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n + j0), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n + j0 + 8), acc1);
      }
      _mm256_storeu_ps(crow + j0, acc0);
      _mm256_storeu_ps(crow + j0 + 8, acc1);
    }
    if (j0 + 8 <= n) {
      __m256 acc = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 av = _mm256_broadcast_ss(arow + kk * a_col_stride);
        acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + kk * n + j0), acc);
      }
      _mm256_storeu_ps(crow + j0, acc);
      j0 += 8;
    }
    if (j0 < n) {
      const __m256i mask = TailMask(n - j0);
      __m256 acc = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 av = _mm256_broadcast_ss(arow + kk * a_col_stride);
        const __m256 bv = _mm256_maskload_ps(b + kk * n + j0, mask);
        acc = _mm256_fmadd_ps(av, bv, acc);
      }
      _mm256_maskstore_ps(crow + j0, mask, acc);
    }
  }
}

// Lane-split dot product: lanes accumulate k = lane (mod 8/16) slices,
// combined by a fixed-shape horizontal sum, scalar tail last. The split
// depends only on k, so bits are thread-count independent.
inline float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

void DotRowsAvx2(const float* a, const float* b, int64_t i0, int64_t i1,
                 int64_t k, int64_t n, float* c) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      int64_t kk = 0;
      for (; kk + 16 <= k; kk += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                               _mm256_loadu_ps(brow + kk), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk + 8),
                               _mm256_loadu_ps(brow + kk + 8), acc1);
      }
      if (kk + 8 <= k) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(arow + kk),
                               _mm256_loadu_ps(brow + kk), acc0);
        kk += 8;
      }
      float sum = HSum(_mm256_add_ps(acc0, acc1));
      for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
      crow[j] = sum;
    }
  }
}

void M1BatchAvx2(const float* a, const int64_t* a_mats, int64_t a_elems,
                 const float* b, const int64_t* b_mats, int64_t b_elems,
                 int64_t mat0, int64_t mat1, int64_t k, int64_t n, float* c) {
  for (int64_t mi = mat0; mi < mat1; ++mi) {
    const float* av = a + (a_mats ? a_mats[mi] : mi) * a_elems;
    const float* bm = b + (b_mats ? b_mats[mi] : mi) * b_elems;
    float* crow = c + mi * n;
    if (k == 0 || n == 0) {
      std::fill(crow, crow + n, 0.0f);
      continue;
    }
    if (n == 16) {
      // The dominant GCGRU shape (n = hidden size 16): one register pair,
      // no column-tiling branches. Same per-element arithmetic as the
      // general loop below.
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 x = _mm256_broadcast_ss(av + kk);
        acc0 = _mm256_fmadd_ps(x, _mm256_loadu_ps(bm + kk * 16), acc0);
        acc1 = _mm256_fmadd_ps(x, _mm256_loadu_ps(bm + kk * 16 + 8), acc1);
      }
      _mm256_storeu_ps(crow, acc0);
      _mm256_storeu_ps(crow + 8, acc1);
      continue;
    }
    int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 x = _mm256_broadcast_ss(av + kk);
        acc0 = _mm256_fmadd_ps(x, _mm256_loadu_ps(bm + kk * n + j0), acc0);
        acc1 = _mm256_fmadd_ps(x, _mm256_loadu_ps(bm + kk * n + j0 + 8), acc1);
      }
      _mm256_storeu_ps(crow + j0, acc0);
      _mm256_storeu_ps(crow + j0 + 8, acc1);
    }
    if (j0 + 8 <= n) {
      __m256 acc = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 x = _mm256_broadcast_ss(av + kk);
        acc = _mm256_fmadd_ps(x, _mm256_loadu_ps(bm + kk * n + j0), acc);
      }
      _mm256_storeu_ps(crow + j0, acc);
      j0 += 8;
    }
    if (j0 < n) {
      const __m256i mask = TailMask(n - j0);
      __m256 acc = _mm256_setzero_ps();
      for (int64_t kk = 0; kk < k; ++kk) {
        const __m256 x = _mm256_broadcast_ss(av + kk);
        acc = _mm256_fmadd_ps(x, _mm256_maskload_ps(bm + kk * n + j0, mask),
                              acc);
      }
      _mm256_maskstore_ps(crow + j0, mask, acc);
    }
  }
}

constexpr Kernels kAvx2Kernels = {
    internal::PackBPortable,
    GemmRowsAvx2,
    GemmRowsDirectAvx2,
    DotRowsAvx2,
    M1BatchAvx2,
};

}  // namespace

namespace internal {
const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }
}  // namespace internal

}  // namespace gemm
}  // namespace tgcrn

#else  // AVX2 compiled out

namespace tgcrn {
namespace gemm {
namespace internal {
const Kernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace internal
}  // namespace gemm
}  // namespace tgcrn

#endif
