// Copyright 2026 TGCRN Reproduction Authors
// Portable scalar GEMM kernels and the ISA dispatch table. The scalar
// kernels are the determinism anchor: per output element they accumulate
// over k in ascending order with separate multiply and add (this file is
// never compiled with FMA contraction flags), reproducing the legacy
// serial loops of BatchedMatmulImpl bit for bit. TGCRN_ISA=scalar
// therefore yields the exact pre-microkernel numerics.
#include "tensor/kernels/gemm.h"

#include <algorithm>

namespace tgcrn {
namespace gemm {
namespace {

void PackBScalar(const float* b, int64_t k, int64_t n, bool transpose_b,
                 float* out) {
  const int64_t panels = (n + kNr - 1) / kNr;
  for (int64_t p = 0; p < panels; ++p) {
    const int64_t j0 = p * kNr;
    const int64_t w = std::min(kNr, n - j0);
    float* panel = out + p * k * kNr;
    for (int64_t kk = 0; kk < k; ++kk) {
      float* dst = panel + kk * kNr;
      if (transpose_b) {
        // Source is (n x k) row-major: column kk of the logical B.
        for (int64_t j = 0; j < w; ++j) dst[j] = b[(j0 + j) * k + kk];
      } else {
        const float* src = b + kk * n + j0;
        for (int64_t j = 0; j < w; ++j) dst[j] = src[j];
      }
      for (int64_t j = w; j < kNr; ++j) dst[j] = 0.0f;
    }
  }
}

void GemmRowsScalar(const float* a, int64_t a_row_stride, int64_t a_col_stride,
                    const float* packed_b, int64_t i0, int64_t i1, int64_t k,
                    int64_t n, float* c) {
  const int64_t panels = (n + kNr - 1) / kNr;
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    std::fill(crow, crow + n, 0.0f);
    // k blocked by kKc for cache residency; per element the accumulation
    // order is still plain ascending k.
    for (int64_t k0 = 0; k0 < k; k0 += kKc) {
      const int64_t kc = std::min(kKc, k - k0);
      for (int64_t p = 0; p < panels; ++p) {
        const int64_t j0 = p * kNr;
        const int64_t w = std::min(kNr, n - j0);
        const float* bp = packed_b + p * k * kNr + k0 * kNr;
        float* cj = crow + j0;
        for (int64_t kk = 0; kk < kc; ++kk) {
          const float av = a[i * a_row_stride + (k0 + kk) * a_col_stride];
          const float* brow = bp + kk * kNr;
          for (int64_t j = 0; j < w; ++j) cj[j] += av * brow[j];
        }
      }
    }
  }
}

void GemmRowsDirectScalar(const float* a, int64_t a_row_stride,
                          int64_t a_col_stride, const float* b, int64_t i0,
                          int64_t i1, int64_t k, int64_t n, float* c) {
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    std::fill(crow, crow + n, 0.0f);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = a[i * a_row_stride + kk * a_col_stride];
      const float* brow = b + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void DotRowsScalar(const float* a, const float* b, int64_t i0, int64_t i1,
                   int64_t k, int64_t n, float* c) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float sum = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      crow[j] = sum;
    }
  }
}

void M1BatchScalar(const float* a, const int64_t* a_mats, int64_t a_elems,
                   const float* b, const int64_t* b_mats, int64_t b_elems,
                   int64_t mat0, int64_t mat1, int64_t k, int64_t n, float* c) {
  for (int64_t mi = mat0; mi < mat1; ++mi) {
    const float* av = a + (a_mats ? a_mats[mi] : mi) * a_elems;
    const float* bm = b + (b_mats ? b_mats[mi] : mi) * b_elems;
    float* crow = c + mi * n;
    std::fill(crow, crow + n, 0.0f);
    for (int64_t kk = 0; kk < k; ++kk) {
      const float x = av[kk];
      const float* brow = bm + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += x * brow[j];
    }
  }
}

constexpr Kernels kScalarKernels = {
    PackBScalar,
    GemmRowsScalar,
    GemmRowsDirectScalar,
    DotRowsScalar,
    M1BatchScalar,
};

}  // namespace

namespace internal {

void PackBPortable(const float* b, int64_t k, int64_t n, bool transpose_b,
                   float* out) {
  PackBScalar(b, k, n, transpose_b, out);
}

}  // namespace internal

const Kernels& GetKernels(common::SimdIsa isa) {
  if (isa == common::SimdIsa::kAvx2) {
    const Kernels* avx2 = internal::Avx2KernelsOrNull();
    if (avx2 != nullptr) return *avx2;
  }
  return kScalarKernels;
}

}  // namespace gemm
}  // namespace tgcrn
