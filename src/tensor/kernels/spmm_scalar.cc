// Copyright 2026 TGCRN Reproduction Authors
// Portable scalar SpMM kernels and the ISA dispatch table. Like
// gemm_scalar.cc these are the determinism anchor: ascending-slot
// accumulation with separate multiply and add, never compiled with FMA
// contraction flags, so TGCRN_ISA=scalar yields the exact reference
// arithmetic at any thread count.
#include "tensor/kernels/spmm.h"

#include <algorithm>

namespace tgcrn {
namespace spmm {
namespace {

void SpmmRowsScalar(const int64_t* row_offsets, const int64_t* col_ids,
                    const float* values, const float* x, int64_t r0,
                    int64_t r1, int64_t c, float* out) {
  for (int64_t r = r0; r < r1; ++r) {
    float* orow = out + r * c;
    std::fill(orow, orow + c, 0.0f);
    for (int64_t s = row_offsets[r]; s < row_offsets[r + 1]; ++s) {
      const float v = values[s];
      const float* xrow = x + col_ids[s] * c;
      for (int64_t j = 0; j < c; ++j) orow[j] += v * xrow[j];
    }
  }
}

void SpmmTColsScalar(const int64_t* t_offsets, const int64_t* t_slots,
                     const int64_t* slot_rows, const float* values,
                     const float* g, int64_t c0, int64_t c1, int64_t c,
                     float* gx) {
  for (int64_t col = c0; col < c1; ++col) {
    float* orow = gx + col * c;
    std::fill(orow, orow + c, 0.0f);
    for (int64_t i = t_offsets[col]; i < t_offsets[col + 1]; ++i) {
      const int64_t s = t_slots[i];
      const float v = values[s];
      const float* grow = g + slot_rows[s] * c;
      for (int64_t j = 0; j < c; ++j) orow[j] += v * grow[j];
    }
  }
}

void SpmmGradValuesScalar(const int64_t* slot_rows, const int64_t* col_ids,
                          const float* g, const float* x, int64_t s0,
                          int64_t s1, int64_t c, float* gv) {
  for (int64_t s = s0; s < s1; ++s) {
    const float* grow = g + slot_rows[s] * c;
    const float* xrow = x + col_ids[s] * c;
    float sum = 0.0f;
    for (int64_t j = 0; j < c; ++j) sum += grow[j] * xrow[j];
    gv[s] = sum;
  }
}

constexpr Kernels kScalarKernels = {
    SpmmRowsScalar,
    SpmmTColsScalar,
    SpmmGradValuesScalar,
};

}  // namespace

const Kernels& GetKernels(common::SimdIsa isa) {
  if (isa == common::SimdIsa::kAvx2) {
    const Kernels* avx2 = internal::Avx2KernelsOrNull();
    if (avx2 != nullptr) return *avx2;
  }
  return kScalarKernels;
}

}  // namespace spmm
}  // namespace tgcrn
