// Copyright 2026 TGCRN Reproduction Authors
// Vectorized transcendentals behind the Tensor Exp/Sigmoid/Tanh entry
// points. Each function maps x[0..n) -> y[0..n) elementwise (in-place
// allowed: y may alias x).
//
// The scalar path calls libm exactly as the legacy MapT lambdas did
// (std::exp, std::tanh, 1/(1+exp(-x))), so TGCRN_ISA=scalar reproduces
// the pre-vectorization bits. The AVX2 path uses Cephes-style minimax
// polynomials (~1-2 ulp for exp over the clamped range) and is
// lanewise: every element's result depends only on that element, never
// on its position in a vector or on chunk boundaries, so thread-count
// chunking and sub-vector tails cannot change bits at a fixed ISA.
#ifndef TGCRN_TENSOR_KERNELS_VMATH_H_
#define TGCRN_TENSOR_KERNELS_VMATH_H_

#include <cstdint>

#include "common/cpu_features.h"

namespace tgcrn {
namespace vmath {

// y[i] = exp(x[i]). AVX2 clamps |x| to ~88.38 (beyond which float exp
// is 0/inf anyway); NaN propagates.
void ExpN(const float* x, float* y, int64_t n);

// y[i] = 1 / (1 + exp(-x[i])).
void SigmoidN(const float* x, float* y, int64_t n);

// y[i] = tanh(x[i]).
void TanhN(const float* x, float* y, int64_t n);

namespace internal {
struct Kernels {
  void (*exp_n)(const float* x, float* y, int64_t n);
  void (*sigmoid_n)(const float* x, float* y, int64_t n);
  void (*tanh_n)(const float* x, float* y, int64_t n);
};
// Defined in vmath_avx2.cc: the AVX2 table, or nullptr when compiled out.
const Kernels* Avx2VmathOrNull();
}  // namespace internal

// Table for `isa`; degrades to scalar when AVX2 is compiled out.
const internal::Kernels& GetVmathKernels(common::SimdIsa isa);

}  // namespace vmath
}  // namespace tgcrn

#endif  // TGCRN_TENSOR_KERNELS_VMATH_H_
