// Copyright 2026 TGCRN Reproduction Authors
// Sparse (CSR) x dense kernels for the sparse learned-graph execution path
// (graph/csr.h, autograd/sparse_ops.h). The shape is the GCGRU aggregation:
// one batch item multiplies a [rows, cols] CSR adjacency by a dense
// [cols, c] feature block into a dense [rows, c] output, and the backward
// pass needs the transpose product A^T g (via the CSC lists) plus the
// per-slot value gradients <g[row], x[col]>.
//
// Dispatch mirrors tensor/kernels/gemm.h: one kernel table per ISA level,
// scalar as the bit-exact anchor (separate multiply and add, never compiled
// with FMA flags), AVX2 vectorizing over the feature dimension with FMA
// (may differ from scalar in the last bits, the repository-wide ISA
// contract). Determinism at a fixed ISA: every output element accumulates
// its slots in ascending slot order — a pure function of the CSR structure,
// never of thread count or chunk boundaries (drivers parallelize over
// disjoint row/column/slot ranges).
#ifndef TGCRN_TENSOR_KERNELS_SPMM_H_
#define TGCRN_TENSOR_KERNELS_SPMM_H_

#include <cstdint>

#include "common/cpu_features.h"

namespace tgcrn {
namespace spmm {

// Kernel table for one ISA level. All pointers address ONE batch item:
// `values`/`col_ids` are that item's nnz-long slot arrays, `x` its dense
// [cols, c] operand, `out`/`g` its dense [rows, c] output/gradient.
struct Kernels {
  // Forward rows [r0, r1):
  //   out[r, :] = sum_{s in row r, ascending} values[s] * x[col_ids[s], :]
  void (*spmm_rows)(const int64_t* row_offsets, const int64_t* col_ids,
                    const float* values, const float* x, int64_t r0,
                    int64_t r1, int64_t c, float* out);
  // Transpose-backward columns [c0, c1) (grad wrt the dense operand):
  //   gx[col, :] = sum_{s in CSC list of col, ascending} values[s]
  //                * g[slot_rows[s], :]
  // t_offsets/t_slots are the item's CSC lists (graph/csr.h).
  void (*spmm_t_cols)(const int64_t* t_offsets, const int64_t* t_slots,
                      const int64_t* slot_rows, const float* values,
                      const float* g, int64_t c0, int64_t c1, int64_t c,
                      float* gx);
  // Value gradients for slots [s0, s1):
  //   gv[s] = <g[slot_rows[s], :], x[col_ids[s], :]>
  void (*spmm_grad_values)(const int64_t* slot_rows, const int64_t* col_ids,
                           const float* g, const float* x, int64_t s0,
                           int64_t s1, int64_t c, float* gv);
};

// Table for `isa`; degrades to scalar when AVX2 is compiled out.
const Kernels& GetKernels(common::SimdIsa isa);

namespace internal {
// Defined in spmm_avx2.cc: the AVX2 table, or nullptr when compiled out.
const Kernels* Avx2KernelsOrNull();
}  // namespace internal

}  // namespace spmm
}  // namespace tgcrn

#endif  // TGCRN_TENSOR_KERNELS_SPMM_H_
