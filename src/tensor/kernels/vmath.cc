// Copyright 2026 TGCRN Reproduction Authors
// Scalar transcendental kernels (libm, matching the legacy MapT lambdas
// bit for bit) and the vmath dispatch.
#include "tensor/kernels/vmath.h"

#include <cmath>

namespace tgcrn {
namespace vmath {
namespace {

void ExpScalar(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::exp(x[i]);
}

void SigmoidScalar(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void TanhScalar(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
}

constexpr internal::Kernels kScalarVmath = {
    ExpScalar,
    SigmoidScalar,
    TanhScalar,
};

}  // namespace

const internal::Kernels& GetVmathKernels(common::SimdIsa isa) {
  if (isa == common::SimdIsa::kAvx2) {
    const internal::Kernels* avx2 = internal::Avx2VmathOrNull();
    if (avx2 != nullptr) return *avx2;
  }
  return kScalarVmath;
}

void ExpN(const float* x, float* y, int64_t n) {
  GetVmathKernels(common::ActiveSimdIsa()).exp_n(x, y, n);
}

void SigmoidN(const float* x, float* y, int64_t n) {
  GetVmathKernels(common::ActiveSimdIsa()).sigmoid_n(x, y, n);
}

void TanhN(const float* x, float* y, int64_t n) {
  GetVmathKernels(common::ActiveSimdIsa()).tanh_n(x, y, n);
}

}  // namespace vmath
}  // namespace tgcrn
