// Copyright 2026 TGCRN Reproduction Authors
// AVX2 transcendentals: Cephes-style minimax polynomials (the same
// constants as cephes/expf and cephes/tanhf, the lineage behind
// avx_mathfun and most SIMD math libraries). All operations are
// lanewise, so element bits are position-independent: a value computed
// in a full vector, a tail buffer or any chunk of a ParallelFor range
// produces identical bits.
#include "tensor/kernels/vmath.h"

#if !defined(TGCRN_DISABLE_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>

namespace tgcrn {
namespace vmath {
namespace {

// exp(x) via 2^n * exp(r), x = n*ln2 + r with |r| <= ln2/2. Input is
// clamped to +/-88.376 = ln(2^127.5): above, float exp overflows to inf
// within a few ulp anyway; below, it underflows to 0. The max/min
// operand order keeps NaN propagating (maxps/minps return the second
// operand when either is NaN).
inline __m256 ExpPs(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
  x = _mm256_min_ps(hi, _mm256_max_ps(lo, x));

  __m256 fx =
      _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),  // log2(e)
                      _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);

  // Cody-Waite: subtract n*ln2 in two exact-ish pieces.
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));

  // 2^n by exponent-field construction.
  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(127));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

inline __m256 SigmoidPs(__m256 x) {
  const __m256 e = ExpPs(_mm256_sub_ps(_mm256_setzero_ps(), x));
  return _mm256_div_ps(_mm256_set1_ps(1.0f),
                       _mm256_add_ps(e, _mm256_set1_ps(1.0f)));
}

// Cephes tanhf: odd polynomial for |x| < 0.625 (avoids the catastrophic
// cancellation of the exp formula near 0), 1 - 2/(exp(2|x|)+1) with the
// sign restored elsewhere. NaN takes the exp branch and propagates.
inline __m256 TanhPs(__m256 x) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000));
  const __m256 ax = _mm256_and_ps(x, abs_mask);

  const __m256 e = ExpPs(_mm256_mul_ps(ax, _mm256_set1_ps(2.0f)));
  __m256 large = _mm256_sub_ps(
      _mm256_set1_ps(1.0f),
      _mm256_div_ps(_mm256_set1_ps(2.0f),
                    _mm256_add_ps(e, _mm256_set1_ps(1.0f))));
  large = _mm256_or_ps(large, _mm256_and_ps(x, sign_mask));

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(-5.70498872745e-3f);
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(2.06390887954e-2f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(-5.37397155531e-2f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(1.33314422036e-1f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(-3.33332819422e-1f));
  const __m256 small = _mm256_fmadd_ps(_mm256_mul_ps(p, z), x, x);

  const __m256 use_small =
      _mm256_cmp_ps(ax, _mm256_set1_ps(0.625f), _CMP_LT_OQ);
  return _mm256_blendv_ps(large, small, use_small);
}

// Runs `Op` over the array 8 lanes at a time; the tail goes through a
// zero-padded stack buffer with the *same* vector op, so tail elements
// get bit-identical treatment to full-vector elements.
template <__m256 (*Op)(__m256)>
void MapAvx2(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, Op(_mm256_loadu_ps(x + i)));
  }
  if (i < n) {
    alignas(32) float buf[8] = {0};
    std::copy(x + i, x + n, buf);
    _mm256_store_ps(buf, Op(_mm256_load_ps(buf)));
    std::copy(buf, buf + (n - i), y + i);
  }
}

constexpr internal::Kernels kAvx2Vmath = {
    MapAvx2<ExpPs>,
    MapAvx2<SigmoidPs>,
    MapAvx2<TanhPs>,
};

}  // namespace

namespace internal {
const Kernels* Avx2VmathOrNull() { return &kAvx2Vmath; }
}  // namespace internal

}  // namespace vmath
}  // namespace tgcrn

#else  // AVX2 compiled out

namespace tgcrn {
namespace vmath {
namespace internal {
const Kernels* Avx2VmathOrNull() { return nullptr; }
}  // namespace internal
}  // namespace vmath
}  // namespace tgcrn

#endif
