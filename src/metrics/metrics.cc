// Copyright 2026 TGCRN Reproduction Authors
#include "metrics/metrics.h"

#include <cmath>
#include <sstream>

#include "common/check.h"

namespace tgcrn {
namespace metrics {

std::string Metrics::ToString() const {
  std::ostringstream out;
  out << "MAE=" << mae << " RMSE=" << rmse << " MAPE=" << mape
      << "% PCC=" << pcc;
  return out.str();
}

Metrics Evaluate(const Tensor& pred, const Tensor& target,
                 const MetricsOptions& options) {
  TGCRN_CHECK(pred.SameShape(target))
      << ShapeToString(pred.shape()) << " vs " << ShapeToString(target.shape());
  Metrics m;
  const float* p = pred.data();
  const float* y = target.data();
  const int64_t n = pred.numel();

  double abs_sum = 0.0, sq_sum = 0.0, mape_sum = 0.0;
  int64_t count = 0, mape_count = 0;
  // For PCC.
  double sum_p = 0.0, sum_y = 0.0, sum_pp = 0.0, sum_yy = 0.0, sum_py = 0.0;

  for (int64_t i = 0; i < n; ++i) {
    const double yi = y[i];
    const double pi = p[i];
    if (options.null_threshold >= 0.0 &&
        std::fabs(yi) <= options.null_threshold) {
      continue;
    }
    const double err = pi - yi;
    abs_sum += std::fabs(err);
    sq_sum += err * err;
    ++count;
    sum_p += pi;
    sum_y += yi;
    sum_pp += pi * pi;
    sum_yy += yi * yi;
    sum_py += pi * yi;
    if (std::fabs(yi) > options.mape_threshold) {
      mape_sum += std::fabs(err / yi);
      ++mape_count;
    }
  }
  m.count = count;
  if (count > 0) {
    m.mae = abs_sum / count;
    m.mse = sq_sum / count;
    m.rmse = std::sqrt(m.mse);
    const double cov = sum_py / count - (sum_p / count) * (sum_y / count);
    const double var_p = sum_pp / count - (sum_p / count) * (sum_p / count);
    const double var_y = sum_yy / count - (sum_y / count) * (sum_y / count);
    const double denom = std::sqrt(var_p * var_y);
    m.pcc = denom > 1e-12 ? cov / denom : 0.0;
  }
  if (mape_count > 0) {
    m.mape = 100.0 * mape_sum / mape_count;
  }
  return m;
}

std::vector<Metrics> EvaluatePerHorizon(const Tensor& pred,
                                        const Tensor& target,
                                        const MetricsOptions& options) {
  TGCRN_CHECK_GE(pred.dim(), 2);
  TGCRN_CHECK(pred.SameShape(target));
  const int64_t q = pred.size(1);
  std::vector<Metrics> out;
  out.reserve(q);
  for (int64_t h = 0; h < q; ++h) {
    out.push_back(Evaluate(pred.Slice(1, h, h + 1), target.Slice(1, h, h + 1),
                           options));
  }
  return out;
}

std::vector<Metrics> EvaluatePerNode(const Tensor& pred,
                                     const Tensor& target,
                                     const MetricsOptions& options) {
  TGCRN_CHECK_EQ(pred.dim(), 4);
  TGCRN_CHECK(pred.SameShape(target));
  const int64_t n = pred.size(2);
  std::vector<Metrics> out;
  out.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    out.push_back(Evaluate(pred.Slice(2, i, i + 1),
                           target.Slice(2, i, i + 1), options));
  }
  return out;
}

Metrics AverageMetrics(const std::vector<Metrics>& all) {
  Metrics avg;
  if (all.empty()) return avg;
  for (const auto& m : all) {
    avg.mae += m.mae;
    avg.rmse += m.rmse;
    avg.mse += m.mse;
    avg.mape += m.mape;
    avg.pcc += m.pcc;
    avg.count += m.count;
  }
  const double k = static_cast<double>(all.size());
  avg.mae /= k;
  avg.rmse /= k;
  avg.mse /= k;
  avg.mape /= k;
  avg.pcc /= k;
  return avg;
}

}  // namespace metrics
}  // namespace tgcrn
