// Copyright 2026 TGCRN Reproduction Authors
// Evaluation metrics used across the paper's tables: MAE, RMSE, MAPE (with
// the traffic convention of masking near-zero targets), MSE, and Pearson
// correlation (PCC). All are computed in double precision.
#ifndef TGCRN_METRICS_METRICS_H_
#define TGCRN_METRICS_METRICS_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace tgcrn {
namespace metrics {

struct Metrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mse = 0.0;
  double mape = 0.0;  // percent; targets with |y| <= mape_threshold excluded
  double pcc = 0.0;
  int64_t count = 0;  // elements included in mae/rmse/mse

  std::string ToString() const;
};

struct MetricsOptions {
  // Targets with |y| <= mape_threshold are excluded from MAPE only
  // (standard practice for flow data where zero flow makes MAPE undefined).
  double mape_threshold = 1.0;
  // If >= 0, targets with |y| <= null_threshold are excluded from all
  // metrics (missing-data mask). -1 disables.
  double null_threshold = -1.0;
};

// Computes all metrics between prediction and target (same shape).
Metrics Evaluate(const Tensor& pred, const Tensor& target,
                 const MetricsOptions& options = {});

// Per-horizon evaluation: inputs are [B, Q, ...]; returns Q metric sets
// (horizon q evaluated over all batches/nodes/features).
std::vector<Metrics> EvaluatePerHorizon(const Tensor& pred,
                                        const Tensor& target,
                                        const MetricsOptions& options = {});

// Per-node evaluation: inputs are [B, Q, N, d]; returns N metric sets
// (node i evaluated over all batches/horizons/features). Used by the
// operator-facing analyses (which stations forecast poorly?).
std::vector<Metrics> EvaluatePerNode(const Tensor& pred,
                                     const Tensor& target,
                                     const MetricsOptions& options = {});

// Averages a set of metric structs (simple mean of each field; counts sum).
Metrics AverageMetrics(const std::vector<Metrics>& all);

}  // namespace metrics
}  // namespace tgcrn

#endif  // TGCRN_METRICS_METRICS_H_
