// Copyright 2026 TGCRN Reproduction Authors
#include "autograd/ops.h"

#include <cmath>
#include <utility>

namespace tgcrn {
namespace ag {
namespace {

// Routes `g` into the parent node, summing over broadcast dimensions only
// when the shapes actually differ. The equal-shape fast path (the
// overwhelmingly common non-broadcast case) skips the ReduceTo walk and
// its temporary entirely.
void AccumulateReduced(const internal::NodeRef& n, const Tensor& g) {
  if (g.shape() == n->value.shape()) {
    n->AccumulateGrad(g);
  } else {
    n->AccumulateGrad(g.ReduceTo(n->value.shape()));
  }
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  Tensor value = a.value().Add(b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(value), {a, b}, [an, bn](const Tensor& g) {
    if (an->needs_grad) AccumulateReduced(an, g);
    if (bn->needs_grad) AccumulateReduced(bn, g);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor value = a.value().Sub(b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(value), {a, b}, [an, bn](const Tensor& g) {
    if (an->needs_grad) AccumulateReduced(an, g);
    if (bn->needs_grad) {
      if (g.shape() == bn->value.shape()) {
        // Fused axpy: grad -= g, no negated temporary.
        bn->AccumulateScaledGrad(g, -1.0f);
      } else {
        bn->AccumulateGrad(g.Neg().ReduceTo(bn->value.shape()));
      }
    }
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor value = a.value().Mul(b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(value), {a, b}, [an, bn](const Tensor& g) {
    if (an->needs_grad) {
      if (g.shape() == an->value.shape() &&
          bn->value.shape() == an->value.shape()) {
        // Fused multiply-accumulate: grad += g * b, no product temporary.
        an->AccumulateProductGrad(g, bn->value);
      } else {
        an->AccumulateGrad(g.Mul(bn->value).ReduceTo(an->value.shape()));
      }
    }
    if (bn->needs_grad) {
      if (g.shape() == bn->value.shape() &&
          an->value.shape() == bn->value.shape()) {
        bn->AccumulateProductGrad(g, an->value);
      } else {
        bn->AccumulateGrad(g.Mul(an->value).ReduceTo(bn->value.shape()));
      }
    }
  });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor value = a.value().Div(b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(value), {a, b}, [an, bn](const Tensor& g) {
    if (an->needs_grad) {
      AccumulateReduced(an, g.Div(bn->value));
    }
    if (bn->needs_grad) {
      // d(a/b)/db = -a / b^2
      const bool same_shape = g.shape() == bn->value.shape() &&
                              an->value.shape() == bn->value.shape();
      if (same_shape) {
        bn->AccumulateGrad(DivGradRhsKernel(g, an->value, bn->value));
      } else {
        Tensor gb = g.Mul(an->value).Div(bn->value.Mul(bn->value)).Neg();
        bn->AccumulateGrad(gb.ReduceTo(bn->value.shape()));
      }
    }
  });
}

Variable AddScalar(const Variable& a, float s) {
  auto an = a.node();
  return MakeOpNode(a.value().AddScalar(s), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g);
  });
}

Variable MulScalar(const Variable& a, float s) {
  auto an = a.node();
  return MakeOpNode(a.value().MulScalar(s), {a}, [an, s](const Tensor& g) {
    // Fused axpy: grad += s * g, no scaled temporary.
    an->AccumulateScaledGrad(g, s);
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable Matmul(const Variable& a, const Variable& b) {
  Tensor value = a.value().Matmul(b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeOpNode(std::move(value), {a, b}, [an, bn](const Tensor& g) {
    // Both gradients read the transposed operand through strides
    // (MatmulTranspose*), so no transpose copy is materialized.
    if (an->needs_grad) {
      AccumulateReduced(an, g.MatmulTransposeB(bn->value));  // g . B^T
    }
    if (bn->needs_grad) {
      AccumulateReduced(bn, an->value.MatmulTransposeA(g));  // A^T . g
    }
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = a.value().Sigmoid();
  auto an = a.node();
  return MakeOpNode(y, {a}, [an, y](const Tensor& g) {
    // dy/dx = y (1 - y), fused single-pass kernel.
    an->AccumulateGrad(SigmoidGradKernel(y, g));
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = a.value().Tanh();
  auto an = a.node();
  return MakeOpNode(y, {a}, [an, y](const Tensor& g) {
    // dy/dx = 1 - y^2, fused single-pass kernel.
    an->AccumulateGrad(TanhGradKernel(y, g));
  });
}

Variable Relu(const Variable& a) {
  Tensor y = a.value().Relu();
  auto an = a.node();
  return MakeOpNode(y, {a}, [an](const Tensor& g) {
    an->AccumulateGrad(ReluGradKernel(an->value, g));
  });
}

Variable Exp(const Variable& a) {
  Tensor y = a.value().Exp();
  auto an = a.node();
  return MakeOpNode(y, {a}, [an, y](const Tensor& g) {
    an->AccumulateProductGrad(g, y);
  });
}

Variable Log(const Variable& a) {
  Tensor y = a.value().Log();
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g.Div(an->value));
  });
}

Variable Sqrt(const Variable& a) {
  Tensor y = a.value().Sqrt();
  auto an = a.node();
  return MakeOpNode(y, {a}, [an, y](const Tensor& g) {
    // dy/dx = 0.5 / sqrt(x)
    an->AccumulateGrad(g.MulScalar(0.5f).Div(y));
  });
}

Variable Abs(const Variable& a) {
  Tensor y = a.value().Abs();
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    Tensor sign = an->value.MapT(
        [](float x) { return x > 0.0f ? 1.0f : (x < 0.0f ? -1.0f : 0.0f); });
    an->AccumulateProductGrad(g, sign);
  });
}

Variable Pow(const Variable& a, float exponent) {
  Tensor y = a.value().Pow(exponent);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an, exponent](const Tensor& g) {
    Tensor d = an->value.Pow(exponent - 1.0f).MulScalar(exponent);
    an->AccumulateProductGrad(g, d);
  });
}

Variable Softmax(const Variable& a, int64_t axis) {
  if (axis < 0) axis += a.value().dim();
  Tensor y = a.value().Softmax(axis);
  auto an = a.node();
  return MakeOpNode(y, {a}, [an, y, axis](const Tensor& g) {
    // dx = y * (g - sum(g * y, axis))
    if (axis == y.dim() - 1) {
      // Fused per-row kernel for the common last-axis case.
      an->AccumulateGrad(SoftmaxGradKernel(y, g));
    } else {
      Tensor gy = g.Mul(y);
      Tensor s = gy.Sum(axis, /*keepdim=*/true);
      an->AccumulateGrad(y.Mul(g.Sub(s)));
    }
  });
}

Variable Dropout(const Variable& a, float p, bool training, Rng* rng) {
  if (!training || p <= 0.0f) return a;
  TGCRN_CHECK(rng != nullptr);
  TGCRN_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(a.shape());
  float* m = mask.mutable_data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng->NextDouble() < p ? 0.0f : scale;
  }
  auto an = a.node();
  return MakeOpNode(a.value().Mul(mask), {a}, [an, mask](const Tensor& g) {
    an->AccumulateProductGrad(g, mask);
  });
}

Variable Sum(const Variable& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.value().dim();
  Tensor y = a.value().Sum(axis, keepdim);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a},
                    [an, axis, keepdim](const Tensor& g) {
                      Tensor gg = keepdim ? g : g.Unsqueeze(axis);
                      an->AccumulateGrad(gg.BroadcastTo(an->value.shape()));
                    });
}

Variable Mean(const Variable& a, int64_t axis, bool keepdim) {
  if (axis < 0) axis += a.value().dim();
  const float inv = 1.0f / static_cast<float>(a.value().size(axis));
  return MulScalar(Sum(a, axis, keepdim), inv);
}

Variable SumAll(const Variable& a) {
  Tensor y = Tensor::Scalar(a.value().SumAll());
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(Tensor::Full(an->value.shape(), g.item()));
  });
}

Variable MeanAll(const Variable& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Variable Reshape(const Variable& a, Shape shape) {
  Tensor y = a.value().Reshape(std::move(shape));
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g.Reshape(an->value.shape()));
  });
}

Variable Transpose(const Variable& a, int64_t axis0, int64_t axis1) {
  if (axis0 < 0) axis0 += a.value().dim();
  if (axis1 < 0) axis1 += a.value().dim();
  Tensor y = a.value().Transpose(axis0, axis1);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an, axis0, axis1](const Tensor& g) {
    an->AccumulateGrad(g.Transpose(axis0, axis1));
  });
}

Variable Permute(const Variable& a, std::vector<int64_t> perm) {
  Tensor y = a.value().Permute(perm);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a},
                    [an, perm = std::move(perm)](const Tensor& g) {
                      std::vector<int64_t> inverse(perm.size());
                      for (size_t i = 0; i < perm.size(); ++i) {
                        inverse[perm[i]] = static_cast<int64_t>(i);
                      }
                      an->AccumulateGrad(g.Permute(inverse));
                    });
}

Variable Unsqueeze(const Variable& a, int64_t axis) {
  Tensor y = a.value().Unsqueeze(axis);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g.Reshape(an->value.shape()));
  });
}

Variable Squeeze(const Variable& a, int64_t axis) {
  Tensor y = a.value().Squeeze(axis);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g.Reshape(an->value.shape()));
  });
}

Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t end) {
  if (axis < 0) axis += a.value().dim();
  Tensor y = a.value().Slice(axis, start, end);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an, axis, start](const Tensor& g) {
    Tensor full = Tensor::Zeros(an->value.shape());
    full.AddSliceInplace(axis, start, g);
    an->AccumulateGrad(full);
  });
}

Variable BroadcastTo(const Variable& a, Shape shape) {
  Tensor y = a.value().BroadcastTo(shape);
  auto an = a.node();
  return MakeOpNode(std::move(y), {a}, [an](const Tensor& g) {
    an->AccumulateGrad(g.ReduceTo(an->value.shape()));
  });
}

Variable Concat(const std::vector<Variable>& parts, int64_t axis) {
  TGCRN_CHECK(!parts.empty());
  if (axis < 0) axis += parts[0].value().dim();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const auto& p : parts) values.push_back(p.value());
  Tensor y = Tensor::Concat(values, axis);
  std::vector<internal::NodeRef> nodes;
  nodes.reserve(parts.size());
  for (const auto& p : parts) nodes.push_back(p.node());
  return MakeOpNode(std::move(y), parts,
                    [nodes = std::move(nodes), axis](const Tensor& g) {
                      int64_t offset = 0;
                      for (const auto& n : nodes) {
                        const int64_t span = n->value.size(axis);
                        if (n->needs_grad) {
                          n->AccumulateGrad(
                              g.Slice(axis, offset, offset + span));
                        }
                        offset += span;
                      }
                    });
}

Variable Stack(const std::vector<Variable>& parts, int64_t axis) {
  std::vector<Variable> expanded;
  expanded.reserve(parts.size());
  for (const auto& p : parts) expanded.push_back(Unsqueeze(p, axis));
  return Concat(expanded, axis);
}

Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& indices) {
  Tensor y = weight.value().IndexSelect0(indices);
  auto wn = weight.node();
  return MakeOpNode(std::move(y), {weight},
                    [wn, indices](const Tensor& g) {
                      Tensor gw = Tensor::Zeros(wn->value.shape());
                      gw.IndexAdd0Inplace(indices, g);
                      wn->AccumulateGrad(gw);
                    });
}

Variable MaeLoss(const Variable& pred, const Variable& target) {
  return MeanAll(Abs(pred - target));
}

Variable MseLoss(const Variable& pred, const Variable& target) {
  Variable diff = pred - target;
  return MeanAll(diff * diff);
}

Variable MaskedMaeLoss(const Variable& pred, const Variable& target,
                       float null_threshold) {
  // The mask is a constant w.r.t. the parameters: grads flow through pred
  // only where the target is valid.
  Tensor mask = target.value().MapT([null_threshold](float v) {
    return std::fabs(v) > null_threshold ? 1.0f : 0.0f;
  });
  const float valid = mask.SumAll();
  if (valid <= 0.0f) {
    // Nothing valid in this batch: contribute a zero loss with zero grads.
    return MulScalar(SumAll(pred), 0.0f);
  }
  Variable mask_var{mask};
  Variable masked = Abs(pred - target) * mask_var;
  return MulScalar(SumAll(masked), 1.0f / valid);
}

}  // namespace ag
}  // namespace tgcrn
