// Copyright 2026 TGCRN Reproduction Authors
#include "autograd/sparse_ops.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "tensor/kernels/spmm.h"

namespace tgcrn {
namespace ag {
namespace {

// Flop budget per ParallelFor chunk, mirroring the batched-matmul driver
// (tensor/tensor.cc). Grain only moves chunk boundaries between disjoint
// row/column/slot ranges, so it never affects results.
constexpr int64_t kSpmmGrainFlops = 4096;

int64_t RowGrain(int64_t per_row_flops) {
  return std::max<int64_t>(1,
                           kSpmmGrainFlops / std::max<int64_t>(1, per_row_flops));
}

// Runs `fn(b, lo, hi)` over disjoint per-item ranges covering
// batch x [0, per_item): chunks from ParallelFor are split at item
// boundaries so each kernel call addresses one batch item.
template <typename Fn>
void ParallelForItems(int64_t batch, int64_t per_item, int64_t grain, Fn fn) {
  common::ParallelFor(0, batch * per_item, grain, [&](int64_t g0, int64_t g1) {
    int64_t g = g0;
    while (g < g1) {
      const int64_t b = g / per_item;
      const int64_t lo = g % per_item;
      const int64_t hi = std::min<int64_t>(per_item, lo + (g1 - g));
      fn(b, lo, hi);
      g += hi - lo;
    }
  });
}

}  // namespace

SparseGraph SparsifyTopK(const Variable& dense, int64_t k) {
  graph::CsrBatch csr = graph::SparsifyTopK(dense.value(), k);
  std::shared_ptr<graph::CsrIndex> index = csr.index;
  auto dn = dense.node();
  SparseGraph out;
  out.index = index;
  out.values = MakeOpNode(
      std::move(csr.values), {dense}, [dn, index](const Tensor& g) {
        if (!dn->needs_grad) return;
        TGCRN_TRACE_SCOPE("graph.SparsifyTopKBackward");
        const Tensor& a = dn->value;
        const int64_t nnz = index->nnz();
        const int64_t rows = index->rows;
        const int64_t cols = index->cols;
        const int64_t batch = index->batch;
        const int64_t kept = nnz / std::max<int64_t>(1, rows);
        obs::RecordKernelCost(
            "graph.SparsifyTopKBackward",
            5.0 * static_cast<double>(batch) * static_cast<double>(nnz),
            4.0 * (static_cast<double>(a.numel()) +
                   2.0 * static_cast<double>(batch) *
                       static_cast<double>(nnz)) +
                8.0 * static_cast<double>(batch) * static_cast<double>(nnz));
        Tensor ga = Tensor::Zeros(a.shape());
        const float* av = a.data();
        const float* gv = g.data();
        float* out_g = ga.mutable_data();
        ParallelForItems(
            batch, rows, RowGrain(4 * kept), [&](int64_t b, int64_t r0,
                                                 int64_t r1) {
              const int64_t* ids = index->col_ids.data() + b * nnz;
              for (int64_t r = r0; r < r1; ++r) {
                const float* arow = av + (b * rows + r) * cols;
                float* grow = out_g + (b * rows + r) * cols;
                const int64_t s0 = index->row_offsets[r];
                const int64_t s1 = index->row_offsets[r + 1];
                float sum = 0.0f;
                for (int64_t s = s0; s < s1; ++s) sum += arow[ids[s]];
                if (sum <= 0.0f) continue;  // uniform fallback row: constant
                const float inv = 1.0f / sum;
                float dot = 0.0f;  // sum_s g_s * v_s, v_s = a_s / sum
                for (int64_t s = s0; s < s1; ++s) {
                  dot += gv[b * nnz + s] * arow[ids[s]] * inv;
                }
                for (int64_t s = s0; s < s1; ++s) {
                  grow[ids[s]] = (gv[b * nnz + s] - dot) * inv;
                }
              }
            });
        dn->AccumulateGrad(ga);
      });
  return out;
}

Variable SpmmCsr(const SparseGraph& graph, const Variable& x) {
  TGCRN_CHECK(graph.defined());
  std::shared_ptr<graph::CsrIndex> index = graph.index;
  const Tensor& xv = x.value();
  TGCRN_CHECK_EQ(xv.dim(), 3);
  TGCRN_CHECK_EQ(xv.size(0), index->batch);
  TGCRN_CHECK_EQ(xv.size(1), index->cols);
  const int64_t batch = index->batch;
  const int64_t rows = index->rows;
  const int64_t cols = index->cols;
  const int64_t nnz = index->nnz();
  const int64_t c = xv.size(2);
  const int64_t kept = nnz / std::max<int64_t>(1, rows);

  Tensor out = Tensor::ForOverwrite({batch, rows, c});
  {
    TGCRN_TRACE_SCOPE("spmm.SpmmCsr");
    obs::RecordKernelCost(
        "spmm.SpmmCsr",
        2.0 * static_cast<double>(batch) * static_cast<double>(nnz) *
            static_cast<double>(c),
        4.0 * (static_cast<double>(batch) * static_cast<double>(nnz) *
                   static_cast<double>(c) +
               static_cast<double>(batch) * static_cast<double>(rows) *
                   static_cast<double>(c) +
               static_cast<double>(batch) * static_cast<double>(nnz)) +
            8.0 * static_cast<double>(batch) * static_cast<double>(nnz));
    const spmm::Kernels& kern = spmm::GetKernels(common::ActiveSimdIsa());
    const float* vals = graph.values.value().data();
    const float* xp = xv.data();
    float* op = out.mutable_data();
    ParallelForItems(batch, rows, RowGrain(2 * kept * c),
                     [&](int64_t b, int64_t r0, int64_t r1) {
                       kern.spmm_rows(index->row_offsets.data(),
                                      index->col_ids.data() + b * nnz,
                                      vals + b * nnz, xp + b * cols * c, r0,
                                      r1, c, op + b * rows * c);
                     });
  }

  auto vn = graph.values.node();
  auto xn = x.node();
  // The transpose (CSC) lists are only needed for grad-x; build them now so
  // the backward pass (which may run under a step arena) does no index work.
  if (xn->needs_grad) index->BuildTranspose();
  return MakeOpNode(
      std::move(out), {graph.values, x}, [vn, xn, index](const Tensor& g) {
        const int64_t batch = index->batch;
        const int64_t rows = index->rows;
        const int64_t cols = index->cols;
        const int64_t nnz = index->nnz();
        const int64_t c = g.size(2);
        const spmm::Kernels& kern = spmm::GetKernels(common::ActiveSimdIsa());
        if (vn->needs_grad) {
          TGCRN_TRACE_SCOPE("spmm.SpmmCsrGradValues");
          obs::RecordKernelCost(
              "spmm.SpmmCsrGradValues",
              2.0 * static_cast<double>(batch) * static_cast<double>(nnz) *
                  static_cast<double>(c),
              4.0 * (2.0 * static_cast<double>(batch) *
                         static_cast<double>(nnz) * static_cast<double>(c) +
                     static_cast<double>(batch) * static_cast<double>(nnz)) +
                  8.0 * 2.0 * static_cast<double>(batch) *
                      static_cast<double>(nnz));
          Tensor gv = Tensor::ForOverwrite({batch, nnz});
          const float* gp = g.data();
          const float* xp = xn->value.data();
          float* gvp = gv.mutable_data();
          ParallelForItems(batch, nnz, RowGrain(2 * c),
                           [&](int64_t b, int64_t s0, int64_t s1) {
                             kern.spmm_grad_values(
                                 index->slot_rows.data(),
                                 index->col_ids.data() + b * nnz,
                                 gp + b * rows * c, xp + b * cols * c, s0, s1,
                                 c, gvp + b * nnz);
                           });
          vn->AccumulateGrad(gv);
        }
        if (xn->needs_grad) {
          TGCRN_TRACE_SCOPE("spmm.SpmmCsrGradX");
          obs::RecordKernelCost(
              "spmm.SpmmCsrGradX",
              2.0 * static_cast<double>(batch) * static_cast<double>(nnz) *
                  static_cast<double>(c),
              4.0 * (static_cast<double>(batch) * static_cast<double>(nnz) *
                         static_cast<double>(c) +
                     static_cast<double>(batch) * static_cast<double>(cols) *
                         static_cast<double>(c) +
                     static_cast<double>(batch) * static_cast<double>(nnz)) +
                  8.0 * 2.0 * static_cast<double>(batch) *
                      static_cast<double>(nnz));
          index->BuildTranspose();  // no-op unless forward skipped it
          Tensor gx = Tensor::ForOverwrite({batch, cols, c});
          const float* gp = g.data();
          const float* vals = vn->value.data();
          float* gxp = gx.mutable_data();
          const int64_t avg_in = std::max<int64_t>(1, nnz / cols);
          ParallelForItems(
              batch, cols, RowGrain(2 * avg_in * c),
              [&](int64_t b, int64_t c0, int64_t c1) {
                kern.spmm_t_cols(index->t_offsets.data() + b * (cols + 1),
                                 index->t_slots.data() + b * nnz,
                                 index->slot_rows.data(), vals + b * nnz,
                                 gp + b * rows * c, c0, c1, c,
                                 gxp + b * cols * c);
              });
          xn->AccumulateGrad(gx);
        }
      });
}

}  // namespace ag
}  // namespace tgcrn
