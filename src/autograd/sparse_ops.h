// Copyright 2026 TGCRN Reproduction Authors
// Autograd layer over the sparse learned-graph path (graph/csr.h,
// tensor/kernels/spmm.h). A SparseGraph pairs an immutable CSR index with a
// dense [batch, nnz] value Variable, so the adjacency weights flow through
// the tape like any other activation while the structure stays fixed for
// the whole forward/backward pass.
//
// Sparse-training contract: gradients reach the dense features AND the kept
// adjacency values; entries dropped by top-k receive EXACTLY zero gradient.
// For SparsifyTopK this is analytic, not an approximation — renormalizing a
// row distribution over its kept entries makes the result independent of
// the dropped mass, so d(output)/d(dropped entry) == 0 identically.
#ifndef TGCRN_AUTOGRAD_SPARSE_OPS_H_
#define TGCRN_AUTOGRAD_SPARSE_OPS_H_

#include <cstdint>
#include <memory>

#include "autograd/variable.h"
#include "graph/csr.h"

namespace tgcrn {
namespace ag {

// A batch of CSR adjacencies with differentiable values. `index` is shared
// (never mutated after construction except for the idempotent transpose
// build); `values` is slot-major [batch, nnz] matching graph::CsrBatch.
struct SparseGraph {
  std::shared_ptr<graph::CsrIndex> index;
  Variable values;  // [batch, nnz]

  bool defined() const { return index != nullptr; }
};

// Differentiable dense -> top-k -> CSR sparsify (graph::SparsifyTopK for
// the forward selection). Backward: with S the row's kept sum and v the
// renormalized outputs, grad wrt a kept input a_u is
// (g_u - sum_s g_s v_s) / S; dropped entries get exactly zero. Rows that
// hit the all-zero uniform fallback are constant, so their grad is zero.
SparseGraph SparsifyTopK(const Variable& dense, int64_t k);

// Batched SpMM: out[b] = A_b @ x[b] with A_b the b-th CSR item and x a
// dense [batch, cols, c] feature block; out is [batch, rows, c]. Scalar /
// AVX2 kernels behind the TGCRN_ISA dispatch (tensor/kernels/spmm.h),
// parallelized over fixed row (forward), column (grad-x) and slot
// (grad-values) chunks — bitwise deterministic at a fixed ISA for any
// thread count. Gradients flow to x and to graph.values.
Variable SpmmCsr(const SparseGraph& graph, const Variable& x);

}  // namespace ag
}  // namespace tgcrn

#endif  // TGCRN_AUTOGRAD_SPARSE_OPS_H_
