// Copyright 2026 TGCRN Reproduction Authors
// Tape-based reverse-mode automatic differentiation over tgcrn::Tensor.
//
// A Variable is a cheap shared handle to a node in a dynamically built
// computation graph. Operations in autograd/ops.h create new Variables whose
// nodes remember their parents and a backward closure; calling
// Variable::Backward() runs a reverse topological sweep accumulating
// gradients into every node with requires_grad set (directly or via an
// ancestor). Gradients are stored per-node and survive until ZeroGrad().
//
// Memory model. Nodes live in one of two regimes:
//   * Heap nodes (the default): intrusively refcounted via NodeRef and freed
//     when the last handle drops. Leaves (parameters, inputs) are always
//     heap nodes.
//   * Arena nodes: while a StepArenaScope is active (and the arena is
//     enabled, see TGCRN_AUTOGRAD_ARENA), every interior op node is
//     placement-built in a per-thread bump arena. Copying a handle to an
//     arena node is free, and when the outermost scope ends the whole graph
//     is torn down with a flat walk over an intrusive list — destructors run
//     child-first in one loop instead of recursing through parent edges —
//     followed by an O(1) arena reset that keeps the blocks for the next
//     step. Handles to arena nodes must not outlive the scope that built
//     them (Detach() first if a value has to escape).
// Both regimes build byte-identical graphs and run the same kernels, so
// losses are bitwise identical with the arena on or off.
#ifndef TGCRN_AUTOGRAD_VARIABLE_H_
#define TGCRN_AUTOGRAD_VARIABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace tgcrn {
namespace ag {

class Variable;

namespace internal {

struct Node;

// Intrusive smart handle to a Node. For heap-owned nodes it maintains an
// atomic refcount and deletes the node when the count hits zero; for
// arena-owned nodes copies and destruction are no-ops (the step arena owns
// the storage and destroys all nodes at scope end).
class NodeRef {
 public:
  NodeRef() = default;
  NodeRef(const NodeRef& other) : ptr_(other.ptr_) { Retain(); }
  NodeRef(NodeRef&& other) noexcept : ptr_(other.ptr_) { other.ptr_ = nullptr; }
  NodeRef& operator=(const NodeRef& other) {
    if (this != &other) {
      Release();
      ptr_ = other.ptr_;
      Retain();
    }
    return *this;
  }
  NodeRef& operator=(NodeRef&& other) noexcept {
    if (this != &other) {
      Release();
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
    }
    return *this;
  }
  ~NodeRef() { Release(); }

  Node* get() const { return ptr_; }
  Node* operator->() const { return ptr_; }
  Node& operator*() const { return *ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }
  bool operator==(const NodeRef& other) const { return ptr_ == other.ptr_; }
  bool operator==(std::nullptr_t) const { return ptr_ == nullptr; }

  // Takes ownership of a heap node whose refcount is already 1.
  static NodeRef AdoptHeap(Node* node) {
    NodeRef ref;
    ref.ptr_ = node;
    return ref;
  }
  // Wraps an arena node (no ownership; the arena frees it).
  static NodeRef WrapArena(Node* node) {
    NodeRef ref;
    ref.ptr_ = node;
    return ref;
  }

 private:
  inline void Retain();
  inline void Release();

  Node* ptr_ = nullptr;
};

// Type-erased backward closure with fixed inline storage, so closures live
// inside the Node itself (and hence inside the arena) instead of behind a
// std::function heap allocation. Every closure in ops.cc captures at most a
// couple of NodeRefs plus one Tensor, well under the inline capacity; a
// larger capture is a compile error rather than a silent heap fallback.
class BackwardFn {
 public:
  static constexpr size_t kInlineBytes = 128;

  BackwardFn() = default;
  BackwardFn(const BackwardFn&) = delete;
  BackwardFn& operator=(const BackwardFn&) = delete;
  ~BackwardFn() { Reset(); }

  template <typename F>
  void Emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "backward closure exceeds BackwardFn inline storage; "
                  "raise kInlineBytes");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned backward closure");
    Reset();
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    invoke_ = [](const unsigned char* s, const Tensor& g) {
      (*std::launder(reinterpret_cast<const Fn*>(s)))(g);
    };
    destroy_ = [](unsigned char* s) {
      std::launder(reinterpret_cast<Fn*>(s))->~Fn();
    };
  }

  void operator()(const Tensor& grad_out) const { invoke_(storage_, grad_out); }
  explicit operator bool() const { return invoke_ != nullptr; }

  void Reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(const unsigned char*, const Tensor&) = nullptr;
  void (*destroy_)(unsigned char*) = nullptr;
};

// Fixed-capacity parent list. Capacity is chosen once at node construction
// (almost every op has one or two parents, which fit inline); wider ops
// like Concat spill to a single exact-size heap array. Never grows.
class ParentVec {
 public:
  static constexpr size_t kInlineSlots = 2;

  ParentVec() = default;
  ParentVec(const ParentVec&) = delete;
  ParentVec& operator=(const ParentVec&) = delete;
  ~ParentVec() { clear(); }

  inline void InitCapacity(size_t capacity);
  inline void EmplaceBack(NodeRef ref);
  inline void clear();

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const NodeRef& operator[](size_t i) const { return slots()[i]; }
  const NodeRef* begin() const { return slots(); }
  const NodeRef* end() const { return slots() + size_; }

 private:
  NodeRef* slots() {
    return spill_ != nullptr
               ? spill_
               : std::launder(reinterpret_cast<NodeRef*>(inline_));
  }
  const NodeRef* slots() const {
    return spill_ != nullptr
               ? spill_
               : std::launder(reinterpret_cast<const NodeRef*>(inline_));
  }

  alignas(NodeRef) unsigned char inline_[sizeof(NodeRef) * kInlineSlots];
  NodeRef* spill_ = nullptr;  // exact-size heap array when capacity > 2
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineSlots;
};

// Graph node. Heap nodes are owned via NodeRef handles; arena nodes are
// owned by the per-thread step arena and merely referenced by handles.
struct Node {
  Tensor value;
  Tensor grad;            // valid iff has_grad; retained across ZeroGrad
  bool has_grad = false;
  bool requires_grad = false;  // set for leaves the optimizer updates
  bool needs_grad = false;     // this or an ancestor requires grad
  bool arena_owned = false;    // storage regime (see NodeRef)
  std::atomic<int32_t> refcount{1};  // heap nodes only; unused in the arena
  // Monotonic mark used by Backward's topo sort instead of a hash set.
  uint64_t visit_epoch = 0;
  // Intrusive list of all nodes built in the current arena step, in reverse
  // creation order (walking it destroys children before their parents).
  Node* next_in_step = nullptr;
  // Parents this node was computed from (empty for leaves).
  ParentVec parents;
  // Propagates `grad_out` (d loss / d value) into the parents' grads.
  // Empty for leaves.
  BackwardFn backward_fn;

  // Accumulates `g` into this->grad. The grad buffer is allocated on first
  // use and then retained across ZeroGrad(): later steps memset it in place
  // instead of reallocating (counted by tensor.grad_buffer_reuse).
  void AccumulateGrad(const Tensor& g);
  // grad += scale * g without materializing the scaled temporary.
  void AccumulateScaledGrad(const Tensor& g, float scale);
  // grad += a * b elementwise without materializing the product.
  void AccumulateProductGrad(const Tensor& a, const Tensor& b);

 private:
  // Zero-fills (reusing the retained buffer when possible) before the first
  // accumulation of a backward pass.
  void PrepareGrad();
};

void NodeRef::Retain() {
  if (ptr_ != nullptr && !ptr_->arena_owned) {
    ptr_->refcount.fetch_add(1, std::memory_order_relaxed);
  }
}

void NodeRef::Release() {
  if (ptr_ != nullptr && !ptr_->arena_owned) {
    if (ptr_->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete ptr_;
    }
  }
  ptr_ = nullptr;
}

void ParentVec::InitCapacity(size_t capacity) {
  clear();
  if (capacity > kInlineSlots) {
    spill_ = static_cast<NodeRef*>(
        ::operator new(capacity * sizeof(NodeRef), std::align_val_t{alignof(NodeRef)}));
    capacity_ = static_cast<uint32_t>(capacity);
  }
}

void ParentVec::EmplaceBack(NodeRef ref) {
  ::new (static_cast<void*>(slots() + size_)) NodeRef(std::move(ref));
  ++size_;
}

void ParentVec::clear() {
  NodeRef* data = slots();
  for (size_t i = 0; i < size_; ++i) data[i].~NodeRef();
  size_ = 0;
  if (spill_ != nullptr) {
    ::operator delete(spill_, std::align_val_t{alignof(NodeRef)});
    spill_ = nullptr;
    capacity_ = kInlineSlots;
  }
}

// Allocates a heap leaf node (refcount 1).
NodeRef NewLeafNode(Tensor value, bool requires_grad);
// Allocates an interior node — in the step arena when one is active on this
// thread, on the heap otherwise — wiring up `parents` and needs_grad, and
// bumping autograd.forward_ops. When no parent needs gradients the history
// is dropped (parents stay empty) and the caller skips the closure.
NodeRef NewOpNode(Tensor value, const Variable* parents, size_t num_parents);

// Per-thread arena introspection (tests and benchmarks).
struct GraphArenaStats {
  bool in_step = false;            // a StepArenaScope is active
  int64_t live_nodes = 0;          // nodes built in the current step
  int64_t nodes_allocated_total = 0;  // arena nodes over the thread lifetime
  size_t bytes_used = 0;
  size_t high_water_bytes = 0;
};
GraphArenaStats ThreadGraphArenaStats();

}  // namespace internal

// Value-semantic handle to a graph node.
class Variable {
 public:
  // Null handle; defined() is false.
  Variable() = default;

  // Leaf variable. If `requires_grad`, Backward() will populate grad().
  // Leaves are always heap-allocated so they can outlive any arena step.
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const {
    TGCRN_CHECK(defined());
    return node_->value;
  }

  // The accumulated gradient; CHECK-fails if none has been computed.
  const Tensor& grad() const {
    TGCRN_CHECK(defined() && node_->has_grad) << "no gradient accumulated";
    return node_->grad;
  }
  bool has_grad() const { return defined() && node_->has_grad; }
  bool requires_grad() const { return defined() && node_->requires_grad; }
  // True if gradients flow through this node (it or an ancestor is a
  // trainable leaf).
  bool needs_grad() const { return defined() && node_->needs_grad; }

  // Marks the gradient as cleared. The buffer itself is retained and
  // memset-reused by the next backward pass (zero grad allocations in
  // steady state), so the storage pointer is stable across steps.
  void ZeroGrad() {
    TGCRN_CHECK(defined());
    node_->has_grad = false;
  }

  // Replaces the value in place (used by optimizers on leaves).
  void SetValue(Tensor value) {
    TGCRN_CHECK(defined());
    node_->value = std::move(value);
  }

  // Mutable access to a leaf's value tensor for in-place optimizer updates.
  // The storage (and hence data pointer) is preserved. Only meaningful
  // before the next forward pass: closures recorded earlier see the update.
  Tensor& mutable_value() {
    TGCRN_CHECK(defined());
    return node_->value;
  }

  // Runs reverse-mode differentiation seeding d(this)/d(this) = 1.
  // This variable must hold a single element (a scalar loss).
  void Backward() const;
  // Runs reverse-mode differentiation with an explicit output gradient.
  void Backward(const Tensor& grad_output) const;

  // Returns a new heap leaf with the same value and no graph history. Safe
  // to hold across a StepArenaScope boundary (the tensor storage is shared,
  // not copied).
  Variable Detach() const;

  // Shape conveniences.
  const Shape& shape() const { return value().shape(); }
  int64_t size(int64_t axis) const { return value().size(axis); }
  int64_t numel() const { return value().numel(); }

  // Internal: used by ops to build graph nodes.
  static Variable FromNode(internal::NodeRef node);
  const internal::NodeRef& node() const { return node_; }

 private:
  internal::NodeRef node_;
};

// True when ops record graph history on this thread (the default).
bool GradEnabled();

// Builds an interior node: value computed from parents with the given
// backward closure. The closure must route grad_out into each parent that
// needs_grad (it may skip parents that don't). Declared here so layered ops
// outside ops.cc (e.g. custom fused ops) can also create nodes. Under a
// NoGradGuard this skips graph construction entirely and returns a plain
// leaf holding `value`. The closure is stored inline in the node
// (BackwardFn), so it must fit kInlineBytes — enforced at compile time.
template <typename F>
Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    F backward_fn) {
  if (!GradEnabled()) return Variable(std::move(value));
  internal::NodeRef node =
      internal::NewOpNode(std::move(value), parents.data(), parents.size());
  if (node->needs_grad) node->backward_fn.Emplace(std::move(backward_fn));
  return Variable::FromNode(std::move(node));
}

// RAII inference mode: while alive, ops on this thread build no graph
// nodes and no backward closures — MakeOpNode returns a bare leaf, the
// autograd.forward_ops counter stays flat, and no activations are
// retained. Guards nest; the previous state is restored on destruction.
// Calling Backward() on a Variable produced under the guard aborts (it has
// no graph), exactly like any other leaf.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// Whether StepArenaScope engages the per-thread graph arena. Defaults to
// the TGCRN_AUTOGRAD_ARENA environment variable (unset/1 = on, 0 = off);
// SetAutogradArenaEnabled overrides it at runtime. Toggling takes effect at
// the next scope entry, never mid-step.
bool AutogradArenaEnabled();
void SetAutogradArenaEnabled(bool enabled);

// RAII training-step scope: while the outermost scope is alive (and the
// arena is enabled), interior graph nodes on this thread are bump-allocated
// in a per-thread arena. The destructor destroys every node built during
// the step in one flat list walk and resets the arena in O(1), updating the
// arena.bytes_high_water gauge. Scopes nest (inner scopes are no-ops).
//
// Contract: no Variable holding an interior node from inside the scope may
// be used after the outermost scope ends — copy values out via Detach() or
// value() first. Leaves (parameters, Variable(tensor) inputs) are heap
// nodes and are unaffected.
class StepArenaScope {
 public:
  StepArenaScope();
  ~StepArenaScope();
  StepArenaScope(const StepArenaScope&) = delete;
  StepArenaScope& operator=(const StepArenaScope&) = delete;

 private:
  bool engaged_;
};

}  // namespace ag
}  // namespace tgcrn

#endif  // TGCRN_AUTOGRAD_VARIABLE_H_
