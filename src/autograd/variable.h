// Copyright 2026 TGCRN Reproduction Authors
// Tape-based reverse-mode automatic differentiation over tgcrn::Tensor.
//
// A Variable is a cheap shared handle to a node in a dynamically built
// computation graph. Operations in autograd/ops.h create new Variables whose
// nodes remember their parents and a backward closure; calling
// Variable::Backward() runs a reverse topological sweep accumulating
// gradients into every node with requires_grad set (directly or via an
// ancestor). Gradients are stored per-node and survive until ZeroGrad().
#ifndef TGCRN_AUTOGRAD_VARIABLE_H_
#define TGCRN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace tgcrn {
namespace ag {

class Variable;

namespace internal {

// Graph node. Owned via shared_ptr from Variables and children.
struct Node {
  Tensor value;
  Tensor grad;            // valid iff has_grad
  bool has_grad = false;
  bool requires_grad = false;  // set for leaves the optimizer updates
  bool needs_grad = false;     // this or an ancestor requires grad
  // Parents this node was computed from (empty for leaves).
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates `grad_out` (d loss / d value) into the parents' grads.
  // Null for leaves.
  std::function<void(const Tensor& grad_out)> backward_fn;

  // Accumulates `g` into this->grad (allocating zeros first if absent).
  void AccumulateGrad(const Tensor& g);
  // grad += scale * g without materializing the scaled temporary.
  void AccumulateScaledGrad(const Tensor& g, float scale);
  // grad += a * b elementwise without materializing the product.
  void AccumulateProductGrad(const Tensor& a, const Tensor& b);
};

}  // namespace internal

// Value-semantic handle to a graph node.
class Variable {
 public:
  // Null handle; defined() is false.
  Variable() = default;

  // Leaf variable. If `requires_grad`, Backward() will populate grad().
  explicit Variable(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const {
    TGCRN_CHECK(defined());
    return node_->value;
  }

  // The accumulated gradient; CHECK-fails if none has been computed.
  const Tensor& grad() const {
    TGCRN_CHECK(defined() && node_->has_grad) << "no gradient accumulated";
    return node_->grad;
  }
  bool has_grad() const { return defined() && node_->has_grad; }
  bool requires_grad() const { return defined() && node_->requires_grad; }
  // True if gradients flow through this node (it or an ancestor is a
  // trainable leaf).
  bool needs_grad() const { return defined() && node_->needs_grad; }

  // Clears this node's gradient (typically called on leaves between steps).
  void ZeroGrad() {
    TGCRN_CHECK(defined());
    node_->has_grad = false;
  }

  // Replaces the value in place (used by optimizers on leaves).
  void SetValue(Tensor value) {
    TGCRN_CHECK(defined());
    node_->value = std::move(value);
  }

  // Runs reverse-mode differentiation seeding d(this)/d(this) = 1.
  // This variable must hold a single element (a scalar loss).
  void Backward() const;
  // Runs reverse-mode differentiation with an explicit output gradient.
  void Backward(const Tensor& grad_output) const;

  // Returns a new leaf with the same value and no graph history.
  Variable Detach() const;

  // Shape conveniences.
  const Shape& shape() const { return value().shape(); }
  int64_t size(int64_t axis) const { return value().size(axis); }
  int64_t numel() const { return value().numel(); }

  // Internal: used by ops to build graph nodes.
  static Variable FromNode(std::shared_ptr<internal::Node> node);
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

// Builds an interior node: value computed from parents with the given
// backward closure. The closure must route grad_out into each parent that
// needs_grad (it may skip parents that don't). Declared here so layered ops
// outside ops.cc (e.g. custom fused ops) can also create nodes. Under a
// NoGradGuard this skips graph construction entirely and returns a plain
// leaf holding `value`.
Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    std::function<void(const Tensor&)> backward_fn);

// True when ops record graph history on this thread (the default).
bool GradEnabled();

// RAII inference mode: while alive, ops on this thread build no graph
// nodes and no backward closures — MakeOpNode returns a bare leaf, the
// autograd.forward_ops counter stays flat, and no activations are
// retained. Guards nest; the previous state is restored on destruction.
// Calling Backward() on a Variable produced under the guard aborts (it has
// no graph), exactly like any other leaf.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace ag
}  // namespace tgcrn

#endif  // TGCRN_AUTOGRAD_VARIABLE_H_
