// Copyright 2026 TGCRN Reproduction Authors
// Differentiable operations over ag::Variable. Each op computes its value
// eagerly with tensor kernels and records a backward closure on the graph.
// All shape semantics mirror src/tensor (NumPy broadcasting, batched matmul).
#ifndef TGCRN_AUTOGRAD_OPS_H_
#define TGCRN_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "common/rng.h"

namespace tgcrn {
namespace ag {

// --- Arithmetic (broadcasting) ---------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

inline Variable operator+(const Variable& a, const Variable& b) {
  return Add(a, b);
}
inline Variable operator-(const Variable& a, const Variable& b) {
  return Sub(a, b);
}
inline Variable operator*(const Variable& a, const Variable& b) {
  return Mul(a, b);
}
inline Variable operator/(const Variable& a, const Variable& b) {
  return Div(a, b);
}

// --- Linear algebra ---------------------------------------------------------
// Batched matmul (..., m, k) x (..., k, n) -> (..., m, n).
Variable Matmul(const Variable& a, const Variable& b);

// --- Nonlinearities ---------------------------------------------------------
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Abs(const Variable& a);
Variable Pow(const Variable& a, float exponent);
Variable Softmax(const Variable& a, int64_t axis);
// Inverted-dropout: at train time zeroes elements w.p. `p` and rescales by
// 1/(1-p); identity at eval time.
Variable Dropout(const Variable& a, float p, bool training, Rng* rng);

// --- Reductions --------------------------------------------------------------
Variable Sum(const Variable& a, int64_t axis, bool keepdim = false);
Variable Mean(const Variable& a, int64_t axis, bool keepdim = false);
Variable SumAll(const Variable& a);   // rank-0 result
Variable MeanAll(const Variable& a);  // rank-0 result

// --- Shape -------------------------------------------------------------------
Variable Reshape(const Variable& a, Shape shape);
Variable Transpose(const Variable& a, int64_t axis0, int64_t axis1);
Variable Permute(const Variable& a, std::vector<int64_t> perm);
Variable Unsqueeze(const Variable& a, int64_t axis);
Variable Squeeze(const Variable& a, int64_t axis);
Variable Slice(const Variable& a, int64_t axis, int64_t start, int64_t end);
Variable BroadcastTo(const Variable& a, Shape shape);
Variable Concat(const std::vector<Variable>& parts, int64_t axis);
Variable Stack(const std::vector<Variable>& parts, int64_t axis);

// --- Gather ------------------------------------------------------------------
// Selects rows of `weight` ([V, ...]) by `indices`; gradient scatter-adds.
Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& indices);

// --- Losses ------------------------------------------------------------------
// Mean absolute error over all elements (the paper's L_error, Eq 18).
Variable MaeLoss(const Variable& pred, const Variable& target);
// Mean squared error over all elements.
Variable MseLoss(const Variable& pred, const Variable& target);
// Masked MAE: elements of `target` whose |value| <= null_threshold are
// excluded (traffic convention for missing sensor readings).
Variable MaskedMaeLoss(const Variable& pred, const Variable& target,
                       float null_threshold);

}  // namespace ag
}  // namespace tgcrn

#endif  // TGCRN_AUTOGRAD_OPS_H_
