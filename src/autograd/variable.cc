// Copyright 2026 TGCRN Reproduction Authors
#include "autograd/variable.h"

#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tgcrn {
namespace ag {

namespace {

obs::Counter* ForwardOpCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("autograd.forward_ops");
  return c;
}

obs::Counter* BackwardOpCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("autograd.backward_ops");
  return c;
}

// Per-thread graph-recording switch, toggled by NoGradGuard.
thread_local bool g_grad_enabled = true;

}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

namespace internal {

void Node::AccumulateGrad(const Tensor& g) {
  TGCRN_CHECK(g.shape() == value.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " != value shape " << ShapeToString(value.shape());
  if (!has_grad) {
    grad = Tensor::Zeros(value.shape());
    has_grad = true;
  }
  grad.AddInplace(g);
}

void Node::AccumulateScaledGrad(const Tensor& g, float scale) {
  TGCRN_CHECK(g.shape() == value.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " != value shape " << ShapeToString(value.shape());
  if (!has_grad) {
    grad = Tensor::Zeros(value.shape());
    has_grad = true;
  }
  grad.AddScaledInplace(g, scale);
}

void Node::AccumulateProductGrad(const Tensor& a, const Tensor& b) {
  TGCRN_CHECK(a.shape() == value.shape() && b.shape() == value.shape())
      << "gradient shape " << ShapeToString(a.shape()) << " * "
      << ShapeToString(b.shape()) << " != value shape "
      << ShapeToString(value.shape());
  if (!has_grad) {
    grad = Tensor::Zeros(value.shape());
    has_grad = true;
  }
  grad.AddProductInplace(a, b);
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = std::make_shared<internal::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
  node_->needs_grad = requires_grad;
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    std::function<void(const Tensor&)> backward_fn) {
  // Inference mode: no graph node, no closure, no counter traffic — the
  // result is a plain leaf and the parents' history is not retained.
  if (!g_grad_enabled) return Variable(std::move(value));
  ForwardOpCounter()->Add(1);
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  bool needs = false;
  for (const auto& p : parents) {
    TGCRN_CHECK(p.defined());
    node->parents.push_back(p.node());
    needs = needs || p.needs_grad();
  }
  node->needs_grad = needs;
  // If no parent needs gradients the graph history is dead weight; drop it
  // so inference-mode forward passes don't retain activations.
  if (needs) {
    node->backward_fn = std::move(backward_fn);
  } else {
    node->parents.clear();
  }
  return Variable::FromNode(std::move(node));
}

namespace {

// Builds a reverse topological order (children before parents) of the graph
// reachable from `root` following parent edges. Iterative DFS to avoid
// stack overflow on long recurrent chains (P x layers x gates nodes).
std::vector<internal::Node*> ReverseTopoOrder(internal::Node* root) {
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  // Each stack frame: (node, next parent index to visit).
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      internal::Node* parent = node->parents[next].get();
      ++next;
      if (parent->needs_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Postorder appends a node after its parents; reversing yields an order
  // where every node precedes its parents, i.e. each node's gradient is
  // complete before its backward_fn fires.
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

void Variable::Backward() const {
  TGCRN_CHECK(defined());
  TGCRN_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() without explicit gradient requires a scalar output";
  Backward(Tensor::Full(node_->value.shape(), 1.0f));
}

void Variable::Backward(const Tensor& grad_output) const {
  TGCRN_CHECK(defined());
  TGCRN_CHECK(node_->needs_grad)
      << "Backward() on a graph with no trainable leaves";
  // The graph walk itself stays serial on purpose: firing independent
  // branches concurrently would make the float accumulation order into
  // shared parents depend on thread scheduling, breaking the bitwise
  // determinism guarantee. Parallelism happens one level down instead —
  // every backward_fn and AccumulateGrad bottoms out in the thread-pooled
  // tensor kernels (matmul, elementwise, AddInplace), which keep a fixed
  // accumulation order regardless of thread count.
  TGCRN_TRACE_SCOPE("autograd.Backward");
  node_->AccumulateGrad(grad_output);
  const auto order = ReverseTopoOrder(node_.get());
  int64_t fired = 0;
  for (internal::Node* node : order) {
    if (node->backward_fn && node->has_grad) {
      node->backward_fn(node->grad);
      ++fired;
    }
    // Interior nodes' grads are only needed transiently; free them so a
    // full BPTT pass doesn't hold two tensors per op. Leaves keep theirs.
    if (!node->requires_grad && node != node_.get()) {
      node->has_grad = false;
      node->grad = Tensor();
    }
  }
  BackwardOpCounter()->Add(fired);
}

Variable Variable::Detach() const {
  TGCRN_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

}  // namespace ag
}  // namespace tgcrn
