// Copyright 2026 TGCRN Reproduction Authors
#include "autograd/variable.h"

#include <cstdlib>
#include <cstring>

#include "common/arena.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tgcrn {
namespace ag {

namespace {

obs::Counter* ForwardOpCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("autograd.forward_ops");
  return c;
}

obs::Counter* BackwardOpCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("autograd.backward_ops");
  return c;
}

// Grad-buffer zero-fills that reused the retained buffer instead of
// allocating a fresh one (steady-state steps should be all reuse).
obs::Counter* GradBufferReuseCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("tensor.grad_buffer_reuse");
  return c;
}

obs::Counter* ArenaNodeCounter() {
  static obs::Counter* c =
      obs::Registry::Global().GetCounter("arena.nodes_allocated");
  return c;
}

obs::Counter* ArenaStepCounter() {
  static obs::Counter* c = obs::Registry::Global().GetCounter("arena.steps");
  return c;
}

obs::Gauge* ArenaHighWaterGauge() {
  static obs::Gauge* g =
      obs::Registry::Global().GetGauge("arena.bytes_high_water");
  return g;
}

// Per-thread graph-recording switch, toggled by NoGradGuard.
thread_local bool g_grad_enabled = true;

// Arena gate: -1 = read TGCRN_AUTOGRAD_ARENA on first use, else 0/1.
std::atomic<int> g_arena_enabled{-1};

// Per-thread step arena. Interior nodes created while `depth > 0` are
// placement-built in `arena` and chained on `head` in reverse creation
// order; EndStep destroys them child-first in one flat walk and rewinds
// the arena, keeping its blocks for the next step.
struct GraphArena {
  common::Arena arena;
  internal::Node* head = nullptr;
  int depth = 0;  // nesting of engaged StepArenaScopes
  int64_t live_nodes = 0;
  int64_t nodes_allocated_total = 0;

  bool active() const { return depth > 0; }

  internal::Node* NewNode() {
    void* mem = arena.AllocateFor<internal::Node>();
    auto* node = new (mem) internal::Node();
    node->arena_owned = true;
    node->next_in_step = head;
    head = node;
    ++live_nodes;
    ++nodes_allocated_total;
    return node;
  }

  void EndStep() {
    // Child-first teardown: the list is in reverse creation order and a
    // node's parents always precede it, so each destructor only touches
    // parents that are still alive (releasing heap-leaf refcounts) —
    // without any recursion through parent edges.
    for (internal::Node* node = head; node != nullptr;
         node = node->next_in_step) {
      node->~Node();
    }
    head = nullptr;
    live_nodes = 0;
    ArenaHighWaterGauge()->Set(
        static_cast<double>(arena.stats().high_water_bytes));
    arena.Reset();
  }
};

GraphArena& ThreadGraphArena() {
  thread_local GraphArena arena;
  return arena;
}

}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool AutogradArenaEnabled() {
  int state = g_arena_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("TGCRN_AUTOGRAD_ARENA");
    state = (env == nullptr || std::strcmp(env, "0") != 0) ? 1 : 0;
    g_arena_enabled.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void SetAutogradArenaEnabled(bool enabled) {
  g_arena_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

StepArenaScope::StepArenaScope() : engaged_(AutogradArenaEnabled()) {
  if (engaged_) {
    GraphArena& ga = ThreadGraphArena();
    if (++ga.depth == 1) ArenaStepCounter()->Add(1);
  }
}

StepArenaScope::~StepArenaScope() {
  if (engaged_) {
    GraphArena& ga = ThreadGraphArena();
    TGCRN_CHECK(ga.depth > 0);
    if (--ga.depth == 0) ga.EndStep();
  }
}

namespace internal {

void Node::PrepareGrad() {
  if (has_grad) return;
  if (grad.numel() > 0 && grad.shape() == value.shape()) {
    // Steady-state path: the buffer retained across ZeroGrad() is zeroed
    // in place — same storage, no allocation. 0 + g == g keeps results
    // bitwise identical to the allocate-fresh path.
    grad.FillInplace(0.0f);
    GradBufferReuseCounter()->Add(1);
  } else {
    grad = Tensor::Zeros(value.shape());
  }
  has_grad = true;
}

void Node::AccumulateGrad(const Tensor& g) {
  TGCRN_CHECK(g.shape() == value.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " != value shape " << ShapeToString(value.shape());
  PrepareGrad();
  grad.AddInplace(g);
}

void Node::AccumulateScaledGrad(const Tensor& g, float scale) {
  TGCRN_CHECK(g.shape() == value.shape())
      << "gradient shape " << ShapeToString(g.shape())
      << " != value shape " << ShapeToString(value.shape());
  PrepareGrad();
  grad.AddScaledInplace(g, scale);
}

void Node::AccumulateProductGrad(const Tensor& a, const Tensor& b) {
  TGCRN_CHECK(a.shape() == value.shape() && b.shape() == value.shape())
      << "gradient shape " << ShapeToString(a.shape()) << " * "
      << ShapeToString(b.shape()) << " != value shape "
      << ShapeToString(value.shape());
  PrepareGrad();
  grad.AddProductInplace(a, b);
}

NodeRef NewLeafNode(Tensor value, bool requires_grad) {
  auto* node = new Node();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->needs_grad = requires_grad;
  return NodeRef::AdoptHeap(node);
}

NodeRef NewOpNode(Tensor value, const Variable* parents,
                  size_t num_parents) {
  ForwardOpCounter()->Add(1);
  GraphArena& ga = ThreadGraphArena();
  NodeRef ref;
  if (ga.active()) {
    ArenaNodeCounter()->Add(1);
    ref = NodeRef::WrapArena(ga.NewNode());
  } else {
    ref = NodeRef::AdoptHeap(new Node());
  }
  Node* node = ref.get();
  node->value = std::move(value);
  bool needs = false;
  for (size_t i = 0; i < num_parents; ++i) {
    TGCRN_CHECK(parents[i].defined());
    needs = needs || parents[i].needs_grad();
  }
  node->needs_grad = needs;
  // If no parent needs gradients the graph history is dead weight; leave
  // the parent list empty so inference-style forward passes don't retain
  // activations (the caller also skips installing the closure).
  if (needs) {
    node->parents.InitCapacity(num_parents);
    for (size_t i = 0; i < num_parents; ++i) {
      node->parents.EmplaceBack(parents[i].node());
    }
  }
  return ref;
}

GraphArenaStats ThreadGraphArenaStats() {
  GraphArena& ga = ThreadGraphArena();
  GraphArenaStats stats;
  stats.in_step = ga.active();
  stats.live_nodes = ga.live_nodes;
  stats.nodes_allocated_total = ga.nodes_allocated_total;
  const common::Arena::Stats as = ga.arena.stats();
  stats.bytes_used = as.bytes_used;
  stats.high_water_bytes = as.high_water_bytes;
  return stats;
}

}  // namespace internal

Variable::Variable(Tensor value, bool requires_grad) {
  node_ = internal::NewLeafNode(std::move(value), requires_grad);
}

Variable Variable::FromNode(internal::NodeRef node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

namespace {

// Source of unique visit marks for ReverseTopoOrder. A fetch_add per
// Backward call gives every concurrent walk (on disjoint graphs) its own
// epoch, so nodes need no per-walk hash set membership — just a field
// compare against the current epoch.
std::atomic<uint64_t> g_visit_epoch{0};

// Builds a reverse topological order (children before parents) of the graph
// reachable from `root` following parent edges. Iterative DFS to avoid
// stack overflow on long recurrent chains (P x layers x gates nodes).
std::vector<internal::Node*> ReverseTopoOrder(internal::Node* root) {
  const uint64_t epoch =
      g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  std::vector<internal::Node*> order;
  // Each stack frame: (node, next parent index to visit).
  std::vector<std::pair<internal::Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  root->visit_epoch = epoch;
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      internal::Node* parent = node->parents[next].get();
      ++next;
      if (parent->needs_grad && parent->visit_epoch != epoch) {
        parent->visit_epoch = epoch;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Postorder appends a node after its parents; reversing yields an order
  // where every node precedes its parents, i.e. each node's gradient is
  // complete before its backward_fn fires.
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

void Variable::Backward() const {
  TGCRN_CHECK(defined());
  TGCRN_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() without explicit gradient requires a scalar output";
  Backward(Tensor::Full(node_->value.shape(), 1.0f));
}

void Variable::Backward(const Tensor& grad_output) const {
  TGCRN_CHECK(defined());
  TGCRN_CHECK(node_->needs_grad)
      << "Backward() on a graph with no trainable leaves";
  // The graph walk itself stays serial on purpose: firing independent
  // branches concurrently would make the float accumulation order into
  // shared parents depend on thread scheduling, breaking the bitwise
  // determinism guarantee. Parallelism happens one level down instead —
  // every backward_fn and AccumulateGrad bottoms out in the thread-pooled
  // tensor kernels (matmul, elementwise, AddInplace), which keep a fixed
  // accumulation order regardless of thread count.
  TGCRN_TRACE_SCOPE("autograd.Backward");
  node_->AccumulateGrad(grad_output);
  const auto order = ReverseTopoOrder(node_.get());
  int64_t fired = 0;
  for (internal::Node* node : order) {
    if (node->backward_fn && node->has_grad) {
      node->backward_fn(node->grad);
      ++fired;
    }
    // Interior nodes' grads are only needed transiently; free them so a
    // full BPTT pass doesn't hold two tensors per op. Leaves keep theirs —
    // the buffer is the one retained and reused across steps.
    if (!node->requires_grad && node != node_.get()) {
      node->has_grad = false;
      node->grad = Tensor();
    }
  }
  BackwardOpCounter()->Add(fired);
}

Variable Variable::Detach() const {
  TGCRN_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

}  // namespace ag
}  // namespace tgcrn
