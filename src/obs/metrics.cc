// Copyright 2026 TGCRN Reproduction Authors
#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/json.h"

namespace tgcrn {
namespace obs {

int HistogramBucketIndex(int64_t value) {
  if (value <= 0) return 0;
  // bit_width(value): floor(log2) + 1, so value 1 -> bucket 1, 2..3 -> 2,
  // 4..7 -> 3, ...
  int width = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++width;
  }
  return std::min(width, kHistogramBuckets - 1);
}

int64_t HistogramBucketLowerBound(int bucket) {
  if (bucket <= 0) return 0;
  return int64_t{1} << (bucket - 1);
}

int ThisThreadStripe() {
  static std::atomic<int> next{0};
  thread_local const int stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& s : stripes_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& s : stripes_) s.value.store(0, std::memory_order_relaxed);
}

uint64_t Gauge::ToBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double Gauge::FromBits(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

int64_t HistogramSnapshot::ApproxQuantile(double quantile) const {
  if (count <= 0) return 0;
  quantile = std::max(0.0, std::min(1.0, quantile));
  const auto target =
      static_cast<int64_t>(quantile * static_cast<double>(count - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) {
      // Upper bound of bucket b (== lower bound of b+1); the overflow
      // bucket reports its own lower bound.
      return b + 1 < kHistogramBuckets ? HistogramBucketLowerBound(b + 1)
                                       : HistogramBucketLowerBound(b);
    }
  }
  return HistogramBucketLowerBound(kHistogramBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (const auto& s : stripes_) {
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snapshot.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snapshot.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (const int64_t b : snapshot.buckets) snapshot.count += b;
  return snapshot;
}

void Histogram::Reset() {
  for (auto& s : stripes_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

std::string RegistrySnapshot::ToText() const {
  std::ostringstream out;
  for (const auto& sample : samples) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out << sample.name << " " << sample.counter_value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        out << sample.name << " " << sample.gauge_value << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        out << sample.name << ".count " << sample.histogram.count << "\n"
            << sample.name << ".sum " << sample.histogram.sum << "\n"
            << sample.name << ".p50 "
            << sample.histogram.ApproxQuantile(0.5) << "\n"
            << sample.name << ".p90 "
            << sample.histogram.ApproxQuantile(0.9) << "\n"
            << sample.name << ".p99 "
            << sample.histogram.ApproxQuantile(0.99) << "\n"
            << sample.name << ".p999 "
            << sample.histogram.ApproxQuantile(0.999) << "\n";
        break;
    }
  }
  return out.str();
}

Json RegistrySnapshot::ToJson() const {
  Json root = Json::Object();
  for (const auto& sample : samples) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        root.Set(sample.name, Json::Int(sample.counter_value));
        break;
      case MetricSample::Kind::kGauge:
        root.Set(sample.name, Json::Number(sample.gauge_value));
        break;
      case MetricSample::Kind::kHistogram: {
        Json h = Json::Object();
        h.Set("count", Json::Int(sample.histogram.count));
        h.Set("sum", Json::Int(sample.histogram.sum));
        h.Set("mean", Json::Number(sample.histogram.Mean()));
        h.Set("p50", Json::Int(sample.histogram.ApproxQuantile(0.5)));
        h.Set("p90", Json::Int(sample.histogram.ApproxQuantile(0.9)));
        h.Set("p99", Json::Int(sample.histogram.ApproxQuantile(0.99)));
        h.Set("p999", Json::Int(sample.histogram.ApproxQuantile(0.999)));
        Json buckets = Json::Array();
        // Emit only the populated prefix ranges to keep reports small:
        // [lower_bound, count] pairs for non-empty buckets.
        for (int b = 0; b < kHistogramBuckets; ++b) {
          if (sample.histogram.buckets[b] == 0) continue;
          Json pair = Json::Array();
          pair.Append(Json::Int(HistogramBucketLowerBound(b)));
          pair.Append(Json::Int(sample.histogram.buckets[b]));
          buckets.Append(std::move(pair));
        }
        h.Set("buckets", std::move(buckets));
        root.Set(sample.name, std::move(h));
        break;
      }
    }
  }
  return root;
}

struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked deliberately
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

RegistrySnapshot Registry::Collect() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  RegistrySnapshot snapshot;
  for (const auto& [name, counter] : impl_->counters) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kCounter;
    sample.counter_value = counter->Value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : impl_->gauges) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kGauge;
    sample.gauge_value = gauge->Value();
    snapshot.samples.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : impl_->histograms) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kHistogram;
    sample.histogram = histogram->Snapshot();
    snapshot.samples.push_back(std::move(sample));
  }
  std::sort(snapshot.samples.begin(), snapshot.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, counter] : impl_->counters) counter->Reset();
  for (auto& [name, histogram] : impl_->histograms) histogram->Reset();
}

bool DumpMetricsRegistry(const std::string& target) {
  const std::string text = Registry::Global().Collect().ToText();
  if (target == "stderr") {
    std::fputs(text.c_str(), stderr);
    return std::fflush(stderr) == 0;
  }
  std::FILE* out = std::fopen(target.c_str(), "w");
  if (out == nullptr) return false;
  const bool ok = std::fputs(text.c_str(), out) >= 0;
  return std::fclose(out) == 0 && ok;
}

const std::string& MetricsDumpTargetFromEnv() {
  static const std::string* target = [] {
    const char* v = std::getenv("TGCRN_METRICS_DUMP");
    return new std::string(v != nullptr ? v : "");
  }();
  return *target;
}

namespace {

// With TGCRN_METRICS_DUMP set, write the registry exposition at clean
// process exit. (The abort path in common/check.h dumps explicitly, since
// abort() skips atexit handlers.)
struct EnvDumpRegistrar {
  EnvDumpRegistrar() {
    if (!MetricsDumpTargetFromEnv().empty()) {
      std::atexit([] { DumpMetricsRegistry(MetricsDumpTargetFromEnv()); });
    }
  }
};
EnvDumpRegistrar env_dump_registrar;

}  // namespace

}  // namespace obs
}  // namespace tgcrn
