// Copyright 2026 TGCRN Reproduction Authors
// Structured training-run reports. The trainer records one EpochReport per
// epoch (losses, learning rate, gradient norm, wall-clock phase breakdown)
// and a final summary (per-horizon test metrics, totals). Serialization is
// JSONL: one self-describing object per line —
//
//   {"type":"epoch","epoch":0,"train_loss":...,"val_mae":...,"lr":...,
//    "grad_norm_mean":...,"grad_norm_last":...,"seconds":...,
//    "phase_seconds":{"forward":...,"backward":...,...}}
//   ...
//   {"type":"summary","model":...,"epochs_run":...,"test_average":{...},
//    "test_per_horizon":[...],"phase_seconds_total":{...},...}
//
// so a run can be tailed while training and parsed line-by-line afterwards
// (`python3 -m json.tool` validates each line). FromJsonl() parses the
// format back for tests and tooling.
//
// This header depends only on obs/json.h and std, so any layer can emit
// reports without cycles.
#ifndef TGCRN_OBS_REPORT_H_
#define TGCRN_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tgcrn {
namespace obs {

class Json;

// Canonical phase keys the trainer emits; other producers may add keys.
// "data": batch assembly, "forward"/"backward": network passes,
// "clip": gradient-norm clipping, "adam": optimizer step,
// "eval": validation/test evaluation.
inline const char* const kPhaseData = "data";
inline const char* const kPhaseForward = "forward";
inline const char* const kPhaseBackward = "backward";
inline const char* const kPhaseClip = "clip";
inline const char* const kPhaseAdam = "adam";
inline const char* const kPhaseEval = "eval";

struct EpochReport {
  int64_t epoch = 0;
  double train_loss = 0.0;
  double val_mae = 0.0;
  double lr = 0.0;
  double grad_norm_mean = 0.0;  // mean pre-clip global norm over batches
  double grad_norm_last = 0.0;  // final batch's pre-clip norm
  double seconds = 0.0;         // wall clock for the epoch (train + eval)
  std::map<std::string, double> phase_seconds;

  Json ToJson() const;
  static EpochReport FromJson(const Json& json);
};

struct HorizonMetricsReport {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // percent

  Json ToJson() const;
  static HorizonMetricsReport FromJson(const Json& json);
};

struct RunReport {
  std::string model;
  int64_t num_parameters = 0;
  int num_threads = 1;
  int64_t epochs_run = 0;
  double total_seconds = 0.0;
  std::vector<EpochReport> epochs;
  std::vector<HorizonMetricsReport> test_per_horizon;
  HorizonMetricsReport test_average;

  // Sum of each phase across epochs.
  std::map<std::string, double> PhaseTotals() const;

  Json SummaryJson() const;

  // Appends one JSONL line (epoch or summary object) to `path`, creating
  // the file if needed. Returns false on I/O failure.
  static bool AppendJsonLine(const std::string& path, const Json& line);

  // Parses a JSONL document (epoch lines + optional summary line, in any
  // order) produced by this format. Unknown line types are skipped.
  // Returns false if any line fails to parse as JSON.
  static bool FromJsonl(const std::string& content, RunReport* out);
};

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_REPORT_H_
