// Copyright 2026 TGCRN Reproduction Authors
// Structured training-run reports. The trainer records one EpochReport per
// epoch (losses, learning rate, gradient norm, wall-clock phase breakdown)
// and a final summary (per-horizon test metrics, totals). Serialization is
// JSONL: one self-describing object per line —
//
//   {"type":"epoch","epoch":0,"train_loss":...,"val_mae":...,"lr":...,
//    "grad_norm_mean":...,"grad_norm_last":...,"seconds":...,
//    "phase_seconds":{"forward":...,"backward":...,...}}
//   ...
//   {"type":"summary","model":...,"epochs_run":...,"test_average":{...},
//    "test_per_horizon":[...],"phase_seconds_total":{...},...}
//
// so a run can be tailed while training and parsed line-by-line afterwards
// (`python3 -m json.tool` validates each line). FromJsonl() parses the
// format back for tests and tooling.
//
// This header depends only on obs/json.h and std, so any layer can emit
// reports without cycles.
#ifndef TGCRN_OBS_REPORT_H_
#define TGCRN_OBS_REPORT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace tgcrn {
namespace obs {

class Json;

// Canonical phase keys the trainer emits; other producers may add keys.
// "data": batch assembly, "forward"/"backward": network passes,
// "clip": gradient-norm clipping, "adam": optimizer step,
// "eval": validation/test evaluation.
inline const char* const kPhaseData = "data";
inline const char* const kPhaseForward = "forward";
inline const char* const kPhaseBackward = "backward";
inline const char* const kPhaseClip = "clip";
inline const char* const kPhaseAdam = "adam";
inline const char* const kPhaseEval = "eval";
// Health-stat collection (only present on sampled epochs with TGCRN_HEALTH).
inline const char* const kPhaseHealth = "health";
// Profiler snapshot collection (only present with TGCRN_PROF).
inline const char* const kPhaseProf = "prof";

// Summary statistics of one tensor (a parameter, gradient, or activation).
// mean/rms/min/max cover the finite elements only, so they stay readable
// when a handful of elements blow up; nan_count/inf_count carry the blowup.
struct TensorStatsReport {
  int64_t count = 0;  // total elements
  double mean = 0.0;
  double rms = 0.0;
  double min = 0.0;
  double max = 0.0;
  int64_t nan_count = 0;
  int64_t inf_count = 0;
  double zero_fraction = 0.0;  // exact zeros / count

  bool HasNonFinite() const { return nan_count > 0 || inf_count > 0; }

  Json ToJson() const;
  static TensorStatsReport FromJson(const Json& json);
};

// Health of one named parameter: the value tensor and (when a backward
// pass has run) its gradient. `grad.count == 0` means "no gradient".
struct ModuleHealthReport {
  std::string name;  // hierarchical dotted name from nn::Module
  TensorStatsReport param;
  TensorStatsReport grad;

  Json ToJson() const;
  static ModuleHealthReport FromJson(const Json& json);
};

// Accumulated statistics of one tapped activation over `samples`
// observations inside the sampling window.
struct ActivationHealthReport {
  std::string name;
  int64_t samples = 0;
  TensorStatsReport stats;

  Json ToJson() const;
  static ActivationHealthReport FromJson(const Json& json);
};

// Diagnostics of the learned time-aware graph (TagSL), per epoch:
// whether the row-stochastic adjacency is collapsing to uniform
// (entropy -> 1) or to a delta (entropy -> 0), how much mass sits on
// strong edges, how much the graph moves between adjacent time slots,
// and how stable each node's top-k neighborhood is across epochs.
struct GraphHealthReport {
  double row_entropy = 0.0;     // mean row entropy, normalized to [0, 1]
  double sparsity = 0.0;        // fraction of total mass on entries >= threshold
  double temporal_drift = 0.0;  // mean |A^t - A^{t-1}| over entries
  // Mean top-k neighbor overlap with the previous collection; NaN until a
  // previous epoch exists (serialized as null).
  double topk_stability = std::numeric_limits<double>::quiet_NaN();
  int64_t topk = 0;

  Json ToJson() const;
  static GraphHealthReport FromJson(const Json& json);
};

// One epoch's model-health block (obs/health.h produces it).
struct HealthReport {
  int64_t non_finite_steps = 0;  // steps with a non-finite gradient norm
  std::vector<ModuleHealthReport> modules;
  std::vector<ActivationHealthReport> activations;
  bool has_graph = false;
  GraphHealthReport graph;

  Json ToJson() const;
  static HealthReport FromJson(const Json& json);
};

// One kernel entry point's aggregated cost over a profiling interval
// (obs/prof.h produces it). `exclusive_seconds` is caller-thread time spent
// inside the kernel scope minus nested scopes; `worker_seconds` is the
// additional pool-helper time attributed to this kernel through
// ParallelFor. `invocations`/`flops`/`bytes` come from the analytic cost
// models at the dispatch site, so they are deterministic — identical at any
// thread count and for any ISA. Hardware counters are zero when perf_event
// was unavailable.
struct ProfKernelReport {
  std::string name;
  int64_t invocations = 0;
  double exclusive_seconds = 0.0;
  double worker_seconds = 0.0;
  double flops = 0.0;
  double bytes = 0.0;
  int64_t instructions = 0;
  int64_t cycles = 0;
  int64_t l1_misses = 0;
  int64_t llc_misses = 0;
  int64_t branch_misses = 0;

  // Derived roofline quantities (serialized for readers, recomputed from
  // state on parse). GFlops uses caller-exclusive time: helper seconds
  // overlap the caller's wall clock, so adding them would undercount rate.
  double GFlops() const {
    return exclusive_seconds > 0.0 ? flops / exclusive_seconds / 1e9 : 0.0;
  }
  double ArithmeticIntensity() const {
    return bytes > 0.0 ? flops / bytes : 0.0;
  }
  double Ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }

  Json ToJson() const;
  static ProfKernelReport FromJson(const Json& json);
};

// One node of the aggregated attribution call tree. Nodes are stored in
// preorder; `parent` indexes into the same vector (-1 for the root). The
// path from the root is the node's identity when two profiles are
// subtracted or merged.
struct ProfNodeReport {
  std::string name;
  int64_t parent = -1;
  int64_t count = 0;
  double inclusive_seconds = 0.0;
  double exclusive_seconds = 0.0;
  double flops = 0.0;
  int64_t instructions = 0;
  int64_t cycles = 0;

  Json ToJson() const;
  static ProfNodeReport FromJson(const Json& json);
};

// One profiling interval: the attribution tree plus the per-kernel cost
// summary. Produced by obs::CollectProfReport(); the trainer embeds the
// per-epoch delta as a "prof" object in epoch JSONL lines.
struct ProfReport {
  bool counters_available = false;  // perf_event group opened successfully
  std::string isa;                  // resolved SIMD ISA ("scalar"/"avx2")
  int64_t threads = 0;              // pool width during the interval
  std::vector<ProfNodeReport> nodes;      // preorder, parent-indexed
  std::vector<ProfKernelReport> kernels;  // sorted by name

  Json ToJson() const;
  static ProfReport FromJson(const Json& json);

  // Collapsed-stack lines ("root;a;b <exclusive-ns>\n"), consumable by
  // standard flamegraph tooling. Zero-time frames are kept when they carry
  // invocation counts so the structure stays visible.
  std::string ToCollapsed() const;

  // this - prev, matching nodes by root path and kernels by name (entries
  // missing from `prev` subtract zero). Cumulative snapshots only grow, so
  // per-epoch deltas are exact.
  ProfReport DeltaFrom(const ProfReport& prev) const;

  // this += other, same matching rules; inserts paths `this` lacks.
  void Accumulate(const ProfReport& other);
};

struct EpochReport {
  int64_t epoch = 0;
  double train_loss = 0.0;
  double val_mae = 0.0;
  double lr = 0.0;
  double grad_norm_mean = 0.0;  // mean pre-clip global norm over batches
  double grad_norm_last = 0.0;  // final batch's pre-clip norm
  double seconds = 0.0;         // wall clock for the epoch (train + eval)
  std::map<std::string, double> phase_seconds;
  // Present only on epochs the health monitor sampled (TGCRN_HEALTH=1 at
  // the configured cadence); the epoch JSON line gains a "health" object.
  bool has_health = false;
  HealthReport health;
  // Present only when the profiler is armed (TGCRN_PROF / --prof); the
  // epoch JSON line gains a "prof" object holding this epoch's delta.
  bool has_prof = false;
  ProfReport prof;

  Json ToJson() const;
  static EpochReport FromJson(const Json& json);
};

struct HorizonMetricsReport {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // percent

  Json ToJson() const;
  static HorizonMetricsReport FromJson(const Json& json);
};

struct RunReport {
  std::string model;
  int64_t num_parameters = 0;
  int num_threads = 1;
  int64_t epochs_run = 0;
  double total_seconds = 0.0;
  std::vector<EpochReport> epochs;
  std::vector<HorizonMetricsReport> test_per_horizon;
  HorizonMetricsReport test_average;
  // Set by FromJsonl when a summary line was present, so tooling (the
  // report diff) can tell "no test metrics yet" from "all-zero metrics".
  bool has_summary = false;

  // Sum of each phase across epochs.
  std::map<std::string, double> PhaseTotals() const;

  Json SummaryJson() const;

  // Appends one JSONL line (epoch or summary object) to `path`, creating
  // the file if needed. Returns false on I/O failure.
  static bool AppendJsonLine(const std::string& path, const Json& line);

  // Parses a JSONL document (epoch lines + optional summary line, in any
  // order) produced by this format. Unknown line types are skipped.
  // Returns false if any line fails to parse as JSON — except a final
  // partial line with no trailing newline, which is treated as the
  // truncated tail of a run still in progress (or killed mid-write) and
  // ignored, so tailing tools can diff a live report.
  static bool FromJsonl(const std::string& content, RunReport* out);
};

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_REPORT_H_
