// Copyright 2026 TGCRN Reproduction Authors
#include "obs/rpc_trace.h"

namespace tgcrn {
namespace obs {

namespace internal {
std::atomic<bool> g_rpc_trace_armed{false};
}  // namespace internal

void SetRpcTracingArmed(bool armed) {
  internal::g_rpc_trace_armed.store(armed, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace tgcrn
