// Copyright 2026 TGCRN Reproduction Authors
// Scoped-span tracer emitting Chrome trace_event JSON ("X" complete
// events), loadable in chrome://tracing or https://ui.perfetto.dev.
//
//   TGCRN_TRACE_SCOPE("tensor.Matmul");   // RAII span over this scope
//
// Runtime control: spans record only while tracing is enabled — via the
// TGCRN_TRACE=<path> environment variable (auto-starts at process init and
// flushes at exit) or StartTracing()/StopTracingAndWrite(). While disabled
// the macro costs one relaxed atomic load and a branch; defining
// TGCRN_DISABLE_TRACING at compile time removes even that.
//
// Storage: each thread appends to its own fixed-capacity ring buffer (no
// locks between threads on the hot path; a per-thread mutex serializes a
// writer with the final merge). When a ring wraps, the oldest events are
// overwritten and counted — a trace of a long run keeps its tail.
//
// Span names must be string literals (or otherwise outlive the tracer):
// only the pointer is stored.
#ifndef TGCRN_OBS_TRACE_H_
#define TGCRN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tgcrn {
namespace obs {

namespace internal {
// Which scope consumers are live: bit 0 the tracer, bit 1 the profiler
// (obs/prof.h). A single combined mask keeps the off-path cost of a span
// at one relaxed load + branch even with two consumers.
inline constexpr uint32_t kScopeTraceBit = 1u;
inline constexpr uint32_t kScopeProfBit = 2u;
extern std::atomic<uint32_t> g_scope_mask;
// Monotonic nanoseconds (steady clock).
int64_t TraceNowNs();
// Appends one complete span to the calling thread's ring buffer.
void RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns);
// Profiler hooks (defined in obs/prof.cc): push/pop one frame of the
// calling thread's attribution stack.
void ProfEnterScope(const char* name);
void ProfExitScope(int64_t dur_ns);
}  // namespace internal

// True while spans are being recorded by the tracer. One relaxed load.
inline bool TracingEnabled() {
  return (internal::g_scope_mask.load(std::memory_order_relaxed) &
          internal::kScopeTraceBit) != 0;
}

// Clears any previously recorded events and starts recording. The trace is
// written to `path` by StopTracingAndWrite (or automatically at process
// exit). Calling while already tracing just switches the output path.
void StartTracing(const std::string& path);

// Stops recording, merges every thread's ring buffer, and writes the
// Chrome trace JSON. Returns false (and logs to stderr) if the file cannot
// be written or tracing was never started. Safe to call twice (the second
// call is a no-op returning false).
bool StopTracingAndWrite();

// Registers a hook that runs after the built-in flushes (trace, profile,
// metrics dump) whenever observability is flushed — from the TGCRN_CHECK
// abort path and from FlushObservability(). Higher tiers use this to
// leave their own telemetry behind (the serve access log registers one).
// Hooks must be idempotent and safe to run from the abort path. A few
// fixed slots; registering beyond them is ignored.
void RegisterFlushHook(void (*hook)());
void UnregisterFlushHook(void (*hook)());

// Clean-shutdown entry to the same flush path the abort handler uses:
// stop-and-write an armed trace, dump an armed profile, dump the metric
// registry if TGCRN_METRICS_DUMP is set, then run registered hooks.
// Reentrancy-guarded; safe to call multiple times.
void FlushObservability();

// Events currently buffered across all threads, and events lost to ring
// wrap-around — exposed for tests and overhead accounting.
int64_t BufferedTraceEventCount();
int64_t DroppedTraceEventCount();

// RAII span: stamps the start on construction, records on destruction to
// every consumer whose bit was set at construction (captured in `mask_`,
// so a Stop racing the span cannot unbalance the profiler's stack).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, ~0u) {}
  // `mask_filter` restricts which consumers see the span; used by the
  // thread pool to keep its worker span out of the attribution tree.
  ScopedSpan(const char* name, uint32_t mask_filter) {
    const uint32_t mask =
        internal::g_scope_mask.load(std::memory_order_relaxed) & mask_filter;
    if (mask != 0) {
      mask_ = mask;
      name_ = name;
      if (mask & internal::kScopeProfBit) internal::ProfEnterScope(name);
      start_ns_ = internal::TraceNowNs();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      const int64_t dur_ns = internal::TraceNowNs() - start_ns_;
      if (mask_ & internal::kScopeTraceBit) {
        internal::RecordSpan(name_, start_ns_, dur_ns);
      }
      if (mask_ & internal::kScopeProfBit) internal::ProfExitScope(dur_ns);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint32_t mask_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace tgcrn

#ifndef TGCRN_DISABLE_TRACING
#define TGCRN_TRACE_SCOPE_CONCAT2(a, b) a##b
#define TGCRN_TRACE_SCOPE_CONCAT(a, b) TGCRN_TRACE_SCOPE_CONCAT2(a, b)
#define TGCRN_TRACE_SCOPE(name)                 \
  ::tgcrn::obs::ScopedSpan TGCRN_TRACE_SCOPE_CONCAT(tgcrn_trace_span_, \
                                                    __LINE__)(name)
#else
#define TGCRN_TRACE_SCOPE(name) \
  do {                          \
  } while (false)
#endif

#endif  // TGCRN_OBS_TRACE_H_
