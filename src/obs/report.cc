// Copyright 2026 TGCRN Reproduction Authors
#include "obs/report.h"

#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace tgcrn {
namespace obs {

namespace {

Json PhaseMapToJson(const std::map<std::string, double>& phases) {
  Json out = Json::Object();
  for (const auto& [name, seconds] : phases) {
    out.Set(name, Json::Number(seconds));
  }
  return out;
}

std::map<std::string, double> PhaseMapFromJson(const Json& json) {
  std::map<std::string, double> out;
  if (!json.is_object()) return out;
  for (const auto& [name, value] : json.AsObject()) {
    if (value.is_number()) out[name] = value.AsDouble();
  }
  return out;
}

}  // namespace

Json TensorStatsReport::ToJson() const {
  Json out = Json::Object();
  out.Set("count", Json::Int(count));
  out.Set("mean", Json::Number(mean));
  out.Set("rms", Json::Number(rms));
  out.Set("min", Json::Number(min));
  out.Set("max", Json::Number(max));
  out.Set("nan", Json::Int(nan_count));
  out.Set("inf", Json::Int(inf_count));
  out.Set("zero_fraction", Json::Number(zero_fraction));
  return out;
}

TensorStatsReport TensorStatsReport::FromJson(const Json& json) {
  TensorStatsReport stats;
  stats.count = json.GetInt("count");
  stats.mean = json.GetDouble("mean");
  stats.rms = json.GetDouble("rms");
  stats.min = json.GetDouble("min");
  stats.max = json.GetDouble("max");
  stats.nan_count = json.GetInt("nan");
  stats.inf_count = json.GetInt("inf");
  stats.zero_fraction = json.GetDouble("zero_fraction");
  return stats;
}

Json ModuleHealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("name", Json::Str(name));
  out.Set("param", param.ToJson());
  if (grad.count > 0) out.Set("grad", grad.ToJson());
  return out;
}

ModuleHealthReport ModuleHealthReport::FromJson(const Json& json) {
  ModuleHealthReport report;
  report.name = json.GetString("name");
  report.param = TensorStatsReport::FromJson(json["param"]);
  if (json.Has("grad")) {
    report.grad = TensorStatsReport::FromJson(json["grad"]);
  }
  return report;
}

Json ActivationHealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("name", Json::Str(name));
  out.Set("samples", Json::Int(samples));
  out.Set("stats", stats.ToJson());
  return out;
}

ActivationHealthReport ActivationHealthReport::FromJson(const Json& json) {
  ActivationHealthReport report;
  report.name = json.GetString("name");
  report.samples = json.GetInt("samples");
  report.stats = TensorStatsReport::FromJson(json["stats"]);
  return report;
}

Json GraphHealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("row_entropy", Json::Number(row_entropy));
  out.Set("sparsity", Json::Number(sparsity));
  out.Set("temporal_drift", Json::Number(temporal_drift));
  // NaN on the first sampled epoch; the serializer emits null and
  // GetDouble parses it back as NaN.
  out.Set("topk_stability", Json::Number(topk_stability));
  out.Set("topk", Json::Int(topk));
  return out;
}

GraphHealthReport GraphHealthReport::FromJson(const Json& json) {
  GraphHealthReport report;
  report.row_entropy = json.GetDouble("row_entropy");
  report.sparsity = json.GetDouble("sparsity");
  report.temporal_drift = json.GetDouble("temporal_drift");
  report.topk_stability = json.GetDouble(
      "topk_stability", std::numeric_limits<double>::quiet_NaN());
  report.topk = json.GetInt("topk");
  return report;
}

Json HealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("non_finite_steps", Json::Int(non_finite_steps));
  Json module_list = Json::Array();
  for (const auto& m : modules) module_list.Append(m.ToJson());
  out.Set("modules", std::move(module_list));
  Json activation_list = Json::Array();
  for (const auto& a : activations) activation_list.Append(a.ToJson());
  out.Set("activations", std::move(activation_list));
  if (has_graph) out.Set("graph", graph.ToJson());
  return out;
}

HealthReport HealthReport::FromJson(const Json& json) {
  HealthReport report;
  report.non_finite_steps = json.GetInt("non_finite_steps");
  const Json& module_list = json["modules"];
  if (module_list.is_array()) {
    for (size_t i = 0; i < module_list.size(); ++i) {
      report.modules.push_back(ModuleHealthReport::FromJson(module_list.at(i)));
    }
  }
  const Json& activation_list = json["activations"];
  if (activation_list.is_array()) {
    for (size_t i = 0; i < activation_list.size(); ++i) {
      report.activations.push_back(
          ActivationHealthReport::FromJson(activation_list.at(i)));
    }
  }
  if (json.Has("graph")) {
    report.has_graph = true;
    report.graph = GraphHealthReport::FromJson(json["graph"]);
  }
  return report;
}

Json ProfKernelReport::ToJson() const {
  Json out = Json::Object();
  out.Set("name", Json::Str(name));
  out.Set("invocations", Json::Int(invocations));
  out.Set("exclusive_s", Json::Number(exclusive_seconds));
  out.Set("worker_s", Json::Number(worker_seconds));
  out.Set("flops", Json::Number(flops));
  out.Set("bytes", Json::Number(bytes));
  out.Set("instructions", Json::Int(instructions));
  out.Set("cycles", Json::Int(cycles));
  out.Set("l1_misses", Json::Int(l1_misses));
  out.Set("llc_misses", Json::Int(llc_misses));
  out.Set("branch_misses", Json::Int(branch_misses));
  // Derived, for human/tooling consumption; recomputed on parse.
  out.Set("gflops", Json::Number(GFlops()));
  out.Set("intensity", Json::Number(ArithmeticIntensity()));
  out.Set("ipc", Json::Number(Ipc()));
  return out;
}

ProfKernelReport ProfKernelReport::FromJson(const Json& json) {
  ProfKernelReport k;
  k.name = json.GetString("name");
  k.invocations = json.GetInt("invocations");
  k.exclusive_seconds = json.GetDouble("exclusive_s");
  k.worker_seconds = json.GetDouble("worker_s");
  k.flops = json.GetDouble("flops");
  k.bytes = json.GetDouble("bytes");
  k.instructions = json.GetInt("instructions");
  k.cycles = json.GetInt("cycles");
  k.l1_misses = json.GetInt("l1_misses");
  k.llc_misses = json.GetInt("llc_misses");
  k.branch_misses = json.GetInt("branch_misses");
  return k;
}

Json ProfNodeReport::ToJson() const {
  Json out = Json::Object();
  out.Set("name", Json::Str(name));
  out.Set("parent", Json::Int(parent));
  out.Set("count", Json::Int(count));
  out.Set("inclusive_s", Json::Number(inclusive_seconds));
  out.Set("exclusive_s", Json::Number(exclusive_seconds));
  out.Set("flops", Json::Number(flops));
  out.Set("instructions", Json::Int(instructions));
  out.Set("cycles", Json::Int(cycles));
  return out;
}

ProfNodeReport ProfNodeReport::FromJson(const Json& json) {
  ProfNodeReport n;
  n.name = json.GetString("name");
  n.parent = json.GetInt("parent", -1);
  n.count = json.GetInt("count");
  n.inclusive_seconds = json.GetDouble("inclusive_s");
  n.exclusive_seconds = json.GetDouble("exclusive_s");
  n.flops = json.GetDouble("flops");
  n.instructions = json.GetInt("instructions");
  n.cycles = json.GetInt("cycles");
  return n;
}

Json ProfReport::ToJson() const {
  Json out = Json::Object();
  out.Set("counters_available", Json::Bool(counters_available));
  out.Set("isa", Json::Str(isa));
  out.Set("threads", Json::Int(threads));
  Json node_list = Json::Array();
  for (const auto& n : nodes) node_list.Append(n.ToJson());
  out.Set("nodes", std::move(node_list));
  Json kernel_list = Json::Array();
  for (const auto& k : kernels) kernel_list.Append(k.ToJson());
  out.Set("kernels", std::move(kernel_list));
  return out;
}

ProfReport ProfReport::FromJson(const Json& json) {
  ProfReport report;
  const Json& avail = json["counters_available"];
  report.counters_available = avail.is_bool() && avail.AsBool();
  report.isa = json.GetString("isa");
  report.threads = json.GetInt("threads");
  const Json& node_list = json["nodes"];
  if (node_list.is_array()) {
    for (size_t i = 0; i < node_list.size(); ++i) {
      report.nodes.push_back(ProfNodeReport::FromJson(node_list.at(i)));
    }
  }
  const Json& kernel_list = json["kernels"];
  if (kernel_list.is_array()) {
    for (size_t i = 0; i < kernel_list.size(); ++i) {
      report.kernels.push_back(ProfKernelReport::FromJson(kernel_list.at(i)));
    }
  }
  return report;
}

namespace {

// Root path of every node: path[i] = path[parent] + '\x1f' + name (the
// separator cannot appear in span names, which are C identifier-ish).
std::vector<std::string> NodePaths(const std::vector<ProfNodeReport>& nodes) {
  std::vector<std::string> paths;
  paths.reserve(nodes.size());
  for (const auto& node : nodes) {
    if (node.parent >= 0 &&
        node.parent < static_cast<int64_t>(paths.size())) {
      paths.push_back(paths[node.parent] + '\x1f' + node.name);
    } else {
      paths.push_back(node.name);
    }
  }
  return paths;
}

}  // namespace

std::string ProfReport::ToCollapsed() const {
  const std::vector<std::string> paths = NodePaths(nodes);
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const long long ns =
        static_cast<long long>(nodes[i].exclusive_seconds * 1e9 + 0.5);
    if (ns <= 0 && nodes[i].count <= 0) continue;
    std::string line = paths[i];
    for (char& c : line) {
      if (c == '\x1f') c = ';';
    }
    line += ' ';
    line += std::to_string(ns > 0 ? ns : 0);
    line += '\n';
    out += line;
  }
  return out;
}

ProfReport ProfReport::DeltaFrom(const ProfReport& prev) const {
  ProfReport out = *this;
  const std::vector<std::string> prev_paths = NodePaths(prev.nodes);
  std::map<std::string, const ProfNodeReport*> prev_by_path;
  for (size_t i = 0; i < prev.nodes.size(); ++i) {
    prev_by_path[prev_paths[i]] = &prev.nodes[i];
  }
  const std::vector<std::string> paths = NodePaths(out.nodes);
  for (size_t i = 0; i < out.nodes.size(); ++i) {
    const auto it = prev_by_path.find(paths[i]);
    if (it == prev_by_path.end()) continue;
    const ProfNodeReport& p = *it->second;
    out.nodes[i].count -= p.count;
    out.nodes[i].inclusive_seconds -= p.inclusive_seconds;
    out.nodes[i].exclusive_seconds -= p.exclusive_seconds;
    out.nodes[i].flops -= p.flops;
    out.nodes[i].instructions -= p.instructions;
    out.nodes[i].cycles -= p.cycles;
  }
  std::map<std::string, const ProfKernelReport*> prev_kernels;
  for (const auto& k : prev.kernels) prev_kernels[k.name] = &k;
  for (auto& k : out.kernels) {
    const auto it = prev_kernels.find(k.name);
    if (it == prev_kernels.end()) continue;
    const ProfKernelReport& p = *it->second;
    k.invocations -= p.invocations;
    k.exclusive_seconds -= p.exclusive_seconds;
    k.worker_seconds -= p.worker_seconds;
    k.flops -= p.flops;
    k.bytes -= p.bytes;
    k.instructions -= p.instructions;
    k.cycles -= p.cycles;
    k.l1_misses -= p.l1_misses;
    k.llc_misses -= p.llc_misses;
    k.branch_misses -= p.branch_misses;
  }
  return out;
}

void ProfReport::Accumulate(const ProfReport& other) {
  counters_available = counters_available || other.counters_available;
  if (isa.empty()) isa = other.isa;
  if (threads == 0) threads = other.threads;
  std::vector<std::string> paths = NodePaths(nodes);
  std::map<std::string, size_t> index_by_path;
  for (size_t i = 0; i < nodes.size(); ++i) index_by_path[paths[i]] = i;
  const std::vector<std::string> other_paths = NodePaths(other.nodes);
  // Preorder guarantees a node's parent is mapped before the node itself.
  std::vector<int64_t> remap(other.nodes.size(), -1);
  for (size_t i = 0; i < other.nodes.size(); ++i) {
    const auto it = index_by_path.find(other_paths[i]);
    size_t target;
    if (it != index_by_path.end()) {
      target = it->second;
      const ProfNodeReport& o = other.nodes[i];
      nodes[target].count += o.count;
      nodes[target].inclusive_seconds += o.inclusive_seconds;
      nodes[target].exclusive_seconds += o.exclusive_seconds;
      nodes[target].flops += o.flops;
      nodes[target].instructions += o.instructions;
      nodes[target].cycles += o.cycles;
    } else {
      ProfNodeReport copy = other.nodes[i];
      copy.parent = copy.parent >= 0 ? remap[copy.parent] : -1;
      target = nodes.size();
      nodes.push_back(std::move(copy));
      paths.push_back(other_paths[i]);
      index_by_path[other_paths[i]] = target;
    }
    remap[i] = static_cast<int64_t>(target);
  }
  std::map<std::string, size_t> kernel_by_name;
  for (size_t i = 0; i < kernels.size(); ++i) {
    kernel_by_name[kernels[i].name] = i;
  }
  for (const auto& o : other.kernels) {
    const auto it = kernel_by_name.find(o.name);
    if (it == kernel_by_name.end()) {
      kernel_by_name[o.name] = kernels.size();
      kernels.push_back(o);
      continue;
    }
    ProfKernelReport& k = kernels[it->second];
    k.invocations += o.invocations;
    k.exclusive_seconds += o.exclusive_seconds;
    k.worker_seconds += o.worker_seconds;
    k.flops += o.flops;
    k.bytes += o.bytes;
    k.instructions += o.instructions;
    k.cycles += o.cycles;
    k.l1_misses += o.l1_misses;
    k.llc_misses += o.llc_misses;
    k.branch_misses += o.branch_misses;
  }
}

Json EpochReport::ToJson() const {
  Json out = Json::Object();
  out.Set("type", Json::Str("epoch"));
  out.Set("epoch", Json::Int(epoch));
  out.Set("train_loss", Json::Number(train_loss));
  out.Set("val_mae", Json::Number(val_mae));
  out.Set("lr", Json::Number(lr));
  out.Set("grad_norm_mean", Json::Number(grad_norm_mean));
  out.Set("grad_norm_last", Json::Number(grad_norm_last));
  out.Set("seconds", Json::Number(seconds));
  out.Set("phase_seconds", PhaseMapToJson(phase_seconds));
  if (has_health) out.Set("health", health.ToJson());
  if (has_prof) out.Set("prof", prof.ToJson());
  return out;
}

EpochReport EpochReport::FromJson(const Json& json) {
  EpochReport report;
  report.epoch = json.GetInt("epoch");
  report.train_loss = json.GetDouble("train_loss");
  report.val_mae = json.GetDouble("val_mae");
  report.lr = json.GetDouble("lr");
  report.grad_norm_mean = json.GetDouble("grad_norm_mean");
  report.grad_norm_last = json.GetDouble("grad_norm_last");
  report.seconds = json.GetDouble("seconds");
  report.phase_seconds = PhaseMapFromJson(json["phase_seconds"]);
  if (json.Has("health")) {
    report.has_health = true;
    report.health = HealthReport::FromJson(json["health"]);
  }
  if (json.Has("prof")) {
    report.has_prof = true;
    report.prof = ProfReport::FromJson(json["prof"]);
  }
  return report;
}

Json HorizonMetricsReport::ToJson() const {
  Json out = Json::Object();
  out.Set("mae", Json::Number(mae));
  out.Set("rmse", Json::Number(rmse));
  out.Set("mape", Json::Number(mape));
  return out;
}

HorizonMetricsReport HorizonMetricsReport::FromJson(const Json& json) {
  HorizonMetricsReport report;
  report.mae = json.GetDouble("mae");
  report.rmse = json.GetDouble("rmse");
  report.mape = json.GetDouble("mape");
  return report;
}

std::map<std::string, double> RunReport::PhaseTotals() const {
  std::map<std::string, double> totals;
  for (const auto& epoch : epochs) {
    for (const auto& [name, seconds] : epoch.phase_seconds) {
      totals[name] += seconds;
    }
  }
  return totals;
}

Json RunReport::SummaryJson() const {
  Json out = Json::Object();
  out.Set("type", Json::Str("summary"));
  out.Set("model", Json::Str(model));
  out.Set("num_parameters", Json::Int(num_parameters));
  out.Set("num_threads", Json::Int(num_threads));
  out.Set("epochs_run", Json::Int(epochs_run));
  out.Set("total_seconds", Json::Number(total_seconds));
  out.Set("test_average", test_average.ToJson());
  Json horizons = Json::Array();
  for (const auto& h : test_per_horizon) horizons.Append(h.ToJson());
  out.Set("test_per_horizon", std::move(horizons));
  out.Set("phase_seconds_total", PhaseMapToJson(PhaseTotals()));
  return out;
}

bool RunReport::AppendJsonLine(const std::string& path, const Json& line) {
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) return false;
  const std::string text = line.Dump();
  const bool ok = std::fputs(text.c_str(), out) >= 0 &&
                  std::fputc('\n', out) != EOF;
  return std::fclose(out) == 0 && ok;
}

bool RunReport::FromJsonl(const std::string& content, RunReport* out) {
  RunReport report;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    Json json;
    if (!Json::Parse(line, &json)) {
      // A final line with no trailing newline is the truncated tail of an
      // interrupted append (a run in progress or killed mid-write): skip
      // it so live reports stay diffable. Any other bad line is corruption.
      const bool is_last_line = lines.peek() == EOF;
      if (is_last_line && !content.empty() && content.back() != '\n') break;
      return false;
    }
    const std::string type = json.GetString("type");
    if (type == "epoch") {
      report.epochs.push_back(EpochReport::FromJson(json));
    } else if (type == "summary") {
      report.has_summary = true;
      report.model = json.GetString("model");
      report.num_parameters = json.GetInt("num_parameters");
      report.num_threads = static_cast<int>(json.GetInt("num_threads", 1));
      report.epochs_run = json.GetInt("epochs_run");
      report.total_seconds = json.GetDouble("total_seconds");
      report.test_average =
          HorizonMetricsReport::FromJson(json["test_average"]);
      const Json& horizons = json["test_per_horizon"];
      if (horizons.is_array()) {
        for (size_t i = 0; i < horizons.size(); ++i) {
          report.test_per_horizon.push_back(
              HorizonMetricsReport::FromJson(horizons.at(i)));
        }
      }
    }  // unknown types: forward-compatible skip
  }
  *out = std::move(report);
  return true;
}

}  // namespace obs
}  // namespace tgcrn
