// Copyright 2026 TGCRN Reproduction Authors
#include "obs/report.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"

namespace tgcrn {
namespace obs {

namespace {

Json PhaseMapToJson(const std::map<std::string, double>& phases) {
  Json out = Json::Object();
  for (const auto& [name, seconds] : phases) {
    out.Set(name, Json::Number(seconds));
  }
  return out;
}

std::map<std::string, double> PhaseMapFromJson(const Json& json) {
  std::map<std::string, double> out;
  if (!json.is_object()) return out;
  for (const auto& [name, value] : json.AsObject()) {
    if (value.is_number()) out[name] = value.AsDouble();
  }
  return out;
}

}  // namespace

Json EpochReport::ToJson() const {
  Json out = Json::Object();
  out.Set("type", Json::Str("epoch"));
  out.Set("epoch", Json::Int(epoch));
  out.Set("train_loss", Json::Number(train_loss));
  out.Set("val_mae", Json::Number(val_mae));
  out.Set("lr", Json::Number(lr));
  out.Set("grad_norm_mean", Json::Number(grad_norm_mean));
  out.Set("grad_norm_last", Json::Number(grad_norm_last));
  out.Set("seconds", Json::Number(seconds));
  out.Set("phase_seconds", PhaseMapToJson(phase_seconds));
  return out;
}

EpochReport EpochReport::FromJson(const Json& json) {
  EpochReport report;
  report.epoch = json.GetInt("epoch");
  report.train_loss = json.GetDouble("train_loss");
  report.val_mae = json.GetDouble("val_mae");
  report.lr = json.GetDouble("lr");
  report.grad_norm_mean = json.GetDouble("grad_norm_mean");
  report.grad_norm_last = json.GetDouble("grad_norm_last");
  report.seconds = json.GetDouble("seconds");
  report.phase_seconds = PhaseMapFromJson(json["phase_seconds"]);
  return report;
}

Json HorizonMetricsReport::ToJson() const {
  Json out = Json::Object();
  out.Set("mae", Json::Number(mae));
  out.Set("rmse", Json::Number(rmse));
  out.Set("mape", Json::Number(mape));
  return out;
}

HorizonMetricsReport HorizonMetricsReport::FromJson(const Json& json) {
  HorizonMetricsReport report;
  report.mae = json.GetDouble("mae");
  report.rmse = json.GetDouble("rmse");
  report.mape = json.GetDouble("mape");
  return report;
}

std::map<std::string, double> RunReport::PhaseTotals() const {
  std::map<std::string, double> totals;
  for (const auto& epoch : epochs) {
    for (const auto& [name, seconds] : epoch.phase_seconds) {
      totals[name] += seconds;
    }
  }
  return totals;
}

Json RunReport::SummaryJson() const {
  Json out = Json::Object();
  out.Set("type", Json::Str("summary"));
  out.Set("model", Json::Str(model));
  out.Set("num_parameters", Json::Int(num_parameters));
  out.Set("num_threads", Json::Int(num_threads));
  out.Set("epochs_run", Json::Int(epochs_run));
  out.Set("total_seconds", Json::Number(total_seconds));
  out.Set("test_average", test_average.ToJson());
  Json horizons = Json::Array();
  for (const auto& h : test_per_horizon) horizons.Append(h.ToJson());
  out.Set("test_per_horizon", std::move(horizons));
  out.Set("phase_seconds_total", PhaseMapToJson(PhaseTotals()));
  return out;
}

bool RunReport::AppendJsonLine(const std::string& path, const Json& line) {
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) return false;
  const std::string text = line.Dump();
  const bool ok = std::fputs(text.c_str(), out) >= 0 &&
                  std::fputc('\n', out) != EOF;
  return std::fclose(out) == 0 && ok;
}

bool RunReport::FromJsonl(const std::string& content, RunReport* out) {
  RunReport report;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    Json json;
    if (!Json::Parse(line, &json)) return false;
    const std::string type = json.GetString("type");
    if (type == "epoch") {
      report.epochs.push_back(EpochReport::FromJson(json));
    } else if (type == "summary") {
      report.model = json.GetString("model");
      report.num_parameters = json.GetInt("num_parameters");
      report.num_threads = static_cast<int>(json.GetInt("num_threads", 1));
      report.epochs_run = json.GetInt("epochs_run");
      report.total_seconds = json.GetDouble("total_seconds");
      report.test_average =
          HorizonMetricsReport::FromJson(json["test_average"]);
      const Json& horizons = json["test_per_horizon"];
      if (horizons.is_array()) {
        for (size_t i = 0; i < horizons.size(); ++i) {
          report.test_per_horizon.push_back(
              HorizonMetricsReport::FromJson(horizons.at(i)));
        }
      }
    }  // unknown types: forward-compatible skip
  }
  *out = std::move(report);
  return true;
}

}  // namespace obs
}  // namespace tgcrn
