// Copyright 2026 TGCRN Reproduction Authors
#include "obs/report.h"

#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace tgcrn {
namespace obs {

namespace {

Json PhaseMapToJson(const std::map<std::string, double>& phases) {
  Json out = Json::Object();
  for (const auto& [name, seconds] : phases) {
    out.Set(name, Json::Number(seconds));
  }
  return out;
}

std::map<std::string, double> PhaseMapFromJson(const Json& json) {
  std::map<std::string, double> out;
  if (!json.is_object()) return out;
  for (const auto& [name, value] : json.AsObject()) {
    if (value.is_number()) out[name] = value.AsDouble();
  }
  return out;
}

}  // namespace

Json TensorStatsReport::ToJson() const {
  Json out = Json::Object();
  out.Set("count", Json::Int(count));
  out.Set("mean", Json::Number(mean));
  out.Set("rms", Json::Number(rms));
  out.Set("min", Json::Number(min));
  out.Set("max", Json::Number(max));
  out.Set("nan", Json::Int(nan_count));
  out.Set("inf", Json::Int(inf_count));
  out.Set("zero_fraction", Json::Number(zero_fraction));
  return out;
}

TensorStatsReport TensorStatsReport::FromJson(const Json& json) {
  TensorStatsReport stats;
  stats.count = json.GetInt("count");
  stats.mean = json.GetDouble("mean");
  stats.rms = json.GetDouble("rms");
  stats.min = json.GetDouble("min");
  stats.max = json.GetDouble("max");
  stats.nan_count = json.GetInt("nan");
  stats.inf_count = json.GetInt("inf");
  stats.zero_fraction = json.GetDouble("zero_fraction");
  return stats;
}

Json ModuleHealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("name", Json::Str(name));
  out.Set("param", param.ToJson());
  if (grad.count > 0) out.Set("grad", grad.ToJson());
  return out;
}

ModuleHealthReport ModuleHealthReport::FromJson(const Json& json) {
  ModuleHealthReport report;
  report.name = json.GetString("name");
  report.param = TensorStatsReport::FromJson(json["param"]);
  if (json.Has("grad")) {
    report.grad = TensorStatsReport::FromJson(json["grad"]);
  }
  return report;
}

Json ActivationHealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("name", Json::Str(name));
  out.Set("samples", Json::Int(samples));
  out.Set("stats", stats.ToJson());
  return out;
}

ActivationHealthReport ActivationHealthReport::FromJson(const Json& json) {
  ActivationHealthReport report;
  report.name = json.GetString("name");
  report.samples = json.GetInt("samples");
  report.stats = TensorStatsReport::FromJson(json["stats"]);
  return report;
}

Json GraphHealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("row_entropy", Json::Number(row_entropy));
  out.Set("sparsity", Json::Number(sparsity));
  out.Set("temporal_drift", Json::Number(temporal_drift));
  // NaN on the first sampled epoch; the serializer emits null and
  // GetDouble parses it back as NaN.
  out.Set("topk_stability", Json::Number(topk_stability));
  out.Set("topk", Json::Int(topk));
  return out;
}

GraphHealthReport GraphHealthReport::FromJson(const Json& json) {
  GraphHealthReport report;
  report.row_entropy = json.GetDouble("row_entropy");
  report.sparsity = json.GetDouble("sparsity");
  report.temporal_drift = json.GetDouble("temporal_drift");
  report.topk_stability = json.GetDouble(
      "topk_stability", std::numeric_limits<double>::quiet_NaN());
  report.topk = json.GetInt("topk");
  return report;
}

Json HealthReport::ToJson() const {
  Json out = Json::Object();
  out.Set("non_finite_steps", Json::Int(non_finite_steps));
  Json module_list = Json::Array();
  for (const auto& m : modules) module_list.Append(m.ToJson());
  out.Set("modules", std::move(module_list));
  Json activation_list = Json::Array();
  for (const auto& a : activations) activation_list.Append(a.ToJson());
  out.Set("activations", std::move(activation_list));
  if (has_graph) out.Set("graph", graph.ToJson());
  return out;
}

HealthReport HealthReport::FromJson(const Json& json) {
  HealthReport report;
  report.non_finite_steps = json.GetInt("non_finite_steps");
  const Json& module_list = json["modules"];
  if (module_list.is_array()) {
    for (size_t i = 0; i < module_list.size(); ++i) {
      report.modules.push_back(ModuleHealthReport::FromJson(module_list.at(i)));
    }
  }
  const Json& activation_list = json["activations"];
  if (activation_list.is_array()) {
    for (size_t i = 0; i < activation_list.size(); ++i) {
      report.activations.push_back(
          ActivationHealthReport::FromJson(activation_list.at(i)));
    }
  }
  if (json.Has("graph")) {
    report.has_graph = true;
    report.graph = GraphHealthReport::FromJson(json["graph"]);
  }
  return report;
}

Json EpochReport::ToJson() const {
  Json out = Json::Object();
  out.Set("type", Json::Str("epoch"));
  out.Set("epoch", Json::Int(epoch));
  out.Set("train_loss", Json::Number(train_loss));
  out.Set("val_mae", Json::Number(val_mae));
  out.Set("lr", Json::Number(lr));
  out.Set("grad_norm_mean", Json::Number(grad_norm_mean));
  out.Set("grad_norm_last", Json::Number(grad_norm_last));
  out.Set("seconds", Json::Number(seconds));
  out.Set("phase_seconds", PhaseMapToJson(phase_seconds));
  if (has_health) out.Set("health", health.ToJson());
  return out;
}

EpochReport EpochReport::FromJson(const Json& json) {
  EpochReport report;
  report.epoch = json.GetInt("epoch");
  report.train_loss = json.GetDouble("train_loss");
  report.val_mae = json.GetDouble("val_mae");
  report.lr = json.GetDouble("lr");
  report.grad_norm_mean = json.GetDouble("grad_norm_mean");
  report.grad_norm_last = json.GetDouble("grad_norm_last");
  report.seconds = json.GetDouble("seconds");
  report.phase_seconds = PhaseMapFromJson(json["phase_seconds"]);
  if (json.Has("health")) {
    report.has_health = true;
    report.health = HealthReport::FromJson(json["health"]);
  }
  return report;
}

Json HorizonMetricsReport::ToJson() const {
  Json out = Json::Object();
  out.Set("mae", Json::Number(mae));
  out.Set("rmse", Json::Number(rmse));
  out.Set("mape", Json::Number(mape));
  return out;
}

HorizonMetricsReport HorizonMetricsReport::FromJson(const Json& json) {
  HorizonMetricsReport report;
  report.mae = json.GetDouble("mae");
  report.rmse = json.GetDouble("rmse");
  report.mape = json.GetDouble("mape");
  return report;
}

std::map<std::string, double> RunReport::PhaseTotals() const {
  std::map<std::string, double> totals;
  for (const auto& epoch : epochs) {
    for (const auto& [name, seconds] : epoch.phase_seconds) {
      totals[name] += seconds;
    }
  }
  return totals;
}

Json RunReport::SummaryJson() const {
  Json out = Json::Object();
  out.Set("type", Json::Str("summary"));
  out.Set("model", Json::Str(model));
  out.Set("num_parameters", Json::Int(num_parameters));
  out.Set("num_threads", Json::Int(num_threads));
  out.Set("epochs_run", Json::Int(epochs_run));
  out.Set("total_seconds", Json::Number(total_seconds));
  out.Set("test_average", test_average.ToJson());
  Json horizons = Json::Array();
  for (const auto& h : test_per_horizon) horizons.Append(h.ToJson());
  out.Set("test_per_horizon", std::move(horizons));
  out.Set("phase_seconds_total", PhaseMapToJson(PhaseTotals()));
  return out;
}

bool RunReport::AppendJsonLine(const std::string& path, const Json& line) {
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) return false;
  const std::string text = line.Dump();
  const bool ok = std::fputs(text.c_str(), out) >= 0 &&
                  std::fputc('\n', out) != EOF;
  return std::fclose(out) == 0 && ok;
}

bool RunReport::FromJsonl(const std::string& content, RunReport* out) {
  RunReport report;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    Json json;
    if (!Json::Parse(line, &json)) {
      // A final line with no trailing newline is the truncated tail of an
      // interrupted append (a run in progress or killed mid-write): skip
      // it so live reports stay diffable. Any other bad line is corruption.
      const bool is_last_line = lines.peek() == EOF;
      if (is_last_line && !content.empty() && content.back() != '\n') break;
      return false;
    }
    const std::string type = json.GetString("type");
    if (type == "epoch") {
      report.epochs.push_back(EpochReport::FromJson(json));
    } else if (type == "summary") {
      report.has_summary = true;
      report.model = json.GetString("model");
      report.num_parameters = json.GetInt("num_parameters");
      report.num_threads = static_cast<int>(json.GetInt("num_threads", 1));
      report.epochs_run = json.GetInt("epochs_run");
      report.total_seconds = json.GetDouble("total_seconds");
      report.test_average =
          HorizonMetricsReport::FromJson(json["test_average"]);
      const Json& horizons = json["test_per_horizon"];
      if (horizons.is_array()) {
        for (size_t i = 0; i < horizons.size(); ++i) {
          report.test_per_horizon.push_back(
              HorizonMetricsReport::FromJson(horizons.at(i)));
        }
      }
    }  // unknown types: forward-compatible skip
  }
  *out = std::move(report);
  return true;
}

}  // namespace obs
}  // namespace tgcrn
