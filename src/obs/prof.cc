// Copyright 2026 TGCRN Reproduction Authors
#include "obs/prof.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// The one dependency outside obs/ + std: the leaf header resolving which
// SIMD kernel table is live, so every profile is stamped with the ISA it
// measured (scalar vs avx2 rooflines are different machines).
#include "common/cpu_features.h"
#include "obs/json.h"
#include "obs/trace.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace tgcrn {
namespace obs {

namespace {

// Synthetic frame under which pool helpers attribute their chunk work:
// root -> "worker" -> <kernel>. A literal here so pointer identity works
// like every other span name.
constexpr const char* kWorkerFrameName = "worker";
constexpr const char* kRootName = "root";

// ---------------------------------------------------------------------------
// perf_event counter group (one per thread, lazily opened)
// ---------------------------------------------------------------------------

constexpr int kNumPerfEvents = 5;  // cycles, instructions, L1d, LLC, branch

struct PerfVals {
  int64_t v[kNumPerfEvents] = {0, 0, 0, 0, 0};
};

// 0 = not probed yet, 1 = available, 2 = unavailable (sticky: the first
// denied open disables the path for the whole process — containers
// typically refuse the syscall and retrying per thread is pointless).
std::atomic<int> g_perf_state{0};
std::atomic<bool> g_perf_forced_off{false};

struct PerfGroup {
  bool tried = false;
  bool ok = false;
  int leader = -1;
  // Read-buffer position -> event slot, for events that opened.
  int slot_of[kNumPerfEvents] = {0};
  int opened = 0;

#if defined(__linux__)
  ~PerfGroup() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  int fds[kNumPerfEvents] = {-1, -1, -1, -1, -1};
#endif
};

#if defined(__linux__)

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return ::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

void OpenPerfGroup(PerfGroup* group) {
  group->tried = true;
  if (g_perf_forced_off.load(std::memory_order_relaxed) ||
      g_perf_state.load(std::memory_order_relaxed) == 2) {
    return;
  }
  struct EventSpec {
    uint32_t type;
    uint64_t config;
  };
  const EventSpec specs[kNumPerfEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HW_CACHE,
       PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
           (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},  // LLC misses
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
  };
  for (int i = 0; i < kNumPerfEvents; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = specs[i].type;
    attr.config = specs[i].config;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.disabled = group->leader < 0 ? 1 : 0;
    if (group->leader < 0) attr.read_format = PERF_FORMAT_GROUP;
    const int fd = static_cast<int>(
        PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group->leader, 0));
    if (fd < 0) {
      if (group->leader < 0) {
        // Even the cycle counter is denied: perf_event is off for this
        // process (EACCES/EPERM under seccomp, ENOSYS without the
        // syscall). Remember globally so other threads skip the probe.
        g_perf_state.store(2, std::memory_order_relaxed);
        return;
      }
      continue;  // optional event missing on this machine; keep the rest
    }
    if (group->leader < 0) group->leader = fd;
    group->fds[i] = fd;
    group->slot_of[group->opened++] = i;
  }
  ::ioctl(group->leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(group->leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  group->ok = true;
  g_perf_state.store(1, std::memory_order_relaxed);
}

bool ReadPerfGroup(PerfGroup* group, PerfVals* out) {
  if (!group->ok) return false;
  // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per member in open
  // order.
  uint64_t buf[1 + kNumPerfEvents] = {0};
  const ssize_t want = static_cast<ssize_t>(
      sizeof(uint64_t) * (1 + static_cast<size_t>(group->opened)));
  if (::read(group->leader, buf, static_cast<size_t>(want)) != want) {
    return false;
  }
  const int nr = std::min<int>(static_cast<int>(buf[0]), group->opened);
  for (int i = 0; i < nr; ++i) {
    out->v[group->slot_of[i]] = static_cast<int64_t>(buf[1 + i]);
  }
  return true;
}

#else  // !__linux__

void OpenPerfGroup(PerfGroup* group) {
  group->tried = true;
  g_perf_state.store(2, std::memory_order_relaxed);
}

bool ReadPerfGroup(PerfGroup*, PerfVals*) { return false; }

#endif

// ---------------------------------------------------------------------------
// Per-thread attribution tree
// ---------------------------------------------------------------------------

// Tree nodes live in a flat per-thread vector; index 0 is the synthetic
// root. Children form a singly linked list (first_child/next_sibling) so
// the hot-path lookup is a short pointer-compare walk — kernels have a
// handful of distinct children. Accumulators are zeroed by ResetProfile;
// the structure itself only grows (stack indices stay valid across
// resets).
struct ProfNode {
  const char* name = nullptr;
  int32_t parent = -1;
  int32_t first_child = -1;
  int32_t next_sibling = -1;
  int64_t count = 0;
  int64_t total_ns = 0;  // inclusive, completed frames only
  int64_t kernel_calls = 0;
  double flops = 0.0;
  double bytes = 0.0;
  PerfVals hw;  // inclusive hardware-counter deltas
};

struct Frame {
  int32_t node = 0;
  bool has_perf = false;
  PerfVals perf_base;
};

struct ProfThread {
  std::mutex mu;
  std::vector<ProfNode> nodes;
  std::vector<Frame> stack;
  PerfGroup perf;
  int tid = 0;
};

struct ProfState {
  std::mutex mu;
  std::vector<std::shared_ptr<ProfThread>> threads;
  ProfOptions options;
  bool ever_started = false;
  bool atexit_registered = false;
};

ProfState& State() {
  static ProfState* state = new ProfState();  // leaked deliberately
  return *state;
}

ProfThread* GetProfThread() {
  thread_local std::shared_ptr<ProfThread> t = [] {
    auto p = std::make_shared<ProfThread>();
    p->nodes.push_back(ProfNode{});
    p->nodes[0].name = kRootName;
    p->stack.push_back(Frame{});
    ProfState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    p->tid = static_cast<int>(state.threads.size());
    state.threads.push_back(p);
    return p;
  }();
  return t.get();
}

bool SameName(const char* a, const char* b) {
  return a == b || std::strcmp(a, b) == 0;
}

// Child of `parent` named `name`, created on first encounter. Caller holds
// t->mu.
int32_t FindOrAddChild(ProfThread* t, int32_t parent, const char* name) {
  for (int32_t c = t->nodes[parent].first_child; c >= 0;
       c = t->nodes[c].next_sibling) {
    if (SameName(t->nodes[c].name, name)) return c;
  }
  const int32_t idx = static_cast<int32_t>(t->nodes.size());
  ProfNode node;
  node.name = name;
  node.parent = parent;
  node.next_sibling = t->nodes[parent].first_child;
  t->nodes.push_back(node);
  t->nodes[parent].first_child = idx;
  return idx;
}

// Whether StartProfiling asked for hardware counters. An atomic (not read
// from ProfState under its mutex) because the scope hot path checks it
// while holding its thread's lock — taking state.mu there would invert
// the state.mu -> thread.mu order CollectProfReport uses.
std::atomic<bool> g_counters_wanted{true};

void AtExitWrite() {
  ProfState& state = State();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    path = state.options.path;
  }
  if (!path.empty()) WriteProfileFiles(path);
}

// Reads TGCRN_PROF once at process start so any binary profiles without
// code changes; the atexit hook writes the files when a path was given.
struct EnvAutoStart {
  EnvAutoStart() {
    const ProfOptions options = ProfOptions::FromEnv();
    if (options.enabled) StartProfiling(options);
  }
};
EnvAutoStart env_auto_start;

// ---------------------------------------------------------------------------
// Merge across threads into a canonical tree
// ---------------------------------------------------------------------------

struct MergeNode {
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t kernel_calls = 0;
  double flops = 0.0;
  double bytes = 0.0;
  PerfVals hw;
  // Ordered by name so the emitted preorder is canonical regardless of
  // which thread touched a scope first.
  std::map<std::string, std::unique_ptr<MergeNode>> children;
};

void MergeThreadSubtree(const std::vector<ProfNode>& nodes, int32_t idx,
                        MergeNode* into) {
  const ProfNode& n = nodes[idx];
  into->count += n.count;
  into->total_ns += n.total_ns;
  into->kernel_calls += n.kernel_calls;
  into->flops += n.flops;
  into->bytes += n.bytes;
  for (int i = 0; i < kNumPerfEvents; ++i) into->hw.v[i] += n.hw.v[i];
  for (int32_t c = n.first_child; c >= 0; c = nodes[c].next_sibling) {
    auto& child = into->children[nodes[c].name];
    if (!child) child = std::make_unique<MergeNode>();
    MergeThreadSubtree(nodes, c, child.get());
  }
}

// Emits `node` and its subtree in preorder, returning the node's inclusive
// nanoseconds (the root's own total is the sum of its children).
int64_t EmitMerged(const std::string& name, const MergeNode& node,
                   int64_t parent_index, ProfReport* out,
                   std::vector<PerfVals>* hw_excl) {
  const int64_t index = static_cast<int64_t>(out->nodes.size());
  out->nodes.emplace_back();
  hw_excl->push_back(node.hw);
  {
    ProfNodeReport& r = out->nodes.back();
    r.name = name;
    r.parent = parent_index;
    r.count = node.count;
    r.flops = node.flops;
    r.instructions = node.hw.v[1];
    r.cycles = node.hw.v[0];
  }
  int64_t children_ns = 0;
  for (const auto& [child_name, child] : node.children) {
    children_ns += EmitMerged(child_name, *child, index, out, hw_excl);
    for (int i = 0; i < kNumPerfEvents; ++i) {
      (*hw_excl)[index].v[i] -= child->hw.v[i];
    }
  }
  // The root never times itself; open frames elsewhere can also make a
  // parent's completed total lag its children — clamp, don't go negative.
  const int64_t inclusive_ns = std::max(node.total_ns, children_ns);
  ProfNodeReport& r = out->nodes[index];
  r.inclusive_seconds = static_cast<double>(inclusive_ns) / 1e9;
  r.exclusive_seconds =
      static_cast<double>(std::max<int64_t>(inclusive_ns - children_ns, 0)) /
      1e9;
  return inclusive_ns;
}

// Folds the merged tree into the per-kernel summary: nodes that recorded
// analytic costs are kernel rows; same-named nodes under a "worker" frame
// contribute their helper time and hardware counts to that row.
void SummarizeKernels(const MergeNode& node, const std::string& name,
                      bool under_worker, ProfReport* out,
                      std::map<std::string, size_t>* by_name,
                      const std::vector<PerfVals>& hw_excl, size_t* cursor) {
  const size_t index = (*cursor)++;
  if (node.kernel_calls > 0) {
    auto [it, inserted] = by_name->try_emplace(name, out->kernels.size());
    if (inserted) {
      out->kernels.emplace_back();
      out->kernels.back().name = name;
    }
    ProfKernelReport& k = out->kernels[it->second];
    k.invocations += node.kernel_calls;
    k.exclusive_seconds += out->nodes[index].exclusive_seconds;
    k.flops += node.flops;
    k.bytes += node.bytes;
    const PerfVals& hw = hw_excl[index];
    k.cycles += std::max<int64_t>(hw.v[0], 0);
    k.instructions += std::max<int64_t>(hw.v[1], 0);
    k.l1_misses += std::max<int64_t>(hw.v[2], 0);
    k.llc_misses += std::max<int64_t>(hw.v[3], 0);
    k.branch_misses += std::max<int64_t>(hw.v[4], 0);
  } else if (under_worker) {
    const auto it = by_name->find(name);
    if (it != by_name->end()) {
      ProfKernelReport& k = out->kernels[it->second];
      k.worker_seconds += out->nodes[index].inclusive_seconds;
      k.cycles += std::max<int64_t>(node.hw.v[0], 0);
      k.instructions += std::max<int64_t>(node.hw.v[1], 0);
      k.l1_misses += std::max<int64_t>(node.hw.v[2], 0);
      k.llc_misses += std::max<int64_t>(node.hw.v[3], 0);
      k.branch_misses += std::max<int64_t>(node.hw.v[4], 0);
    }
  }
  const bool worker_frame = name == kWorkerFrameName;
  for (const auto& [child_name, child] : node.children) {
    SummarizeKernels(*child, child_name, under_worker || worker_frame, out,
                     by_name, hw_excl, cursor);
  }
}

}  // namespace

namespace internal {

void ProfEnterScope(const char* name) {
  ProfThread* t = GetProfThread();
  std::lock_guard<std::mutex> lock(t->mu);
  const int32_t child = FindOrAddChild(t, t->stack.back().node, name);
  ++t->nodes[child].count;
  Frame frame;
  frame.node = child;
  if (g_perf_state.load(std::memory_order_relaxed) != 2 &&
      g_counters_wanted.load(std::memory_order_relaxed)) {
    if (!t->perf.tried) OpenPerfGroup(&t->perf);
    frame.has_perf = ReadPerfGroup(&t->perf, &frame.perf_base);
  }
  t->stack.push_back(frame);
}

void ProfExitScope(int64_t dur_ns) {
  ProfThread* t = GetProfThread();
  std::lock_guard<std::mutex> lock(t->mu);
  if (t->stack.size() <= 1) return;  // defensive: never pop the root
  const Frame frame = t->stack.back();
  t->stack.pop_back();
  ProfNode& node = t->nodes[frame.node];
  node.total_ns += dur_ns;
  if (frame.has_perf) {
    PerfVals now;
    if (ReadPerfGroup(&t->perf, &now)) {
      for (int i = 0; i < kNumPerfEvents; ++i) {
        node.hw.v[i] += now.v[i] - frame.perf_base.v[i];
      }
    }
  }
}

}  // namespace internal

ProfOptions ProfOptions::FromEnv() {
  ProfOptions options;
  if (const char* value = std::getenv("TGCRN_PROF")) {
    const bool off = value[0] == '\0' || (value[0] == '0' && value[1] == '\0');
    if (!off) {
      options.enabled = true;
      if (!(value[0] == '1' && value[1] == '\0')) options.path = value;
    }
  }
  if (const char* value = std::getenv("TGCRN_PROF_COUNTERS")) {
    if (value[0] == '0' && value[1] == '\0') options.counters = false;
  }
  return options;
}

bool ProfilingEnabled() {
  return (internal::g_scope_mask.load(std::memory_order_relaxed) &
          internal::kScopeProfBit) != 0;
}

void StartProfiling(const ProfOptions& options) {
  ProfState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.options = options;
    state.ever_started = true;
    g_counters_wanted.store(options.counters, std::memory_order_relaxed);
    if (!state.atexit_registered && !options.path.empty()) {
      state.atexit_registered = true;
      std::atexit(AtExitWrite);
    }
  }
  ResetProfile();
  internal::g_scope_mask.fetch_or(internal::kScopeProfBit,
                                  std::memory_order_relaxed);
}

void StopProfiling() {
  internal::g_scope_mask.fetch_and(~internal::kScopeProfBit,
                                   std::memory_order_relaxed);
}

void ResetProfile() {
  ProfState& state = State();
  std::vector<std::shared_ptr<ProfThread>> threads;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    threads = state.threads;
  }
  for (const auto& t : threads) {
    std::lock_guard<std::mutex> lock(t->mu);
    for (ProfNode& node : t->nodes) {
      node.count = 0;
      node.total_ns = 0;
      node.kernel_calls = 0;
      node.flops = 0.0;
      node.bytes = 0.0;
      node.hw = PerfVals{};
    }
  }
}

void RecordKernelCost(const char* kernel, double flops, double bytes) {
  if (!ProfilingEnabled()) return;
  ProfThread* t = GetProfThread();
  std::lock_guard<std::mutex> lock(t->mu);
  const int32_t top = t->stack.back().node;
  int32_t node;
  if (top != 0 && SameName(t->nodes[top].name, kernel)) {
    node = top;  // the kernel's own scope — the common case
  } else {
    // No matching scope open (TGCRN_DISABLE_TRACING build, or a cost
    // recorded outside its span): keep the accounting on a child node.
    node = FindOrAddChild(t, top, kernel);
  }
  ++t->nodes[node].kernel_calls;
  t->nodes[node].flops += flops;
  t->nodes[node].bytes += bytes;
}

const char* CurrentProfLeafName() {
  if (!ProfilingEnabled()) return nullptr;
  ProfThread* t = GetProfThread();
  std::lock_guard<std::mutex> lock(t->mu);
  const int32_t top = t->stack.back().node;
  return top == 0 ? nullptr : t->nodes[top].name;
}

WorkerAttributionScope::WorkerAttributionScope(const char* leaf) {
  if (leaf == nullptr || !ProfilingEnabled()) return;
  leaf_ = leaf;
  internal::ProfEnterScope(kWorkerFrameName);
  internal::ProfEnterScope(leaf);
  start_ns_ = internal::TraceNowNs();
}

WorkerAttributionScope::~WorkerAttributionScope() {
  if (leaf_ == nullptr) return;
  const int64_t dur_ns = internal::TraceNowNs() - start_ns_;
  internal::ProfExitScope(dur_ns);
  internal::ProfExitScope(dur_ns);
}

ProfReport CollectProfReport() {
  ProfState& state = State();
  std::vector<std::shared_ptr<ProfThread>> threads;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    threads = state.threads;
  }
  MergeNode root;
  int64_t contributing = 0;
  for (const auto& t : threads) {
    std::lock_guard<std::mutex> lock(t->mu);
    if (t->nodes.size() <= 1) continue;
    ++contributing;
    MergeThreadSubtree(t->nodes, 0, &root);
  }
  ProfReport report;
  report.counters_available =
      g_perf_state.load(std::memory_order_relaxed) == 1;
  report.isa = common::SimdIsaName(common::ActiveSimdIsa());
  report.threads = contributing;
  std::vector<PerfVals> hw_excl;
  EmitMerged(kRootName, root, -1, &report, &hw_excl);
  std::map<std::string, size_t> kernel_by_name;
  size_t cursor = 0;
  SummarizeKernels(root, kRootName, /*under_worker=*/false, &report,
                   &kernel_by_name, hw_excl, &cursor);
  std::sort(report.kernels.begin(), report.kernels.end(),
            [](const ProfKernelReport& a, const ProfKernelReport& b) {
              return a.name < b.name;
            });
  return report;
}

bool WriteProfileFiles(const std::string& path) {
  const ProfReport report = CollectProfReport();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[obs] cannot open profile file %s\n", path.c_str());
    return false;
  }
  const std::string text = report.ToJson().Dump();
  bool ok = std::fputs(text.c_str(), out) >= 0 && std::fputc('\n', out) != EOF;
  ok = std::fclose(out) == 0 && ok;

  const std::string collapsed_path = path + ".collapsed";
  std::FILE* collapsed = std::fopen(collapsed_path.c_str(), "w");
  if (collapsed == nullptr) {
    std::fprintf(stderr, "[obs] cannot open collapsed-stack file %s\n",
                 collapsed_path.c_str());
    return false;
  }
  ok = std::fputs(report.ToCollapsed().c_str(), collapsed) >= 0 && ok;
  ok = std::fclose(collapsed) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "[obs] profile write failed for %s\n", path.c_str());
  }
  return ok;
}

void DumpProfileOnAbort() {
  ProfState& state = State();
  std::string path;
  bool armed;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    armed = state.ever_started;
    path = state.options.path;
  }
  if (!armed) return;
  if (!path.empty()) {
    WriteProfileFiles(path);
  } else {
    // Armed without a file target (TGCRN_PROF=1): the abort still leaves
    // the cost snapshot on stderr, mirroring DumpMetricsRegistry.
    const ProfReport report = CollectProfReport();
    std::fprintf(stderr, "%s\n", report.ToJson().Dump().c_str());
  }
}

PerfCounterSample SampleThreadPerfCounters() {
  PerfCounterSample sample;
  if (g_perf_forced_off.load(std::memory_order_relaxed) ||
      g_perf_state.load(std::memory_order_relaxed) == 2) {
    return sample;
  }
  ProfThread* t = GetProfThread();
  std::lock_guard<std::mutex> lock(t->mu);
  if (!t->perf.tried) OpenPerfGroup(&t->perf);
  PerfVals vals;
  if (!ReadPerfGroup(&t->perf, &vals)) return sample;
  sample.available = true;
  sample.cycles = vals.v[0];
  sample.instructions = vals.v[1];
  sample.l1_misses = vals.v[2];
  sample.llc_misses = vals.v[3];
  sample.branch_misses = vals.v[4];
  return sample;
}

bool PerfCountersAvailable() {
  return g_perf_state.load(std::memory_order_relaxed) == 1;
}

void SetPerfForceUnavailableForTesting(bool unavailable) {
  g_perf_forced_off.store(unavailable, std::memory_order_relaxed);
  g_perf_state.store(unavailable ? 2 : 0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace tgcrn
