// Copyright 2026 TGCRN Reproduction Authors
// Lock-cheap process-wide metric registry: counters, gauges, and histograms
// with fixed log2-scale buckets. The write path is built for hot kernels:
//
//  * Counter::Add and Histogram::Observe are one or two *relaxed* atomic
//    increments into a cache-line-padded stripe picked once per thread, so
//    concurrent writers (the thread pool's workers) never contend on a
//    cache line and never take a lock.
//  * Stripes are merged only on Snapshot(), which is a cold read path.
//  * Metric objects live forever once created (the registry never deletes),
//    so call sites can cache the pointer in a function-local static:
//
//      static obs::Counter* c =
//          obs::Registry::Global().GetCounter("threadpool.chunks_executed");
//      c->Add(1);
//
// Naming scheme: "<subsystem>.<noun>[_<unit>]", lower_snake_case after the
// dot, with ns/bytes suffixes for unit-carrying metrics (see DESIGN.md §8).
//
// Header is std-only on purpose: src/common may include it without cycles.
#ifndef TGCRN_OBS_METRICS_H_
#define TGCRN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tgcrn {
namespace obs {

class Json;

// Number of independent write stripes per metric. Threads hash onto a
// stripe at first use; 16 stripes keep the 8-thread pool collision-free in
// expectation while bounding the merge cost of a snapshot.
inline constexpr int kMetricStripes = 16;

// Histograms bucket non-negative integer observations (durations in ns,
// sizes in bytes) by binary magnitude:
//   bucket 0:              value <= 0
//   bucket i (1..N-2):     2^(i-1) <= value < 2^i
//   bucket N-1 (overflow): value >= 2^(N-2)
// 40 buckets span 1 ns .. ~4.6 minutes when observing nanoseconds.
inline constexpr int kHistogramBuckets = 40;

// Maps a value to its bucket index per the scheme above.
int HistogramBucketIndex(int64_t value);
// Inclusive lower bound of a bucket (0 for bucket 0, 2^(i-1) otherwise).
int64_t HistogramBucketLowerBound(int bucket);

// Returns this thread's stripe index in [0, kMetricStripes); assigned
// round-robin on first call so pool workers land on distinct stripes.
int ThisThreadStripe();

namespace internal {
struct alignas(64) PaddedAtomic {
  std::atomic<int64_t> value{0};
};
}  // namespace internal

// Monotonically increasing sum of int64 deltas.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    stripes_[ThisThreadStripe()].value.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  int64_t Value() const;
  void Reset();  // test-only: zeroes all stripes

 private:
  internal::PaddedAtomic stripes_[kMetricStripes];
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) {
    bits_.store(ToBits(value), std::memory_order_relaxed);
  }
  double Value() const { return FromBits(bits_.load(std::memory_order_relaxed)); }

 private:
  static uint64_t ToBits(double d);
  static double FromBits(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

struct HistogramSnapshot {
  int64_t buckets[kHistogramBuckets] = {0};
  int64_t count = 0;  // sum of buckets
  int64_t sum = 0;    // sum of observed values
  // Smallest bucket upper bound whose cumulative count covers `quantile`
  // (in [0,1]) of the observations; 0 when empty. Log-bucket resolution.
  int64_t ApproxQuantile(double quantile) const;
  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

// Striped log2 histogram of non-negative integer observations.
class Histogram {
 public:
  void Observe(int64_t value) {
    Stripe& s = stripes_[ThisThreadStripe()];
    s.buckets[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;
  void Reset();  // test-only

 private:
  struct alignas(64) Stripe {
    std::atomic<int64_t> buckets[kHistogramBuckets] = {};
    std::atomic<int64_t> sum{0};
  };
  Stripe stripes_[kMetricStripes];
};

// One registry entry in a collected snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  int64_t counter_value = 0;  // kCounter
  double gauge_value = 0.0;   // kGauge
  HistogramSnapshot histogram;  // kHistogram
};

struct RegistrySnapshot {
  std::vector<MetricSample> samples;  // sorted by name
  // Plain-text exposition, one metric per line (histograms expand to
  // count/sum/p50/p90/p99/p999 lines — serving tails live past p99).
  std::string ToText() const;
  // JSON object keyed by metric name.
  Json ToJson() const;
};

// Process-global name -> metric map. Lookup takes a mutex (cold path, call
// sites cache the returned pointer); returned pointers are valid forever.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  RegistrySnapshot Collect() const;

  // Test-only: zeroes every counter and histogram (gauges keep their last
  // value). Metrics stay registered; pointers stay valid.
  void ResetAll();

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // leaked: metrics must outlive static destruction
};

// Writes the global registry's text exposition to `target`: the literal
// string "stderr", or a file path (overwritten). Returns false on I/O
// failure. With TGCRN_METRICS_DUMP=<path|stderr> set, this runs
// automatically at clean process exit and from the TGCRN_CHECK abort path,
// so bench and CI runs capture counters without code changes.
bool DumpMetricsRegistry(const std::string& target);

// The TGCRN_METRICS_DUMP target from the environment ("" when unset).
// Exposed for the abort-flush path in obs/trace.cc.
const std::string& MetricsDumpTargetFromEnv();

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_METRICS_H_
