// Copyright 2026 TGCRN Reproduction Authors
#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <limits>
#include <cstdio>
#include <cstdlib>

namespace tgcrn {
namespace obs {

namespace {

const Json& NullSentinel() {
  static const Json* null = new Json();
  return *null;
}

// Formats a double the way the exposition formats expect: integers without
// a trailing ".0", everything else with enough digits to round-trip.
std::string FormatNumber(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  // Trim to the shortest representation that still parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[40];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, d);
    if (std::strtod(probe, nullptr) == d) return probe;
  }
  return buf;
}

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool ParseDocument(Json* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        return ParseString(out);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) {
      return Fail(std::string("expected '") + literal + "'");
    }
    pos_ += len;
    return true;
  }

  bool ParseNull(Json* out) {
    if (!ParseLiteral("null")) return false;
    *out = Json::Null();
    return true;
  }

  bool ParseBool(Json* out) {
    if (text_[pos_] == 't') {
      if (!ParseLiteral("true")) return false;
      *out = Json::Bool(true);
    } else {
      if (!ParseLiteral("false")) return false;
      *out = Json::Bool(false);
    }
    return true;
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = Json::Number(d);
    return true;
  }

  bool ParseString(Json* out) {
    std::string s;
    if (!ParseStringBody(&s)) return false;
    *out = Json::Str(std::move(s));
    return true;
  }

  bool ParseStringBody(std::string* s) {
    if (!Consume('"')) return Fail("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': s->push_back('"'); break;
          case '\\': s->push_back('\\'); break;
          case '/': s->push_back('/'); break;
          case 'b': s->push_back('\b'); break;
          case 'f': s->push_back('\f'); break;
          case 'n': s->push_back('\n'); break;
          case 'r': s->push_back('\r'); break;
          case 't': s->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= h - '0';
              else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
              else return Fail("invalid \\u escape");
            }
            // UTF-8 encode the code point (BMP only; surrogate pairs are
            // not emitted by our writer and decode as replacement bytes).
            if (code < 0x80) {
              s->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              s->push_back(static_cast<char>(0xC0 | (code >> 6)));
              s->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              s->push_back(static_cast<char>(0xE0 | (code >> 12)));
              s->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              s->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("invalid escape");
        }
      } else {
        s->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(Json* out) {
    Consume('[');
    Json array = Json::Array();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(array);
      return true;
    }
    while (true) {
      Json element;
      SkipWhitespace();
      if (!ParseValue(&element)) return false;
      array.Append(std::move(element));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
    *out = std::move(array);
    return true;
  }

  bool ParseObject(Json* out) {
    Consume('{');
    Json object = Json::Object();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(object);
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (!ParseStringBody(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      Json value;
      SkipWhitespace();
      if (!ParseValue(&value)) return false;
      object.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
    *out = std::move(object);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = d;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const { return bool_; }
double Json::AsDouble() const { return number_; }
int64_t Json::AsInt() const { return static_cast<int64_t>(number_); }
const std::string& Json::AsString() const { return string_; }
const std::vector<Json>& Json::AsArray() const { return array_; }
const std::map<std::string, Json>& Json::AsObject() const { return object_; }

void Json::Append(Json value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

size_t Json::size() const { return array_.size(); }

const Json& Json::at(size_t index) const { return array_.at(index); }

void Json::Set(const std::string& key, Json value) {
  type_ = Type::kObject;
  object_[key] = std::move(value);
}

bool Json::Has(const std::string& key) const {
  return object_.find(key) != object_.end();
}

const Json& Json::operator[](const std::string& key) const {
  const auto it = object_.find(key);
  return it == object_.end() ? NullSentinel() : it->second;
}

double Json::GetDouble(const std::string& key, double fallback) const {
  const Json& v = (*this)[key];
  if (v.is_number()) return v.AsDouble();
  // Round-trip the serializer's non-finite encoding: Dump() writes NaN/Inf
  // as null (JSON has neither), so a key that is *present but null* parses
  // back as NaN rather than silently coercing to the fallback. An absent
  // key still returns the fallback.
  if (v.is_null() && Has(key)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return fallback;
}

int64_t Json::GetInt(const std::string& key, int64_t fallback) const {
  const Json& v = (*this)[key];
  return v.is_number() ? v.AsInt() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json& v = (*this)[key];
  return v.is_string() ? v.AsString() : fallback;
}

std::string Json::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Json::Dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber:
      return FormatNumber(number_);
    case Type::kString:
      return "\"" + Escape(string_) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ",";
        out += array_[i].Dump();
      }
      out += "]";
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + Escape(key) + "\":" + value.Dump();
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

bool Json::Parse(const std::string& text, Json* out, std::string* error) {
  Parser parser(text, error);
  return parser.ParseDocument(out);
}

}  // namespace obs
}  // namespace tgcrn
