// Copyright 2026 TGCRN Reproduction Authors
// Minimal JSON value type for the observability layer: enough to emit
// metric expositions, Chrome trace files, and run reports, and to parse
// them back for round-trip tests and report tooling. Deliberately
// dependency-free (std only) so every layer of the system — including
// src/common — can include obs headers without cycles.
//
// Numbers are stored as double; integers up to 2^53 round-trip exactly,
// which covers every counter and timestamp the system emits.
#ifndef TGCRN_OBS_JSON_H_
#define TGCRN_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tgcrn {
namespace obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b);
  static Json Number(double d);
  static Json Int(int64_t i) { return Number(static_cast<double>(i)); }
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Accessors abort (via assert-like checks) on type mismatch in debug
  // terms; in practice callers test the type first or use Get* helpers.
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt() const;
  const std::string& AsString() const;
  const std::vector<Json>& AsArray() const;
  const std::map<std::string, Json>& AsObject() const;

  // Array building.
  void Append(Json value);
  size_t size() const;
  const Json& at(size_t index) const;

  // Object building / lookup.
  void Set(const std::string& key, Json value);
  bool Has(const std::string& key) const;
  // Null reference if absent (a static sentinel).
  const Json& operator[](const std::string& key) const;
  // Typed lookups with defaults, for tolerant report parsing.
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  // Serializes compactly (no insignificant whitespace). Object keys are
  // emitted in sorted (std::map) order, so output is deterministic.
  std::string Dump() const;

  // Parses a complete JSON document. Returns false (and fills *error with
  // an offset-tagged message) on malformed input or trailing garbage.
  static bool Parse(const std::string& text, Json* out,
                    std::string* error = nullptr);

  // Escapes a string body per JSON rules (no surrounding quotes).
  static std::string Escape(const std::string& s);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_JSON_H_
