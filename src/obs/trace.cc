// Copyright 2026 TGCRN Reproduction Authors
#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace tgcrn {

namespace internal {

// Declared in common/check.h. Runs on the TGCRN_CHECK abort path (and
// from obs::FlushObservability on clean shutdowns), so keep it defensive:
// a reentrant failure (a check firing while flushing) must not recurse,
// and no sink being active must be a no-op.
void FlushObservabilityOnAbort() { obs::FlushObservability(); }

}  // namespace internal

namespace obs {

namespace internal {
std::atomic<uint32_t> g_scope_mask{0};
}  // namespace internal

namespace {

// Events per thread ring. 32768 spans * 24 bytes keeps each thread under
// 1 MiB; a long training run keeps its most recent spans.
constexpr uint64_t kRingCapacity = 1 << 15;

struct TraceEvent {
  const char* name;
  int64_t start_ns;
  int64_t dur_ns;
};

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  uint64_t head = 0;      // total events ever written; slot = head % capacity
  uint64_t epoch_base = 0;  // head value when the current trace started
  int tid = 0;
};

struct TracerState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::string path;
  int64_t start_ns = 0;
  bool ever_started = false;
  bool atexit_registered = false;
};

TracerState& State() {
  static TracerState* state = new TracerState();  // leaked deliberately
  return *state;
}

ThreadBuffer* GetThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->ring.resize(kRingCapacity);
    TracerState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    b->tid = static_cast<int>(state.buffers.size());
    state.buffers.push_back(b);
    return b;
  }();
  return buffer.get();
}

void AtExitFlush() {
  if (TracingEnabled()) StopTracingAndWrite();
}

// Reads TGCRN_TRACE once at process start so instrumented binaries trace
// without code changes; the atexit hook writes the file.
struct EnvAutoStart {
  EnvAutoStart() {
    if (const char* path = std::getenv("TGCRN_TRACE")) {
      if (path[0] != '\0') StartTracing(path);
    }
  }
};
EnvAutoStart env_auto_start;

}  // namespace

namespace internal {

int64_t TraceNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RecordSpan(const char* name, int64_t start_ns, int64_t dur_ns) {
  // Re-check under the buffer lock so a span that straddles
  // StopTracingAndWrite cannot write into a ring being merged.
  ThreadBuffer* buffer = GetThreadBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (!TracingEnabled()) return;
  buffer->ring[buffer->head % kRingCapacity] = {name, start_ns, dur_ns};
  ++buffer->head;
}

}  // namespace internal

void StartTracing(const std::string& path) {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->epoch_base = buffer->head;
  }
  state.path = path;
  state.start_ns = internal::TraceNowNs();
  state.ever_started = true;
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit(AtExitFlush);
  }
  internal::g_scope_mask.fetch_or(internal::kScopeTraceBit,
                                  std::memory_order_relaxed);
}

int64_t BufferedTraceEventCount() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  int64_t total = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const uint64_t written = buffer->head - buffer->epoch_base;
    total += static_cast<int64_t>(std::min(written, kRingCapacity));
  }
  return total;
}

int64_t DroppedTraceEventCount() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  int64_t dropped = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const uint64_t written = buffer->head - buffer->epoch_base;
    if (written > kRingCapacity) {
      dropped += static_cast<int64_t>(written - kRingCapacity);
    }
  }
  return dropped;
}

bool StopTracingAndWrite() {
  TracerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  const uint32_t prev = internal::g_scope_mask.fetch_and(
      ~internal::kScopeTraceBit, std::memory_order_relaxed);
  if ((prev & internal::kScopeTraceBit) == 0) return false;
  if (state.path.empty()) return false;

  struct TaggedEvent {
    TraceEvent event;
    int tid;
  };
  std::vector<TaggedEvent> events;
  int64_t dropped = 0;
  for (const auto& buffer : state.buffers) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    const uint64_t written = buffer->head - buffer->epoch_base;
    const uint64_t kept = std::min(written, kRingCapacity);
    if (written > kRingCapacity) {
      dropped += static_cast<int64_t>(written - kRingCapacity);
    }
    for (uint64_t i = buffer->head - kept; i < buffer->head; ++i) {
      events.push_back({buffer->ring[i % kRingCapacity], buffer->tid});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TaggedEvent& a, const TaggedEvent& b) {
              return a.event.start_ns < b.event.start_ns;
            });

  std::FILE* out = std::fopen(state.path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[obs] cannot open trace file %s\n",
                 state.path.c_str());
    return false;
  }
  // Streamed by hand (rather than building one Json array) so a 100k-event
  // trace doesn't need a second in-memory copy; Json::Escape still
  // guarantees well-formed strings.
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", out);
  bool first = true;
  for (const auto& [event, tid] : events) {
    const double ts_us =
        static_cast<double>(event.start_ns - state.start_ns) / 1000.0;
    const double dur_us = static_cast<double>(event.dur_ns) / 1000.0;
    std::fprintf(out,
                 "%s{\"name\":\"%s\",\"ph\":\"X\",\"cat\":\"tgcrn\","
                 "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                 first ? "" : ",", Json::Escape(event.name).c_str(), tid,
                 ts_us, dur_us);
    first = false;
  }
  if (dropped > 0) {
    // Surface ring overflow inside the trace itself as an instant-style
    // zero-duration event at the end of the timeline.
    const double ts_us = events.empty()
                             ? 0.0
                             : static_cast<double>(
                                   events.back().event.start_ns -
                                   state.start_ns) /
                                   1000.0;
    std::fprintf(out,
                 "%s{\"name\":\"dropped %lld events (ring wrap)\","
                 "\"ph\":\"X\",\"cat\":\"tgcrn\",\"pid\":1,\"tid\":0,"
                 "\"ts\":%.3f,\"dur\":0}",
                 first ? "" : ",", static_cast<long long>(dropped), ts_us);
  }
  std::fputs("]}\n", out);
  const bool ok = std::fclose(out) == 0;
  if (!ok) {
    std::fprintf(stderr, "[obs] trace write failed for %s\n",
                 state.path.c_str());
  }
  return ok;
}

namespace {

// Fixed hook slots: registration is rare (one per telemetry sink) and the
// abort path must not allocate or take a lock it could already hold.
constexpr int kMaxFlushHooks = 4;
std::atomic<void (*)()> g_flush_hooks[kMaxFlushHooks] = {};

}  // namespace

void RegisterFlushHook(void (*hook)()) {
  if (hook == nullptr) return;
  for (auto& slot : g_flush_hooks) {
    void (*expected)() = nullptr;
    if (slot.load(std::memory_order_relaxed) == hook) return;
    if (slot.compare_exchange_strong(expected, hook)) return;
  }
}

void UnregisterFlushHook(void (*hook)()) {
  for (auto& slot : g_flush_hooks) {
    void (*expected)() = hook;
    slot.compare_exchange_strong(expected, nullptr);
  }
}

void FlushObservability() {
  static std::atomic<bool> flushing{false};
  if (flushing.exchange(true)) return;
  if (TracingEnabled()) StopTracingAndWrite();
  DumpProfileOnAbort();
  const std::string& dump = MetricsDumpTargetFromEnv();
  if (!dump.empty()) DumpMetricsRegistry(dump);
  for (auto& slot : g_flush_hooks) {
    void (*hook)() = slot.load(std::memory_order_relaxed);
    if (hook != nullptr) hook();
  }
  flushing.store(false);
}

}  // namespace obs
}  // namespace tgcrn
