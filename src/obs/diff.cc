// Copyright 2026 TGCRN Reproduction Authors
#include "obs/diff.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tgcrn {
namespace obs {

namespace {

double DeltaPct(double baseline, double candidate) {
  if (std::isnan(baseline) || std::isnan(candidate)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (baseline == 0.0) {
    return candidate == 0.0 ? 0.0
                            : std::numeric_limits<double>::infinity();
  }
  return (candidate - baseline) / std::abs(baseline) * 100.0;
}

class DiffBuilder {
 public:
  explicit DiffBuilder(ReportDiffResult* result) : result_(result) {}

  // Lower-is-better metric gated on `threshold_pct` percent worsening.
  // A negative threshold means "report, never gate".
  void AddGated(const std::string& metric, double baseline, double candidate,
                double threshold_pct) {
    DiffRow row;
    row.metric = metric;
    row.baseline = baseline;
    row.candidate = candidate;
    row.delta_pct = DeltaPct(baseline, candidate);
    row.gated = threshold_pct >= 0.0;
    if (row.gated) {
      if (std::isnan(candidate) && !std::isnan(baseline)) {
        row.regressed = true;  // diverged run
      } else {
        row.regressed = row.delta_pct > threshold_pct;
      }
    }
    Push(row);
  }

  // Counter that regresses on any increase, at every threshold.
  void AddStrict(const std::string& metric, double baseline,
                 double candidate) {
    DiffRow row;
    row.metric = metric;
    row.baseline = baseline;
    row.candidate = candidate;
    row.delta_pct = DeltaPct(baseline, candidate);
    row.gated = true;
    row.regressed = candidate > baseline;
    Push(row);
  }

  void AddInfo(const std::string& metric, double baseline, double candidate) {
    DiffRow row;
    row.metric = metric;
    row.baseline = baseline;
    row.candidate = candidate;
    row.delta_pct = DeltaPct(baseline, candidate);
    Push(row);
  }

 private:
  void Push(const DiffRow& row) {
    if (row.regressed) ++result_->regressions;
    result_->rows.push_back(row);
  }

  ReportDiffResult* result_;
};

struct HealthTotals {
  bool present = false;
  double nan_elements = 0.0;  // NaN elements across all stats, all epochs
  double inf_elements = 0.0;
  double non_finite_steps = 0.0;
};

HealthTotals SumHealth(const RunReport& report) {
  HealthTotals totals;
  for (const auto& epoch : report.epochs) {
    if (!epoch.has_health) continue;
    totals.present = true;
    totals.non_finite_steps +=
        static_cast<double>(epoch.health.non_finite_steps);
    for (const auto& module : epoch.health.modules) {
      totals.nan_elements += static_cast<double>(
          module.param.nan_count + module.grad.nan_count);
      totals.inf_elements += static_cast<double>(
          module.param.inf_count + module.grad.inf_count);
    }
    for (const auto& activation : epoch.health.activations) {
      totals.nan_elements += static_cast<double>(activation.stats.nan_count);
      totals.inf_elements += static_cast<double>(activation.stats.inf_count);
    }
  }
  return totals;
}

// Last epoch carrying a graph-health block, or nullptr.
const GraphHealthReport* LastGraphHealth(const RunReport& report) {
  for (auto it = report.epochs.rbegin(); it != report.epochs.rend(); ++it) {
    if (it->has_health && it->health.has_graph) return &it->health.graph;
  }
  return nullptr;
}

// Sums the per-epoch "prof" deltas back into one whole-run profile.
// Returns false when no epoch carried a prof block.
bool AccumulateProf(const RunReport& report, ProfReport* out) {
  bool present = false;
  for (const auto& epoch : report.epochs) {
    if (!epoch.has_prof) continue;
    present = true;
    out->Accumulate(epoch.prof);
  }
  return present;
}

// Shared between DiffReports (accumulated epoch blocks) and DiffProfiles
// (standalone profile files): per-kernel invocations gate, instruction
// totals gate when both sides measured them, cycles/IPC are informational.
void AddProfRows(DiffBuilder* builder, const ProfReport& baseline,
                 const ProfReport& candidate, double acc_pct) {
  std::map<std::string, const ProfKernelReport*> base_kernels;
  for (const auto& kernel : baseline.kernels) {
    base_kernels[kernel.name] = &kernel;
  }
  for (const auto& kernel : candidate.kernels) {
    const auto it = base_kernels.find(kernel.name);
    if (it == base_kernels.end()) continue;  // new kernel: nothing to gate
    builder->AddGated("prof." + kernel.name + ".invocations",
                      static_cast<double>(it->second->invocations),
                      static_cast<double>(kernel.invocations), acc_pct);
  }
  if (baseline.counters_available && candidate.counters_available) {
    auto totals = [](const ProfReport& report) {
      double instructions = 0.0;
      double cycles = 0.0;
      for (const auto& kernel : report.kernels) {
        instructions += static_cast<double>(kernel.instructions);
        cycles += static_cast<double>(kernel.cycles);
      }
      return std::make_pair(instructions, cycles);
    };
    const auto [base_instr, base_cycles] = totals(baseline);
    const auto [cand_instr, cand_cycles] = totals(candidate);
    builder->AddGated("prof.instructions", base_instr, cand_instr, acc_pct);
    builder->AddInfo("prof.cycles", base_cycles, cand_cycles);
    builder->AddInfo("prof.ipc",
                     base_cycles > 0.0 ? base_instr / base_cycles : 0.0,
                     cand_cycles > 0.0 ? cand_instr / cand_cycles : 0.0);
  }
}

}  // namespace

ReportDiffResult DiffReports(const RunReport& baseline,
                             const RunReport& candidate,
                             const ReportDiffOptions& options) {
  ReportDiffResult result;
  DiffBuilder builder(&result);
  const double acc_pct = options.max_regress_pct;
  const double time_pct = std::isnan(options.max_time_regress_pct)
                              ? options.max_regress_pct
                              : options.max_time_regress_pct;

  // --- Loss curve / validation ------------------------------------------
  if (!baseline.epochs.empty() && !candidate.epochs.empty()) {
    builder.AddGated("train_loss.final", baseline.epochs.back().train_loss,
                     candidate.epochs.back().train_loss, acc_pct);
    builder.AddGated("val_mae.final", baseline.epochs.back().val_mae,
                     candidate.epochs.back().val_mae, acc_pct);
    auto best_val = [](const RunReport& r) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& e : r.epochs) best = std::min(best, e.val_mae);
      return best;
    };
    builder.AddGated("val_mae.best", best_val(baseline), best_val(candidate),
                     acc_pct);
  }

  // --- Test metrics (summary lines on both sides) -----------------------
  if (baseline.has_summary && candidate.has_summary) {
    builder.AddGated("test.avg_mae", baseline.test_average.mae,
                     candidate.test_average.mae, acc_pct);
    builder.AddGated("test.avg_rmse", baseline.test_average.rmse,
                     candidate.test_average.rmse, acc_pct);
    builder.AddGated("test.avg_mape", baseline.test_average.mape,
                     candidate.test_average.mape, acc_pct);
    const size_t horizons = std::min(baseline.test_per_horizon.size(),
                                     candidate.test_per_horizon.size());
    for (size_t h = 0; h < horizons; ++h) {
      builder.AddGated("test.h" + std::to_string(h + 1) + "_mae",
                       baseline.test_per_horizon[h].mae,
                       candidate.test_per_horizon[h].mae, acc_pct);
    }
  }

  // --- Wall clock -------------------------------------------------------
  const auto baseline_phases = baseline.PhaseTotals();
  const auto candidate_phases = candidate.PhaseTotals();
  for (const auto& [name, baseline_seconds] : baseline_phases) {
    const auto it = candidate_phases.find(name);
    if (it == candidate_phases.end()) continue;
    if (baseline_seconds <= 0.0) continue;  // noise-only phase
    builder.AddGated("phase." + name + "_s", baseline_seconds, it->second,
                     time_pct);
  }
  if (baseline.has_summary && candidate.has_summary &&
      baseline.total_seconds > 0.0) {
    builder.AddGated("total_seconds", baseline.total_seconds,
                     candidate.total_seconds, time_pct);
  }

  // --- Health counters --------------------------------------------------
  const HealthTotals baseline_health = SumHealth(baseline);
  const HealthTotals candidate_health = SumHealth(candidate);
  if (candidate_health.present) {
    // Baseline without health blocks contributes implicit zeros: a
    // candidate that introduces NaNs must fail even against an old report.
    builder.AddStrict("health.nan_elements", baseline_health.nan_elements,
                      candidate_health.nan_elements);
    builder.AddStrict("health.inf_elements", baseline_health.inf_elements,
                      candidate_health.inf_elements);
    builder.AddStrict("health.non_finite_steps",
                      baseline_health.non_finite_steps,
                      candidate_health.non_finite_steps);
  }

  // --- Learned-graph diagnostics (no natural better/worse order) --------
  const GraphHealthReport* baseline_graph = LastGraphHealth(baseline);
  const GraphHealthReport* candidate_graph = LastGraphHealth(candidate);
  if (baseline_graph != nullptr && candidate_graph != nullptr) {
    builder.AddInfo("graph.row_entropy", baseline_graph->row_entropy,
                    candidate_graph->row_entropy);
    builder.AddInfo("graph.sparsity", baseline_graph->sparsity,
                    candidate_graph->sparsity);
    builder.AddInfo("graph.temporal_drift", baseline_graph->temporal_drift,
                    candidate_graph->temporal_drift);
  }

  // --- Profiler cost attribution ----------------------------------------
  ProfReport baseline_prof;
  ProfReport candidate_prof;
  if (AccumulateProf(baseline, &baseline_prof) &&
      AccumulateProf(candidate, &candidate_prof)) {
    AddProfRows(&builder, baseline_prof, candidate_prof, acc_pct);
  }

  return result;
}

ReportDiffResult DiffProfiles(const ProfReport& baseline,
                              const ProfReport& candidate,
                              const ReportDiffOptions& options) {
  ReportDiffResult result;
  DiffBuilder builder(&result);
  AddProfRows(&builder, baseline, candidate, options.max_regress_pct);
  return result;
}

}  // namespace obs
}  // namespace tgcrn
