// Copyright 2026 TGCRN Reproduction Authors
#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "nn/module.h"
#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace tgcrn {
namespace obs {

namespace internal {
std::atomic<HealthMonitor*> g_sampling_monitor{nullptr};
}  // namespace internal

namespace {

// Elements per reduction chunk. Chunk boundaries are a function of the
// element count only and partials combine serially in chunk order, so the
// collected stats are bitwise identical at any thread count — the same
// contract as common::DeterministicChunkedSum.
constexpr int64_t kHealthStatsGrain = 4096;

struct RawStats {
  int64_t finite = 0;
  int64_t nan = 0;
  int64_t inf = 0;
  int64_t zero = 0;
  double sum = 0.0;
  double sumsq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

RawStats ComputeRawStats(const float* data, int64_t n) {
  const int64_t chunks = (n + kHealthStatsGrain - 1) / kHealthStatsGrain;
  std::vector<RawStats> partials(static_cast<size_t>(chunks));
  common::ParallelFor(0, chunks, 1, [&](int64_t chunk_begin,
                                        int64_t chunk_end) {
    for (int64_t c = chunk_begin; c < chunk_end; ++c) {
      RawStats& p = partials[static_cast<size_t>(c)];
      const int64_t end = std::min(n, (c + 1) * kHealthStatsGrain);
      for (int64_t i = c * kHealthStatsGrain; i < end; ++i) {
        const double v = static_cast<double>(data[i]);
        if (std::isnan(v)) {
          ++p.nan;
          continue;
        }
        if (std::isinf(v)) {
          ++p.inf;
          continue;
        }
        ++p.finite;
        if (v == 0.0) ++p.zero;
        p.sum += v;
        p.sumsq += v * v;
        p.min = std::min(p.min, v);
        p.max = std::max(p.max, v);
      }
    }
  });
  RawStats total;
  for (const RawStats& p : partials) {  // fixed order => deterministic bits
    total.finite += p.finite;
    total.nan += p.nan;
    total.inf += p.inf;
    total.zero += p.zero;
    total.sum += p.sum;
    total.sumsq += p.sumsq;
    total.min = std::min(total.min, p.min);
    total.max = std::max(total.max, p.max);
  }
  return total;
}

// Weighted merge of two stat summaries (for activation accumulation).
void MergeStats(TensorStatsReport* into, const TensorStatsReport& other) {
  if (other.count == 0) return;
  if (into->count == 0) {
    *into = other;
    return;
  }
  const double finite_into =
      static_cast<double>(into->count - into->nan_count - into->inf_count);
  const double finite_other =
      static_cast<double>(other.count - other.nan_count - other.inf_count);
  const double finite = finite_into + finite_other;
  if (finite_other > 0.0) {
    if (finite_into > 0.0) {
      into->mean =
          (into->mean * finite_into + other.mean * finite_other) / finite;
      into->rms = std::sqrt((into->rms * into->rms * finite_into +
                             other.rms * other.rms * finite_other) /
                            finite);
      into->min = std::min(into->min, other.min);
      into->max = std::max(into->max, other.max);
    } else {
      into->mean = other.mean;
      into->rms = other.rms;
      into->min = other.min;
      into->max = other.max;
    }
  }
  into->zero_fraction =
      (into->zero_fraction * static_cast<double>(into->count) +
       other.zero_fraction * static_cast<double>(other.count)) /
      static_cast<double>(into->count + other.count);
  into->count += other.count;
  into->nan_count += other.nan_count;
  into->inf_count += other.inf_count;
}

}  // namespace

HealthOptions HealthOptions::FromEnv() {
  HealthOptions options;
  if (const char* v = std::getenv("TGCRN_HEALTH")) {
    options.enabled = v[0] != '\0' && std::strcmp(v, "0") != 0;
  }
  if (const char* v = std::getenv("TGCRN_HEALTH_EVERY")) {
    if (v[0] != '\0') {
      options.every = std::max<int64_t>(1, std::atoll(v));
    }
  }
  if (const char* v = std::getenv("TGCRN_HEALTH_FATAL")) {
    options.fatal = v[0] != '\0' && std::strcmp(v, "0") != 0;
  }
  return options;
}

TensorStatsReport ComputeTensorStats(const Tensor& t) {
  TensorStatsReport stats;
  stats.count = t.numel();
  if (stats.count == 0) return stats;
  const RawStats raw = ComputeRawStats(t.data(), stats.count);
  stats.nan_count = raw.nan;
  stats.inf_count = raw.inf;
  stats.zero_fraction =
      static_cast<double>(raw.zero) / static_cast<double>(stats.count);
  if (raw.finite > 0) {
    stats.mean = raw.sum / static_cast<double>(raw.finite);
    stats.rms = std::sqrt(raw.sumsq / static_cast<double>(raw.finite));
    stats.min = raw.min;
    stats.max = raw.max;
  }
  return stats;
}

std::string DescribeTensorStats(const TensorStatsReport& stats) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.4g rms=%.4g min=%.4g max=%.4g nan=%lld "
                "inf=%lld zero_fraction=%.3f",
                static_cast<long long>(stats.count), stats.mean, stats.rms,
                stats.min, stats.max, static_cast<long long>(stats.nan_count),
                static_cast<long long>(stats.inf_count), stats.zero_fraction);
  return buf;
}

HealthMonitor::HealthMonitor(const HealthOptions& options)
    : options_(options) {}

HealthMonitor::~HealthMonitor() {
  // Defensive: never leave a dangling tap target behind.
  EndActivationSampling();
}

bool HealthMonitor::ShouldSample(int64_t epoch) const {
  return options_.enabled && epoch % std::max<int64_t>(1, options_.every) == 0;
}

void HealthMonitor::Attach(const nn::Module& module) {
  params_ = module.NamedParameters();
}

void HealthMonitor::HandleNonFiniteGradients(int64_t step) {
  ++non_finite_steps_;
  static Counter* counter =
      Registry::Global().GetCounter("health.non_finite_grad_steps");
  counter->Add(1);
  for (const auto& [name, param] : params_) {
    if (!param.has_grad()) continue;
    const TensorStatsReport stats = ComputeTensorStats(param.grad());
    if (!stats.HasNonFinite()) continue;
    if (options_.fatal) {
      TGCRN_CHECK(false) << "non-finite gradient in module '" << name
                         << "' at step " << step << ": "
                         << DescribeTensorStats(stats);
    }
    if (non_finite_logged_ < 5) {
      ++non_finite_logged_;
      TGCRN_LOG(Warning) << "non-finite gradient in module '" << name
                         << "' at step " << step << ": "
                         << DescribeTensorStats(stats);
    }
    return;
  }
  // The global norm was non-finite but no single gradient shows it (the
  // squared sum overflowed); still counted, and fatal still stops here.
  if (options_.fatal) {
    TGCRN_CHECK(false) << "non-finite gradient norm at step " << step;
  }
}

void HealthMonitor::BeginActivationSampling(int64_t step) {
  if (!options_.enabled) return;
  sampling_step_ = step;
  internal::g_sampling_monitor.store(this, std::memory_order_relaxed);
}

void HealthMonitor::EndActivationSampling() {
  HealthMonitor* expected = this;
  internal::g_sampling_monitor.compare_exchange_strong(
      expected, nullptr, std::memory_order_relaxed);
}

void HealthMonitor::Observe(const char* name, const Tensor& t) {
  const TensorStatsReport stats = ComputeTensorStats(t);
  if (options_.fatal && stats.HasNonFinite()) {
    TGCRN_CHECK(false) << "non-finite activation '" << name << "' at step "
                       << sampling_step_ << ": " << DescribeTensorStats(stats);
  }
  std::lock_guard<std::mutex> lock(activation_mu_);
  ActivationAccum& accum = activations_[name];
  MergeStats(&accum.merged, stats);
  ++accum.samples;
}

void HealthMonitor::CollectInto(int64_t step, HealthReport* out) {
  out->non_finite_steps = non_finite_steps_;
  non_finite_steps_ = 0;
  non_finite_logged_ = 0;
  out->modules.clear();
  out->modules.reserve(params_.size());
  for (const auto& [name, param] : params_) {
    ModuleHealthReport module_report;
    module_report.name = name;
    module_report.param = ComputeTensorStats(param.value());
    if (param.has_grad()) {
      module_report.grad = ComputeTensorStats(param.grad());
    }
    if (options_.fatal && module_report.param.HasNonFinite()) {
      TGCRN_CHECK(false) << "non-finite parameter in module '" << name
                         << "' at step " << step << ": "
                         << DescribeTensorStats(module_report.param);
    }
    out->modules.push_back(std::move(module_report));
  }
  out->activations.clear();
  std::lock_guard<std::mutex> lock(activation_mu_);
  for (auto& [name, accum] : activations_) {
    ActivationHealthReport activation_report;
    activation_report.name = name;
    activation_report.samples = accum.samples;
    activation_report.stats = accum.merged;
    out->activations.push_back(std::move(activation_report));
  }
  activations_.clear();
}

void ObserveActivation(const char* name, const Tensor& t) {
  HealthMonitor* monitor =
      internal::g_sampling_monitor.load(std::memory_order_relaxed);
  if (monitor != nullptr) monitor->Observe(name, t);
}

}  // namespace obs
}  // namespace tgcrn
