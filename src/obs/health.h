// Copyright 2026 TGCRN Reproduction Authors
// Training-health monitor: the second observability tier. Unlike the
// std-only first tier (json/metrics/trace/report), this header may depend
// on the tensor and autograd layers — it inspects live parameters,
// gradients, and activations. Nothing below obs/ includes it.
//
// Three jobs:
//
//  * Per-module statistics — HealthMonitor caches a module's named
//    parameters once (Attach) and, at a configurable epoch cadence,
//    produces a HealthReport with rms/min/max/mean, NaN/Inf counts, and
//    zero-fraction for every parameter and gradient (obs/report.h structs,
//    streamed through the trainer's JSONL report).
//  * Activation taps — TGCRN_HEALTH_TAP(name, tensor) in model code
//    observes an intermediate tensor. Outside a sampling window the macro
//    costs one relaxed atomic load and a branch (the same contract as
//    TGCRN_TRACE_SCOPE); the trainer opens the window for the first batch
//    of each sampled epoch.
//  * Fail-fast sentinel — with `fatal` set (TGCRN_HEALTH_FATAL=1), the
//    first non-finite value in a gradient or parameter aborts via
//    TGCRN_CHECK with the offending module name, global step, and tensor
//    stats — instead of surfacing as a silently bad val_mae epochs later.
//
// Statistic reductions use fixed-size chunking with a thread-count-
// independent combine order (the DeterministicChunkedSum contract), so
// collected stats are bitwise identical at any parallel width. With the
// monitor disabled the trainer's hot path performs no health work at all:
// the zero-alloc steady state pinned by autograd_arena_test is preserved.
#ifndef TGCRN_OBS_HEALTH_H_
#define TGCRN_OBS_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "obs/report.h"

namespace tgcrn {

namespace nn {
class Module;
}

namespace obs {

// Runtime knobs, defaulted from the environment by the trainer:
//   TGCRN_HEALTH=1        enable collection
//   TGCRN_HEALTH_EVERY=N  collect stats every N epochs (default 1)
//   TGCRN_HEALTH_FATAL=1  abort on the first non-finite gradient/parameter
struct HealthOptions {
  bool enabled = false;
  int64_t every = 1;
  bool fatal = false;

  static HealthOptions FromEnv();
};

// Summary statistics of a tensor's elements. mean/rms/min/max cover the
// finite elements; NaN/Inf are counted, not averaged. Deterministic at any
// thread count (fixed chunk boundaries, fixed combine order).
TensorStatsReport ComputeTensorStats(const Tensor& t);

// One-line human-readable rendering ("count=72 mean=0.01 ... nan=3") for
// sentinel abort messages and logs.
std::string DescribeTensorStats(const TensorStatsReport& stats);

class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthOptions& options);
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  bool enabled() const { return options_.enabled; }
  bool fatal() const { return options_.fatal; }
  // True when stats should be collected for this (0-based) epoch.
  bool ShouldSample(int64_t epoch) const;

  // Caches the module's named parameters (one vector build, so per-step
  // sentinel scans allocate nothing). Call once before training.
  void Attach(const nn::Module& module);

  // Sentinel entry point: the trainer calls this when the global gradient
  // norm comes back non-finite (NaN propagates through the clip reduction,
  // so the check itself is free). Locates the first offending parameter;
  // aborts with module/step/stats when fatal, else logs and counts.
  void HandleNonFiniteGradients(int64_t step);

  // Opens/closes the activation sampling window for TGCRN_HEALTH_TAP.
  // Only one monitor can sample at a time (process-global tap target).
  void BeginActivationSampling(int64_t step);
  void EndActivationSampling();

  // Records one observation of a tapped activation. `name` must be a
  // string literal (only the pointer is compared/stored). When fatal,
  // aborts on the first non-finite activation value.
  void Observe(const char* name, const Tensor& t);

  // Fills `out` with per-module parameter/gradient statistics and the
  // accumulated activation statistics, then resets the accumulators and
  // the non-finite step count (so each report covers one interval). When
  // fatal, aborts if any parameter value is non-finite.
  void CollectInto(int64_t step, HealthReport* out);

  int64_t non_finite_steps() const { return non_finite_steps_; }

 private:
  struct ActivationAccum {
    int64_t samples = 0;
    TensorStatsReport merged;  // running merge across observations
  };

  HealthOptions options_;
  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::mutex activation_mu_;
  std::map<std::string, ActivationAccum> activations_;
  int64_t non_finite_steps_ = 0;
  int64_t non_finite_logged_ = 0;
  int64_t sampling_step_ = -1;
};

namespace internal {
// The monitor currently inside an activation-sampling window (nullptr
// almost always — the tap macro's fast path).
extern std::atomic<HealthMonitor*> g_sampling_monitor;
}  // namespace internal

// True while some monitor is sampling activations. One relaxed load.
inline bool HealthSamplingActive() {
  return internal::g_sampling_monitor.load(std::memory_order_relaxed) !=
         nullptr;
}

// Forwards to the sampling monitor, if any (cold path of the tap macro).
void ObserveActivation(const char* name, const Tensor& t);

}  // namespace obs
}  // namespace tgcrn

// Observes an intermediate tensor when a health monitor is sampling.
// `name` must be a string literal; `tensor` is evaluated only while a
// sampling window is open.
#define TGCRN_HEALTH_TAP(name, tensor)                   \
  do {                                                   \
    if (::tgcrn::obs::HealthSamplingActive()) {          \
      ::tgcrn::obs::ObserveActivation((name), (tensor)); \
    }                                                    \
  } while (false)

#endif  // TGCRN_OBS_HEALTH_H_
