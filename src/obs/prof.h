// Copyright 2026 TGCRN Reproduction Authors
// Kernel-level cost profiler: the third observability tier. Like the first
// tier (json/metrics/trace/report) it is std-only — it depends on nothing
// above obs/ — but unlike the tracer it aggregates instead of recording:
// every TGCRN_TRACE_SCOPE span folds into a per-thread attribution call
// tree (inclusive/exclusive wall clock, invocation counts), kernel entry
// points additionally report analytic flop/byte costs, and (when the
// kernel grants perf_event_open) a per-thread hardware counter group
// attributes cycles, instructions, and cache/branch misses to the same
// scopes. CollectProfReport() merges the per-thread trees into one
// obs::ProfReport — per-kernel GFLOP/s, arithmetic intensity, and IPC: a
// software roofline for the AVX2 vs scalar kernel tables.
//
// Cost contract (the TGCRN_TRACE_SCOPE / TGCRN_HEALTH_TAP contract):
//  * profiler off: one relaxed atomic load + branch per span (shared with
//    the tracer via the combined scope mask) and one per RecordKernelCost
//    site; no allocation — the zero-alloc steady state is preserved and
//    training losses are bitwise identical to a build without the
//    profiler.
//  * profiler on: a scope enter/exit touches only its thread's state (no
//    cross-thread locks on the hot path); node tables only grow, so after
//    the first epoch steady-state scopes allocate nothing.
//
// Invocation counts and flop/byte totals come from shape-only analytic
// models at the dispatch sites, so they are deterministic: identical at
// any thread count and for any ISA. Wall clock and hardware counters are
// measurements and vary run to run.
//
// Arming: TGCRN_PROF=1 (collect; report via CollectProfReport/trainer) or
// TGCRN_PROF=<path> (also write <path> JSON + <path>.collapsed flamegraph
// stacks at process exit), or StartProfiling() programmatically.
// TGCRN_PROF_COUNTERS=0 skips the perf_event group (it is also skipped
// automatically where the syscall is denied, e.g. most containers).
#ifndef TGCRN_OBS_PROF_H_
#define TGCRN_OBS_PROF_H_

#include <cstdint>
#include <string>

#include "obs/report.h"

namespace tgcrn {
namespace obs {

// Runtime knobs, defaulted from the environment by the trainer:
//   TGCRN_PROF=1        enable collection
//   TGCRN_PROF=<path>   enable and write profile files at process exit
//   TGCRN_PROF_COUNTERS=0  do not attempt perf_event counters
struct ProfOptions {
  bool enabled = false;
  bool counters = true;
  std::string path;  // empty: no file output

  static ProfOptions FromEnv();
};

// Arms the profiler: subsequent spans and kernel costs accumulate into the
// attribution trees. Accumulators are reset so the profile covers the
// interval from this call. Idempotent (a second call just resets).
void StartProfiling(const ProfOptions& options);

// True while the profiler is collecting. One relaxed load.
bool ProfilingEnabled();

// Disarms the profiler. Accumulated data stays readable via
// CollectProfReport() until the next StartProfiling().
void StopProfiling();

// Zeroes every accumulator (counts, times, flops, hardware counters)
// without disarming. Open scopes keep their stack positions, so this is
// safe to call between benchmark iterations.
void ResetProfile();

// Merges every thread's attribution tree into one cumulative report:
// nodes in preorder with parent indices, plus the per-kernel cost summary
// (nodes that recorded analytic costs). Thread-safe; callable while
// collection continues (frames still open contribute their completed
// children only).
ProfReport CollectProfReport();

// Writes the cumulative profile as JSON to `path` and collapsed-stack
// lines to `path`.collapsed. Returns false (and logs to stderr) on I/O
// failure.
bool WriteProfileFiles(const std::string& path);

// TGCRN_CHECK abort path (called from FlushObservabilityOnAbort): if the
// profiler was armed with a file path, write the profile files so an
// aborted run (e.g. TGCRN_HEALTH_FATAL) leaves a cost snapshot next to
// the trace. No-op when not armed or no path was configured.
void DumpProfileOnAbort();

// Attributes one kernel dispatch to the innermost open scope: analytic
// flop and logical byte-traffic counts from the kernel's shape. `kernel`
// must be a string literal naming the kernel's own scope (the innermost
// open scope at every call site); when no scope is open — e.g. a build
// with TGCRN_DISABLE_TRACING — the cost lands on a direct child of the
// root so accounting survives compiled-out spans. One relaxed load + branch
// when the profiler is off.
void RecordKernelCost(const char* kernel, double flops, double bytes);

// Name of the innermost open profiler scope on the calling thread, or
// nullptr when none / profiler off. ParallelFor captures it so helper
// threads can attribute their chunk work to the kernel that spawned it.
const char* CurrentProfLeafName();

// RAII: attributes the calling pool worker's time to root -> "worker" ->
// `leaf` while alive. Constructed with the leaf name captured by
// CurrentProfLeafName() on the dispatching thread; nullptr is a no-op
// (profiler off at dispatch time, or dispatch from an unprofiled scope).
class WorkerAttributionScope {
 public:
  explicit WorkerAttributionScope(const char* leaf);
  ~WorkerAttributionScope();
  WorkerAttributionScope(const WorkerAttributionScope&) = delete;
  WorkerAttributionScope& operator=(const WorkerAttributionScope&) = delete;

 private:
  const char* leaf_ = nullptr;
  int64_t start_ns_ = 0;
};

// One reading of the calling thread's hardware counter group. Counters
// count continuously from the first sample on the thread, so rates come
// from before/after deltas. `available` is false (all values zero) when
// perf_event is denied or disabled — callers must handle that path.
struct PerfCounterSample {
  bool available = false;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t l1_misses = 0;
  int64_t llc_misses = 0;
  int64_t branch_misses = 0;
};

// Samples the calling thread's counter group, opening it on first use.
// Usable without StartProfiling (the benches read IPC directly).
PerfCounterSample SampleThreadPerfCounters();

// True when perf_event counters opened successfully on this process (the
// probe runs on the first group open attempt and the result sticks).
bool PerfCountersAvailable();

// Test hook: force the perf_event path to report unavailable (as in a
// container denying the syscall) without touching the kernel. Call before
// the first counter use; pass false to re-probe on next use.
void SetPerfForceUnavailableForTesting(bool unavailable);

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_PROF_H_
