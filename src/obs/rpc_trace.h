// Copyright 2026 TGCRN Reproduction Authors
// Fixed-size per-request stage traces for RPC-style servers — the storage
// layer under serve/telemetry. A RequestTrace is a POD record: a request
// id, a start timestamp, and one offset-from-start per lifecycle stage
// (the serving layer defines what the stages mean). Records live in
// preallocated rings (RpcTraceRing), so recording a request in steady
// state touches no allocator.
//
// Arm-by-env discipline mirrors obs/trace.h: recording sites check
// RpcTracingArmed() — one relaxed atomic load — and skip every stamp when
// the consumer (TGCRN_SERVE_ACCESS_LOG / TGCRN_SERVE_SLOW_US) is off.
//
// Header is std-only on purpose, like the rest of the first obs tier.
#ifndef TGCRN_OBS_RPC_TRACE_H_
#define TGCRN_OBS_RPC_TRACE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

namespace tgcrn {
namespace obs {

// Stage slots per trace. Consumers define their own stage enum within
// this bound (serve uses all 8: read, parse, batch-wait, gather, kernel,
// scatter, serialize, flush).
inline constexpr int kRpcMaxStages = 8;

struct RequestTrace {
  int64_t id = 0;        // client-supplied or server-assigned, unique
  int64_t start_ns = 0;  // steady-clock ns when the request's bytes landed
  int32_t entity_count = 0;
  int32_t batch_width = 0;  // active rows of the kernel wave that served it
  int16_t op = 0;           // consumer-defined op code
  int16_t status = 0;       // 0 = ok, 1 = error
  // Per-stage completion offsets from start_ns; kUnset until stamped.
  // After Finalize(), offsets are monotone non-decreasing: a stage that
  // never ran inherits the previous stage's offset (zero duration).
  int64_t stage_ns[kRpcMaxStages];

  static constexpr int64_t kUnset = -1;

  RequestTrace() { Reset(); }
  void Reset() {
    id = start_ns = 0;
    entity_count = batch_width = 0;
    op = status = 0;
    for (int64_t& s : stage_ns) s = kUnset;
  }
  // Records `stage` as completed at absolute time `now_ns` (same steady
  // clock as start_ns).
  void Stamp(int stage, int64_t now_ns) {
    stage_ns[stage] = now_ns - start_ns;
  }
  // Carries unset stages forward so every slot holds a monotone
  // non-decreasing offset. Call once, after the last stamp.
  void Finalize() {
    int64_t running = 0;
    for (int64_t& s : stage_ns) {
      if (s < running) {
        s = running;  // unset (or skewed) inherits the previous offset
      } else {
        running = s;
      }
    }
  }
  // Offset of the final stage — the request's total latency once
  // finalized.
  int64_t total_ns() const { return stage_ns[kRpcMaxStages - 1]; }
};

// Fixed-capacity ring of RequestTrace records, preallocated up front.
// Push never allocates; when full, the oldest record is overwritten (and
// still counted by total()). Single-writer, like the serving loop.
class RpcTraceRing {
 public:
  explicit RpcTraceRing(int capacity)
      : ring_(static_cast<size_t>(capacity > 0 ? capacity : 1)) {}

  void Push(const RequestTrace& trace) {
    ring_[static_cast<size_t>(total_ % capacity())] = trace;
    ++total_;
  }
  int64_t capacity() const { return static_cast<int64_t>(ring_.size()); }
  // Records currently retained (== min(total, capacity)).
  int64_t size() const { return std::min(total_, capacity()); }
  int64_t total() const { return total_; }
  // i = 0 is the oldest retained record, size() - 1 the newest.
  const RequestTrace& At(int64_t i) const {
    const int64_t oldest = total_ - size();
    return ring_[static_cast<size_t>((oldest + i) % capacity())];
  }
  void Clear() { total_ = 0; }

 private:
  std::vector<RequestTrace> ring_;
  int64_t total_ = 0;
};

namespace internal {
extern std::atomic<bool> g_rpc_trace_armed;
}  // namespace internal

// True while some consumer (the serve telemetry) wants per-request
// traces. One relaxed load — the whole per-request cost when off.
inline bool RpcTracingArmed() {
  return internal::g_rpc_trace_armed.load(std::memory_order_relaxed);
}
void SetRpcTracingArmed(bool armed);

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_RPC_TRACE_H_
