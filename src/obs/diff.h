// Copyright 2026 TGCRN Reproduction Authors
// Regression diffing of two run reports (obs/report.h), the library behind
// the tgcrn_report_diff CLI and the CI quick-scale gate. Compares a
// baseline and a candidate run on the loss curve, validation/test metrics,
// per-phase wall clock, and health counters, and classifies each compared
// metric as regressed or not against a percentage threshold.
//
// Gating rules:
//  * Accuracy metrics (train loss, val MAE, test MAE/RMSE/MAPE) are lower-
//    is-better and gate on max_regress_pct.
//  * Phase seconds and total wall clock gate on max_time_regress_pct
//    (NaN: inherit max_regress_pct; negative: report but never gate, for
//    machines with noisy clocks).
//  * Health counters (NaN/Inf elements, non-finite-gradient steps) gate on
//    ANY increase — a new NaN is a regression at every threshold.
//  * Learned-graph diagnostics are informational only (no natural order).
//  * Profiler blocks (obs/prof.h): per-kernel invocation counts and total
//    retired instructions are deterministic-ish cost proxies and gate on
//    max_regress_pct (instructions only when both runs had perf counters);
//    cycles and IPC are machine-dependent and informational only.
//  * A NaN candidate value for a gated metric with a finite baseline is
//    always a regression (the run diverged).
//
// Comparisons are strict (delta > threshold), so a report diffed against
// itself passes even at --max-regress-pct=0.
//
// Depends only on obs/report.h and std, like the rest of the first tier.
#ifndef TGCRN_OBS_DIFF_H_
#define TGCRN_OBS_DIFF_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/report.h"

namespace tgcrn {
namespace obs {

struct ReportDiffOptions {
  // Allowed worsening, in percent of the baseline value, for accuracy
  // metrics.
  double max_regress_pct = 10.0;
  // Allowed worsening for timing metrics. NaN (default) inherits
  // max_regress_pct; a negative value reports timing rows without gating.
  double max_time_regress_pct = std::numeric_limits<double>::quiet_NaN();
};

struct DiffRow {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  // (candidate - baseline) / |baseline| * 100; +inf when the baseline is 0
  // and the candidate is not; NaN when either side is NaN.
  double delta_pct = 0.0;
  bool gated = false;      // participates in the pass/fail decision
  bool regressed = false;  // gated and beyond its threshold
};

struct ReportDiffResult {
  std::vector<DiffRow> rows;
  int64_t regressions = 0;  // number of regressed rows
  bool ok() const { return regressions == 0; }
};

// Diffs `candidate` against `baseline`. Metrics missing from either side
// (no epochs, no summary, phase absent) are skipped, not failed: a shorter
// candidate run gates only on what it measured.
ReportDiffResult DiffReports(const RunReport& baseline,
                             const RunReport& candidate,
                             const ReportDiffOptions& options);

// Diffs two standalone profiler reports (e.g. the JSON files written by
// TGCRN_PROF=path or `train_model --prof`) under the profiler gating rules
// above. DiffReports applies the same rules to the accumulated per-epoch
// "prof" blocks when both runs carried them; this entry point serves the
// `tgcrn_prof diff` CLI, which sees profiles without a surrounding run.
ReportDiffResult DiffProfiles(const ProfReport& baseline,
                              const ProfReport& candidate,
                              const ReportDiffOptions& options);

}  // namespace obs
}  // namespace tgcrn

#endif  // TGCRN_OBS_DIFF_H_
