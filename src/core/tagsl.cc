// Copyright 2026 TGCRN Reproduction Authors
#include "core/tagsl.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <numeric>

#include "common/thread_pool.h"
#include "nn/init.h"
#include "obs/health.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace tgcrn {
namespace core {

TagSL::TagSL(const Options& options, const TimeEncoder* time_encoder,
             Rng* rng)
    : options_(options), time_encoder_(time_encoder) {
  TGCRN_CHECK_GT(options_.num_nodes, 0);
  if (options_.use_time) {
    TGCRN_CHECK(time_encoder_ != nullptr)
        << "TagSL with use_time requires a time encoder";
  }
  node_embedding_ = RegisterParameter(
      "node_embedding",
      nn::NormalInit({options_.num_nodes, options_.node_dim}, 0.3f, rng));
}

ag::Variable TagSL::BuildRawGraph(const ag::Variable& x_t,
                                  const std::vector<int64_t>& slots,
                                  const std::vector<int64_t>& prev_slots)
    const {
  const int64_t batch = x_t.size(0);
  TGCRN_CHECK_EQ(x_t.size(1), options_.num_nodes);

  // Eq 6: static node-pair correlation, shared across the batch.
  ag::Variable a_nu = ag::Matmul(node_embedding_,
                                 ag::Transpose(node_embedding_, 0, 1));
  ag::Variable base = ag::Unsqueeze(a_nu, 0);  // [1, N, N]

  if (options_.use_time) {
    TGCRN_CHECK_EQ(static_cast<int64_t>(slots.size()), batch);
    TGCRN_CHECK_EQ(static_cast<int64_t>(prev_slots.size()), batch);
    // Eq 7: trend factor from consecutive time representations. Scaled by
    // 1/d_tau so its magnitude is invariant to the embedding width.
    ag::Variable e_t = time_encoder_->Encode(slots);          // [B, d_tau]
    ag::Variable e_prev = time_encoder_->Encode(prev_slots);  // [B, d_tau]
    ag::Variable eta = ag::MulScalar(
        ag::Sum(ag::Mul(e_t, e_prev), 1, /*keepdim=*/true),
        1.0f / static_cast<float>(time_encoder_->dim()));  // [B, 1]
    eta = ag::Unsqueeze(eta, 2);  // [B, 1, 1]
    base = ag::Add(base, eta);    // broadcast -> [B, N, N]
  }

  if (options_.use_pdf) {
    // Eq 8: the periodic discriminant maps the current node states to a
    // bounded pattern matrix. The inner product is scaled by 1/sqrt(C)
    // (paper uses raw <X, X^T>; the scaling keeps tanh out of saturation
    // for z-scored features without changing its discriminative role).
    const float scale =
        1.0f / std::sqrt(static_cast<float>(x_t.size(2)));
    ag::Variable a_rho = ag::Tanh(ag::MulScalar(
        ag::Matmul(x_t, ag::Transpose(x_t, -2, -1)), scale));  // [B, N, N]
    // Eq 9: (1 + alpha * sigmoid(A_rho)) expands the graph weights of the
    // identified period.
    ag::Variable gate =
        ag::AddScalar(ag::MulScalar(ag::Sigmoid(a_rho), options_.alpha),
                      1.0f);
    base = ag::Mul(gate, base);
  } else if (base.value().dim() == 3 && base.size(0) == 1 && batch > 1) {
    // Keep the output batch-shaped even without batch-dependent terms.
    base = ag::BroadcastTo(base, {batch, options_.num_nodes,
                                  options_.num_nodes});
  }
  return base;
}

namespace {

// Row-block height of the selection scan: bounds the dense score
// temporaries to kSelectBlockRows x N floats regardless of N. Blocking
// only moves loop boundaries, never accumulation order.
constexpr int64_t kSelectBlockRows = 256;

}  // namespace

ag::SparseGraph TagSL::BuildSparseGraph(
    const ag::Variable& x_t, const std::vector<int64_t>& slots,
    const std::vector<int64_t>& prev_slots, int64_t k) const {
  const int64_t batch = x_t.size(0);
  const int64_t n = options_.num_nodes;
  TGCRN_CHECK_EQ(x_t.size(1), n);
  const int64_t kept = std::min<int64_t>(std::max<int64_t>(k, 1), n);
  const int64_t nnz = n * kept;
  const float pdf_scale =
      1.0f / std::sqrt(static_cast<float>(x_t.size(2)));

  // Trend factor eta_t (Eq 7), shared by both stages: its value drives the
  // selection ranking, and the same Variable joins the kept-edge logits so
  // the time encoder trains through the sparse path.
  ag::Variable eta;  // [B, 1]
  if (options_.use_time) {
    TGCRN_CHECK_EQ(static_cast<int64_t>(slots.size()), batch);
    ag::Variable e_t = time_encoder_->Encode(slots);
    ag::Variable e_prev = time_encoder_->Encode(prev_slots);
    eta = ag::MulScalar(ag::Sum(ag::Mul(e_t, e_prev), 1, /*keepdim=*/true),
                        1.0f / static_cast<float>(time_encoder_->dim()));
  }

  // --- Stage 1: exact top-k selection (no gradients) ----------------------
  auto index = std::make_shared<graph::CsrIndex>();
  index->batch = batch;
  index->rows = n;
  index->cols = n;
  index->row_offsets.resize(n + 1);
  for (int64_t r = 0; r <= n; ++r) index->row_offsets[r] = r * kept;
  index->slot_rows.resize(nnz);
  for (int64_t s = 0; s < nnz; ++s) index->slot_rows[s] = s / kept;
  index->col_ids.resize(batch * nnz);
  {
    ag::NoGradGuard no_grad;
    TGCRN_TRACE_SCOPE("tagsl.SelectTopK");
    // Shape-only analytic cost: one raw-score recompute per entry (the
    // d_nu-dot is hoisted per block, the C-dot runs per batch item) plus
    // the selection scan.
    obs::RecordKernelCost(
        "tagsl.SelectTopK",
        static_cast<double>(batch) * static_cast<double>(n) *
            static_cast<double>(n) *
            (2.0 * static_cast<double>(options_.node_dim) +
             (options_.use_pdf ? 2.0 * static_cast<double>(x_t.size(2))
                               : 0.0) +
             4.0),
        4.0 * static_cast<double>(batch) * static_cast<double>(n) *
                static_cast<double>(n) +
            8.0 * static_cast<double>(batch) * static_cast<double>(nnz));
    const Tensor node_embed = node_embedding_.value();  // [N, d_nu]
    const Tensor x = x_t.value();                       // [B, N, C]
    const float* eta_data =
        options_.use_time ? eta.value().data() : nullptr;
    const int64_t topk_grain =
        std::max<int64_t>(1, int64_t{16384} / std::max<int64_t>(1, n));
    for (int64_t r0 = 0; r0 < n; r0 += kSelectBlockRows) {
      const int64_t r1 = std::min<int64_t>(n, r0 + kSelectBlockRows);
      // Eq 6 block: <E_nu[r0:r1], E_nu^T>, batch-independent.
      const Tensor a_nu_blk =
          node_embed.Slice(0, r0, r1).MatmulTransposeB(node_embed);
      for (int64_t b = 0; b < batch; ++b) {
        Tensor score = a_nu_blk;
        if (eta_data != nullptr) score = score.AddScalar(eta_data[b]);
        if (options_.use_pdf) {
          const Tensor xb = x.Slice(0, b, b + 1).Squeeze(0);  // [N, C]
          const Tensor gate = xb.Slice(0, r0, r1)
                                  .MatmulTransposeB(xb)
                                  .MulScalar(pdf_scale)
                                  .Tanh()
                                  .Sigmoid()
                                  .MulScalar(options_.alpha)
                                  .AddScalar(1.0f);
          score = gate.Mul(score);
        }
        // Relu ties (clipped entries) break on the lower column id, the
        // same total order graph::SparsifyTopK applies to the dense
        // softmax; softmax is strictly monotone, so the kept sets match.
        const Tensor clipped = score.Relu();
        const float* rows = clipped.data();
        int64_t* ids = index->col_ids.data() + b * nnz;
        common::ParallelFor(
            0, r1 - r0, topk_grain, [&](int64_t lo, int64_t hi) {
              std::vector<int64_t> scratch(n);
              for (int64_t r = lo; r < hi; ++r) {
                graph::TopKRow(rows + r * n, n, kept,
                               ids + (r0 + r) * kept, scratch.data());
              }
            });
      }
    }
  }

  // --- Stage 2: differentiable kept-edge logits ---------------------------
  // Flat gather ids over the kept edges, in (batch, row, slot) order.
  std::vector<int64_t> row_ids;  // edge's row node
  std::vector<int64_t> col_ids;  // edge's column node
  row_ids.reserve(batch * nnz);
  col_ids.reserve(batch * nnz);
  for (int64_t b = 0; b < batch; ++b) {
    const int64_t* ids = index->col_ids.data() + b * nnz;
    for (int64_t s = 0; s < nnz; ++s) {
      row_ids.push_back(s / kept);
      col_ids.push_back(ids[s]);
    }
  }

  // Eq 6 on the kept edges: <E_nu[row], E_nu[col]>.
  ag::Variable e_row = ag::EmbeddingLookup(node_embedding_, row_ids);
  ag::Variable e_col = ag::EmbeddingLookup(node_embedding_, col_ids);
  ag::Variable logit = ag::Reshape(
      ag::Sum(ag::Mul(e_row, e_col), 1), {batch, nnz});
  if (options_.use_time) {
    logit = ag::Add(logit, eta);  // [B, 1] broadcast over the edges
  }
  if (options_.use_pdf) {
    // Eq 8-9 on the kept edges: per-edge <x[row], x[col]> via flat gathers.
    std::vector<int64_t> flat_row(batch * nnz);
    std::vector<int64_t> flat_col(batch * nnz);
    for (int64_t i = 0; i < batch * nnz; ++i) {
      const int64_t b = i / nnz;
      flat_row[i] = b * n + row_ids[i];
      flat_col[i] = b * n + col_ids[i];
    }
    ag::Variable x_flat =
        ag::Reshape(x_t, {batch * n, x_t.size(2)});
    ag::Variable dot = ag::Sum(
        ag::Mul(ag::EmbeddingLookup(x_flat, flat_row),
                ag::EmbeddingLookup(x_flat, flat_col)),
        1);
    ag::Variable gate = ag::AddScalar(
        ag::MulScalar(ag::Sigmoid(ag::Tanh(ag::MulScalar(dot, pdf_scale))),
                      options_.alpha),
        1.0f);
    logit = ag::Mul(ag::Reshape(gate, {batch, nnz}), logit);
  }
  // Eq 11 restricted to the kept set: softmax over each row's k logits ==
  // the dense row-softmax renormalized over the kept entries (the dropped
  // mass cancels), with all-zero rows degrading to uniform 1/k.
  ag::SparseGraph out;
  out.index = index;
  out.values = ag::Reshape(
      ag::Softmax(ag::Reshape(ag::Relu(logit), {batch * n, kept}), -1),
      {batch, nnz});
  return out;
}

ag::Variable TagSL::BuildGraph(const ag::Variable& x_t,
                               const std::vector<int64_t>& slots,
                               const std::vector<int64_t>& prev_slots) const {
  // Eq 11: Norm = row-softmax over relu, yielding a row-stochastic
  // aggregation operator.
  ag::Variable adj =
      ag::Softmax(ag::Relu(BuildRawGraph(x_t, slots, prev_slots)), -1);
  TGCRN_HEALTH_TAP("tagsl.adjacency", adj.value());
  return adj;
}

namespace {

// Elements per chunk for the diagnostic reductions; fixed chunking keeps
// the statistics bitwise identical at any thread count.
constexpr int64_t kGraphStatsGrain = 4096;

}  // namespace

obs::GraphHealthReport TagSL::ComputeGraphHealth(
    const ag::Variable& x_t, const ag::Variable& x_prev,
    const std::vector<int64_t>& slots, const std::vector<int64_t>& prev_slots,
    const std::vector<int64_t>& prev2_slots, const GraphHealthOptions& options,
    GraphTopKState* state) const {
  ag::NoGradGuard no_grad;
  const Tensor a_t = BuildGraph(x_t, slots, prev_slots).value();
  const Tensor a_prev = BuildGraph(x_prev, prev_slots, prev2_slots).value();

  obs::GraphHealthReport report;
  const int64_t n = options_.num_nodes;
  const int64_t numel = a_t.numel();
  const int64_t rows = numel / n;  // B * N row distributions
  const float* at = a_t.data();
  const float* ap = a_prev.data();

  // Mean row entropy of the row-stochastic A^t, normalized to [0, 1] by
  // the uniform-row maximum ln N. Rows are disjoint spans of the flat
  // buffer, so one flat -p ln p sum covers all of them.
  if (n > 1) {
    const double entropy_sum = common::DeterministicChunkedSum(
        numel, kGraphStatsGrain, [at](int64_t begin, int64_t end) {
          double s = 0.0;
          for (int64_t i = begin; i < end; ++i) {
            const double p = static_cast<double>(at[i]);
            if (p > 0.0) s -= p * std::log(p);
          }
          return s;
        });
    report.row_entropy = entropy_sum /
                         (static_cast<double>(rows) *
                          std::log(static_cast<double>(n)));
  }

  // Fraction of total edge mass on entries at or above the threshold
  // (default: the uniform row share 1/N). Low values mean the softmax
  // spreads mass thinly; 1 means every row concentrated on strong edges.
  const double threshold = options.mass_threshold > 0.0
                               ? options.mass_threshold
                               : 1.0 / static_cast<double>(n);
  const double mass_above = common::DeterministicChunkedSum(
      numel, kGraphStatsGrain, [at, threshold](int64_t begin, int64_t end) {
        double s = 0.0;
        for (int64_t i = begin; i < end; ++i) {
          const double p = static_cast<double>(at[i]);
          if (p >= threshold) s += p;
        }
        return s;
      });
  // Each row sums to 1 exactly in the softmax's own arithmetic; use the
  // analytic total so sparsity is a clean fraction of mass.
  report.sparsity = mass_above / static_cast<double>(rows);

  // Mean absolute entry change between the adjacent-step graphs.
  report.temporal_drift =
      common::DeterministicChunkedSum(
          numel, kGraphStatsGrain, [at, ap](int64_t begin, int64_t end) {
            double s = 0.0;
            for (int64_t i = begin; i < end; ++i) {
              s += std::abs(static_cast<double>(at[i]) -
                            static_cast<double>(ap[i]));
            }
            return s;
          }) /
      static_cast<double>(numel);

  // Top-k neighborhoods of the batch-mean graph, compared against the
  // previous collection. Ties break on the lower node id so the selection
  // is deterministic.
  const int64_t k = std::min<int64_t>(std::max<int64_t>(options.topk, 1), n);
  report.topk = k;
  const Tensor mean_adj = a_t.Mean(0);  // [N, N]
  const float* mean_data = mean_adj.data();
  std::vector<std::vector<int64_t>> topk_ids(static_cast<size_t>(n));
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    const float* row = mean_data + r * n;
    std::iota(order.begin(), order.end(), int64_t{0});
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [row](int64_t a, int64_t b) {
                        if (row[a] != row[b]) return row[a] > row[b];
                        return a < b;
                      });
    auto& ids = topk_ids[static_cast<size_t>(r)];
    ids.assign(order.begin(), order.begin() + k);
    std::sort(ids.begin(), ids.end());
  }
  if (state != nullptr &&
      static_cast<int64_t>(state->topk_ids.size()) == n) {
    int64_t overlap = 0;
    for (int64_t r = 0; r < n; ++r) {
      const auto& now = topk_ids[static_cast<size_t>(r)];
      const auto& before = state->topk_ids[static_cast<size_t>(r)];
      std::vector<int64_t> common_ids;
      std::set_intersection(now.begin(), now.end(), before.begin(),
                            before.end(), std::back_inserter(common_ids));
      overlap += static_cast<int64_t>(common_ids.size());
    }
    report.topk_stability =
        static_cast<double>(overlap) / static_cast<double>(n * k);
  }
  if (state != nullptr) state->topk_ids = std::move(topk_ids);
  return report;
}

}  // namespace core
}  // namespace tgcrn
