// Copyright 2026 TGCRN Reproduction Authors
#include "core/tagsl.h"

#include <cmath>

#include "nn/init.h"

namespace tgcrn {
namespace core {

TagSL::TagSL(const Options& options, const TimeEncoder* time_encoder,
             Rng* rng)
    : options_(options), time_encoder_(time_encoder) {
  TGCRN_CHECK_GT(options_.num_nodes, 0);
  if (options_.use_time) {
    TGCRN_CHECK(time_encoder_ != nullptr)
        << "TagSL with use_time requires a time encoder";
  }
  node_embedding_ = RegisterParameter(
      "node_embedding",
      nn::NormalInit({options_.num_nodes, options_.node_dim}, 0.3f, rng));
}

ag::Variable TagSL::BuildRawGraph(const ag::Variable& x_t,
                                  const std::vector<int64_t>& slots,
                                  const std::vector<int64_t>& prev_slots)
    const {
  const int64_t batch = x_t.size(0);
  TGCRN_CHECK_EQ(x_t.size(1), options_.num_nodes);

  // Eq 6: static node-pair correlation, shared across the batch.
  ag::Variable a_nu = ag::Matmul(node_embedding_,
                                 ag::Transpose(node_embedding_, 0, 1));
  ag::Variable base = ag::Unsqueeze(a_nu, 0);  // [1, N, N]

  if (options_.use_time) {
    TGCRN_CHECK_EQ(static_cast<int64_t>(slots.size()), batch);
    TGCRN_CHECK_EQ(static_cast<int64_t>(prev_slots.size()), batch);
    // Eq 7: trend factor from consecutive time representations. Scaled by
    // 1/d_tau so its magnitude is invariant to the embedding width.
    ag::Variable e_t = time_encoder_->Encode(slots);          // [B, d_tau]
    ag::Variable e_prev = time_encoder_->Encode(prev_slots);  // [B, d_tau]
    ag::Variable eta = ag::MulScalar(
        ag::Sum(ag::Mul(e_t, e_prev), 1, /*keepdim=*/true),
        1.0f / static_cast<float>(time_encoder_->dim()));  // [B, 1]
    eta = ag::Unsqueeze(eta, 2);  // [B, 1, 1]
    base = ag::Add(base, eta);    // broadcast -> [B, N, N]
  }

  if (options_.use_pdf) {
    // Eq 8: the periodic discriminant maps the current node states to a
    // bounded pattern matrix. The inner product is scaled by 1/sqrt(C)
    // (paper uses raw <X, X^T>; the scaling keeps tanh out of saturation
    // for z-scored features without changing its discriminative role).
    const float scale =
        1.0f / std::sqrt(static_cast<float>(x_t.size(2)));
    ag::Variable a_rho = ag::Tanh(ag::MulScalar(
        ag::Matmul(x_t, ag::Transpose(x_t, -2, -1)), scale));  // [B, N, N]
    // Eq 9: (1 + alpha * sigmoid(A_rho)) expands the graph weights of the
    // identified period.
    ag::Variable gate =
        ag::AddScalar(ag::MulScalar(ag::Sigmoid(a_rho), options_.alpha),
                      1.0f);
    base = ag::Mul(gate, base);
  } else if (base.value().dim() == 3 && base.size(0) == 1 && batch > 1) {
    // Keep the output batch-shaped even without batch-dependent terms.
    base = ag::BroadcastTo(base, {batch, options_.num_nodes,
                                  options_.num_nodes});
  }
  return base;
}

ag::Variable TagSL::BuildGraph(const ag::Variable& x_t,
                               const std::vector<int64_t>& slots,
                               const std::vector<int64_t>& prev_slots) const {
  // Eq 11: Norm = row-softmax over relu, yielding a row-stochastic
  // aggregation operator.
  return ag::Softmax(ag::Relu(BuildRawGraph(x_t, slots, prev_slots)), -1);
}

}  // namespace core
}  // namespace tgcrn
