// Copyright 2026 TGCRN Reproduction Authors
#include "core/time_discrepancy.h"

#include <algorithm>

namespace tgcrn {
namespace core {

int64_t CircularSlotDistance(int64_t a, int64_t b, int64_t steps_per_day) {
  const int64_t diff = std::abs(a - b) % steps_per_day;
  return std::min(diff, steps_per_day - diff);
}

TimeDistanceSamples SampleTimeDistances(
    const std::vector<std::vector<int64_t>>& slot_rows,
    int64_t adjacent_range, Rng* rng) {
  TGCRN_CHECK(!slot_rows.empty());
  TGCRN_CHECK_GE(adjacent_range, 1);
  const int64_t b = static_cast<int64_t>(slot_rows.size());
  TimeDistanceSamples out;
  for (int64_t i = 0; i < b; ++i) {
    const auto& row = slot_rows[i];
    const int64_t len = static_cast<int64_t>(row.size());
    TGCRN_CHECK_GE(len, 2);
    // Anchor: random position in this row (Algorithm 1 line 3).
    const int64_t anchor_pos = rng->UniformInt(0, len - 1);
    out.anchor.push_back(row[anchor_pos]);
    // Adjacent: a different position within +-adjacent_range (line 5).
    int64_t adj_pos = anchor_pos;
    for (int attempt = 0; attempt < 8 && adj_pos == anchor_pos; ++attempt) {
      adj_pos = std::clamp<int64_t>(
          anchor_pos + rng->UniformInt(-adjacent_range, adjacent_range), 0,
          len - 1);
    }
    if (adj_pos == anchor_pos) adj_pos = anchor_pos == 0 ? 1 : anchor_pos - 1;
    out.adjacent.push_back(row[adj_pos]);
    // Mid-distance: a position outside the adjacent range (line 7). When
    // the window is too short to have one, take the farthest position.
    std::vector<int64_t> mid_candidates;
    for (int64_t p = 0; p < len; ++p) {
      if (std::abs(p - anchor_pos) > adjacent_range) {
        mid_candidates.push_back(p);
      }
    }
    int64_t mid_pos;
    if (mid_candidates.empty()) {
      mid_pos = anchor_pos < len / 2 ? len - 1 : 0;
    } else {
      mid_pos = mid_candidates[rng->UniformInt(
          0, static_cast<int64_t>(mid_candidates.size()) - 1)];
    }
    out.mid.push_back(row[mid_pos]);
    // Distant: any slot from another row (lines 9-11).
    int64_t other_row = i;
    if (b > 1) {
      other_row = rng->UniformInt(0, b - 2);
      if (other_row >= i) ++other_row;
    }
    const auto& other = slot_rows[other_row];
    out.distant.push_back(
        other[rng->UniformInt(0, static_cast<int64_t>(other.size()) - 1)]);
  }
  return out;
}

namespace {

// Euclidean distance between each group embedding and the anchor embedding
// (Eq 4), divided elementwise by the slot distances (Eq 5).
ag::Variable DistanceRatio(const TimeEncoder& encoder,
                           const std::vector<int64_t>& anchor,
                           const std::vector<int64_t>& group,
                           int64_t steps_per_day) {
  ag::Variable ea = encoder.Encode(anchor);  // [B, d]
  ag::Variable eg = encoder.Encode(group);   // [B, d]
  ag::Variable diff = ag::Sub(eg, ea);
  // Epsilon inside the sqrt keeps the gradient finite when the two slots
  // coincide (zeta == 0).
  ag::Variable zeta = ag::Sqrt(
      ag::AddScalar(ag::Sum(ag::Mul(diff, diff), 1), 1e-8f));  // [B]
  Tensor inv_d(Shape{static_cast<int64_t>(anchor.size())});
  for (size_t i = 0; i < anchor.size(); ++i) {
    const int64_t d = std::max<int64_t>(
        CircularSlotDistance(anchor[i], group[i], steps_per_day), 1);
    inv_d.set_flat(static_cast<int64_t>(i), 1.0f / static_cast<float>(d));
  }
  return ag::Mul(zeta, ag::Variable(inv_d));
}

}  // namespace

ag::Variable TimeDiscrepancyLoss(const TimeEncoder& encoder,
                                 const TimeDistanceSamples& samples,
                                 int64_t steps_per_day) {
  ag::Variable r_adj =
      DistanceRatio(encoder, samples.anchor, samples.adjacent, steps_per_day);
  ag::Variable r_mid =
      DistanceRatio(encoder, samples.anchor, samples.mid, steps_per_day);
  ag::Variable r_dist =
      DistanceRatio(encoder, samples.anchor, samples.distant, steps_per_day);
  // Eq 3: all three pairwise ratio consistencies.
  ag::Variable loss = ag::MeanAll(ag::Abs(ag::Sub(r_adj, r_mid)));
  loss = ag::Add(loss, ag::MeanAll(ag::Abs(ag::Sub(r_adj, r_dist))));
  loss = ag::Add(loss, ag::MeanAll(ag::Abs(ag::Sub(r_mid, r_dist))));
  return loss;
}

ag::Variable TimeDiscrepancyLossFromRows(
    const TimeEncoder& encoder,
    const std::vector<std::vector<int64_t>>& slot_rows,
    int64_t adjacent_range, int64_t steps_per_day, Rng* rng) {
  const TimeDistanceSamples samples =
      SampleTimeDistances(slot_rows, adjacent_range, rng);
  return TimeDiscrepancyLoss(encoder, samples, steps_per_day);
}

}  // namespace core
}  // namespace tgcrn
