// Copyright 2026 TGCRN Reproduction Authors
#include "core/gcgru.h"

namespace tgcrn {
namespace core {

GCGRUCell::GCGRUCell(int64_t input_dim, int64_t hidden_dim,
                     int64_t node_embed_dim, int64_t time_embed_dim,
                     Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      node_embed_dim_(node_embed_dim),
      time_embed_dim_(time_embed_dim) {
  TGCRN_CHECK_GT(node_embed_dim, 0);
  // Convolution order 2, as in AGCRN (the paper's base): the supports are
  // [I, A_hat], so each gate sees [v ; A_hat v] -> input width 2 * cat.
  const int64_t cat = 2 * (input_dim + hidden_dim);
  const int64_t d_e = node_embed_dim + time_embed_dim;
  auto make_pool_w = [&](const char* name, int64_t rows, int64_t out) {
    return RegisterParameter(
        name, nn::XavierUniform({rows, cat * out}, cat * d_e / 2, out, rng));
  };
  gates_pool_w_node_ =
      make_pool_w("gates_pool_w_node", node_embed_dim, 2 * hidden_dim);
  gates_pool_b_node_ = RegisterParameter(
      "gates_pool_b_node", Tensor::Zeros({node_embed_dim, 2 * hidden_dim}));
  cand_pool_w_node_ =
      make_pool_w("cand_pool_w_node", node_embed_dim, hidden_dim);
  cand_pool_b_node_ = RegisterParameter(
      "cand_pool_b_node", Tensor::Zeros({node_embed_dim, hidden_dim}));
  if (time_embed_dim > 0) {
    gates_pool_w_time_ =
        make_pool_w("gates_pool_w_time", time_embed_dim, 2 * hidden_dim);
    gates_pool_b_time_ = RegisterParameter(
        "gates_pool_b_time",
        Tensor::Zeros({time_embed_dim, 2 * hidden_dim}));
    cand_pool_w_time_ =
        make_pool_w("cand_pool_w_time", time_embed_dim, hidden_dim);
    cand_pool_b_time_ = RegisterParameter(
        "cand_pool_b_time", Tensor::Zeros({time_embed_dim, hidden_dim}));
  }
}

ag::Variable GCGRUCell::NodeAdaptiveConv(
    const ag::Variable& value, const Adjacency& adj,
    const ag::Variable& node_embed, const ag::Variable& time_embed,
    const ag::Variable& pool_w_node, const ag::Variable& pool_w_time,
    const ag::Variable& pool_b_node, const ag::Variable& pool_b_time,
    int64_t in_dim, int64_t out_dim) const {
  const int64_t batch = value.size(0);
  const int64_t n = value.size(1);
  TGCRN_CHECK_EQ(2 * value.size(2), in_dim);
  // Order-2 spatial aggregation over the time-aware graph: [I v ; A v].
  // The aggregation is the only place the adjacency representation matters:
  // dense batched matmul or CSR SpMM over the kept edges.
  ag::Variable aggregated = adj.is_sparse()
                                ? ag::SpmmCsr(adj.sparse, value)
                                : ag::Matmul(adj.dense, value);
  ag::Variable support = ag::Concat({value, aggregated}, -1);  // [B, N, 2C]

  // Node term: W_nu[n] = E_nu[n] @ pool, contracted per node.
  ag::Variable w_node = ag::Reshape(ag::Matmul(node_embed, pool_w_node),
                                    {n, in_dim, out_dim});
  ag::Variable by_node = ag::Permute(support, {1, 0, 2});  // [N, B, C]
  ag::Variable out_node =
      ag::Permute(ag::Matmul(by_node, w_node), {1, 0, 2});  // [B, N, out]
  ag::Variable b_node =
      ag::Unsqueeze(ag::Matmul(node_embed, pool_b_node), 0);  // [1, N, out]
  ag::Variable out = ag::Add(out_node, b_node);

  if (time_embed.defined()) {
    TGCRN_CHECK_EQ(time_embed.size(0), batch);
    // Time term: W_tau[b] = E_tau[b] @ pool, contracted per sample.
    ag::Variable w_time = ag::Reshape(ag::Matmul(time_embed, pool_w_time),
                                      {batch, in_dim, out_dim});
    ag::Variable out_time = ag::Matmul(support, w_time);  // [B, N, out]
    ag::Variable b_time = ag::Unsqueeze(
        ag::Matmul(time_embed, pool_b_time), 1);  // [B, 1, out]
    out = ag::Add(ag::Add(out, out_time), b_time);
  }
  return out;
}

ag::Variable GCGRUCell::Forward(const ag::Variable& x, const ag::Variable& h,
                                const Adjacency& adj,
                                const ag::Variable& node_embed,
                                const ag::Variable& time_embed) const {
  TGCRN_CHECK_EQ(x.size(2), input_dim_);
  TGCRN_CHECK_EQ(h.size(2), hidden_dim_);
  TGCRN_CHECK_EQ(time_embed.defined() ? 1 : 0, time_embed_dim_ > 0 ? 1 : 0)
      << "time_embed presence must match construction";
  const int64_t cat = 2 * (input_dim_ + hidden_dim_);
  // Eq 13-14: update and reset gates from the aggregated [X ; h].
  ag::Variable xh = ag::Concat({x, h}, -1);
  ag::Variable zr = ag::Sigmoid(NodeAdaptiveConv(
      xh, adj, node_embed, time_embed, gates_pool_w_node_,
      gates_pool_w_time_, gates_pool_b_node_, gates_pool_b_time_, cat,
      2 * hidden_dim_));
  ag::Variable z = ag::Slice(zr, -1, 0, hidden_dim_);
  ag::Variable r = ag::Slice(zr, -1, hidden_dim_, 2 * hidden_dim_);
  // Eq 15: candidate state from [X ; r .* h].
  ag::Variable xrh = ag::Concat({x, ag::Mul(r, h)}, -1);
  ag::Variable cand = ag::Tanh(NodeAdaptiveConv(
      xrh, adj, node_embed, time_embed, cand_pool_w_node_,
      cand_pool_w_time_, cand_pool_b_node_, cand_pool_b_time_, cat,
      hidden_dim_));
  // Eq 16.
  ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, cand));
}

}  // namespace core
}  // namespace tgcrn
