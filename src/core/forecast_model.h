// Copyright 2026 TGCRN Reproduction Authors
// The interface every forecasting model in this repository implements
// (TGCRN and all neural baselines), so the trainer and bench harnesses are
// model-agnostic. Non-neural baselines (HA, GBDT) have their own fit/predict
// surfaces in src/baselines and are evaluated by the same harness through
// thin adapters.
#ifndef TGCRN_CORE_FORECAST_MODEL_H_
#define TGCRN_CORE_FORECAST_MODEL_H_

#include <string>

#include "autograd/variable.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "nn/module.h"

namespace tgcrn {

namespace obs {
struct GraphHealthReport;
}

namespace core {

class ForecastModel : public nn::Module {
 public:
  // Multi-step forecast in *scaled* space: [B, Q, N, d_out].
  virtual ag::Variable Forward(const data::Batch& batch) = 0;

  // Optional auxiliary training loss (TGCRN's L_time, Eq 17); an undefined
  // Variable means "none".
  virtual ag::Variable AuxiliaryLoss(const data::Batch& batch, Rng* rng) {
    (void)batch;
    (void)rng;
    return {};
  }

  // Weight of the auxiliary loss (lambda in Eq 17).
  virtual float auxiliary_weight() const { return 0.0f; }

  // Learned-graph sparsity: k > 0 switches the model to the top-k CSR
  // execution path (adjacency rows keep their k largest entries,
  // renormalized; aggregation runs as SpMM), k == 0 restores the dense
  // path. Models without a learned graph ignore it.
  virtual void SetGraphTopK(int64_t k) { (void)k; }

  // Scheduled sampling (curriculum learning, as in DCRNN): probability of
  // feeding the decoder the ground-truth previous step instead of the
  // model's own prediction during training. The trainer anneals this from
  // 1 toward 0; models without a recursive decoder ignore it.
  virtual void SetTeacherForcingProbability(float probability) {
    (void)probability;
  }

  // Fills `out` with learned-graph diagnostics computed on `batch` (see
  // obs::GraphHealthReport) and returns true. The default says "this model
  // has no learned graph" so the health monitor skips the block. Called
  // once per sampled epoch; must not record gradients.
  virtual bool CollectGraphHealth(const data::Batch& batch,
                                  obs::GraphHealthReport* out) {
    (void)batch;
    (void)out;
    return false;
  }

  virtual std::string name() const = 0;
};

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_FORECAST_MODEL_H_
