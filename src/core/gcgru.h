// Copyright 2026 TGCRN Reproduction Authors
// Graph Convolution-based Gated Recurrent Unit (GCGRU), Section III-B.
// Each gate aggregates [X_t ; h_{t-1}] over the (time-aware) graph and
// applies node-specific, time-aware weights obtained by the paper's matrix
// decomposition W = E_hat W_pool with E_hat = [E_nu ; E_tau,t] (Eq 12-16).
//
// Implementation note: materializing W = E_hat @ W_pool per (batch, node)
// costs B*N*d_e*C*H. Because E_hat concatenates a batch-independent node
// part and a node-independent time part, the contraction factorizes
//   out[b,n] = s[b,n] (E_nu[n] Wp_nu) + s[b,n] (E_tau[b] Wp_tau)
// which is algebraically identical (matmul distributes over the
// concatenation) and ~d_e times cheaper. The parameters are stored as the
// two pool halves; their union is exactly the paper's W_pool.
#ifndef TGCRN_CORE_GCGRU_H_
#define TGCRN_CORE_GCGRU_H_

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "nn/init.h"
#include "nn/module.h"

namespace tgcrn {
namespace core {

// The aggregation operand of one recurrent step: either the dense
// normalized adjacency [B, N, N] or its top-k CSR form (the
// TGCRN_GRAPH_TOPK execution path). Exactly one side is set; the GCGRU
// dispatches its spatial aggregation to dense batched matmul or to
// ag::SpmmCsr accordingly.
struct Adjacency {
  ag::Variable dense;
  ag::SparseGraph sparse;

  Adjacency() = default;
  /*implicit*/ Adjacency(ag::Variable d) : dense(std::move(d)) {}
  /*implicit*/ Adjacency(ag::SparseGraph s) : sparse(std::move(s)) {}

  bool is_sparse() const { return sparse.defined(); }
  bool defined() const { return dense.defined() || sparse.defined(); }
};

class GCGRUCell : public nn::Module {
 public:
  // node_embed_dim is d_nu; time_embed_dim is d_tau (0 disables the
  // time-aware weight component, e.g. for the "w/o tagsl" ablation).
  GCGRUCell(int64_t input_dim, int64_t hidden_dim, int64_t node_embed_dim,
            int64_t time_embed_dim, Rng* rng);

  // One recurrent step.
  //   x:          [B, N, input_dim]   current input
  //   h:          [B, N, hidden_dim]  previous hidden state
  //   adj:        dense [B, N, N] or top-k CSR adjacency (see Adjacency)
  //   node_embed: [N, d_nu]           E_nu
  //   time_embed: [B, d_tau]          E_tau at this step (undefined Variable
  //                                   when constructed with d_tau == 0)
  // Returns the next hidden state [B, N, hidden_dim].
  ag::Variable Forward(const ag::Variable& x, const ag::Variable& h,
                       const Adjacency& adj, const ag::Variable& node_embed,
                       const ag::Variable& time_embed) const;

  int64_t hidden_dim() const { return hidden_dim_; }
  int64_t input_dim() const { return input_dim_; }

 private:
  // (adj @ value) W + b with the factorized node/time weight pools.
  ag::Variable NodeAdaptiveConv(const ag::Variable& value,
                                const Adjacency& adj,
                                const ag::Variable& node_embed,
                                const ag::Variable& time_embed,
                                const ag::Variable& pool_w_node,
                                const ag::Variable& pool_w_time,
                                const ag::Variable& pool_b_node,
                                const ag::Variable& pool_b_time,
                                int64_t in_dim, int64_t out_dim) const;

  int64_t input_dim_;
  int64_t hidden_dim_;
  int64_t node_embed_dim_;
  int64_t time_embed_dim_;
  // Gate (z, r) pools: node half [d_nu, C*2H] and time half [d_tau, C*2H].
  ag::Variable gates_pool_w_node_;
  ag::Variable gates_pool_w_time_;
  ag::Variable gates_pool_b_node_;  // [d_nu, 2H]
  ag::Variable gates_pool_b_time_;  // [d_tau, 2H]
  // Candidate pools.
  ag::Variable cand_pool_w_node_;
  ag::Variable cand_pool_w_time_;
  ag::Variable cand_pool_b_node_;
  ag::Variable cand_pool_b_time_;
};

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_GCGRU_H_
