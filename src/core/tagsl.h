// Copyright 2026 TGCRN Reproduction Authors
// Time-aware Graph Structure Learning (TagSL), Section III-A of the paper.
// Builds the per-time-step adjacency
//
//   A_nu    = <E_nu, E_nu^T>                       (Eq 6,  static correlation)
//   eta_t   = <E_tau(t), E_tau(t-1)>               (Eq 7,  trend factor)
//   A_rho   = tanh(<X_t, X_t^T>)                   (Eq 8,  periodic discriminant)
//   A^t     = (1 + alpha * sigmoid(A_rho)) .* (A_nu + eta_t)   (Eq 9)
//
// followed by Norm(A^t) = row-softmax over relu(A^t) (Eq 11, the AGCRN
// convention the paper builds on). Ablation switches disable the time term
// (yielding the pure self-learning graph of AGCRN, the paper's "w/o tagsl")
// and the periodic discriminant ("w/o PDF").
#ifndef TGCRN_CORE_TAGSL_H_
#define TGCRN_CORE_TAGSL_H_

#include <vector>

#include "autograd/ops.h"
#include "autograd/sparse_ops.h"
#include "core/time_encoders.h"
#include "nn/module.h"
#include "obs/report.h"

namespace tgcrn {
namespace core {

// Knobs for the per-epoch learned-graph diagnostics (§IV-E health view).
struct GraphHealthOptions {
  // Edge-mass threshold for the sparsity statistic; <= 0 means the uniform
  // row weight 1/N (entries carrying more than their uniform share).
  double mass_threshold = 0.0;
  // Neighborhood size for the cross-epoch top-k stability statistic.
  int64_t topk = 3;
};

// Cross-epoch carry-over for top-k stability: each node's top-k neighbor
// ids (sorted) from the previous collection. Empty until the first one.
struct GraphTopKState {
  std::vector<std::vector<int64_t>> topk_ids;
};

class TagSL : public nn::Module {
 public:
  struct Options {
    int64_t num_nodes = 0;
    int64_t node_dim = 12;       // d_nu
    float alpha = 0.3f;          // saturation factor of the PDF (Eq 9)
    bool use_time = true;        // include eta_t (false => self-learning)
    bool use_pdf = true;         // include the periodic discriminant
  };

  // `time_encoder` is borrowed (owned by the enclosing model) and may be
  // null when options.use_time is false.
  TagSL(const Options& options, const TimeEncoder* time_encoder, Rng* rng);

  // Builds the normalized time-aware adjacency [B, N, N].
  // x_t:   [B, N, C] node states at this step (layer input).
  // slots / prev_slots: per-sample slot-of-day ids at t and t-1.
  ag::Variable BuildGraph(const ag::Variable& x_t,
                          const std::vector<int64_t>& slots,
                          const std::vector<int64_t>& prev_slots) const;

  // Pre-normalization A^t of Eq 9 (for the Fig 11 visualizations).
  ag::Variable BuildRawGraph(const ag::Variable& x_t,
                             const std::vector<int64_t>& slots,
                             const std::vector<int64_t>& prev_slots) const;

  // Sparse top-k variant of BuildGraph (the TGCRN_GRAPH_TOPK execution
  // path). Two stages: (1) an exact no-grad selection pass scans the raw
  // scores in fixed row blocks and keeps each row's k largest relu'd
  // logits (value-descending, index-ascending tie-breaks — the same
  // ranking graph::SparsifyTopK applies to the dense softmax, since
  // softmax is strictly monotone); (2) only the B*N*k kept-edge logits are
  // recomputed differentiably (gathers + dots) and row-softmaxed, which
  // equals the dense softmax renormalized over the kept entries — so
  // gradients reach E_nu, the time encoder and x_t through the kept edges
  // and dropped edges get exactly zero gradient (the sparse-training
  // contract, autograd/sparse_ops.h). Autograd memory and compute are
  // O(B*N*k); only the selection scan (a low-constant, gradient-free
  // pass) remains O(N^2). All-zero rows degrade to uniform over the kept
  // set, matching graph::SparsifyTopK's fallback.
  ag::SparseGraph BuildSparseGraph(const ag::Variable& x_t,
                                   const std::vector<int64_t>& slots,
                                   const std::vector<int64_t>& prev_slots,
                                   int64_t k) const;

  // Diagnostics of the learned graph at one time step, collected per epoch
  // by the health monitor (no gradients recorded):
  //  * row_entropy — mean row entropy of A^t normalized by ln N: 1 means
  //    the softmax collapsed to uniform rows, 0 means delta rows.
  //  * sparsity — fraction of total edge mass on entries >= threshold.
  //  * temporal_drift — mean |A^t - A^{t-1}| between the graphs of two
  //    adjacent steps (the paper's claim is that graphs evolve with time;
  //    zero drift under use_time means the trend factor is doing nothing).
  //  * topk_stability — mean overlap of each node's top-k neighbors (of
  //    the batch-mean graph) with `state`'s previous collection; NaN when
  //    `state` is empty. `state` is updated in place.
  // x_t/slots/prev_slots build A^t; x_prev/prev_slots/prev2_slots build
  // A^{t-1}. Deterministic at any thread count.
  obs::GraphHealthReport ComputeGraphHealth(
      const ag::Variable& x_t, const ag::Variable& x_prev,
      const std::vector<int64_t>& slots,
      const std::vector<int64_t>& prev_slots,
      const std::vector<int64_t>& prev2_slots,
      const GraphHealthOptions& options, GraphTopKState* state) const;

  const ag::Variable& node_embedding() const { return node_embedding_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  const TimeEncoder* time_encoder_;
  ag::Variable node_embedding_;  // E_nu [N, d_nu]
};

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_TAGSL_H_
