// Copyright 2026 TGCRN Reproduction Authors
// Time-aware Graph Structure Learning (TagSL), Section III-A of the paper.
// Builds the per-time-step adjacency
//
//   A_nu    = <E_nu, E_nu^T>                       (Eq 6,  static correlation)
//   eta_t   = <E_tau(t), E_tau(t-1)>               (Eq 7,  trend factor)
//   A_rho   = tanh(<X_t, X_t^T>)                   (Eq 8,  periodic discriminant)
//   A^t     = (1 + alpha * sigmoid(A_rho)) .* (A_nu + eta_t)   (Eq 9)
//
// followed by Norm(A^t) = row-softmax over relu(A^t) (Eq 11, the AGCRN
// convention the paper builds on). Ablation switches disable the time term
// (yielding the pure self-learning graph of AGCRN, the paper's "w/o tagsl")
// and the periodic discriminant ("w/o PDF").
#ifndef TGCRN_CORE_TAGSL_H_
#define TGCRN_CORE_TAGSL_H_

#include <vector>

#include "autograd/ops.h"
#include "core/time_encoders.h"
#include "nn/module.h"

namespace tgcrn {
namespace core {

class TagSL : public nn::Module {
 public:
  struct Options {
    int64_t num_nodes = 0;
    int64_t node_dim = 12;       // d_nu
    float alpha = 0.3f;          // saturation factor of the PDF (Eq 9)
    bool use_time = true;        // include eta_t (false => self-learning)
    bool use_pdf = true;         // include the periodic discriminant
  };

  // `time_encoder` is borrowed (owned by the enclosing model) and may be
  // null when options.use_time is false.
  TagSL(const Options& options, const TimeEncoder* time_encoder, Rng* rng);

  // Builds the normalized time-aware adjacency [B, N, N].
  // x_t:   [B, N, C] node states at this step (layer input).
  // slots / prev_slots: per-sample slot-of-day ids at t and t-1.
  ag::Variable BuildGraph(const ag::Variable& x_t,
                          const std::vector<int64_t>& slots,
                          const std::vector<int64_t>& prev_slots) const;

  // Pre-normalization A^t of Eq 9 (for the Fig 11 visualizations).
  ag::Variable BuildRawGraph(const ag::Variable& x_t,
                             const std::vector<int64_t>& slots,
                             const std::vector<int64_t>& prev_slots) const;

  const ag::Variable& node_embedding() const { return node_embedding_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  const TimeEncoder* time_encoder_;
  ag::Variable node_embedding_;  // E_nu [N, d_nu]
};

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_TAGSL_H_
