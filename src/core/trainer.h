// Copyright 2026 TGCRN Reproduction Authors
// Model-agnostic training/evaluation harness implementing the paper's
// recipe (Section IV-A4): Adam with L2 penalty 1e-4, initial LR 1e-3 with
// multi-step decay 0.3 at {5,20,40,70,90}, batch 16, early stopping with
// patience, best-weights restoration, and per-horizon test metrics computed
// in the original (inverse-transformed) data space.
#ifndef TGCRN_CORE_TRAINER_H_
#define TGCRN_CORE_TRAINER_H_

#include <string>
#include <vector>

#include "core/forecast_model.h"
#include "data/dataset.h"
#include "metrics/metrics.h"
#include "obs/health.h"
#include "obs/prof.h"
#include "obs/report.h"

namespace tgcrn {
namespace core {

// TGCRN_GRAPH_TOPK env var as a TrainConfig::graph_topk default: the
// parsed value when set (k > 0 = sparse top-k path, 0 = dense), -1 when
// unset ("leave the model as constructed").
int64_t GraphTopKFromEnv();

struct TrainConfig {
  int64_t epochs = 8;
  int64_t batch_size = 16;
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  std::vector<int64_t> lr_milestones = {5, 20, 40, 70, 90};
  float lr_gamma = 0.3f;
  float clip_norm = 5.0f;
  int64_t patience = 15;
  uint64_t seed = 99;
  // Caps the number of training batches per epoch (0 = no cap); used by the
  // bench harness to keep wall-clock budgets on one CPU core.
  int64_t max_batches_per_epoch = 0;
  // Scheduled sampling (curriculum learning a la DCRNN): the decoder's
  // teacher-forcing probability decays with the inverse sigmoid
  // tau / (tau + exp(step / tau)) over global training steps. 0 disables.
  double scheduled_sampling_tau = 0.0;
  // Learned-graph sparsity applied to the model before training: >= 0
  // calls ForecastModel::SetGraphTopK (> 0 = top-k CSR path, 0 = dense);
  // < 0 leaves the model as constructed. Defaults from the
  // TGCRN_GRAPH_TOPK env var (unset => -1), so any training entry point
  // gains the sparse path without code changes.
  int64_t graph_topk = GraphTopKFromEnv();
  // Parallel width for the tensor kernels during this run: > 0 sets the
  // global pool via common::SetNumThreads (1 = exact legacy serial
  // execution), 0 leaves the current global setting (TGCRN_NUM_THREADS env
  // var or hardware concurrency) untouched. Results are bitwise identical
  // at every thread count.
  int num_threads = 0;
  bool verbose = true;
  metrics::MetricsOptions metric_options;
  // When non-empty, one JSON object per epoch is appended to this file as
  // training proceeds (tail-able JSONL) and a final summary object is
  // appended after test evaluation. The same data is always available in
  // TrainResult::report regardless of this setting.
  std::string report_path;
  // Training-health monitor (obs/health.h): per-module parameter/gradient
  // statistics, activation taps, learned-graph diagnostics, and the
  // non-finite-gradient sentinel. Defaults from TGCRN_HEALTH* env vars, so
  // any training entry point gains the monitor without code changes.
  // Disabled ⇒ the training loop does zero health work per step.
  obs::HealthOptions health = obs::HealthOptions::FromEnv();
  // Kernel-cost profiler (obs/prof.h): when enabled, every epoch JSONL
  // line gains a "prof" object — that epoch's attribution-tree delta with
  // per-kernel invocation counts, analytic GFLOP/s, and (where perf_event
  // is available) IPC. Defaults from TGCRN_PROF{,_COUNTERS} env vars.
  // Disabled ⇒ one relaxed load per span, nothing else.
  obs::ProfOptions prof = obs::ProfOptions::FromEnv();
};

struct TrainResult {
  std::vector<metrics::Metrics> per_horizon;  // test metrics per step
  metrics::Metrics average;                   // mean over horizons
  double seconds_per_epoch = 0.0;
  double total_seconds = 0.0;
  int64_t num_parameters = 0;
  int64_t epochs_run = 0;
  int num_threads = 1;  // parallel width the run actually used
  std::vector<double> val_mae_history;
  std::vector<double> train_loss_history;
  // Structured per-epoch record (losses, LR, gradient norms, wall-clock
  // phase breakdown) plus the final test metrics; see obs/report.h.
  obs::RunReport report;
};

// Trains `model` on the dataset's train split, early-stops on validation
// MAE, restores the best weights, and evaluates on the test split.
TrainResult TrainAndEvaluate(ForecastModel* model,
                             const data::ForecastDataset& dataset,
                             const TrainConfig& config);

// Evaluates (no training) on a split; predictions are inverse-transformed
// before metric computation.
std::vector<metrics::Metrics> EvaluateModel(
    ForecastModel* model, const data::ForecastDataset& dataset,
    data::ForecastDataset::Split split,
    const metrics::MetricsOptions& options, int64_t batch_size = 16);

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_TRAINER_H_
