// Copyright 2026 TGCRN Reproduction Authors
#include "core/time_encoders.h"

namespace tgcrn {
namespace core {

ag::Variable Time2vecEncoder::SinOp(const ag::Variable& x) {
  Tensor y = x.value().MapT([](float v) { return std::sin(v); });
  auto xn = x.node();
  return ag::MakeOpNode(std::move(y), {x}, [xn](const Tensor& g) {
    Tensor cosx = xn->value.MapT([](float v) { return std::cos(v); });
    xn->AccumulateProductGrad(g, cosx);
  });
}

ag::Variable ContinuousTimeEncoder::Encode(
    const std::vector<int64_t>& slots) const {
  const int64_t b = static_cast<int64_t>(slots.size());
  const int64_t half = dim_ / 2;
  Tensor t(Shape{b, 1});
  for (int64_t i = 0; i < b; ++i) {
    t.set_flat(i, 2.0f * static_cast<float>(M_PI) *
                      static_cast<float>(slots[i]) / steps_per_day_);
  }
  ag::Variable arg = ag::Mul(ag::Variable(t), freq_);  // [B, half]
  // cos/sin via MakeOpNode closures sharing the arg node.
  auto an = arg.node();
  Tensor cos_val = arg.value().MapT([](float v) { return std::cos(v); });
  ag::Variable cos_part =
      ag::MakeOpNode(std::move(cos_val), {arg}, [an](const Tensor& g) {
        Tensor d = an->value.MapT([](float v) { return -std::sin(v); });
        an->AccumulateProductGrad(g, d);
      });
  Tensor sin_val = arg.value().MapT([](float v) { return std::sin(v); });
  ag::Variable sin_part =
      ag::MakeOpNode(std::move(sin_val), {arg}, [an](const Tensor& g) {
        Tensor d = an->value.MapT([](float v) { return std::cos(v); });
        an->AccumulateProductGrad(g, d);
      });
  const float norm = std::sqrt(1.0f / static_cast<float>(half));
  return ag::MulScalar(ag::Concat({cos_part, sin_part}, 1), norm);
}

}  // namespace core
}  // namespace tgcrn
