// Copyright 2026 TGCRN Reproduction Authors
// Time-representation encoders. The paper's TagSL uses a learnable discrete
// embedding over day slots (Section III-A2); Time2vec [10] and the
// continuous-time representation of TGAT [29] are implemented as the
// ablation alternatives of Table VII.
#ifndef TGCRN_CORE_TIME_ENCODERS_H_
#define TGCRN_CORE_TIME_ENCODERS_H_

#include <cmath>
#include <vector>

#include "autograd/ops.h"
#include "nn/embedding.h"
#include "nn/module.h"

namespace tgcrn {
namespace core {

// Interface: maps a batch of slot-of-day ids to [B, d_time] vectors.
class TimeEncoder : public nn::Module {
 public:
  virtual ag::Variable Encode(const std::vector<int64_t>& slots) const = 0;
  virtual int64_t dim() const = 0;
  // Number of distinct discrete slots (0 when continuous).
  virtual int64_t num_slots() const { return 0; }
};

// The paper's discretized time embedding E_tau: one learnable vector per
// slot of the day. Time discrepancy learning (time_discrepancy.h) imposes
// the trend structure on this table.
class DiscreteTimeEmbedding : public TimeEncoder {
 public:
  DiscreteTimeEmbedding(int64_t num_slots, int64_t dim, Rng* rng)
      : table_(num_slots, dim, rng) {
    RegisterModule("table", &table_);
  }

  ag::Variable Encode(const std::vector<int64_t>& slots) const override {
    return table_.Forward(slots);
  }
  int64_t dim() const override { return table_.dim(); }
  int64_t num_slots() const override { return table_.num_embeddings(); }
  const ag::Variable& weight() const { return table_.weight(); }

 private:
  nn::Embedding table_;
};

// Time2vec [10]: t2v(t)[0] = w0 t + b0, t2v(t)[i] = sin(wi t + bi).
class Time2vecEncoder : public TimeEncoder {
 public:
  Time2vecEncoder(int64_t dim, int64_t steps_per_day, Rng* rng)
      : dim_(dim), steps_per_day_(steps_per_day) {
    freq_ = RegisterParameter(
        "freq", Tensor::RandUniform({dim}, 0.0f, 2.0f, rng));
    phase_ = RegisterParameter(
        "phase", Tensor::RandUniform({dim}, 0.0f, 1.0f, rng));
  }

  ag::Variable Encode(const std::vector<int64_t>& slots) const override {
    const int64_t b = static_cast<int64_t>(slots.size());
    Tensor t(Shape{b, 1});
    for (int64_t i = 0; i < b; ++i) {
      // Normalize the slot to [0, 2*pi) over the day.
      t.set_flat(i, 2.0f * static_cast<float>(M_PI) *
                        static_cast<float>(slots[i]) / steps_per_day_);
    }
    ag::Variable arg =
        ag::Add(ag::Mul(ag::Variable(t), freq_), phase_);  // [B, dim]
    // First channel linear, the rest periodic. Sin(x) = Tanh is wrong; we
    // need sine - compose from available primitives via the identity
    // sin(x) = cos(x - pi/2); implement cosine via a dedicated map below.
    ag::Variable linear = ag::Slice(arg, 1, 0, 1);
    ag::Variable periodic = SinOp(ag::Slice(arg, 1, 1, dim_));
    return ag::Concat({linear, periodic}, 1);
  }
  int64_t dim() const override { return dim_; }

 private:
  // Differentiable elementwise sine built on MakeOpNode.
  static ag::Variable SinOp(const ag::Variable& x);

  int64_t dim_;
  int64_t steps_per_day_;
  ag::Variable freq_;
  ag::Variable phase_;
};

// TGAT-style continuous functional time representation [29]:
// Phi(t) = sqrt(1/d) [cos(w1 t), sin(w1 t), cos(w2 t), sin(w2 t), ...]
// with learnable frequencies.
class ContinuousTimeEncoder : public TimeEncoder {
 public:
  ContinuousTimeEncoder(int64_t dim, int64_t steps_per_day, Rng* rng)
      : dim_(dim), steps_per_day_(steps_per_day) {
    TGCRN_CHECK_EQ(dim % 2, 0);
    // Geometric frequency ladder initialization as in TGAT.
    Tensor freq(Shape{dim / 2});
    for (int64_t i = 0; i < dim / 2; ++i) {
      freq.set_flat(i,
                    std::pow(10.0f, -2.0f * static_cast<float>(i) /
                                        static_cast<float>(dim / 2)) *
                        5.0f);
    }
    (void)rng;
    freq_ = RegisterParameter("freq", std::move(freq));
  }

  ag::Variable Encode(const std::vector<int64_t>& slots) const override;
  int64_t dim() const override { return dim_; }

 private:
  int64_t dim_;
  int64_t steps_per_day_;
  ag::Variable freq_;
};

}  // namespace core
}  // namespace tgcrn

#endif  // TGCRN_CORE_TIME_ENCODERS_H_
